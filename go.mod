module graphquery

go 1.22
