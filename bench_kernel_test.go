package graphquery

// BenchmarkE15_UnifiedKernel measures all-pairs product evaluation on the
// two adversarial graph families of the paper: Figure 5 diamond chains
// (exponentially many shortest paths over a long thin product) and
// k-cliques (dense products where every state fans out to every node).
// The benchmark pins the per-source kernel loop, so pre/post numbers for
// the unified product-graph runtime (internal/pg) are directly comparable;
// EXPERIMENTS.md records both sides.

import (
	"context"
	"fmt"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/obs"
	"graphquery/internal/rpq"
)

func BenchmarkE15_UnifiedKernel(b *testing.B) {
	cases := []struct {
		name  string
		g     *graph.Graph
		query string
	}{
		{"diamond/n=128", gen.Figure5(128), "a*"},
		{"diamond/n=512", gen.Figure5(512), "a*"},
		{"clique/k=32", gen.Clique(32, "a"), "a a*"},
		{"clique/k=64", gen.Clique(64, "a"), "a a*"},
	}
	for _, tc := range cases {
		nfa := rpq.Compile(rpq.MustParse(tc.query))
		b.Run(tc.name, func(b *testing.B) {
			want := -1
			for i := 0; i < b.N; i++ {
				prs := eval.PairsCompiled(tc.g, nfa, eval.Options{Parallelism: 1})
				if want == -1 {
					want = len(prs)
				} else if len(prs) != want {
					b.Fatalf("got %d pairs, want %d", len(prs), want)
				}
			}
			if want <= 0 {
				b.Fatal("no pairs")
			}
		})
	}
	// The same sweeps under a serving-layer meter, with and without a live
	// obs.Progress attached. "metered" is what every admitted query already
	// pays (cancelable context, amortized tick); "progress" adds the
	// introspection mirror — the cost of being visible in GET /v1/queries;
	// "analyze" adds the sweep-telemetry sink of EXPLAIN ANALYZE, recorded
	// only at sweep exits and level barriers. EXPERIMENTS.md records the
	// metered→progress and metered→analyze deltas (±5% acceptance); the
	// bare cases above keep the unmetered kernel floor comparable across
	// PRs — "metered" with analyze off is the pinned analyze-off guard.
	for _, variant := range []struct {
		name    string
		prog    bool
		analyze bool
	}{{"metered", false, false}, {"progress", true, false}, {"analyze", false, true}} {
		for _, tc := range cases {
			nfa := rpq.Compile(rpq.MustParse(tc.query))
			b.Run(variant.name+"/"+tc.name, func(b *testing.B) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				want := -1
				for i := 0; i < b.N; i++ {
					var p *obs.Progress
					if variant.prog {
						p = &obs.Progress{}
					}
					var ss *eval.SweepStats
					if variant.analyze {
						ss = &eval.SweepStats{}
					}
					m := eval.NewMeterAnalyze(ctx, eval.Budget{}, p, ss)
					prs, err := eval.PairsProductCtx(ctx, eval.NewProduct(tc.g, nfa),
						eval.Options{Parallelism: 1, Meter: m})
					if err != nil {
						b.Fatal(err)
					}
					if want == -1 {
						want = len(prs)
					} else if len(prs) != want {
						b.Fatalf("got %d pairs, want %d", len(prs), want)
					}
				}
				if want <= 0 {
					b.Fatal("no pairs")
				}
			})
		}
	}
	// The same families through the engine's unified dispatch (plan cache
	// warm), quantifying planner + dispatch overhead on top of the kernel.
	g := gen.Clique(32, "a")
	e := NewEngine(g)
	if _, err := e.Pairs("a a*"); err != nil {
		b.Fatal(err)
	}
	b.Run(fmt.Sprintf("engine/clique/k=%d", 32), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Pairs("a a*"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
