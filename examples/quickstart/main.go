// Quickstart: build the paper's Figure 3 bank graph, run the language tower
// bottom-up — an RPQ, an ℓ-RPQ with a list variable, a dl-RPQ with data
// tests, and a dl-CRPQ — and inspect a compiled automaton.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"graphquery/internal/core"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
)

func main() {
	g := gen.BankProperty() // accounts a1..a6, transfers t1..t10 (Figure 3)
	eng := core.New(g)

	// 1. A plain RPQ (Section 3.1.1): which accounts can reach which by
	// chains of transfers?
	pairs, err := eng.Pairs("Transfer+")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Transfer+ connects %d ordered account pairs\n", len(pairs))

	// 2. An ℓ-RPQ (Section 3.1.4): the shortest chain of transfers from
	// Mike's account a3 to Megan's a1, collecting the transfers in z.
	res, err := eng.Paths("(Transfer^z)+", "a3", "a1", eval.Shortest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shortest transfer chain a3 → a1:")
	for _, r := range res {
		fmt.Println(" ", r.Format(g))
	}

	// 3. A dl-RPQ (Section 3.2.1): the same, but at least one transfer must
	// be under 4.5M — the data filter forces a longer path (Section 6.3).
	res, err = eng.Paths(
		"() {[Transfer]()}* [Transfer][amount < 4500000] () {[Transfer]()}*",
		"a3", "a5", eval.Shortest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shortest a3 → a5 chain containing a cheap transfer:")
	for _, r := range res {
		fmt.Println(" ", r.Format(g))
	}

	// 4. A dl-CRPQ (Section 3.2.2): joins across atoms.
	rows, err := eng.Rows("q(x, y) :- Transfer(x, y), Transfer+(y, x)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accounts x→y with a transfer and a transfer chain back:")
	fmt.Println(rows.Format(g))

	// 5. Automaton inspection (Section 6.2): the rewriting that defuses the
	// Section 6.1 bag-semantics bomb.
	out, err := eng.Explain("(((Transfer*)*)*)*")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
