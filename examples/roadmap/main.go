// Roadmap: the Section 7 research directions, exercised together on an
// organizational graph — two-way navigation (Remark 9), nested CRPQs
// (§3.1.3), worst-case-optimal joins, cardinality estimation, and RPQ
// containment (§7.1).
//
// Run with: go run ./examples/roadmap
package main

import (
	"fmt"
	"log"
	"math/rand"

	"graphquery/internal/cardest"
	"graphquery/internal/crpq"
	"graphquery/internal/graph"
	"graphquery/internal/regular"
	"graphquery/internal/rpq"
	"graphquery/internal/twoway"
)

// buildOrg synthesizes an org graph: "manages" edges form a tree,
// "collab" edges connect random peers.
func buildOrg(people int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	id := func(i int) graph.NodeID { return graph.NodeID(fmt.Sprintf("emp%d", i)) }
	for i := 0; i < people; i++ {
		b.AddNode(id(i), "Employee", graph.Props{"seniority": graph.Int(int64(rng.Intn(20)))})
	}
	e := 0
	for i := 1; i < people; i++ {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("m%d", e)), "manages", id(rng.Intn(i)), id(i), nil)
		e++
	}
	for i := 0; i < 3*people; i++ {
		u, v := rng.Intn(people), rng.Intn(people)
		if u == v {
			continue
		}
		b.AddEdge(graph.EdgeID(fmt.Sprintf("c%d", e)), "collab", id(u), id(v), nil)
		e++
	}
	return b.MustBuild()
}

func main() {
	g := buildOrg(120, 7)
	fmt.Printf("org graph: %d employees, %d edges\n\n", g.NumNodes(), g.NumEdges())

	// 1. Two-way navigation (Remark 9): colleagues under the same manager
	// are one step up and one step down: ~manages manages.
	peers := twoway.Pairs(g, twoway.MustParse("~manages manages"))
	fmt.Printf("same-manager pairs (incl. reflexive): %d\n", len(peers))

	// 2. Nested CRPQs (§3.1.3): the transitive closure of "mutual
	// collaboration" — inexpressible as a flat CRPQ (Example 14).
	res, err := regular.Eval(g, regular.MustParse(`
		Mutual(x, y) :- collab(x, y), collab(y, x)
		q(a, b) :- Mutual+(a, b)
	`), crpq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pairs in the mutual-collaboration closure: %d\n", len(res.Rows))

	// 3. Worst-case-optimal joins (§7.1): collaboration triangles, with
	// both plans cross-checked.
	tri := crpq.MustParse("q(x, y, z) :- collab(x, y), collab(y, z), collab(z, x)")
	pairwise, err := crpq.Eval(g, tri, crpq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	wcojRes, err := crpq.EvalWCOJ(g, tri, crpq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collaboration triangles: %d (plans agree: %v)\n",
		len(wcojRes.Rows), pairwise.Format(g) == wcojRes.Format(g))

	// 4. Cardinality estimation (§7.1): predicted vs actual.
	rows, err := cardest.Compare(g, []string{"manages", "collab collab", "manages+"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncardinality estimates:")
	for _, r := range rows {
		fmt.Printf("  %-16s actual %5d  estimated %8.1f  q-error %.2f\n",
			r.Query, r.Actual, r.Estimate, r.QError)
	}

	// 5. Static analysis (§7.1): containment of management-chain queries.
	a := rpq.MustParse("manages{2,4}")
	b := rpq.MustParse("manages+")
	fmt.Printf("\nmanages{2,4} ⊆ manages+ : %v\n", rpq.Contained(a, b))
	fmt.Printf("manages+ ⊆ manages{2,4} : %v\n", rpq.Contained(b, a))
}
