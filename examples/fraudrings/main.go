// Fraudrings: money-laundering analytics over a synthetic transfer network,
// the workload the paper's running bank example motivates. It uses dl-RPQs
// for amount- and date-filtered paths, path modes for ring detection, and
// PMRs to represent the (possibly infinite) evidence sets compactly.
//
// Run with: go run ./examples/fraudrings
package main

import (
	"fmt"
	"log"
	"math/rand"

	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/pmr"
	"graphquery/internal/rpq"
)

// buildNetwork synthesizes a transfer network: honest accounts form a
// sparse random graph; a laundering ring cycles money through a small set
// of mule accounts in increasing-date order with amounts just under the
// reporting threshold.
func buildNetwork(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	const honest = 40
	for i := 0; i < honest; i++ {
		b.AddNode(graph.NodeID(fmt.Sprintf("acc%d", i)), "Account",
			graph.Props{"isBlocked": graph.Str("no")})
	}
	mules := []graph.NodeID{"muleA", "muleB", "muleC", "muleD"}
	for _, m := range mules {
		b.AddNode(m, "Account", graph.Props{"isBlocked": graph.Str("no")})
	}
	e := 0
	addTransfer := func(src, tgt graph.NodeID, amount float64, day int) {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("t%d", e)), "Transfer", src, tgt, graph.Props{
			"amount": graph.Float(amount),
			"day":    graph.Int(int64(day)),
		})
		e++
	}
	// Honest traffic: random transfers with random dates and amounts.
	for i := 0; i < 3*honest; i++ {
		s := graph.NodeID(fmt.Sprintf("acc%d", rng.Intn(honest)))
		t := graph.NodeID(fmt.Sprintf("acc%d", rng.Intn(honest)))
		if s == t {
			continue
		}
		addTransfer(s, t, 1e4+rng.Float64()*2e6, rng.Intn(300))
	}
	// The ring: acc0 → muleA → muleB → muleC → muleD → acc0, structured
	// amounts (just under 10k) on consecutive days.
	chain := []graph.NodeID{"acc0", "muleA", "muleB", "muleC", "muleD", "acc0"}
	for i := 0; i+1 < len(chain); i++ {
		addTransfer(chain[i], chain[i+1], 9500+float64(i), 100+i)
	}
	return b.MustBuild()
}

func main() {
	g := buildNetwork(2025)
	fmt.Printf("network: %d accounts, %d transfers\n\n", g.NumNodes(), g.NumEdges())

	// 1. Structuring detection (dl-RPQ, Section 3.2.1): chains of 3+
	// transfers, each under the 10k reporting threshold, with strictly
	// increasing days — the temporal pattern Example 21 makes expressible
	// for edges.
	structured := dlrpq.MustParse(
		"() [Transfer^z][amount < 10000][x := day] " +
			"{ () [Transfer^z][amount < 10000][day > x][x := day] }{2,} ()")
	fmt.Println("structuring chains (≥3 small transfers on increasing days):")
	found := 0
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			res, err := dlrpq.EvalBetween(g, structured, u, v, eval.All, dlrpq.Options{MaxLen: 5})
			if err != nil {
				log.Fatal(err)
			}
			for _, pb := range res {
				if pb.Path.Len() >= 4 { // report only the longest evidence
					fmt.Printf("  %s\n", pb.Path.Format(g))
					found++
				}
			}
		}
	}
	if found == 0 {
		fmt.Println("  none (unexpected: the planted ring should appear)")
	}

	// 2. Ring detection with path modes (Section 3.1.5): trails from an
	// account back to itself of length ≥ 4.
	fmt.Println("\ntransfer rings through acc0 (trail mode):")
	acc0 := g.MustNode("acc0")
	rings, err := eval.Paths(g, rpq.MustParse("Transfer{4,6}"), acc0, acc0, eval.Trail, eval.Options{Limit: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range rings {
		fmt.Printf("  %s\n", p.Format(g))
	}

	// 3. Evidence sets as PMRs (Section 6.4): all transfer paths between
	// acc0 and muleD, represented without enumeration.
	r := pmr.FromProduct(g, rpq.MustParse("Transfer+"), acc0, g.MustNode("muleD"))
	count, infinite := r.Cardinality()
	if infinite {
		fmt.Printf("\nacc0 → muleD evidence: infinitely many transfer paths, PMR size %d\n", r.Size())
	} else {
		fmt.Printf("\nacc0 → muleD evidence: %s transfer paths, PMR size %d\n", count, r.Size())
	}
	fmt.Println("sample evidence paths:")
	for _, p := range r.Enumerate(3) {
		fmt.Printf("  %s\n", p.Format(g))
	}
}
