// CoreGQL: the Section 4 pipeline end-to-end — patterns → first-normal-form
// relations → relational algebra — including the worked query of Section
// 4.1.3 (nodes connected to two different neighbors sharing a property
// value) on the bank graph.
//
// Run with: go run ./examples/coregql
package main

import (
	"fmt"
	"log"

	"graphquery/internal/coregql"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/relalg"
)

func main() {
	g := gen.BankProperty()

	// π₁ := (x) --> (x₁) with Ω₁ = (x, x.owner, x₁, x₁.isBlocked) — the
	// Section 4.1.3 query shape, instantiated with p = isBlocked: accounts
	// transferring to two different accounts with the same blocked status.
	p1 := coregql.Concat(coregql.Node("x"), coregql.AnonEdge(), coregql.Node("x1"))
	r1, err := coregql.Output(g, p1, []string{"x", "x.owner", "x1", "x1.isBlocked"}, coregql.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p2 := coregql.Concat(coregql.Node("x"), coregql.AnonEdge(), coregql.Node("x2"))
	r2, err := coregql.Output(g, p2, []string{"x", "x.owner", "x2", "x2.isBlocked"}, coregql.Options{})
	if err != nil {
		log.Fatal(err)
	}
	j, err := r1.Join(r2)
	if err != nil {
		log.Fatal(err)
	}
	x1c, _ := j.Col("x1")
	x2c, _ := j.Col("x2")
	o1c, _ := j.Col("x1.isBlocked")
	o2c, _ := j.Col("x2.isBlocked")
	sel := j.Select(func(t []relalg.Cell) bool {
		return !t[x1c].Equal(t[x2c]) && t[o1c].Equal(t[o2c])
	})
	out, err := sel.Project("x", "x.owner")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accounts paying two different accounts with equal blocked status:")
	fmt.Println(out.Format(g))

	// The increasing-values pattern πinc of Section 5.1 — and the condition
	// discipline: a condition over variables erased by repetition is
	// rejected at validation time.
	inc := coregql.Concat(
		coregql.Node("s"),
		coregql.Star(coregql.Filter(
			coregql.Concat(coregql.Node("u"), coregql.AnonEdge(), coregql.Node("v")),
			coregql.Cmp("u", "owner", graph.OpLt, "v", "owner"))),
		coregql.Node("t"),
	)
	ms, err := coregql.EvalPattern(g, inc, coregql.Options{MaxLen: 6})
	if err != nil {
		log.Fatal(err)
	}
	best := 0
	for _, m := range ms {
		if m.Path.Len() > best {
			best = m.Path.Len()
		}
	}
	fmt.Printf("longest transfer path with strictly increasing owner names: %d edges\n", best)

	bad := coregql.Filter(
		coregql.Star(coregql.Concat(coregql.Node("u"), coregql.AnonEdge(), coregql.Node("v"))),
		coregql.Cmp("u", "owner", graph.OpLt, "v", "owner"))
	if err := coregql.Validate(bad); err != nil {
		fmt.Println("\nvalidation catches conditions over erased variables:")
		fmt.Println(" ", err)
	}
}
