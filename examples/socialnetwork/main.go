// Socialnetwork: CRPQ joins, wildcard RPQs, and path modes over a
// preferential-attachment social graph — the "entities as nodes,
// relationships as edges" workload of the paper's introduction.
//
// Run with: go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"graphquery/internal/core"
	"graphquery/internal/crpq"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/rpq"
)

func main() {
	g := gen.Social(200, 42) // Person nodes, knows/follows edges
	eng := core.New(g)
	fmt.Printf("social graph: %d people, %d relationships\n\n", g.NumNodes(), g.NumEdges())

	// 1. Reachability with a wildcard RPQ (Remark 11): who can p150 reach
	// through any mix of relationships? (knows-edges point from newer to
	// older members, so late joiners reach far.)
	reach := eval.ReachableFrom(g, rpq.MustParse("_*"), g.MustNode("p150"))
	fmt.Printf("p150 reaches %d people through any relationship chain\n", len(reach))

	// 2. A CRPQ join (Section 3.1.2): mutual-follow pairs.
	q := crpq.MustParse("q(x, y) :- follows(x, y), follows(y, x)")
	rows, err := crpq.Eval(g, q, crpq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mutual-follow pairs: %d\n", len(rows.Rows))
	for i, row := range rows.Rows {
		if i == 5 {
			fmt.Println("  …")
			break
		}
		fmt.Printf("  %s ↔ %s\n", row[0].Format(g), row[1].Format(g))
	}

	// 3. Shortest introduction chains (ℓ-CRPQ with list variables,
	// Example 17 style): the chain of knows-edges from p7 to p0.
	res, err := eng.Paths("(knows^z)+", "p7", "p0", eval.Shortest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nshortest introduction chain p7 → p0:")
	for _, r := range res {
		fmt.Println(" ", r.Format(g))
	}

	// 4. Simple vs all paths (Section 6.3 path modes): cycles in the
	// knows graph inflate the unrestricted count; simple mode excludes
	// them. Endpoints come from the first knows-edge for robustness.
	var src, dst int
	for i := 0; i < g.NumEdges(); i++ {
		if e := g.Edge(i); e.Label == "knows" {
			src, dst = e.Src, e.Tgt
			break
		}
	}
	simple, err := eval.Paths(g, rpq.MustParse("(knows | follows){1,4}"),
		src, dst, eval.Simple, eval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	all, err := eval.Paths(g, rpq.MustParse("(knows | follows){1,4}"),
		src, dst, eval.All, eval.Options{MaxLen: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npaths %s → %s up to length 4: %d total, %d simple\n",
		g.Node(src).ID, g.Node(dst).ID, len(all), len(simple))
}
