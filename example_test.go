package graphquery_test

import (
	"fmt"
	"log"

	"graphquery"
)

// buildExampleGraph assembles a three-account transfer graph.
func buildExampleGraph() *graphquery.Graph {
	return graphquery.NewBuilder().
		AddNode("a1", "Account", graphquery.Props{"owner": graphquery.Str("Megan")}).
		AddNode("a2", "Account", graphquery.Props{"owner": graphquery.Str("Mike")}).
		AddNode("a3", "Account", graphquery.Props{"owner": graphquery.Str("Jay")}).
		AddEdge("t1", "Transfer", "a1", "a2", graphquery.Props{"amount": graphquery.Float(5e6)}).
		AddEdge("t2", "Transfer", "a2", "a3", graphquery.Props{"amount": graphquery.Float(1e6)}).
		MustBuild()
}

func ExampleEngine_pairs() {
	eng := graphquery.NewEngine(buildExampleGraph())
	pairs, err := eng.Pairs("Transfer+")
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range pairs {
		fmt.Printf("(%s, %s)\n", pr[0], pr[1])
	}
	// Output:
	// (a1, a2)
	// (a1, a3)
	// (a2, a3)
}

func ExampleEngine_paths() {
	eng := graphquery.NewEngine(buildExampleGraph())
	res, err := eng.Paths("(Transfer^z)+", "a1", "a3", graphquery.Shortest)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Println(r.Format(eng.Graph()))
	}
	// Output:
	// path(a1, t1, a2, t2, a3)  {z -> list(t1, t2)}
}

func ExampleEngine_dataTests() {
	eng := graphquery.NewEngine(buildExampleGraph())
	// A dl-RPQ: transfer chains containing at least one transfer under 2M.
	res, err := eng.Paths(
		"() {[Transfer]()}* [Transfer][amount < 2000000] () {[Transfer]()}*",
		"a1", "a3", graphquery.Shortest)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Println(r.Path.Format(eng.Graph()))
	}
	// Output:
	// path(a1, t1, a2, t2, a3)
}

func ExampleEngine_rows() {
	eng := graphquery.NewEngine(buildExampleGraph())
	res, err := eng.Rows("q(x, y) :- Transfer(x, y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Format(eng.Graph()))
	// Output:
	// a1, a2
	// a2, a3
}
