package graphquery

import (
	"bytes"
	"testing"
)

// TestFacadeRoundTrip exercises the public API end to end: build, query,
// serialize.
func TestFacadeRoundTrip(t *testing.T) {
	g := NewBuilder().
		AddNode("a", "Account", Props{"owner": Str("Megan"), "score": Int(7)}).
		AddNode("b", "Account", Props{"owner": Str("Mike"), "active": Bool(true)}).
		AddNode("c", "Account", Props{"rate": Float(0.5)}).
		AddEdge("t1", "Transfer", "a", "b", Props{"amount": Float(5e6)}).
		AddEdge("t2", "Transfer", "b", "c", Props{"amount": Float(1e6)}).
		MustBuild()

	eng := NewEngine(g)
	pairs, err := eng.Pairs("Transfer+")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 { // a→b, b→c, a→c
		t.Errorf("pairs = %d, want 3", len(pairs))
	}

	paths, err := eng.Paths("(Transfer^z)+", "a", "c", Shortest)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].Path.Len() != 2 {
		t.Fatalf("paths = %v", paths)
	}

	dl, err := eng.Paths("() [Transfer][amount < 2000000] ()", "b", "c", All)
	if err != nil {
		t.Fatal(err)
	}
	if len(dl) != 1 {
		t.Errorf("dl-RPQ results = %d, want 1", len(dl))
	}

	rows, err := eng.Rows("q(x, y) :- Transfer(x, y), Transfer(y, z)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 {
		t.Errorf("rows = %d, want 1 (a,b)", len(rows.Rows))
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 3 || g2.NumEdges() != 2 {
		t.Error("JSON round trip lost elements")
	}
	if Null().Kind() != 0 {
		t.Error("Null should be the zero kind")
	}
}

func TestFacadeModes(t *testing.T) {
	for _, m := range []Mode{All, Shortest, Simple, Trail} {
		if m.String() == "" {
			t.Error("mode should render")
		}
	}
}
