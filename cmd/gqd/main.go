// Command gqd ("graph query driver") is an interactive shell and one-shot
// runner for the query languages implemented in this repository: RPQs,
// ℓ-RPQs, dl-RPQs, and (dl-)CRPQs, plus automaton inspection and PMR
// construction.
//
// Usage:
//
//	gqd -graph bank.json                          # interactive shell
//	gqd -graph bank.json -q 'Transfer*'           # all endpoint pairs
//	gqd -graph bank.json -q '(Transfer^z)+' -from a3 -to a5 -mode shortest
//	gqd -graph bank.json -q 'q(x,y) :- Transfer(x,y), Transfer(y,x)'
//	gqd -builtin bank-property -q '() [Transfer][amount < 4500000] ()' -from a3 -to a5
//
// Built-in graphs (-builtin): bank (Figure 2), bank-property (Figure 3),
// figure5-N, clique-N, social-N.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"graphquery/internal/core"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/obs"
)

func main() {
	graphPath := flag.String("graph", "", "path to a graph JSON file")
	nodesCSV := flag.String("nodes", "", "path to a nodes CSV (id,label[,props…]); requires -edges")
	edgesCSV := flag.String("edges", "", "path to an edges CSV (id,label,src,tgt[,props…])")
	builtin := flag.String("builtin", "", "built-in graph: bank, bank-property, figure5-N, clique-N, social-N")
	query := flag.String("q", "", "query (RPQ, ℓ-RPQ, dl-RPQ, or CRPQ); omit for interactive mode")
	from := flag.String("from", "", "source node (path queries)")
	to := flag.String("to", "", "target node (path queries)")
	modeStr := flag.String("mode", "all", "path mode: all, shortest, simple, trail")
	maxLen := flag.Int("maxlen", 16, "bound on path length for mode all")
	limit := flag.Int("limit", 100, "bound on number of results")
	programPath := flag.String("program", "", "path to a nested-CRPQ program file (regular queries)")
	flag.BoolVar(&traceQueries, "trace", false, "print the query plan and evaluation span timings to stderr")
	flag.BoolVar(&analyzeQueries, "analyze", false, "run in EXPLAIN ANALYZE mode: print the annotated plan tree (estimate vs actual, q-errors, sweep telemetry) to stderr")
	flag.Parse()

	g, err := loadGraph(*graphPath, *nodesCSV, *edgesCSV, *builtin)
	if err != nil {
		fatal(err)
	}
	eng := core.New(g)
	eng.MaxLen = *maxLen
	eng.Limit = *limit

	if *programPath != "" {
		src, err := os.ReadFile(*programPath)
		if err != nil {
			fatal(err)
		}
		res, err := eng.ProgramRows(string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n%d row(s)\n", res.Format(g), len(res.Rows))
		return
	}
	if *query != "" {
		// Ctrl-C cancels the running query via context rather than killing
		// the process mid-write.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		err := runOnce(ctx, eng, *query, *from, *to, *modeStr)
		stop()
		if err != nil {
			fatal(err)
		}
		return
	}
	repl(eng)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gqd:", err)
	os.Exit(1)
}

// traceQueries mirrors the -trace flag: runOnce prints each query's plan
// line and span timings to traceOut (stderr, so piped result output stays
// clean) — on the error and timeout paths too, which is exactly when an
// operator needs to see where the time went. Tests redirect traceOut.
var (
	traceQueries bool
	traceOut     io.Writer = os.Stderr

	// analyzeQueries mirrors the -analyze flag: runOnce evaluates with
	// Request.Analyze set and prints the annotated plan tree — per-node
	// estimate vs actual with q-errors, plus the kernel's per-level sweep
	// telemetry — to traceOut, following the -trace convention.
	analyzeQueries bool
)

// printAnalyze renders the annotated plan tree as indented JSON on
// traceOut. JSON rather than a bespoke rendering: the tree is exactly what
// POST /v1/query {"analyze":true} returns, so the two surfaces stay
// comparable and scripts can diff them.
func printAnalyze(ap *core.AnnotatedPlan) {
	b, err := json.MarshalIndent(ap, "", "  ")
	if err != nil {
		return
	}
	fmt.Fprintf(traceOut, "analyze: %s\n", b)
}

// printTrace renders the plan line and spans recorded on tr. The trace is
// caller-supplied to QueryCtx, so it carries the spans of errored queries
// (timeout, exhausted budget, interrupt) that never produced a Response.
func printTrace(tr *obs.Trace) {
	if plan := tr.Attr("plan"); plan != "" {
		fmt.Fprintf(traceOut, "plan:  %s\n", plan)
	}
	if spans := tr.Spans(); len(spans) > 0 {
		fmt.Fprintf(traceOut, "spans: %s\n", obs.SpansString(spans))
	}
}

func loadGraph(path, nodesCSV, edgesCSV, builtin string) (*graph.Graph, error) {
	switch {
	case nodesCSV != "" || edgesCSV != "":
		if nodesCSV == "" || edgesCSV == "" {
			return nil, fmt.Errorf("-nodes and -edges must be given together")
		}
		nf, err := os.Open(nodesCSV)
		if err != nil {
			return nil, err
		}
		defer nf.Close()
		ef, err := os.Open(edgesCSV)
		if err != nil {
			return nil, err
		}
		defer ef.Close()
		return graph.ReadCSV(nf, ef)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadJSON(f)
	case builtin == "":
		return gen.BankEdgeLabeled(), nil
	default:
		return gen.Named(builtin)
	}
}

func runOnce(ctx context.Context, eng *core.Engine, query, from, to, modeStr string) error {
	g := eng.Graph()
	mode := eval.All
	if modeStr != "" {
		var err error
		if mode, err = eval.ParseMode(modeStr); err != nil {
			return err
		}
	}
	tr := obs.NewTrace()
	if traceQueries {
		// Deferred so the plan and spans print on every exit path —
		// success, error, and interrupt alike.
		defer printTrace(tr)
	}
	resp, err := eng.QueryCtx(ctx, core.Request{
		Query:   query,
		From:    graph.NodeID(from),
		To:      graph.NodeID(to),
		Mode:    mode,
		Trace:   tr,
		Analyze: analyzeQueries,
	})
	if err != nil {
		if errors.Is(err, eval.ErrCanceled) {
			return errors.New("canceled (interrupt received before the query finished)")
		}
		return err
	}
	if resp.Analyze != nil {
		printAnalyze(resp.Analyze)
	}
	switch resp.Kind {
	case "rows":
		fmt.Printf("%s\n%d row(s)\n", resp.Rows.Format(g), len(resp.Rows.Rows))
	case "pairs":
		for _, pr := range resp.Pairs {
			fmt.Printf("(%s, %s)\n", pr[0], pr[1])
		}
		fmt.Printf("%d pair(s)\n", len(resp.Pairs))
	case "paths":
		for _, r := range resp.Paths {
			fmt.Println(r.Format(g))
		}
		fmt.Printf("%d result(s)\n", len(resp.Paths))
	}
	return nil
}

// interruptible runs one query under a context canceled by Ctrl-C, then
// restores the default signal disposition so Ctrl-C at the prompt still
// kills the shell.
func interruptible(eng *core.Engine, query, from, to, modeStr string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	return runOnce(ctx, eng, query, from, to, modeStr)
}

const replHelp = `commands:
  <query>                          evaluate (RPQ pairs / CRPQ rows)
  paths <mode> <src> <dst> <query> enumerate paths under a mode
  explain <rpq>                    show automaton statistics
  pmr <src> <dst> <rpq>            build a path multiset representation
  twoway <2rpq>                    two-way RPQ pairs (inverse atoms: ~a)
  estimate <rpq>                   cardinality estimate vs actual
  gql <pattern>                    GQL ASCII-art pattern matching
  nodes | edges                    list graph elements
  help | quit
`

func repl(eng *core.Engine) {
	g := eng.Graph()
	fmt.Printf("gqd: %d nodes, %d edges. Type 'help' for commands.\n", g.NumNodes(), g.NumEdges())
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("gqd> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "quit", "exit":
			return
		case "help":
			fmt.Print(replHelp)
		case "nodes":
			for i := 0; i < g.NumNodes(); i++ {
				n := g.Node(i)
				fmt.Printf("  %s %s\n", n.ID, n.Label)
			}
		case "edges":
			for i := 0; i < g.NumEdges(); i++ {
				e := g.Edge(i)
				fmt.Printf("  %s: %s --%s--> %s\n", e.ID, g.Node(e.Src).ID, e.Label, g.Node(e.Tgt).ID)
			}
		case "twoway":
			q := strings.TrimSpace(strings.TrimPrefix(line, "twoway"))
			pairs, err := eng.TwoWayPairs(q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, pr := range pairs {
				fmt.Printf("(%s, %s)\n", pr[0], pr[1])
			}
			fmt.Printf("%d pair(s)\n", len(pairs))
		case "estimate":
			q := strings.TrimSpace(strings.TrimPrefix(line, "estimate"))
			est, actual, err := eng.Estimate(q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("estimated %.1f answer pairs, actual %d\n", est, actual)
		case "gql":
			q := strings.TrimSpace(strings.TrimPrefix(line, "gql"))
			lines, err := eng.GQLMatch(q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, l := range lines {
				fmt.Println(l)
			}
			fmt.Printf("%d match(es)\n", len(lines))
		case "explain":
			out, err := eng.Explain(strings.TrimSpace(strings.TrimPrefix(line, "explain")))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(out)
		case "pmr":
			if len(fields) < 4 {
				fmt.Println("usage: pmr <src> <dst> <rpq>")
				continue
			}
			q := strings.Join(fields[3:], " ")
			r, err := eng.Representation(q, graph.NodeID(fields[1]), graph.NodeID(fields[2]), false)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			count, infinite := r.Cardinality()
			if infinite {
				fmt.Printf("PMR: size %d, infinitely many paths; first 5:\n", r.Size())
			} else {
				fmt.Printf("PMR: size %d, %s path(s); first 5:\n", r.Size(), count)
			}
			for _, p := range r.Enumerate(5) {
				fmt.Println(" ", p.Format(g))
			}
		case "paths":
			if len(fields) < 5 {
				fmt.Println("usage: paths <mode> <src> <dst> <query>")
				continue
			}
			q := strings.Join(fields[4:], " ")
			if err := interruptible(eng, q, fields[2], fields[3], fields[1]); err != nil {
				fmt.Println("error:", err)
			}
		default:
			if err := interruptible(eng, line, "", "", "all"); err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}
