package main

import (
	"context"
	"strings"
	"testing"

	"graphquery/internal/core"
	"graphquery/internal/gen"
)

// TestTracePrintsOnErrorPath: -trace must print the plan and span timings
// even when the query fails — a canceled or timed-out query is exactly the
// one whose time breakdown the operator needs. Pre-fix, the trace printed
// only after a successful response.
func TestTracePrintsOnErrorPath(t *testing.T) {
	var buf strings.Builder
	traceQueries, traceOut = true, &buf
	defer func() { traceQueries = false }()

	eng := core.New(gen.Clique(64, "a"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // doomed before the kernel starts

	err := runOnce(ctx, eng, "a*", "", "", "all")
	if err == nil {
		t.Fatal("canceled query returned no error")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("err = %v, want the interrupt message", err)
	}
	out := buf.String()
	if !strings.Contains(out, "plan:") || !strings.Contains(out, "dir=") {
		t.Errorf("-trace printed no plan line on the error path:\n%s", out)
	}
	if !strings.Contains(out, "spans:") || !strings.Contains(out, "kernel=") {
		t.Errorf("-trace printed no span timings on the error path:\n%s", out)
	}
}

// TestTracePrintsOnSuccessPath: the success path still traces, and the
// spans cover the full pipeline.
func TestTracePrintsOnSuccessPath(t *testing.T) {
	var buf strings.Builder
	traceQueries, traceOut = true, &buf
	defer func() { traceQueries = false }()

	eng := core.New(gen.BankEdgeLabeled())
	if err := runOnce(context.Background(), eng, "Transfer*", "", "", "all"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "plan:") || !strings.Contains(out, "spans:") {
		t.Errorf("-trace printed nothing on success:\n%s", out)
	}
	if !strings.Contains(out, "kernel=") || !strings.Contains(out, "enumerate=") {
		t.Errorf("spans missing pipeline stages:\n%s", out)
	}
}
