// Command gqserverd serves graph queries over HTTP: named graphs from the
// built-in catalog (or JSON files), evaluated by the core engine with
// per-query deadlines, resource budgets, and admission control.
//
// Usage:
//
//	gqserverd -graphs bank,figure5-8                  # serve two catalog graphs
//	gqserverd -addr :0 -graphs bank                   # pick a free port (printed)
//	gqserverd -graphs bank -default-timeout 2s -max-states 50000000
//
//	curl -s localhost:8080/v1/graphs
//	curl -s localhost:8080/v1/query -d '{"graph":"bank","query":"Transfer*"}'
//	curl -s localhost:8080/v1/statz
//	curl -s localhost:8080/metrics                    # Prometheus text format
//
// Streaming: POST /v1/query with Accept: application/x-ndjson (or
// "stream": true in the body) delivers results as chunked NDJSON — a
// header line, one row per line, and a final trailer record carrying the
// outcome and counts — so a result set never has to fit in server memory
// and a slow client throttles evaluation (backpressure). -stream-chunk
// sets the rows per flushed chunk, -stream-buffer the chunks in flight.
// A "cursor" field pages the stream: "start" plus a limit yields page one
// and a next_cursor token in the trailer.
//
//	curl -sN localhost:8080/v1/query -H 'Accept: application/x-ndjson' \
//	    -d '{"graph":"bank","query":"Transfer*"}'
//	curl -sN localhost:8080/v1/query -H 'Accept: application/x-ndjson' \
//	    -d '{"graph":"bank","query":"Transfer*","limit":100,"cursor":"start"}'
//
// Live graph store: -mutable enables the write surface — POST /v1/graphs
// bulk-loads a graph (JSON or CSV payload, bounded by -max-load-bytes),
// POST /v1/graphs/{name}/mutate applies one atomic mutation batch (optionally
// preconditioned on if_version), DELETE /v1/graphs/{name} drops a graph, and
// GET /v1/graphs/{name}/export streams it back out. Writes land as deltas
// over the immutable base CSR; a background compactor folds the delta log
// into a fresh CSR past -compact-threshold ops. In-flight queries keep the
// snapshot they started on (MVCC); graphs given via -graphs stay read-only.
//
// Observability: -slow-query 100ms logs every query at or over the
// threshold as one structured WARN record (query, graph, plan, span
// timings, budget consumption, outcome); -query-log query.jsonl writes the
// same record for EVERY admitted query as one JSONL line — the structured
// query event log, size-rotated at -query-log-max-bytes keeping
// -query-log-keep old files; -debug-addr 127.0.0.1:6060 serves
// net/http/pprof on a separate listener. "analyze": true on POST /v1/query
// returns the annotated plan tree (per-node estimate vs actual with
// q-errors, per-level sweep telemetry) and feeds the per-graph cardinality
// feedback store surfaced in /v1/statz and /metrics.
//
// Live introspection: GET /v1/queries lists in-flight queries with their
// live progress (stage, product states, frontier), GET /v1/queries/recent
// the last completed ones, and POST /v1/queries/{id}/cancel kills a
// runaway query cooperatively — it ends with a "killed" outcome and no
// partial results, without restarting the daemon. Every /v1/query reply
// carries the query's ID in the X-Query-ID header.
//
// Graphs named like file paths (containing a slash or ending in .json) are
// loaded as graph JSON; everything else resolves through the catalog:
// bank, bank-property, figure5-N, clique-N, social-N, cycle-N, path-N,
// grid-WxH. SIGINT/SIGTERM trigger a graceful shutdown that drains
// in-flight queries up to -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/obs"
	"graphquery/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	graphs := flag.String("graphs", "bank", "comma-separated graphs to serve: catalog names or graph JSON paths")
	maxConcurrent := flag.Int("max-concurrent", 16, "queries evaluating at once")
	maxQueue := flag.Int("max-queue", 64, "admissions waiting for a slot before 429s")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "per-query deadline when the request has none (0: none)")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeouts (0: uncapped)")
	maxStates := flag.Int64("max-states", 0, "default per-query product-state budget (0: unlimited)")
	maxRows := flag.Int64("max-rows", 0, "default per-query result-row budget (0: unlimited)")
	maxLen := flag.Int("maxlen", 16, "bound on path length for mode all")
	limit := flag.Int("limit", 0, "bound on returned paths/rows (0: unlimited)")
	parallelism := flag.Int("parallelism", 0, "worker goroutines per query (0: one per CPU)")
	shards := flag.Int("shards", 0, "kernel shards for heavy sweeps (0 or 1: unsharded)")
	drain := flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight queries")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this as structured WARN records (0: off)")
	queryLog := flag.String("query-log", "", "append one JSONL record per admitted query to this file (empty: off)")
	queryLogMaxBytes := flag.Int64("query-log-max-bytes", 0, "rotate the query log when it would exceed this size (0: never)")
	queryLogKeep := flag.Int("query-log-keep", 3, "rotated query-log files retained (.1 newest)")
	recent := flag.Int("recent", 0, "completed queries kept for GET /v1/queries/recent (0: default 64)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty: off)")
	mutable := flag.Bool("mutable", false, "enable the write surface: POST /v1/graphs, mutate, delete")
	compactThreshold := flag.Int("compact-threshold", 0, "delta-log depth that triggers background compaction (0: default; negative: never)")
	maxLoadBytes := flag.Int64("max-load-bytes", 0, "largest POST /v1/graphs body accepted (0: default 32MiB)")
	streamChunk := flag.Int("stream-chunk", 0, "rows per flushed NDJSON chunk on streamed queries (0: default 256)")
	streamBuffer := flag.Int("stream-buffer", 0, "chunks buffered between evaluation and a slow streaming client (0: default 4)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	var queryLogW io.Writer
	if *queryLog != "" {
		// The rotating writer is size-bounded when -query-log-max-bytes is
		// set and plain append-only otherwise (maxBytes 0 never rotates).
		// Each JSONL record is one Write, so rotation never tears a record.
		f, err := obs.NewRotatingWriter(*queryLog, *queryLogMaxBytes, *queryLogKeep)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		queryLogW = f
	}

	srv := server.New(server.Config{
		DefaultTimeout:   *defaultTimeout,
		MaxTimeout:       *maxTimeout,
		MaxConcurrent:    *maxConcurrent,
		MaxQueue:         *maxQueue,
		DefaultBudget:    eval.Budget{MaxStates: *maxStates, MaxRows: *maxRows},
		MaxLen:           *maxLen,
		Limit:            *limit,
		Parallelism:      *parallelism,
		Shards:           *shards,
		SlowQuery:        *slowQuery,
		Logger:           logger,
		QueryLog:         queryLogW,
		Recent:           *recent,
		Mutable:          *mutable,
		CompactThreshold: *compactThreshold,
		MaxLoadBytes:     *maxLoadBytes,
		StreamChunk:      *streamChunk,
		StreamBuffer:     *streamBuffer,
	})
	defer srv.Close()
	for _, name := range strings.Split(*graphs, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := load(srv, name); err != nil {
			fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Printed on stdout so scripts (and the smoke test) can scrape the
	// bound port when -addr :0 picked a random one.
	fmt.Printf("gqserverd: listening on http://%s (graphs: %s)\n",
		ln.Addr(), strings.Join(srv.GraphNames(), ", "))

	// The pprof surface lives on its own listener so profiling endpoints
	// are never reachable through the query port. http.DefaultServeMux
	// carries the net/http/pprof handlers via its import side effect.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("gqserverd: debug (pprof) on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, http.DefaultServeMux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server failed", "err", err)
			}
		}()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("gqserverd: shutting down, draining in-flight queries")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "gqserverd: drain incomplete:", err)
		hs.Close()
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Println("gqserverd: bye")
}

// load registers one graph: a path (slash or .json suffix) reads graph
// JSON and registers under the file's base name; anything else resolves
// through the built-in catalog.
func load(srv *server.Server, name string) error {
	if strings.ContainsRune(name, os.PathSeparator) || strings.HasSuffix(name, ".json") {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err := graph.ReadJSON(f)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		srv.Register(strings.TrimSuffix(filepath.Base(name), ".json"), g)
		return nil
	}
	return srv.LoadNamed(name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gqserverd:", err)
	os.Exit(1)
}
