// Command experiments regenerates the paper-reproduction experiments
// indexed in DESIGN.md and EXPERIMENTS.md.
//
// Usage:
//
//	experiments             # run everything (E01..E24)
//	experiments -run E15    # run one experiment
//	experiments -list       # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"graphquery/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "run a single experiment by ID (e.g. E15)")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			e, _ := experiments.Get(id)
			fmt.Printf("%s  %s\n", id, e.Title)
		}
	case *runID != "":
		if err := experiments.Run(os.Stdout, *runID); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
