package graphquery

// Benchmark harness: one testing.B benchmark per quantitative experiment of
// EXPERIMENTS.md (the paper has no performance tables of its own — these
// benchmarks quantify the asymptotic claims its discussion makes: the
// bag-semantics explosion of §6.1, the exponential outputs of §6.3, the
// NP-hard path modes, the compactness of PMRs, the cost of the EXCEPT
// workaround of §5.2, and the efficiency of product-construction
// evaluation).

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"graphquery/internal/bag"
	"graphquery/internal/cardest"
	"graphquery/internal/coregql"
	"graphquery/internal/crpq"
	"graphquery/internal/cypherfrag"
	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/gpath"
	"graphquery/internal/gql"
	"graphquery/internal/graph"
	"graphquery/internal/lrpq"
	"graphquery/internal/pg"
	"graphquery/internal/pmr"
	"graphquery/internal/regular"
	"graphquery/internal/relalg"
	"graphquery/internal/rpq"
	"graphquery/internal/spanner"
	"graphquery/internal/twoway"
)

// BenchmarkE09_Except measures the §5.2 complement workaround (match all
// paths, match the violating pattern, subtract) for the increasing-edge-
// values query.
func BenchmarkE09_Except(b *testing.B) {
	for _, n := range []int{8, 16, 24} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := dateChain(n)
			walk := gqlWalk()
			bad := gqlBadPair()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				all, err := gql.MatchPaths(g, walk, gql.Options{MaxLen: n})
				if err != nil {
					b.Fatal(err)
				}
				viol, err := gql.MatchPaths(g, bad, gql.Options{MaxLen: n})
				if err != nil {
					b.Fatal(err)
				}
				if got := gql.Except(all, viol); len(got) == 0 {
					b.Fatal("expected surviving paths")
				}
			}
		})
	}
}

// BenchmarkE09_DlRPQ measures the direct symmetric dl-RPQ formulation of
// the same query (Example 21), between fixed endpoints.
func BenchmarkE09_DlRPQ(b *testing.B) {
	expr := dlrpq.MustParse("() [_^z][x := k] { () [_^z][k > x][x := k] }* ()")
	for _, n := range []int{8, 16, 24} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := dateChain(n)
			src, dst := 0, g.NumNodes()-1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dlrpq.EvalBetween(g, expr, src, dst, eval.All,
					dlrpq.Options{MaxLen: n}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10_SubsetSum demonstrates the NP-hardness of the §5.2 reduce
// query: time grows exponentially with the number of weights.
func BenchmarkE10_SubsetSum(b *testing.B) {
	for _, n := range []int{8, 10, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			weights := make([]int64, n)
			for i := range weights {
				weights[i] = int64(3*i + 1)
			}
			var target int64
			for i := 0; i < n; i += 2 {
				target += weights[i]
			}
			g := gen.SubsetSumChain(weights)
			walk := gqlWalk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				paths, err := gql.MatchPaths(g, walk, gql.Options{MaxLen: n})
				if err != nil {
					b.Fatal(err)
				}
				hit := false
				for _, p := range paths {
					if p.Len() != n {
						continue
					}
					if v, _ := gql.SumProp(g, "k", gql.EdgesOf(p)).AsInt(); v == target {
						hit = true
					}
				}
				if !hit {
					b.Fatal("planted subset not found")
				}
			}
		})
	}
}

// BenchmarkE12_AllDistinct measures the ⟨∀(u)→⁺(v) ⇒ u.k≠v.k⟩ matched-path
// condition — quadratically many segment checks per path.
func BenchmarkE12_AllDistinct(b *testing.B) {
	inner := gql.Concat(gql.Node("u"),
		gql.Repeat(gql.Concat(gql.AnonNode(), gql.AnonEdge(), gql.AnonNode()), 1, -1),
		gql.Node("v"))
	theta := coregql.Cmp("u", "k", graph.OpNe, "v", "k")
	for _, n := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dates := make([]int64, n+1)
			for i := range dates {
				dates[i] = int64(i)
			}
			g := gen.DateNodePath("a", dates)
			paths, err := gql.MatchPaths(g, gqlWalk(), gql.Options{MaxLen: n})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gql.FilterForAll(g, paths, inner, theta, gql.Options{MaxLen: n}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE15_BagCount measures the §6.1 explosion: exact bag-semantics
// answer counting for (((a*)*)*)* on k-cliques, vs set semantics.
func BenchmarkE15_BagCount(b *testing.B) {
	nested := rpq.MustParse("(((a*)*)*)*")
	for _, k := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("bag/k=%d", k), func(b *testing.B) {
			g := gen.Clique(k, "a")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if bag.TotalCount(g, nested).Sign() <= 0 {
					b.Fatal("count should be positive")
				}
			}
		})
	}
	b.Run("set/k=5", func(b *testing.B) {
		g := gen.Clique(5, "a")
		simplified := rpq.Simplify(nested)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(eval.Pairs(g, simplified)) != 25 {
				b.Fatal("set count should be 25")
			}
		}
	})
}

// BenchmarkE16_ProductEval measures all-pairs RPQ evaluation via the
// product construction on random graphs of growing size.
func BenchmarkE16_ProductEval(b *testing.B) {
	expr := rpq.MustParse("a (a | b)* b")
	for _, n := range []int{100, 200, 400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := gen.Random(n, 4*n, []string{"a", "b"}, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eval.Pairs(g, expr)
			}
		})
	}
}

// BenchmarkE16_UnifiedTiers measures each upper language tier through its
// kernel-unified ctx entry point on one shared workload per tier — the
// pre/post-unification comparison rows of EXPERIMENTS.md and the
// regression guard of scripts/bench_json.sh.
func BenchmarkE16_UnifiedTiers(b *testing.B) {
	ctx := context.Background()
	g := gen.Random(200, 800, []string{"a", "b"}, 42)
	cyp := cypherfrag.Concat(cypherfrag.Edge("a"), cypherfrag.StarOf("a", "b"))
	b.Run("cypher/kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cypherfrag.PairsCtx(ctx, g, cyp, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cypher/reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eval.Pairs(g, cypherfrag.Compile(cyp))
		}
	})
	gqlPat := gql.Concat(gql.Node("x"),
		gql.Star(gql.Concat(gql.AnonNode(), gql.AnonEdgeL("a"), gql.AnonNode())),
		gql.Node("y"))
	b.Run("gql/kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gql.PairsCtx(ctx, g, gqlPat, eval.Options{MaxLen: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gql/reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ms, err := gql.EvalPattern(g, gqlPat, gql.Options{MaxLen: 4})
			if err != nil {
				b.Fatal(err)
			}
			gql.ProjectPairs(g, ms)
		}
	})
	corePat := coregql.Concat(coregql.Node("x"),
		coregql.Star(coregql.Concat(coregql.AnonNode(), coregql.AnonEdge(), coregql.AnonNode())),
		coregql.Node("y"))
	b.Run("coregql/kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := coregql.PairsCtx(ctx, g, corePat, eval.Options{MaxLen: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coregql/reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ms, err := coregql.EvalPattern(g, corePat, coregql.Options{MaxLen: 3})
			if err != nil {
				b.Fatal(err)
			}
			coregql.ProjectPairs(g, ms)
		}
	})
	pmrExpr := rpq.MustParse("a (a | b)*")
	b.Run("pmr/kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := pmr.FromProductCtx(ctx, g, pmrExpr, 0, 1, pg.Budget{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := r.EnumerateCtx(ctx, 100, pg.Budget{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pmr/reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pmr.FromProduct(g, pmrExpr, 0, 1).Enumerate(100)
		}
	})
	doc := strings.Repeat("ab", 40)
	spanExpr := spanner.Seq(
		spanner.Cap("x", spanner.Star(spanner.Lit("ab"))),
		spanner.Cap("y", spanner.Star(spanner.Lit("ab"))))
	b.Run("spanner/kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spanner.EvaluateCtx(ctx, doc, spanExpr, pg.Budget{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spanner/reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spanner.Evaluate(doc, spanExpr)
		}
	})
	// relalg REACH atoms are new with the unification; the kernel side is
	// the only side.
	b.Run("relalg/kernel", func(b *testing.B) {
		q := relalg.MustParseQuery("REACH(a*) AS (x, y) JOIN REACH(b) AS (y, z)")
		for i := 0; i < b.N; i++ {
			if _, err := relalg.EvalQueryCtx(ctx, g, q, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	gc := gen.Clique(6, "a")
	bagExpr := rpq.MustParse("a*")
	b.Run("bag/kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bag.TotalCountCtx(ctx, gc, bagExpr, pg.Budget{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bag/reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bag.TotalCount(gc, bagExpr)
		}
	})
}

// BenchmarkE17_PMRvsEnum contrasts building the Θ(n)-size PMR for the 2ⁿ
// Figure-5 paths with enumerating them.
func BenchmarkE17_PMRvsEnum(b *testing.B) {
	expr := rpq.MustParse("a*")
	for _, n := range []int{10, 14} {
		g := gen.Figure5(n)
		s, t := g.MustNode("s"), g.MustNode("t")
		b.Run(fmt.Sprintf("pmr/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := pmr.ShortestFromProduct(g, expr, s, t)
				if c, _ := r.Cardinality(); c.Int64() != 1<<uint(n) {
					b.Fatal("wrong cardinality")
				}
			}
		})
		b.Run(fmt.Sprintf("enumerate/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				paths, err := eval.Paths(g, expr, s, t, eval.Shortest, eval.Options{})
				if err != nil || len(paths) != 1<<uint(n) {
					b.Fatalf("enumerated %d (err %v)", len(paths), err)
				}
			}
		})
	}
}

// BenchmarkE19_Modes contrasts polynomial shortest-path existence with the
// NP-hard simple-path existence on an adversarial bidirectional grid.
func BenchmarkE19_Modes(b *testing.B) {
	expr := rpq.MustParse("a+")
	grid := gen.Grid(4, 4, "a")
	src, dst := 0, grid.NumNodes()-1
	b.Run("shortest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !eval.ExistsMode(grid, expr, src, dst, eval.Shortest) {
				b.Fatal("should exist")
			}
		}
	})
	b.Run("simple-exists", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !eval.ExistsMode(grid, expr, src, dst, eval.Simple) {
				b.Fatal("should exist")
			}
		}
	})
	b.Run("simple-enumerate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			paths, err := eval.Paths(grid, expr, src, dst, eval.Simple, eval.Options{})
			if err != nil || len(paths) == 0 {
				b.Fatal("expected simple paths")
			}
		}
	})
	// Practice-like sparse graph: trails are cheap.
	social := gen.Social(300, 7)
	b.Run("social-trail", func(b *testing.B) {
		e2 := rpq.MustParse("(knows | follows)+")
		for i := 0; i < b.N; i++ {
			eval.ExistsMode(social, e2, 0, social.NumNodes()-1, eval.Trail)
		}
	})
}

// BenchmarkE20_DataFilters measures register-product shortest search with
// data tests (the forced-cycle query of §6.3).
func BenchmarkE20_DataFilters(b *testing.B) {
	g := gen.BankProperty()
	mike, rebecca := g.MustNode("a3"), g.MustNode("a5")
	expr := dlrpq.MustParse(
		"() {[Transfer]()}* [Transfer][amount < 4500000] () {[Transfer]()}* [Transfer][amount < 4500000] () {[Transfer]()}*")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dlrpq.EvalBetween(g, expr, mike, rebecca, eval.Shortest, dlrpq.Options{})
		if err != nil || len(res) == 0 || res[0].Path.Len() != 4 {
			b.Fatal("expected the length-4 cyclic path")
		}
	}
}

// BenchmarkE22_Automata measures the Glushkov + determinize + minimize +
// unambiguity pipeline over a workload of expressions.
func BenchmarkE22_Automata(b *testing.B) {
	workload := []rpq.Expr{
		rpq.MustParse("a (a | b)* b"),
		rpq.MustParse("(a b c){1,4}"),
		rpq.MustParse("!{a} _* (a | b)"),
		rpq.MustParse("(((a*)*)*)*"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range workload {
			nfa := rpq.Compile(rpq.Simplify(e))
			nfa.IsUnambiguous()
			nfa.Determinize().Minimize()
		}
	}
}

// BenchmarkE23_KShortest measures k-shortest walk enumeration delay.
func BenchmarkE23_KShortest(b *testing.B) {
	g := gen.Random(200, 800, []string{"a"}, 11)
	expr := rpq.MustParse("a+")
	for _, k := range []int{10, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := eval.KShortestWalks(g, expr, 0, 1, k); len(got) == 0 {
					b.Fatal("expected walks")
				}
			}
		})
	}
}

// BenchmarkE24_Spanner measures all-mapping enumeration for a quadratic-
// output capture expression.
func BenchmarkE24_Spanner(b *testing.B) {
	doc := ""
	for i := 0; i < 64; i++ {
		if i%4 == 0 {
			doc += "a"
		} else {
			doc += "b"
		}
	}
	e := spanner.Cap("x", spanner.Seq(spanner.Lit("a"), spanner.Star(spanner.Dot())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ms := spanner.Extract(doc, e); len(ms) == 0 {
			b.Fatal("expected matches")
		}
	}
}

// BenchmarkE18_BindingBlowup measures per-path binding enumeration for the
// (aa^z + a^z a)* expression.
func BenchmarkE18_BindingBlowup(b *testing.B) {
	e := lrpq.MustParse("(a a^z | a^z a)*")
	for _, n := range []int{6, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := gen.APath(2*n, "a")
			p := chainPath(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := lrpq.BindingsOnPath(g, e, p); len(got) != 1<<uint(n) {
					b.Fatalf("bindings = %d", len(got))
				}
			}
		})
	}
}

// BenchmarkE06_ShortestGrouped measures the Example 17 ℓ-CRPQ end to end.
func BenchmarkE06_ShortestGrouped(b *testing.B) {
	g := gen.BankEdgeLabeled()
	eng := NewEngine(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Rows("q(x1, x2, z) :- owner(y1, x1), owner(y2, x2), shortest (Transfer^z)+(y1, y2)")
		if err != nil || len(res.Rows) == 0 {
			b.Fatal(err)
		}
	}
}

// Helpers shared by benchmarks.

func dateChain(n int) *graph.Graph {
	dates := make([]int64, n)
	for i := range dates {
		dates[i] = int64(i % (n/2 + 1))
	}
	return gen.DateEdgePath("a", dates)
}

func gqlWalk() gql.Pattern {
	return gql.Concat(gql.Node("x"),
		gql.Star(gql.Concat(gql.AnonNode(), gql.AnonEdge(), gql.AnonNode())),
		gql.Node("y"))
}

func gqlBadPair() gql.Pattern {
	return gql.Concat(gql.Node("x"),
		gql.Star(gql.Concat(gql.AnonNode(), gql.AnonEdge(), gql.AnonNode())),
		gql.Where(gql.Concat(gql.AnonNode(), gql.Edge("u"), gql.AnonNode(), gql.Edge("v"), gql.AnonNode()),
			coregql.Cmp("u", "k", graph.OpGe, "v", "k")),
		gql.Star(gql.Concat(gql.AnonNode(), gql.AnonEdge(), gql.AnonNode())),
		gql.Node("y"))
}

// chainPath returns the unique full node-to-node path of an APath graph.
func chainPath(g *graph.Graph) gpath.Path {
	p := gpath.OfNode(0)
	for e := 0; e < g.NumEdges(); e++ {
		next, ok := gpath.Concat(g, p, gpath.Triple(g, e))
		if !ok {
			panic("chainPath: disconnected")
		}
		p = next
	}
	return p
}

// BenchmarkE26_TwoWay measures two-way product evaluation (inverse atoms).
func BenchmarkE26_TwoWay(b *testing.B) {
	g := gen.Random(200, 800, []string{"owner", "Transfer"}, 5)
	e := twoway.MustParse("~owner Transfer+ owner")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		twoway.Pairs(g, e)
	}
}

// BenchmarkE27_Estimate contrasts statistics-based estimation with exact
// evaluation: the estimator must be orders of magnitude cheaper.
func BenchmarkE27_Estimate(b *testing.B) {
	g := gen.Random(400, 1600, []string{"a", "b"}, 3)
	e := rpq.MustParse("a (a | b)* b")
	stats := cardest.Collect(g)
	b.Run("estimate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.Estimate(e, 0)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eval.Pairs(g, e)
		}
	})
}

// BenchmarkE28_Regular measures nested-CRPQ evaluation (materialize the
// virtual edges, then close them).
func BenchmarkE28_Regular(b *testing.B) {
	g := gen.Random(60, 240, []string{"Transfer"}, 9)
	prog := regular.MustParse(`
		Vedge(x, y) :- Transfer(x, y), Transfer(y, x)
		q(a, b) :- Vedge+(a, b)
	`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regular.Eval(g, prog, crpq.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE29_Containment measures RPQ containment checks.
func BenchmarkE29_Containment(b *testing.B) {
	a := rpq.MustParse("(a b){1,6} (a | b)*")
	c := rpq.MustParse("(a | b)*")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !rpq.Contained(a, c) {
			b.Fatal("containment should hold")
		}
	}
}

// BenchmarkE30_WCOJ contrasts worst-case-optimal and pairwise-join
// evaluation of the triangle CRPQ on random graphs (§7.1: the AGM-bound
// direction). The pairwise plan materializes the quadratic 2-path
// intermediate; the WCOJ plan does not.
func BenchmarkE30_WCOJ(b *testing.B) {
	q := crpq.MustParse("q(x, y, z) :- a(x, y), a(y, z), a(z, x)")
	for _, n := range []int{60, 120} {
		g := gen.Random(n, 8*n, []string{"a"}, 21)
		b.Run(fmt.Sprintf("wcoj/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := crpq.EvalWCOJ(g, q, crpq.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("pairwise/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := crpq.Eval(g, q, crpq.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13_ParallelPairs measures the parallel per-source fan-out of
// eval.Pairs against the sequential path on a 10k-node random graph: the
// same product BFS per source, partitioned over a GOMAXPROCS-sized worker
// pool with deterministic chunk-ordered merging. On a multi-core runner the
// parallel path should approach linear speedup; on one core the two paths
// coincide.
func BenchmarkE13_ParallelPairs(b *testing.B) {
	g := gen.Random(10000, 40000, []string{"a", "b", "c"}, 13)
	expr, err := rpq.Parse("a b*")
	if err != nil {
		b.Fatal(err)
	}
	nfa := rpq.Compile(expr)
	var want int
	for _, cfg := range []struct {
		name        string
		parallelism int
	}{
		{"seq", 1},
		{"par", 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prs := eval.PairsCompiled(g, nfa, eval.Options{Parallelism: cfg.parallelism})
				if want == 0 {
					want = len(prs)
				} else if len(prs) != want {
					b.Fatalf("got %d pairs, want %d", len(prs), want)
				}
			}
		})
	}
}

// BenchmarkE14_PlanCache measures query dispatch with a cold plan cache
// (every iteration parses and Glushkov-compiles the query on a fresh
// engine) versus a warm one (the engine reuses the cached plan). The query
// carries a bounded repetition — desugared to dozens of positions, each a
// quadratic Glushkov follow-set — so compilation dominates evaluation on
// the small path graph and the warm/cold gap isolates dispatch cost.
func BenchmarkE14_PlanCache(b *testing.B) {
	g := gen.APath(4, "a")
	const query = "(a | a a){2,20}"
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := NewEngine(g)
			if _, err := e.Pairs(query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		e := NewEngine(g)
		if _, err := e.Pairs(query); err != nil {
			b.Fatal(err) // prime the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Pairs(query); err != nil {
				b.Fatal(err)
			}
		}
		if s := e.CacheStats(); s.Hits < int64(b.N) {
			b.Fatalf("cache not hit: %+v", s)
		}
	})
}
