# Tier-1 verification plus the race detector and a benchmark smoke pass.
# The race run is mandatory: eval.Pairs and crpq atom materialization fan
# out over worker pools.

GO ?= go

.PHONY: all vet lint build test race bench-smoke bench-json serve-smoke ci

all: ci

vet:
	$(GO) vet ./...

# Static hygiene beyond vet: formatting drift and exported functions no
# other file references (internal/ packages have no outside importers, so
# those are dead code).
lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi
	bash scripts/dead_exports.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot in the harness without
# waiting for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Machine-readable kernel benchmark snapshot (BENCH_kernel.json). Not part
# of ci: wall-clock numbers from a loaded CI box are noise; run it on a
# quiet machine when EXPERIMENTS.md needs fresh figures.
bench-json:
	GO="$(GO)" bash scripts/bench_json.sh

# End-to-end check of the query daemon: build gqserverd under -race, start
# it on a random port, curl every endpoint and error class, then verify
# graceful shutdown drains an in-flight query.
serve-smoke:
	GO="$(GO)" bash scripts/serve_smoke.sh

ci: lint build test race bench-smoke serve-smoke
