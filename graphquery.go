// Package graphquery is a reference implementation of the graph query
// language tower surveyed in "Querying Graph Data: Where We Are and Where
// To Go" (Libkin, Martens, Murlak, Peterfreund, Vrgoč; PODS Companion '25):
// property graphs and edge-labeled graphs, RPQs, CRPQs, RPQs with list
// variables (ℓ-RPQs), RPQs with data tests and list variables (dl-RPQs),
// dl-CRPQs, CoreGQL, path modes, product-construction evaluation, and path
// multiset representations.
//
// This root package is the public facade: it re-exports the graph model and
// the query engine. The building blocks live under internal/ — one package
// per subsystem of the paper (see DESIGN.md for the inventory and
// EXPERIMENTS.md for the reproduced results).
//
// Quick start:
//
//	g := graphquery.NewBuilder().
//		AddNode("a", "Account", graphquery.Props{"owner": graphquery.Str("Megan")}).
//		AddNode("b", "Account", nil).
//		AddEdge("t", "Transfer", "a", "b", graphquery.Props{"amount": graphquery.Float(5e6)}).
//		MustBuild()
//	eng := graphquery.NewEngine(g)
//	pairs, _ := eng.Pairs("Transfer+")
//	paths, _ := eng.Paths("(Transfer^z)+", "a", "b", graphquery.Shortest)
//	rows, _ := eng.Rows("q(x, y) :- Transfer(x, y)")
package graphquery

import (
	"io"

	"graphquery/internal/core"
	"graphquery/internal/eval"
	"graphquery/internal/graph"
)

// Graph is a labeled property graph (Definition 6 of the paper); it doubles
// as an edge-labeled graph (Definition 4) by ignoring node labels and
// properties.
type Graph = graph.Graph

// Builder assembles a Graph.
type Builder = graph.Builder

// NodeID and EdgeID are external element identifiers.
type (
	NodeID = graph.NodeID
	EdgeID = graph.EdgeID
)

// Props maps property names to values (the partial function ρ).
type Props = graph.Props

// Value is an atomic property value.
type Value = graph.Value

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// Value constructors.
var (
	// Str returns a string Value.
	Str = graph.Str
	// Int returns an integer Value.
	Int = graph.Int
	// Float returns a floating-point Value.
	Float = graph.Float
	// Bool returns a boolean Value.
	Bool = graph.Bool
	// Null returns the null Value.
	Null = graph.Null
)

// ReadJSON parses a graph from its JSON serialization.
func ReadJSON(r io.Reader) (*Graph, error) { return graph.ReadJSON(r) }

// WriteJSON serializes a graph as JSON.
func WriteJSON(w io.Writer, g *Graph) error { return graph.WriteJSON(w, g) }

// Mode is a path mode m ∈ {all, shortest, simple, trail} (Section 3.1.5).
type Mode = eval.Mode

// The path modes.
const (
	All      = eval.All
	Shortest = eval.Shortest
	Simple   = eval.Simple
	Trail    = eval.Trail
)

// Engine evaluates RPQ / ℓ-RPQ / dl-RPQ / (dl-)CRPQ queries over a graph.
type Engine = core.Engine

// PathResult is one path answer with its list-variable bindings.
type PathResult = core.PathResult

// NewEngine returns a query engine over g.
func NewEngine(g *Graph) *Engine { return core.New(g) }

// ReadCSV builds a graph from nodes and edges CSV streams
// (id,label[,props…] and id,label,src,tgt[,props…]).
func ReadCSV(nodes, edges io.Reader) (*Graph, error) { return graph.ReadCSV(nodes, edges) }
