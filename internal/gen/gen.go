// Package gen builds the deterministic graph families used by the paper's
// examples and by the experiment harness: the bank graphs of Figures 2 and 3,
// the exponential-paths graph of Figure 5, cliques (Section 6.1), label
// paths and cycles, parallel-edge chains encoding subset sum (Section 5.2),
// date-annotated paths (Examples 3 and 21), and seeded random and
// social-network graphs for scaling experiments.
package gen

import (
	"fmt"
	"math/rand"
	"strconv"

	"graphquery/internal/graph"
)

// BankEdgeLabeled returns the edge-labeled graph of Figure 2: accounts
// a1–a6 connected by Transfer edges t1–t10, plus owner and isBlocked edges
// r1–r12 into person and yes/no nodes.
//
// The transfer topology is reconstructed from every constraint the paper
// places on it:
//
//	t1: a1→a3   t2: a3→a2   t3: a2→a4   t4: a5→a1   t5: a3→a2
//	t6: a3→a4   t7: a3→a5   t8: a6→a3   t9: a4→a6   t10: a6→a5
//
// This satisfies Example 5 (t2, t5 parallel a3→a2), Example 12 (a1–a6
// strongly connected by transfers), Example 13 (q1 = {(a3,a2,a4),
// (a6,a3,a5)}; a path of length 2 from a4 to a5), Example 16 (paths ending
// in isBlocked via r9, r10), Example 17 (shortest Jay→Rebecca = t10,
// Mike→Megan = t7·t4), and the Section 6.4 PMR example (the only unblocked
// Mike→Mike transfer cycle loops through t7, t4, t1).
func BankEdgeLabeled() *graph.Graph {
	b := graph.NewBuilder()
	for _, id := range []graph.NodeID{"a1", "a2", "a3", "a4", "a5", "a6"} {
		b.AddNode(id, "Account", nil)
	}
	for _, id := range []graph.NodeID{"Megan", "Mike", "Rebecca", "Dave", "Jay"} {
		b.AddNode(id, "Person", nil)
	}
	b.AddNode("yes", "", nil)
	b.AddNode("no", "", nil)

	type e struct {
		id       graph.EdgeID
		src, tgt graph.NodeID
	}
	for _, t := range []e{
		{"t1", "a1", "a3"}, {"t2", "a3", "a2"}, {"t3", "a2", "a4"},
		{"t4", "a5", "a1"}, {"t5", "a3", "a2"}, {"t6", "a3", "a4"},
		{"t7", "a3", "a5"}, {"t8", "a6", "a3"}, {"t9", "a4", "a6"},
		{"t10", "a6", "a5"},
	} {
		b.AddEdge(t.id, "Transfer", t.src, t.tgt, nil)
	}
	for _, r := range []e{
		{"r1", "a1", "Megan"}, {"r2", "a2", "Megan"}, {"r3", "a3", "Mike"},
		{"r4", "a4", "Dave"}, {"r5", "a5", "Rebecca"}, {"r6", "a6", "Jay"},
	} {
		b.AddEdge(r.id, "owner", r.src, r.tgt, nil)
	}
	for _, r := range []e{
		{"r7", "a1", "no"}, {"r8", "a2", "yes"}, {"r9", "a3", "no"},
		{"r10", "a4", "yes"}, {"r11", "a5", "no"}, {"r12", "a6", "no"},
	} {
		b.AddEdge(r.id, "isBlocked", r.src, r.tgt, nil)
	}
	return b.MustBuild()
}

// BankProperty returns the property graph of Figure 3: the same accounts
// and transfers as Figure 2, but with owner and isBlocked as node properties
// and amount/date as edge properties.
//
// Amounts are chosen to satisfy the Section 6.3 "Data Filters" example:
// the direct Mike→Rebecca transfer t7 is ≥ 4.5M, the shortest Mike→Rebecca
// transfer path containing a transfer under 4.5M is path(a3,t6,a4,t9,a6,
// t10,a5), and requiring two transfers under 4.5M forces the cyclic path
// path(a3,t7,a5,t4,a1,t1,a3,t7,a5).
func BankProperty() *graph.Graph {
	b := graph.NewBuilder()
	type n struct {
		id      graph.NodeID
		owner   string
		blocked string
	}
	for _, nd := range []n{
		{"a1", "Megan", "no"}, {"a2", "Megan", "yes"}, {"a3", "Mike", "no"},
		{"a4", "Dave", "yes"}, {"a5", "Rebecca", "no"}, {"a6", "Jay", "no"},
	} {
		b.AddNode(nd.id, "Account", graph.Props{
			"owner":     graph.Str(nd.owner),
			"isBlocked": graph.Str(nd.blocked),
		})
	}
	type e struct {
		id       graph.EdgeID
		src, tgt graph.NodeID
		amount   float64 // millions
		date     string
	}
	for _, t := range []e{
		{"t1", "a1", "a3", 1.0e6, "2025-01-03"},
		{"t2", "a3", "a2", 0.5e6, "2025-01-05"},
		{"t3", "a2", "a4", 5.0e6, "2025-01-07"},
		{"t4", "a5", "a1", 3.0e6, "2025-01-02"},
		{"t5", "a3", "a2", 2.0e6, "2025-01-09"},
		{"t6", "a3", "a4", 1.0e6, "2025-01-11"},
		{"t7", "a3", "a5", 8.0e6, "2025-01-01"},
		{"t8", "a6", "a3", 7.0e6, "2025-01-13"},
		{"t9", "a4", "a6", 5.0e6, "2025-01-15"},
		{"t10", "a6", "a5", 6.0e6, "2025-01-17"},
	} {
		b.AddEdge(t.id, "Transfer", t.src, t.tgt, graph.Props{
			"amount": graph.Float(t.amount),
			"date":   graph.Str(t.date),
		})
	}
	return b.MustBuild()
}

// Figure5 returns the graph of Figure 5 with parameter n: a chain of n
// stages, each consisting of two parallel a-labeled edges, so that there are
// exactly 2ⁿ paths from s to t, all of length n (hence all shortest).
// Nodes are s = u0, u1, …, un = t; node un also has external ID "t" alias
// omitted — use Source/Target helpers below.
func Figure5(n int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i <= n; i++ {
		b.AddNode(figure5Node(i, n), "", nil)
	}
	for i := 1; i <= n; i++ {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("e%d_0", i)), "a", figure5Node(i-1, n), figure5Node(i, n), nil)
		b.AddEdge(graph.EdgeID(fmt.Sprintf("e%d_1", i)), "a", figure5Node(i-1, n), figure5Node(i, n), nil)
	}
	return b.MustBuild()
}

func figure5Node(i, n int) graph.NodeID {
	switch i {
	case 0:
		return "s"
	case n:
		return "t"
	default:
		return graph.NodeID(fmt.Sprintf("u%d", i))
	}
}

// APath returns a simple path v0 → v1 → … → vn of n edges labeled label.
// Edges are e1, …, en.
func APath(n int, label string) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i <= n; i++ {
		b.AddNode(graph.NodeID(fmt.Sprintf("v%d", i)), "", nil)
	}
	for i := 1; i <= n; i++ {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("e%d", i)), label,
			graph.NodeID(fmt.Sprintf("v%d", i-1)), graph.NodeID(fmt.Sprintf("v%d", i)), nil)
	}
	return b.MustBuild()
}

// Cycle returns a directed cycle v0 → v1 → … → v(n-1) → v0 of n edges
// labeled label.
func Cycle(n int, label string) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(graph.NodeID(fmt.Sprintf("v%d", i)), "", nil)
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("e%d", i)), label,
			graph.NodeID(fmt.Sprintf("v%d", i)), graph.NodeID(fmt.Sprintf("v%d", (i+1)%n)), nil)
	}
	return b.MustBuild()
}

// Clique returns the complete directed graph on k nodes (all ordered pairs
// of distinct nodes) with every edge labeled label — the k-clique family of
// Section 6.1 on which (((a*)*)*)* explodes under bag semantics.
func Clique(k int, label string) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < k; i++ {
		b.AddNode(graph.NodeID(fmt.Sprintf("v%d", i)), "", nil)
	}
	e := 0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			b.AddEdge(graph.EdgeID(fmt.Sprintf("e%d", e)), label,
				graph.NodeID(fmt.Sprintf("v%d", i)), graph.NodeID(fmt.Sprintf("v%d", j)), nil)
			e++
		}
	}
	return b.MustBuild()
}

// SubsetSumChain encodes a subset-sum instance as in Section 5.2 ("Turning
// to Lists for Help"): a chain of nodes with two parallel edges between each
// consecutive pair — one carrying property k = weights[i], the other k = 0.
// A path from v0 to vn selecting edge values that sum to target witnesses a
// subset of weights summing to target.
func SubsetSumChain(weights []int64) *graph.Graph {
	b := graph.NewBuilder()
	n := len(weights)
	for i := 0; i <= n; i++ {
		b.AddNode(graph.NodeID(fmt.Sprintf("v%d", i)), "", nil)
	}
	for i := 1; i <= n; i++ {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("w%d", i)), "a",
			graph.NodeID(fmt.Sprintf("v%d", i-1)), graph.NodeID(fmt.Sprintf("v%d", i)),
			graph.Props{"k": graph.Int(weights[i-1])})
		b.AddEdge(graph.EdgeID(fmt.Sprintf("z%d", i)), "a",
			graph.NodeID(fmt.Sprintf("v%d", i-1)), graph.NodeID(fmt.Sprintf("v%d", i)),
			graph.Props{"k": graph.Int(0)})
	}
	return b.MustBuild()
}

// DateEdgePath returns a path of n = len(dates) edges labeled label, where
// edge i carries property "date" (and "k") equal to dates[i]. Nodes carry no
// dates. This is the graph family for Example 3 and Proposition 23: e.g.
// values 3,4,1,2 defeat the naive stride-2 GQL pattern.
func DateEdgePath(label string, dates []int64) *graph.Graph {
	b := graph.NewBuilder()
	n := len(dates)
	for i := 0; i <= n; i++ {
		b.AddNode(graph.NodeID(fmt.Sprintf("v%d", i)), "", nil)
	}
	for i := 1; i <= n; i++ {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("e%d", i)), label,
			graph.NodeID(fmt.Sprintf("v%d", i-1)), graph.NodeID(fmt.Sprintf("v%d", i)),
			graph.Props{"date": graph.Int(dates[i-1]), "k": graph.Int(dates[i-1])})
	}
	return b.MustBuild()
}

// DateNodePath returns a path of len(dates)-1 edges labeled label whose
// nodes carry property "date" (and "k") equal to dates[i] — the node-side
// twin of DateEdgePath, for the πinc pattern of Section 5.1.
func DateNodePath(label string, dates []int64) *graph.Graph {
	b := graph.NewBuilder()
	for i, d := range dates {
		b.AddNode(graph.NodeID(fmt.Sprintf("v%d", i)), "",
			graph.Props{"date": graph.Int(d), "k": graph.Int(d)})
	}
	for i := 1; i < len(dates); i++ {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("e%d", i)), label,
			graph.NodeID(fmt.Sprintf("v%d", i-1)), graph.NodeID(fmt.Sprintf("v%d", i)), nil)
	}
	return b.MustBuild()
}

// Random returns a seeded Erdős–Rényi-style multigraph with n nodes and m
// edges whose labels are drawn uniformly from labels, and an integer "k"
// property on every node and edge.
func Random(n, m int, labels []string, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(graph.NodeID(fmt.Sprintf("v%d", i)), "",
			graph.Props{"k": graph.Int(int64(rng.Intn(100)))})
	}
	for e := 0; e < m; e++ {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("e%d", e)), labels[rng.Intn(len(labels))],
			graph.NodeID(fmt.Sprintf("v%d", rng.Intn(n))),
			graph.NodeID(fmt.Sprintf("v%d", rng.Intn(n))),
			graph.Props{"k": graph.Int(int64(rng.Intn(100)))})
	}
	return b.MustBuild()
}

// ScaleFree returns a seeded preferential-attachment (Barabási–Albert
// style) multigraph: n nodes added in id order, each attaching up to m
// edges whose far endpoint is drawn from a degree-weighted multiset (with
// an occasional uniform pick so isolated regions stay reachable), each
// edge's direction a fair coin flip so a giant strongly-connected core
// emerges. Labels are "a" except every 16th edge, which is "b" — a
// near-co-finite mix, so `(!{b})*` runs the dense-guard regime over almost
// every edge. This is the million-node family behind the kernel
// benchmarks, so it carries no properties and avoids fmt in the hot loop.
func ScaleFree(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	id := func(i int) graph.NodeID { return graph.NodeID("n" + strconv.Itoa(i)) }
	for i := 0; i < n; i++ {
		b.AddNode(id(i), "", nil)
	}
	targets := make([]int32, 0, 2*n*m) // endpoint multiset weighted by degree
	e := 0
	for i := 1; i < n; i++ {
		deg := m
		if deg > i {
			deg = i
		}
		for j := 0; j < deg; j++ {
			var t int
			if len(targets) == 0 || rng.Intn(8) == 0 {
				t = rng.Intn(i)
			} else {
				t = int(targets[rng.Intn(len(targets))])
			}
			lab := "a"
			if e%16 == 15 {
				lab = "b"
			}
			src, tgt := i, t
			if rng.Intn(2) == 0 {
				src, tgt = t, i
			}
			b.AddEdge(graph.EdgeID("e"+strconv.Itoa(e)), lab, id(src), id(tgt), nil)
			e++
			targets = append(targets, int32(i), int32(t))
		}
	}
	return b.MustBuild()
}

// Grid returns a w×h grid in which each undirected grid adjacency is
// represented by a pair of directed edges labeled label. Dense bidirectional
// grids are the adversarial family for simple-path/trail search (E19).
func Grid(w, h int, label string) *graph.Graph {
	b := graph.NewBuilder()
	id := func(x, y int) graph.NodeID { return graph.NodeID(fmt.Sprintf("g%d_%d", x, y)) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			b.AddNode(id(x, y), "", nil)
		}
	}
	e := 0
	add := func(a, c graph.NodeID) {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("e%d", e)), label, a, c, nil)
		e++
		b.AddEdge(graph.EdgeID(fmt.Sprintf("e%d", e)), label, c, a, nil)
		e++
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				add(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				add(id(x, y), id(x, y+1))
			}
		}
	}
	return b.MustBuild()
}

// Social returns a seeded preferential-attachment social network: Person
// nodes with an age property, "knows" edges attached preferentially, and a
// sprinkling of "follows" edges. Used by the socialnetwork example and the
// practice-like side of the E19 path-mode benchmark.
func Social(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	id := func(i int) graph.NodeID { return graph.NodeID(fmt.Sprintf("p%d", i)) }
	for i := 0; i < n; i++ {
		b.AddNode(id(i), "Person", graph.Props{
			"age":  graph.Int(int64(18 + rng.Intn(60))),
			"name": graph.Str(fmt.Sprintf("user%d", i)),
		})
	}
	// Preferential attachment on "knows".
	var targets []int // node multiset weighted by degree
	e := 0
	for i := 1; i < n; i++ {
		var t int
		if len(targets) == 0 || rng.Intn(4) == 0 {
			t = rng.Intn(i)
		} else {
			t = targets[rng.Intn(len(targets))]
		}
		b.AddEdge(graph.EdgeID(fmt.Sprintf("k%d", e)), "knows", id(i), id(t), nil)
		e++
		targets = append(targets, i, t)
	}
	// Random "follows" edges (~n/2), about a quarter reciprocated.
	f := 0
	for i := 0; i < n/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(graph.EdgeID(fmt.Sprintf("f%d", f)), "follows", id(u), id(v), nil)
		f++
		if rng.Intn(4) == 0 {
			b.AddEdge(graph.EdgeID(fmt.Sprintf("f%d", f)), "follows", id(v), id(u), nil)
			f++
		}
	}
	return b.MustBuild()
}
