package gen

import (
	"fmt"
	"strconv"
	"strings"

	"graphquery/internal/graph"
)

// Named resolves a graph name from the built-in catalog shared by cmd/gqd
// and the query service: fixed graphs ("bank", "bank-property") and
// parameterized families written name-N ("figure5-8", "clique-50",
// "social-200", "cycle-10", "path-10") or name-WxH ("grid-4x3").
func Named(name string) (*graph.Graph, error) {
	switch name {
	case "bank":
		return BankEdgeLabeled(), nil
	case "bank-property":
		return BankProperty(), nil
	}
	if base, ok := strings.CutPrefix(name, "grid-"); ok {
		w, h, found := strings.Cut(base, "x")
		if !found {
			return nil, fmt.Errorf("gen: bad grid size %q (want grid-WxH)", base)
		}
		wn, errW := sizeArg(name, "grid", w)
		hn, errH := sizeArg(name, "grid", h)
		if errW != nil {
			return nil, errW
		}
		if errH != nil {
			return nil, errH
		}
		return Grid(wn, hn, "a"), nil
	}
	for _, fam := range []struct {
		prefix string
		build  func(n int) *graph.Graph
	}{
		{"figure5-", Figure5},
		{"clique-", func(n int) *graph.Graph { return Clique(n, "a") }},
		{"social-", func(n int) *graph.Graph { return Social(n, 1) }},
		{"scalefree-", func(n int) *graph.Graph { return ScaleFree(n, 4, 42) }},
		{"cycle-", func(n int) *graph.Graph { return Cycle(n, "a") }},
		{"path-", func(n int) *graph.Graph { return APath(n, "a") }},
	} {
		if arg, ok := strings.CutPrefix(name, fam.prefix); ok {
			n, err := sizeArg(name, strings.TrimSuffix(fam.prefix, "-"), arg)
			if err != nil {
				return nil, err
			}
			return fam.build(n), nil
		}
	}
	return nil, fmt.Errorf("gen: unknown graph %q (catalog: %s)", name, strings.Join(CatalogNames(), ", "))
}

// CatalogNames lists the names Named accepts, parameterized families shown
// with an N placeholder.
func CatalogNames() []string {
	return []string{
		"bank", "bank-property",
		"figure5-N", "clique-N", "social-N", "scalefree-N", "cycle-N", "path-N", "grid-WxH",
	}
}

// maxGraphSize caps parameterized graph sizes so a service request cannot
// ask the catalog to materialize an absurdly large graph.
const maxGraphSize = 1 << 20

func sizeArg(full, family, arg string) (int, error) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("gen: bad %s size in %q", family, full)
	}
	if n > maxGraphSize {
		return 0, fmt.Errorf("gen: %s size %d exceeds the catalog cap %d", family, n, maxGraphSize)
	}
	return n, nil
}
