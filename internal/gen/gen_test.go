package gen

import (
	"testing"

	"graphquery/internal/graph"
)

func TestBankEdgeLabeledShape(t *testing.T) {
	g := BankEdgeLabeled()
	if g.NumEdges() != 22 { // t1..t10, r1..r12
		t.Errorf("edges = %d, want 22", g.NumEdges())
	}
	// Example 5 facts: t2 and t5 are parallel a3→a2 Transfer edges.
	for _, id := range []graph.EdgeID{"t2", "t5"} {
		e := g.Edge(g.MustEdge(id))
		if g.Node(e.Src).ID != "a3" || g.Node(e.Tgt).ID != "a2" || e.Label != "Transfer" {
			t.Errorf("%s should be a Transfer a3→a2", id)
		}
	}
	// λ(t1) = Transfer, λ(r1) = owner.
	if g.Edge(g.MustEdge("t1")).Label != "Transfer" || g.Edge(g.MustEdge("r1")).Label != "owner" {
		t.Error("labels of t1/r1 wrong")
	}
	// r9: a3 → no, r10: a4 → yes (Example 16).
	r9 := g.Edge(g.MustEdge("r9"))
	r10 := g.Edge(g.MustEdge("r10"))
	if g.Node(r9.Src).ID != "a3" || g.Node(r9.Tgt).ID != "no" || r9.Label != "isBlocked" {
		t.Error("r9 should be isBlocked a3→no")
	}
	if g.Node(r10.Src).ID != "a4" || g.Node(r10.Tgt).ID != "yes" {
		t.Error("r10 should be isBlocked a4→yes")
	}
}

func TestBankEdgeLabeledStronglyConnected(t *testing.T) {
	// Example 12 presupposes the six accounts are strongly connected by
	// Transfer edges: check with two BFS passes (forward/backward).
	g := BankEdgeLabeled()
	accounts := map[int]bool{}
	for _, id := range []graph.NodeID{"a1", "a2", "a3", "a4", "a5", "a6"} {
		accounts[g.MustNode(id)] = true
	}
	bfs := func(start int, backward bool) map[int]bool {
		seen := map[int]bool{start: true}
		queue := []int{start}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			edges := g.Out(n)
			if backward {
				edges = g.In(n)
			}
			for _, ei := range edges {
				e := g.Edge(ei)
				if e.Label != "Transfer" {
					continue
				}
				next := e.Tgt
				if backward {
					next = e.Src
				}
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		return seen
	}
	a1 := g.MustNode("a1")
	fwd, bwd := bfs(a1, false), bfs(a1, true)
	for n := range accounts {
		if !fwd[n] || !bwd[n] {
			t.Errorf("account %s breaks strong connectivity", g.Node(n).ID)
		}
	}
}

func TestBankPropertyProps(t *testing.T) {
	g := BankProperty()
	if g.NumNodes() != 6 || g.NumEdges() != 10 {
		t.Fatalf("shape = %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	owner, ok := g.NodeProp(g.MustNode("a3"), "owner")
	if !ok || !owner.Equal(graph.Str("Mike")) {
		t.Error("a3 should be Mike's account")
	}
	blocked, _ := g.NodeProp(g.MustNode("a4"), "isBlocked")
	if !blocked.Equal(graph.Str("yes")) {
		t.Error("a4 should be blocked")
	}
	// The §6.3 constraints: t7 ≥ 4.5M; among t6,t9,t10 only t6 < 4.5M.
	amount := func(id graph.EdgeID) float64 {
		v, _ := g.EdgeProp(g.MustEdge(id), "amount")
		f, _ := v.Numeric()
		return f
	}
	if amount("t7") < 4.5e6 {
		t.Error("t7 must be ≥ 4.5M (direct path must fail the filter)")
	}
	if amount("t6") >= 4.5e6 || amount("t9") < 4.5e6 || amount("t10") < 4.5e6 {
		t.Error("exactly t6 among t6,t9,t10 must be < 4.5M")
	}
	// The two-cheap cycle uses t4 and t1, which must both be cheap.
	if amount("t4") >= 4.5e6 || amount("t1") >= 4.5e6 {
		t.Error("t4 and t1 must be < 4.5M")
	}
}

func TestFigure5(t *testing.T) {
	g := Figure5(5)
	if g.NumNodes() != 6 || g.NumEdges() != 10 {
		t.Errorf("figure5(5) shape = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if _, ok := g.NodeIndex("s"); !ok {
		t.Error("missing s")
	}
	if _, ok := g.NodeIndex("t"); !ok {
		t.Error("missing t")
	}
	// Every stage has exactly two parallel edges.
	s := g.MustNode("s")
	if g.OutDegree(s) != 2 {
		t.Errorf("s out-degree = %d, want 2", g.OutDegree(s))
	}
}

func TestAPathAndCycle(t *testing.T) {
	p := APath(4, "x")
	if p.NumNodes() != 5 || p.NumEdges() != 4 {
		t.Error("APath shape wrong")
	}
	c := Cycle(4, "x")
	if c.NumNodes() != 4 || c.NumEdges() != 4 {
		t.Error("Cycle shape wrong")
	}
	for i := 0; i < c.NumNodes(); i++ {
		if c.OutDegree(i) != 1 || c.InDegree(i) != 1 {
			t.Error("cycle degrees wrong")
		}
	}
}

func TestClique(t *testing.T) {
	g := Clique(5, "a")
	if g.NumNodes() != 5 || g.NumEdges() != 20 {
		t.Errorf("K5 shape = %d/%d, want 5/20", g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		if g.OutDegree(i) != 4 {
			t.Error("clique out-degree wrong")
		}
	}
}

func TestSubsetSumChain(t *testing.T) {
	g := SubsetSumChain([]int64{3, 5})
	if g.NumNodes() != 3 || g.NumEdges() != 4 {
		t.Fatal("shape wrong")
	}
	v, _ := g.EdgeProp(g.MustEdge("w1"), "k")
	if !v.Equal(graph.Int(3)) {
		t.Error("w1 weight wrong")
	}
	z, _ := g.EdgeProp(g.MustEdge("z2"), "k")
	if !z.Equal(graph.Int(0)) {
		t.Error("z2 should carry 0")
	}
}

func TestDatePaths(t *testing.T) {
	e := DateEdgePath("a", []int64{3, 4, 1, 2})
	if e.NumEdges() != 4 {
		t.Error("edge path shape wrong")
	}
	v, _ := e.EdgeProp(e.MustEdge("e1"), "date")
	if !v.Equal(graph.Int(3)) {
		t.Error("e1 date wrong")
	}
	n := DateNodePath("a", []int64{1, 2, 3})
	if n.NumNodes() != 3 || n.NumEdges() != 2 {
		t.Error("node path shape wrong")
	}
	k, _ := n.NodeProp(n.MustNode("v2"), "k")
	if !k.Equal(graph.Int(3)) {
		t.Error("v2 k wrong")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(20, 40, []string{"a", "b"}, 7)
	b := Random(20, 40, []string{"a", "b"}, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	for i := 0; i < a.NumEdges(); i++ {
		ea, eb := a.Edge(i), b.Edge(i)
		if ea.Src != eb.Src || ea.Tgt != eb.Tgt || ea.Label != eb.Label {
			t.Fatal("same seed must give same edges")
		}
	}
	c := Random(20, 40, []string{"a", "b"}, 8)
	diff := false
	for i := 0; i < a.NumEdges() && i < c.NumEdges(); i++ {
		if a.Edge(i).Src != c.Edge(i).Src || a.Edge(i).Tgt != c.Edge(i).Tgt {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should give different graphs")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 2, "a")
	if g.NumNodes() != 6 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	// Undirected adjacencies: horizontal 2 per row × 2 rows = 4,
	// vertical 3; each doubled = 14 directed edges.
	if g.NumEdges() != 14 {
		t.Errorf("edges = %d, want 14", g.NumEdges())
	}
}

func TestSocial(t *testing.T) {
	g := Social(50, 3)
	if g.NumNodes() != 50 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	knows, follows := 0, 0
	for i := 0; i < g.NumEdges(); i++ {
		switch g.Edge(i).Label {
		case "knows":
			knows++
		case "follows":
			follows++
		}
	}
	if knows != 49 {
		t.Errorf("knows edges = %d, want 49 (one per new member)", knows)
	}
	if follows == 0 {
		t.Error("expected follows edges")
	}
	if v, ok := g.NodeProp(0, "age"); !ok || v.IsNull() {
		t.Error("people should have ages")
	}
}
