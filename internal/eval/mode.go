// Package eval implements RPQ evaluation over edge-labeled and property
// graphs using the product construction of Section 6.2: the graph and an
// NFA for the expression are traversed in parallel, reducing query
// answering to reachability in the product graph G×. On top of the product
// it provides path witnesses, enumeration of matching paths under the path
// modes of Section 3.1.5 (all / shortest / simple / trail), matching-path
// counting via unambiguous automata, and k-shortest enumeration (Section
// 6.4 / Eppstein's problem).
package eval

import "fmt"

// Mode is a path mode m ∈ {shortest, simple, trail, all} (Section 3.1.5).
type Mode uint8

// The path modes.
const (
	All Mode = iota
	Shortest
	Simple
	Trail
)

func (m Mode) String() string {
	switch m {
	case All:
		return "all"
	case Shortest:
		return "shortest"
	case Simple:
		return "simple"
	case Trail:
		return "trail"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ParseMode parses a mode keyword.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "all", "":
		return All, nil
	case "shortest":
		return Shortest, nil
	case "simple":
		return Simple, nil
	case "trail":
		return Trail, nil
	default:
		return 0, fmt.Errorf("eval: unknown path mode %q", s)
	}
}
