package eval

import (
	"context"
	"errors"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/pg"
)

// TestRowsBudgetTripsAtEmission is the regression test for the amortized
// rows-budget bug: the old path swept a whole source first and charged
// AddRows(len(vs)) afterwards, so a query overshot MaxRows by up to a full
// sweep's batch. With emission-time charging the meter must stop at exactly
// MaxRows+1 — the row that trips the budget — on every scan strategy.
func TestRowsBudgetTripsAtEmission(t *testing.T) {
	// Clique(10) under "a": the very first source sweep alone finds 9 rows,
	// so a MaxRows=3 budget must trip mid-sweep, not after it.
	const maxRows = 3
	for _, plan := range []pg.Plan{{}, {Dense: true}, {Backward: true}} {
		p := mustProduct(t, gen.Clique(10, "a"), "a")
		m := NewMeter(context.Background(), Budget{MaxRows: maxRows})
		out, err := PairsProductCtx(context.Background(), p,
			Options{Parallelism: 1, Meter: m, Plan: plan})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("plan %+v: got (%v, %v), want ErrBudgetExceeded", plan, out, err)
		}
		var be *BudgetError
		if !errors.As(err, &be) || be.Resource != "rows" || be.Limit != maxRows {
			t.Fatalf("plan %+v: got %v, want rows BudgetError with limit %d", plan, err, maxRows)
		}
		if out != nil {
			t.Errorf("plan %+v: partial result %v returned with error", plan, out)
		}
		if got := m.Rows(); got != maxRows+1 {
			t.Errorf("plan %+v: meter rows = %d, want exactly MaxRows+1 = %d", plan, got, maxRows+1)
		}
	}
}

// TestRowsBudgetExactBoundarySucceeds pins the other side of the boundary:
// a budget exactly equal to the result size must not trip.
func TestRowsBudgetExactBoundarySucceeds(t *testing.T) {
	g := gen.Clique(4, "a") // "a" yields 4·3 = 12 pairs
	p := mustProduct(t, g, "a")
	m := NewMeter(context.Background(), Budget{MaxRows: 12})
	out, err := PairsProductCtx(context.Background(), p, Options{Parallelism: 1, Meter: m})
	if err != nil {
		t.Fatalf("budget == result size errored: %v", err)
	}
	if len(out) != 12 {
		t.Fatalf("pairs = %d, want 12", len(out))
	}
	if got := m.Rows(); got != 12 {
		t.Fatalf("meter rows = %d, want 12", got)
	}
}
