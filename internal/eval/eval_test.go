package eval

import (
	"errors"
	"math/rand"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/rpq"
)

func TestPairsTransferStar(t *testing.T) {
	// Example 12: Transfer* on the Figure 2 graph returns all of
	// {a1..a6} × {a1..a6} (the accounts are strongly connected).
	g := gen.BankEdgeLabeled()
	pairs := Pairs(g, rpq.MustParse("Transfer*"))
	set := map[[2]int]bool{}
	for _, pr := range pairs {
		set[pr] = true
	}
	accounts := []graph.NodeID{"a1", "a2", "a3", "a4", "a5", "a6"}
	for _, u := range accounts {
		for _, v := range accounts {
			if !set[[2]int{g.MustNode(u), g.MustNode(v)}] {
				t.Errorf("missing pair (%s,%s)", u, v)
			}
		}
	}
	// Restricted to account nodes, the answer is exactly the full square.
	isAccount := map[int]bool{}
	for _, a := range accounts {
		isAccount[g.MustNode(a)] = true
	}
	n := 0
	for pr := range set {
		if isAccount[pr[0]] && isAccount[pr[1]] {
			n++
		}
	}
	if n != 36 {
		t.Errorf("account pairs = %d, want 36", n)
	}
}

func TestCheckAndReachable(t *testing.T) {
	g := gen.BankEdgeLabeled()
	mike, rebecca := g.MustNode("a3"), g.MustNode("a5")
	if !Check(g, rpq.MustParse("Transfer"), mike, rebecca) {
		t.Error("direct transfer a3→a5 (t7) exists")
	}
	if Check(g, rpq.MustParse("owner"), mike, rebecca) {
		t.Error("no owner edge a3→a5")
	}
	// Example 13 (q2's path atom): Transfer·Transfer? reaches a5 from a4 in 2.
	if !Check(g, rpq.MustParse("Transfer Transfer?"), g.MustNode("a4"), rebecca) {
		t.Error("a4 →t9→ a6 →t10→ a5 matches Transfer·Transfer?")
	}
	reach := ReachableFrom(g, rpq.MustParse("owner"), mike)
	if len(reach) != 1 || reach[0] != g.MustNode("Mike") {
		t.Errorf("owner-reachable from a3 = %v, want [Mike]", reach)
	}
}

func TestWitnessShortest(t *testing.T) {
	g := gen.BankEdgeLabeled()
	p, ok := Witness(g, rpq.MustParse("Transfer+"), g.MustNode("a3"), g.MustNode("a5"))
	if !ok {
		t.Fatal("no witness")
	}
	if got := p.Format(g); got != "path(a3, t7, a5)" {
		t.Errorf("witness = %s, want path(a3, t7, a5)", got)
	}
	if _, ok := Witness(g, rpq.MustParse("owner owner"), 0, 1); ok {
		t.Error("no owner·owner path should exist")
	}
	// ε-witness: src = dst with Transfer*.
	p, ok = Witness(g, rpq.MustParse("Transfer*"), g.MustNode("a1"), g.MustNode("a1"))
	if !ok || p.Len() != 0 {
		t.Errorf("ε witness: %v %v", p, ok)
	}
}

func TestPathsShortestFigure5(t *testing.T) {
	// Figure 5: exactly 2ⁿ shortest paths from s to t.
	for n := 1; n <= 8; n++ {
		g := gen.Figure5(n)
		paths, err := Paths(g, rpq.MustParse("a*"), g.MustNode("s"), g.MustNode("t"), Shortest, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := 1 << n; len(paths) != want {
			t.Errorf("n=%d: shortest paths = %d, want %d", n, len(paths), want)
		}
		for _, p := range paths {
			if p.Len() != n {
				t.Errorf("n=%d: path of length %d in shortest set", n, p.Len())
			}
		}
	}
}

func TestPathsAllBounded(t *testing.T) {
	g := gen.Cycle(3, "a")
	v0 := g.MustNode("v0")
	paths, err := Paths(g, rpq.MustParse("a*"), v0, v0, All, Options{MaxLen: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Lengths 0, 3, 6, 9.
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(paths))
	}
	for i, want := range []int{0, 3, 6, 9} {
		if paths[i].Len() != want {
			t.Errorf("path %d length = %d, want %d", i, paths[i].Len(), want)
		}
	}
}

func TestPathsAllUnboundedError(t *testing.T) {
	g := gen.Cycle(3, "a")
	if _, err := Paths(g, rpq.MustParse("a*"), 0, 0, All, Options{}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestPathsAllLimitOnly(t *testing.T) {
	g := gen.Cycle(3, "a")
	paths, err := Paths(g, rpq.MustParse("a*"), 0, 0, All, Options{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("paths = %d, want 3 (limit)", len(paths))
	}
	for i, want := range []int{0, 3, 6} {
		if paths[i].Len() != want {
			t.Errorf("path %d length = %d, want %d (shortest-first)", i, paths[i].Len(), want)
		}
	}
}

func TestPathsSimpleAndTrail(t *testing.T) {
	// Graph: u →e1→ v →e2→ u  plus  u →e3→ w; from u to w:
	// simple paths: e3 only (length 1); trails may loop once: e1·e2·e3.
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).AddNode("w", "", nil).
		AddEdge("e1", "a", "u", "v", nil).
		AddEdge("e2", "a", "v", "u", nil).
		AddEdge("e3", "a", "u", "w", nil).
		MustBuild()
	u, w := g.MustNode("u"), g.MustNode("w")
	simple, err := Paths(g, rpq.MustParse("a*"), u, w, Simple, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(simple) != 1 || simple[0].Len() != 1 {
		t.Errorf("simple paths = %v, want just u→w", len(simple))
	}
	trails, err := Paths(g, rpq.MustParse("a*"), u, w, Trail, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trails) != 2 {
		t.Errorf("trails = %d, want 2 (direct and around the 2-cycle)", len(trails))
	}
	for _, p := range trails {
		if !p.IsTrail() {
			t.Errorf("non-trail returned: %s", p.Format(g))
		}
	}
}

func TestPathsSimpleRespectsExpr(t *testing.T) {
	// Only even-length a-paths: (aa)* from u to w on the same graph has no
	// simple match (the only simple path has length 1).
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).AddNode("w", "", nil).
		AddEdge("e1", "a", "u", "v", nil).
		AddEdge("e2", "a", "v", "u", nil).
		AddEdge("e3", "a", "u", "w", nil).
		MustBuild()
	simple, err := Paths(g, rpq.MustParse("(a a)*"), g.MustNode("u"), g.MustNode("w"), Simple, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(simple) != 0 {
		t.Errorf("simple (aa)* paths = %d, want 0", len(simple))
	}
	// But as a trail, e1·e2·e3 would be length 3 (odd): still none.
	trails, _ := Paths(g, rpq.MustParse("(a a)*"), g.MustNode("u"), g.MustNode("w"), Trail, Options{})
	if len(trails) != 0 {
		t.Errorf("trail (aa)* paths = %d, want 0", len(trails))
	}
}

func TestCountMatchingPaths(t *testing.T) {
	// Figure 5 with n stages: 2ⁿ a-paths s→t of length n.
	g := gen.Figure5(6)
	got := CountMatchingPaths(g, rpq.MustParse("a*"), g.MustNode("s"), g.MustNode("t"), 6)
	if got.Int64() != 64 {
		t.Errorf("count = %v, want 64", got)
	}
	// Cycle of 3: paths v0→v0 with length ≤ 7 have lengths 0, 3, 6.
	c := gen.Cycle(3, "a")
	got = CountMatchingPaths(c, rpq.MustParse("a*"), 0, 0, 7)
	if got.Int64() != 3 {
		t.Errorf("cycle count = %v, want 3", got)
	}
	// An ambiguous expression must still count paths, not runs.
	amb := rpq.MustParse("a a* | a* a")
	p4 := gen.APath(3, "a")
	got = CountMatchingPaths(p4, amb, p4.MustNode("v0"), p4.MustNode("v3"), 5)
	if got.Int64() != 1 {
		t.Errorf("ambiguous-expression count = %v, want 1 (single path)", got)
	}
}

func TestCountMatchesEnumeration(t *testing.T) {
	// Cross-check CountMatchingPaths against Paths(All) on random graphs.
	rng := rand.New(rand.NewSource(5))
	exprs := []string{"a*", "(a b)*", "a (a | b)*", "(a a)*"}
	for trial := 0; trial < 20; trial++ {
		g := gen.Random(4, 7, []string{"a", "b"}, int64(trial)*77+1)
		e := rpq.MustParse(exprs[rng.Intn(len(exprs))])
		src, dst := rng.Intn(4), rng.Intn(4)
		const maxLen = 5
		paths, err := Paths(g, e, src, dst, All, Options{MaxLen: maxLen})
		if err != nil {
			t.Fatal(err)
		}
		count := CountMatchingPaths(g, e, src, dst, maxLen)
		if count.Int64() != int64(len(paths)) {
			t.Errorf("trial %d: count = %v, enumerated = %d (expr %s, %d→%d)",
				trial, count, len(paths), e, src, dst)
		}
	}
}

func TestKShortestWalks(t *testing.T) {
	g := gen.Cycle(3, "a")
	walks := KShortestWalks(g, rpq.MustParse("a*"), 0, 0, 4)
	if len(walks) != 4 {
		t.Fatalf("walks = %d, want 4", len(walks))
	}
	for i, want := range []int{0, 3, 6, 9} {
		if walks[i].Len() != want {
			t.Errorf("walk %d length = %d, want %d", i, walks[i].Len(), want)
		}
	}
	// Lengths must be nondecreasing on a branching graph too.
	f := gen.Figure5(3)
	walks = KShortestWalks(f, rpq.MustParse("a*"), f.MustNode("s"), f.MustNode("t"), 8)
	if len(walks) != 8 {
		t.Fatalf("figure5 walks = %d, want 8", len(walks))
	}
	for i := 1; i < len(walks); i++ {
		if walks[i].Len() < walks[i-1].Len() {
			t.Error("walk lengths must be nondecreasing")
		}
	}
}

func TestExistsMode(t *testing.T) {
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).
		AddEdge("e1", "a", "u", "v", nil).
		AddEdge("e2", "a", "v", "u", nil).
		MustBuild()
	u := g.MustNode("u")
	// A length-4 a-path u→u exists as a walk but not as a trail or simple path.
	e4 := rpq.MustParse("a a a a")
	if !ExistsMode(g, e4, u, u, All) {
		t.Error("walk of length 4 exists")
	}
	if ExistsMode(g, e4, u, u, Trail) {
		t.Error("no trail of length 4 (only 2 edges)")
	}
	if ExistsMode(g, e4, u, u, Simple) {
		t.Error("no simple path of length 4")
	}
	e2 := rpq.MustParse("a a")
	if !ExistsMode(g, e2, u, u, Trail) {
		t.Error("e1·e2 is a trail u→u")
	}
	if ExistsMode(g, e2, u, u, Simple) {
		t.Error("u→v→u repeats u: not simple")
	}
}

// TestSoundnessAndCompleteness cross-checks the product evaluation against a
// brute-force path enumeration on small random graphs: every brute-force
// match must be found (completeness up to the brute-force bound), and every
// witness returned must actually match (soundness).
func TestSoundnessAndCompleteness(t *testing.T) {
	exprs := []string{"a*", "a b", "(a|b)+", "(a a)*", "!{a}*", "a _ b?"}
	for trial := 0; trial < 15; trial++ {
		g := gen.Random(4, 6, []string{"a", "b"}, int64(trial)*13+7)
		for _, es := range exprs {
			e := rpq.MustParse(es)
			// Brute force: all endpoint pairs with a matching path ≤ 6 edges.
			brute := map[[2]int]bool{}
			var dfs func(start, cur int, word []string)
			dfs = func(start, cur int, word []string) {
				if rpq.Matches(e, word) {
					brute[[2]int{start, cur}] = true
				}
				if len(word) == 6 {
					return
				}
				for _, ei := range g.Out(cur) {
					dfs(start, g.Edge(ei).Tgt, append(word, g.Edge(ei).Label))
				}
			}
			for u := 0; u < g.NumNodes(); u++ {
				dfs(u, u, nil)
			}
			got := map[[2]int]bool{}
			for _, pr := range Pairs(g, e) {
				got[pr] = true
			}
			for pr := range brute {
				if !got[pr] {
					t.Fatalf("trial %d expr %s: missing pair %v", trial, es, pr)
				}
			}
			// Soundness: every returned pair has a witness whose label word
			// matches the expression.
			for pr := range got {
				w, ok := Witness(g, e, pr[0], pr[1])
				if !ok {
					t.Fatalf("trial %d expr %s: pair %v has no witness", trial, es, pr)
				}
				if !rpq.Matches(e, w.ELab(g)) {
					t.Fatalf("trial %d expr %s: witness %s does not match", trial, es, w.Format(g))
				}
				if s, _ := w.Src(g); w.Len() > 0 && s != pr[0] {
					t.Fatalf("witness starts at wrong node")
				}
			}
		}
	}
}

func TestShortestEnumerationMatchesFilteredAll(t *testing.T) {
	// On random graphs, Shortest = the minimal-length slice of All.
	for trial := 0; trial < 10; trial++ {
		g := gen.Random(4, 7, []string{"a", "b"}, int64(trial)*31+3)
		e := rpq.MustParse("(a|b)+")
		for src := 0; src < g.NumNodes(); src++ {
			for dst := 0; dst < g.NumNodes(); dst++ {
				all, err := Paths(g, e, src, dst, All, Options{MaxLen: 5})
				if err != nil {
					t.Fatal(err)
				}
				short, err := Paths(g, e, src, dst, Shortest, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if len(all) == 0 {
					// No path within the bound; Shortest may still find a
					// longer one — skip the comparison.
					continue
				}
				min := all[0].Len()
				var wantKeys []string
				for _, p := range all {
					if p.Len() == min {
						wantKeys = append(wantKeys, p.Key())
					}
				}
				if len(short) != len(wantKeys) {
					t.Fatalf("trial %d %d→%d: shortest = %d paths, want %d",
						trial, src, dst, len(short), len(wantKeys))
				}
				for i, p := range short {
					if p.Key() != wantKeys[i] {
						t.Fatalf("trial %d: shortest path mismatch", trial)
					}
				}
			}
		}
	}
}

func TestProductStateAccessors(t *testing.T) {
	g := gen.APath(2, "a")
	p := CompileProduct(g, rpq.MustParse("a a"))
	if p.NumStates() != g.NumNodes()*p.A.NumStates {
		t.Error("NumStates mismatch")
	}
	s := p.Start(0)
	if s.Node != 0 || s.State != p.A.Start {
		t.Error("Start wrong")
	}
	if p.id(p.unid(5)) != 5 {
		t.Error("id/unid roundtrip failed")
	}
	steps := p.Succ(s)
	if len(steps) == 0 {
		t.Error("expected successors from start")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{All: "all", Shortest: "shortest", Simple: "simple", Trail: "trail"} {
		if m.String() != want {
			t.Errorf("Mode.String() = %q, want %q", m.String(), want)
		}
		got, err := ParseMode(want)
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", want, got, err)
		}
	}
	if _, err := ParseMode("zigzag"); err == nil {
		t.Error("ParseMode should reject unknown modes")
	}
	if m, err := ParseMode(""); err != nil || m != All {
		t.Error("empty mode should default to all")
	}
}
