package eval

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"graphquery/internal/automata"
	"graphquery/internal/gpath"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
)

// ErrUnbounded is returned when an enumeration under mode "all" would be
// infinite and no MaxLen/Limit bound was supplied.
var ErrUnbounded = errors.New("eval: unbounded enumeration under mode all requires MaxLen or Limit")

// Parallelism resolves an Options.Parallelism value to a worker count:
// values ≤ 0 mean "one worker per available CPU".
func Parallelism(p int) int { return pg.Workers(p) }

// Pairs computes ⟦R⟧_G = {(u,v) | some path from u to v matches R}
// (Section 3.1.1), via one product-graph BFS per source node. Results are
// sorted lexicographically.
func Pairs(g *graph.Graph, e rpq.Expr) [][2]int {
	return PairsCompiled(g, rpq.Compile(e), Options{})
}

// PairsOpt is Pairs with explicit options (parallel per-source fan-out).
func PairsOpt(g *graph.Graph, e rpq.Expr, opts Options) [][2]int {
	return PairsCompiled(g, rpq.Compile(e), opts)
}

// PairsCompiled evaluates an already compiled automaton — the entry point
// for plan caches that skip parsing and Glushkov compilation. Source nodes
// are partitioned into chunks evaluated by a worker pool of
// Parallelism(opts.Parallelism) goroutines; per-chunk results are merged in
// chunk order, so the output is byte-identical to the sequential path:
// sorted lexicographically, because each per-source result is ascending and
// sources are processed in ascending blocks (no final sort is needed).
func PairsCompiled(g *graph.Graph, a *automata.NFA, opts Options) [][2]int {
	return PairsProduct(NewProduct(g, a), opts)
}

// PairsProduct evaluates over an already graph-resolved product — the entry
// point for engines that cache the product alongside the compiled NFA (a
// Product is immutable, so one instance serves concurrent queries).
func PairsProduct(p *Product, opts Options) [][2]int {
	out, _ := pairsProductMeter(p, opts, nil) // nil meter: cannot fail
	return out
}

// PairsCtx is PairsOpt under a context and the budget carried by opts: the
// cooperative-cancellation entry point for serving layers. It returns
// ErrCanceled (wrapping the context cause) when ctx is canceled mid-search
// and ErrBudgetExceeded when opts.Budget is exhausted.
func PairsCtx(ctx context.Context, g *graph.Graph, e rpq.Expr, opts Options) ([][2]int, error) {
	return PairsProductCtx(ctx, NewProduct(g, rpq.Compile(e)), opts)
}

// PairsProductCtx is PairsProduct under a context and budget. The meter is
// opts.Meter when set (a serving layer sharing one meter across stages),
// otherwise minted from ctx and opts.Budget.
func PairsProductCtx(ctx context.Context, p *Product, opts Options) ([][2]int, error) {
	m := opts.Meter
	if m == nil {
		m = NewMeter(ctx, opts.Budget)
	}
	return pairsProductMeter(p, opts, m)
}

// pairsProductMeter is the shared implementation: one kernel sweep per
// source (or per target, under a backward plan), fanned out over
// pg.ForEach's worker pool with deterministic chunk-ordered merge, every
// sweep metered. Workers share the meter, so a canceled context or an
// exhausted budget stops all of them within one check interval; the pool
// is always joined before returning (no goroutine outlives the call, even
// on error).
func pairsProductMeter(p *Product, opts Options, m *Meter) ([][2]int, error) {
	n := p.G.NumNodes()
	plan := opts.Plan
	workers := plan.Workers
	if workers == 0 {
		workers = Parallelism(opts.Parallelism)
	}
	kern := p.kern
	if plan.Backward {
		kern = p.backward()
	}
	kern.Counters().CountPlan(pg.Plan{
		Backward: plan.Backward, Dense: plan.Dense, Workers: workers,
		Frontier: plan.Frontier, Shards: plan.Shards,
	})
	pairs, err := pg.ForEach(n, workers, kern.GetScratch, kern.PutScratch, func(u int, sc *Scratch) ([][2]int, error) {
		if !p.G.NodeAlive(u) { // tombstoned under a mutation overlay
			return nil, nil
		}
		// ReachableSweep dispatches on the plan: scalar plans run the classic
		// queue loop with emission-time rows charging (a MaxRows budget trips
		// on row MaxRows+1, not after the whole sweep's batch), frontier
		// plans the level-synchronous engine with the same rows accounting.
		vs, err := kern.ReachableSweep(u, sc, m, plan)
		if err != nil {
			return nil, err
		}
		part := make([][2]int, len(vs))
		for i, v := range vs {
			if plan.Backward {
				part[i] = [2]int{v, u}
			} else {
				part[i] = [2]int{u, v}
			}
		}
		return part, nil
	})
	if err != nil {
		return nil, err
	}
	// A backward plan sweeps targets, yielding pairs grouped by v; one
	// global sort restores the forward path's lexicographic order (the two
	// paths produce the same set, so the sorted sequences are identical).
	if plan.Backward {
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
	}
	return pairs, nil
}

// ReachableFrom returns all v with (src, v) ∈ ⟦R⟧_G, sorted.
func ReachableFrom(g *graph.Graph, e rpq.Expr, src int) []int {
	return reachableFrom(CompileProduct(g, e), src)
}

// ReachableFromMeter is ReachableFrom over a prebuilt product under a meter
// (sc may be nil for one-shot use, or a scratch reused across calls) — the
// building block multi-stage evaluators (crpq atom materialization) use to
// share one cancellation/budget instrument across many BFS runs. A nil
// meter never fails.
func ReachableFromMeter(p *Product, src int, sc *Scratch, m *Meter) ([]int, error) {
	if sc == nil {
		sc = p.NewScratch()
	}
	return p.kern.Reachable(src, sc, m)
}

func reachableFrom(p *Product, src int) []int {
	return p.reachableInto(src, p.NewScratch())
}

// Check reports whether (src, dst) ∈ ⟦R⟧_G.
func Check(g *graph.Graph, e rpq.Expr, src, dst int) bool {
	p := CompileProduct(g, e)
	dist, _, _ := p.bfs(src)
	for q := 0; q < p.A.NumStates; q++ {
		if p.A.Accept[q] && dist[p.id(State{Node: dst, State: q})] >= 0 {
			return true
		}
	}
	return false
}

// Witness returns one shortest path from src to dst matching R, or ok=false
// if none exists.
func Witness(g *graph.Graph, e rpq.Expr, src, dst int) (gpath.Path, bool) {
	p := CompileProduct(g, e)
	dist, parent, parentEdge := p.bfs(src)
	best, bestDist := -1, -1
	for q := 0; q < p.A.NumStates; q++ {
		id := p.id(State{Node: dst, State: q})
		if p.A.Accept[q] && dist[id] >= 0 && (bestDist == -1 || dist[id] < bestDist) {
			best, bestDist = id, dist[id]
		}
	}
	if best == -1 {
		return gpath.Path{}, false
	}
	// Reconstruct edge sequence backwards.
	var edges []int
	for cur := best; parent[cur] != -1; cur = parent[cur] {
		edges = append(edges, parentEdge[cur])
	}
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	return pathFromEdges(g, src, edges), true
}

// pathFromEdges assembles the node-to-node path starting at src that
// traverses the given edges in order.
func pathFromEdges(g *graph.Graph, src int, edges []int) gpath.Path {
	p := gpath.OfNode(src)
	for _, ei := range edges {
		next, _ := gpath.Concat(g, p, gpath.Triple(g, ei))
		p = next
	}
	return p
}

// Options bound path enumeration and evaluation resources.
type Options struct {
	// MaxLen bounds path length (number of edges); 0 means unbounded.
	MaxLen int
	// Limit bounds the number of returned paths; 0 means unlimited.
	// Exceeding Limit truncates; exceeding Budget.MaxRows errors.
	Limit int
	// Parallelism caps the number of worker goroutines used by per-source
	// fan-out; 0 means runtime.GOMAXPROCS(0), 1 forces the sequential path.
	Parallelism int
	// Plan is the evaluation strategy chosen by the cost-based planner
	// (direction, scan mode, fan-out degree). The zero Plan is the
	// historical default: forward, label-indexed, Parallelism workers.
	Plan pg.Plan
	// Budget caps resources for the Ctx entry points; zero means unlimited.
	Budget Budget
	// Meter, when non-nil, overrides ctx+Budget in the Ctx entry points: the
	// live instrument a serving layer threads through every stage of one
	// query so cancellation and budgets are enforced query-globally.
	Meter *Meter
}

// Paths enumerates the set of node-to-node paths from src to dst matching R
// under the given mode:
//
//	All       every matching path (requires MaxLen or Limit: the set can
//	          be infinite, Section 6.3);
//	Shortest  every matching path of minimal length;
//	Simple    every matching simple path;
//	Trail     every matching trail.
//
// Paths are deduplicated (set semantics): two distinct automaton runs over
// the same graph path yield one result. Results are ordered by length, then
// by path key.
func Paths(g *graph.Graph, e rpq.Expr, src, dst int, mode Mode, opts Options) ([]gpath.Path, error) {
	p := CompileProduct(g, e)
	switch mode {
	case All:
		if opts.MaxLen <= 0 && opts.Limit <= 0 {
			return nil, ErrUnbounded
		}
		return enumerateAll(p, src, dst, opts), nil
	case Shortest:
		return enumerateShortest(p, src, dst, opts), nil
	case Simple:
		return enumerateRestricted(p, src, dst, opts, false), nil
	case Trail:
		return enumerateRestricted(p, src, dst, opts, true), nil
	default:
		return nil, fmt.Errorf("eval: unknown mode %v", mode)
	}
}

// sortPaths orders by length then key and applies the limit.
func sortPaths(paths []gpath.Path, limit int) []gpath.Path {
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].Len() != paths[j].Len() {
			return paths[i].Len() < paths[j].Len()
		}
		return paths[i].Key() < paths[j].Key()
	})
	if limit > 0 && len(paths) > limit {
		paths = paths[:limit]
	}
	return paths
}

// enumerateAll walks the product depth-first up to the bounds, deduplicating
// graph paths.
func enumerateAll(p *Product, src, dst int, opts Options) []gpath.Path {
	maxLen := opts.MaxLen
	if maxLen <= 0 {
		// Limit-only enumeration: explore breadth-first by length so the
		// shortest Limit paths are found without unbounded recursion.
		return kShortestInternal(p, src, dst, opts.Limit)
	}
	seen := map[string]struct{}{}
	var out []gpath.Path
	var edges []int
	var dfs func(s State)
	dfs = func(s State) {
		if s.Node == dst && p.Accepting(s) {
			path := pathFromEdges(p.G, src, edges)
			k := path.Key()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, path)
			}
		}
		if len(edges) == maxLen {
			return
		}
		for _, st := range p.Succ(s) {
			edges = append(edges, st.Edge)
			dfs(st.To)
			edges = edges[:len(edges)-1]
		}
	}
	dfs(p.Start(src))
	return sortPaths(out, opts.Limit)
}

// enumerateShortest finds d* = the minimal accepting distance, then walks
// only "tight" product edges (dist increases by exactly 1) to collect every
// shortest matching path.
func enumerateShortest(p *Product, src, dst int, opts Options) []gpath.Path {
	dist, _, _ := p.bfs(src)
	best := -1
	for q := 0; q < p.A.NumStates; q++ {
		id := p.id(State{Node: dst, State: q})
		if p.A.Accept[q] && dist[id] >= 0 && (best == -1 || dist[id] < best) {
			best = dist[id]
		}
	}
	if best == -1 {
		return nil
	}
	seen := map[string]struct{}{}
	var out []gpath.Path
	var edges []int
	var dfs func(s State)
	dfs = func(s State) {
		d := len(edges)
		if d == best {
			if s.Node == dst && p.Accepting(s) {
				path := pathFromEdges(p.G, src, edges)
				k := path.Key()
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					out = append(out, path)
				}
			}
			return
		}
		for _, st := range p.Succ(s) {
			// Tight edges only: every path of minimal total length visits
			// each product state exactly at its BFS distance (otherwise a
			// strictly shorter matching path would exist).
			if dist[p.id(st.To)] == d+1 {
				edges = append(edges, st.Edge)
				dfs(st.To)
				edges = edges[:len(edges)-1]
			}
		}
	}
	dfs(p.Start(src))
	return sortPaths(out, opts.Limit)
}

// enumerateRestricted backtracks over the product forbidding repeated nodes
// (simple) or repeated edges (trail). This search is worst-case exponential;
// deciding existence alone is NP-complete (Section 6.3 "Path Modes").
func enumerateRestricted(p *Product, src, dst int, opts Options, trail bool) []gpath.Path {
	seen := map[string]struct{}{}
	var out []gpath.Path
	var edges []int
	usedNodes := map[int]struct{}{}
	usedEdges := map[int]struct{}{}
	if !trail {
		usedNodes[src] = struct{}{}
	}
	limitHit := false
	var dfs func(s State)
	dfs = func(s State) {
		if limitHit {
			return
		}
		if s.Node == dst && p.Accepting(s) {
			path := pathFromEdges(p.G, src, edges)
			k := path.Key()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, path)
				if opts.Limit > 0 && len(out) >= opts.Limit {
					limitHit = true
					return
				}
			}
		}
		if opts.MaxLen > 0 && len(edges) == opts.MaxLen {
			return
		}
		for _, st := range p.Succ(s) {
			if trail {
				if _, used := usedEdges[st.Edge]; used {
					continue
				}
				usedEdges[st.Edge] = struct{}{}
			} else {
				if _, used := usedNodes[st.To.Node]; used {
					continue
				}
				usedNodes[st.To.Node] = struct{}{}
			}
			edges = append(edges, st.Edge)
			dfs(st.To)
			edges = edges[:len(edges)-1]
			if trail {
				delete(usedEdges, st.Edge)
			} else {
				delete(usedNodes, st.To.Node)
			}
		}
	}
	dfs(p.Start(src))
	return sortPaths(out, 0)
}

// CountMatchingPaths returns the number of distinct paths of length ≤ maxLen
// from src to dst that match R. Following Section 6.2, the count is computed
// on the product with an unambiguous automaton (so that each graph path has
// at most one accepting run); if the Glushkov automaton is ambiguous it is
// determinized first.
func CountMatchingPaths(g *graph.Graph, e rpq.Expr, src, dst, maxLen int) *big.Int {
	a := rpq.Compile(e)
	if !a.IsUnambiguous() {
		a = a.Determinize().ToNFA()
	}
	p := NewProduct(g, a)
	n := p.NumStates()
	counts := make([]*big.Int, n)
	for i := range counts {
		counts[i] = new(big.Int)
	}
	counts[p.id(p.Start(src))].SetInt64(1)
	total := new(big.Int)
	addAccepting := func(cs []*big.Int) {
		for q := 0; q < p.A.NumStates; q++ {
			if p.A.Accept[q] {
				total.Add(total, cs[p.id(State{Node: dst, State: q})])
			}
		}
	}
	addAccepting(counts) // length-0 path
	for step := 1; step <= maxLen; step++ {
		next := make([]*big.Int, n)
		for i := range next {
			next[i] = new(big.Int)
		}
		for i, c := range counts {
			if c.Sign() == 0 {
				continue
			}
			for _, st := range p.Succ(p.unid(i)) {
				j := p.id(st.To)
				next[j].Add(next[j], c)
			}
		}
		counts = next
		addAccepting(counts)
	}
	return total
}

// KShortestWalks enumerates the k shortest matching paths from src to dst in
// nondecreasing length order (ties broken by path key). Unlike mode
// Shortest, it continues past the minimal length — the "k shortest paths"
// direction of Section 7.1 (Eppstein). Paths may repeat nodes and edges.
func KShortestWalks(g *graph.Graph, e rpq.Expr, src, dst, k int) []gpath.Path {
	return kShortestInternal(CompileProduct(g, e), src, dst, k)
}

func kShortestInternal(p *Product, src, dst, k int) []gpath.Path {
	if k <= 0 {
		return nil
	}
	// Lazy best-first search with a per-product-state pop budget of k: the
	// classical k-shortest-walks scheme. A binary heap orders partial paths
	// by (length, key-so-far) for deterministic output.
	type item struct {
		state State
		edges []int
	}
	less := func(a, b item) bool {
		if len(a.edges) != len(b.edges) {
			return len(a.edges) < len(b.edges)
		}
		for i := range a.edges {
			if a.edges[i] != b.edges[i] {
				return a.edges[i] < b.edges[i]
			}
		}
		return false
	}
	var heap []item
	push := func(it item) {
		heap = append(heap, it)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if less(heap[i], heap[parent]) {
				heap[i], heap[parent] = heap[parent], heap[i]
				i = parent
			} else {
				break
			}
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				break
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
		return top
	}

	pops := make(map[int]int)
	seen := map[string]struct{}{}
	var out []gpath.Path
	push(item{state: p.Start(src)})
	for len(heap) > 0 && len(out) < k {
		it := pop()
		id := p.id(it.state)
		if pops[id] >= k {
			continue
		}
		pops[id]++
		if it.state.Node == dst && p.Accepting(it.state) {
			path := pathFromEdges(p.G, src, it.edges)
			key := path.Key()
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				out = append(out, path)
				if len(out) == k {
					break
				}
			}
		}
		for _, st := range p.Succ(it.state) {
			ext := make([]int, len(it.edges)+1)
			copy(ext, it.edges)
			ext[len(it.edges)] = st.Edge
			push(item{state: st.To, edges: ext})
		}
	}
	return out
}

// ExistsMode reports whether some path from src to dst matching R exists
// under the given mode. For All and Shortest this is plain product
// reachability (polynomial); for Simple and Trail it is the NP-complete
// problem of Section 6.3, decided by backtracking with early exit.
func ExistsMode(g *graph.Graph, e rpq.Expr, src, dst int, mode Mode) bool {
	switch mode {
	case All, Shortest:
		return Check(g, e, src, dst)
	case Simple, Trail:
		p := CompileProduct(g, e)
		paths := enumerateRestricted(p, src, dst, Options{Limit: 1}, mode == Trail)
		return len(paths) > 0
	default:
		return false
	}
}
