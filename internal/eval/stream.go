package eval

import (
	"context"

	"graphquery/internal/pg"
)

// emitBatchRows bounds the pair batches the degraded (materialize-first)
// streaming paths hand to emit, so a consumer sized for incremental batches
// never receives one giant slice even when the evaluation itself could not
// stream.
const emitBatchRows = 1024

// PairsProductEmit is PairsProductCtx with streaming delivery: instead of
// returning the materialized pair list, batches of pairs are handed to emit
// in exactly the order PairsProductCtx would return them, while evaluation
// is still running. Memory is bounded by the fan-out's in-flight window
// (pg.ForEachEmit) — O(window × per-source result) — not by the total
// result, and a blocked emit throttles the worker pool (backpressure).
//
// Rows are charged on the meter at emission time inside each sweep, exactly
// as in the materializing path, so a MaxRows budget still trips on row
// MaxRows+1. emit is never called concurrently with itself; its error stops
// evaluation and is returned verbatim (serving layers use a sentinel to
// stop early, e.g. when a cursor page is full). A batch is only valid for
// the duration of the emit call — the sequential path reuses its buffer —
// so consumers must encode or copy before returning.
//
// Backward plans cannot stream: they sweep targets and need one global sort
// to restore lexicographic order, so nothing is correctly ordered until
// every sweep finished. They degrade cleanly to materialize-then-emit in
// bounded batches — the consumer-side contract (ordered bounded batches) is
// unchanged; only the peak memory reverts to the buffered path's.
func PairsProductEmit(ctx context.Context, p *Product, opts Options, emit func(pairs [][2]int) error) error {
	m := opts.Meter
	if m == nil {
		m = NewMeter(ctx, opts.Budget)
	}
	plan := opts.Plan
	if plan.Backward {
		pairs, err := pairsProductMeter(p, opts, m)
		if err != nil {
			return err
		}
		for lo := 0; lo < len(pairs); lo += emitBatchRows {
			hi := lo + emitBatchRows
			if hi > len(pairs) {
				hi = len(pairs)
			}
			if err := emit(pairs[lo:hi]); err != nil {
				return err
			}
		}
		return nil
	}

	n := p.G.NumNodes()
	workers := plan.Workers
	if workers == 0 {
		workers = Parallelism(opts.Parallelism)
	}
	kern := p.kern
	kern.Counters().CountPlan(pg.Plan{
		Backward: false, Dense: plan.Dense, Workers: workers,
		Frontier: plan.Frontier, Shards: plan.Shards,
	})
	if workers <= 1 {
		// Sequential: the kernel's row sink feeds a reused batch buffer, so
		// peak memory is O(batch) on top of the sweep scratch — no per-source
		// slice is ever materialized.
		sc := kern.GetScratch()
		defer kern.PutScratch(sc)
		batch := make([][2]int, 0, emitBatchRows)
		for u := 0; u < n; u++ {
			if !p.G.NodeAlive(u) {
				continue
			}
			src := u
			err := kern.ReachableSweepSink(src, sc, m, plan, func(v int) error {
				batch = append(batch, [2]int{src, v})
				if len(batch) == cap(batch) {
					err := emit(batch)
					batch = batch[:0]
					return err
				}
				return nil
			})
			if err != nil {
				// A sweep error (budget trip, cancel, kill) only voids the
				// erroring source: rows from completed sources are already
				// charged and correctly ordered, so hand them over before
				// surfacing the error — mid-stream consumers keep everything
				// produced up to the trip.
				if len(batch) > 0 {
					if emitErr := emit(batch); emitErr != nil {
						return emitErr
					}
				}
				return err
			}
		}
		if len(batch) > 0 {
			return emit(batch)
		}
		return nil
	}
	return pg.ForEachEmit(n, workers, kern.GetScratch, kern.PutScratch, func(u int, sc *Scratch) ([][2]int, error) {
		if !p.G.NodeAlive(u) {
			return nil, nil
		}
		vs, err := kern.ReachableSweep(u, sc, m, plan)
		if err != nil {
			return nil, err
		}
		part := make([][2]int, len(vs))
		for i, v := range vs {
			part[i] = [2]int{u, v}
		}
		return part, nil
	}, emit)
}
