package eval

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/rpq"
)

func mustProduct(t *testing.T, g *graph.Graph, query string) *Product {
	t.Helper()
	e, err := rpq.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	return NewProduct(g, rpq.Compile(e))
}

// ctxCases is the shared table: every graph × query here is exercised
// under sequential and parallel evaluation.
var ctxCases = []struct {
	name  string
	build func() *graph.Graph
	query string
}{
	{"clique", func() *graph.Graph { return gen.Clique(60, "a") }, "a* a*"},
	{"figure5", func() *graph.Graph { return gen.Figure5(12) }, "a* a*"},
}

func TestPairsCtxPreCanceled(t *testing.T) {
	for _, par := range []int{1, 4} {
		for _, tc := range ctxCases {
			p := mustProduct(t, tc.build(), tc.query)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := PairsProductCtx(ctx, p, Options{Parallelism: par})
			if !errors.Is(err, ErrCanceled) {
				t.Errorf("%s/par=%d: pre-canceled ctx: got %v, want ErrCanceled", tc.name, par, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s/par=%d: cause context.Canceled not preserved: %v", tc.name, par, err)
			}
		}
	}
}

// TestPairsCtxPromptCancel cancels mid-BFS and requires the evaluator to
// return ErrCanceled well before it could have finished the query. The
// 5-second watchdog guards against a cancellation path that never fires.
func TestPairsCtxPromptCancel(t *testing.T) {
	// Big enough that a* a* a* over the clique product cannot finish in the
	// cancel delay even ÷4 workers (~600ms sequential); cancellation checks
	// run every MeterCheckInterval pops, so the return should be
	// near-immediate once ctx fires.
	p := mustProduct(t, gen.Clique(300, "a"), "a* a* a*")
	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := PairsProductCtx(ctx, p, Options{Parallelism: par})
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, ErrCanceled) {
				t.Errorf("par=%d: got %v, want ErrCanceled", par, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("par=%d: evaluator ignored cancellation for 5s", par)
		}
	}
}

func TestPairsCtxDeadline(t *testing.T) {
	p := mustProduct(t, gen.Clique(300, "a"), "a* a* a*")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := PairsProductCtx(ctx, p, Options{Parallelism: 2})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("got %v, want ErrCanceled", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("deadline cause not preserved: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evaluator ignored the deadline for 5s")
	}
}

func TestPairsCtxBudgets(t *testing.T) {
	for _, par := range []int{1, 4} {
		for _, tc := range ctxCases {
			p := mustProduct(t, tc.build(), tc.query)

			_, err := PairsProductCtx(context.Background(), p,
				Options{Parallelism: par, Budget: Budget{MaxStates: 50}})
			if !errors.Is(err, ErrBudgetExceeded) {
				t.Errorf("%s/par=%d: MaxStates: got %v, want ErrBudgetExceeded", tc.name, par, err)
			}
			var be *BudgetError
			if !errors.As(err, &be) || be.Resource != "states" {
				t.Errorf("%s/par=%d: MaxStates: got %v, want *BudgetError{states}", tc.name, par, err)
			}

			_, err = PairsProductCtx(context.Background(), p,
				Options{Parallelism: par, Budget: Budget{MaxRows: 3}})
			if !errors.Is(err, ErrBudgetExceeded) {
				t.Errorf("%s/par=%d: MaxRows: got %v, want ErrBudgetExceeded", tc.name, par, err)
			}
			if !errors.As(err, &be) || be.Resource != "rows" {
				t.Errorf("%s/par=%d: MaxRows: got %v, want *BudgetError{rows}", tc.name, par, err)
			}
		}
	}
}

// TestPairsCtxMatchesPairs checks the metered path returns exactly what the
// unmetered one does when nothing constrains it.
func TestPairsCtxMatchesPairs(t *testing.T) {
	for _, par := range []int{1, 4} {
		for _, tc := range ctxCases {
			p := mustProduct(t, tc.build(), tc.query)
			want := PairsProduct(p, Options{Parallelism: par})
			got, err := PairsProductCtx(context.Background(), p,
				Options{Parallelism: par, Budget: Budget{MaxStates: 1 << 40, MaxRows: 1 << 40}})
			if err != nil {
				t.Fatalf("%s/par=%d: %v", tc.name, par, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s/par=%d: got %d pairs, want %d", tc.name, par, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s/par=%d: pair %d: got %v, want %v", tc.name, par, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPairsCtxNoGoroutineLeak cancels parallel evaluations repeatedly and
// checks the worker pools are joined: the goroutine count returns to (near)
// its baseline.
func TestPairsCtxNoGoroutineLeak(t *testing.T) {
	p := mustProduct(t, gen.Clique(80, "a"), "a* a*")
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := PairsProductCtx(ctx, p, Options{Parallelism: 4}); !errors.Is(err, ErrCanceled) {
			t.Fatalf("iteration %d: got %v, want ErrCanceled", i, err)
		}
	}
	// Workers are joined before PairsProductCtx returns, so only unrelated
	// runtime goroutines should move the count; allow slack and retry
	// briefly for scheduler noise.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
