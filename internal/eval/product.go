package eval

import (
	"sort"

	"graphquery/internal/automata"
	"graphquery/internal/graph"
	"graphquery/internal/rpq"
)

// Product is the product graph G× of an edge-labeled graph G and an NFA N_R
// (Section 6.2): nodes are pairs (u, q) ∈ N × Q, and each pair of a graph
// edge e and an automaton transition (q₁, a, q₂) with λ(e) = a yields the
// product edge ((src(e), q₁) → (tgt(e), q₂)).
//
// The product is materialized lazily per state: Succ computes the outgoing
// product edges of a state on demand, which is what makes single-pair
// queries cheap on large graphs. At construction time every transition
// guard is resolved against the graph's interned label numbering, so Succ
// intersects guards with the per-label CSR adjacency instead of scanning
// all out-edges; only co-finite wildcard guards fall back to the dense
// list. A Product is immutable after construction and safe for concurrent
// use.
type Product struct {
	G *graph.Graph
	A *automata.NFA

	// succ holds, per automaton state, its transitions with positive guards
	// pre-resolved to graph label IDs. Transitions whose positive guard
	// mentions no label present in G can never fire and are dropped.
	succ [][]ptrans
}

// ptrans is one automaton transition resolved against a concrete graph.
type ptrans struct {
	to       int
	labelIDs []int          // label IDs matched by a positive guard
	negated  bool           // co-finite guard: scan the dense list with guard
	guard    automata.Guard // kept for the negated fallback
}

// NewProduct pairs a graph with a compiled automaton, resolving every
// transition guard against the graph's label index.
func NewProduct(g *graph.Graph, a *automata.NFA) *Product {
	p := &Product{G: g, A: a, succ: make([][]ptrans, a.NumStates)}
	for q, ts := range a.Trans {
		resolved := make([]ptrans, 0, len(ts))
		for _, t := range ts {
			pt := ptrans{to: t.To, negated: t.Guard.Negated, guard: t.Guard}
			if !t.Guard.Negated {
				for _, lab := range t.Guard.Labels {
					if id, ok := g.LabelID(lab); ok {
						pt.labelIDs = append(pt.labelIDs, id)
					}
				}
				if len(pt.labelIDs) == 0 {
					continue // guard matches no edge of this graph
				}
			}
			resolved = append(resolved, pt)
		}
		p.succ[q] = resolved
	}
	return p
}

// CompileProduct pairs a graph with the Glushkov automaton of an RPQ.
func CompileProduct(g *graph.Graph, e rpq.Expr) *Product {
	return NewProduct(g, rpq.Compile(e))
}

// State is a product-graph node (u, q).
type State struct {
	Node  int // graph node u
	State int // automaton state q
}

// NumStates returns |N|·|Q|, the worst-case product size.
func (p *Product) NumStates() int { return p.G.NumNodes() * p.A.NumStates }

// id packs a State into a dense integer.
func (p *Product) id(s State) int { return s.Node*p.A.NumStates + s.State }

// unid unpacks a dense integer into a State.
func (p *Product) unid(i int) State {
	return State{Node: i / p.A.NumStates, State: i % p.A.NumStates}
}

// Start returns the initial product state (u, q₀) for source node u.
func (p *Product) Start(u int) State { return State{Node: u, State: p.A.Start} }

// Accepting reports whether s is accepting, i.e. its automaton component is
// in F.
func (p *Product) Accepting(s State) bool { return p.A.Accept[s.State] }

// Step is one product edge: the graph edge taken and the resulting state.
type Step struct {
	Edge int
	To   State
}

// Succ returns the outgoing product edges of s, in ascending (graph edge,
// transition) order — the same deterministic order the dense scan produced,
// but touching only label-matching edges via the CSR index.
func (p *Product) Succ(s State) []Step {
	type cand struct{ edge, ord, to int }
	var cands []cand
	for ti, t := range p.succ[s.State] {
		if t.negated {
			for _, ei := range p.G.Out(s.Node) {
				if t.guard.Matches(p.G.Edge(ei).Label) {
					cands = append(cands, cand{ei, ti, t.to})
				}
			}
		} else {
			for _, lid := range t.labelIDs {
				for _, ei := range p.G.OutWithLabel(s.Node, lid) {
					cands = append(cands, cand{ei, ti, t.to})
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].edge != cands[j].edge {
			return cands[i].edge < cands[j].edge
		}
		return cands[i].ord < cands[j].ord
	})
	out := make([]Step, len(cands))
	for i, c := range cands {
		out[i] = Step{Edge: c.edge, To: State{Node: p.G.Edge(c.edge).Tgt, State: c.to}}
	}
	return out
}

// Scratch holds the reusable buffers of repeated single-source
// reachability runs over one product: a visited bitmap over product states,
// the BFS queue (which doubles as the touched list for O(visited) resets),
// and a per-graph-node emitted bitmap. One scratch serves one goroutine.
type Scratch struct {
	visited []bool
	emitted []bool
	queue   []int
	nodes   []int
}

// NewScratch allocates buffers sized for p.
func (p *Product) NewScratch() *Scratch {
	return &Scratch{
		visited: make([]bool, p.NumStates()),
		emitted: make([]bool, p.G.NumNodes()),
	}
}

// reachableInto computes all graph nodes v such that some accepting product
// state (v, q) is reachable from (src, q₀), sorted ascending. The returned
// slice aliases sc.nodes and is valid until the next call with the same
// scratch. Unlike bfs it records no parents and imposes no visit order, so
// it runs allocation-free after warm-up — the hot path of Pairs.
func (p *Product) reachableInto(src int, sc *Scratch) []int {
	nodes, _ := p.reachableIntoMeter(src, sc, nil)
	return nodes
}

// reachableIntoMeter is reachableInto under a meter: every MeterCheckInterval
// dequeued states it flushes the count to the shared meter and polls for
// cancellation or an exhausted states budget. With a nil meter it is exactly
// reachableInto and never fails. On error the scratch is still reset, so the
// caller may reuse it.
func (p *Product) reachableIntoMeter(src int, sc *Scratch, m *Meter) ([]int, error) {
	nq := p.A.NumStates
	g := p.G
	sc.queue = sc.queue[:0]
	sc.nodes = sc.nodes[:0]
	start := src*nq + p.A.Start
	sc.visited[start] = true
	sc.queue = append(sc.queue, start)
	if p.A.Accept[p.A.Start] {
		sc.emitted[src] = true
		sc.nodes = append(sc.nodes, src)
	}
	var stopErr error
	ticked := 0
	head := 0
	for ; head < len(sc.queue); head++ {
		if m != nil && head-ticked >= MeterCheckInterval {
			if stopErr = m.Tick(int64(head - ticked)); stopErr != nil {
				break
			}
			ticked = head
		}
		cur := sc.queue[head]
		node, state := cur/nq, cur%nq
		for ti := range p.succ[state] {
			t := &p.succ[state][ti]
			if t.negated {
				for _, ei := range g.Out(node) {
					if !t.guard.Matches(g.Edge(ei).Label) {
						continue
					}
					p.visit(g.Edge(ei).Tgt, t.to, sc)
				}
			} else {
				for _, lid := range t.labelIDs {
					for _, ei := range g.OutWithLabel(node, lid) {
						p.visit(g.Edge(ei).Tgt, t.to, sc)
					}
				}
			}
		}
	}
	if stopErr == nil && m != nil && head > ticked {
		stopErr = m.Tick(int64(head - ticked))
	}
	// Reset the bitmaps by replaying the touched lists (on error too, so the
	// scratch stays reusable).
	for _, id := range sc.queue {
		sc.visited[id] = false
	}
	for _, v := range sc.nodes {
		sc.emitted[v] = false
	}
	if stopErr != nil {
		return nil, stopErr
	}
	sort.Ints(sc.nodes)
	return sc.nodes, nil
}

// visit pushes product state (node, to) if unseen, emitting node when the
// automaton state accepts.
func (p *Product) visit(node, to int, sc *Scratch) {
	id := node*p.A.NumStates + to
	if sc.visited[id] {
		return
	}
	sc.visited[id] = true
	sc.queue = append(sc.queue, id)
	if p.A.Accept[to] && !sc.emitted[node] {
		sc.emitted[node] = true
		sc.nodes = append(sc.nodes, node)
	}
}

// bfs runs breadth-first search over the product from (src, q₀) and returns
// dist (−1 for unreached) and parent pointers (product id and graph edge)
// for witness reconstruction.
func (p *Product) bfs(src int) (dist []int, parent []int, parentEdge []int) {
	n := p.NumStates()
	dist = make([]int, n)
	parent = make([]int, n)
	parentEdge = make([]int, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	start := p.id(p.Start(src))
	dist[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		s := p.unid(cur)
		for _, st := range p.Succ(s) {
			ni := p.id(st.To)
			if dist[ni] == -1 {
				dist[ni] = dist[cur] + 1
				parent[ni] = cur
				parentEdge[ni] = st.Edge
				queue = append(queue, ni)
			}
		}
	}
	return dist, parent, parentEdge
}
