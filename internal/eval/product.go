package eval

import (
	"graphquery/internal/automata"
	"graphquery/internal/graph"
	"graphquery/internal/rpq"
)

// Product is the product graph G× of an edge-labeled graph G and an NFA N_R
// (Section 6.2): nodes are pairs (u, q) ∈ N × Q, and each pair of a graph
// edge e and an automaton transition (q₁, a, q₂) with λ(e) = a yields the
// product edge ((src(e), q₁) → (tgt(e), q₂)).
//
// The product is materialized lazily per state: Succ computes the outgoing
// product edges of a state on demand, which is what makes single-pair
// queries cheap on large graphs.
type Product struct {
	G *graph.Graph
	A *automata.NFA
}

// NewProduct pairs a graph with a compiled automaton.
func NewProduct(g *graph.Graph, a *automata.NFA) *Product {
	return &Product{G: g, A: a}
}

// CompileProduct pairs a graph with the Glushkov automaton of an RPQ.
func CompileProduct(g *graph.Graph, e rpq.Expr) *Product {
	return NewProduct(g, rpq.Compile(e))
}

// State is a product-graph node (u, q).
type State struct {
	Node  int // graph node u
	State int // automaton state q
}

// NumStates returns |N|·|Q|, the worst-case product size.
func (p *Product) NumStates() int { return p.G.NumNodes() * p.A.NumStates }

// id packs a State into a dense integer.
func (p *Product) id(s State) int { return s.Node*p.A.NumStates + s.State }

// unid unpacks a dense integer into a State.
func (p *Product) unid(i int) State {
	return State{Node: i / p.A.NumStates, State: i % p.A.NumStates}
}

// Start returns the initial product state (u, q₀) for source node u.
func (p *Product) Start(u int) State { return State{Node: u, State: p.A.Start} }

// Accepting reports whether s is accepting, i.e. its automaton component is
// in F.
func (p *Product) Accepting(s State) bool { return p.A.Accept[s.State] }

// Step is one product edge: the graph edge taken and the resulting state.
type Step struct {
	Edge int
	To   State
}

// Succ returns the outgoing product edges of s.
func (p *Product) Succ(s State) []Step {
	var out []Step
	for _, ei := range p.G.Out(s.Node) {
		lab := p.G.Edge(ei).Label
		for _, t := range p.A.Trans[s.State] {
			if t.Guard.Matches(lab) {
				out = append(out, Step{Edge: ei, To: State{Node: p.G.Edge(ei).Tgt, State: t.To}})
			}
		}
	}
	return out
}

// bfs runs breadth-first search over the product from (src, q₀) and returns
// dist (−1 for unreached) and parent pointers (product id and graph edge)
// for witness reconstruction.
func (p *Product) bfs(src int) (dist []int, parent []int, parentEdge []int) {
	n := p.NumStates()
	dist = make([]int, n)
	parent = make([]int, n)
	parentEdge = make([]int, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	start := p.id(p.Start(src))
	dist[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		s := p.unid(cur)
		for _, st := range p.Succ(s) {
			ni := p.id(st.To)
			if dist[ni] == -1 {
				dist[ni] = dist[cur] + 1
				parent[ni] = cur
				parentEdge[ni] = st.Edge
				queue = append(queue, ni)
			}
		}
	}
	return dist, parent, parentEdge
}
