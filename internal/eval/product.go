package eval

import (
	"sync"

	"graphquery/internal/automata"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
)

// Product is the product graph G× of an edge-labeled graph G and an NFA N_R
// (Section 6.2): nodes are pairs (u, q) ∈ N × Q, and each pair of a graph
// edge e and an automaton transition (q₁, a, q₂) with λ(e) = a yields the
// product edge ((src(e), q₁) → (tgt(e), q₂)).
//
// Product is a veneer over the unified product-graph runtime: construction
// compiles the NFA into a pg.Machine (guards resolved against the graph's
// interned label numbering) and all traversal — the reachability fixpoint,
// witness BFS, Succ expansion — runs on the shared pg.Kernel. The reversed
// kernel for backward plans is built lazily on first use. A Product is
// immutable after construction (the lazy field is a sync.Once) and safe
// for concurrent use.
type Product struct {
	G *graph.Graph
	A *automata.NFA

	kern     *pg.Kernel
	counters *pg.Counters

	backOnce sync.Once
	back     *pg.Kernel
}

// State is a product-graph node (u, q).
type State = pg.State

// Step is one product edge: the graph edge taken and the resulting state.
type Step = pg.Step

// Scratch holds the reusable buffers of repeated single-source
// reachability runs over one product; one scratch serves one goroutine.
type Scratch = pg.Scratch

// NewProduct pairs a graph with a compiled automaton, resolving every
// transition guard against the graph's label index.
func NewProduct(g *graph.Graph, a *automata.NFA) *Product {
	return NewProductInstrumented(g, a, nil)
}

// NewProductInstrumented is NewProduct with a runtime-counters sink (may
// be nil): engines attach their counters here so every sweep over the
// product is accounted in /v1/statz.
func NewProductInstrumented(g *graph.Graph, a *automata.NFA, c *pg.Counters) *Product {
	return &Product{G: g, A: a, counters: c, kern: pg.NewKernel(g, pg.FromNFA(g, a), c)}
}

// CompileProduct pairs a graph with the Glushkov automaton of an RPQ.
func CompileProduct(g *graph.Graph, e rpq.Expr) *Product {
	return NewProduct(g, rpq.Compile(e))
}

// Kernel exposes the forward runtime kernel of the product.
func (p *Product) Kernel() *pg.Kernel { return p.kern }

// backward returns the reversed kernel (target→source sweeps), building it
// on first use.
func (p *Product) backward() *pg.Kernel {
	p.backOnce.Do(func() {
		p.back = pg.NewKernel(p.G, pg.FromNFABackward(p.G, p.A), p.counters)
	})
	return p.back
}

// NumStates returns |N|·|Q|, the worst-case product size.
func (p *Product) NumStates() int { return p.kern.NumProductStates() }

// id packs a State into a dense integer.
func (p *Product) id(s State) int { return p.kern.ID(s) }

// unid unpacks a dense integer into a State.
func (p *Product) unid(i int) State { return p.kern.Unid(i) }

// Start returns the initial product state (u, q₀) for source node u.
func (p *Product) Start(u int) State { return State{Node: u, State: p.A.Start} }

// Accepting reports whether s is accepting, i.e. its automaton component is
// in F.
func (p *Product) Accepting(s State) bool { return p.A.Accept[s.State] }

// Succ returns the outgoing product edges of s, in ascending (graph edge,
// transition) order — the deterministic order enumeration, PMR, and
// k-shortest tie-breaking rely on.
func (p *Product) Succ(s State) []Step { return p.kern.Succ(s) }

// NewScratch allocates buffers sized for p.
func (p *Product) NewScratch() *Scratch { return p.kern.NewScratch() }

// GetScratch returns a pooled scratch for p's forward kernel.
func (p *Product) GetScratch() *Scratch { return p.kern.GetScratch() }

// PutScratch returns a scratch obtained from GetScratch to the pool.
func (p *Product) PutScratch(sc *Scratch) { p.kern.PutScratch(sc) }

// reachableInto computes all graph nodes v such that some accepting product
// state (v, q) is reachable from (src, q₀), sorted ascending. The returned
// slice aliases sc.nodes and is valid until the next call with the same
// scratch.
func (p *Product) reachableInto(src int, sc *Scratch) []int {
	nodes, _ := p.kern.Reachable(src, sc, nil)
	return nodes
}

// bfs runs breadth-first search over the product from (src, q₀) and returns
// dist (−1 for unreached) and parent pointers (product id and graph edge)
// for witness reconstruction.
func (p *Product) bfs(src int) (dist []int, parent []int, parentEdge []int) {
	return p.kern.BFS(src)
}
