package eval

import (
	"reflect"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/rpq"
)

// parallelCases are the RPQs cross-checked between the sequential and
// parallel Pairs paths: plain labels, stars, unions, a wildcard, a negated
// label set, and an expression matching nothing (empty result).
var parallelCases = []string{
	"a",
	"a*",
	"a b",
	"(a | b)*",
	"_*",
	"_ _",
	"!{a} b*",
	"nolabel",    // empty result: label absent from the graph
	"nolabel c*", // empty result through concatenation
}

// sortedPairs checks the output invariant that replaced the final
// sort.Slice in Pairs: results arrive lexicographically sorted because
// ascending source chunks are merged in order.
func sortedPairs(t *testing.T, prs [][2]int) {
	t.Helper()
	for i := 1; i < len(prs); i++ {
		if prs[i-1][0] > prs[i][0] ||
			(prs[i-1][0] == prs[i][0] && prs[i-1][1] >= prs[i][1]) {
			t.Fatalf("pairs not strictly lex-sorted at %d: %v, %v", i, prs[i-1], prs[i])
		}
	}
}

func TestParallelPairsMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random":    gen.Random(60, 400, []string{"a", "b", "c"}, 1),
		"random2":   gen.Random(40, 600, []string{"a", "b"}, 2), // dense, self-loops likely
		"selfloops": selfLoopGraph(t),
	}
	for name, g := range graphs {
		for _, q := range parallelCases {
			expr, err := rpq.Parse(q)
			if err != nil {
				t.Fatalf("%s: parse %q: %v", name, q, err)
			}
			seq := PairsOpt(g, expr, Options{Parallelism: 1})
			for _, par := range []int{0, 2, 4, 7} {
				got := PairsOpt(g, expr, Options{Parallelism: par})
				if !reflect.DeepEqual(got, seq) {
					t.Fatalf("%s: %q: parallelism %d diverged: %d pairs vs %d sequential",
						name, q, par, len(got), len(seq))
				}
			}
			sortedPairs(t, seq)
		}
	}
}

// selfLoopGraph has self-loops under every label plus a normal chain, the
// edge case where a source reaches itself in zero and in one step.
func selfLoopGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for _, n := range []string{"u", "v", "w"} {
		b.AddNode(graph.NodeID(n), "", nil)
	}
	b.AddEdge("l1", "a", "u", "u", nil)
	b.AddEdge("l2", "b", "v", "v", nil)
	b.AddEdge("e1", "a", "u", "v", nil)
	b.AddEdge("e2", "b", "v", "w", nil)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPairsMatchesLegacySemantics(t *testing.T) {
	// Pairs (the convenience wrapper) must agree with an explicitly
	// sequential run and with the per-source ReachableFrom contract.
	g := gen.Random(30, 150, []string{"x", "y"}, 5)
	expr, err := rpq.Parse("x y*")
	if err != nil {
		t.Fatal(err)
	}
	want := PairsOpt(g, expr, Options{Parallelism: 1})
	if got := Pairs(g, expr); !reflect.DeepEqual(got, want) {
		t.Fatalf("Pairs = %v, want %v", got, want)
	}
	var fromReach [][2]int
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range ReachableFrom(g, expr, u) {
			fromReach = append(fromReach, [2]int{u, v})
		}
	}
	if !reflect.DeepEqual(fromReach, want) {
		t.Fatalf("per-source ReachableFrom disagrees with Pairs")
	}
}
