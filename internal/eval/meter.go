package eval

import (
	"context"

	"graphquery/internal/obs"
	"graphquery/internal/pg"
)

// The cancellation/budget instrument lives in internal/pg — the unified
// product-graph runtime owns the budget-check loop for every evaluator.
// These aliases preserve eval's historical public API (and its error
// values), so serving layers and tests written against eval.Meter keep
// working unchanged.
type (
	// Meter is the live cancellation/budget instrument of one query; see
	// pg.Meter.
	Meter = pg.Meter
	// Budget caps the resources one query evaluation may consume; see
	// pg.Budget.
	Budget = pg.Budget
	// BudgetError reports which resource budget a query exhausted; see
	// pg.BudgetError.
	BudgetError = pg.BudgetError
	// SweepStats is the analyze-mode telemetry sink a meter can carry; see
	// pg.SweepStats.
	SweepStats = pg.SweepStats
	// SweepStatsSnapshot is the JSON rendering of a SweepStats sink; see
	// pg.SweepStatsSnapshot.
	SweepStatsSnapshot = pg.SweepStatsSnapshot
)

var (
	// ErrCanceled is returned when evaluation stops because its context was
	// canceled or its deadline expired.
	ErrCanceled = pg.ErrCanceled
	// ErrBudgetExceeded is returned when evaluation exceeds a resource
	// budget.
	ErrBudgetExceeded = pg.ErrBudgetExceeded
)

// MeterCheckInterval is how many product states an evaluator may expand
// between cooperative checks; see pg.CheckInterval.
const MeterCheckInterval = pg.CheckInterval

// NewMeter builds the meter for ctx and b; see pg.NewMeter.
func NewMeter(ctx context.Context, b Budget) *Meter { return pg.NewMeter(ctx, b) }

// NewMeterProgress is NewMeter with a live-progress sink; see
// pg.NewMeterProgress.
func NewMeterProgress(ctx context.Context, b Budget, p *obs.Progress) *Meter {
	return pg.NewMeterProgress(ctx, b, p)
}

// NewMeterAnalyze is NewMeterProgress with an analyze-mode telemetry sink;
// see pg.NewMeterAnalyze.
func NewMeterAnalyze(ctx context.Context, b Budget, p *obs.Progress, ss *SweepStats) *Meter {
	return pg.NewMeterAnalyze(ctx, b, p, ss)
}
