package cardest

import (
	"math"
	"sort"
	"sync"
)

// Feedback tuning constants.
const (
	// feedbackDecay is the EWMA weight kept by the previous aggregate when
	// a new observation arrives: per-expression q-errors (and the global
	// mean) are decayed averages, so a query whose estimate was fixed by
	// fresher statistics stops looking broken after a handful of runs.
	feedbackDecay = 0.8
	// feedbackMaxExprs bounds the per-expression table; when full, the
	// entry with the lowest decayed q-error is evicted (the best-estimated
	// expression is the least interesting one to keep auditing).
	feedbackMaxExprs = 512
	// feedbackWorst is how many worst-estimated expressions a snapshot
	// carries.
	feedbackWorst = 8
)

// Feedback is the estimate-vs-actual record store of one graph: every
// analyze-mode query deposits its planner estimate next to the measured
// actual, and decayed aggregates accumulate per expression and globally.
// It is the calibration input the planner-v2 work consumes (ROADMAP item
// 3: "cardest estimates calibrated against the runtime stats the kernel
// already collects — a feedback loop") and is snapshotted into /v1/statz
// and /metrics. Safe for concurrent use; it survives graph revisions, so
// the decay — not a reset — is what ages out observations made against
// superseded statistics.
type Feedback struct {
	mu      sync.Mutex
	entries map[string]*feedbackEntry
	records int64
	meanLog float64 // decayed mean of log2(q-error): geometric-mean aggregate
	maxQ    float64
}

type feedbackEntry struct {
	records  int64
	estimate float64 // most recent estimate
	actual   int64   // most recent actual
	qerr     float64 // decayed q-error
	maxQ     float64
}

// NewFeedback returns an empty store.
func NewFeedback() *Feedback {
	return &Feedback{entries: map[string]*feedbackEntry{}}
}

// Record deposits one observation: expr is the normalized expression text
// the estimate was computed for, estimate the planner's predicted answer
// count, actual the measured one.
func (f *Feedback) Record(expr string, estimate float64, actual int64) {
	if f == nil {
		return
	}
	q := QError(int(actual), estimate)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.records++
	if f.records == 1 {
		f.meanLog = math.Log2(q)
	} else {
		f.meanLog = feedbackDecay*f.meanLog + (1-feedbackDecay)*math.Log2(q)
	}
	if q > f.maxQ {
		f.maxQ = q
	}
	e := f.entries[expr]
	if e == nil {
		if len(f.entries) >= feedbackMaxExprs {
			f.evictBest()
		}
		e = &feedbackEntry{qerr: q}
		f.entries[expr] = e
	} else {
		e.qerr = feedbackDecay*e.qerr + (1-feedbackDecay)*q
	}
	e.records++
	e.estimate = estimate
	e.actual = actual
	if q > e.maxQ {
		e.maxQ = q
	}
}

// evictBest drops the entry with the lowest decayed q-error (ties broken
// by expression text, so eviction is deterministic). Callers hold mu.
func (f *Feedback) evictBest() {
	best, bestQ := "", math.Inf(1)
	for expr, e := range f.entries {
		if e.qerr < bestQ || (e.qerr == bestQ && expr < best) {
			best, bestQ = expr, e.qerr
		}
	}
	delete(f.entries, best)
}

// FeedbackEntry is one expression's row in a FeedbackSnapshot.
type FeedbackEntry struct {
	Expr     string  `json:"expr"`
	Records  int64   `json:"records"`
	Estimate float64 `json:"estimate"` // most recent
	Actual   int64   `json:"actual"`   // most recent
	QError   float64 `json:"q_error"`  // decayed
	MaxQ     float64 `json:"max_q_error"`
}

// FeedbackSnapshot is the JSON face of a Feedback store: the /v1/statz
// payload and the source of the gq_cardest_feedback_* metric gauges.
type FeedbackSnapshot struct {
	// Records counts observations deposited; Exprs distinct expressions
	// currently tracked.
	Records int64 `json:"records"`
	Exprs   int   `json:"exprs"`
	// MeanQError is the decayed geometric mean q-error across
	// observations; MaxQError the largest ever seen.
	MeanQError float64 `json:"mean_q_error"`
	MaxQError  float64 `json:"max_q_error"`
	// Worst lists the worst-estimated expressions by decayed q-error,
	// descending (ties broken by expression text).
	Worst []FeedbackEntry `json:"worst,omitempty"`
}

// Snapshot renders the store. A nil receiver yields the zero snapshot.
func (f *Feedback) Snapshot() FeedbackSnapshot {
	if f == nil {
		return FeedbackSnapshot{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	snap := FeedbackSnapshot{
		Records:   f.records,
		Exprs:     len(f.entries),
		MaxQError: f.maxQ,
	}
	if f.records > 0 {
		snap.MeanQError = math.Exp2(f.meanLog)
	}
	for expr, e := range f.entries {
		snap.Worst = append(snap.Worst, FeedbackEntry{
			Expr:     expr,
			Records:  e.records,
			Estimate: e.estimate,
			Actual:   e.actual,
			QError:   e.qerr,
			MaxQ:     e.maxQ,
		})
	}
	sort.Slice(snap.Worst, func(i, j int) bool {
		if snap.Worst[i].QError != snap.Worst[j].QError {
			return snap.Worst[i].QError > snap.Worst[j].QError
		}
		return snap.Worst[i].Expr < snap.Worst[j].Expr
	})
	if len(snap.Worst) > feedbackWorst {
		snap.Worst = snap.Worst[:feedbackWorst]
	}
	return snap
}
