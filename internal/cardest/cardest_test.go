package cardest

import (
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/rpq"
)

func TestCollect(t *testing.T) {
	g := gen.BankEdgeLabeled()
	s := Collect(g)
	if s.Nodes != g.NumNodes() {
		t.Errorf("Nodes = %d", s.Nodes)
	}
	if s.EdgeCount["Transfer"] != 10 {
		t.Errorf("Transfer count = %d, want 10", s.EdgeCount["Transfer"])
	}
	if s.EdgeCount["owner"] != 6 || s.EdgeCount["isBlocked"] != 6 {
		t.Error("owner/isBlocked counts wrong")
	}
	if s.TotalEdges != 22 {
		t.Errorf("TotalEdges = %d", s.TotalEdges)
	}
	if s.DistinctSrc["Transfer"] != 6 { // every account sends at least once? a2 sends t3: yes, all six send
		t.Errorf("DistinctSrc[Transfer] = %d, want 6", s.DistinctSrc["Transfer"])
	}
}

func TestEstimateExactCases(t *testing.T) {
	// Single label on a graph with no fan-out variance: estimate is exact.
	g := gen.APath(9, "a")
	s := Collect(g)
	est := s.Estimate(rpq.MustParse("a"), 0)
	if est != 9 {
		t.Errorf("estimate(a) = %v, want 9", est)
	}
	// ε: every node pairs with itself.
	est = s.Estimate(rpq.MustParse("()"), 0)
	if est != 10 {
		t.Errorf("estimate(ε) = %v, want 10", est)
	}
	// Empty graph.
	empty := graph.NewBuilder().MustBuild()
	if got := Collect(empty).Estimate(rpq.MustParse("a"), 0); got != 0 {
		t.Errorf("estimate on empty graph = %v", got)
	}
}

func TestEstimateCap(t *testing.T) {
	// On a clique, a* saturates at n² answer pairs.
	g := gen.Clique(5, "a")
	s := Collect(g)
	est := s.Estimate(rpq.MustParse("a*"), 0)
	if est > 25 {
		t.Errorf("estimate exceeds the n² cap: %v", est)
	}
	if est < 20 {
		t.Errorf("estimate far below saturation: %v", est)
	}
}

func TestQError(t *testing.T) {
	if q := QError(10, 10); q != 1 {
		t.Errorf("perfect estimate q-error = %v", q)
	}
	if q := QError(10, 100); q < 9 {
		t.Errorf("10× over: q = %v", q)
	}
	if QError(0, 0) != 1 {
		t.Error("smoothed zero case should be 1")
	}
	if QError(100, 1) != QError(1, 100) {
		t.Error("q-error should be symmetric")
	}
}

func TestCompareReasonableOnRandomGraphs(t *testing.T) {
	queries := []string{"a", "b", "a b", "a | b", "a a", "a{2,3}"}
	for trial := 0; trial < 5; trial++ {
		g := gen.Random(60, 240, []string{"a", "b"}, int64(trial)*29+1)
		rows, err := Compare(g, queries)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			// Uniform random graphs are the estimator's best case: the
			// independence assumptions roughly hold. Allow generous slack.
			if r.QError > 8 {
				t.Errorf("trial %d %q: q-error %.2f (actual %d, est %.1f)",
					trial, r.Query, r.QError, r.Actual, r.Estimate)
			}
		}
	}
}

func TestCompareParseError(t *testing.T) {
	g := gen.APath(2, "a")
	if _, err := Compare(g, []string{"((("}); err == nil {
		t.Error("bad query should fail")
	}
}

func TestGuardEdges(t *testing.T) {
	g := gen.BankEdgeLabeled()
	s := Collect(g)
	nfa := rpq.Compile(rpq.MustParse("!{Transfer}"))
	var total float64
	for _, trs := range nfa.Trans {
		for _, tr := range trs {
			total = s.guardEdges(tr.Guard)
		}
	}
	if total != 12 { // 22 edges − 10 Transfer
		t.Errorf("guardEdges(!{Transfer}) = %v, want 12", total)
	}
}
