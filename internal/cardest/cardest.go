// Package cardest implements a cardinality estimator for RPQs — one of the
// open directions Section 7.1 of the paper calls out ("how to develop
// cardinality estimation approaches for (C)RPQs"). It follows the classical
// system-R-style independence assumptions lifted to the automaton view:
//
//   - per-label statistics are collected from the graph (edge counts and
//     distinct source/target counts);
//   - an RPQ is compiled to its Glushkov automaton, and expected numbers of
//     matching walks are propagated through automaton states as expected
//     per-node frontier sizes, with labels treated independently;
//   - Kleene cycles are unrolled to a fixed horizon with geometric damping,
//     and results are capped at |N|² (the answer is a set of pairs).
//
// The estimator ships with an evaluation harness (Compare) reporting the
// q-error against exact counts, which is what experiment E27 prints.
package cardest

import (
	"math"

	"graphquery/internal/automata"
	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/rpq"
)

// Stats holds per-label graph statistics.
type Stats struct {
	Nodes int
	// EdgeCount maps label → number of edges.
	EdgeCount map[string]int
	// DistinctSrc and DistinctTgt map label → distinct endpoint counts.
	DistinctSrc map[string]int
	DistinctTgt map[string]int
	// TotalEdges is Σ EdgeCount.
	TotalEdges int
}

// Collect scans the graph once and builds the statistics.
func Collect(g *graph.Graph) *Stats {
	s := &Stats{
		Nodes:       g.NumLiveNodes(),
		EdgeCount:   map[string]int{},
		DistinctSrc: map[string]int{},
		DistinctTgt: map[string]int{},
	}
	srcs := map[string]map[int]struct{}{}
	tgts := map[string]map[int]struct{}{}
	for i := 0; i < g.NumEdges(); i++ {
		if !g.EdgeAlive(i) { // tombstoned under a mutation overlay
			continue
		}
		e := g.Edge(i)
		s.EdgeCount[e.Label]++
		s.TotalEdges++
		if srcs[e.Label] == nil {
			srcs[e.Label] = map[int]struct{}{}
			tgts[e.Label] = map[int]struct{}{}
		}
		srcs[e.Label][e.Src] = struct{}{}
		tgts[e.Label][e.Tgt] = struct{}{}
	}
	for l, set := range srcs {
		s.DistinctSrc[l] = len(set)
		s.DistinctTgt[l] = len(tgts[l])
	}
	return s
}

// guardEdges estimates the number of edges matching a symbolic guard.
func (s *Stats) guardEdges(gd automata.Guard) float64 {
	if !gd.Negated {
		n := 0
		for _, l := range gd.Labels {
			n += s.EdgeCount[l]
		}
		return float64(n)
	}
	n := s.TotalEdges
	for _, l := range gd.Labels {
		n -= s.EdgeCount[l]
	}
	if n < 0 {
		n = 0
	}
	return float64(n)
}

// Estimate predicts |⟦R⟧_G| — the number of answer pairs — from the
// statistics alone. horizon bounds the Kleene unrolling (values around the
// graph diameter work well; 0 picks a default).
func (s *Stats) Estimate(e rpq.Expr, horizon int) float64 {
	if s.Nodes == 0 {
		return 0
	}
	if horizon <= 0 {
		horizon = defaultHorizon(s.Nodes)
	}
	a := rpq.Compile(rpq.Simplify(e))

	n := float64(s.Nodes)
	// frontier[q] = expected number of (start, current) pairs in state q,
	// starting from every node. Initially every node sits in the start
	// state: n pairs of the form (u, u).
	frontier := make([]float64, a.NumStates)
	frontier[a.Start] = n

	// answers accumulates expected distinct pairs seen in accepting states;
	// we apply a union cap at the end rather than summing blindly.
	answers := 0.0
	if a.Accept[a.Start] {
		answers = n // the ε-pairs (u, u)
	}

	for step := 0; step < horizon; step++ {
		next := make([]float64, a.NumStates)
		moved := false
		for q, mass := range frontier {
			if mass <= 0 {
				continue
			}
			for _, tr := range a.Trans[q] {
				// Expected fan-out of one step over this guard: matching
				// edges per node.
				fanout := s.guardEdges(tr.Guard) / n
				contribution := mass * fanout
				if contribution > 0 {
					next[tr.To] += contribution
					moved = true
				}
			}
		}
		if !moved {
			break
		}
		// Distinct-pair saturation: a state cannot hold more than n² pairs.
		cap2 := n * n
		for q := range next {
			if next[q] > cap2 {
				next[q] = cap2
			}
		}
		for q, mass := range next {
			if a.Accept[q] {
				answers += mass
			}
		}
		frontier = next
	}
	if answers > float64(s.Nodes*s.Nodes) {
		answers = float64(s.Nodes * s.Nodes)
	}
	return answers
}

func defaultHorizon(nodes int) int {
	h := int(math.Ceil(2 * math.Log2(float64(nodes)+1)))
	if h < 4 {
		h = 4
	}
	return h
}

// Comparison is one estimator-evaluation row.
type Comparison struct {
	Query    string
	Actual   int
	Estimate float64
	QError   float64
}

// QError returns max(est/act, act/est), the standard estimation-quality
// measure; zero cases are smoothed with +1.
func QError(actual int, estimate float64) float64 {
	a := float64(actual) + 1
	e := estimate + 1
	if e > a {
		return e / a
	}
	return a / e
}

// Compare runs the estimator against exact evaluation for each query.
func Compare(g *graph.Graph, queries []string) ([]Comparison, error) {
	stats := Collect(g)
	out := make([]Comparison, 0, len(queries))
	for _, q := range queries {
		e, err := rpq.Parse(q)
		if err != nil {
			return nil, err
		}
		actual := len(eval.Pairs(g, e))
		est := stats.Estimate(e, 0)
		out = append(out, Comparison{
			Query:    q,
			Actual:   actual,
			Estimate: est,
			QError:   QError(actual, est),
		})
	}
	return out, nil
}
