package cardest

import (
	"fmt"
	"testing"
)

// TestFeedbackRecord: aggregates accumulate, the worst list ranks by
// decayed q-error descending, and the decay ages out a bad early estimate.
func TestFeedbackRecord(t *testing.T) {
	f := NewFeedback()
	f.Record("good", 100, 100) // q = 101/101 = 1
	f.Record("bad", 1000, 10)  // q ≈ 91
	snap := f.Snapshot()
	if snap.Records != 2 || snap.Exprs != 2 {
		t.Fatalf("want 2 records / 2 exprs, got %+v", snap)
	}
	if snap.MaxQError < 90 {
		t.Fatalf("max q-error lost the bad estimate: %+v", snap)
	}
	if snap.MeanQError <= 1 || snap.MeanQError >= snap.MaxQError {
		t.Fatalf("mean q-error should sit between best and worst: %+v", snap)
	}
	if snap.Worst[0].Expr != "bad" || snap.Worst[1].Expr != "good" {
		t.Fatalf("worst list not ranked by q-error: %+v", snap.Worst)
	}

	// Repeated accurate observations decay the bad expression's q-error.
	before := snap.Worst[0].QError
	for i := 0; i < 20; i++ {
		f.Record("bad", 10, 10)
	}
	after := f.Snapshot().Worst[0]
	if after.Expr == "bad" && after.QError >= before {
		t.Fatalf("decay did not age out the bad estimate: %g -> %g", before, after.QError)
	}
}

// TestFeedbackNil: a nil store records and snapshots as a no-op.
func TestFeedbackNil(t *testing.T) {
	var f *Feedback
	f.Record("x", 1, 1)
	if snap := f.Snapshot(); snap.Records != 0 {
		t.Fatalf("nil store produced records: %+v", snap)
	}
}

// TestFeedbackEviction: the table is bounded; when full, the
// best-estimated expression is evicted and the worst are retained.
func TestFeedbackEviction(t *testing.T) {
	f := NewFeedback()
	f.Record("terrible", 100000, 1)
	for i := 0; i < feedbackMaxExprs+10; i++ {
		f.Record(fmt.Sprintf("q%04d", i), 50, 50) // q = 1: always the eviction pick
	}
	snap := f.Snapshot()
	if snap.Exprs != feedbackMaxExprs {
		t.Fatalf("table not bounded: %d exprs", snap.Exprs)
	}
	if snap.Worst[0].Expr != "terrible" {
		t.Fatalf("eviction dropped the worst-estimated expression: %+v", snap.Worst[0])
	}
	if snap.Records != int64(feedbackMaxExprs)+11 {
		t.Fatalf("records should count every observation: %+v", snap.Records)
	}
}

// TestFeedbackWorstBound: the snapshot's worst list is capped.
func TestFeedbackWorstBound(t *testing.T) {
	f := NewFeedback()
	for i := 0; i < feedbackWorst*3; i++ {
		f.Record(fmt.Sprintf("q%d", i), float64(1000*(i+1)), 1)
	}
	snap := f.Snapshot()
	if len(snap.Worst) != feedbackWorst {
		t.Fatalf("worst list not capped: %d entries", len(snap.Worst))
	}
	for i := 1; i < len(snap.Worst); i++ {
		if snap.Worst[i].QError > snap.Worst[i-1].QError {
			t.Fatalf("worst list not descending at %d: %+v", i, snap.Worst)
		}
	}
}
