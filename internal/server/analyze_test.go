package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestQueryAnalyze: "analyze": true on POST /v1/query returns the annotated
// plan tree; without it the response has no "analyze" key at all (the
// analyze-off wire shape is unchanged).
func TestQueryAnalyze(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "clique-64")

	status, m := post(t, ts, `{"graph":"clique-64","query":"a a*"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, m)
	}
	if _, ok := m["analyze"]; ok {
		t.Fatalf("analyze-off response carries an analyze field: %v", m["analyze"])
	}

	status, m = post(t, ts, `{"graph":"clique-64","query":"a a*","analyze":true}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, m)
	}
	ap, ok := m["analyze"].(map[string]any)
	if !ok {
		t.Fatalf("no analyze object in response: %v", m)
	}
	plan, ok := ap["plan"].(map[string]any)
	if !ok {
		t.Fatalf("analyze object has no plan tree: %v", ap)
	}
	if plan["name"] != "pairs" || plan["detail"] == "" {
		t.Fatalf("root node malformed: %v", plan)
	}
	if q, _ := plan["q_error"].(float64); q < 1 {
		t.Fatalf("root q-error missing: %v", plan)
	}
	sweep, ok := ap["sweep"].(map[string]any)
	if !ok || sweep["states"].(float64) <= 0 {
		t.Fatalf("sweep telemetry missing: %v", ap)
	}
}

// TestAnalyzeMetricsAndStatz: analyze-mode queries feed gq_cardest_qerror,
// the mispick families, and the per-graph feedback store surfaced in both
// /metrics and /v1/statz; /metrics also exports the Go runtime health
// gauges.
func TestAnalyzeMetricsAndStatz(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "clique-64")
	if status, m := post(t, ts, `{"graph":"clique-64","query":"a a*","analyze":true}`); status != http.StatusOK {
		t.Fatalf("status %d: %v", status, m)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	metrics := string(raw)
	for _, want := range []string{
		"gq_cardest_qerror_count 1",
		`gq_plan_mispick_total{graph="clique-64",knob="direction"}`,
		`gq_plan_mispick_total{graph="clique-64",knob="scan"}`,
		`gq_plan_mispick_total{graph="clique-64",knob="frontier"}`,
		`gq_plan_mispick_total{graph="clique-64",knob="shards"}`,
		`gq_cardest_feedback_records_total{graph="clique-64"} 1`,
		`gq_cardest_feedback_exprs{graph="clique-64"} 1`,
		`gq_cardest_feedback_mean_qerror{graph="clique-64"}`,
		"gq_go_goroutines",
		"gq_go_heap_alloc_bytes",
		"gq_go_gc_pause_seconds_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	sresp, err := http.Get(ts.URL + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var statz struct {
		Graphs map[string]struct {
			Feedback struct {
				Records    int64   `json:"records"`
				MeanQError float64 `json:"mean_q_error"`
				Worst      []struct {
					Expr string `json:"expr"`
				} `json:"worst"`
			} `json:"feedback"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	fb := statz.Graphs["clique-64"].Feedback
	if fb.Records != 1 || fb.MeanQError < 1 || len(fb.Worst) != 1 || fb.Worst[0].Expr != "a a*" {
		t.Fatalf("statz feedback snapshot wrong: %+v", fb)
	}
}

// TestAnalyzeInQueryLog: analyze-mode queries carry their annotated plan in
// the query event log record (and therefore the slow-query WARN, which
// renders the same record).
func TestAnalyzeInQueryLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{QueryLog: &buf, SlowQuery: time.Nanosecond}, "clique-64")
	if status, m := post(t, ts, `{"graph":"clique-64","query":"a a*","analyze":true}`); status != http.StatusOK {
		t.Fatalf("status %d: %v", status, m)
	}
	if status, m := post(t, ts, `{"graph":"clique-64","query":"a a*"}`); status != http.StatusOK {
		t.Fatalf("status %d: %v", status, m)
	}
	lines := bytes.Split(bytes.TrimSpace([]byte(buf.String())), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("want 2 query-log records, got %d", len(lines))
	}
	var withAnalyze, without map[string]any
	if err := json.Unmarshal(lines[0], &withAnalyze); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(lines[1], &without); err != nil {
		t.Fatal(err)
	}
	if _, ok := withAnalyze["analyze"]; !ok {
		t.Fatalf("analyze-mode record has no analyze field: %s", lines[0])
	}
	if _, ok := without["analyze"]; ok {
		t.Fatalf("analyze-off record has an analyze field: %s", lines[1])
	}
}
