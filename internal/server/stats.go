package server

import (
	"sync/atomic"

	"graphquery/internal/cardest"
	"graphquery/internal/core"
	"graphquery/internal/pg"
	"graphquery/internal/store"
)

// counters is the server's hot-path instrumentation: every field is an
// independent atomic so request handling never takes a lock to account
// itself, and Stats() assembles a (possibly slightly torn, individually
// exact) snapshot.
type counters struct {
	accepted       atomic.Int64 // admitted past the limiter
	completed      atomic.Int64 // finished with a 200
	canceled       atomic.Int64 // client went away (499)
	killed         atomic.Int64 // killed via POST /v1/queries/{id}/cancel
	timeouts       atomic.Int64 // deadline exceeded (504)
	budgetExceeded atomic.Int64 // resource budget hit (422)
	rejected       atomic.Int64 // admission control said no (429)
	errors         atomic.Int64 // invalid/unknown/internal (4xx/5xx rest)
	inFlight       atomic.Int64 // currently evaluating

	statesVisited atomic.Int64 // product states expanded, summed over queries
	rowsReturned  atomic.Int64 // results returned, summed over queries
	rowsStreamed  atomic.Int64 // rows handed to streamed (NDJSON) responses
	writeErrors   atomic.Int64 // response encode/write failures (buffered + streamed)

	// kinds counts completed (200) queries by response kind, indexed like
	// kindNames — the /v1/statz "kinds" object and the gq_queries_total
	// metric family.
	kinds [len(kindNames)]atomic.Int64
}

// kindNames are the response kinds the engine produces, the label values of
// gq_queries_total{kind=...}.
var kindNames = [...]string{"pairs", "paths", "rows", "matches", "spans", "relation", "bag"}

// countKind accounts one completed query under its response kind.
func (c *counters) countKind(kind string) {
	for i, n := range kindNames {
		if n == kind {
			c.kinds[i].Add(1)
			return
		}
	}
}

// ServerStats is the /v1/statz snapshot.
type ServerStats struct {
	Accepted       int64 `json:"accepted"`
	Completed      int64 `json:"completed"`
	Canceled       int64 `json:"canceled"`
	Killed         int64 `json:"killed"`
	Timeouts       int64 `json:"timeouts"`
	BudgetExceeded int64 `json:"budget_exceeded"`
	Rejected       int64 `json:"rejected"`
	Errors         int64 `json:"errors"`
	InFlight       int64 `json:"in_flight"`
	Queued         int64 `json:"queued"`
	StatesVisited  int64 `json:"states_visited"`
	RowsReturned   int64 `json:"rows_returned"`
	RowsStreamed   int64 `json:"rows_streamed"`
	WriteErrors    int64 `json:"write_errors"`

	// Kinds counts completed queries by response kind ("pairs", "paths",
	// "rows", "matches", "spans", "relation", "bag").
	Kinds map[string]int64 `json:"kinds"`

	Graphs map[string]GraphStats `json:"graphs"`
	Store  store.Stats           `json:"store"`
}

// GraphStats describes one registered graph: its size, plan cache, and
// the unified runtime's kernel counters (work done and plans chosen,
// cumulative over the engine's lifetime).
type GraphStats struct {
	Nodes   int                 `json:"nodes"`
	Edges   int                 `json:"edges"`
	Cache   core.CacheStats     `json:"cache"`
	Runtime pg.CountersSnapshot `json:"runtime"`
	// Feedback is the engine's estimate-vs-actual cardinality store,
	// accumulated from analyze-mode queries (q-error aggregates plus the
	// worst-estimated expressions).
	Feedback cardest.FeedbackSnapshot `json:"feedback"`
}

// Stats snapshots the server's counters and per-graph plan-cache stats.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Accepted:       s.stats.accepted.Load(),
		Completed:      s.stats.completed.Load(),
		Canceled:       s.stats.canceled.Load(),
		Killed:         s.stats.killed.Load(),
		Timeouts:       s.stats.timeouts.Load(),
		BudgetExceeded: s.stats.budgetExceeded.Load(),
		Rejected:       s.stats.rejected.Load(),
		Errors:         s.stats.errors.Load(),
		InFlight:       s.stats.inFlight.Load(),
		Queued:         s.queued.Load(),
		StatesVisited:  s.stats.statesVisited.Load(),
		RowsReturned:   s.stats.rowsReturned.Load(),
		RowsStreamed:   s.stats.rowsStreamed.Load(),
		WriteErrors:    s.stats.writeErrors.Load(),
		Kinds:          make(map[string]int64, len(kindNames)),
		Graphs:         make(map[string]GraphStats),
	}
	for i, name := range kindNames {
		st.Kinds[name] = s.stats.kinds[i].Load()
	}
	s.mu.RLock()
	for name, e := range s.engines {
		g := e.Graph()
		st.Graphs[name] = GraphStats{
			Nodes:    g.NumNodes(),
			Edges:    g.NumEdges(),
			Cache:    e.CacheStats(),
			Runtime:  e.RuntimeStats(),
			Feedback: e.FeedbackStats(),
		}
	}
	s.mu.RUnlock()
	st.Store = s.store.Stats()
	return st
}
