package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphquery/internal/obs"
)

// postRaw is post with access to the response headers (X-Query-ID).
func postRaw(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("response %d is not JSON: %v\n%s", resp.StatusCode, err, raw)
		}
	}
	return resp, m
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestLiveQueryObservedAndKilled is the tentpole acceptance test: a slow
// query shows up in GET /v1/queries with live, growing progress; an
// operator kill via POST /v1/queries/{id}/cancel ends it with a 499
// "killed" envelope (no partial results), and the killed outcome lands in
// /v1/queries/recent, the statz counter, and gq_killed_total.
func TestLiveQueryObservedAndKilled(t *testing.T) {
	s, ts := newTestServer(t, Config{Parallelism: 1}, "clique-300")

	type result struct {
		resp *http.Response
		m    map[string]any
	}
	done := make(chan result, 1)
	go func() {
		resp, m := postRaw(t, ts, `{"graph":"clique-300","query":"a* a* a*","timeout_ms":30000}`)
		done <- result{resp, m}
	}()

	// Poll the live view until the query is visible with nonzero progress.
	var live struct {
		Queries []obs.LiveQuery `json:"queries"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts, "/v1/queries", &live)
		if len(live.Queries) == 1 && live.Queries[0].States > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never appeared in /v1/queries with progress: %+v", live)
		}
		time.Sleep(2 * time.Millisecond)
	}
	q := live.Queries[0]
	if q.ID == 0 || q.Graph != "clique-300" || q.Query != "a* a* a*" {
		t.Fatalf("live entry malformed: %+v", q)
	}
	if q.Stage == "" || q.ElapsedMS <= 0 {
		t.Errorf("live entry missing stage/elapsed: %+v", q)
	}

	// Progress is live: a later sample shows strictly more swept states.
	first := q.States
	for {
		getJSON(t, ts, "/v1/queries", &live)
		if len(live.Queries) == 1 && live.Queries[0].States > first {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("states never advanced past %d: %+v", first, live)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Kill it.
	resp, err := http.Post(fmt.Sprintf("%s/v1/queries/%d/cancel", ts.URL, q.ID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var kill map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&kill); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || kill["killed"] != true {
		t.Fatalf("cancel: status %d, body %v", resp.StatusCode, kill)
	}

	// The query's own reply: 499, code "killed", no partial results, and the
	// X-Query-ID header names the killed query.
	var r result
	select {
	case r = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("killed query never returned")
	}
	if r.resp.StatusCode != statusClientClosedRequest {
		t.Fatalf("killed query status = %d, want 499 (%v)", r.resp.StatusCode, r.m)
	}
	if code := errorCode(t, r.m); code != "killed" {
		t.Fatalf("killed query code = %q, want killed", code)
	}
	if _, ok := r.m["pairs"]; ok {
		t.Fatal("killed query returned partial results")
	}
	if got := r.resp.Header.Get("X-Query-ID"); got != strconv.FormatUint(q.ID, 10) {
		t.Errorf("X-Query-ID = %q, want %d", got, q.ID)
	}

	// It left the live view and entered the recent ring with outcome killed.
	getJSON(t, ts, "/v1/queries", &live)
	if len(live.Queries) != 0 {
		t.Errorf("killed query still live: %+v", live.Queries)
	}
	var recent struct {
		Queries []obs.CompletedQuery `json:"queries"`
	}
	getJSON(t, ts, "/v1/queries/recent", &recent)
	if len(recent.Queries) != 1 {
		t.Fatalf("recent ring has %d entries, want 1", len(recent.Queries))
	}
	rec := recent.Queries[0]
	if rec.ID != q.ID || rec.Outcome != "killed" || rec.Error == "" {
		t.Fatalf("recent entry: %+v, want id %d outcome killed", rec, q.ID)
	}
	if rec.States == 0 {
		t.Errorf("killed query's record lost its budget consumption: %+v", rec)
	}

	if st := s.Stats(); st.Killed != 1 || st.Canceled != 0 {
		t.Errorf("kill accounting: killed=%d canceled=%d, want 1/0", st.Killed, st.Canceled)
	}
	if m := scrapeMetrics(t, ts); m["gq_killed_total"] != 1 {
		t.Errorf("gq_killed_total = %v, want 1", m["gq_killed_total"])
	}
}

// TestCancelUnknownQuery: bad IDs are client errors, not crashes.
func TestCancelUnknownQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "bank")
	resp, err := http.Post(ts.URL+"/v1/queries/12345/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (%v)", resp.StatusCode, m)
	}
	if code := errorCode(t, m); code != "unknown_query" {
		t.Fatalf("code %q, want unknown_query", code)
	}

	resp, err = http.Post(ts.URL+"/v1/queries/banana/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestXQueryIDOnEveryAdmittedReply: success and error replies alike carry
// the registry ID, and IDs increase across queries. Requests rejected
// before admission (nothing to introspect) carry none.
func TestXQueryIDOnEveryAdmittedReply(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "bank")

	resp1, _ := postRaw(t, ts, `{"graph":"bank","query":"Transfer*"}`)
	id1, err := strconv.ParseUint(resp1.Header.Get("X-Query-ID"), 10, 64)
	if err != nil || id1 == 0 {
		t.Fatalf("success reply X-Query-ID = %q: %v", resp1.Header.Get("X-Query-ID"), err)
	}

	// A parse error happens after admission — the query was registered, so
	// its error reply is introspectable by ID too.
	resp2, m := postRaw(t, ts, `{"graph":"bank","query":"((("}`)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %v", resp2.StatusCode, m)
	}
	id2, err := strconv.ParseUint(resp2.Header.Get("X-Query-ID"), 10, 64)
	if err != nil || id2 <= id1 {
		t.Fatalf("error reply X-Query-ID = %q (prev %d): want a fresh larger ID",
			resp2.Header.Get("X-Query-ID"), id1)
	}

	// Pre-admission rejections (no query text) have no ID.
	resp3, _ := postRaw(t, ts, `{"graph":"bank"}`)
	if got := resp3.Header.Get("X-Query-ID"); got != "" {
		t.Errorf("unadmitted request got X-Query-ID %q", got)
	}

	// Both admitted queries are in the recent ring, newest first.
	var recent struct {
		Queries []obs.CompletedQuery `json:"queries"`
	}
	getJSON(t, ts, "/v1/queries/recent", &recent)
	if len(recent.Queries) != 2 || recent.Queries[0].ID != id2 || recent.Queries[1].ID != id1 {
		t.Fatalf("recent ring: %+v, want [%d %d]", recent.Queries, id2, id1)
	}
	if recent.Queries[0].Outcome != "invalid_query" || recent.Queries[1].Outcome != "ok" {
		t.Errorf("recent outcomes: %q/%q", recent.Queries[0].Outcome, recent.Queries[1].Outcome)
	}
}

// TestQueryLogOneRecordPerAdmittedQuery: the -query-log sink receives
// exactly one JSONL record per admitted query — every outcome class, never
// the unadmitted — with the full §10 schema.
func TestQueryLogOneRecordPerAdmittedQuery(t *testing.T) {
	var buf syncBuffer
	s, ts := newTestServer(t, Config{QueryLog: &buf}, "bank")

	post(t, ts, `{"graph":"bank","query":"Transfer*"}`)                // ok
	post(t, ts, `{"graph":"bank","query":"((("}`)                      // invalid_query
	post(t, ts, `{"graph":"bank","query":"Transfer*","max_states":1}`) // budget_exceeded
	post(t, ts, `{"graph":"nope","query":"a"}`)                        // unknown graph: not admitted
	post(t, ts, `{"graph":"bank"}`)                                    // no query: not admitted

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := int(s.Stats().Accepted); len(lines) != want || want != 3 {
		t.Fatalf("query log has %d records, accepted = %d, want 3:\n%s", len(lines), want, buf.String())
	}
	wantOutcomes := []string{"ok", "invalid_query", "budget_exceeded"}
	var lastID uint64
	for i, line := range lines {
		var rec obs.CompletedQuery
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d is not JSON: %v\n%s", i, err, line)
		}
		if rec.ID <= lastID {
			t.Errorf("record %d: ID %d not increasing (prev %d)", i, rec.ID, lastID)
		}
		lastID = rec.ID
		if rec.Graph != "bank" || rec.Query == "" || rec.Outcome != wantOutcomes[i] {
			t.Errorf("record %d: graph/query/outcome = %q/%q/%q, want outcome %q",
				i, rec.Graph, rec.Query, rec.Outcome, wantOutcomes[i])
		}
		if rec.StartedAt.IsZero() || rec.ElapsedMS < 0 {
			t.Errorf("record %d missing timing: %+v", i, rec)
		}
	}
	// The ok record carries plan, spans, and consumption; errored records
	// carry the error text.
	var ok0, bad1 obs.CompletedQuery
	json.Unmarshal([]byte(lines[0]), &ok0)
	json.Unmarshal([]byte(lines[1]), &bad1)
	if !strings.Contains(ok0.Plan, "dir=") || len(ok0.Spans) == 0 || ok0.States == 0 {
		t.Errorf("ok record incomplete: %+v", ok0)
	}
	if bad1.Error == "" {
		t.Errorf("errored record has no error text: %+v", bad1)
	}
}

// TestStageHistograms: per-stage latency histograms are populated and stay
// within the whole-query wall clock (stages are sections of it).
func TestStageHistograms(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "bank")
	post(t, ts, `{"graph":"bank","query":"Transfer*"}`)
	post(t, ts, `{"graph":"bank","query":"q(x,y) :- Transfer(x,y)"}`)

	m := scrapeMetrics(t, ts)
	if got := m[`gq_stage_duration_seconds_count{stage="kernel"}`]; got < 2 {
		t.Errorf("kernel stage count = %v, want >= 2", got)
	}
	if got := m[`gq_stage_duration_seconds_count{stage="enumerate"}`]; got < 1 {
		t.Errorf("enumerate stage count = %v, want >= 1", got)
	}
	var stageSum float64
	for _, stage := range stageNames {
		stageSum += m[fmt.Sprintf(`gq_stage_duration_seconds_sum{stage=%q}`, stage)]
	}
	if total := m["gq_query_duration_seconds_sum"]; stageSum > total {
		t.Errorf("stage sums %v exceed query wall-clock sum %v", stageSum, total)
	}
}
