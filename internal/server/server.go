// Package server is the embeddable query service behind cmd/gqserverd: a
// set of named graphs, each with its own core.Engine, exposed over an HTTP
// JSON API with per-query deadlines, cooperative cancellation, admission
// control, and resource budgets.
//
// The serving posture follows directly from the paper's complexity
// landscape: evaluation cost for the languages the engine implements can be
// exponential in the query or output (Propositions 22–24, Example 28), so a
// multi-tenant service must bound each query's resources — wall-clock via
// context deadlines, memory/work via eval.Budget — and bound its own
// concurrency via an admission limiter rather than letting load fan out
// into unbounded goroutines.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphquery/internal/core"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/obs"
	"graphquery/internal/store"
)

// Config tunes a Server. The zero value serves with no deadlines, no
// budgets, and concurrency bounded at defaultMaxConcurrent.
type Config struct {
	// DefaultTimeout is the per-query deadline applied when the request
	// does not carry its own timeout_ms (0: none).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts, and applies even when the
	// client asked for no deadline (0: uncapped).
	MaxTimeout time.Duration
	// MaxConcurrent bounds queries evaluating simultaneously
	// (0: defaultMaxConcurrent).
	MaxConcurrent int
	// MaxQueue bounds admissions waiting for a concurrency slot; a request
	// arriving with the queue full is rejected immediately with 429
	// (0: no waiting, reject as soon as all slots are busy).
	MaxQueue int
	// DefaultBudget is the per-query resource budget; requests may
	// override it field-by-field. Zero fields are unlimited.
	DefaultBudget eval.Budget
	// MaxLen / Limit / Parallelism / Shards seed the per-graph engines
	// (0: engine defaults; Shards 0 or 1 keeps kernel sweeps unsharded).
	MaxLen, Limit, Parallelism, Shards int
	// SlowQuery is the slow-query log threshold: every admitted query
	// whose wall-clock reaches it emits exactly one structured WARN record
	// (query text, graph, plan line, span timings, budget consumption,
	// outcome). 0 disables the log. The record is the same obs.CompletedQuery
	// the query event log writes — the slow log is a threshold filter over
	// the query log's record builder, so the two cannot drift.
	SlowQuery time.Duration
	// Logger receives the server's structured log records (slow queries).
	// nil uses slog.Default().
	Logger *slog.Logger
	// QueryLog, when non-nil, receives exactly one JSONL record
	// (obs.CompletedQuery: id, graph, query, plan, spans, budget
	// consumption, outcome) per admitted query — the structured query
	// event log behind gqserverd -query-log. Writes are serialized by the
	// server; the writer need not be concurrency-safe.
	QueryLog io.Writer
	// Recent bounds the completed-query ring buffer behind
	// GET /v1/queries/recent (0: obs.DefaultRecent).
	Recent int
	// Mutable enables the write surface: POST /v1/graphs, POST
	// /v1/graphs/{name}/mutate, DELETE /v1/graphs/{name}. When false those
	// endpoints answer 405 read_only. Graphs registered by the embedder
	// (Register, LoadNamed) are read-only catalog graphs either way.
	Mutable bool
	// CompactThreshold is the live store's delta depth that triggers
	// background compaction (0: store.DefaultCompactThreshold; negative
	// disables compaction).
	CompactThreshold int
	// MaxLoadBytes bounds the POST /v1/graphs request body; larger loads
	// are rejected with 413 too_large (0: defaultMaxLoadBytes).
	MaxLoadBytes int64
	// StreamChunk is the NDJSON chunk granularity of streamed queries: the
	// response flushes to the client every StreamChunk rows
	// (0: defaultStreamChunk).
	StreamChunk int
	// StreamBuffer is the backpressure window of streamed queries, in
	// chunks: at most StreamBuffer encoded chunks sit between evaluation
	// and a slow client before the evaluation workers block
	// (0: defaultStreamBuffer).
	StreamBuffer int
}

const defaultMaxConcurrent = 16

// defaultStreamChunk rows per NDJSON chunk: large enough to amortize the
// per-chunk channel hop and TCP flush, small enough that first-row latency
// and per-query buffering stay low.
const defaultStreamChunk = 256

// defaultStreamBuffer chunks in flight between evaluation and the client.
const defaultStreamBuffer = 4

// defaultMaxLoadBytes bounds bulk graph loads when the config leaves
// MaxLoadBytes zero: big enough for generous test fixtures, small enough
// that one request cannot balloon the heap.
const defaultMaxLoadBytes = 32 << 20

// Server is a query service over named graphs. Create with New, populate
// with Register / LoadNamed, then serve Handler.
type Server struct {
	cfg Config

	mu      sync.RWMutex
	engines map[string]*core.Engine

	// store owns every served graph's MVCC version chain. Engines are kept
	// pointed at the latest snapshot through the store's OnSwap hook; the
	// lock-order rule is: never call a store write operation while holding
	// s.mu (OnSwap fires under the store's per-graph write lock and takes
	// s.mu.RLock).
	store *store.Store

	// sem holds one token per in-flight query; queued counts admissions
	// blocked waiting for a token, checked against cfg.MaxQueue.
	sem    chan struct{}
	queued atomic.Int64

	stats counters

	// latency observes the wall-clock of every admitted query (queue wait
	// included), exposed as gq_query_duration_seconds on GET /metrics.
	latency *obs.Histogram

	// qerror observes the root-level estimate-vs-actual q-error of every
	// analyze-mode query, exposed as gq_cardest_qerror on GET /metrics.
	qerror *obs.Histogram

	// stageLatency holds one histogram per evaluation stage, indexed like
	// stageNames and exposed as gq_stage_duration_seconds{stage=...}.
	stageLatency [len(stageNames)]*obs.Histogram

	// registry tracks in-flight queries (GET /v1/queries, cooperative kill)
	// and the recently completed ring (GET /v1/queries/recent).
	registry *obs.Registry

	// logMu serializes JSONL writes to cfg.QueryLog.
	logMu sync.Mutex
}

// stageNames are the engine's evaluation stages, in pipeline order — the
// label values of gq_stage_duration_seconds. They match the span names
// core.Engine records (see internal/core query tracing), plus "stream",
// the serving-side delivery drain of a streamed response (trailer flush +
// writer join; recorded by streamer.finish, disjoint from the evaluation
// spans).
var stageNames = [...]string{"parse", "compile", "plan", "kernel", "enumerate", "stream"}

// New returns an empty server with cfg's admission limiter.
func New(cfg Config) *Server {
	mc := cfg.MaxConcurrent
	if mc <= 0 {
		mc = defaultMaxConcurrent
	}
	s := &Server{
		cfg:      cfg,
		engines:  make(map[string]*core.Engine),
		sem:      make(chan struct{}, mc),
		latency:  obs.NewHistogram(obs.DefBuckets()),
		qerror:   obs.NewHistogram(qErrorBuckets()),
		registry: obs.NewRegistry(cfg.Recent),
	}
	s.store = store.New(store.Config{
		CompactThreshold: cfg.CompactThreshold,
		OnSwap:           s.onStoreSwap,
	})
	for i := range s.stageLatency {
		s.stageLatency[i] = obs.NewHistogram(obs.DefBuckets())
	}
	return s
}

// Store exposes the live graph store (tests, embedders). Prefer the HTTP
// surface for client writes: it keeps the error taxonomy.
func (s *Server) Store() *store.Store { return s.store }

// Close waits for the store's background compactions to finish.
func (s *Server) Close() { s.store.Close() }

// onStoreSwap points a graph's engine at a freshly published snapshot. It
// runs under the store's per-graph write lock, in commit order, so engines
// never observe version chains out of order. The pin hook refcounts the
// snapshot per query (engine queries acquire on entry, release when done).
func (s *Server) onStoreSwap(name string, snap *store.Snapshot) {
	s.mu.RLock()
	e := s.engines[name]
	s.mu.RUnlock()
	if e == nil {
		return // registration in progress; register installs the snapshot itself
	}
	if snap.Rev < e.GraphRev() {
		return // stale double-install from the registration handshake
	}
	e.SetGraphPinned(snap.G, snap.Rev, func() func() {
		snap.Acquire()
		return snap.Release
	})
}

// Registry exposes the in-flight query registry (admission, live progress,
// cooperative kill) for embedders and tests.
func (s *Server) Registry() *obs.Registry { return s.registry }

// logger resolves the structured-log destination.
func (s *Server) logger() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return slog.Default()
}

// Register adds g under name as a read-only catalog graph and returns its
// engine (already seeded with the server's MaxLen/Limit/Parallelism/
// DefaultBudget) for further customization before serving starts.
// Re-registering a name replaces it.
func (s *Server) Register(name string, g *graph.Graph) *core.Engine {
	e, _ := s.register(name, g, true, true)
	return e
}

// register adopts g into the live store under name and wires its engine to
// track snapshot swaps. replace drops any existing chain first (embedder
// Register semantics); the HTTP load path passes replace=false and maps
// store.ErrExists to 409.
func (s *Server) register(name string, g *graph.Graph, readOnly, replace bool) (*core.Engine, error) {
	if replace {
		s.store.Drop(name)
	}
	h, err := s.store.Load(name, g, readOnly)
	if err != nil {
		return nil, err
	}
	e := core.New(g)
	if s.cfg.MaxLen > 0 {
		e.MaxLen = s.cfg.MaxLen
	}
	e.Limit = s.cfg.Limit
	e.Parallelism = s.cfg.Parallelism
	e.Shards = s.cfg.Shards
	e.Budget = s.cfg.DefaultBudget
	s.mu.Lock()
	s.engines[name] = e
	s.mu.Unlock()
	// The Load-time OnSwap fired before the engine was registered (no-op);
	// install the current snapshot now. Any commit that raced in between
	// re-fires OnSwap after us with a higher Rev, so the engine converges.
	s.onStoreSwap(name, h.Snapshot())
	return e, nil
}

// LoadNamed registers graphs from the built-in catalog (gen.Named) under
// their catalog names.
func (s *Server) LoadNamed(names ...string) error {
	for _, name := range names {
		g, err := gen.Named(name)
		if err != nil {
			return err
		}
		s.Register(name, g)
	}
	return nil
}

// Engine returns the engine serving name, or nil.
func (s *Server) Engine(name string) *core.Engine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engines[name]
}

// GraphNames lists the registered graph names, sorted.
func (s *Server) GraphNames() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.engines))
	for name := range s.engines {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// errOverloaded is the admission-control rejection: all concurrency slots
// busy and the wait queue full.
var errOverloaded = errors.New("server: overloaded")

// acquire claims a concurrency slot, waiting in the bounded queue if the
// limiter is saturated. It returns errOverloaded when the queue is full and
// the ctx error when the caller goes away while queued.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.cfg.MaxQueue <= 0 {
		return errOverloaded
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return errOverloaded
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (s *Server) release() { <-s.sem }

// timeoutFor resolves the effective deadline for a request that asked for
// requested (0: use the default), clamped to MaxTimeout. 0 means no
// deadline.
func (s *Server) timeoutFor(requested time.Duration) time.Duration {
	d := s.cfg.DefaultTimeout
	if requested > 0 {
		d = requested
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	return d
}

// evaluate runs one admitted query: resolve the deadline, evaluate under
// ctx, and account the meter readings.
func (s *Server) evaluate(ctx context.Context, e *core.Engine, req core.Request, timeout time.Duration) (*core.Response, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, timeout,
			fmt.Errorf("%w: query deadline %v exceeded", context.DeadlineExceeded, timeout))
		defer cancel()
	}
	resp, err := e.QueryCtx(ctx, req)
	if resp != nil {
		s.stats.statesVisited.Add(resp.StatesVisited)
		s.stats.rowsReturned.Add(int64(resp.Count()))
	}
	return resp, err
}
