package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config, graphs ...string) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if err := s.LoadNamed(graphs...); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a /v1/query body and decodes the JSON response (success or
// error envelope) into a generic map.
func post(t *testing.T, ts *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("response %d is not JSON: %v\n%s", resp.StatusCode, err, raw)
	}
	return resp.StatusCode, m
}

func errorCode(t *testing.T, m map[string]any) string {
	t.Helper()
	env, ok := m["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error envelope in %v", m)
	}
	code, _ := env["code"].(string)
	if msg, _ := env["message"].(string); msg == "" {
		t.Errorf("error envelope without message: %v", m)
	}
	return code
}

func TestQueryEndpointSuccess(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "bank", "bank-property", "figure5-4")

	status, m := post(t, ts, `{"graph":"bank","query":"Transfer*"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, m)
	}
	if m["kind"] != "pairs" || len(m["pairs"].([]any)) == 0 {
		t.Fatalf("want pairs, got %v", m)
	}

	status, m = post(t, ts, `{"graph":"bank","query":"q(x,y) :- Transfer(x,y), Transfer(y,x)"}`)
	if status != http.StatusOK || m["kind"] != "rows" {
		t.Fatalf("CRPQ: status %d, %v", status, m)
	}

	status, m = post(t, ts, `{"graph":"figure5-4","query":"a*","from":"s","to":"t","mode":"shortest"}`)
	if status != http.StatusOK || m["kind"] != "paths" || m["count"].(float64) != 16 {
		t.Fatalf("paths: status %d, %v", status, m)
	}

	status, m = post(t, ts, `{"graph":"bank","query":"~Transfer Transfer","lang":"2rpq"}`)
	if status != http.StatusOK || m["kind"] != "pairs" {
		t.Fatalf("2rpq: status %d, %v", status, m)
	}

	status, m = post(t, ts, `{"graph":"bank","query":"(Transfer^z)+","from":"a3","to":"a1","mode":"shortest"}`)
	if status != http.StatusOK || m["kind"] != "paths" {
		t.Fatalf("lrpq: status %d, %v", status, m)
	}

	status, m = post(t, ts, `{"graph":"bank-property","query":"() [Transfer][amount < 4500000] ()","from":"a3","to":"a4","mode":"shortest"}`)
	if status != http.StatusOK || m["kind"] != "paths" {
		t.Fatalf("dlrpq: status %d, %v", status, m)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "bank")
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"bad json", `{"graph": bank}`, http.StatusBadRequest, "invalid_request"},
		{"missing query", `{"graph":"bank"}`, http.StatusBadRequest, "invalid_request"},
		{"bad mode", `{"graph":"bank","query":"a","mode":"sideways"}`, http.StatusBadRequest, "invalid_request"},
		{"unknown graph", `{"graph":"nope","query":"a"}`, http.StatusNotFound, "unknown_graph"},
		{"parse error", `{"graph":"bank","query":"((("}`, http.StatusBadRequest, "invalid_query"},
		{"unknown node", `{"graph":"bank","query":"Transfer","from":"nope","to":"a1"}`, http.StatusBadRequest, "invalid_query"},
	}
	for _, tc := range cases {
		status, m := post(t, ts, tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, status, tc.status, m)
			continue
		}
		if code := errorCode(t, m); code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, code, tc.code)
		}
	}
}

// TestQueryEndpointDeadline is the ISSUE acceptance check: a 50ms deadline
// on an expensive clique query returns 504 within 2x the deadline.
func TestQueryEndpointDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallelism: 1}, "clique-300")
	start := time.Now()
	status, m := post(t, ts, `{"graph":"clique-300","query":"a* a* a*","timeout_ms":50}`)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%v)", status, m)
	}
	if code := errorCode(t, m); code != "timeout" {
		t.Fatalf("code %q, want timeout", code)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("504 after %v; want within 2x the 50ms deadline", elapsed)
	}
}

func TestQueryEndpointRowBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxLen: 18}, "figure5-18")
	status, m := post(t, ts, `{"graph":"figure5-18","query":"a*","from":"s","to":"t","max_rows":50}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (%v)", status, m)
	}
	if code := errorCode(t, m); code != "budget_exceeded" {
		t.Fatalf("code %q, want budget_exceeded", code)
	}
}

// TestQueryEndpointOverload saturates a 1-slot/1-queue server and checks
// the third concurrent query is rejected with 429 immediately.
func TestQueryEndpointOverload(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, Parallelism: 1}, "clique-300")
	slow := `{"graph":"clique-300","query":"a* a* a*","timeout_ms":10000}`

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, ts, slow)
		}()
		// Wait until this query occupies its slot (first: in flight;
		// second: queued) before firing the next.
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := s.Stats()
			if st.InFlight >= 1 && st.Queued >= int64(i) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("server never reached in_flight>=1, queued>=%d: %+v", i, st)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	status, m := post(t, ts, slow)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%v)", status, m)
	}
	if code := errorCode(t, m); code != "overloaded" {
		t.Fatalf("code %q, want overloaded", code)
	}
	wg.Wait()
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", st.Rejected)
	}
}

func TestMetaEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{DefaultTimeout: time.Second}, "bank", "figure5-4")

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var gl map[string][]GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&gl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(gl["graphs"]) != 2 || gl["graphs"][0].Name != "bank" || gl["graphs"][0].Nodes == 0 {
		t.Fatalf("graphs: %+v", gl)
	}

	// Drive some traffic, then check the counters flow through statz JSON.
	post(t, ts, `{"graph":"bank","query":"Transfer*"}`)
	post(t, ts, `{"graph":"bank","query":"((("}`)
	resp, err = http.Get(ts.URL + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Accepted != 2 || st.Completed != 1 || st.Errors != 1 {
		t.Fatalf("statz counters: %+v", st)
	}
	if st.StatesVisited == 0 || st.RowsReturned == 0 {
		t.Errorf("meter totals not aggregated: %+v", st)
	}
	if g, ok := st.Graphs["bank"]; !ok || g.Cache.Misses == 0 {
		t.Errorf("per-graph cache stats missing: %+v", st.Graphs)
	}
	if g := st.Graphs["bank"]; g.Runtime.StatesExpanded == 0 ||
		g.Runtime.PlanForward+g.Runtime.PlanBackward == 0 {
		t.Errorf("kernel runtime counters missing from statz: %+v", g.Runtime)
	}
	// The HTTP snapshot matches the in-process one (modulo the statz
	// requests themselves, which touch no counters).
	if direct := s.Stats(); direct.Accepted != st.Accepted {
		t.Errorf("HTTP statz %d accepted, direct %d", st.Accepted, direct.Accepted)
	}
}

// TestErrorEnvelopeShape checks the taxonomy round-trips JSON: code and
// message fields decode into the documented envelope for every error class.
func TestErrorEnvelopeShape(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "bank")
	status, m := post(t, ts, `{"graph":"bank","query":"a","max_states":1}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %v", status, m)
	}
	var env errorEnvelope
	raw, _ := json.Marshal(m)
	if err := json.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "budget_exceeded" || !strings.Contains(env.Error.Message, "states budget") {
		t.Fatalf("envelope: %+v", env)
	}
}

// TestRequestBodyLimit pins the body-size taxonomy: an over-limit body is
// 413 too_large (the client sent too much, not malformed JSON), while a
// body under the limit that is still broken JSON stays 400 invalid_request.
func TestRequestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "bank")
	huge := `{"graph":"bank","query":"` + strings.Repeat("a|", maxRequestBytes) + `a"}`
	status, m := post(t, ts, huge)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%v)", status, m)
	}
	if code := errorCode(t, m); code != "too_large" {
		t.Fatalf("code %q, want too_large", code)
	}

	status, m = post(t, ts, `{"graph":"bank","query":`)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%v)", status, m)
	}
	if code := errorCode(t, m); code != "invalid_request" {
		t.Fatalf("code %q, want invalid_request", code)
	}
}
