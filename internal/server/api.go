// The HTTP JSON surface of the query service.
//
//	POST /v1/query                  evaluate one query against a named graph
//	GET  /v1/graphs                 list registered graphs
//	GET  /v1/healthz                liveness
//	GET  /v1/statz                  counters + per-graph plan-cache stats
//	GET  /v1/queries                in-flight queries with live progress
//	GET  /v1/queries/recent         recently completed queries (ring buffer)
//	POST /v1/queries/{id}/cancel    cooperatively kill one in-flight query
//
// The live-store write surface (POST /v1/graphs, mutate, delete, export)
// is documented in store_api.go.
//
// Every /v1/query reply from an admitted query — success or error — carries
// an X-Query-ID header naming the query's registry ID, the handle for the
// introspection endpoints and the query event log.
//
// POST /v1/query also speaks chunked NDJSON: with Accept:
// application/x-ndjson (or "stream": true in the body) results stream to
// the client as they are produced — header line, one row per line, trailer
// line — with backpressure and cursor-style pagination. See stream.go.
//
// Errors use one envelope, {"error":{"code":..., "message":...}}, with
// machine-readable codes: invalid_request and invalid_query (400),
// unknown_graph and unknown_query (404), cursor_stale (409),
// too_large (413), overloaded (429), budget_exceeded (422), timeout (504),
// canceled and killed (499), internal (500). A streamed query that already
// sent its first chunk reports failures in-band instead, as an error
// trailer carrying the same code.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"graphquery/internal/core"
	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/obs"
)

// maxRequestBytes bounds the request body a client may send.
const maxRequestBytes = 1 << 20

// statusClientClosedRequest is the de-facto code (nginx) for "the client
// canceled before the response was produced"; net/http has no constant.
const statusClientClosedRequest = 499

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	Graph string `json:"graph"`
	Query string `json:"query"`
	// Lang: "" or "auto" detects among the classic kinds; explicit values
	// force a tier: "2rpq" (pairs), "gql" and "coregql" (matches), "cypher"
	// (pairs), "pmr" (paths; needs from/to and a limit), "spanner" (spans
	// over doc), "relalg" (relation), "bag" (bag count).
	Lang string `json:"lang,omitempty"`
	// Doc is the input document for spanner queries.
	Doc string `json:"doc,omitempty"`
	// From/To anchor path queries; Mode picks their path semantics
	// (all, shortest, simple, trail — default all).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	Mode string `json:"mode,omitempty"`
	// MaxLen / Limit override the engine's enumeration bounds when > 0.
	MaxLen int `json:"max_len,omitempty"`
	Limit  int `json:"limit,omitempty"`
	// TimeoutMS overrides the server's default deadline (clamped to its
	// maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxStates / MaxRows override the server's default budget when > 0.
	MaxStates int64 `json:"max_states,omitempty"`
	MaxRows   int64 `json:"max_rows,omitempty"`
	// Analyze turns on EXPLAIN ANALYZE mode: the response's "analyze" field
	// carries the annotated plan tree — per-node planner estimate vs
	// measured actual with q-errors — plus the kernel's per-level sweep
	// telemetry and the plan-knob mispick audit.
	Analyze bool `json:"analyze,omitempty"`
	// Stream requests chunked NDJSON delivery — equivalent to sending
	// Accept: application/x-ndjson.
	Stream bool `json:"stream,omitempty"`
	// Cursor pages a streamed result: "start" opens page one (page size =
	// limit) and each full page's trailer carries the next_cursor token for
	// the page after it. Requires streaming.
	Cursor string `json:"cursor,omitempty"`
}

// QueryResponse is the POST /v1/query success body. Exactly one result
// field group is populated, per Kind: Pairs ("pairs"), Paths ("paths"),
// Columns+Rows ("rows" and "relation"), Matches ("matches"), Spans
// ("spans"), Value ("bag").
type QueryResponse struct {
	Graph   string      `json:"graph"`
	Kind    string      `json:"kind"`
	Pairs   [][2]string `json:"pairs,omitempty"`
	Paths   []string    `json:"paths,omitempty"`
	Columns []string    `json:"columns,omitempty"`
	Rows    [][]string  `json:"rows,omitempty"`
	Matches []string    `json:"matches,omitempty"`
	Spans   []string    `json:"spans,omitempty"`
	Value   string      `json:"value,omitempty"`
	Count   int         `json:"count"`

	StatesVisited int64   `json:"states_visited"`
	RowsProduced  int64   `json:"rows_produced"`
	ElapsedMS     float64 `json:"elapsed_ms"`

	// Analyze is the annotated plan tree, present only when the request set
	// "analyze": true.
	Analyze *core.AnnotatedPlan `json:"analyze,omitempty"`
}

// GraphInfo is one entry of GET /v1/graphs.
type GraphInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("POST /v1/graphs", s.handleGraphLoad)
	mux.HandleFunc("POST /v1/graphs/{name}/mutate", s.handleGraphMutate)
	mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleGraphDelete)
	mux.HandleFunc("GET /v1/graphs/{name}/export", s.handleGraphExport)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statz", s.handleStatz)
	mux.HandleFunc("GET /v1/queries", s.handleQueries)
	mux.HandleFunc("GET /v1/queries/recent", s.handleQueriesRecent)
	mux.HandleFunc("POST /v1/queries/{id}/cancel", s.handleQueryCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON writes one buffered JSON body. The status header is on the
// wire before encoding starts, so an encode or connection failure cannot
// change the outcome anymore — but it is not silently dropped either: it
// is logged and counted in the write_errors stat, so truncated responses
// are visible to operators. (Streamed responses have the stronger in-band
// trailer protocol; this closes the buffered path.)
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		s.stats.writeErrors.Add(1)
		s.logger().Warn("response write failed", "status", status, "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, message string) {
	s.writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: message}})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	infos := []GraphInfo{}
	for _, name := range s.GraphNames() {
		g := s.Engine(name).Graph()
		infos = append(infos, GraphInfo{Name: name, Nodes: g.NumNodes(), Edges: g.NumEdges()})
	}
	s.writeJSON(w, http.StatusOK, map[string][]GraphInfo{"graphs": infos})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Arrival is stamped before admission so the duration histogram keeps
	// its documented meaning — wall clock of the whole admitted query, queue
	// wait included. (The registry entry's Started is stamped at admission
	// and keeps measuring evaluation alone.)
	arrived := time.Now()
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		s.stats.errors.Add(1)
		// An over-limit body is the client sending too much, not malformed
		// JSON: report it as 413 too_large, matching the store load path.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, "invalid_request", "bad request body: "+err.Error())
		return
	}
	if req.Query == "" {
		s.stats.errors.Add(1)
		s.writeError(w, http.StatusBadRequest, "invalid_request", "missing query")
		return
	}
	eng := s.Engine(req.Graph)
	if eng == nil {
		s.stats.errors.Add(1)
		s.writeError(w, http.StatusNotFound, "unknown_graph", "unknown graph "+strconvQuote(req.Graph))
		return
	}
	mode := eval.All
	if req.Mode != "" {
		var err error
		if mode, err = eval.ParseMode(req.Mode); err != nil {
			s.stats.errors.Add(1)
			s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
			return
		}
	}
	stream := req.Stream || wantsNDJSON(r)
	var cur cursorSpec
	if req.Cursor != "" {
		if !stream {
			s.stats.errors.Add(1)
			s.writeError(w, http.StatusBadRequest, "invalid_request",
				`cursor requires streaming ("stream": true or Accept: application/x-ndjson)`)
			return
		}
		var perr string
		if cur, perr = parseCursor(req.Cursor, req.Limit); perr != "" {
			s.stats.errors.Add(1)
			s.writeError(w, http.StatusBadRequest, "invalid_request", perr)
			return
		}
		if cur.check && cur.rev != eng.GraphRev() {
			s.stats.errors.Add(1)
			s.writeError(w, http.StatusConflict, "cursor_stale", fmt.Sprintf(
				"cursor is for graph revision %d, current is %d; restart from cursor \"start\"",
				cur.rev, eng.GraphRev()))
			return
		}
	}
	limit := req.Limit
	if cur.active {
		// The engine enumerates up to the end of the requested page; the
		// sink drops the skipped prefix and stops at the page bound.
		if cur.page > 0 {
			limit = cur.skip + cur.page
		} else {
			limit = 0
		}
	}

	// Admission: claim a concurrency slot or wait in the bounded queue.
	if err := s.acquire(r.Context()); err != nil {
		if errors.Is(err, errOverloaded) {
			s.stats.rejected.Add(1)
			s.writeError(w, http.StatusTooManyRequests, "overloaded",
				"all query slots busy and the wait queue is full; retry later")
			return
		}
		// The client is gone: account the abort, write nothing. See the
		// same guard on the post-evaluation path below.
		s.stats.canceled.Add(1)
		return
	}
	defer s.release()
	s.stats.accepted.Add(1)
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)

	// Register the admitted query: a fresh ID, a live Progress the kernel
	// feeds through the meter tick, and a cancel hook an operator kill
	// (POST /v1/queries/{id}/cancel) fires with obs.ErrKilled as the cause.
	qctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	act := s.registry.Admit(req.Graph, req.Query, req.Lang, cancel)
	w.Header().Set("X-Query-ID", strconv.FormatUint(act.ID, 10))

	tr := obs.NewTrace()
	creq := core.Request{
		Query:    req.Query,
		Lang:     req.Lang,
		Doc:      req.Doc,
		From:     graph.NodeID(req.From),
		To:       graph.NodeID(req.To),
		Mode:     mode,
		MaxLen:   req.MaxLen,
		Limit:    limit,
		Budget:   eval.Budget{MaxStates: req.MaxStates, MaxRows: req.MaxRows},
		Trace:    tr,
		Progress: act.Progress,
		Analyze:  req.Analyze,
	}
	timeout := s.timeoutFor(time.Duration(req.TimeoutMS) * time.Millisecond)
	var st *streamer
	var resp *core.Response
	var err error
	if stream {
		st = s.newStreamer(w, qctx, tr, act.Progress, req.Graph, cur)
		resp, err = s.evaluateStream(qctx, eng, creq, timeout, st)
	} else {
		resp, err = s.evaluate(qctx, eng, creq, timeout)
	}
	elapsed := time.Since(act.Started)
	s.latency.Observe(time.Since(arrived).Seconds())
	if resp != nil && resp.Analyze != nil && resp.Analyze.Plan.QError > 0 {
		s.qerror.Observe(resp.Analyze.Plan.QError)
	}

	outcome := "ok"
	status := http.StatusOK
	if err != nil {
		var code string
		status, code = classifyHTTP(err)
		if code == "canceled" && errors.Is(err, obs.ErrKilled) {
			// Operator kill: same ErrCanceled taxonomy and 499 class as a
			// client abort, but reported distinctly everywhere.
			code = "killed"
		}
		outcome = code
	}
	switch outcome {
	case "ok":
		s.stats.completed.Add(1)
		s.stats.countKind(resp.Kind)
	case "timeout":
		s.stats.timeouts.Add(1)
	case "canceled":
		s.stats.canceled.Add(1)
	case "killed":
		s.stats.killed.Add(1)
	case "budget_exceeded":
		s.stats.budgetExceeded.Add(1)
	default:
		s.stats.errors.Add(1)
	}

	// Streamed delivery: a successful streamed query (the sink was opened)
	// finishes with an ok trailer; one that failed after its first chunk
	// went out can no longer use the error envelope — the 200 is on the
	// wire — so the same outcome code goes into an error trailer in-band.
	// Both paths flush, join the writer, and record the "stream" span,
	// which is why finish runs before observeStages below.
	delivered := false
	if st != nil {
		if err == nil && st.began {
			var rev uint64
			if resp != nil {
				rev = resp.GraphRev
			}
			st.finish(streamTrailer{
				Status:        "ok",
				Count:         st.rows,
				StatesVisited: resp.StatesVisited,
				RowsProduced:  resp.RowsProduced,
				ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
				NextCursor:    st.nextCursor(rev),
			})
			delivered = true
		} else if err != nil && st.sent() {
			spans := tr.Spans()
			st.finish(streamTrailer{
				Status:        "error",
				Code:          outcome,
				Message:       err.Error(),
				Count:         st.rows,
				StatesVisited: obs.TotalStates(spans),
				RowsProduced:  obs.TotalRows(spans),
				ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
			})
			delivered = true
		}
	}
	s.observeStages(tr.Spans())

	// One completion record feeds the recent-queries ring, the query event
	// log, and (over threshold) the slow-query WARN.
	rec := buildRecord(act, outcome, err, elapsed, tr, resp)
	s.registry.Finish(act, rec)
	s.logQuery(rec, elapsed)

	if delivered {
		return
	}
	if err != nil {
		if outcome == "canceled" && r.Context().Err() != nil {
			// The cancellation came from the client side: its connection is
			// closed (or closing), so any WriteHeader/Write here lands on a
			// dead connection — at best discarded, at worst logged by
			// net/http as a superfluous WriteHeader after a failed body
			// write. The 499 is accounting-only; write nothing. (An operator
			// kill does not take this path: the client is still connected
			// and receives the "killed" envelope. A streamed query past its
			// first chunk does not either: its outcome went out above as the
			// in-band trailer.)
			return
		}
		s.writeError(w, status, outcome, err.Error())
		return
	}
	// A streamed request whose evaluation never touched the sink (kind
	// "bag" has one aggregate value) degrades to the buffered body.
	s.writeJSON(w, http.StatusOK, renderResponse(eng, req.Graph, resp, elapsed))
}

// classifyHTTP maps the engine/eval error taxonomy to an HTTP status and
// error code.
func classifyHTTP(err error) (int, string) {
	switch {
	case errors.Is(err, eval.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity, "budget_exceeded"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, eval.ErrCanceled), errors.Is(err, context.Canceled):
		return statusClientClosedRequest, "canceled"
	case errors.Is(err, core.ErrBadQuery), errors.Is(err, core.ErrUnknownNode):
		return http.StatusBadRequest, "invalid_query"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func renderResponse(eng *core.Engine, graphName string, resp *core.Response, elapsed time.Duration) *QueryResponse {
	// Render against the snapshot the query evaluated on: under a live
	// store the engine's current graph may already be a later version.
	g := resp.G
	if g == nil {
		g = eng.Graph()
	}
	out := &QueryResponse{
		Graph:         graphName,
		Kind:          resp.Kind,
		Count:         resp.Count(),
		StatesVisited: resp.StatesVisited,
		RowsProduced:  resp.RowsProduced,
		ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
		Analyze:       resp.Analyze,
	}
	switch resp.Kind {
	case "pairs":
		out.Pairs = make([][2]string, len(resp.Pairs))
		for i, pr := range resp.Pairs {
			out.Pairs[i] = [2]string{string(pr[0]), string(pr[1])}
		}
	case "paths":
		out.Paths = make([]string, len(resp.Paths))
		for i, p := range resp.Paths {
			out.Paths[i] = p.Format(g)
		}
	case "rows":
		out.Columns = resp.Rows.Head
		out.Rows = make([][]string, len(resp.Rows.Rows))
		for i, row := range resp.Rows.Rows {
			rendered := make([]string, len(row))
			for j, v := range row {
				rendered[j] = v.Format(g)
			}
			out.Rows[i] = rendered
		}
	case "matches":
		out.Matches = append([]string{}, resp.Matches...)
	case "spans":
		out.Spans = append([]string{}, resp.Matches...)
	case "relation":
		out.Columns = resp.Rel.Attrs()
		sorted := resp.Rel.Sorted()
		out.Rows = make([][]string, len(sorted))
		for i, t := range sorted {
			rendered := make([]string, len(t))
			for j, c := range t {
				rendered[j] = c.Format(g)
			}
			out.Rows[i] = rendered
		}
	case "bag":
		out.Value = resp.Bag.String()
	}
	return out
}

func strconvQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
