package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// postStream sends a /v1/query with NDJSON accept and returns the raw
// response for incremental reading. Callers own Body.Close.
func postStream(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// ndjson is one fully read streamed response, split into its protocol
// parts: the header object, the raw row lines (byte-exact), and the
// trailer object.
type ndjson struct {
	header  map[string]any
	rows    []string
	trailer map[string]any
}

func readNDJSON(t *testing.T, resp *http.Response) ndjson {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	var out ndjson
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case out.header == nil:
			if err := json.Unmarshal([]byte(line), &out.header); err != nil {
				t.Fatalf("bad header line %q: %v", line, err)
			}
		case strings.HasPrefix(line, `{"trailer"`):
			var tl map[string]map[string]any
			if err := json.Unmarshal([]byte(line), &tl); err != nil {
				t.Fatalf("bad trailer line %q: %v", line, err)
			}
			out.trailer = tl["trailer"]
		default:
			if out.trailer != nil {
				t.Fatalf("row after trailer: %q", line)
			}
			out.rows = append(out.rows, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if out.header == nil || out.trailer == nil {
		t.Fatalf("incomplete stream: header=%v trailer=%v rows=%d", out.header, out.trailer, len(out.rows))
	}
	return out
}

// streamCases is one query per streamable response kind — every kind the
// engine produces except "bag", which has a single aggregate value and
// degrades to the buffered body.
var streamCases = []struct {
	name string
	kind string
	body string
}{
	{"pairs-kernel", "pairs", `{"graph":"bank","query":"Transfer*"}`},
	{"pairs-cypher", "pairs", `{"graph":"bank","lang":"cypher","query":"-[:Transfer]->"}`},
	{"pairs-2rpq", "pairs", `{"graph":"bank","lang":"2rpq","query":"Transfer ~Transfer"}`},
	{"paths", "paths", `{"graph":"figure5-4","query":"a*","from":"s","to":"t","mode":"shortest"}`},
	{"rows", "rows", `{"graph":"bank","query":"q(x,y) :- Transfer(x,y), Transfer(y,x)"}`},
	{"matches", "matches", `{"graph":"bank","lang":"gql","query":"(x)-[:Transfer]->(y)"}`},
	{"spans", "spans", `{"graph":"bank","lang":"spanner","doc":"aabc","query":"x{a*}y{(b|c)*}"}`},
	{"relation", "relation", `{"graph":"bank","lang":"relalg","query":"REACH(Transfer) AS (x, y)"}`},
}

// bufferedField extracts the result array of a buffered QueryResponse for
// kind, as raw (byte-preserving) JSON elements, plus the columns header.
func bufferedField(t *testing.T, raw []byte, kind string) (rows []json.RawMessage, columns []string) {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	field := map[string]string{
		"pairs": "pairs", "paths": "paths", "rows": "rows",
		"matches": "matches", "spans": "spans", "relation": "rows",
	}[kind]
	if f, ok := m[field]; ok {
		if err := json.Unmarshal(f, &rows); err != nil {
			t.Fatal(err)
		}
	}
	if c, ok := m["columns"]; ok {
		if err := json.Unmarshal(c, &columns); err != nil {
			t.Fatal(err)
		}
	}
	return rows, columns
}

// TestStreamMatchesBuffered is the streamed-vs-buffered cross-validation:
// for every streamable kind, under sequential, parallel, and sharded
// plans, the concatenated NDJSON rows must be byte-identical to the
// buffered response's result elements, and the trailer count must match.
func TestStreamMatchesBuffered(t *testing.T) {
	plans := []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{Parallelism: 1, StreamChunk: 3}},
		{"parallel", Config{StreamChunk: 3}},
		{"sharded-2", Config{Shards: 2, StreamChunk: 3}},
	}
	for _, pl := range plans {
		t.Run(pl.name, func(t *testing.T) {
			_, ts := newTestServer(t, pl.cfg, "bank", "figure5-4")
			for _, tc := range streamCases {
				t.Run(tc.name, func(t *testing.T) {
					resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(tc.body))
					if err != nil {
						t.Fatal(err)
					}
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("buffered status %d: %s", resp.StatusCode, raw)
					}
					wantRows, wantCols := bufferedField(t, raw, tc.kind)

					got := readNDJSON(t, postStream(t, ts, tc.body))
					if got.header["kind"] != tc.kind || got.header["graph"] != "bank" && tc.name != "paths" {
						t.Fatalf("header %v, want kind %q", got.header, tc.kind)
					}
					if len(got.rows) != len(wantRows) {
						t.Fatalf("streamed %d rows, buffered %d", len(got.rows), len(wantRows))
					}
					for i := range got.rows {
						if got.rows[i] != string(wantRows[i]) {
							t.Fatalf("row %d differs:\nstream:   %s\nbuffered: %s", i, got.rows[i], wantRows[i])
						}
					}
					if int(got.trailer["count"].(float64)) != len(wantRows) {
						t.Fatalf("trailer count %v, want %d", got.trailer["count"], len(wantRows))
					}
					if got.trailer["status"] != "ok" {
						t.Fatalf("trailer %v", got.trailer)
					}
					var gotCols []string
					if c, ok := got.header["columns"].([]any); ok {
						for _, v := range c {
							gotCols = append(gotCols, v.(string))
						}
					}
					if fmt.Sprint(gotCols) != fmt.Sprint(wantCols) {
						t.Fatalf("columns %v, want %v", gotCols, wantCols)
					}
				})
			}
		})
	}
}

// TestStreamBagDegradesToBuffered: kind "bag" never touches the sink, so a
// streamed request degrades cleanly to the ordinary buffered JSON body.
func TestStreamBagDegradesToBuffered(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "bank")
	resp := postStream(t, ts, `{"graph":"bank","lang":"bag","query":"Transfer Transfer"}`)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json (buffered degrade)", ct)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != "bag" || m["value"] == "" {
		t.Fatalf("bag response: %v", m)
	}
}

// TestStreamCursorPagination walks a paged stream to exhaustion and checks
// the pages concatenate to exactly the unpaged stream, then pins the
// cursor error taxonomy: cursor without streaming (400), malformed token
// (400), revision mismatch (409 cursor_stale).
func TestStreamCursorPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{StreamChunk: 2}, "bank")

	full := readNDJSON(t, postStream(t, ts, `{"graph":"bank","query":"Transfer*"}`))
	if len(full.rows) < 4 {
		t.Fatalf("need a multi-page result, got %d rows", len(full.rows))
	}

	var paged []string
	cursor := "start"
	for pages := 0; cursor != ""; pages++ {
		if pages > len(full.rows) {
			t.Fatal("cursor never terminated")
		}
		body := fmt.Sprintf(`{"graph":"bank","query":"Transfer*","limit":3,"cursor":%q}`, cursor)
		page := readNDJSON(t, postStream(t, ts, body))
		if page.trailer["status"] != "ok" {
			t.Fatalf("page trailer %v", page.trailer)
		}
		if len(page.rows) > 3 {
			t.Fatalf("page has %d rows, limit 3", len(page.rows))
		}
		paged = append(paged, page.rows...)
		cursor, _ = page.trailer["next_cursor"].(string)
		if cursor != "" && len(page.rows) != 3 {
			t.Fatalf("next_cursor on a short page (%d rows)", len(page.rows))
		}
	}
	if len(paged) != len(full.rows) {
		t.Fatalf("pages yielded %d rows, unpaged stream %d", len(paged), len(full.rows))
	}
	for i := range paged {
		if paged[i] != full.rows[i] {
			t.Fatalf("paged row %d differs: %s vs %s", i, paged[i], full.rows[i])
		}
	}

	status, m := post(t, ts, `{"graph":"bank","query":"Transfer*","cursor":"start"}`)
	if status != http.StatusBadRequest || errorCode(t, m) != "invalid_request" {
		t.Fatalf("cursor without stream: %d %v", status, m)
	}
	status, m = post(t, ts, `{"graph":"bank","query":"Transfer*","stream":true,"cursor":"bogus"}`)
	if status != http.StatusBadRequest || errorCode(t, m) != "invalid_request" {
		t.Fatalf("bad cursor: %d %v", status, m)
	}
	status, m = post(t, ts, `{"graph":"bank","query":"Transfer*","stream":true,"cursor":"v999:3"}`)
	if status != http.StatusConflict || errorCode(t, m) != "cursor_stale" {
		t.Fatalf("stale cursor: %d %v", status, m)
	}
}

// TestStreamBudgetTrailer: a row budget that trips after rows have already
// been flushed cannot use the error envelope anymore — the exact
// budget_exceeded outcome must arrive as the in-band error trailer, after
// the rows that fit the budget.
func TestStreamBudgetTrailer(t *testing.T) {
	s, ts := newTestServer(t, Config{Parallelism: 1, StreamChunk: 1}, "path-100")
	// Sequential sweep over path-100 (101 nodes): source v0 yields 101
	// rows, v1 yields 100 — a 250-row budget delivers both (201 rows, each
	// flushed immediately at chunk 1) and trips inside v2's sweep, whose
	// rows are voided.
	resp := postStream(t, ts, `{"graph":"path-100","query":"a*","max_rows":250}`)
	got := readNDJSON(t, resp)
	if got.trailer["status"] != "error" || got.trailer["code"] != "budget_exceeded" {
		t.Fatalf("trailer %v, want budget_exceeded error", got.trailer)
	}
	if len(got.rows) != 201 {
		t.Fatalf("delivered %d rows before the trip, want 201", len(got.rows))
	}
	if msg, _ := got.trailer["message"].(string); !strings.Contains(msg, "budget") {
		t.Fatalf("trailer message %q", msg)
	}
	if st := s.Stats(); st.BudgetExceeded != 1 || st.RowsStreamed != 201 {
		t.Fatalf("stats: budget_exceeded=%d rows_streamed=%d", st.BudgetExceeded, st.RowsStreamed)
	}
}

// TestStreamKillTrailer: an operator kill (POST /v1/queries/{id}/cancel)
// landing mid-stream surfaces as a well-formed "killed" error trailer on
// the already-open 200 response.
func TestStreamKillTrailer(t *testing.T) {
	_, ts := newTestServer(t, Config{StreamChunk: 64, StreamBuffer: 1}, "clique-300")
	resp := postStream(t, ts, `{"graph":"clique-300","query":"a*"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Query-ID")
	if id == "" {
		t.Fatal("no X-Query-ID on streamed response")
	}
	// Read just the header line: the first chunk is on the wire, the rest
	// of the 90000-pair result is parked behind backpressure.
	br := bufio.NewReaderSize(resp.Body, 1<<16)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cresp, err := http.Post(ts.URL+"/v1/queries/"+id+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", cresp.StatusCode)
	}
	// Drain the remainder; the stream must end with a killed error trailer.
	var last string
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if sc.Text() != "" {
			last = sc.Text()
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var tl map[string]map[string]any
	if err := json.Unmarshal([]byte(last), &tl); err != nil {
		t.Fatalf("last line %q is not a trailer: %v", last, err)
	}
	tr := tl["trailer"]
	if tr["status"] != "error" || tr["code"] != "killed" {
		t.Fatalf("trailer %v, want killed", tr)
	}
}

// TestStreamClientAbort: a client closing its connection mid-stream must
// cancel evaluation (accounted as canceled) and count a write error, never
// wedge the handler.
func TestStreamClientAbort(t *testing.T) {
	s, ts := newTestServer(t, Config{StreamChunk: 16, StreamBuffer: 1}, "clique-300")
	resp := postStream(t, ts, `{"graph":"clique-300","query":"a*"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Read one line to be sure the stream is live, then slam the door.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Canceled >= 1 && st.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abort not accounted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamObservability: streamed rows surface in /v1/statz, /metrics,
// and the per-stage histograms gain the "stream" stage.
func TestStreamObservability(t *testing.T) {
	s, ts := newTestServer(t, Config{}, "bank")
	got := readNDJSON(t, postStream(t, ts, `{"graph":"bank","query":"Transfer*"}`))
	n := int64(len(got.rows))
	if n == 0 {
		t.Fatal("no rows")
	}
	if st := s.Stats(); st.RowsStreamed != n {
		t.Fatalf("rows_streamed %d, want %d", st.RowsStreamed, n)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(raw)
	if !strings.Contains(text, fmt.Sprintf("gq_rows_streamed_total %d", n)) {
		t.Fatalf("metrics missing gq_rows_streamed_total %d", n)
	}
	if !strings.Contains(text, `gq_stage_duration_seconds_count{stage="stream"} 1`) {
		t.Fatal("metrics missing stream stage sample")
	}
	if !strings.Contains(text, "gq_write_errors_total 0") {
		t.Fatal("metrics missing gq_write_errors_total")
	}
}

// TestDurationIncludesQueueWait is the latency-accounting regression test:
// gq_query_duration_seconds is documented as wall-clock including queue
// wait, so a query parked in the admission queue must observe its wait.
func TestDurationIncludesQueueWait(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 4}, "bank")

	// Occupy the only slot directly, park one query in the wait queue for
	// ~150ms, then let it through.
	s.sem <- struct{}{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, m := post(t, ts, `{"graph":"bank","query":"Transfer"}`)
		if status != http.StatusOK {
			t.Errorf("queued query: %d %v", status, m)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond)
	s.release()
	wg.Wait()

	if sum := s.latency.Sum(); sum < 0.15 {
		t.Fatalf("duration histogram sum %.4fs, want >= 0.15s (queue wait dropped)", sum)
	}
	if c := s.latency.Count(); c != 1 {
		t.Fatalf("duration histogram count %d, want 1", c)
	}
}

// failWriter is an http.ResponseWriter whose body writes always fail.
type failWriter struct{ h http.Header }

func (f *failWriter) Header() http.Header {
	if f.h == nil {
		f.h = make(http.Header)
	}
	return f.h
}
func (f *failWriter) WriteHeader(int)           {}
func (f *failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

// TestWriteJSONCountsErrors is the buffered write-failure regression test:
// an encode/write failure must be counted in write_errors, not dropped.
func TestWriteJSONCountsErrors(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{Logger: slog.New(slog.NewTextHandler(&buf, nil))})
	s.writeJSON(&failWriter{}, http.StatusOK, map[string]string{"a": "b"})
	if got := s.Stats().WriteErrors; got != 1 {
		t.Fatalf("write_errors %d, want 1", got)
	}
	if !strings.Contains(buf.String(), "response write failed") {
		t.Fatalf("write failure not logged: %q", buf.String())
	}
}
