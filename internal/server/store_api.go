// The write surface of the query service — the live graph store's HTTP API.
//
//	POST   /v1/graphs                    bulk-load a graph (JSON or CSV payload)
//	POST   /v1/graphs/{name}/mutate      apply one batched mutation atomically
//	DELETE /v1/graphs/{name}             drop a graph
//	GET    /v1/graphs/{name}/export      export a graph (JSON, or CSV by part)
//
// The write endpoints extend the error envelope taxonomy:
//
//	graph_exists     409  load names a graph that already exists
//	version_mismatch 409  mutate if_version precondition failed
//	read_only        405  server not -mutable, or the graph is a catalog graph
//	too_large        413  load body exceeds the configured size limit
//
// Export is a read and works on any graph, mutable server or not.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"graphquery/internal/graph"
	"graphquery/internal/store"
)

// LoadRequest is the POST /v1/graphs body. Exactly one payload shape is
// used: format "json" (default) takes the graph codec's document under
// "graph"; format "csv" takes the two CSV files inline.
type LoadRequest struct {
	Name   string `json:"name"`
	Format string `json:"format,omitempty"` // "json" (default) or "csv"
	// Graph is the {"nodes":[...],"edges":[...]} document (format json).
	Graph json.RawMessage `json:"graph,omitempty"`
	// NodesCSV / EdgesCSV carry the two CSV files (format csv).
	NodesCSV string `json:"nodes_csv,omitempty"`
	EdgesCSV string `json:"edges_csv,omitempty"`
}

// MutationJSON is one operation of a POST /v1/graphs/{name}/mutate batch,
// the wire form of graph.Mutation.
type MutationJSON struct {
	Op    string                     `json:"op"` // add_node, remove_node, add_edge, remove_edge, set_node_prop, set_edge_prop
	ID    string                     `json:"id"`
	Label string                     `json:"label,omitempty"`
	Src   string                     `json:"src,omitempty"`
	Tgt   string                     `json:"tgt,omitempty"`
	Props map[string]graph.ValueJSON `json:"props,omitempty"`
	Prop  string                     `json:"prop,omitempty"`
	Value *graph.ValueJSON           `json:"value,omitempty"`
}

// MutateRequest is the POST /v1/graphs/{name}/mutate body. IfVersion,
// when nonzero, is an optimistic-concurrency precondition on the graph's
// current version.
type MutateRequest struct {
	IfVersion uint64         `json:"if_version,omitempty"`
	Ops       []MutationJSON `json:"ops"`
}

// GraphVersion is the success body of load and mutate: where the chain
// landed.
type GraphVersion struct {
	Graph   string `json:"graph"`
	Version uint64 `json:"version"`
	Rev     uint64 `json:"rev"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Applied int    `json:"applied,omitempty"`
}

func (s *Server) maxLoadBytes() int64 {
	if s.cfg.MaxLoadBytes > 0 {
		return s.cfg.MaxLoadBytes
	}
	return defaultMaxLoadBytes
}

// requireMutable gates a write endpoint on the server's -mutable flag.
func (s *Server) requireMutable(w http.ResponseWriter) bool {
	if s.cfg.Mutable {
		return true
	}
	s.stats.errors.Add(1)
	s.writeError(w, http.StatusMethodNotAllowed, "read_only",
		"server is read-only; start it with -mutable to enable graph writes")
	return false
}

// writeStoreError maps the store's error taxonomy onto the envelope.
func (s *Server) writeStoreError(w http.ResponseWriter, err error) {
	s.stats.errors.Add(1)
	switch {
	case errors.Is(err, store.ErrExists):
		s.writeError(w, http.StatusConflict, "graph_exists", err.Error())
	case errors.Is(err, store.ErrVersionMismatch):
		s.writeError(w, http.StatusConflict, "version_mismatch", err.Error())
	case errors.Is(err, store.ErrNotFound):
		s.writeError(w, http.StatusNotFound, "unknown_graph", err.Error())
	case errors.Is(err, store.ErrReadOnly):
		s.writeError(w, http.StatusMethodNotAllowed, "read_only", err.Error())
	default:
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
	}
}

func (s *Server) handleGraphLoad(w http.ResponseWriter, r *http.Request) {
	if !s.requireMutable(w) {
		return
	}
	var req LoadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxLoadBytes()))
	if err := dec.Decode(&req); err != nil {
		s.stats.errors.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("load body exceeds the %d-byte limit", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, "invalid_request", "bad request body: "+err.Error())
		return
	}
	if req.Name == "" {
		s.stats.errors.Add(1)
		s.writeError(w, http.StatusBadRequest, "invalid_request", "missing graph name")
		return
	}
	var g *graph.Graph
	var err error
	switch req.Format {
	case "", "json":
		if len(req.Graph) == 0 {
			s.stats.errors.Add(1)
			s.writeError(w, http.StatusBadRequest, "invalid_request", `missing "graph" document`)
			return
		}
		g, err = graph.ReadJSON(bytes.NewReader(req.Graph))
	case "csv":
		g, err = graph.ReadCSV(strings.NewReader(req.NodesCSV), strings.NewReader(req.EdgesCSV))
	default:
		s.stats.errors.Add(1)
		s.writeError(w, http.StatusBadRequest, "invalid_request",
			fmt.Sprintf("unknown load format %q (want json or csv)", req.Format))
		return
	}
	if err != nil {
		s.stats.errors.Add(1)
		s.writeError(w, http.StatusBadRequest, "invalid_request", "bad graph payload: "+err.Error())
		return
	}
	if _, err := s.register(req.Name, g, false, false); err != nil {
		s.writeStoreError(w, err)
		return
	}
	h, _ := s.store.Get(req.Name)
	snap := h.Snapshot()
	s.writeJSON(w, http.StatusCreated, GraphVersion{
		Graph:   req.Name,
		Version: snap.Version,
		Rev:     snap.Rev,
		Nodes:   snap.G.NumLiveNodes(),
		Edges:   snap.G.NumLiveEdges(),
	})
}

func (s *Server) handleGraphMutate(w http.ResponseWriter, r *http.Request) {
	if !s.requireMutable(w) {
		return
	}
	name := r.PathValue("name")
	h, ok := s.store.Get(name)
	if !ok {
		s.stats.errors.Add(1)
		s.writeError(w, http.StatusNotFound, "unknown_graph", "unknown graph "+strconvQuote(name))
		return
	}
	var req MutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		s.stats.errors.Add(1)
		s.writeError(w, http.StatusBadRequest, "invalid_request", "bad request body: "+err.Error())
		return
	}
	if len(req.Ops) == 0 {
		s.stats.errors.Add(1)
		s.writeError(w, http.StatusBadRequest, "invalid_request", "empty mutation batch")
		return
	}
	muts := make([]graph.Mutation, len(req.Ops))
	for i, op := range req.Ops {
		m, err := decodeMutation(op)
		if err != nil {
			s.stats.errors.Add(1)
			s.writeError(w, http.StatusBadRequest, "invalid_request",
				fmt.Sprintf("op %d: %v", i, err))
			return
		}
		muts[i] = m
	}
	snap, err := h.Mutate(muts, req.IfVersion)
	if err != nil {
		s.writeStoreError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, GraphVersion{
		Graph:   name,
		Version: snap.Version,
		Rev:     snap.Rev,
		Nodes:   snap.G.NumLiveNodes(),
		Edges:   snap.G.NumLiveEdges(),
		Applied: len(muts),
	})
}

func decodeMutation(op MutationJSON) (graph.Mutation, error) {
	kind, err := graph.ParseMutOp(op.Op)
	if err != nil {
		return graph.Mutation{}, err
	}
	m := graph.Mutation{
		Op:    kind,
		ID:    op.ID,
		Label: op.Label,
		Src:   op.Src,
		Tgt:   op.Tgt,
		Prop:  op.Prop,
	}
	if len(op.Props) > 0 {
		m.Props = make(graph.Props, len(op.Props))
		for k, jv := range op.Props {
			v, err := graph.ValueFromJSON(jv)
			if err != nil {
				return graph.Mutation{}, fmt.Errorf("prop %q: %w", k, err)
			}
			m.Props[k] = v
		}
	}
	if op.Value != nil {
		v, err := graph.ValueFromJSON(*op.Value)
		if err != nil {
			return graph.Mutation{}, fmt.Errorf("value: %w", err)
		}
		m.Value = v
	}
	return m, nil
}

func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	if !s.requireMutable(w) {
		return
	}
	name := r.PathValue("name")
	if err := s.store.Delete(name); err != nil {
		s.writeStoreError(w, err)
		return
	}
	s.mu.Lock()
	delete(s.engines, name)
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleGraphExport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	h, ok := s.store.Get(name)
	if !ok {
		s.stats.errors.Add(1)
		s.writeError(w, http.StatusNotFound, "unknown_graph", "unknown graph "+strconvQuote(name))
		return
	}
	g := h.Snapshot().G
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := graph.WriteJSON(w, g); err != nil {
			// Headers are gone; the truncated body is the best signal left.
			s.stats.errors.Add(1)
		}
	case "csv":
		var nodes, edges io.Writer = io.Discard, io.Discard
		switch part := r.URL.Query().Get("part"); part {
		case "nodes":
			nodes = w
		case "edges":
			edges = w
		default:
			s.stats.errors.Add(1)
			s.writeError(w, http.StatusBadRequest, "invalid_request",
				fmt.Sprintf("csv export needs part=nodes or part=edges, got %q", part))
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := graph.WriteCSV(nodes, edges, g); err != nil {
			s.stats.errors.Add(1)
		}
	default:
		s.stats.errors.Add(1)
		s.writeError(w, http.StatusBadRequest, "invalid_request",
			fmt.Sprintf("unknown export format %q (want json or csv)", format))
	}
}
