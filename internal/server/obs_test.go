package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"graphquery/internal/gen"
)

// scrapeMetrics parses a Prometheus text exposition into sample name →
// value ("gq_graph_nodes{graph=\"bank\"}" keyed with its label set).
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsMatchesStatz runs a scripted batch covering every outcome
// class, then requires the /metrics counters to agree exactly with the
// /v1/statz snapshot — the acceptance criterion that the two views of the
// server cannot drift.
func TestMetricsMatchesStatz(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "bank", "figure5-4")

	post(t, ts, `{"graph":"bank","query":"Transfer*"}`)                        // 200
	post(t, ts, `{"graph":"bank","query":"Transfer*"}`)                        // 200, plan-cache hit
	post(t, ts, `{"graph":"bank","query":"((("}`)                              // 400 invalid_query
	post(t, ts, `{"graph":"nope","query":"a"}`)                                // 404 unknown_graph
	post(t, ts, `{"graph":"bank","query":"Transfer*","max_states":1}`)         // 422 budget_exceeded
	post(t, ts, `{"graph":"figure5-4","query":"a*","from":"s","to":"t"}`)      // 200 paths
	post(t, ts, `{"graph":"bank","query":"~Transfer Transfer","lang":"2rpq"}`) // 200 2rpq

	var statz ServerStats
	resp, err := http.Get(ts.URL + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	metrics := scrapeMetrics(t, ts)

	// Sanity: the batch produced the outcomes it scripted.
	if statz.Completed != 4 || statz.Errors != 2 || statz.BudgetExceeded != 1 {
		t.Fatalf("unexpected batch outcome: %+v", statz)
	}

	serverPairs := map[string]int64{
		"gq_accepted_total":        statz.Accepted,
		"gq_completed_total":       statz.Completed,
		"gq_canceled_total":        statz.Canceled,
		"gq_timeouts_total":        statz.Timeouts,
		"gq_budget_exceeded_total": statz.BudgetExceeded,
		"gq_rejected_total":        statz.Rejected,
		"gq_errors_total":          statz.Errors,
		"gq_in_flight":             statz.InFlight,
		"gq_queued":                statz.Queued,
		"gq_states_visited_total":  statz.StatesVisited,
		"gq_rows_returned_total":   statz.RowsReturned,
	}
	for name, want := range serverPairs {
		got, ok := metrics[name]
		if !ok {
			t.Errorf("metric %s missing from /metrics", name)
			continue
		}
		if int64(got) != want {
			t.Errorf("%s = %v, statz says %d", name, got, want)
		}
	}
	for name, gs := range statz.Graphs {
		graphPairs := map[string]int64{
			"gq_graph_nodes":                   int64(gs.Nodes),
			"gq_graph_edges":                   int64(gs.Edges),
			"gq_plan_cache_hits_total":         gs.Cache.Hits,
			"gq_plan_cache_misses_total":       gs.Cache.Misses,
			"gq_plan_cache_size":               int64(gs.Cache.Size),
			"gq_runtime_states_expanded_total": gs.Runtime.StatesExpanded,
			"gq_runtime_edges_scanned_total":   gs.Runtime.EdgesScanned,
		}
		for fam, want := range graphPairs {
			key := fmt.Sprintf("%s{graph=%q}", fam, name)
			got, ok := metrics[key]
			if !ok {
				t.Errorf("sample %s missing from /metrics", key)
				continue
			}
			if int64(got) != want {
				t.Errorf("%s = %v, statz says %d", key, got, want)
			}
		}
	}
	// The latency histogram observed every admitted query.
	if got := metrics["gq_query_duration_seconds_count"]; int64(got) != statz.Accepted {
		t.Errorf("histogram count = %v, want one observation per admitted query (%d)", got, statz.Accepted)
	}
	if got := metrics[`gq_query_duration_seconds_bucket{le="+Inf"}`]; int64(got) != statz.Accepted {
		t.Errorf("+Inf bucket = %v, want %d", got, statz.Accepted)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output
// written from handler goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowQueryLogExactlyOneRecord: one over-threshold query emits exactly
// one structured WARN record carrying the §10 schema, and queries under
// threshold emit nothing.
func TestSlowQueryLogExactlyOneRecord(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s := New(Config{SlowQuery: time.Nanosecond, Logger: logger})
	if err := s.LoadNamed("bank"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts, `{"graph":"bank","query":"Transfer*"}`)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 || lines[0] == "" {
		t.Fatalf("want exactly 1 slow-query record, got %d:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("record is not JSON: %v\n%s", err, lines[0])
	}
	if rec["level"] != "WARN" || rec["msg"] != "slow query" {
		t.Errorf("level/msg = %v/%v", rec["level"], rec["msg"])
	}
	if rec["graph"] != "bank" || rec["query"] != "Transfer*" || rec["outcome"] != "ok" {
		t.Errorf("graph/query/outcome wrong: %v", rec)
	}
	if plan, _ := rec["plan"].(string); !strings.Contains(plan, "dir=") {
		t.Errorf("record missing plan line: %v", rec)
	}
	if spans, _ := rec["spans"].(string); !strings.Contains(spans, "kernel=") {
		t.Errorf("record missing span timings: %v", rec)
	}
	if _, ok := rec["states"]; !ok {
		t.Errorf("record missing budget consumption: %v", rec)
	}

	// An errored query over threshold also logs exactly one record, with
	// its outcome code.
	post(t, ts, `{"graph":"bank","query":"Transfer*","max_states":1}`)
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 records after errored query, got %d", len(lines))
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["outcome"] != "budget_exceeded" {
		t.Errorf("errored record outcome = %v, want budget_exceeded", rec["outcome"])
	}

	// Threshold disabled or not reached: silence.
	buf2 := &syncBuffer{}
	s2 := New(Config{SlowQuery: time.Hour, Logger: slog.New(slog.NewJSONHandler(buf2, nil))})
	if err := s2.LoadNamed("bank"); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	post(t, ts2, `{"graph":"bank","query":"Transfer*"}`)
	if out := buf2.String(); out != "" {
		t.Errorf("under-threshold query logged: %s", out)
	}
}

// Test499NoWriteAfterClientAbort is the regression test for the 499 path:
// when the client cancels mid-evaluation, the handler must only account the
// abort — writing a status or body targets a dead connection. Pre-fix the
// handler wrote a 499 envelope; the recorder catches that.
func Test499NoWriteAfterClientAbort(t *testing.T) {
	s := New(Config{})
	s.Register("big", gen.Clique(300, "a"))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := strings.NewReader(`{"graph":"big","query":"a* a* a*"}`)
	r := httptest.NewRequest("POST", "/v1/query", body).WithContext(ctx)
	w := httptest.NewRecorder()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.handleQuery(w, r)
	}()
	// Wait until the query is actually evaluating, then pull the client.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after cancellation")
	}

	if w.Body.Len() != 0 {
		t.Errorf("handler wrote %d bytes to an aborted client: %s", w.Body.Len(), w.Body.String())
	}
	st := s.Stats()
	if st.Canceled != 1 {
		t.Errorf("canceled stat = %d, want 1", st.Canceled)
	}
	if st.Completed != 0 || st.Errors != 0 {
		t.Errorf("abort misclassified: %+v", st)
	}
}

// Test499NoWriteWhenAbortedWhileQueued covers the admission path: a client
// that disappears while waiting for a slot is accounted as canceled with
// nothing written.
func Test499NoWriteWhenAbortedWhileQueued(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 1})
	s.Register("bank", gen.BankEdgeLabeled())
	s.sem <- struct{}{} // occupy the only slot

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // client is already gone when admission blocks
	r := httptest.NewRequest("POST", "/v1/query",
		strings.NewReader(`{"graph":"bank","query":"Transfer"}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.handleQuery(w, r)

	if w.Body.Len() != 0 {
		t.Errorf("handler wrote %d bytes to an aborted queued client: %s", w.Body.Len(), w.Body.String())
	}
	if st := s.Stats(); st.Canceled != 1 || st.Accepted != 0 {
		t.Errorf("queued abort misaccounted: %+v", st)
	}
	<-s.sem
}

// TestClientAbortOverSocket drives the 499 path over a real TCP connection:
// the client sends the request and slams the connection mid-evaluation. The
// handler must account one canceled query and net/http must log no
// superfluous-WriteHeader complaints.
func TestClientAbortOverSocket(t *testing.T) {
	s := New(Config{})
	s.Register("big", gen.Clique(300, "a"))
	var errLog syncBuffer
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Config.ErrorLog = log.New(&errLog, "", 0)
	ts.Start()
	defer ts.Close()

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	body := `{"graph":"big","query":"a* a* a*"}`
	fmt.Fprintf(conn, "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body)

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never started")
		}
		time.Sleep(time.Millisecond)
	}
	conn.Close()

	for s.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abort never surfaced as canceled: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// Give net/http a moment to log anything it wants to, then require
	// silence about superfluous writes.
	time.Sleep(50 * time.Millisecond)
	if out := errLog.String(); strings.Contains(out, "superfluous") {
		t.Errorf("net/http logged a superfluous WriteHeader:\n%s", out)
	}
	if st := s.Stats(); st.Canceled != 1 || st.Completed != 0 {
		t.Errorf("socket abort misaccounted: %+v", st)
	}

	// Read whatever the server wrote before noticing the abort — there
	// should be no HTTP response bytes on this dead connection (best-effort:
	// the connection is closed, so a read simply errors).
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if n, _ := conn.Read(buf); n != 0 {
		t.Logf("note: %d bytes arrived before abort was noticed", n)
	}
}

// TestMetricsEndpointTouchesNoCounters pins that scraping is free: GETs on
// /metrics must not move any query counter (the consistency guarantee
// between consecutive scrapes and statz reads).
func TestMetricsEndpointTouchesNoCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{}, "bank")
	post(t, ts, `{"graph":"bank","query":"Transfer"}`)
	before := scrapeMetrics(t, ts)
	for i := 0; i < 3; i++ {
		scrapeMetrics(t, ts)
	}
	after := scrapeMetrics(t, ts)
	for _, name := range []string{"gq_accepted_total", "gq_completed_total", "gq_errors_total"} {
		if before[name] != after[name] {
			t.Errorf("%s moved across scrapes: %v -> %v", name, before[name], after[name])
		}
	}
}
