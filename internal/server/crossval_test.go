package server

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"graphquery/internal/core"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
)

// renderPairs turns a pairs response into one canonical string, so two
// evaluations of the same query on the same snapshot compare byte-identical.
func renderPairs(resp *core.Response) string {
	out := make([]string, len(resp.Pairs))
	for i, p := range resp.Pairs {
		out[i] = string(p[0]) + "\x00" + string(p[1])
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

// TestMutateDuringQueryCrossval is the snapshot-isolation crossval: a writer
// commits mutation batches while readers evaluate concurrently; every
// in-flight result must be byte-identical to a rerun of the same query on
// the pinned snapshot it evaluated against (core.Response.G), post-commit
// queries must see the new version, and the write path must perform zero
// full-CSR rebuilds (compaction counter stays 0 below threshold).
func TestMutateDuringQueryCrossval(t *testing.T) {
	for _, tc := range []struct {
		name                string
		parallelism, shards int
	}{
		{"sequential", 1, 0},
		{"sharded-2", 1, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{
				Mutable:          true,
				Parallelism:      tc.parallelism,
				Shards:           tc.shards,
				CompactThreshold: 1 << 20, // never compact: proves no rebuilds on the write path
			})
			defer s.Close()
			base := gen.Random(80, 300, []string{"a", "b"}, 7)
			if _, err := s.register("g", base, false, false); err != nil {
				t.Fatal(err)
			}
			eng := s.Engine("g")
			h, _ := s.Store().Get("g")

			const batches = 60
			ctx := context.Background()
			req := core.Request{Query: "a.b*"}

			first, err := eng.QueryCtx(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			firstRendered := renderPairs(first)

			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // writer: one commit per batch, adds and removals mixed
				defer wg.Done()
				for i := 0; i < batches; i++ {
					muts := []graph.Mutation{{
						Op:    graph.MutAddEdge,
						ID:    fmt.Sprintf("w%d", i),
						Label: "a",
						Src:   string(base.Node(i % base.NumNodes()).ID),
						Tgt:   string(base.Node((i*13 + 7) % base.NumNodes()).ID),
					}}
					if i >= 10 && i%3 == 0 {
						muts = append(muts, graph.Mutation{
							Op: graph.MutRemoveEdge, ID: fmt.Sprintf("w%d", i-10),
						})
					}
					if _, err := h.Mutate(muts, 0); err != nil {
						t.Errorf("mutate %d: %v", i, err)
						return
					}
				}
			}()

			// Readers race the writer. Each query evaluates against whatever
			// snapshot the engine held when it started (Response.G); the
			// crossval reruns the query on exactly that pinned graph through
			// a fresh engine and demands byte-identical output.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 30; i++ {
						resp, err := eng.QueryCtx(ctx, req)
						if err != nil {
							t.Errorf("query: %v", err)
							return
						}
						pinned := core.New(resp.G)
						pinned.Parallelism = tc.parallelism
						pinned.Shards = tc.shards
						again, err := pinned.QueryCtx(ctx, req)
						if err != nil {
							t.Errorf("rerun on pinned snapshot: %v", err)
							return
						}
						if got, want := renderPairs(resp), renderPairs(again); got != want {
							t.Errorf("in-flight result diverges from pinned snapshot rerun (%d vs %d pairs)",
								len(resp.Pairs), len(again.Pairs))
							return
						}
					}
				}()
			}
			wg.Wait()

			// Post-commit: the engine tracks the final version and its result
			// matches a rerun on the final snapshot.
			snap := h.Snapshot()
			if snap.Version != uint64(1+batches) {
				t.Fatalf("final version %d, want %d", snap.Version, 1+batches)
			}
			if eng.GraphRev() != snap.Rev {
				t.Fatalf("engine rev %d lags store rev %d", eng.GraphRev(), snap.Rev)
			}
			final, err := eng.QueryCtx(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if renderPairs(final) == firstRendered {
				t.Fatal("post-commit query still returns the pre-mutation result")
			}
			finalEng := core.New(snap.G)
			finalEng.Parallelism = tc.parallelism
			finalEng.Shards = tc.shards
			again, err := finalEng.QueryCtx(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if renderPairs(final) != renderPairs(again) {
				t.Fatal("post-commit result diverges from final snapshot")
			}

			// Zero full-CSR rebuilds on the write path: nothing compacted,
			// every committed op still sits in the delta log.
			st := h.Status()
			if st.Compactions != 0 {
				t.Fatalf("write path triggered %d compactions, want 0", st.Compactions)
			}
			if st.DeltaOps == 0 {
				t.Fatal("delta log empty: writes were not applied as deltas")
			}
			// All pins released once the queries drained.
			if st.Pins != 0 {
				t.Fatalf("leaked snapshot pins: %d", st.Pins)
			}
		})
	}
}
