package server

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkE17_Streaming compares the two delivery paths end to end on a
// large scale-free result (a* over the giant strongly connected core:
// roughly n² pairs): "buffered" materializes the whole QueryResponse and
// reads one JSON body, "streamed" drains the chunked NDJSON response. Both
// sides read the full result through HTTP, so the delta isolates delivery
// — peak memory and time-to-first-row are the streamed path's wins; the
// per-row encoding work is identical by construction (byte-identical
// rows).
func BenchmarkE17_Streaming(b *testing.B) {
	s := New(Config{})
	if err := s.LoadNamed("scalefree-1000"); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	const body = `{"graph":"scalefree-1000","query":"a*"}`

	b.Run("buffered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			n, err := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d err %v", resp.StatusCode, err)
			}
			b.SetBytes(n)
		}
	})
	b.Run("streamed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(body))
			req.Header.Set("Accept", "application/x-ndjson")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			n, err := io.Copy(io.Discard, bufio.NewReaderSize(resp.Body, 1<<16))
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d err %v", resp.StatusCode, err)
			}
			b.SetBytes(n)
		}
	})
}
