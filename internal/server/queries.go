package server

import (
	"net/http"
	"strconv"
)

// Live query introspection endpoints.
//
//	GET  /v1/queries              in-flight queries, sampled from Progress
//	GET  /v1/queries/recent       ring buffer of recently completed queries
//	POST /v1/queries/{id}/cancel  cooperative kill of one in-flight query
//
// The paper's complexity results (Propositions 22–24, Example 28) mean a
// graph query can silently sweep tens of millions of product states; these
// endpoints let an operator see that while it happens — and stop it —
// without restarting the daemon. A kill cancels the query's context with
// obs.ErrKilled as the cause, so it dies through the same cooperative
// ErrCanceled path as a disconnect or deadline (no partial results), but
// is reported with the distinct "killed" outcome everywhere: the query's
// own error reply, /v1/queries/recent, the query event log, and statz.

// handleQueries samples every in-flight query, sorted by ID.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"queries": s.registry.Live()})
}

// handleQueriesRecent returns the completed-query ring, newest first.
func (s *Server) handleQueriesRecent(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"queries": s.registry.Recent()})
}

// handleQueryCancel kills one in-flight query by ID. 404 when no live
// query has that ID (unknown, or already finished — finished queries
// cannot be killed retroactively).
func (s *Server) handleQueryCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", "bad query id: "+r.PathValue("id"))
		return
	}
	if !s.registry.Kill(id) {
		s.writeError(w, http.StatusNotFound, "unknown_query",
			"no in-flight query with id "+strconv.FormatUint(id, 10))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"id": id, "killed": true})
}
