package server

import (
	"encoding/json"
	"time"

	"graphquery/internal/core"
	"graphquery/internal/obs"
)

// The structured query event log. Every admitted query — success, timeout,
// budget kill, client abort, operator kill — is folded into exactly one
// obs.CompletedQuery record by buildRecord, and that one record feeds three
// sinks: the JSONL query log (Config.QueryLog), the slow-query WARN (a
// threshold filter over the same record), and the registry's recent-queries
// ring (GET /v1/queries/recent). One builder, three sinks: the views cannot
// drift.

// buildRecord assembles the completion record of one admitted query. The
// trace supplies the plan line, span timings, and (for errored queries,
// which have no Response) the budget consumption the query racked up before
// it died.
func buildRecord(act *obs.Active, outcome string, err error, elapsed time.Duration, tr *obs.Trace, resp *core.Response) obs.CompletedQuery {
	spans := tr.Spans()
	states, rows := obs.TotalStates(spans), obs.TotalRows(spans)
	var graphRev uint64
	var analyze any
	if resp != nil {
		states, rows = resp.StatesVisited, resp.RowsProduced
		graphRev = resp.GraphRev
		if resp.Analyze != nil {
			analyze = resp.Analyze
		}
	}
	rec := obs.CompletedQuery{
		ID:        act.ID,
		Graph:     act.Graph,
		GraphRev:  graphRev,
		Query:     act.Query,
		Lang:      act.Lang,
		Outcome:   outcome,
		Plan:      tr.Attr("plan"),
		StartedAt: act.Started,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		States:    states,
		Rows:      rows,
		Spans:     spans,
		Analyze:   analyze,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	return rec
}

// logQuery writes rec to the query event log (one JSONL line per admitted
// query) when one is configured, and emits the slow-query WARN when the
// threshold is configured and elapsed reaches it.
func (s *Server) logQuery(rec obs.CompletedQuery, elapsed time.Duration) {
	if s.cfg.QueryLog != nil {
		s.logMu.Lock()
		enc := json.NewEncoder(s.cfg.QueryLog)
		enc.SetEscapeHTML(false)
		_ = enc.Encode(rec) // Encode appends the newline: one record per line
		s.logMu.Unlock()
	}
	if s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery {
		attrs := []any{
			"id", rec.ID,
			"graph", rec.Graph,
			"query", rec.Query,
			"elapsed_ms", rec.ElapsedMS,
			"outcome", rec.Outcome,
			"plan", rec.Plan,
			"spans", obs.SpansString(rec.Spans),
			"states", rec.States,
			"rows", rec.Rows,
		}
		// Analyze-mode slow queries carry their annotated plan: the
		// estimate-vs-actual audit is most valuable exactly when a query was
		// slower than the planner thought it would be.
		if rec.Analyze != nil {
			if b, err := json.Marshal(rec.Analyze); err == nil {
				attrs = append(attrs, "analyze", string(b))
			}
		}
		s.logger().Warn("slow query", attrs...)
	}
}

// observeStages folds one finished query's span durations into the
// per-stage latency histograms (gq_stage_duration_seconds).
func (s *Server) observeStages(spans []obs.Span) {
	for _, sp := range spans {
		for i, name := range stageNames {
			if sp.Name == name {
				s.stageLatency[i].Observe(time.Duration(sp.DurNS).Seconds())
				break
			}
		}
	}
}
