package server

import (
	"net/http"
	"runtime"
	"sort"

	"graphquery/internal/obs"
	"graphquery/internal/store"
)

// GET /metrics: the Prometheus text-format view of the server. Every value
// is rendered from one Stats() snapshot — the same snapshot function behind
// /v1/statz — so the two endpoints cannot drift; the only metric with no
// statz counterpart is the latency histogram, which has no JSON rendering.
//
// Naming maps 1:1 onto ServerStats fields: monotonic counters get a
// _total suffix (gq_accepted_total ↔ "accepted"), point-in-time values are
// gauges (gq_in_flight, gq_queued), per-graph families carry a graph
// label, and gq_query_duration_seconds is the admitted-query wall-clock
// histogram (queue wait included).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := obs.NewMetricWriter(w)

	m.Counter("gq_accepted_total", "Queries admitted past the concurrency limiter.", st.Accepted, nil)
	m.Counter("gq_completed_total", "Queries that finished with a 200.", st.Completed, nil)
	m.Counter("gq_canceled_total", "Queries aborted by the client (499).", st.Canceled, nil)
	m.Counter("gq_killed_total", "Queries killed via POST /v1/queries/{id}/cancel.", st.Killed, nil)
	m.Counter("gq_timeouts_total", "Queries that exceeded their deadline (504).", st.Timeouts, nil)
	m.Counter("gq_budget_exceeded_total", "Queries that exhausted a resource budget (422).", st.BudgetExceeded, nil)
	m.Counter("gq_rejected_total", "Queries rejected by admission control (429).", st.Rejected, nil)
	m.Counter("gq_errors_total", "Queries rejected as invalid or failed internally.", st.Errors, nil)
	m.Gauge("gq_in_flight", "Queries evaluating right now.", st.InFlight, nil)
	m.Gauge("gq_queued", "Admissions waiting for a concurrency slot.", st.Queued, nil)
	m.Counter("gq_states_visited_total", "Product states expanded, summed over queries.", st.StatesVisited, nil)
	m.Counter("gq_rows_returned_total", "Result rows returned, summed over queries.", st.RowsReturned, nil)
	m.Counter("gq_rows_streamed_total", "Result rows handed to streamed (NDJSON) responses.", st.RowsStreamed, nil)
	m.Counter("gq_write_errors_total", "Response encode/write failures, buffered and streamed.", st.WriteErrors, nil)

	// Per-kind completions: one family, one label set per response kind,
	// same fixed kind list as /v1/statz's "kinds" object.
	m.Family("gq_queries_total", "Completed queries by response kind.", "counter")
	for _, kind := range kindNames {
		m.Sample("gq_queries_total", st.Kinds[kind], map[string]string{"kind": kind})
	}

	names := make([]string, 0, len(st.Graphs))
	for name := range st.Graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, fam := range graphFamilies {
		m.Family(fam.name, fam.help, fam.typ)
		for _, name := range names {
			m.Sample(fam.name, fam.value(st.Graphs[name]), map[string]string{"graph": name})
		}
	}

	// Plan mispicks: one family, a {graph,knob} label set per audited plan
	// knob. Every knob is rendered for every graph (zeros included) so
	// dashboards see stable series from the first scrape.
	m.Family("gq_plan_mispick_total",
		"Plan-knob choices contradicted by measured actuals, from analyze-mode audits.", "counter")
	for _, name := range names {
		rt := st.Graphs[name].Runtime
		for _, k := range [...]struct {
			knob  string
			value int64
		}{
			{"direction", rt.MispickDirection},
			{"scan", rt.MispickScan},
			{"frontier", rt.MispickFrontier},
			{"shards", rt.MispickShards},
		} {
			m.Sample("gq_plan_mispick_total", k.value, map[string]string{"graph": name, "knob": k.knob})
		}
	}

	// Cardinality-feedback aggregates: the decayed estimate-vs-actual record
	// store each engine accumulates from analyze-mode queries.
	m.Family("gq_cardest_feedback_records_total",
		"Estimate-vs-actual observations deposited by analyze-mode queries.", "counter")
	for _, name := range names {
		m.Sample("gq_cardest_feedback_records_total", st.Graphs[name].Feedback.Records,
			map[string]string{"graph": name})
	}
	m.Family("gq_cardest_feedback_exprs",
		"Distinct expressions tracked by the cardinality feedback store.", "gauge")
	for _, name := range names {
		m.Sample("gq_cardest_feedback_exprs", int64(st.Graphs[name].Feedback.Exprs),
			map[string]string{"graph": name})
	}
	m.Family("gq_cardest_feedback_mean_qerror",
		"Decayed geometric-mean q-error of cardinality estimates.", "gauge")
	for _, name := range names {
		m.SampleFloat("gq_cardest_feedback_mean_qerror", st.Graphs[name].Feedback.MeanQError,
			map[string]string{"graph": name})
	}
	m.Family("gq_cardest_feedback_max_qerror",
		"Largest q-error a cardinality estimate ever reached.", "gauge")
	for _, name := range names {
		m.SampleFloat("gq_cardest_feedback_max_qerror", st.Graphs[name].Feedback.MaxQError,
			map[string]string{"graph": name})
	}

	// Live-store families: the aggregate counters, then per-graph status
	// under a graph label — all from the same Stats() snapshot, so they
	// match /v1/statz's "store" object exactly.
	m.Gauge("gq_store_graphs", "Graphs owned by the live store.", int64(st.Store.Graphs), nil)
	m.Counter("gq_store_loads_total", "Graphs bulk-loaded into the store.", st.Store.Loads, nil)
	m.Counter("gq_store_deletes_total", "Graphs deleted from the store.", st.Store.Deletes, nil)
	m.Counter("gq_store_mutation_batches_total", "Mutation batches committed.", st.Store.MutationBatches, nil)
	m.Counter("gq_store_mutation_ops_total", "Individual mutation operations committed.", st.Store.MutationOps, nil)
	m.Counter("gq_store_compactions_total", "Background delta-log compactions completed.", st.Store.Compactions, nil)
	for _, fam := range storeGraphFamilies {
		m.Family(fam.name, fam.help, fam.typ)
		for _, gs := range st.Store.PerGraph {
			m.Sample(fam.name, fam.value(gs), map[string]string{"graph": gs.Name})
		}
	}

	m.Histogram("gq_query_duration_seconds",
		"Wall-clock of admitted queries, queue wait included.", s.latency, nil)

	m.Histogram("gq_cardest_qerror",
		"Root estimate-vs-actual q-error of analyze-mode queries.", s.qerror, nil)

	// Go runtime health, from one ReadMemStats snapshot per scrape (stop-
	// the-world, microseconds at these heap sizes — fine at scrape cadence).
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Gauge("gq_go_goroutines", "Goroutines currently live.", int64(runtime.NumGoroutine()), nil)
	m.Gauge("gq_go_heap_alloc_bytes", "Bytes of allocated heap objects.", int64(ms.HeapAlloc), nil)
	m.Family("gq_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "counter")
	m.SampleFloat("gq_go_gc_pause_seconds_total", float64(ms.PauseTotalNs)/1e9, nil)

	// Per-stage latency: one family, one label set per evaluation stage.
	// Stage durations are recorded from the same trace spans the query
	// record carries, so sum(gq_stage_duration_seconds_sum) never exceeds
	// gq_query_duration_seconds_sum (stages are within the wall-clock).
	m.Family("gq_stage_duration_seconds",
		"Duration of each evaluation stage across admitted queries.", "histogram")
	for i, name := range stageNames {
		m.HistogramSample("gq_stage_duration_seconds", s.stageLatency[i],
			map[string]string{"stage": name})
	}
}

// qErrorBuckets are the gq_cardest_qerror histogram bounds: powers of two
// from exact (q-error is >= 1 by construction) through four orders of
// magnitude — the range where an estimate goes from trustworthy to useless.
func qErrorBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384}
}

// graphFamilies are the per-graph metric families, each one field of
// GraphStats under a graph label.
var graphFamilies = []struct {
	name, help, typ string
	value           func(GraphStats) int64
}{
	{"gq_graph_nodes", "Nodes in the graph.", "gauge",
		func(g GraphStats) int64 { return int64(g.Nodes) }},
	{"gq_graph_edges", "Edges in the graph.", "gauge",
		func(g GraphStats) int64 { return int64(g.Edges) }},
	{"gq_plan_cache_hits_total", "Plan-cache lookups answered from cache.", "counter",
		func(g GraphStats) int64 { return g.Cache.Hits }},
	{"gq_plan_cache_misses_total", "Plan-cache lookups that had to compile.", "counter",
		func(g GraphStats) int64 { return g.Cache.Misses }},
	{"gq_plan_cache_evictions_total", "Plans dropped by the LRU bound.", "counter",
		func(g GraphStats) int64 { return g.Cache.Evictions }},
	{"gq_plan_cache_size", "Plans currently cached.", "gauge",
		func(g GraphStats) int64 { return int64(g.Cache.Size) }},
	{"gq_plan_cache_capacity", "Maximum plans retained.", "gauge",
		func(g GraphStats) int64 { return int64(g.Cache.Capacity) }},
	{"gq_runtime_states_expanded_total", "Product states expanded by the kernel.", "counter",
		func(g GraphStats) int64 { return g.Runtime.StatesExpanded }},
	{"gq_runtime_edges_scanned_total", "Graph edges scanned by the kernel.", "counter",
		func(g GraphStats) int64 { return g.Runtime.EdgesScanned }},
	{"gq_runtime_frontier_peak", "Largest BFS frontier observed.", "gauge",
		func(g GraphStats) int64 { return g.Runtime.FrontierPeak }},
	{"gq_runtime_plan_forward_total", "Kernel sweeps under a forward plan.", "counter",
		func(g GraphStats) int64 { return g.Runtime.PlanForward }},
	{"gq_runtime_plan_backward_total", "Kernel sweeps under a backward plan.", "counter",
		func(g GraphStats) int64 { return g.Runtime.PlanBackward }},
	{"gq_runtime_plan_indexed_total", "Kernel sweeps using the label index.", "counter",
		func(g GraphStats) int64 { return g.Runtime.PlanIndexed }},
	{"gq_runtime_plan_dense_total", "Kernel sweeps using dense scans.", "counter",
		func(g GraphStats) int64 { return g.Runtime.PlanDense }},
	{"gq_runtime_plan_parallel_total", "Kernel sweeps fanned out in parallel.", "counter",
		func(g GraphStats) int64 { return g.Runtime.PlanParallel }},
	{"gq_runtime_plan_sequential_total", "Kernel sweeps run sequentially.", "counter",
		func(g GraphStats) int64 { return g.Runtime.PlanSequential }},
	{"gq_runtime_plan_frontier_total", "Queries routed through the frontier engine.", "counter",
		func(g GraphStats) int64 { return g.Runtime.PlanFrontier }},
	{"gq_runtime_plan_sharded_total", "Queries run with more than one kernel shard.", "counter",
		func(g GraphStats) int64 { return g.Runtime.PlanSharded }},
	{"gq_runtime_shard_sweeps_total", "Shard sweep loops run by the kernel.", "counter",
		func(g GraphStats) int64 { return g.Runtime.ShardSweeps }},
}

// storeGraphFamilies are the per-graph live-store families, each one field
// of store.GraphStatus under a graph label.
var storeGraphFamilies = []struct {
	name, help, typ string
	value           func(store.GraphStatus) int64
}{
	{"gq_store_graph_version", "Client-visible commit counter of the graph.", "gauge",
		func(g store.GraphStatus) int64 { return int64(g.Version) }},
	{"gq_store_graph_rev", "Snapshot revision (bumps on commits and compactions).", "gauge",
		func(g store.GraphStatus) int64 { return int64(g.Rev) }},
	{"gq_store_graph_delta_ops", "Mutations in the delta log awaiting compaction.", "gauge",
		func(g store.GraphStatus) int64 { return int64(g.DeltaOps) }},
	{"gq_store_graph_compactions_total", "Delta-log compactions folded into this graph.", "counter",
		func(g store.GraphStatus) int64 { return g.Compactions }},
	{"gq_store_graph_pins", "Snapshots pinned by in-flight queries.", "gauge",
		func(g store.GraphStatus) int64 { return g.Pins }},
	{"gq_store_graph_live_nodes", "Live (non-tombstoned) nodes.", "gauge",
		func(g store.GraphStatus) int64 { return int64(g.LiveNodes) }},
	{"gq_store_graph_live_edges", "Live (non-tombstoned) edges.", "gauge",
		func(g store.GraphStatus) int64 { return int64(g.LiveEdges) }},
}
