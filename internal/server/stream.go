// Streaming result delivery: the NDJSON face of core.QueryStream.
//
// A streamed /v1/query (Accept: application/x-ndjson or "stream": true)
// answers 200 with one JSON value per line:
//
//	{"graph":"bank","kind":"pairs"}            header: kind + column names
//	["a1","a7"]                                 rows: bare JSON values —
//	["a1","a9"]                                 arrays or strings, never
//	...                                         objects
//	{"trailer":{"status":"ok","count":…}}       trailer: outcome, counts,
//	                                            next_cursor
//
// Rows are encoded into chunks of Config.StreamChunk rows; chunks travel
// to the response writer through a bounded channel of Config.StreamBuffer
// entries, so a slow client throttles evaluation (backpressure) instead of
// letting results pile up — memory per query is O(chunk), not O(result).
//
// The error taxonomy survives mid-stream: until the first chunk is flushed
// nothing has been written, and failures surface as the ordinary status +
// error envelope; after the first chunk the 200 header is gone, so the
// outcome — ok, budget_exceeded, timeout, killed, canceled, internal — is
// reported as the in-band trailer record instead, with the same code the
// envelope would have carried. Rows encoded but never flushed when an
// error hits are dropped: like the buffered path, an error voids results
// the client does not already have.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"graphquery/internal/core"
	"graphquery/internal/eval"
	"graphquery/internal/obs"
)

// streamHeader is the first line of a streamed response.
type streamHeader struct {
	Graph string `json:"graph"`
	Kind  string `json:"kind"`
	// Columns is the column header for kinds "rows" and "relation" — the
	// buffered response's "columns" field.
	Columns []string `json:"columns,omitempty"`
}

// streamTrailer is the last line of a streamed response, wrapped under a
// "trailer" key so it cannot be mistaken for a row (rows are never
// objects). Status is "ok" or "error"; Code carries the same
// machine-readable code the error envelope would have used.
type streamTrailer struct {
	Status        string  `json:"status"`
	Code          string  `json:"code,omitempty"`
	Message       string  `json:"message,omitempty"`
	Count         int     `json:"count"`
	StatesVisited int64   `json:"states_visited"`
	RowsProduced  int64   `json:"rows_produced"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	NextCursor    string  `json:"next_cursor,omitempty"`
}

type trailerLine struct {
	Trailer streamTrailer `json:"trailer"`
}

// cursorSpec is a parsed pagination cursor: skip rows already delivered,
// then deliver up to page rows. rev pins the graph revision the offsets
// count against (check is false for the "start" token, which accepts the
// current revision).
type cursorSpec struct {
	active bool
	skip   int
	page   int
	rev    uint64
	check  bool
}

// parseCursor validates a cursor token: "start" opens page one (page size
// = the request's limit), "v<rev>:<offset>" resumes at offset against
// graph revision rev. The second return is "" on success, else the
// invalid_request message.
func parseCursor(token string, limit int) (cursorSpec, string) {
	if token == "start" {
		return cursorSpec{active: true, page: limit}, ""
	}
	bad := "bad cursor " + strconvQuote(token) + `: want "start" or "v<rev>:<offset>"`
	rest, ok := strings.CutPrefix(token, "v")
	colon := strings.IndexByte(rest, ':')
	if !ok || colon < 0 {
		return cursorSpec{}, bad
	}
	rev, err1 := strconv.ParseUint(rest[:colon], 10, 64)
	off, err2 := strconv.Atoi(rest[colon+1:])
	if err1 != nil || err2 != nil || off < 0 {
		return cursorSpec{}, bad
	}
	return cursorSpec{active: true, skip: off, page: limit, rev: rev, check: true}, ""
}

// wantsNDJSON reports whether the request asked for streamed delivery via
// its Accept header.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// streamer adapts one HTTP response to core.Sink. The evaluation side
// (Begin/Row, called by the engine, possibly from worker goroutines but
// never concurrently) encodes rows into a chunk buffer and hands full
// chunks to the writer goroutine over the bounded channel; the writer owns
// the http.ResponseWriter exclusively from the first chunk on. finish,
// called by the handler after evaluation has fully joined, appends the
// trailer and drains the writer.
type streamer struct {
	s     *Server
	w     http.ResponseWriter
	ctx   context.Context
	tr    *obs.Trace
	prog  *obs.Progress
	graph string
	chunk int
	cur   cursorSpec
	skip  int // remaining cursor rows to drop

	began     bool // Begin was called: the query produces a streamable kind
	started   bool // first chunk handed to the writer: the 200 is on the wire
	rows      int  // rows delivered past the cursor skip
	truncated bool // the sink stopped evaluation at the page bound

	buf     bytes.Buffer
	enc     *json.Encoder
	bufRows int

	ch   chan []byte
	dead chan struct{} // closed by the writer after a failed client write
	done chan struct{} // closed when the writer goroutine exits
	werr error         // the failed write's error; read only after dead/done
}

func (s *Server) newStreamer(w http.ResponseWriter, ctx context.Context, tr *obs.Trace, prog *obs.Progress, graphName string, cur cursorSpec) *streamer {
	st := &streamer{
		s: s, w: w, ctx: ctx, tr: tr, prog: prog, graph: graphName,
		chunk: s.streamChunk(), cur: cur, skip: cur.skip,
	}
	st.enc = json.NewEncoder(&st.buf)
	st.enc.SetEscapeHTML(false)
	return st
}

func (s *Server) streamChunk() int {
	if s.cfg.StreamChunk > 0 {
		return s.cfg.StreamChunk
	}
	return defaultStreamChunk
}

func (s *Server) streamBuffer() int {
	if s.cfg.StreamBuffer > 0 {
		return s.cfg.StreamBuffer
	}
	return defaultStreamBuffer
}

// Begin implements core.Sink: the header becomes the first line of the
// first chunk (nothing is written to the client yet).
func (st *streamer) Begin(kind string, columns []string) error {
	st.began = true
	return st.enc.Encode(streamHeader{Graph: st.graph, Kind: kind, Columns: columns})
}

// Row implements core.Sink: drop the cursor skip, stop at the page bound,
// otherwise encode the row and flush the chunk when full. Each encoded row
// uses the same encoder settings as the buffered writeJSON, so streamed
// rows are byte-identical to the buffered response's array elements.
func (st *streamer) Row(v any) error {
	if st.skip > 0 {
		st.skip--
		return nil
	}
	if st.cur.active && st.cur.page > 0 && st.rows >= st.cur.page {
		st.truncated = true
		return core.ErrStopStream
	}
	if err := st.enc.Encode(v); err != nil {
		return err
	}
	st.rows++
	st.bufRows++
	st.s.stats.rowsStreamed.Add(1)
	st.prog.AddStreamed(1)
	if st.bufRows >= st.chunk {
		return st.flush()
	}
	return nil
}

// sent reports whether any chunk reached the writer — the point of no
// return: the 200 header is on the wire, and outcomes must be reported
// in-band from here on.
func (st *streamer) sent() bool { return st.started }

// flush hands the buffered chunk to the writer goroutine. The bounded
// channel is the backpressure edge: when the client reads slower than
// evaluation produces, this send blocks and, through the kernel fan-out's
// emit ordering, parks the evaluation workers.
func (st *streamer) flush() error {
	if st.buf.Len() == 0 {
		return nil
	}
	st.start()
	chunk := make([]byte, st.buf.Len())
	copy(chunk, st.buf.Bytes())
	st.buf.Reset()
	st.bufRows = 0
	select {
	case <-st.dead:
		return st.clientGone()
	default:
	}
	select {
	case st.ch <- chunk:
		return nil
	case <-st.dead:
		return st.clientGone()
	case <-st.ctx.Done():
		// Deadline, client disconnect, or operator kill while blocked on a
		// full chunk buffer: surface the cause so the taxonomy (timeout /
		// canceled / killed) is preserved; the chunk is dropped.
		return fmt.Errorf("%w: %w", eval.ErrCanceled, context.Cause(st.ctx))
	}
}

// clientGone maps a failed response write into the cancellation taxonomy:
// the client is not reading anymore, so evaluation stops through the same
// ErrCanceled path as a disconnect detected by the request context.
func (st *streamer) clientGone() error {
	return fmt.Errorf("%w: client write failed: %w", eval.ErrCanceled, st.werr)
}

// start launches the writer goroutine on the first chunk. From here on the
// writer owns the ResponseWriter; the handler goroutine never touches it
// again.
func (st *streamer) start() {
	if st.started {
		return
	}
	st.started = true
	st.ch = make(chan []byte, st.s.streamBuffer())
	st.dead = make(chan struct{})
	st.done = make(chan struct{})
	st.w.Header().Set("Content-Type", "application/x-ndjson")
	go st.write()
}

func (st *streamer) write() {
	defer close(st.done)
	st.w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(st.w)
	failed := false
	for chunk := range st.ch {
		if failed {
			continue // keep draining so flush never blocks on a dead client
		}
		if _, err := st.w.Write(chunk); err != nil {
			st.werr = err
			st.s.stats.writeErrors.Add(1)
			st.s.logger().Warn("stream write failed", "graph", st.graph, "err", err)
			failed = true
			close(st.dead)
			continue
		}
		// Flush per chunk so the client sees rows as they are produced —
		// the whole point of streaming — rather than at net/http's buffer
		// boundaries.
		_ = rc.Flush()
	}
}

// finish appends the trailer, flushes everything still buffered (on
// success) or the trailer alone (on error), and joins the writer. Called
// exactly once, by the handler, after evaluation returned — so no Row call
// can race it. The delivery drain is recorded as the "stream" stage span
// carrying the streamed-row count.
func (st *streamer) finish(t streamTrailer) {
	sp := st.tr.Start("stream")
	if t.Status != "ok" {
		st.buf.Reset()
		st.bufRows = 0
	}
	_ = st.enc.Encode(trailerLine{Trailer: t})
	st.start()
	chunk := make([]byte, st.buf.Len())
	copy(chunk, st.buf.Bytes())
	st.buf.Reset()
	st.ch <- chunk
	close(st.ch)
	<-st.done
	sp.Counts(0, int64(st.rows)).End()
}

// nextCursor returns the resume token for the page after this one, or ""
// when paging is off or the page did not fill. The token pins the graph
// revision the offsets count against: evaluation is deterministic, so
// offset resumption is exact on the same snapshot, and a later revision
// rejects the token (409 cursor_stale) instead of silently skewing pages.
func (st *streamer) nextCursor(rev uint64) string {
	if !st.cur.active || st.cur.page <= 0 || st.rows < st.cur.page {
		return ""
	}
	return fmt.Sprintf("v%d:%d", rev, st.cur.skip+st.cur.page)
}

// evaluateStream is evaluate with delivery through a sink: same deadline
// resolution, same accounting, core.QueryStream instead of core.QueryCtx.
func (s *Server) evaluateStream(ctx context.Context, e *core.Engine, req core.Request, timeout time.Duration, sink core.Sink) (*core.Response, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, timeout,
			fmt.Errorf("%w: query deadline %v exceeded", context.DeadlineExceeded, timeout))
		defer cancel()
	}
	resp, err := e.QueryStream(ctx, req, sink)
	if resp != nil {
		s.stats.statesVisited.Add(resp.StatesVisited)
		s.stats.rowsReturned.Add(int64(resp.Count()))
	}
	return resp, err
}
