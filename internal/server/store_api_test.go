package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// doJSON sends one request with a JSON body and decodes the JSON reply
// (success or error envelope) into a generic map.
func doJSON(t *testing.T, ts *httptest.Server, method, path, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("%s %s: response %d is not JSON: %v\n%s", method, path, resp.StatusCode, err, raw)
	}
	return resp.StatusCode, m
}

// triangleDoc is a 3-node a-labeled cycle in the bulk-load wire format.
const triangleDoc = `{
	"nodes": [{"id":"v0","label":"person"},{"id":"v1","label":"person"},{"id":"v2","label":"person"}],
	"edges": [
		{"id":"e0","label":"a","src":"v0","tgt":"v1"},
		{"id":"e1","label":"a","src":"v1","tgt":"v2"},
		{"id":"e2","label":"a","src":"v2","tgt":"v0"}
	]
}`

func TestStoreLoadMutateExport(t *testing.T) {
	_, ts := newTestServer(t, Config{Mutable: true})

	// Load.
	status, m := doJSON(t, ts, "POST", "/v1/graphs",
		`{"name":"tri","graph":`+triangleDoc+`}`)
	if status != http.StatusCreated {
		t.Fatalf("load: status %d: %v", status, m)
	}
	if m["version"].(float64) != 1 || m["nodes"].(float64) != 3 || m["edges"].(float64) != 3 {
		t.Fatalf("load reply: %v", m)
	}

	// The loaded graph serves queries.
	status, m = post(t, ts, `{"graph":"tri","query":"a.a.a"}`)
	if status != http.StatusOK || m["count"].(float64) != 3 {
		t.Fatalf("query pre-mutate: status %d, %v", status, m)
	}

	// Mutate: break the cycle, add a reroute through a new node.
	status, m = doJSON(t, ts, "POST", "/v1/graphs/tri/mutate", `{
		"if_version": 1,
		"ops": [
			{"op":"remove_edge","id":"e2"},
			{"op":"add_node","id":"v3","label":"person","props":{"name":{"kind":"string","string":"dana"}}},
			{"op":"add_edge","id":"e3","label":"a","src":"v2","tgt":"v3"},
			{"op":"add_edge","id":"e4","label":"a","src":"v3","tgt":"v0"}
		]
	}`)
	if status != http.StatusOK {
		t.Fatalf("mutate: status %d: %v", status, m)
	}
	if m["version"].(float64) != 2 || m["applied"].(float64) != 4 ||
		m["nodes"].(float64) != 4 || m["edges"].(float64) != 4 {
		t.Fatalf("mutate reply: %v", m)
	}

	// Post-commit queries see the new version: the cycle is now length 4.
	status, m = post(t, ts, `{"graph":"tri","query":"a.a.a"}`)
	if status != http.StatusOK || m["count"].(float64) != 4 {
		t.Fatalf("query post-mutate: status %d, %v", status, m)
	}

	// Export round-trips the mutated state: live elements only.
	resp, err := http.Get(ts.URL + "/v1/graphs/tri/export")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d: %s", resp.StatusCode, raw)
	}
	var doc struct {
		Nodes []map[string]any `json:"nodes"`
		Edges []map[string]any `json:"edges"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export not JSON: %v\n%s", err, raw)
	}
	if len(doc.Nodes) != 4 || len(doc.Edges) != 4 {
		t.Fatalf("export sizes: %d nodes, %d edges\n%s", len(doc.Nodes), len(doc.Edges), raw)
	}
	for _, e := range doc.Edges {
		if e["id"] == "e2" {
			t.Fatalf("export contains removed edge e2: %s", raw)
		}
	}

	// CSV export by part.
	for part, wantLines := range map[string]int{"nodes": 5, "edges": 5} { // header + 4
		resp, err := http.Get(ts.URL + "/v1/graphs/tri/export?format=csv&part=" + part)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("csv export %s: status %d: %s", part, resp.StatusCode, raw)
		}
		if got := strings.Count(strings.TrimRight(string(raw), "\n"), "\n") + 1; got != wantLines {
			t.Fatalf("csv export %s: %d lines, want %d:\n%s", part, got, wantLines, raw)
		}
	}

	// Delete; the graph is gone from both surfaces.
	status, m = doJSON(t, ts, "DELETE", "/v1/graphs/tri", "")
	if status != http.StatusOK {
		t.Fatalf("delete: status %d: %v", status, m)
	}
	status, m = post(t, ts, `{"graph":"tri","query":"a"}`)
	if status != http.StatusNotFound || errorCode(t, m) != "unknown_graph" {
		t.Fatalf("query after delete: status %d, %v", status, m)
	}
}

func TestStoreCSVLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{Mutable: true})
	body := `{"name":"csvg","format":"csv",
		"nodes_csv":"id,label\nn0,x\nn1,x\n",
		"edges_csv":"id,label,src,tgt\ne0,a,n0,n1\n"}`
	status, m := doJSON(t, ts, "POST", "/v1/graphs", body)
	if status != http.StatusCreated || m["nodes"].(float64) != 2 || m["edges"].(float64) != 1 {
		t.Fatalf("csv load: status %d: %v", status, m)
	}
	status, m = post(t, ts, `{"graph":"csvg","query":"a"}`)
	if status != http.StatusOK || m["count"].(float64) != 1 {
		t.Fatalf("query: status %d, %v", status, m)
	}
}

// TestStoreWriteTaxonomy pins the write-surface error envelope: every
// failure class answers its documented status and machine-readable code.
func TestStoreWriteTaxonomy(t *testing.T) {
	t.Run("read_only_server", func(t *testing.T) {
		_, ts := newTestServer(t, Config{}, "bank") // not Mutable
		for _, c := range []struct{ method, path string }{
			{"POST", "/v1/graphs"},
			{"POST", "/v1/graphs/bank/mutate"},
			{"DELETE", "/v1/graphs/bank"},
		} {
			status, m := doJSON(t, ts, c.method, c.path, `{}`)
			if status != http.StatusMethodNotAllowed || errorCode(t, m) != "read_only" {
				t.Fatalf("%s %s: status %d, %v", c.method, c.path, status, m)
			}
		}
		// Export is a read: allowed on a read-only server.
		resp, err := http.Get(ts.URL + "/v1/graphs/bank/export")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("export on read-only server: status %d", resp.StatusCode)
		}
	})

	t.Run("graph_exists", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Mutable: true})
		body := `{"name":"dup","graph":` + triangleDoc + `}`
		if status, m := doJSON(t, ts, "POST", "/v1/graphs", body); status != http.StatusCreated {
			t.Fatalf("first load: status %d: %v", status, m)
		}
		status, m := doJSON(t, ts, "POST", "/v1/graphs", body)
		if status != http.StatusConflict || errorCode(t, m) != "graph_exists" {
			t.Fatalf("duplicate load: status %d, %v", status, m)
		}
	})

	t.Run("version_mismatch", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Mutable: true})
		doJSON(t, ts, "POST", "/v1/graphs", `{"name":"v","graph":`+triangleDoc+`}`)
		status, m := doJSON(t, ts, "POST", "/v1/graphs/v/mutate",
			`{"if_version":99,"ops":[{"op":"remove_edge","id":"e0"}]}`)
		if status != http.StatusConflict || errorCode(t, m) != "version_mismatch" {
			t.Fatalf("stale precondition: status %d, %v", status, m)
		}
	})

	t.Run("read_only_catalog_graph", func(t *testing.T) {
		// A mutable server still refuses writes to embedder-registered graphs.
		_, ts := newTestServer(t, Config{Mutable: true}, "bank")
		status, m := doJSON(t, ts, "POST", "/v1/graphs/bank/mutate",
			`{"ops":[{"op":"add_node","id":"z"}]}`)
		if status != http.StatusMethodNotAllowed || errorCode(t, m) != "read_only" {
			t.Fatalf("mutate catalog graph: status %d, %v", status, m)
		}
		status, m = doJSON(t, ts, "DELETE", "/v1/graphs/bank", "")
		if status != http.StatusMethodNotAllowed || errorCode(t, m) != "read_only" {
			t.Fatalf("delete catalog graph: status %d, %v", status, m)
		}
	})

	t.Run("too_large", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Mutable: true, MaxLoadBytes: 256})
		big := fmt.Sprintf(`{"name":"big","graph":{"nodes":[{"id":%q}],"edges":[]}}`,
			strings.Repeat("x", 512))
		status, m := doJSON(t, ts, "POST", "/v1/graphs", big)
		if status != http.StatusRequestEntityTooLarge || errorCode(t, m) != "too_large" {
			t.Fatalf("oversized load: status %d, %v", status, m)
		}
	})

	t.Run("unknown_graph", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Mutable: true})
		status, m := doJSON(t, ts, "POST", "/v1/graphs/none/mutate",
			`{"ops":[{"op":"add_node","id":"z"}]}`)
		if status != http.StatusNotFound || errorCode(t, m) != "unknown_graph" {
			t.Fatalf("mutate unknown: status %d, %v", status, m)
		}
		status, m = doJSON(t, ts, "DELETE", "/v1/graphs/none", "")
		if status != http.StatusNotFound || errorCode(t, m) != "unknown_graph" {
			t.Fatalf("delete unknown: status %d, %v", status, m)
		}
	})

	t.Run("invalid_requests", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Mutable: true})
		doJSON(t, ts, "POST", "/v1/graphs", `{"name":"g","graph":`+triangleDoc+`}`)
		for name, c := range map[string]struct{ path, body string }{
			"missing name":   {"/v1/graphs", `{"graph":{"nodes":[],"edges":[]}}`},
			"missing graph":  {"/v1/graphs", `{"name":"x"}`},
			"bad format":     {"/v1/graphs", `{"name":"x","format":"xml","graph":{}}`},
			"empty batch":    {"/v1/graphs/g/mutate", `{"ops":[]}`},
			"unknown op":     {"/v1/graphs/g/mutate", `{"ops":[{"op":"frobnicate","id":"z"}]}`},
			"dangling edge":  {"/v1/graphs/g/mutate", `{"ops":[{"op":"add_edge","id":"z","label":"a","src":"v0","tgt":"nope"}]}`},
			"duplicate node": {"/v1/graphs/g/mutate", `{"ops":[{"op":"add_node","id":"v0"}]}`},
		} {
			status, m := doJSON(t, ts, "POST", c.path, c.body)
			if status != http.StatusBadRequest || errorCode(t, m) != "invalid_request" {
				t.Fatalf("%s: status %d, %v", name, status, m)
			}
		}
	})
}

// TestStoreStatsAndMetrics asserts the /v1/statz store object and the
// gq_store_* metric families agree, straight from the same snapshot.
func TestStoreStatsAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Mutable: true})
	doJSON(t, ts, "POST", "/v1/graphs", `{"name":"m","graph":`+triangleDoc+`}`)
	doJSON(t, ts, "POST", "/v1/graphs/m/mutate", `{"ops":[{"op":"remove_edge","id":"e0"}]}`)
	doJSON(t, ts, "POST", "/v1/graphs/m/mutate", `{"ops":[{"op":"add_edge","id":"e9","label":"b","src":"v0","tgt":"v1"}]}`)

	st := s.Stats()
	if st.Store.Graphs != 1 || st.Store.Loads != 1 ||
		st.Store.MutationBatches != 2 || st.Store.MutationOps != 2 {
		t.Fatalf("store stats: %+v", st.Store)
	}
	if len(st.Store.PerGraph) != 1 || st.Store.PerGraph[0].Version != 3 ||
		st.Store.PerGraph[0].LiveEdges != 3 {
		t.Fatalf("per-graph status: %+v", st.Store.PerGraph)
	}

	// A query against the mutated graph stamps the snapshot's revision into
	// its completion record (rev 3: load + two commits).
	if status, m := post(t, ts, `{"graph":"m","query":"b"}`); status != http.StatusOK {
		t.Fatalf("query: status %d, %v", status, m)
	}
	recent := s.Registry().Recent()
	if len(recent) == 0 || recent[0].GraphRev != 3 {
		t.Fatalf("recent record graph_rev: %+v", recent)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"gq_store_graphs 1",
		"gq_store_loads_total 1",
		"gq_store_mutation_batches_total 2",
		"gq_store_mutation_ops_total 2",
		`gq_store_graph_version{graph="m"} 3`,
		`gq_store_graph_live_edges{graph="m"} 3`,
		`gq_store_graph_compactions_total{graph="m"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
