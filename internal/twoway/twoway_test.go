package twoway

import (
	"reflect"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/rpq"
)

func TestParseAndString(t *testing.T) {
	tests := []struct{ in, want string }{
		{"a", "a"},
		{"~a", "~a"},
		{"~a b", "~a b"},
		{"(~a | b)*", "(~a | b)*"},
		{"~_", "~_"},
		{"~!{a,b}", "~!{a,b}"},
		{"a{2,3}", "a{2,3}"},
		{"~a+", "~a+"},
	}
	for _, tc := range tests {
		e, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("Parse(%q) = %q, want %q", tc.in, got, tc.want)
		}
		e2, err := Parse(e.String())
		if err != nil || e2.String() != e.String() {
			t.Errorf("round trip %q failed: %v", e.String(), err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "~", "~(a)", "a{2,1}", "(a", "|", "!{"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

// TestCoOwnedAccounts: owner·~owner connects accounts sharing an owner —
// the classic 2RPQ example, on the Figure 2 graph (Megan owns a1 and a2).
func TestCoOwnedAccounts(t *testing.T) {
	g := gen.BankEdgeLabeled()
	pairs := Pairs(g, MustParse("owner ~owner"))
	set := map[[2]graph.NodeID]bool{}
	for _, pr := range pairs {
		set[[2]graph.NodeID{g.Node(pr[0]).ID, g.Node(pr[1]).ID}] = true
	}
	if !set[[2]graph.NodeID{"a1", "a2"}] || !set[[2]graph.NodeID{"a2", "a1"}] {
		t.Errorf("a1 and a2 share Megan: %v", set)
	}
	// Every account is trivially co-owned with itself.
	for _, a := range []graph.NodeID{"a1", "a2", "a3", "a4", "a5", "a6"} {
		if !set[[2]graph.NodeID{a, a}] {
			t.Errorf("(%s,%s) missing", a, a)
		}
	}
	// Accounts of different owners are not connected.
	if set[[2]graph.NodeID{"a1", "a3"}] {
		t.Error("a1 (Megan) and a3 (Mike) are not co-owned")
	}
}

func TestInverseReachability(t *testing.T) {
	// On a directed path, ~a walks backwards.
	g := gen.APath(3, "a")
	v3 := g.MustNode("v3")
	reach := ReachableFrom(g, MustParse("~a+"), v3)
	if len(reach) != 3 {
		t.Errorf("backward reach from v3 = %d nodes, want 3", len(reach))
	}
	// Mixed: (a | ~a)* reaches everything on a connected graph.
	reach = ReachableFrom(g, MustParse("(a | ~a)*"), g.MustNode("v1"))
	if len(reach) != 4 {
		t.Errorf("undirected closure = %d nodes, want 4", len(reach))
	}
}

func TestCheckAndWitness(t *testing.T) {
	g := gen.BankEdgeLabeled()
	mike, megan := g.MustNode("Mike"), g.MustNode("Megan")
	// Person-to-person: ~owner walks from Mike to his account, Transfer+
	// to one of Megan's accounts, owner up to Megan.
	e := MustParse("~owner Transfer+ owner")
	if !Check(g, e, mike, megan) {
		t.Fatal("Mike should connect to Megan through transfers")
	}
	seq, ok := Witness(g, e, mike, megan)
	if !ok || len(seq) < 4 {
		t.Fatalf("witness = %v, %v", seq, ok)
	}
	if seq[0] != mike || seq[len(seq)-1] != megan {
		t.Error("witness endpoints wrong")
	}
	if Check(g, MustParse("owner"), mike, megan) {
		t.Error("no forward owner edge from Mike")
	}
}

// TestForwardOnlyAgreesWithRPQ: without inverse atoms, 2RPQ evaluation
// coincides with the one-way evaluator.
func TestForwardOnlyAgreesWithRPQ(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		g := gen.Random(5, 9, []string{"a", "b"}, int64(trial)*7+3)
		for _, q := range []string{"a*", "a b", "(a | b)+", "a{2,3}"} {
			got := Pairs(g, MustParse(q))
			want := eval.Pairs(g, rpq.MustParse(q))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %q: 2RPQ %v vs RPQ %v", trial, q, got, want)
			}
		}
	}
}

// TestInverseAgainstReversedGraph: evaluating ~a on G equals evaluating a
// on the reversed graph.
func TestInverseAgainstReversedGraph(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		g := gen.Random(5, 9, []string{"a"}, int64(trial)*11+5)
		rev := reverse(g)
		got := Pairs(g, MustParse("~a+"))
		want := eval.Pairs(rev, rpq.MustParse("a+"))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: ~a+ on G %v vs a+ on Gᵀ %v", trial, got, want)
		}
	}
}

func reverse(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(i)
		b.AddNode(n.ID, n.Label, n.Props)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		b.AddEdge(e.ID, e.Label, g.Node(e.Tgt).ID, g.Node(e.Src).ID, e.Props)
	}
	return b.MustBuild()
}

func TestWildcardInverse(t *testing.T) {
	g := gen.BankEdgeLabeled()
	// ~_ from Megan: anything pointing at Megan (owner edges from a1, a2).
	reach := ReachableFrom(g, MustParse("~_"), g.MustNode("Megan"))
	if len(reach) != 2 {
		t.Errorf("~_ from Megan = %d, want 2 (a1, a2)", len(reach))
	}
	// ~!{owner} from Megan: nothing (only owner edges point at people).
	reach = ReachableFrom(g, MustParse("~!{owner}"), g.MustNode("Megan"))
	if len(reach) != 0 {
		t.Errorf("~!{owner} from Megan = %d, want 0", len(reach))
	}
}
