package twoway

import (
	"context"
	"errors"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
)

// TestPairsMeterRowsBudgetExact is the 2RPQ side of the emission-time
// rows-budget regression: the old code charged a whole sweep's batch after
// the fact, so the meter read the full per-source row count instead of
// stopping at MaxRows+1.
func TestPairsMeterRowsBudgetExact(t *testing.T) {
	e, err := Parse("a")
	if err != nil {
		t.Fatal(err)
	}
	const maxRows = 3
	// Clique(10): the first source sweep alone yields 9 rows.
	m := eval.NewMeter(context.Background(), eval.Budget{MaxRows: maxRows})
	out, evalErr := PairsMeter(gen.Clique(10, "a"), e, m)
	if !errors.Is(evalErr, eval.ErrBudgetExceeded) {
		t.Fatalf("got (%v, %v), want ErrBudgetExceeded", out, evalErr)
	}
	if out != nil {
		t.Errorf("partial result %v returned with error", out)
	}
	if got := m.Rows(); got != maxRows+1 {
		t.Errorf("meter rows = %d, want exactly MaxRows+1 = %d", got, maxRows+1)
	}
}
