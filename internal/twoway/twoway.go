// Package twoway implements two-way regular path queries (2RPQs): RPQs
// extended with inverse labels a⁻ that traverse edges backwards. The paper
// works with one-way paths "just for the sake of technical simplicity"
// (Remark 9) and cites the 2RPQ literature [Calvanese et al., KR/PODS 2000]
// in Figure 1; this package supplies the extension: a 2RPQ AST with inverse
// atoms (written ~a), Glushkov compilation to a direction-annotated NFA,
// and product-construction evaluation that walks edges in both directions.
package twoway

import (
	"context"
	"fmt"
	"strings"
	"unicode"

	"graphquery/internal/automata"
	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
)

// Expr is a 2RPQ expression.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Epsilon is ε.
type Epsilon struct{}

// Atom matches one edge: forwards (src→tgt) by default, backwards
// (tgt→src) when Inverse is set. Wild atoms match any label outside Except.
type Atom struct {
	Name    string
	Wild    bool
	Except  []string
	Inverse bool
}

// Concat is R₁·…·Rₙ.
type Concat struct{ Parts []Expr }

// Union is R₁+…+Rₙ.
type Union struct{ Alts []Expr }

// Star is R*.
type Star struct{ Sub Expr }

// Repeat is R{Min,Max}; Max < 0 means ∞.
type Repeat struct {
	Sub Expr
	Min int
	Max int
}

func (Epsilon) isExpr() {}
func (Atom) isExpr()    {}
func (Concat) isExpr()  {}
func (Union) isExpr()   {}
func (Star) isExpr()    {}
func (Repeat) isExpr()  {}

func (Epsilon) String() string { return "()" }

func (a Atom) String() string {
	var base string
	switch {
	case a.Wild && len(a.Except) == 0:
		base = "_"
	case a.Wild:
		base = "!{" + strings.Join(a.Except, ",") + "}"
	default:
		base = a.Name
	}
	if a.Inverse {
		return "~" + base
	}
	return base
}

func (c Concat) String() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = childString(p, 2)
	}
	return strings.Join(parts, " ")
}

func (u Union) String() string {
	parts := make([]string, len(u.Alts))
	for i, a := range u.Alts {
		parts[i] = childString(a, 2)
	}
	return strings.Join(parts, " | ")
}

func (s Star) String() string { return childString(s.Sub, 3) + "*" }

func (r Repeat) String() string {
	sub := childString(r.Sub, 3)
	switch {
	case r.Min == 0 && r.Max == 1:
		return sub + "?"
	case r.Min == 1 && r.Max < 0:
		return sub + "+"
	case r.Max < 0:
		return fmt.Sprintf("%s{%d,}", sub, r.Min)
	case r.Min == r.Max:
		return fmt.Sprintf("%s{%d}", sub, r.Min)
	default:
		return fmt.Sprintf("%s{%d,%d}", sub, r.Min, r.Max)
	}
}

func childString(e Expr, parent int) string {
	var prec int
	switch e.(type) {
	case Epsilon, Atom, Star, Repeat:
		prec = 3
	case Concat:
		prec = 2
	case Union:
		prec = 1
	}
	s := e.String()
	if prec < parent {
		return "(" + s + ")"
	}
	return s
}

// Constructors.

// L returns the forward atom a.
func L(a string) Expr { return Atom{Name: a} }

// Seq returns a concatenation.
func Seq(parts ...Expr) Expr {
	switch len(parts) {
	case 0:
		return Epsilon{}
	case 1:
		return parts[0]
	default:
		return Concat{Parts: parts}
	}
}

// Alt returns a disjunction.
func Alt(alts ...Expr) Expr {
	switch len(alts) {
	case 0:
		panic("twoway: Alt needs at least one alternative")
	case 1:
		return alts[0]
	default:
		return Union{Alts: alts}
	}
}

// Kleene returns R*.
func Kleene(e Expr) Expr { return Star{Sub: e} }

// PlusOf returns R⁺.
func PlusOf(e Expr) Expr { return Repeat{Sub: e, Min: 1, Max: -1} }

// desugar expands Repeat nodes.
func desugar(e Expr) Expr {
	switch n := e.(type) {
	case Epsilon, Atom:
		return e
	case Concat:
		parts := make([]Expr, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = desugar(p)
		}
		return Concat{Parts: parts}
	case Union:
		alts := make([]Expr, len(n.Alts))
		for i, a := range n.Alts {
			alts[i] = desugar(a)
		}
		return Union{Alts: alts}
	case Star:
		return Star{Sub: desugar(n.Sub)}
	case Repeat:
		sub := desugar(n.Sub)
		var parts []Expr
		for i := 0; i < n.Min; i++ {
			parts = append(parts, sub)
		}
		switch {
		case n.Max < 0:
			parts = append(parts, Star{Sub: sub})
		case n.Max < n.Min:
			panic(fmt.Sprintf("twoway: invalid repetition {%d,%d}", n.Min, n.Max))
		default:
			opt := Union{Alts: []Expr{Epsilon{}, sub}}
			for i := n.Min; i < n.Max; i++ {
				parts = append(parts, opt)
			}
		}
		return Seq(parts...)
	default:
		panic(fmt.Sprintf("twoway: unknown expression %T", e))
	}
}

// TTrans is a direction-annotated NFA transition.
type TTrans struct {
	Guard automata.Guard
	Back  bool // traverse the matched edge tgt→src
	To    int
}

// TNFA is the two-way automaton: an NFA whose transitions carry a
// traversal direction.
type TNFA struct {
	NumStates int
	Start     int
	Accept    []bool
	Trans     [][]TTrans
}

// Compile builds the Glushkov automaton with direction annotations.
func Compile(e Expr) *TNFA {
	core := desugar(e)
	g := &tglushkov{}
	info := g.analyze(core)
	a := &TNFA{
		NumStates: len(g.positions) + 1,
		Start:     0,
		Accept:    make([]bool, len(g.positions)+1),
		Trans:     make([][]TTrans, len(g.positions)+1),
	}
	if info.nullable {
		a.Accept[0] = true
	}
	add := func(from, pos int) {
		p := g.positions[pos]
		a.Trans[from] = append(a.Trans[from], TTrans{Guard: p.guard, Back: p.back, To: pos + 1})
	}
	for _, p := range info.first {
		add(0, p)
	}
	for p, follows := range g.follow {
		for _, q := range follows {
			add(p+1, q)
		}
	}
	for _, p := range info.last {
		a.Accept[p+1] = true
	}
	return a
}

type tposition struct {
	guard automata.Guard
	back  bool
}

type tglushkov struct {
	positions []tposition
	follow    [][]int
}

type tinfo struct {
	nullable bool
	first    []int
	last     []int
}

func (g *tglushkov) analyze(e Expr) tinfo {
	switch n := e.(type) {
	case Epsilon:
		return tinfo{nullable: true}
	case Atom:
		var guard automata.Guard
		if n.Wild {
			guard = automata.GuardNotIn(n.Except...)
		} else {
			guard = automata.GuardLabel(n.Name)
		}
		g.positions = append(g.positions, tposition{guard: guard, back: n.Inverse})
		g.follow = append(g.follow, nil)
		p := len(g.positions) - 1
		return tinfo{first: []int{p}, last: []int{p}}
	case Concat:
		if len(n.Parts) == 0 {
			return tinfo{nullable: true}
		}
		acc := g.analyze(n.Parts[0])
		for _, part := range n.Parts[1:] {
			next := g.analyze(part)
			for _, l := range acc.last {
				g.follow[l] = append(g.follow[l], next.first...)
			}
			merged := tinfo{nullable: acc.nullable && next.nullable}
			merged.first = append(merged.first, acc.first...)
			if acc.nullable {
				merged.first = append(merged.first, next.first...)
			}
			merged.last = append(merged.last, next.last...)
			if next.nullable {
				merged.last = append(merged.last, acc.last...)
			}
			acc = merged
		}
		return acc
	case Union:
		var out tinfo
		for _, alt := range n.Alts {
			ai := g.analyze(alt)
			out.nullable = out.nullable || ai.nullable
			out.first = append(out.first, ai.first...)
			out.last = append(out.last, ai.last...)
		}
		return out
	case Star:
		si := g.analyze(n.Sub)
		for _, l := range si.last {
			g.follow[l] = append(g.follow[l], si.first...)
		}
		return tinfo{nullable: true, first: si.first, last: si.last}
	default:
		panic(fmt.Sprintf("twoway: unexpected %T after desugar", e))
	}
}

// machineFor resolves a compiled TNFA against g into a runtime machine:
// direction annotations become Back-flagged transitions, and guards are
// resolved by the shared pg guard resolution (transitions whose positive
// guard matches no label of g are dropped).
func machineFor(g *graph.Graph, a *TNFA) *pg.Machine {
	m := pg.NewMachine(a.NumStates, a.Start)
	for q := 0; q < a.NumStates; q++ {
		if a.Accept[q] {
			m.SetAccept(q)
		}
		for _, t := range a.Trans[q] {
			rg, ok := pg.Resolve(g, t.Guard)
			if !ok {
				continue
			}
			m.Add(q, pg.Trans{To: t.To, Back: t.Back, ResolvedGuard: rg})
		}
	}
	return m
}

// Kernel compiles e for evaluation over g on the unified product-graph
// runtime; c (may be nil) receives the kernel's runtime counters. The
// kernel is immutable and serves concurrent queries.
func Kernel(g *graph.Graph, e Expr, c *pg.Counters) *pg.Kernel {
	return pg.NewKernel(g, machineFor(g, Compile(e)), c)
}

// Options configure evaluation on the unified runtime.
type Options struct {
	// Parallelism caps the per-source fan-out degree; 0 means one worker
	// per available CPU, 1 forces the sequential path.
	Parallelism int
	// Counters (may be nil) receives the kernel's runtime counters.
	Counters *pg.Counters
}

// Pairs computes ⟦R⟧_G for the 2RPQ: pairs (u, v) connected by a two-way
// path matching R, via kernel sweeps that follow out-edges on forward
// transitions and in-edges on inverse transitions. The output needs no
// final sort: sources are merged ascending and each per-source result is
// ascending, so it is lexicographically sorted by construction.
func Pairs(g *graph.Graph, e Expr) [][2]int {
	out, _ := PairsMeter(g, e, nil) // nil meter: cannot fail
	return out
}

// PairsCtx is Pairs under a context and budget: evaluation stops with
// eval.ErrCanceled when ctx is canceled mid-search and with
// eval.ErrBudgetExceeded when b is exhausted.
func PairsCtx(ctx context.Context, g *graph.Graph, e Expr, b eval.Budget) ([][2]int, error) {
	return PairsMeter(g, e, eval.NewMeter(ctx, b))
}

// PairsMeter is Pairs under a shared meter (nil means unlimited) — the
// entry point for serving layers that thread one instrument through every
// stage of a query. Evaluation is sequential; use PairsMeterOpt for
// parallel fan-out and counters.
func PairsMeter(g *graph.Graph, e Expr, m *eval.Meter) ([][2]int, error) {
	return PairsMeterOpt(g, e, m, Options{Parallelism: 1})
}

// PairsMeterOpt is PairsMeter with explicit runtime options: per-source
// fan-out over the runtime's worker pool (deterministic chunk-ordered
// merge, so output is identical at any parallelism) and runtime counters.
func PairsMeterOpt(g *graph.Graph, e Expr, m *eval.Meter, opts Options) ([][2]int, error) {
	kern := Kernel(g, e, opts.Counters)
	return pg.ForEach(g.NumNodes(), pg.Workers(opts.Parallelism), kern.GetScratch, kern.PutScratch,
		func(u int, sc *pg.Scratch) ([][2]int, error) {
			if !g.NodeAlive(u) { // tombstoned under a mutation overlay
				return nil, nil
			}
			// Emission-time rows accounting: the budget trips on row
			// MaxRows+1, not after the sweep's whole batch.
			vs, err := kern.ReachableRows(u, sc, m, false)
			if err != nil {
				return nil, err
			}
			part := make([][2]int, len(vs))
			for i, v := range vs {
				part[i] = [2]int{u, v}
			}
			return part, nil
		})
}

// Check reports whether (src, dst) ∈ ⟦R⟧_G.
func Check(g *graph.Graph, e Expr, src, dst int) bool {
	for _, v := range ReachableFrom(g, e, src) {
		if v == dst {
			return true
		}
	}
	return false
}

// ReachableFrom returns all v with (src, v) ∈ ⟦R⟧_G, sorted.
func ReachableFrom(g *graph.Graph, e Expr, src int) []int {
	kern := Kernel(g, e, nil)
	vs, _ := kern.Reachable(src, kern.NewScratch(), nil) // nil meter: cannot fail
	return vs
}

// Witness returns one shortest two-way walk (as the visited node sequence —
// edges may be traversed in either direction, so the result is a node
// itinerary rather than a gpath.Path). ok is false when no walk exists. The
// walk is reconstructed from the kernel's BFS parent tree, so the choice
// among equal-length witnesses is deterministic.
func Witness(g *graph.Graph, e Expr, src, dst int) ([]int, bool) {
	kern := Kernel(g, e, nil)
	sem := kern.Semantics()
	dist, parent, _ := kern.BFS(src)
	best := -1
	for q := 0; q < sem.NumStates(); q++ {
		id := kern.ID(pg.State{Node: dst, State: q})
		if sem.Accepting(q) && dist[id] >= 0 && (best == -1 || dist[id] < dist[best]) {
			best = id
		}
	}
	if best == -1 {
		return nil, false
	}
	var seq []int
	for cur := best; cur != -1; cur = parent[cur] {
		seq = append(seq, kern.Unid(cur).Node)
	}
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = seq[j], seq[i]
	}
	return seq, true
}

// Parse parses the 2RPQ syntax: the RPQ syntax of package rpq plus a '~'
// prefix for inverse atoms (~a, ~_, ~!{a,b}).
func Parse(input string) (Expr, error) {
	p := &parser{src: input}
	p.next()
	if p.tok.kind == tEOF {
		return nil, p.errorf("empty expression")
	}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errorf("unexpected %s", p.tok)
	}
	return e, nil
}

// MustParse parses or panics.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tkind int

const (
	tEOF tkind = iota
	tIdent
	tNumber
	tPipe
	tStar
	tPlus
	tQuest
	tLParen
	tRParen
	tLBrace
	tRBrace
	tComma
	tTilde
	tBangBrace
	tUnder
)

type tok struct {
	kind tkind
	text string
	pos  int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type parser struct {
	src string
	pos int
	tok tok
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("twoway: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) next() {
	for p.pos < len(p.src) && strings.ContainsRune(" \t\n\r", rune(p.src[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = tok{kind: tEOF, pos: start}
		return
	}
	c := p.src[p.pos]
	single := map[byte]tkind{
		'|': tPipe, '*': tStar, '+': tPlus, '?': tQuest,
		'(': tLParen, ')': tRParen, '{': tLBrace, '}': tRBrace,
		',': tComma, '~': tTilde,
	}
	if k, ok := single[c]; ok {
		p.pos++
		p.tok = tok{k, string(c), start}
		return
	}
	switch {
	case c == '!' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '{':
		p.pos += 2
		p.tok = tok{tBangBrace, "!{", start}
	case c >= '0' && c <= '9':
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		p.tok = tok{tNumber, p.src[start:p.pos], start}
	case c == '_' || unicode.IsLetter(rune(c)) || c >= 0x80:
		for p.pos < len(p.src) {
			r := rune(p.src[p.pos])
			if r < 0x80 && r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				break
			}
			p.pos++
		}
		text := p.src[start:p.pos]
		if text == "_" {
			p.tok = tok{tUnder, "_", start}
			return
		}
		p.tok = tok{tIdent, text, start}
	default:
		p.tok = tok{tIdent, string(c), start}
		p.pos++
	}
}

func (p *parser) parseUnion() (Expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []Expr{first}
	for p.tok.kind == tPipe {
		p.next()
		e, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, e)
	}
	return Alt(alts...), nil
}

func (p *parser) parseConcat() (Expr, error) {
	var parts []Expr
	for {
		switch p.tok.kind {
		case tIdent, tUnder, tBangBrace, tLParen, tTilde:
			e, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		default:
			if len(parts) == 0 {
				return nil, p.errorf("expected expression, got %s", p.tok)
			}
			return Seq(parts...), nil
		}
	}
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tStar:
			e = Kleene(e)
			p.next()
		case tPlus:
			e = PlusOf(e)
			p.next()
		case tQuest:
			e = Repeat{Sub: e, Min: 0, Max: 1}
			p.next()
		case tLBrace:
			p.next()
			if p.tok.kind != tNumber {
				return nil, p.errorf("expected repetition count, got %s", p.tok)
			}
			min := atoi(p.tok.text)
			p.next()
			max := min
			if p.tok.kind == tComma {
				p.next()
				switch p.tok.kind {
				case tNumber:
					max = atoi(p.tok.text)
					p.next()
				case tRBrace:
					max = -1
				default:
					return nil, p.errorf("expected upper bound or '}', got %s", p.tok)
				}
			}
			if p.tok.kind != tRBrace {
				return nil, p.errorf("expected '}', got %s", p.tok)
			}
			if max >= 0 && max < min {
				return nil, p.errorf("invalid repetition {%d,%d}", min, max)
			}
			p.next()
			e = Repeat{Sub: e, Min: min, Max: max}
		default:
			return e, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	inverse := false
	if p.tok.kind == tTilde {
		inverse = true
		p.next()
	}
	switch p.tok.kind {
	case tIdent:
		a := Atom{Name: p.tok.text, Inverse: inverse}
		p.next()
		return a, nil
	case tUnder:
		p.next()
		return Atom{Wild: true, Inverse: inverse}, nil
	case tBangBrace:
		p.next()
		var set []string
		for {
			if p.tok.kind != tIdent {
				return nil, p.errorf("expected label in wildcard set, got %s", p.tok)
			}
			set = append(set, p.tok.text)
			p.next()
			if p.tok.kind == tComma {
				p.next()
				continue
			}
			break
		}
		if p.tok.kind != tRBrace {
			return nil, p.errorf("expected '}', got %s", p.tok)
		}
		p.next()
		return Atom{Wild: true, Except: set, Inverse: inverse}, nil
	case tLParen:
		if inverse {
			return nil, p.errorf("'~' applies to atoms, not groups")
		}
		p.next()
		if p.tok.kind == tRParen {
			p.next()
			return Epsilon{}, nil
		}
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tRParen {
			return nil, p.errorf("expected ')', got %s", p.tok)
		}
		p.next()
		return e, nil
	default:
		return nil, p.errorf("expected atom, got %s", p.tok)
	}
}

func atoi(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		n = n*10 + int(s[i]-'0')
	}
	return n
}
