package gpath

import (
	"errors"
	"math/rand"
	"testing"

	"graphquery/internal/graph"
)

// testGraph builds a small fragment of the Figure 3 bank graph:
//
//	a1 --t1--> a3 --t2--> a2, a3 --t5--> a2, and a self-loop t0 on a1.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.NewBuilder().
		AddNode("a1", "Account", nil).
		AddNode("a2", "Account", nil).
		AddNode("a3", "Account", nil).
		AddEdge("t1", "Transfer", "a1", "a3", nil).
		AddEdge("t2", "Transfer", "a3", "a2", nil).
		AddEdge("t5", "Transfer", "a3", "a2", nil).
		AddEdge("t0", "Transfer", "a1", "a1", nil).
		MustBuild()
}

func mustPath(t *testing.T, g *graph.Graph, objs ...graph.Object) Path {
	t.Helper()
	p, err := New(g, objs...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func node(g *graph.Graph, id graph.NodeID) graph.Object {
	return graph.MakeNodeObject(g.MustNode(id))
}

func edge(g *graph.Graph, id graph.EdgeID) graph.Object {
	return graph.MakeEdgeObject(g.MustEdge(id))
}

func TestPathValidity(t *testing.T) {
	g := testGraph(t)
	// Example 10: path(a1, t1, a3, t2) is a valid node-to-edge path.
	p := mustPath(t, g, node(g, "a1"), edge(g, "t1"), node(g, "a3"), edge(g, "t2"))
	if !p.StartsWithNode() || p.EndsWithNode() {
		t.Error("path(a1,t1,a3,t2) should be node-to-edge")
	}
	// path(t1, a3, t2) is a valid edge-to-edge path.
	q := mustPath(t, g, edge(g, "t1"), node(g, "a3"), edge(g, "t2"))
	if q.StartsWithNode() || q.EndsWithNode() {
		t.Error("path(t1,a3,t2) should be edge-to-edge")
	}
	// path(a1, t1, t1) repeats an edge without an interleaving node: invalid.
	if _, err := New(g, node(g, "a1"), edge(g, "t1"), edge(g, "t1")); !errors.Is(err, ErrNotAPath) {
		t.Errorf("path(a1,t1,t1) error = %v, want ErrNotAPath", err)
	}
	// Wrong incidence: t2 starts at a3, not a1.
	if _, err := New(g, node(g, "a1"), edge(g, "t2")); !errors.Is(err, ErrNotAPath) {
		t.Errorf("path(a1,t2) error = %v, want ErrNotAPath", err)
	}
	// Two consecutive nodes do not alternate.
	if _, err := New(g, node(g, "a1"), node(g, "a3")); !errors.Is(err, ErrNotAPath) {
		t.Errorf("path(a1,a3) error = %v, want ErrNotAPath", err)
	}
}

func TestSrcTgtLen(t *testing.T) {
	g := testGraph(t)
	p := mustPath(t, g, edge(g, "t1"), node(g, "a3"), edge(g, "t2"))
	if s, ok := p.Src(g); !ok || s != g.MustNode("a1") {
		t.Errorf("Src = %d,%v; want a1 (src of t1)", s, ok)
	}
	if s, ok := p.Tgt(g); !ok || s != g.MustNode("a2") {
		t.Errorf("Tgt = %d,%v; want a2 (tgt of t2)", s, ok)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
	if _, ok := Empty().Src(g); ok {
		t.Error("empty path should have no Src")
	}
	if Empty().Len() != 0 {
		t.Error("empty path length should be 0")
	}
}

func TestELab(t *testing.T) {
	g := testGraph(t)
	p := mustPath(t, g, node(g, "a1"), edge(g, "t1"), node(g, "a3"), edge(g, "t2"), node(g, "a2"))
	got := p.ELab(g)
	if len(got) != 2 || got[0] != "Transfer" || got[1] != "Transfer" {
		t.Errorf("ELab = %v", got)
	}
	if lab := OfNode(0).ELab(g); len(lab) != 0 {
		t.Errorf("node path elab should be ε, got %v", lab)
	}
}

// TestConcatExample10 checks the three decompositions of path(a1,t1,a3,t2,a2)
// from Example 10 of the paper.
func TestConcatExample10(t *testing.T) {
	g := testGraph(t)
	full := mustPath(t, g, node(g, "a1"), edge(g, "t1"), node(g, "a3"), edge(g, "t2"), node(g, "a2"))

	cases := []struct{ p, q Path }{
		{ // path(a1,t1,a3) · path(a3,t2,a2): shared node collapses
			mustPath(t, g, node(g, "a1"), edge(g, "t1"), node(g, "a3")),
			mustPath(t, g, node(g, "a3"), edge(g, "t2"), node(g, "a2")),
		},
		{ // path(a1,t1) · path(a3,t2,a2): edge end meets its target node
			mustPath(t, g, node(g, "a1"), edge(g, "t1")),
			mustPath(t, g, node(g, "a3"), edge(g, "t2"), node(g, "a2")),
		},
		{ // path(a1,t1) · path(t1,a3,t2,a2): shared edge collapses
			mustPath(t, g, node(g, "a1"), edge(g, "t1")),
			mustPath(t, g, edge(g, "t1"), node(g, "a3"), edge(g, "t2"), node(g, "a2")),
		},
	}
	for i, tc := range cases {
		got, ok := Concat(g, tc.p, tc.q)
		if !ok {
			t.Fatalf("case %d: concat undefined", i)
		}
		if !got.Equal(full) {
			t.Errorf("case %d: got %s, want %s", i, got.Format(g), full.Format(g))
		}
	}
	// The third case shows len(p·q) < len(p)+len(q): 1+2 edges collapse to 2.
	if p3, _ := Concat(g, cases[2].p, cases[2].q); p3.Len() != 2 {
		t.Errorf("collapsed concat length = %d, want 2", p3.Len())
	}
}

// TestConcatCollapseLaw checks path(o)·path(o) = path(o) for nodes AND edges
// (the symmetry decision), and the self-loop subtlety from Section 2:
// path(t0)·path(t0) = path(t0), but path(t0)·path(a1,t0) traverses t0 twice.
func TestConcatCollapseLaw(t *testing.T) {
	g := testGraph(t)
	n := OfNode(g.MustNode("a1"))
	if got, ok := Concat(g, n, n); !ok || !got.Equal(n) {
		t.Errorf("path(a1)·path(a1) = %v,%v; want path(a1)", got, ok)
	}
	e := OfEdge(g.MustEdge("t0"))
	if got, ok := Concat(g, e, e); !ok || !got.Equal(e) {
		t.Errorf("path(t0)·path(t0) = %v,%v; want path(t0)", got, ok)
	}
	twice := mustPath(t, g, edge(g, "t0"), node(g, "a1"), edge(g, "t0"))
	via := mustPath(t, g, node(g, "a1"), edge(g, "t0"))
	if got, ok := Concat(g, e, via); !ok || !got.Equal(twice) {
		t.Errorf("path(t0)·path(a1,t0) = %v; want path(t0,a1,t0)", got.Format(g))
	}
	if twice.Len() != 2 {
		t.Errorf("path(t0,a1,t0) length = %d, want 2 (multiplicity counts)", twice.Len())
	}
}

func TestConcatUndefined(t *testing.T) {
	g := testGraph(t)
	// a2 then a1: distinct nodes, no rule applies.
	if _, ok := Concat(g, OfNode(g.MustNode("a2")), OfNode(g.MustNode("a1"))); ok {
		t.Error("path(a2)·path(a1) should be undefined")
	}
	// t1 ends at a3; path starting at a1 cannot follow.
	p := OfEdge(g.MustEdge("t1"))
	q := mustPath(t, g, node(g, "a1"), edge(g, "t0"))
	if _, ok := Concat(g, p, q); ok {
		t.Error("path(t1)·path(a1,t0) should be undefined")
	}
	// Distinct parallel edges t2, t5 do not collapse and are not incident.
	if _, ok := Concat(g, OfEdge(g.MustEdge("t2")), OfEdge(g.MustEdge("t5"))); ok {
		t.Error("path(t2)·path(t5) should be undefined")
	}
}

func TestConcatEmptyIdentity(t *testing.T) {
	g := testGraph(t)
	p := mustPath(t, g, node(g, "a1"), edge(g, "t1"), node(g, "a3"))
	if got, ok := Concat(g, p, Empty()); !ok || !got.Equal(p) {
		t.Error("p·path() should be p")
	}
	if got, ok := Concat(g, Empty(), p); !ok || !got.Equal(p) {
		t.Error("path()·p should be p")
	}
}

// TestConcatAssociativity: wherever both groupings are defined they agree.
// Random walks over the test graph provide the candidate triples.
func TestConcatAssociativity(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(11))
	walk := func() Path {
		// random short walk starting at a random node, as object paths
		n := rng.Intn(g.NumNodes())
		p := OfNode(n)
		for steps := rng.Intn(3); steps > 0; steps-- {
			out := g.Out(n)
			if len(out) == 0 {
				break
			}
			e := out[rng.Intn(len(out))]
			q := Triple(g, e)
			var ok bool
			p, ok = Concat(g, p, q)
			if !ok {
				break
			}
			n = g.Edge(e).Tgt
		}
		return p
	}
	for trial := 0; trial < 500; trial++ {
		a, b, c := walk(), walk(), walk()
		ab, okAB := Concat(g, a, b)
		bc, okBC := Concat(g, b, c)
		if !okAB || !okBC {
			continue
		}
		l, okL := Concat(g, ab, c)
		r, okR := Concat(g, a, bc)
		if okL != okR {
			t.Fatalf("associativity definedness mismatch: (ab)c ok=%v, a(bc) ok=%v", okL, okR)
		}
		if okL && !l.Equal(r) {
			t.Fatalf("associativity violated:\n(ab)c = %s\na(bc) = %s", l.Format(g), r.Format(g))
		}
	}
}

func TestSimpleAndTrail(t *testing.T) {
	g := testGraph(t)
	simple := mustPath(t, g, node(g, "a1"), edge(g, "t1"), node(g, "a3"), edge(g, "t2"), node(g, "a2"))
	if !simple.IsSimple() || !simple.IsTrail() {
		t.Error("a1→a3→a2 should be simple and a trail")
	}
	loopTwice := mustPath(t, g, node(g, "a1"), edge(g, "t0"), node(g, "a1"), edge(g, "t0"), node(g, "a1"))
	if loopTwice.IsSimple() {
		t.Error("repeated node: not simple")
	}
	if loopTwice.IsTrail() {
		t.Error("repeated edge: not a trail")
	}
	loopOnce := mustPath(t, g, node(g, "a1"), edge(g, "t0"), node(g, "a1"))
	if loopOnce.IsSimple() {
		t.Error("self-loop repeats its node: not simple")
	}
	if !loopOnce.IsTrail() {
		t.Error("self-loop once: still a trail")
	}
}

func TestNodesEdgesExtraction(t *testing.T) {
	g := testGraph(t)
	p := mustPath(t, g, node(g, "a1"), edge(g, "t1"), node(g, "a3"), edge(g, "t2"), node(g, "a2"))
	ns := p.Nodes()
	if len(ns) != 3 || ns[0] != g.MustNode("a1") || ns[2] != g.MustNode("a2") {
		t.Errorf("Nodes = %v", ns)
	}
	es := p.Edges()
	if len(es) != 2 || es[0] != g.MustEdge("t1") || es[1] != g.MustEdge("t2") {
		t.Errorf("Edges = %v", es)
	}
}

func TestPathKeyAndFormat(t *testing.T) {
	g := testGraph(t)
	p := mustPath(t, g, node(g, "a1"), edge(g, "t1"), node(g, "a3"))
	q := mustPath(t, g, node(g, "a1"), edge(g, "t1"), node(g, "a3"))
	r := mustPath(t, g, node(g, "a3"), edge(g, "t2"), node(g, "a2"))
	if p.Key() != q.Key() {
		t.Error("equal paths must share keys")
	}
	if p.Key() == r.Key() {
		t.Error("different paths must differ in key")
	}
	if got := p.Format(g); got != "path(a1, t1, a3)" {
		t.Errorf("Format = %q", got)
	}
	if got := Empty().Format(g); got != "path()" {
		t.Errorf("empty Format = %q", got)
	}
}
