package gpath

import (
	"testing"
	"testing/quick"

	"graphquery/internal/graph"
)

func obj(i int16, isEdge bool) graph.Object {
	idx := int(i)
	if idx < 0 {
		idx = -idx
	}
	if isEdge {
		return graph.MakeEdgeObject(idx)
	}
	return graph.MakeNodeObject(idx)
}

func TestListConcat(t *testing.T) {
	a := List{obj(1, true), obj(2, true)}
	b := List{obj(3, false)}
	got := ConcatLists(a, b)
	if len(got) != 3 || got[0] != a[0] || got[2] != b[0] {
		t.Errorf("ConcatLists = %v", got)
	}
	if !ConcatLists(nil, a).Equal(a) || !ConcatLists(a, nil).Equal(a) {
		t.Error("empty list must be identity")
	}
}

func TestListConcatDoesNotAliasInputs(t *testing.T) {
	a := make(List, 1, 4) // spare capacity to catch in-place append aliasing
	a[0] = obj(1, true)
	c1 := ConcatLists(a, List{obj(2, true)})
	c2 := ConcatLists(a, List{obj(3, true)})
	if c1[1] == c2[1] {
		t.Fatal("ConcatLists must not share underlying storage between results")
	}
}

func TestBindingMonoidLaws(t *testing.T) {
	// µ·µ₀ = µ = µ₀·µ and associativity, via testing/quick over small
	// randomly generated bindings.
	mk := func(ks []uint8) Binding {
		m := Binding{}
		for i, k := range ks {
			z := string(rune('x' + i%3))
			m[z] = append(m[z], obj(int16(k), k%2 == 0))
		}
		if len(m) == 0 {
			return nil
		}
		return m
	}
	identity := func(ks []uint8) bool {
		m := mk(ks)
		return ConcatBindings(m, EmptyBinding()).Equal(m) &&
			ConcatBindings(EmptyBinding(), m).Equal(m)
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity law: %v", err)
	}
	assoc := func(a, b, c []uint8) bool {
		x, y, z := mk(a), mk(b), mk(c)
		l := ConcatBindings(ConcatBindings(x, y), z)
		r := ConcatBindings(x, ConcatBindings(y, z))
		return l.Equal(r)
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("associativity law: %v", err)
	}
}

func TestBindingSingletonAndGet(t *testing.T) {
	o := obj(7, true)
	m := Singleton("z", o)
	if got := m.Get("z"); len(got) != 1 || got[0] != o {
		t.Errorf("Get(z) = %v", got)
	}
	if got := m.Get("w"); len(got) != 0 {
		t.Errorf("Get(w) = %v, want empty", got)
	}
}

func TestBindingConcatPointwise(t *testing.T) {
	m1 := Binding{"z": List{obj(1, true)}, "w": List{obj(2, false)}}
	m2 := Binding{"z": List{obj(3, true)}}
	got := ConcatBindings(m1, m2)
	if !got.Get("z").Equal(List{obj(1, true), obj(3, true)}) {
		t.Errorf("z = %v", got.Get("z"))
	}
	if !got.Get("w").Equal(List{obj(2, false)}) {
		t.Errorf("w = %v", got.Get("w"))
	}
}

func TestBindingEqualIgnoresEmptySupport(t *testing.T) {
	m1 := Binding{"z": List{obj(1, true)}, "w": List{}}
	m2 := Binding{"z": List{obj(1, true)}}
	if !m1.Equal(m2) || !m2.Equal(m1) {
		t.Error("bindings differing only in empty lists must be equal")
	}
	if len(m1.Vars()) != 1 || m1.Vars()[0] != "z" {
		t.Errorf("Vars = %v", m1.Vars())
	}
}

func TestBindingKeyStability(t *testing.T) {
	m1 := Binding{"a": List{obj(1, true)}, "b": List{obj(2, false)}}
	m2 := Binding{"b": List{obj(2, false)}, "a": List{obj(1, true)}}
	if m1.Key() != m2.Key() {
		t.Error("Key must be order-independent")
	}
	m3 := Binding{"a": List{obj(1, true)}}
	if m1.Key() == m3.Key() {
		t.Error("different bindings must have different keys")
	}
}

func TestBindingFormat(t *testing.T) {
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).
		AddEdge("t3", "a", "u", "v", nil).
		MustBuild()
	m := Singleton("z", graph.MakeEdgeObject(g.MustEdge("t3")))
	if got := m.Format(g); got != "{z -> list(t3)}" {
		t.Errorf("Format = %q", got)
	}
}

func TestPathBindingKey(t *testing.T) {
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).
		AddEdge("e", "a", "u", "v", nil).
		MustBuild()
	p := Triple(g, 0)
	pb1 := PathBinding{Path: p, Binding: Singleton("z", graph.MakeEdgeObject(0))}
	pb2 := PathBinding{Path: p, Binding: nil}
	if pb1.Key() == pb2.Key() {
		t.Error("same path, different bindings: keys must differ")
	}
}
