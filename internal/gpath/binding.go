package gpath

import (
	"fmt"
	"sort"
	"strings"

	"graphquery/internal/graph"
)

// List is a list(o₁,…,oₙ) of graph objects, the image type of list-variable
// bindings (Section 3.1.4).
type List []graph.Object

// ConcatLists returns the concatenation list(o₁,…,oₙ,o′₁,…,o′ₘ).
func ConcatLists(a, b List) List {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(List, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// Equal reports element-wise equality.
func (l List) Equal(m List) bool {
	if len(l) != len(m) {
		return false
	}
	for i := range l {
		if l[i] != m[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string for deduplication.
func (l List) Key() string {
	var b strings.Builder
	for _, o := range l {
		if o.IsEdge() {
			fmt.Fprintf(&b, "E%d.", o.Index())
		} else {
			fmt.Fprintf(&b, "N%d.", o.Index())
		}
	}
	return b.String()
}

// Format renders the list with external IDs, e.g. "list(t2, t3)".
func (l List) Format(g *graph.Graph) string {
	parts := make([]string, len(l))
	for i, o := range l {
		parts[i] = g.ObjectID(o)
	}
	return "list(" + strings.Join(parts, ", ") + ")"
}

// Binding is a binding µ: Var → lists of graph objects. Per Section 3.1.4,
// bindings are conceptually total on Var but map all but finitely many
// variables to the empty list; we represent only the non-empty support, so
// the zero Binding is µ₀ (every variable ↦ list()).
type Binding map[string]List

// EmptyBinding returns µ₀.
func EmptyBinding() Binding { return nil }

// Singleton returns µ_{z↦o}: z maps to list(o), everything else to list().
func Singleton(z string, o graph.Object) Binding {
	return Binding{z: List{o}}
}

// Get returns µ(z) (the empty list when z is outside the support).
func (m Binding) Get(z string) List { return m[z] }

// ConcatBindings returns µ₁·µ₂, the pointwise list concatenation.
func ConcatBindings(a, b Binding) Binding {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(Binding, len(a)+len(b))
	for z, l := range a {
		out[z] = l
	}
	for z, l := range b {
		out[z] = ConcatLists(out[z], l)
	}
	return out
}

// Equal reports whether two bindings agree on every variable.
func (m Binding) Equal(n Binding) bool {
	for z, l := range m {
		if !l.Equal(n[z]) {
			return false
		}
	}
	for z, l := range n {
		if _, ok := m[z]; !ok && len(l) > 0 {
			return false
		}
	}
	return true
}

// Vars returns the sorted variables with non-empty lists.
func (m Binding) Vars() []string {
	vs := make([]string, 0, len(m))
	for z, l := range m {
		if len(l) > 0 {
			vs = append(vs, z)
		}
	}
	sort.Strings(vs)
	return vs
}

// Key returns a canonical string for deduplication (set semantics over
// (path, binding) pairs).
func (m Binding) Key() string {
	vs := m.Vars()
	var b strings.Builder
	for _, z := range vs {
		b.WriteString(z)
		b.WriteByte('=')
		b.WriteString(m[z].Key())
		b.WriteByte(';')
	}
	return b.String()
}

// Format renders the binding with external IDs, e.g. "{z ↦ list(t2, t3)}".
func (m Binding) Format(g *graph.Graph) string {
	vs := m.Vars()
	parts := make([]string, len(vs))
	for i, z := range vs {
		parts[i] = z + " -> " + m[z].Format(g)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// PathBinding is a pair (p, µ) as produced by ℓ-RPQ and dl-RPQ evaluation.
type PathBinding struct {
	Path    Path
	Binding Binding
}

// Key returns a canonical deduplication key for the pair.
func (pb PathBinding) Key() string { return pb.Path.Key() + "|" + pb.Binding.Key() }
