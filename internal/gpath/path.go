// Package gpath implements the path and list machinery of Section 2 of the
// paper ("Paths and Lists"): paths as alternating sequences of nodes and
// edges with all four endpoint shapes (node-to-node, node-to-edge,
// edge-to-node, edge-to-edge), the paper's path concatenation with its
// boundary-collapse rule, path length and edge labels, the simple/trail
// predicates behind path modes, and lists and variable bindings µ.
//
// The symmetric treatment of nodes and edges — in particular that
// path(o)·path(o) = path(o) for edges o as well as nodes — is the design
// decision the paper singles out (Example 10) as the enabler for the
// symmetric dl-RPQs of Section 3.2.1.
package gpath

import (
	"errors"
	"fmt"
	"strings"

	"graphquery/internal/graph"
)

// ErrNotAPath reports an object sequence that is not a valid path in the
// graph: non-alternating, or an edge not incident to its neighbors.
var ErrNotAPath = errors.New("gpath: object sequence is not a valid path")

// Path is a (possibly empty) path p = path(o₁,…,oₙ): a strictly alternating
// sequence of nodes and edges in which every edge connects the nodes around
// it. The zero Path is the empty path path().
//
// Paths are immutable; all operations return new values.
type Path struct {
	objs []graph.Object
}

// Empty returns the empty path path().
func Empty() Path { return Path{} }

// OfNode returns the single-object path path(u) for node index u.
func OfNode(u int) Path { return Path{objs: []graph.Object{graph.MakeNodeObject(u)}} }

// OfEdge returns the single-object path path(e) for edge index e.
func OfEdge(e int) Path { return Path{objs: []graph.Object{graph.MakeEdgeObject(e)}} }

// Triple returns the node-to-node path path(src(e), e, tgt(e)) for edge e.
func Triple(g *graph.Graph, e int) Path {
	ed := g.Edge(e)
	return Path{objs: []graph.Object{
		graph.MakeNodeObject(ed.Src),
		graph.MakeEdgeObject(e),
		graph.MakeNodeObject(ed.Tgt),
	}}
}

// New validates objs as a path in g and returns it.
// It enforces strict alternation and the incidence conditions (a) and (b)
// from Section 2 ("Paths and Lists"); e.g. path(a1, t1, t1) is rejected.
func New(g *graph.Graph, objs ...graph.Object) (Path, error) {
	for i := 1; i < len(objs); i++ {
		prev, cur := objs[i-1], objs[i]
		if prev.IsEdge() == cur.IsEdge() {
			return Path{}, fmt.Errorf("%w: objects %d and %d do not alternate", ErrNotAPath, i-1, i)
		}
		if prev.IsEdge() {
			if g.Edge(prev.Index()).Tgt != cur.Index() {
				return Path{}, fmt.Errorf("%w: edge at %d does not end at node at %d", ErrNotAPath, i-1, i)
			}
		} else if cur.IsEdge() {
			if g.Edge(cur.Index()).Src != prev.Index() {
				return Path{}, fmt.Errorf("%w: edge at %d does not start at node at %d", ErrNotAPath, i, i-1)
			}
		}
	}
	cp := make([]graph.Object, len(objs))
	copy(cp, objs)
	return Path{objs: cp}, nil
}

// IsEmpty reports whether p is path().
func (p Path) IsEmpty() bool { return len(p.objs) == 0 }

// NumObjects returns the number of objects in the sequence (n, not length).
func (p Path) NumObjects() int { return len(p.objs) }

// Object returns oᵢ (0-based).
func (p Path) Object(i int) graph.Object { return p.objs[i] }

// Objects returns a copy of the object sequence.
func (p Path) Objects() []graph.Object {
	cp := make([]graph.Object, len(p.objs))
	copy(cp, p.objs)
	return cp
}

// StartsWithNode reports whether o₁ is a node. False for the empty path.
func (p Path) StartsWithNode() bool { return len(p.objs) > 0 && p.objs[0].IsNode() }

// EndsWithNode reports whether oₙ is a node. False for the empty path.
func (p Path) EndsWithNode() bool { return len(p.objs) > 0 && p.objs[len(p.objs)-1].IsNode() }

// Src returns src(p): o₁ if it is a node, else src(o₁). ok is false for the
// empty path.
func (p Path) Src(g *graph.Graph) (int, bool) {
	if len(p.objs) == 0 {
		return 0, false
	}
	o := p.objs[0]
	if o.IsNode() {
		return o.Index(), true
	}
	return g.Edge(o.Index()).Src, true
}

// Tgt returns tgt(p): oₙ if it is a node, else tgt(oₙ). ok is false for the
// empty path.
func (p Path) Tgt(g *graph.Graph) (int, bool) {
	if len(p.objs) == 0 {
		return 0, false
	}
	o := p.objs[len(p.objs)-1]
	if o.IsNode() {
		return o.Index(), true
	}
	return g.Edge(o.Index()).Tgt, true
}

// Len returns len(p), the number of edge occurrences (counted with
// multiplicity).
func (p Path) Len() int {
	n := 0
	for _, o := range p.objs {
		if o.IsEdge() {
			n++
		}
	}
	return n
}

// ELab returns elab(p), the concatenation of the labels of the edges of p
// (nodes contribute ε).
func (p Path) ELab(g *graph.Graph) []string {
	var out []string
	for _, o := range p.objs {
		if o.IsEdge() {
			out = append(out, g.Edge(o.Index()).Label)
		}
	}
	return out
}

// Concat computes p·q per the paper's definition:
//
//   - if oₙ is an edge and tgt(oₙ) = o′₁ (a node): juxtapose;
//   - if o′₁ is an edge and src(o′₁) = oₙ (a node): juxtapose;
//   - if oₙ = o′₁ (same object, node or edge): collapse the shared object;
//   - p·path() = p = path()·p.
//
// ok is false when none of the rules applies (the concatenation is
// undefined). The collapse rule gives path(o)·path(o) = path(o) for both
// nodes and edges — the symmetry the paper argues for.
func Concat(g *graph.Graph, p, q Path) (Path, bool) {
	if p.IsEmpty() {
		return q, true
	}
	if q.IsEmpty() {
		return p, true
	}
	last, first := p.objs[len(p.objs)-1], q.objs[0]
	switch {
	case last == first:
		return join(p.objs, q.objs[1:]), true
	case last.IsEdge() && first.IsNode() && g.Edge(last.Index()).Tgt == first.Index():
		return join(p.objs, q.objs), true
	case first.IsEdge() && last.IsNode() && g.Edge(first.Index()).Src == last.Index():
		return join(p.objs, q.objs), true
	default:
		return Path{}, false
	}
}

func join(a, b []graph.Object) Path {
	objs := make([]graph.Object, 0, len(a)+len(b))
	objs = append(objs, a...)
	objs = append(objs, b...)
	return Path{objs: objs}
}

// IsSimple reports whether p is a simple path: no node occurs twice.
func (p Path) IsSimple() bool {
	seen := make(map[int]struct{})
	for _, o := range p.objs {
		if o.IsNode() {
			if _, dup := seen[o.Index()]; dup {
				return false
			}
			seen[o.Index()] = struct{}{}
		}
	}
	return true
}

// IsTrail reports whether p is a trail: no edge occurs twice.
func (p Path) IsTrail() bool {
	seen := make(map[int]struct{})
	for _, o := range p.objs {
		if o.IsEdge() {
			if _, dup := seen[o.Index()]; dup {
				return false
			}
			seen[o.Index()] = struct{}{}
		}
	}
	return true
}

// Nodes returns the node indexes on p, in order, with multiplicity.
func (p Path) Nodes() []int {
	var out []int
	for _, o := range p.objs {
		if o.IsNode() {
			out = append(out, o.Index())
		}
	}
	return out
}

// Edges returns the edge indexes on p, in order, with multiplicity. This is
// Cypher's E(p) list extraction (Section 5.2 "Turning to Lists for Help").
func (p Path) Edges() []int {
	var out []int
	for _, o := range p.objs {
		if o.IsEdge() {
			out = append(out, o.Index())
		}
	}
	return out
}

// Key returns a canonical string identifying the object sequence, for use as
// a deduplication map key (set semantics).
func (p Path) Key() string {
	var b strings.Builder
	for _, o := range p.objs {
		if o.IsEdge() {
			fmt.Fprintf(&b, "E%d.", o.Index())
		} else {
			fmt.Fprintf(&b, "N%d.", o.Index())
		}
	}
	return b.String()
}

// Equal reports whether p and q are the same object sequence.
func (p Path) Equal(q Path) bool {
	if len(p.objs) != len(q.objs) {
		return false
	}
	for i := range p.objs {
		if p.objs[i] != q.objs[i] {
			return false
		}
	}
	return true
}

// Format renders p as path(o₁,…,oₙ) using external IDs, e.g.
// "path(a1, t1, a3)".
func (p Path) Format(g *graph.Graph) string {
	parts := make([]string, len(p.objs))
	for i, o := range p.objs {
		parts[i] = g.ObjectID(o)
	}
	return "path(" + strings.Join(parts, ", ") + ")"
}
