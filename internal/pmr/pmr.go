// Package pmr implements Path Multiset Representations (Section 6.4 of the
// paper, after Martens et al., PVLDB 2023): compact, automaton-like
// representations of (possibly infinite) sets of paths in a graph.
//
// A PMR over G is R = (N, E, src, tgt, γ, S, T) where (N, E, src, tgt) is a
// graph, γ maps R's nodes to G's nodes and R's edges to G's edges
// homomorphically, and S, T ⊆ N are source and target nodes. R represents
//
//	SPaths(R) = { γ(ρ) | ρ is a path from S to T in R }.
//
// Per the paper's position, this package treats PMRs under set semantics.
// The central constructions are FromProduct (all matching paths of an RPQ,
// possibly an infinite language, in O(|G|·|A|) space) and
// ShortestFromProduct (exactly the shortest matching paths, a DAG), plus
// cardinality, membership, and output-linear-delay enumeration.
package pmr

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"graphquery/internal/gpath"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
)

// Edge is a PMR edge: an edge of the representation graph together with its
// image γ(e) in G.
type Edge struct {
	Src   int // PMR node
	Tgt   int // PMR node
	GEdge int // γ(e): edge index in G
}

// PMR is a path multiset representation over a fixed graph G.
type PMR struct {
	G *graph.Graph

	// GammaNode[i] is γ of PMR node i: a node index in G.
	GammaNode []int
	// Edges are the PMR edges with their γ images.
	Edges []Edge
	// S and T are the source and target PMR node sets (sorted).
	S, T []int

	out [][]int // PMR node -> indexes into Edges
}

// New assembles and validates a PMR: γ must be a homomorphism, i.e. for
// every edge e, src(γ(e)) = γ(src(e)) and tgt(γ(e)) = γ(tgt(e)).
func New(g *graph.Graph, gammaNode []int, edges []Edge, s, t []int) (*PMR, error) {
	r := &PMR{G: g, GammaNode: gammaNode, Edges: edges,
		S: append([]int(nil), s...), T: append([]int(nil), t...)}
	sort.Ints(r.S)
	sort.Ints(r.T)
	for _, n := range append(r.S, r.T...) {
		if n < 0 || n >= len(gammaNode) {
			return nil, fmt.Errorf("pmr: source/target node %d out of range", n)
		}
	}
	r.out = make([][]int, len(gammaNode))
	for i, e := range edges {
		if e.Src < 0 || e.Src >= len(gammaNode) || e.Tgt < 0 || e.Tgt >= len(gammaNode) {
			return nil, fmt.Errorf("pmr: edge %d endpoint out of range", i)
		}
		ge := g.Edge(e.GEdge)
		if ge.Src != gammaNode[e.Src] || ge.Tgt != gammaNode[e.Tgt] {
			return nil, fmt.Errorf("pmr: edge %d violates the homomorphism condition", i)
		}
		r.out[e.Src] = append(r.out[e.Src], i)
	}
	return r, nil
}

// NumNodes returns |N| of the representation.
func (r *PMR) NumNodes() int { return len(r.GammaNode) }

// Size returns |N| + |E|, the space measure used in E17.
func (r *PMR) Size() int { return len(r.GammaNode) + len(r.Edges) }

// FromProduct builds a PMR representing the set of all node-to-node paths
// from src to dst in g that match the RPQ e. The PMR is the useful part of
// the product graph G × N_R (Section 6.4: "PMRs are closely related to the
// product graph"), so its size is O(|G|·|A|) even when the path set is
// infinite.
func FromProduct(g *graph.Graph, e rpq.Expr, src, dst int) *PMR {
	r, _ := FromProductMeter(g, e, src, dst, nil)
	return r
}

// FromProductCtx is FromProduct under a context and budget: construction
// work is metered every pg.CheckInterval product-state expansions, so a
// canceled ctx or an exhausted states budget aborts with the standard
// taxonomy errors (pg.ErrCanceled, *pg.BudgetError).
func FromProductCtx(ctx context.Context, g *graph.Graph, e rpq.Expr, src, dst int, b pg.Budget) (*PMR, error) {
	return FromProductMeter(g, e, src, dst, pg.NewMeter(ctx, b))
}

// FromProductMeter is FromProduct with an explicit meter (may be nil). The
// product expansion is the kernel's: Succ order and state packing are
// exactly pg.Kernel's, so the construction is byte-identical to the
// pre-kernel evaluator while inheriting its cancellation discipline.
func FromProductMeter(g *graph.Graph, e rpq.Expr, src, dst int, m *pg.Meter) (*PMR, error) {
	nfa := rpq.Compile(e)
	kern := pg.NewKernel(g, pg.FromNFA(g, nfa), nil)
	nStates := nfa.NumStates
	total := kern.NumProductStates()
	id := func(n, q int) int { return n*nStates + q }
	if !g.NodeAlive(src) || !g.NodeAlive(dst) {
		// Tombstoned endpoints have no paths; matches the Materialize()d
		// graph, where the node does not exist at all.
		r, _ := New(g, nil, nil, nil, nil)
		return r, nil
	}
	tick := pg.NewTicker(m, kern.Counters())

	// Forward reachability from (src, q0).
	reach := make([]bool, total)
	stack := []int{id(src, nfa.Start)}
	reach[stack[0]] = true
	type pedge struct{ from, to, gedge int }
	var edges []pedge
	for len(stack) > 0 {
		if err := tick.Step(); err != nil {
			return nil, err
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, st := range kern.Succ(kern.Unid(cur)) {
			ni := id(st.To.Node, st.To.State)
			edges = append(edges, pedge{cur, ni, st.Edge})
			if !reach[ni] {
				reach[ni] = true
				stack = append(stack, ni)
			}
		}
	}
	// Backward reachability from accepting (dst, q).
	rev := make(map[int][]int)
	for _, pe := range edges {
		rev[pe.to] = append(rev[pe.to], pe.from)
	}
	coreach := make([]bool, total)
	stack = stack[:0]
	for q := 0; q < nStates; q++ {
		if nfa.Accept[q] && reach[id(dst, q)] {
			coreach[id(dst, q)] = true
			stack = append(stack, id(dst, q))
		}
	}
	for len(stack) > 0 {
		if err := tick.Step(); err != nil {
			return nil, err
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, prev := range rev[cur] {
			if !coreach[prev] {
				coreach[prev] = true
				stack = append(stack, prev)
			}
		}
	}

	// Keep useful states.
	remap := make(map[int]int)
	var gammaNode []int
	keep := func(i int) bool { return reach[i] && coreach[i] }
	for i := 0; i < total; i++ {
		if keep(i) {
			remap[i] = len(gammaNode)
			gammaNode = append(gammaNode, i/nStates)
		}
	}
	var pedges []Edge
	seenEdge := map[[3]int]struct{}{}
	for _, pe := range edges {
		if keep(pe.from) && keep(pe.to) {
			k := [3]int{remap[pe.from], remap[pe.to], pe.gedge}
			if _, dup := seenEdge[k]; dup {
				continue
			}
			seenEdge[k] = struct{}{}
			pedges = append(pedges, Edge{Src: remap[pe.from], Tgt: remap[pe.to], GEdge: pe.gedge})
		}
	}
	var s, t []int
	if i, ok := remap[id(src, nfa.Start)]; ok {
		s = append(s, i)
	}
	for q := 0; q < nStates; q++ {
		if nfa.Accept[q] {
			if i, ok := remap[id(dst, q)]; ok {
				t = append(t, i)
			}
		}
	}
	r, err := New(g, gammaNode, pedges, s, t)
	if err != nil {
		panic("pmr: product construction produced invalid PMR: " + err.Error())
	}
	if err := tick.Flush(); err != nil {
		return nil, err
	}
	return r, nil
}

// ShortestFromProduct builds a PMR representing exactly the shortest
// matching paths from src to dst (the shortest-mode preprocessing of
// PathFinder-style engines discussed in Section 6.4). The result is a DAG.
func ShortestFromProduct(g *graph.Graph, e rpq.Expr, src, dst int) *PMR {
	r, _ := ShortestFromProductMeter(g, e, src, dst, nil)
	return r
}

// ShortestFromProductCtx is ShortestFromProduct under a context and budget
// (see FromProductCtx).
func ShortestFromProductCtx(ctx context.Context, g *graph.Graph, e rpq.Expr, src, dst int, b pg.Budget) (*PMR, error) {
	return ShortestFromProductMeter(g, e, src, dst, pg.NewMeter(ctx, b))
}

// ShortestFromProductMeter is ShortestFromProduct with an explicit meter
// (may be nil). The BFS layering is delegated to the kernel's Distances
// sweep, which already meters itself; the tight-edge extraction that
// follows reuses the kernel's Succ expansion.
func ShortestFromProductMeter(g *graph.Graph, e rpq.Expr, src, dst int, m *pg.Meter) (*PMR, error) {
	nfa := rpq.Compile(e)
	kern := pg.NewKernel(g, pg.FromNFA(g, nfa), nil)
	nStates := nfa.NumStates
	id := func(n, q int) int { return n*nStates + q }
	if !g.NodeAlive(src) || !g.NodeAlive(dst) {
		r, _ := New(g, nil, nil, nil, nil)
		return r, nil
	}

	// BFS distances from (src, q0): the kernel's metered level sweep.
	total := kern.NumProductStates()
	start := id(src, nfa.Start)
	dist, err := kern.Distances(src, m)
	if err != nil {
		return nil, err
	}
	tick := pg.NewTicker(m, kern.Counters())
	best := -1
	for q := 0; q < nStates; q++ {
		i := id(dst, q)
		if nfa.Accept[q] && dist[i] >= 0 && (best == -1 || dist[i] < best) {
			best = dist[i]
		}
	}
	if best == -1 {
		r, _ := New(g, nil, nil, nil, nil)
		return r, nil
	}

	// Layered copy: node (state, d) for d = dist[state]; tight edges only;
	// targets are accepting states at distance exactly best. Keeping one
	// copy per state suffices because tight edges strictly increase dist.
	remap := make(map[int]int)
	var gammaNode []int
	mapState := func(i int) int {
		if j, ok := remap[i]; ok {
			return j
		}
		j := len(gammaNode)
		remap[i] = j
		gammaNode = append(gammaNode, i/nStates)
		return j
	}
	var pedges []Edge
	// Only states that can appear on some shortest accepted path are
	// useful: co-reachability at exact remaining distance. Compute via
	// backward layered BFS from targets.
	useful := make(map[int]bool)
	var targets []int
	for q := 0; q < nStates; q++ {
		i := id(dst, q)
		if nfa.Accept[q] && dist[i] == best {
			useful[i] = true
			targets = append(targets, i)
		}
	}
	// Backward pass over tight edges.
	revTight := make(map[int][]struct{ from, gedge int })
	for i := 0; i < total; i++ {
		if dist[i] == -1 || dist[i] >= best {
			continue
		}
		if err := tick.Step(); err != nil {
			return nil, err
		}
		for _, st := range kern.Succ(kern.Unid(i)) {
			ni := id(st.To.Node, st.To.State)
			if dist[ni] == dist[i]+1 {
				revTight[ni] = append(revTight[ni], struct{ from, gedge int }{i, st.Edge})
			}
		}
	}
	stack := append([]int(nil), targets...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pe := range revTight[cur] {
			if !useful[pe.from] {
				useful[pe.from] = true
				stack = append(stack, pe.from)
			}
		}
	}
	// Number representation states and emit edges in product-state order:
	// map iteration order must not leak into the representation, or two
	// builds of the same PMR would enumerate ties differently.
	usefulSorted := make([]int, 0, len(useful))
	for i := range useful {
		usefulSorted = append(usefulSorted, i)
	}
	sort.Ints(usefulSorted)
	for _, i := range usefulSorted {
		mapState(i)
	}
	for _, to := range usefulSorted {
		for _, pe := range revTight[to] {
			if useful[pe.from] {
				pedges = append(pedges, Edge{Src: remap[pe.from], Tgt: remap[to], GEdge: pe.gedge})
			}
		}
	}
	var s, t []int
	if j, ok := remap[start]; ok && useful[start] {
		s = append(s, j)
	}
	for _, tg := range targets {
		s2 := remap[tg]
		t = append(t, s2)
	}
	r, err2 := New(g, gammaNode, pedges, s, t)
	if err2 != nil {
		panic("pmr: shortest construction produced invalid PMR: " + err2.Error())
	}
	if err := tick.Flush(); err != nil {
		return nil, err
	}
	return r, nil
}

// Cardinality returns the number of paths in SPaths(r); infinite reports
// whether the set is infinite (a cycle lies on some S→T path). Paths are
// counted as γ-images with deduplication (set semantics): distinct
// representation paths with the same image count once; for exact dedup the
// count falls back to bounded enumeration when small, and to the DAG path
// count otherwise (which is an upper bound only if γ is non-injective on
// useful states; the constructions in this package produce at most one
// useful state per (graph position, automaton state), so in practice
// distinct representation paths have distinct images whenever the
// underlying automaton is unambiguous).
func (r *PMR) Cardinality() (count *big.Int, infinite bool) {
	useful := r.usefulStates()
	// Cycle detection within useful subgraph.
	color := make([]int, r.NumNodes()) // 0 white, 1 gray, 2 black
	var cyclic bool
	var dfs func(n int)
	dfs = func(n int) {
		color[n] = 1
		for _, ei := range r.out[n] {
			to := r.Edges[ei].Tgt
			if !useful[to] {
				continue
			}
			switch color[to] {
			case 0:
				dfs(to)
			case 1:
				cyclic = true
			}
		}
		color[n] = 2
	}
	for _, s := range r.S {
		if useful[s] && color[s] == 0 {
			dfs(s)
		}
	}
	if cyclic {
		return nil, true
	}
	// Acyclic: count distinct images by DAG DP over representation paths;
	// dedup via enumeration when feasible is handled by callers/tests.
	memo := make([]*big.Int, r.NumNodes())
	inT := map[int]bool{}
	for _, t := range r.T {
		inT[t] = true
	}
	var countFrom func(n int) *big.Int
	countFrom = func(n int) *big.Int {
		if memo[n] != nil {
			return memo[n]
		}
		total := new(big.Int)
		if inT[n] {
			total.SetInt64(1)
		}
		memo[n] = total // safe: DAG
		for _, ei := range r.out[n] {
			to := r.Edges[ei].Tgt
			if useful[to] {
				total.Add(total, countFrom(to))
			}
		}
		return total
	}
	sum := new(big.Int)
	seenStart := map[int]bool{}
	for _, s := range r.S {
		if useful[s] && !seenStart[s] {
			seenStart[s] = true
			sum.Add(sum, countFrom(s))
		}
	}
	return sum, false
}

// usefulStates marks nodes both reachable from S and co-reachable to T.
func (r *PMR) usefulStates() []bool {
	n := r.NumNodes()
	reach := make([]bool, n)
	var stack []int
	for _, s := range r.S {
		if !reach[s] {
			reach[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range r.out[cur] {
			to := r.Edges[ei].Tgt
			if !reach[to] {
				reach[to] = true
				stack = append(stack, to)
			}
		}
	}
	rev := make([][]int, n)
	for _, e := range r.Edges {
		rev[e.Tgt] = append(rev[e.Tgt], e.Src)
	}
	coreach := make([]bool, n)
	stack = stack[:0]
	for _, t := range r.T {
		if !coreach[t] {
			coreach[t] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, from := range rev[cur] {
			if !coreach[from] {
				coreach[from] = true
				stack = append(stack, from)
			}
		}
	}
	useful := make([]bool, n)
	for i := range useful {
		useful[i] = reach[i] && coreach[i]
	}
	return useful
}

// Enumerate yields up to limit distinct paths of SPaths(r) in order of
// nondecreasing length. Because enumeration walks only useful states, every
// partial path extends to a result — the property behind output-linear
// delay (Section 6.4).
func (r *PMR) Enumerate(limit int) []gpath.Path {
	out, _ := r.EnumerateMeter(limit, nil)
	return out
}

// EnumerateCtx is Enumerate under a context and budget: expansion steps
// count against the states budget (amortized every pg.CheckInterval) and
// each emitted path against the rows budget; errors follow the standard
// taxonomy. On error no partial result is returned.
func (r *PMR) EnumerateCtx(ctx context.Context, limit int, b pg.Budget) ([]gpath.Path, error) {
	return r.EnumerateMeter(limit, pg.NewMeter(ctx, b))
}

// EnumerateMeter is Enumerate with an explicit meter (may be nil).
func (r *PMR) EnumerateMeter(limit int, m *pg.Meter) ([]gpath.Path, error) {
	if limit <= 0 {
		return nil, nil
	}
	tick := pg.NewTicker(m, nil)
	useful := r.usefulStates()
	inT := map[int]bool{}
	for _, t := range r.T {
		inT[t] = true
	}
	type partial struct {
		node  int
		edges []int // graph edge indexes
	}
	var queue []partial
	seenStart := map[int]bool{}
	for _, s := range r.S {
		if useful[s] && !seenStart[s] {
			seenStart[s] = true
			queue = append(queue, partial{node: s})
		}
	}
	seen := map[string]struct{}{}
	var out []gpath.Path
	for len(queue) > 0 && len(out) < limit {
		if err := tick.Step(); err != nil {
			return nil, err
		}
		cur := queue[0]
		queue = queue[1:]
		if inT[cur.node] {
			p := r.imagePath(cur)
			k := p.Key()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				if err := m.AddRows(1); err != nil {
					return nil, err
				}
				out = append(out, p)
				if len(out) == limit {
					break
				}
			}
		}
		for _, ei := range r.out[cur.node] {
			e := r.Edges[ei]
			if !useful[e.Tgt] {
				continue
			}
			ext := make([]int, len(cur.edges)+1)
			copy(ext, cur.edges)
			ext[len(cur.edges)] = e.GEdge
			queue = append(queue, partial{node: e.Tgt, edges: ext})
		}
	}
	if err := tick.Flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// imagePath renders a partial's γ-image as a node-to-node path. The start
// node is recovered from the first edge (or the final node for the empty
// path — partial.node, since no edges were taken).
func (r *PMR) imagePath(p struct {
	node  int
	edges []int
}) gpath.Path {
	if len(p.edges) == 0 {
		return gpath.OfNode(r.GammaNode[p.node])
	}
	out := gpath.OfNode(r.G.Edge(p.edges[0]).Src)
	for _, ge := range p.edges {
		next, _ := gpath.Concat(r.G, out, gpath.Triple(r.G, ge))
		out = next
	}
	return out
}

// Contains reports whether the node-to-node path p belongs to SPaths(r),
// by subset simulation over the representation.
func (r *PMR) Contains(p gpath.Path) bool {
	src, ok := p.Src(r.G)
	if !ok {
		return false
	}
	cur := map[int]struct{}{}
	for _, s := range r.S {
		if r.GammaNode[s] == src {
			cur[s] = struct{}{}
		}
	}
	for _, ge := range p.Edges() {
		next := map[int]struct{}{}
		for n := range cur {
			for _, ei := range r.out[n] {
				e := r.Edges[ei]
				if e.GEdge == ge {
					next[e.Tgt] = struct{}{}
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	for n := range cur {
		for _, t := range r.T {
			if n == t {
				return true
			}
		}
	}
	return false
}

// Iterator yields SPaths(r) lazily, one path per Next call, in
// nondecreasing length order. Because the walk is restricted to useful
// states, every partial path extends to an output — the structural property
// behind the output-linear-delay enumeration results of Section 6.4: the
// work between two Next calls is proportional to the size of the path
// produced, not to the number of dead ends.
type Iterator struct {
	r      *PMR
	useful []bool
	inT    map[int]bool
	queue  []iterItem
	seen   map[string]struct{}
}

type iterItem struct {
	node  int
	edges []int
}

// Iterate returns a fresh iterator over SPaths(r).
func (r *PMR) Iterate() *Iterator {
	it := &Iterator{
		r:      r,
		useful: r.usefulStates(),
		inT:    map[int]bool{},
		seen:   map[string]struct{}{},
	}
	for _, t := range r.T {
		it.inT[t] = true
	}
	started := map[int]bool{}
	for _, s := range r.S {
		if it.useful[s] && !started[s] {
			started[s] = true
			it.queue = append(it.queue, iterItem{node: s})
		}
	}
	return it
}

// Next returns the next path; ok is false when the (possibly infinite)
// enumeration is exhausted. For infinite SPaths, Next never returns
// ok=false — callers decide when to stop.
func (it *Iterator) Next() (gpath.Path, bool) {
	for len(it.queue) > 0 {
		cur := it.queue[0]
		it.queue = it.queue[1:]
		// Extend first so the frontier keeps breadth-first length order.
		for _, ei := range it.r.out[cur.node] {
			e := it.r.Edges[ei]
			if !it.useful[e.Tgt] {
				continue
			}
			ext := make([]int, len(cur.edges)+1)
			copy(ext, cur.edges)
			ext[len(cur.edges)] = e.GEdge
			it.queue = append(it.queue, iterItem{node: e.Tgt, edges: ext})
		}
		if it.inT[cur.node] {
			p := it.r.imagePath(struct {
				node  int
				edges []int
			}{cur.node, cur.edges})
			k := p.Key()
			if _, dup := it.seen[k]; !dup {
				it.seen[k] = struct{}{}
				return p, true
			}
		}
	}
	return gpath.Path{}, false
}

// Union returns a PMR representing SPaths(a) ∪ SPaths(b): the disjoint
// union of the two representations (both must be over the same graph).
func Union(a, b *PMR) (*PMR, error) {
	if a.G != b.G {
		return nil, fmt.Errorf("pmr: union of PMRs over different graphs")
	}
	off := a.NumNodes()
	gamma := make([]int, 0, a.NumNodes()+b.NumNodes())
	gamma = append(gamma, a.GammaNode...)
	gamma = append(gamma, b.GammaNode...)
	edges := make([]Edge, 0, len(a.Edges)+len(b.Edges))
	edges = append(edges, a.Edges...)
	for _, e := range b.Edges {
		edges = append(edges, Edge{Src: e.Src + off, Tgt: e.Tgt + off, GEdge: e.GEdge})
	}
	var s, t []int
	s = append(s, a.S...)
	for _, x := range b.S {
		s = append(s, x+off)
	}
	t = append(t, a.T...)
	for _, x := range b.T {
		t = append(t, x+off)
	}
	return New(a.G, gamma, edges, s, t)
}
