package pmr

import (
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/gpath"
	"graphquery/internal/graph"
	"graphquery/internal/rpq"
)

func TestNewValidatesHomomorphism(t *testing.T) {
	g := gen.APath(2, "a") // v0 -e1-> v1 -e2-> v2
	e1 := g.MustEdge("e1")
	// Valid: PMR node 0 ↦ v0, node 1 ↦ v1, edge ↦ e1.
	if _, err := New(g, []int{g.MustNode("v0"), g.MustNode("v1")},
		[]Edge{{Src: 0, Tgt: 1, GEdge: e1}}, []int{0}, []int{1}); err != nil {
		t.Fatalf("valid PMR rejected: %v", err)
	}
	// Invalid: edge image endpoints do not match γ of the PMR endpoints.
	if _, err := New(g, []int{g.MustNode("v1"), g.MustNode("v2")},
		[]Edge{{Src: 0, Tgt: 1, GEdge: e1}}, []int{0}, []int{1}); err == nil {
		t.Error("homomorphism violation not detected")
	}
	// Out-of-range source.
	if _, err := New(g, []int{0}, nil, []int{4}, nil); err == nil {
		t.Error("out-of-range source not detected")
	}
	// Out-of-range edge endpoint.
	if _, err := New(g, []int{0}, []Edge{{Src: 0, Tgt: 9, GEdge: e1}}, nil, nil); err == nil {
		t.Error("out-of-range edge endpoint not detected")
	}
}

// TestMikeCyclesPMR reproduces the Section 6.4 example: a finite PMR (three
// nodes, three edges) representing the infinitely many transfer cycles from
// Mike (a3) back to Mike that avoid blocked accounts — looping through
// t7, t4, t1.
func TestMikeCyclesPMR(t *testing.T) {
	g := gen.BankProperty()
	a3, a5, a1 := g.MustNode("a3"), g.MustNode("a5"), g.MustNode("a1")
	r, err := New(g,
		[]int{a3, a5, a1},
		[]Edge{
			{Src: 0, Tgt: 1, GEdge: g.MustEdge("t7")},
			{Src: 1, Tgt: 2, GEdge: g.MustEdge("t4")},
			{Src: 2, Tgt: 0, GEdge: g.MustEdge("t1")},
		},
		[]int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 6 {
		t.Errorf("Size = %d, want 6 (3 nodes + 3 edges)", r.Size())
	}
	// The represented set is infinite.
	if _, infinite := r.Cardinality(); !infinite {
		t.Error("cycle language must be infinite")
	}
	// Enumerate the first three: lengths 0, 3, 6.
	paths := r.Enumerate(3)
	if len(paths) != 3 {
		t.Fatalf("enumerated %d, want 3", len(paths))
	}
	for i, want := range []int{0, 3, 6} {
		if paths[i].Len() != want {
			t.Errorf("path %d length = %d, want %d", i, paths[i].Len(), want)
		}
	}
	if got := paths[1].Format(g); got != "path(a3, t7, a5, t4, a1, t1, a3)" {
		t.Errorf("cycle = %s", got)
	}
	// Membership: the length-3 cycle is in, a wrong path is out.
	if !r.Contains(paths[2]) {
		t.Error("enumerated path not contained")
	}
	direct, _ := gpath.New(g,
		graph.MakeNodeObject(a3),
		graph.MakeEdgeObject(g.MustEdge("t6")),
		graph.MakeNodeObject(g.MustNode("a4")))
	if r.Contains(direct) {
		t.Error("t6 path must not be contained")
	}
}

func TestFromProductFigure5(t *testing.T) {
	// E17: on Figure 5 with n stages, the PMR for a* s→t has Θ(n) size but
	// represents 2ⁿ paths.
	for n := 1; n <= 12; n++ {
		g := gen.Figure5(n)
		r := FromProduct(g, rpq.MustParse("a*"), g.MustNode("s"), g.MustNode("t"))
		count, infinite := r.Cardinality()
		if infinite {
			t.Fatalf("n=%d: finite path set misreported as infinite", n)
		}
		if want := int64(1) << n; count.Int64() != want {
			t.Errorf("n=%d: cardinality = %v, want %d", n, count, want)
		}
		if r.Size() > 8*(n+1) {
			t.Errorf("n=%d: PMR size %d not linear in n", n, r.Size())
		}
	}
}

func TestFromProductInfinite(t *testing.T) {
	g := gen.Cycle(3, "a")
	r := FromProduct(g, rpq.MustParse("a*"), 0, 0)
	if _, infinite := r.Cardinality(); !infinite {
		t.Error("a* on a cycle from v0 to v0 is infinite")
	}
	paths := r.Enumerate(4)
	if len(paths) != 4 {
		t.Fatalf("enumerate: %d", len(paths))
	}
	for i, want := range []int{0, 3, 6, 9} {
		if paths[i].Len() != want {
			t.Errorf("path %d length = %d, want %d", i, paths[i].Len(), want)
		}
	}
}

func TestFromProductEmptyLanguage(t *testing.T) {
	g := gen.APath(2, "a")
	r := FromProduct(g, rpq.MustParse("b"), g.MustNode("v0"), g.MustNode("v2"))
	count, infinite := r.Cardinality()
	if infinite || count.Sign() != 0 {
		t.Errorf("no b-paths: count = %v, infinite = %v", count, infinite)
	}
	if got := r.Enumerate(5); len(got) != 0 {
		t.Errorf("enumerated %d from empty set", len(got))
	}
}

func TestShortestFromProduct(t *testing.T) {
	for n := 1; n <= 8; n++ {
		g := gen.Figure5(n)
		r := ShortestFromProduct(g, rpq.MustParse("a*"), g.MustNode("s"), g.MustNode("t"))
		count, infinite := r.Cardinality()
		if infinite {
			t.Fatalf("shortest PMR must be a DAG")
		}
		if want := int64(1) << n; count.Int64() != want {
			t.Errorf("n=%d: shortest cardinality = %v, want %d", n, count, want)
		}
	}
	// On a cycle, there is exactly one shortest v0→v0 path: the empty one.
	g := gen.Cycle(3, "a")
	r := ShortestFromProduct(g, rpq.MustParse("a*"), 0, 0)
	count, infinite := r.Cardinality()
	if infinite || count.Int64() != 1 {
		t.Errorf("shortest on cycle: count = %v, infinite = %v; want 1, false", count, infinite)
	}
	// With a+ the shortest v0→v0 path is the full 3-cycle.
	r = ShortestFromProduct(g, rpq.MustParse("a+"), 0, 0)
	paths := r.Enumerate(10)
	if len(paths) != 1 || paths[0].Len() != 3 {
		t.Errorf("shortest a+ cycle: %d paths", len(paths))
	}
}

func TestShortestEmptyWhenUnreachable(t *testing.T) {
	g := gen.APath(2, "a")
	r := ShortestFromProduct(g, rpq.MustParse("a"), g.MustNode("v2"), g.MustNode("v0"))
	count, infinite := r.Cardinality()
	if infinite || count.Sign() != 0 {
		t.Errorf("unreachable: count = %v, infinite = %v", count, infinite)
	}
}

// TestSPathsAgreesWithEval cross-checks PMR enumeration against direct
// evaluation on random graphs.
func TestSPathsAgreesWithEval(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		g := gen.Random(4, 6, []string{"a", "b"}, int64(trial)*101+9)
		e := rpq.MustParse("(a|b) a*")
		for src := 0; src < g.NumNodes(); src++ {
			for dst := 0; dst < g.NumNodes(); dst++ {
				r := FromProduct(g, e, src, dst)
				want, err := eval.Paths(g, e, src, dst, eval.All, eval.Options{MaxLen: 4})
				if err != nil {
					t.Fatal(err)
				}
				// Every evaluated path must be contained in the PMR.
				for _, p := range want {
					if !r.Contains(p) {
						t.Fatalf("trial %d: path %s missing from PMR", trial, p.Format(g))
					}
				}
				// Every enumerated PMR path of length ≤ 4 must be in want.
				wantKeys := map[string]bool{}
				for _, p := range want {
					wantKeys[p.Key()] = true
				}
				for _, p := range r.Enumerate(200) {
					if p.Len() > 4 {
						continue
					}
					if !wantKeys[p.Key()] {
						t.Fatalf("trial %d: PMR enumerated spurious path %s", trial, p.Format(g))
					}
				}
			}
		}
	}
}

func TestContainsRejectsEmptyAndForeign(t *testing.T) {
	g := gen.APath(1, "a")
	r := FromProduct(g, rpq.MustParse("a"), g.MustNode("v0"), g.MustNode("v1"))
	if r.Contains(gpath.Path{}) {
		t.Error("empty path is not in L(a)")
	}
	if !r.Contains(gpath.Triple(g, g.MustEdge("e1"))) {
		t.Error("the single a-edge path must be contained")
	}
	if r.Contains(gpath.OfNode(g.MustNode("v0"))) {
		t.Error("zero-length path not in L(a)")
	}
}

func TestIterator(t *testing.T) {
	g := gen.Cycle(3, "a")
	r := FromProduct(g, rpq.MustParse("a*"), 0, 0)
	it := r.Iterate()
	var lengths []int
	for i := 0; i < 4; i++ {
		p, ok := it.Next()
		if !ok {
			t.Fatalf("iterator ended early at %d", i)
		}
		lengths = append(lengths, p.Len())
	}
	for i, want := range []int{0, 3, 6, 9} {
		if lengths[i] != want {
			t.Errorf("lengths[%d] = %d, want %d", i, lengths[i], want)
		}
	}
	// Finite language: iterator terminates.
	f := gen.Figure5(3)
	rf := FromProduct(f, rpq.MustParse("a*"), f.MustNode("s"), f.MustNode("t"))
	itf := rf.Iterate()
	count := 0
	for {
		if _, ok := itf.Next(); !ok {
			break
		}
		count++
	}
	if count != 8 {
		t.Errorf("finite iteration produced %d paths, want 8", count)
	}
	// Iterator agrees with Enumerate.
	want := rf.Enumerate(8)
	itf2 := rf.Iterate()
	for i := 0; i < len(want); i++ {
		p, ok := itf2.Next()
		if !ok || p.Key() != want[i].Key() {
			t.Fatalf("iterator diverges from Enumerate at %d", i)
		}
	}
}

func TestIteratorEmpty(t *testing.T) {
	g := gen.APath(2, "a")
	r := FromProduct(g, rpq.MustParse("b"), 0, 1)
	if _, ok := r.Iterate().Next(); ok {
		t.Error("empty language should yield nothing")
	}
}

func TestUnionPMR(t *testing.T) {
	g := gen.BankEdgeLabeled()
	a3, a5, a4 := g.MustNode("a3"), g.MustNode("a5"), g.MustNode("a4")
	r1 := FromProduct(g, rpq.MustParse("Transfer"), a3, a5)
	r2 := FromProduct(g, rpq.MustParse("Transfer"), a3, a4)
	u, err := Union(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	count, infinite := u.Cardinality()
	if infinite {
		t.Fatal("finite union misreported")
	}
	// a3→a5 has 1 direct transfer (t7); a3→a4 has 1 (t6): union = 2.
	if count.Int64() != 2 {
		t.Errorf("union cardinality = %v, want 2", count)
	}
	paths := u.Enumerate(10)
	if len(paths) != 2 {
		t.Errorf("union enumerated %d", len(paths))
	}
	// Union over different graphs is rejected.
	other := gen.APath(1, "a")
	r3 := FromProduct(other, rpq.MustParse("a"), 0, 1)
	if _, err := Union(r1, r3); err == nil {
		t.Error("cross-graph union should fail")
	}
}
