package dlrpq

import "fmt"

// ATrans is a transition of an atom automaton: consuming one atom moves to
// state To.
type ATrans struct {
	Atom Atom
	To   int
}

// ANFA is the Glushkov automaton of a dl-RPQ over the atom alphabet. It is
// the finite-state skeleton of the register automaton used for evaluation:
// states track the regular structure, while value assignments ν (the
// registers) live in the evaluation configurations.
type ANFA struct {
	NumStates int
	Start     int
	Accept    []bool
	Trans     [][]ATrans
}

// Compile builds the atom automaton of e via the Glushkov construction.
func Compile(e Expr) *ANFA {
	core := Desugar(e)
	g := &aglushkov{}
	info := g.analyze(core)
	a := &ANFA{
		NumStates: len(g.positions) + 1,
		Start:     0,
		Accept:    make([]bool, len(g.positions)+1),
		Trans:     make([][]ATrans, len(g.positions)+1),
	}
	if info.nullable {
		a.Accept[0] = true
	}
	add := func(from, pos int) {
		a.Trans[from] = append(a.Trans[from], ATrans{Atom: g.positions[pos], To: pos + 1})
	}
	for _, p := range info.first {
		add(0, p)
	}
	for p, follows := range g.follow {
		for _, q := range follows {
			add(p+1, q)
		}
	}
	for _, p := range info.last {
		a.Accept[p+1] = true
	}
	return a
}

type aglushkov struct {
	positions []Atom
	follow    [][]int
}

type ainfo struct {
	nullable bool
	first    []int
	last     []int
}

func (g *aglushkov) analyze(e Expr) ainfo {
	switch n := e.(type) {
	case Epsilon:
		return ainfo{nullable: true}
	case Atom:
		g.positions = append(g.positions, n)
		g.follow = append(g.follow, nil)
		p := len(g.positions) - 1
		return ainfo{first: []int{p}, last: []int{p}}
	case Concat:
		if len(n.Parts) == 0 {
			return ainfo{nullable: true}
		}
		acc := g.analyze(n.Parts[0])
		for _, part := range n.Parts[1:] {
			next := g.analyze(part)
			for _, l := range acc.last {
				g.follow[l] = append(g.follow[l], next.first...)
			}
			merged := ainfo{nullable: acc.nullable && next.nullable}
			merged.first = append(merged.first, acc.first...)
			if acc.nullable {
				merged.first = append(merged.first, next.first...)
			}
			merged.last = append(merged.last, next.last...)
			if next.nullable {
				merged.last = append(merged.last, acc.last...)
			}
			acc = merged
		}
		return acc
	case Union:
		var out ainfo
		for _, alt := range n.Alts {
			ai := g.analyze(alt)
			out.nullable = out.nullable || ai.nullable
			out.first = append(out.first, ai.first...)
			out.last = append(out.last, ai.last...)
		}
		return out
	case Star:
		si := g.analyze(n.Sub)
		for _, l := range si.last {
			g.follow[l] = append(g.follow[l], si.first...)
		}
		return ainfo{nullable: true, first: si.first, last: si.last}
	case Repeat:
		panic("dlrpq: Compile requires desugared input (internal error)")
	default:
		panic(fmt.Sprintf("dlrpq: unknown expression type %T", e))
	}
}
