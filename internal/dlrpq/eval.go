package dlrpq

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"graphquery/internal/automata"
	"graphquery/internal/eval"
	"graphquery/internal/gpath"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
)

// ErrUnbounded is returned when mode-all enumeration has no MaxLen/Limit.
var ErrUnbounded = errors.New("dlrpq: unbounded enumeration under mode all requires MaxLen or Limit")

// Options bound result enumeration. MaxLen bounds len(p) (edge count).
type Options struct {
	MaxLen int
	Limit  int
	// Meter, when non-nil, enforces cooperative cancellation and per-query
	// resource budgets across the configuration search; with a nil meter
	// evaluation never returns eval.ErrCanceled/eval.ErrBudgetExceeded.
	Meter *eval.Meter
	// Counters, when non-nil, receives runtime statistics (configurations
	// expanded) from the search loops.
	Counters *pg.Counters
}

// assignment is a value assignment ν: DataVar → Values (partial).
type assignment map[string]graph.Value

func (v assignment) key() string {
	if len(v) == 0 {
		return ""
	}
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		val := v[k]
		fmt.Fprintf(&b, "%s=%d:%s;", k, val.Kind(), val.String())
	}
	return b.String()
}

func (v assignment) with(x string, val graph.Value) assignment {
	out := make(assignment, len(v)+1)
	for k, w := range v {
		out[k] = w
	}
	out[x] = val
	return out
}

// matchAtom checks whether atom can be applied to object o under ν,
// returning the updated assignment. The object's kind must already agree
// with the atom (callers guarantee this).
func matchAtom(g *graph.Graph, a Atom, o graph.Object, nu assignment) (assignment, bool) {
	if a.Test == nil {
		lab := g.Label(o)
		if a.Wild {
			for _, ex := range a.Except {
				if lab == ex {
					return nil, false
				}
			}
			return nu, true
		}
		if lab != a.Name {
			return nil, false
		}
		return nu, true
	}
	t := a.Test
	val, defined := g.Prop(o, t.Prop)
	if t.Assign {
		if !defined {
			return nil, false // assignment from an undefined property fails
		}
		return nu.with(t.AssignVar, val), true
	}
	if !defined {
		return nil, false
	}
	var rhs graph.Value
	if t.UseConst {
		rhs = t.Const
	} else {
		stored, ok := nu[t.CmpVar]
		if !ok {
			return nil, false // comparing against an unset data variable
		}
		rhs = stored
	}
	if !t.Op.Apply(val, rhs) {
		return nil, false
	}
	return nu, true
}

// config is an evaluation configuration: the current (last) object of the
// path being built — or none at the start — the automaton state, and ν.
type config struct {
	hasObj bool
	obj    graph.Object
	state  int
	nu     assignment
}

func (c config) key() string {
	var b strings.Builder
	if c.hasObj {
		if c.obj.IsEdge() {
			fmt.Fprintf(&b, "E%d", c.obj.Index())
		} else {
			fmt.Fprintf(&b, "N%d", c.obj.Index())
		}
	} else {
		b.WriteByte('-')
	}
	fmt.Fprintf(&b, "#%d#", c.state)
	b.WriteString(c.nu.key())
	return b.String()
}

// move is one application of an atom: the successor configuration, the
// object appended to the path (if any), the binding append (if any), and
// whether a new edge was consumed (cost 1).
type move struct {
	next     config
	appended bool
	appObj   graph.Object
	bindVar  string // non-empty when appObj (or collapsed object) joins a list
	bindObj  graph.Object
	cost     int
}

// edgeGuard maps an edge atom's label constraint onto a runtime guard: a
// named label is the positive singleton, a wildcard is co-finite over its
// exception list, and a test atom constrains no label at all (the data
// test runs in matchAtom).
func edgeGuard(a Atom) automata.Guard {
	if a.Test != nil {
		return automata.GuardAny()
	}
	if a.Wild {
		ex := append([]string(nil), a.Except...)
		sort.Strings(ex)
		return automata.Guard{Negated: true, Labels: ex}
	}
	return automata.GuardLabel(a.Name)
}

// anfaMachine pairs a compiled ANFA with its edge-atom guards resolved
// against one graph through the shared runtime — the dl-RPQ instantiation
// of pg's guard resolution. A positive guard carries the graph's label ID
// so candidate edges come from the per-label index; wildcard and test
// atoms become co-finite guards filtering dense lists. ok is false when a
// named label does not occur in the graph at all: that transition can
// never consume an edge there.
type anfaMachine struct {
	a      *ANFA
	guards [][]resolvedAtom // aligned with a.Trans; node atoms stay zero
}

type resolvedAtom struct {
	rg pg.ResolvedGuard
	ok bool
}

func newANFAMachine(g *graph.Graph, a *ANFA) *anfaMachine {
	m := &anfaMachine{a: a, guards: make([][]resolvedAtom, len(a.Trans))}
	for q, ts := range a.Trans {
		m.guards[q] = make([]resolvedAtom, len(ts))
		for i, tr := range ts {
			if tr.Atom.Edge {
				rg, ok := pg.Resolve(g, edgeGuard(tr.Atom))
				m.guards[q][i] = resolvedAtom{rg: rg, ok: ok}
			}
		}
	}
	return m
}

// successors enumerates the legal atom applications from cfg. anchor is the
// required src(p) for paths still empty (-1 for unanchored evaluation).
func successors(g *graph.Graph, mach *anfaMachine, cfg config, anchor int) []move {
	a := mach.a
	var out []move
	for ti, tr := range a.Trans[cfg.state] {
		atom := tr.Atom
		if !atom.Edge {
			// Node atom: candidate objects per the concatenation rules.
			var candidates []int
			var appended bool
			switch {
			case !cfg.hasObj:
				appended = true
				if anchor >= 0 {
					candidates = []int{anchor}
				} else {
					for n := 0; n < g.NumNodes(); n++ {
						if g.NodeAlive(n) { // skip tombstones under a mutation overlay
							candidates = append(candidates, n)
						}
					}
				}
			case cfg.obj.IsNode():
				appended = false // collapse onto the same node
				candidates = []int{cfg.obj.Index()}
			default: // last object is an edge: the node must be its target
				appended = true
				candidates = []int{g.Edge(cfg.obj.Index()).Tgt}
			}
			for _, n := range candidates {
				o := graph.MakeNodeObject(n)
				nu, ok := matchAtom(g, atom, o, cfg.nu)
				if !ok {
					continue
				}
				m := move{
					next:     config{hasObj: true, obj: o, state: tr.To, nu: nu},
					appended: appended,
					appObj:   o,
				}
				if atom.Test == nil && atom.Var != "" {
					m.bindVar, m.bindObj = atom.Var, o
				}
				out = append(out, m)
			}
		} else {
			// Edge atom: candidate edges come from the transition's resolved
			// guard (matchAtom still applies the atom's full check to every
			// candidate, so this only prunes edges the atom would reject
			// anyway).
			ra := mach.guards[cfg.state][ti]
			var candidates []int
			collect := func(ei int) { candidates = append(candidates, ei) }
			var appended bool
			var cost int
			switch {
			case !cfg.hasObj:
				appended, cost = true, 1
				if ra.ok {
					if anchor >= 0 {
						ra.rg.OutEdges(g, anchor, collect)
					} else {
						ra.rg.Edges(g, collect)
					}
				}
			case cfg.obj.IsEdge():
				appended, cost = false, 0 // collapse onto the same edge
				candidates = []int{cfg.obj.Index()}
			default: // last object is a node: outgoing edges
				appended, cost = true, 1
				if ra.ok {
					ra.rg.OutEdges(g, cfg.obj.Index(), collect)
				}
			}
			for _, e := range candidates {
				o := graph.MakeEdgeObject(e)
				nu, ok := matchAtom(g, atom, o, cfg.nu)
				if !ok {
					continue
				}
				m := move{
					next:     config{hasObj: true, obj: o, state: tr.To, nu: nu},
					appended: appended,
					appObj:   o,
					cost:     cost,
				}
				if atom.Test == nil && atom.Var != "" {
					m.bindVar, m.bindObj = atom.Var, o
				}
				out = append(out, m)
			}
		}
	}
	return out
}

// endpointOK reports whether tgt(p) = dst for the path ending in cfg.obj.
func endpointOK(g *graph.Graph, cfg config, dst int) bool {
	if !cfg.hasObj {
		return false // the empty path has no endpoints
	}
	if cfg.obj.IsNode() {
		return cfg.obj.Index() == dst
	}
	return g.Edge(cfg.obj.Index()).Tgt == dst
}

// EvalBetween computes m(σ_{u,v}(⟦R⟧_G)): the (p, µ) results whose path runs
// from src to dst, under a path mode, with the mode applied after endpoint
// selection (Section 3.1.5 via Section 3.2.2).
//
// Idle derivation loops — zero-cost cycles through a repeated configuration
// that only pump list variables (e.g. ((a^z))* re-collapsing on one node) —
// are cut: each configuration is visited at most once between consecutive
// edge consumptions. This keeps result sets finite without affecting which
// paths are found.
func EvalBetween(g *graph.Graph, e Expr, src, dst int, mode eval.Mode, opts Options) ([]gpath.PathBinding, error) {
	a := Compile(e)
	switch mode {
	case eval.All:
		if opts.MaxLen <= 0 && opts.Limit <= 0 {
			return nil, ErrUnbounded
		}
		if opts.MaxLen <= 0 {
			// Limit-only: iteratively deepen until enough results or the
			// search space is exhausted at the configuration level.
			return deepen(g, a, src, dst, opts.Limit, opts.Meter, opts.Counters)
		}
		return search(g, a, src, dst, opts, 0)
	case eval.Shortest:
		best, reachable, err := shortestDistance(g, a, src, dst, opts.Meter, opts.Counters)
		if err != nil {
			return nil, err
		}
		if !reachable {
			return nil, nil
		}
		return search(g, a, src, dst, Options{MaxLen: best, Limit: opts.Limit, Meter: opts.Meter, Counters: opts.Counters}, flagExact)
	case eval.Simple:
		return search(g, a, src, dst, opts, modeSimple)
	case eval.Trail:
		return search(g, a, src, dst, opts, modeTrail)
	default:
		return nil, fmt.Errorf("dlrpq: unknown mode %v", mode)
	}
}

// EvalBetweenCtx is EvalBetween under a context: when opts.Meter is unset,
// one is minted from ctx (with no budget) so cancellation reaches the
// configuration search.
func EvalBetweenCtx(ctx context.Context, g *graph.Graph, e Expr, src, dst int, mode eval.Mode, opts Options) ([]gpath.PathBinding, error) {
	if opts.Meter == nil {
		opts.Meter = eval.NewMeter(ctx, eval.Budget{})
	}
	return EvalBetween(g, e, src, dst, mode, opts)
}

// Eval enumerates ⟦R⟧_G unanchored (all endpoints), requiring MaxLen.
func Eval(g *graph.Graph, e Expr, opts Options) ([]gpath.PathBinding, error) {
	if opts.MaxLen <= 0 {
		return nil, ErrUnbounded
	}
	a := Compile(e)
	out, _, err := searchAnchor(g, a, -1, -1, opts, 0)
	if err != nil {
		return nil, err
	}
	return sortPBs(out, opts.Limit), nil
}

type searchFlags int

const (
	modeSimple searchFlags = 1 << iota
	modeTrail
	flagExact
)

func search(g *graph.Graph, a *ANFA, src, dst int, opts Options, flags searchFlags) ([]gpath.PathBinding, error) {
	out, _, err := searchAnchor(g, a, src, dst, opts, flags)
	if err != nil {
		return nil, err
	}
	return sortPBs(out, opts.Limit), nil
}

// searchAnchor is the core DFS over configurations. src = -1 means any
// start; dst = -1 means any end. truncated reports whether some branch was
// cut by the MaxLen bound (i.e. deeper results may exist). Budget checks
// run through the runtime's Ticker — one step per configuration expansion
// — and the meter is charged one row per emitted result.
func searchAnchor(g *graph.Graph, a *ANFA, src, dst int, opts Options, flags searchFlags) ([]gpath.PathBinding, bool, error) {
	m := opts.Meter
	tick := pg.NewTicker(m, opts.Counters)
	mach := newANFAMachine(g, a)
	seen := map[string]struct{}{}
	var out []gpath.PathBinding

	var objs []graph.Object // current path object sequence
	var binds []struct {
		v string
		o graph.Object
	}
	usedNodes := map[int]struct{}{}
	usedEdges := map[int]struct{}{}
	limitHit := false
	truncated := false
	var stopErr error

	emit := func() {
		p, err := gpath.New(g, objs...)
		if err != nil {
			panic("dlrpq: built invalid path: " + err.Error())
		}
		var mu gpath.Binding
		for _, b := range binds {
			if mu == nil {
				mu = gpath.Binding{}
			}
			mu[b.v] = append(mu[b.v], b.o)
		}
		pb := gpath.PathBinding{Path: p, Binding: mu}
		k := pb.Key()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, pb)
			if err := m.AddRows(1); err != nil {
				stopErr = err
				return
			}
			if opts.Limit > 0 && len(out) >= opts.Limit && flags&(modeSimple|modeTrail) != 0 {
				limitHit = true
			}
		}
	}

	var dfs func(cfg config, edgesUsed int, sinceEdge map[string]struct{})
	dfs = func(cfg config, edgesUsed int, sinceEdge map[string]struct{}) {
		if limitHit || stopErr != nil {
			return
		}
		if err := tick.Step(); err != nil {
			stopErr = err
			return
		}
		if a.Accept[cfg.state] && cfg.hasObj {
			if dst == -1 || endpointOK(g, cfg, dst) {
				if flags&flagExact == 0 || edgesUsed == opts.MaxLen {
					emit()
				}
			}
		}
		for _, m := range successors(g, mach, cfg, src) {
			if m.cost > 0 {
				if opts.MaxLen > 0 && edgesUsed+1 > opts.MaxLen {
					truncated = true
					continue
				}
				if flags&modeTrail != 0 {
					if _, used := usedEdges[m.appObj.Index()]; used {
						continue
					}
				}
			}
			if m.appended && m.appObj.IsNode() && flags&modeSimple != 0 {
				if _, used := usedNodes[m.appObj.Index()]; used {
					continue
				}
			}
			nextSince := sinceEdge
			if m.cost > 0 {
				nextSince = map[string]struct{}{}
			} else {
				k := m.next.key()
				if _, loop := sinceEdge[k]; loop {
					continue // idle derivation loop
				}
				nextSince = cloneSet(sinceEdge)
				nextSince[k] = struct{}{}
			}

			if m.appended {
				objs = append(objs, m.appObj)
				if m.appObj.IsNode() {
					usedNodes[m.appObj.Index()] = struct{}{}
				} else {
					usedEdges[m.appObj.Index()] = struct{}{}
				}
			}
			hadBind := false
			if m.bindVar != "" {
				binds = append(binds, struct {
					v string
					o graph.Object
				}{m.bindVar, m.bindObj})
				hadBind = true
			}

			dfs(m.next, edgesUsed+m.cost, nextSince)

			if hadBind {
				binds = binds[:len(binds)-1]
			}
			if m.appended {
				objs = objs[:len(objs)-1]
				if m.appObj.IsNode() {
					delete(usedNodes, m.appObj.Index())
				} else {
					delete(usedEdges, m.appObj.Index())
				}
			}
		}
	}

	start := config{state: a.Start}
	dfs(start, 0, map[string]struct{}{start.key(): {}})
	if stopErr == nil {
		stopErr = tick.Flush()
	}
	if stopErr != nil {
		return nil, false, stopErr
	}
	return out, truncated, nil
}

func cloneSet(s map[string]struct{}) map[string]struct{} {
	out := make(map[string]struct{}, len(s)+1)
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

// shortestDistance runs a 0–1 BFS over configurations to find the minimal
// len(p) of any result from src to dst. reachable is false when there is
// none. This is the register-automaton product search of Section 6.4: the
// configuration space is finite because ν ranges over the active domain.
func shortestDistance(g *graph.Graph, a *ANFA, src, dst int, m *eval.Meter, cnt *pg.Counters) (int, bool, error) {
	type qitem struct {
		cfg  config
		dist int
	}
	tick := pg.NewTicker(m, cnt)
	mach := newANFAMachine(g, a)
	dist := map[string]int{}
	start := config{state: a.Start}
	dist[start.key()] = 0
	deque := []qitem{{start, 0}}
	best := -1
	for len(deque) > 0 {
		if err := tick.Step(); err != nil {
			return 0, false, err
		}
		it := deque[0]
		deque = deque[1:]
		k := it.cfg.key()
		if d, ok := dist[k]; ok && d < it.dist {
			continue // stale entry
		}
		if a.Accept[it.cfg.state] && endpointOK(g, it.cfg, dst) {
			if best == -1 || it.dist < best {
				best = it.dist
			}
		}
		if best != -1 && it.dist >= best {
			continue
		}
		for _, m := range successors(g, mach, it.cfg, src) {
			nd := it.dist + m.cost
			nk := m.next.key()
			if d, ok := dist[nk]; !ok || nd < d {
				dist[nk] = nd
				if m.cost == 0 {
					deque = append([]qitem{{m.next, nd}}, deque...)
				} else {
					deque = append(deque, qitem{m.next, nd})
				}
			}
		}
	}
	if err := tick.Flush(); err != nil {
		return 0, false, err
	}
	if best == -1 {
		return 0, false, nil
	}
	return best, true, nil
}

// deepen implements Limit-only mode-all enumeration by iterative deepening
// on path length, stopping when the limit is reached or the search space is
// exhausted (no branch hit the depth bound). Re-searched configurations are
// re-charged to the meter: the repeated work is real work.
func deepen(g *graph.Graph, a *ANFA, src, dst, limit int, m *eval.Meter, cnt *pg.Counters) ([]gpath.PathBinding, error) {
	for maxLen := 1; ; maxLen *= 2 {
		res, truncated, err := searchAnchor(g, a, src, dst, Options{MaxLen: maxLen, Meter: m, Counters: cnt}, 0)
		if err != nil {
			return nil, err
		}
		res = sortPBs(res, 0)
		if len(res) >= limit {
			return res[:limit], nil
		}
		if !truncated {
			return res, nil
		}
	}
}

func sortPBs(pbs []gpath.PathBinding, limit int) []gpath.PathBinding {
	sort.Slice(pbs, func(i, j int) bool {
		pi, pj := pbs[i], pbs[j]
		if pi.Path.Len() != pj.Path.Len() {
			return pi.Path.Len() < pj.Path.Len()
		}
		if ki, kj := pi.Path.Key(), pj.Path.Key(); ki != kj {
			return ki < kj
		}
		return pi.Binding.Key() < pj.Binding.Key()
	})
	if limit > 0 && len(pbs) > limit {
		pbs = pbs[:limit]
	}
	return pbs
}
