package dlrpq

import (
	"errors"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
)

func TestParseAndString(t *testing.T) {
	tests := []struct{ in, want string }{
		{"(a)", "(a)"},
		{"[a]", "[a]"},
		{"(a^z)", "(a^z)"},
		{"[a^z]", "[a^z]"},
		{"()", "()"},
		{"[]", "[]"},
		{"(_^z)", "(_^z)"},
		{"[!{a,b}]", "[!{a,b}]"},
		{"(x := date)", "(x := date)"},
		{"[date > x]", "[date > x]"},
		{"(amount < 4500000)", "(amount < 4500000)"},
		{"(owner = 'Megan')", "(owner = 'Megan')"},
		{"(a)[b](c)", "(a) [b] (c)"},
		{"{[a]()}* (b)", "{[a] ()}* (b)"},
		{"(a) | [b]", "(a) | [b]"},
		{"[a]{2,3}", "[a]{2,3}"},
		{"eps", "eps"},
	}
	for _, tc := range tests {
		e, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		// Round trip.
		e2, err := Parse(e.String())
		if err != nil {
			t.Errorf("reparse %q: %v", e.String(), err)
			continue
		}
		if e2.String() != e.String() {
			t.Errorf("round trip %q -> %q", e.String(), e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "(", "(a", "[a", "a", "(a))", "(x :=)", "(date >)",
		"(a^)", "{(a)", "[a]{3,1}", "(!{)", "(a) |",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestVarsAndDataVars(t *testing.T) {
	e := MustParse("(a^z)(x := date) { [_^w](date > x)(x := date) }*")
	if got := Vars(e); len(got) != 2 || got[0] != "w" || got[1] != "z" {
		t.Errorf("Vars = %v", got)
	}
	if got := DataVars(e); len(got) != 1 || got[0] != "x" {
		t.Errorf("DataVars = %v", got)
	}
}

// TestNodeAtomsCollapse: consecutive node atoms match the same node, like
// (a^z)(date < x)(x := date) in Section 3.2.1.
func TestNodeAtomsCollapse(t *testing.T) {
	g := graph.NewBuilder().
		AddNode("n", "a", graph.Props{"date": graph.Int(5)}).
		MustBuild()
	// (a^z)(date > 3): both atoms on the single node n.
	res, err := EvalBetween(g, MustParse("(a^z)(date > 3)"), 0, 0, eval.All, Options{MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	if res[0].Path.NumObjects() != 1 {
		t.Errorf("collapse failed: path has %d objects", res[0].Path.NumObjects())
	}
	if got := res[0].Binding.Format(g); got != "{z -> list(n)}" {
		t.Errorf("binding = %s", got)
	}
	// Failing test: date > 7.
	res, err = EvalBetween(g, MustParse("(a^z)(date > 7)"), 0, 0, eval.All, Options{MaxLen: 1})
	if err != nil || len(res) != 0 {
		t.Errorf("date > 7 should not match: %d results, err %v", len(res), err)
	}
}

// TestEdgeAtomsCollapse: the symmetric treatment — [a^z][date < x][x := date]
// is matched by a single edge (the paper contrasts this with GQL).
func TestEdgeAtomsCollapse(t *testing.T) {
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).
		AddEdge("e", "a", "u", "v", graph.Props{"date": graph.Int(9)}).
		MustBuild()
	res, err := EvalBetween(g, MustParse("[a^z][date > 5]"), g.MustNode("u"), g.MustNode("v"),
		eval.All, Options{MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	if res[0].Path.NumObjects() != 1 || !res[0].Path.Object(0).IsEdge() {
		t.Errorf("edge collapse failed: %s", res[0].Path.Format(g))
	}
	if got := res[0].Binding.Format(g); got != "{z -> list(e)}" {
		t.Errorf("binding = %s", got)
	}
}

// TestExample21Nodes: increasing date values on nodes.
func TestExample21Nodes(t *testing.T) {
	inc := MustParse("(_^z)(x := date) { [_](_^z)(date > x)(x := date) }*")
	up := gen.DateNodePath("a", []int64{1, 2, 3, 4})
	res, err := EvalBetween(up, inc, up.MustNode("v0"), up.MustNode("v3"), eval.All, Options{MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("increasing node dates: %d results, want 1", len(res))
	}
	if got := len(res[0].Binding.Get("z")); got != 4 {
		t.Errorf("z collected %d nodes, want 4", got)
	}
	down := gen.DateNodePath("a", []int64{3, 4, 1, 2})
	res, err = EvalBetween(down, inc, down.MustNode("v0"), down.MustNode("v3"), eval.All, Options{MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("3,4,1,2 node dates must not match end-to-end, got %d results", len(res))
	}
}

// TestExample21Edges: the same property on edges — expressible thanks to
// symmetry, and correctly rejecting the 3,4,1,2 counterexample that defeats
// the naive GQL pattern (Example 3 / Proposition 23).
func TestExample21Edges(t *testing.T) {
	// Node-to-node variant: () [_^z][x := date] { () [_^z][date > x][x := date] }* ()
	inc := MustParse("() [_^z][x := date] { () [_^z][date > x][x := date] }* ()")
	up := gen.DateEdgePath("a", []int64{1, 2, 3, 4})
	res, err := EvalBetween(up, inc, up.MustNode("v0"), up.MustNode("v4"), eval.All, Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("increasing edge dates: %d results, want 1", len(res))
	}
	if got := len(res[0].Binding.Get("z")); got != 4 {
		t.Errorf("z collected %d edges, want 4", got)
	}
	// The paper's counterexample: 03-01, 04-01, 01-01, 02-01.
	down := gen.DateEdgePath("a", []int64{3, 4, 1, 2})
	res, err = EvalBetween(down, inc, down.MustNode("v0"), down.MustNode("v4"), eval.All, Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("3,4,1,2 edge dates must not match, got %d results", len(res))
	}
	// Edge-to-edge variant returns edge-to-edge paths.
	e2e := MustParse("[_^z][x := date] { () [_^z][date > x][x := date] }*")
	res, err = EvalBetween(up, e2e, up.MustNode("v0"), up.MustNode("v4"), eval.All, Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("edge-to-edge: %d results, want 1", len(res))
	}
	p := res[0].Path
	if p.StartsWithNode() || p.EndsWithNode() {
		t.Errorf("expected an edge-to-edge path, got %s", p.Format(up))
	}
}

// TestE20DataFilters reproduces the Section 6.3 "Data Filters" example on
// the Figure 3 graph: the shortest Mike→Rebecca transfer path with at least
// one transfer under 4.5M is path(a3,t6,a4,t9,a6,t10,a5); with at least two
// such transfers the shortest solution must traverse a cycle.
func TestE20DataFilters(t *testing.T) {
	g := gen.BankProperty()
	mike, rebecca := g.MustNode("a3"), g.MustNode("a5")

	// Baseline: unfiltered shortest is the direct t7.
	direct, err := EvalBetween(g, MustParse("() {[Transfer]()}+"), mike, rebecca, eval.Shortest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != 1 || direct[0].Path.Format(g) != "path(a3, t7, a5)" {
		t.Fatalf("unfiltered shortest: %d results", len(direct))
	}

	cheap := "{[Transfer]()}* [Transfer][amount < 4500000] () {[Transfer]()}*"
	one, err := EvalBetween(g, MustParse("() "+cheap), mike, rebecca, eval.Shortest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("one-cheap shortest: %d results", len(one))
	}
	if got := one[0].Path.Format(g); got != "path(a3, t6, a4, t9, a6, t10, a5)" {
		t.Errorf("one-cheap shortest = %s", got)
	}
	if one[0].Path.Len() != 3 {
		t.Errorf("length = %d, want 3 (beyond the unfiltered shortest)", one[0].Path.Len())
	}

	two, err := EvalBetween(g, MustParse("() "+cheap+" [Transfer][amount < 4500000] () {[Transfer]()}*"),
		mike, rebecca, eval.Shortest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(two) == 0 {
		t.Fatal("two-cheap: no results")
	}
	got := two[0].Path
	if got.Len() != 4 {
		t.Errorf("two-cheap shortest length = %d, want 4", got.Len())
	}
	if got.IsTrail() {
		t.Errorf("two-cheap shortest should need a cycle (repeat an edge): %s", got.Format(g))
	}
	if want := "path(a3, t7, a5, t4, a1, t1, a3, t7, a5)"; got.Format(g) != want {
		t.Errorf("two-cheap shortest = %s, want %s", got.Format(g), want)
	}
}

func TestAssignFromUndefinedPropertyFails(t *testing.T) {
	g := graph.NewBuilder().AddNode("n", "a", nil).MustBuild()
	res, err := EvalBetween(g, MustParse("(x := date)"), 0, 0, eval.All, Options{MaxLen: 1})
	if err != nil || len(res) != 0 {
		t.Errorf("assign from undefined property: %d results, err %v", len(res), err)
	}
	// Comparing an unset data variable also fails.
	res, err = EvalBetween(g, MustParse("(a)(date > x)"), 0, 0, eval.All, Options{MaxLen: 1})
	if err != nil || len(res) != 0 {
		t.Errorf("unset data variable: %d results, err %v", len(res), err)
	}
}

func TestModes(t *testing.T) {
	// u ⇄ v plus u → w; (a-labeled). From u to w under {[a]()}+.
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).AddNode("w", "", nil).
		AddEdge("e1", "a", "u", "v", nil).
		AddEdge("e2", "a", "v", "u", nil).
		AddEdge("e3", "a", "u", "w", nil).
		MustBuild()
	u, w := g.MustNode("u"), g.MustNode("w")
	e := MustParse("() {[a]()}+")
	simple, err := EvalBetween(g, e, u, w, eval.Simple, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(simple) != 1 {
		t.Errorf("simple: %d results, want 1", len(simple))
	}
	trail, err := EvalBetween(g, e, u, w, eval.Trail, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trail) != 2 {
		t.Errorf("trail: %d results, want 2", len(trail))
	}
	shortest, err := EvalBetween(g, e, u, w, eval.Shortest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(shortest) != 1 || shortest[0].Path.Len() != 1 {
		t.Errorf("shortest: %d results", len(shortest))
	}
}

func TestEvalUnanchored(t *testing.T) {
	g := gen.BankProperty()
	// All accounts with a blocked flag: (isBlocked = 'yes').
	res, err := Eval(g, MustParse("(isBlocked = 'yes')"), Options{MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, pb := range res {
		got[pb.Path.Format(g)] = true
	}
	if len(got) != 2 || !got["path(a2)"] || !got["path(a4)"] {
		t.Errorf("blocked accounts = %v, want {a2, a4}", got)
	}
}

func TestErrUnbounded(t *testing.T) {
	g := gen.Cycle(3, "a")
	if _, err := EvalBetween(g, MustParse("() {[a]()}*"), 0, 0, eval.All, Options{}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
	if _, err := Eval(g, MustParse("(a)"), Options{}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("Eval err = %v, want ErrUnbounded", err)
	}
}

func TestLimitOnlyDeepening(t *testing.T) {
	g := gen.Cycle(3, "a")
	res, err := EvalBetween(g, MustParse("() {[a]()}*"), 0, 0, eval.All, Options{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("limit-only: %d results, want 2", len(res))
	}
	if res[0].Path.Len() != 0 || res[1].Path.Len() != 3 {
		t.Errorf("lengths = %d, %d; want 0, 3", res[0].Path.Len(), res[1].Path.Len())
	}
}

func TestIdleLoopsAreCut(t *testing.T) {
	// {(a^z)}* could pump z forever on a single node; the evaluator cuts
	// idle loops, so each node yields finitely many results.
	g := graph.NewBuilder().AddNode("n", "a", nil).MustBuild()
	res, err := EvalBetween(g, MustParse("{(a^z)}*"), 0, 0, eval.All, Options{MaxLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("expected at least the single-visit result")
	}
	for _, pb := range res {
		if len(pb.Binding.Get("z")) > 2 {
			t.Errorf("idle pumping not cut: |z| = %d", len(pb.Binding.Get("z")))
		}
	}
}

func TestWildcardExceptAtoms(t *testing.T) {
	g := gen.BankEdgeLabeled()
	// Paths a3→a5 whose single edge is NOT a Transfer: none exist.
	res, err := EvalBetween(g, MustParse("() [!{Transfer}] ()"), g.MustNode("a3"), g.MustNode("a5"),
		eval.All, Options{MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("non-Transfer a3→a5: %d results, want 0", len(res))
	}
	// a3 → Mike via a non-Transfer edge (owner).
	res, err = EvalBetween(g, MustParse("() [!{Transfer}^z] ()"), g.MustNode("a3"), g.MustNode("Mike"),
		eval.All, Options{MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Binding.Format(g) != "{z -> list(r3)}" {
		t.Errorf("owner edge: %d results", len(res))
	}
}

func TestShortestNoMatch(t *testing.T) {
	g := gen.APath(2, "a")
	res, err := EvalBetween(g, MustParse("() [b] ()"), 0, 1, eval.Shortest, Options{})
	if err != nil || res != nil {
		t.Errorf("no match: res=%v err=%v", res, err)
	}
}
