// Package dlrpq implements RPQs with data tests and list variables
// (dl-RPQs, Section 3.2.1) — the paper's primary formalism. Expressions are
// regular expressions over node atoms (a), (a^z), (et) and edge atoms [a],
// [a^z], [et], where et ranges over the ETest grammar
//
//	ETest := x := pname | pname op c | pname op x
//
// with op ∈ {=, ≠, <, >, ≤, ≥}. Nodes and edges are treated symmetrically:
// consecutive atoms of the same kind match the *same* object (the
// boundary-collapse rule of path concatenation), which is what makes
// "increasing property values on edges" as easy to express as on nodes
// (Example 21) — the capability GQL lacks (Proposition 23, Section 5.2).
//
// Evaluation (eval.go) follows the register-automaton approach referenced
// in Section 6.4 "Data Filters": configurations pair a position in the
// graph with an automaton state and a value assignment ν drawn lazily from
// the active domain.
package dlrpq

import (
	"fmt"
	"sort"
	"strings"

	"graphquery/internal/graph"
)

// Test is one element test (ETest). Exactly one of the three forms holds:
//
//	Assign:   AssignVar := Prop        (x := pname)
//	constant: Prop Op Const            (pname op c)
//	variable: Prop Op CmpVar           (pname op x)
type Test struct {
	Assign    bool
	AssignVar string

	Prop string
	Op   graph.CompareOp

	UseConst bool
	Const    graph.Value
	CmpVar   string
}

// AssignTest returns the test x := pname.
func AssignTest(x, pname string) Test { return Test{Assign: true, AssignVar: x, Prop: pname} }

// ConstTest returns the test pname op c.
func ConstTest(pname string, op graph.CompareOp, c graph.Value) Test {
	return Test{Prop: pname, Op: op, UseConst: true, Const: c}
}

// VarTest returns the test pname op x.
func VarTest(pname string, op graph.CompareOp, x string) Test {
	return Test{Prop: pname, Op: op, CmpVar: x}
}

func (t Test) String() string {
	if t.Assign {
		return t.AssignVar + " := " + t.Prop
	}
	if t.UseConst {
		c := t.Const.String()
		if t.Const.Kind() == graph.KindString {
			c = "'" + c + "'"
		}
		return t.Prop + " " + t.Op.String() + " " + c
	}
	return t.Prop + " " + t.Op.String() + " " + t.CmpVar
}

// Atom matches a single object: a node when Edge is false — rendered (…) —
// or an edge when Edge is true — rendered […]. The content is either a
// label pattern (Name/Wild/Except, with optional list variable Var) or an
// element test.
type Atom struct {
	Edge bool

	// Label-pattern form:
	Name   string
	Wild   bool
	Except []string
	Var    string

	// Test form (mutually exclusive with the label form):
	Test *Test
}

// Expr is a node of the dl-RPQ AST.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Epsilon is ε (matches without consuming an object).
type Epsilon struct{}

// Concat is R₁·…·Rₙ.
type Concat struct{ Parts []Expr }

// Union is R₁+…+Rₙ.
type Union struct{ Alts []Expr }

// Star is R*.
type Star struct{ Sub Expr }

// Repeat is R{Min,Max}; Max < 0 means unbounded.
type Repeat struct {
	Sub Expr
	Min int
	Max int
}

func (Epsilon) isExpr() {}
func (Atom) isExpr()    {}
func (Concat) isExpr()  {}
func (Union) isExpr()   {}
func (Star) isExpr()    {}
func (Repeat) isExpr()  {}

func (Epsilon) String() string { return "eps" }

func (a Atom) String() string {
	var inner string
	switch {
	case a.Test != nil:
		inner = a.Test.String()
	case a.Wild && len(a.Except) == 0 && a.Var == "":
		inner = ""
	case a.Wild && len(a.Except) == 0:
		inner = "_"
	case a.Wild:
		parts := make([]string, len(a.Except))
		copy(parts, a.Except)
		inner = "!{" + strings.Join(parts, ",") + "}"
	default:
		inner = a.Name
	}
	if a.Var != "" && a.Test == nil {
		inner += "^" + a.Var
	}
	if a.Edge {
		return "[" + inner + "]"
	}
	return "(" + inner + ")"
}

func (c Concat) String() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = childString(p, 2)
	}
	return strings.Join(parts, " ")
}

func (u Union) String() string {
	parts := make([]string, len(u.Alts))
	for i, a := range u.Alts {
		parts[i] = childString(a, 2)
	}
	return strings.Join(parts, " | ")
}

func (s Star) String() string { return childString(s.Sub, 3) + "*" }

func (r Repeat) String() string {
	sub := childString(r.Sub, 3)
	switch {
	case r.Min == 0 && r.Max == 1:
		return sub + "?"
	case r.Min == 1 && r.Max < 0:
		return sub + "+"
	case r.Max < 0:
		return fmt.Sprintf("%s{%d,}", sub, r.Min)
	case r.Min == r.Max:
		return fmt.Sprintf("%s{%d}", sub, r.Min)
	default:
		return fmt.Sprintf("%s{%d,%d}", sub, r.Min, r.Max)
	}
}

func childString(e Expr, parent int) string {
	var prec int
	switch e.(type) {
	case Epsilon, Atom, Star, Repeat:
		prec = 3
	case Concat:
		prec = 2
	case Union:
		prec = 1
	}
	s := e.String()
	if prec < parent {
		return "{" + s + "}"
	}
	return s
}

// Constructors.

// Seq returns the concatenation of parts.
func Seq(parts ...Expr) Expr {
	switch len(parts) {
	case 0:
		return Epsilon{}
	case 1:
		return parts[0]
	default:
		return Concat{Parts: parts}
	}
}

// Alt returns the disjunction of alternatives.
func Alt(alts ...Expr) Expr {
	switch len(alts) {
	case 0:
		panic("dlrpq: Alt needs at least one alternative")
	case 1:
		return alts[0]
	default:
		return Union{Alts: alts}
	}
}

// Kleene returns R*.
func Kleene(e Expr) Expr { return Star{Sub: e} }

// PlusOf returns R⁺.
func PlusOf(e Expr) Expr { return Repeat{Sub: e, Min: 1, Max: -1} }

// Opt returns R?.
func Opt(e Expr) Expr { return Repeat{Sub: e, Min: 0, Max: 1} }

// Vars returns the sorted list variables of e (Var(R)).
func Vars(e Expr) []string {
	set := map[string]struct{}{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case Atom:
			if n.Var != "" && n.Test == nil {
				set[n.Var] = struct{}{}
			}
		case Concat:
			for _, p := range n.Parts {
				walk(p)
			}
		case Union:
			for _, a := range n.Alts {
				walk(a)
			}
		case Star:
			walk(n.Sub)
		case Repeat:
			walk(n.Sub)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DataVars returns the sorted data variables of e (the x's of ETests).
func DataVars(e Expr) []string {
	set := map[string]struct{}{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case Atom:
			if n.Test != nil {
				if n.Test.Assign {
					set[n.Test.AssignVar] = struct{}{}
				} else if !n.Test.UseConst {
					set[n.Test.CmpVar] = struct{}{}
				}
			}
		case Concat:
			for _, p := range n.Parts {
				walk(p)
			}
		case Union:
			for _, a := range n.Alts {
				walk(a)
			}
		case Star:
			walk(n.Sub)
		case Repeat:
			walk(n.Sub)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Desugar expands Repeat into the core grammar.
func Desugar(e Expr) Expr {
	switch n := e.(type) {
	case Epsilon, Atom:
		return e
	case Concat:
		parts := make([]Expr, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = Desugar(p)
		}
		return Concat{Parts: parts}
	case Union:
		alts := make([]Expr, len(n.Alts))
		for i, a := range n.Alts {
			alts[i] = Desugar(a)
		}
		return Union{Alts: alts}
	case Star:
		return Star{Sub: Desugar(n.Sub)}
	case Repeat:
		sub := Desugar(n.Sub)
		var parts []Expr
		for i := 0; i < n.Min; i++ {
			parts = append(parts, sub)
		}
		switch {
		case n.Max < 0:
			parts = append(parts, Star{Sub: sub})
		case n.Max < n.Min:
			panic(fmt.Sprintf("dlrpq: invalid repetition {%d,%d}", n.Min, n.Max))
		default:
			opt := Union{Alts: []Expr{Epsilon{}, sub}}
			for i := n.Min; i < n.Max; i++ {
				parts = append(parts, opt)
			}
		}
		return Seq(parts...)
	default:
		panic(fmt.Sprintf("dlrpq: unknown expression type %T", e))
	}
}
