package dlrpq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"graphquery/internal/graph"
)

// Parse parses the textual dl-RPQ syntax. Atoms are written in GQL-flavored
// brackets — round for nodes, square for edges:
//
//	(a)  (a^z)  ()  (_^z)  (!{a,b})        node atoms
//	[a]  [a^z]  []  [_^z]  [!{a,b}]        edge atoms
//	(x := date)  (date > x)  (amount < 4500000)  ('owner' = 'Megan')
//
// and combined with | (union), juxtaposition (concatenation), postfix
// * + ? {n} {n,m} {n,}, and {…} for grouping (round brackets are taken by
// node atoms). Example 21's node-increasing-dates expression is written
//
//	(a^z)(x := date) { [_](a^z)(date > x)(x := date) }*
func Parse(input string) (Expr, error) {
	p := &parser{src: input}
	p.next()
	if p.tok.kind == tEOF {
		return nil, p.errorf("empty expression")
	}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errorf("unexpected %s", p.tok)
	}
	return e, nil
}

// MustParse parses or panics.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tkind int

const (
	tEOF tkind = iota
	tIdent
	tNumber
	tString
	tPipe
	tStar
	tPlus
	tQuest
	tLParen
	tRParen
	tLBrack
	tRBrack
	tLBrace
	tRBrace
	tComma
	tCaret
	tAssign // :=
	tOp     // = != < > <= >=
	tBangBrace
	tUnder
)

type tok struct {
	kind tkind
	text string
	pos  int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type parser struct {
	src  string
	pos  int
	tok  tok
	save []tok // pushback stack for one-token lookahead
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("dlrpq: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) next() {
	if n := len(p.save); n > 0 {
		p.tok = p.save[n-1]
		p.save = p.save[:n-1]
		return
	}
	for p.pos < len(p.src) && strings.ContainsRune(" \t\n\r", rune(p.src[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = tok{kind: tEOF, pos: start}
		return
	}
	c := p.src[p.pos]
	two := ""
	if p.pos+1 < len(p.src) {
		two = p.src[p.pos : p.pos+2]
	}
	switch {
	case two == ":=":
		p.pos += 2
		p.tok = tok{tAssign, ":=", start}
		return
	case two == "!=" || two == "<>" || two == "<=" || two == ">=":
		p.pos += 2
		p.tok = tok{tOp, two, start}
		return
	case two == "!{":
		p.pos += 2
		p.tok = tok{tBangBrace, "!{", start}
		return
	}
	single := map[byte]tkind{
		'|': tPipe, '*': tStar, '+': tPlus, '?': tQuest,
		'(': tLParen, ')': tRParen, '[': tLBrack, ']': tRBrack,
		'{': tLBrace, '}': tRBrace, ',': tComma, '^': tCaret,
	}
	if k, ok := single[c]; ok {
		p.pos++
		p.tok = tok{k, string(c), start}
		return
	}
	switch {
	case c == '=' || c == '<' || c == '>':
		p.pos++
		p.tok = tok{tOp, string(c), start}
	case c == '\'':
		p.pos++
		var b strings.Builder
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			if p.src[p.pos] == '\\' && p.pos+1 < len(p.src) {
				p.pos++
			}
			b.WriteByte(p.src[p.pos])
			p.pos++
		}
		if p.pos < len(p.src) {
			p.pos++
		}
		p.tok = tok{tString, b.String(), start}
	case c >= '0' && c <= '9' || c == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9':
		p.pos++
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.' ||
			p.src[p.pos] == 'e' || p.src[p.pos] == 'E') {
			p.pos++
		}
		p.tok = tok{tNumber, p.src[start:p.pos], start}
	case c == '_' || unicode.IsLetter(rune(c)) || c >= 0x80:
		for p.pos < len(p.src) {
			r := rune(p.src[p.pos])
			if r < 0x80 && r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				break
			}
			p.pos++
		}
		text := p.src[start:p.pos]
		if text == "_" {
			p.tok = tok{tUnder, "_", start}
			return
		}
		p.tok = tok{tIdent, text, start}
	default:
		p.tok = tok{tIdent, string(c), start}
		p.pos++
	}
}

// peek returns the token after the current one without consuming it.
func (p *parser) peek() tok {
	cur := p.tok
	p.next()
	peeked := p.tok
	p.save = append(p.save, peeked)
	p.tok = cur
	return peeked
}

func (p *parser) parseUnion() (Expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []Expr{first}
	for p.tok.kind == tPipe {
		p.next()
		e, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, e)
	}
	return Alt(alts...), nil
}

func (p *parser) parseConcat() (Expr, error) {
	var parts []Expr
	for {
		switch p.tok.kind {
		case tLParen, tLBrack:
			e, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		case tLBrace:
			// Grouping braces at factor position (repeat braces only appear
			// in postfix position, handled by parsePostfix).
			e, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		case tIdent:
			if p.tok.text == "eps" {
				p.next()
				parts = append(parts, Epsilon{})
				continue
			}
			return nil, p.errorf("bare label %q: node atoms need (…), edge atoms […]", p.tok.text)
		default:
			if len(parts) == 0 {
				return nil, p.errorf("expected expression, got %s", p.tok)
			}
			return Seq(parts...), nil
		}
	}
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tStar:
			e = Kleene(e)
			p.next()
		case tPlus:
			e = PlusOf(e)
			p.next()
		case tQuest:
			e = Opt(e)
			p.next()
		case tLBrace:
			if p.peek().kind != tNumber {
				return e, nil // grouping brace: new factor, not a repeat
			}
			p.next() // consume '{'
			min, _ := strconv.Atoi(p.tok.text)
			p.next()
			max := min
			if p.tok.kind == tComma {
				p.next()
				switch p.tok.kind {
				case tNumber:
					max, _ = strconv.Atoi(p.tok.text)
					p.next()
				case tRBrace:
					max = -1
				default:
					return nil, p.errorf("expected upper bound or '}', got %s", p.tok)
				}
			}
			if p.tok.kind != tRBrace {
				return nil, p.errorf("expected '}', got %s", p.tok)
			}
			if max >= 0 && max < min {
				return nil, p.errorf("invalid repetition {%d,%d}", min, max)
			}
			p.next()
			e = Repeat{Sub: e, Min: min, Max: max}
		default:
			return e, nil
		}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	switch p.tok.kind {
	case tLParen:
		p.next()
		a, err := p.parseAtomContent(false, tRParen)
		if err != nil {
			return nil, err
		}
		return a, nil
	case tLBrack:
		p.next()
		a, err := p.parseAtomContent(true, tRBrack)
		if err != nil {
			return nil, err
		}
		return a, nil
	case tLBrace:
		p.next()
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tRBrace {
			return nil, p.errorf("expected '}', got %s", p.tok)
		}
		p.next()
		return e, nil
	default:
		return nil, p.errorf("expected atom or group, got %s", p.tok)
	}
}

// parseAtomContent parses the inside of (…) or […]; close is the expected
// closing token kind.
func (p *parser) parseAtomContent(edge bool, close tkind) (Expr, error) {
	closeText := ")"
	if close == tRBrack {
		closeText = "]"
	}
	expectClose := func() error {
		if p.tok.kind != close {
			return p.errorf("expected %q, got %s", closeText, p.tok)
		}
		p.next()
		return nil
	}
	switch p.tok.kind {
	case close: // anonymous wildcard () or []
		p.next()
		return Atom{Edge: edge, Wild: true}, nil
	case tUnder:
		p.next()
		v, err := p.varSuffix()
		if err != nil {
			return nil, err
		}
		if err := expectClose(); err != nil {
			return nil, err
		}
		return Atom{Edge: edge, Wild: true, Var: v}, nil
	case tBangBrace:
		p.next()
		var set []string
		for {
			if p.tok.kind != tIdent && p.tok.kind != tString {
				return nil, p.errorf("expected label in wildcard set, got %s", p.tok)
			}
			set = append(set, p.tok.text)
			p.next()
			if p.tok.kind == tComma {
				p.next()
				continue
			}
			break
		}
		if p.tok.kind != tRBrace {
			return nil, p.errorf("expected '}' closing wildcard set, got %s", p.tok)
		}
		p.next()
		v, err := p.varSuffix()
		if err != nil {
			return nil, err
		}
		if err := expectClose(); err != nil {
			return nil, err
		}
		return Atom{Edge: edge, Wild: true, Except: set, Var: v}, nil
	case tIdent, tString:
		name := p.tok.text
		isString := p.tok.kind == tString
		p.next()
		switch p.tok.kind {
		case tAssign: // x := pname
			if isString {
				return nil, p.errorf("data variable must be an identifier")
			}
			p.next()
			if p.tok.kind != tIdent && p.tok.kind != tString {
				return nil, p.errorf("expected property name after ':=', got %s", p.tok)
			}
			prop := p.tok.text
			p.next()
			if err := expectClose(); err != nil {
				return nil, err
			}
			t := AssignTest(name, prop)
			return Atom{Edge: edge, Test: &t}, nil
		case tOp: // pname op (c | x)
			op, err := graph.ParseOp(p.tok.text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			p.next()
			var t Test
			switch p.tok.kind {
			case tNumber:
				v, err := parseNumber(p.tok.text)
				if err != nil {
					return nil, p.errorf("%v", err)
				}
				t = ConstTest(name, op, v)
			case tString:
				t = ConstTest(name, op, graph.Str(p.tok.text))
			case tIdent:
				switch p.tok.text {
				case "true":
					t = ConstTest(name, op, graph.Bool(true))
				case "false":
					t = ConstTest(name, op, graph.Bool(false))
				case "null":
					t = ConstTest(name, op, graph.Null())
				default:
					t = VarTest(name, op, p.tok.text)
				}
			default:
				return nil, p.errorf("expected comparison right-hand side, got %s", p.tok)
			}
			p.next()
			if err := expectClose(); err != nil {
				return nil, err
			}
			return Atom{Edge: edge, Test: &t}, nil
		case tCaret:
			p.next()
			if p.tok.kind != tIdent {
				return nil, p.errorf("expected variable after '^', got %s", p.tok)
			}
			v := p.tok.text
			p.next()
			if err := expectClose(); err != nil {
				return nil, err
			}
			return Atom{Edge: edge, Name: name, Var: v}, nil
		default:
			if err := expectClose(); err != nil {
				return nil, err
			}
			return Atom{Edge: edge, Name: name}, nil
		}
	default:
		return nil, p.errorf("expected atom content, got %s", p.tok)
	}
}

func (p *parser) varSuffix() (string, error) {
	if p.tok.kind != tCaret {
		return "", nil
	}
	p.next()
	if p.tok.kind != tIdent {
		return "", p.errorf("expected variable after '^', got %s", p.tok)
	}
	v := p.tok.text
	p.next()
	return v, nil
}

func parseNumber(s string) (graph.Value, error) {
	if !strings.ContainsAny(s, ".eE") {
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return graph.Null(), fmt.Errorf("dlrpq: invalid integer %q", s)
		}
		return graph.Int(i), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return graph.Null(), fmt.Errorf("dlrpq: invalid number %q", s)
	}
	return graph.Float(f), nil
}
