package rpq

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func rep(sym string, n int) []string {
	w := make([]string, n)
	for i := range w {
		w[i] = sym
	}
	return w
}

func TestParseBasics(t *testing.T) {
	tests := []struct {
		in   string
		want string // canonical String() rendering
	}{
		{"a", "a"},
		{"a b", "a b"},
		{"a.b", "a b"},
		{"a | b", "a | b"},
		{"a*", "a*"},
		{"a+", "a+"},
		{"a?", "a?"},
		{"(a b)*", "(a b)*"},
		{"a{2}", "a{2}"},
		{"a{2,5}", "a{2,5}"},
		{"a{2,}", "a{2,}"},
		{"_", "_"},
		{"!{a,b}", "!{a,b}"},
		{"()", "()"},
		{"'weird label'", "'weird label'"},
		{"Transfer Transfer?", "Transfer Transfer?"},
		{"a | b c*", "a | b c*"},
		{"(a|b)*", "(a | b)*"},
	}
	for _, tc := range tests {
		e, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	// String() output must re-parse to the same rendering.
	inputs := []string{
		"a", "a b c", "a | b | c", "a* b+ c?", "(a (b | c))* !{x,y} _",
		"a{3} (b{1,2})+", "'has space'* | d",
	}
	for _, in := range inputs {
		e := MustParse(in)
		e2, err := Parse(e.String())
		if err != nil {
			t.Errorf("reparse %q: %v", e.String(), err)
			continue
		}
		if e2.String() != e.String() {
			t.Errorf("round trip: %q -> %q", e.String(), e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "|a", "a|", "(a", "a)", "a{", "a{2", "a{2,1}", "a{x}",
		"!{", "!{}", "!{a", "!a", "*", "a**b{", "a{}",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestMatchesBasic(t *testing.T) {
	tests := []struct {
		expr string
		word []string
		want bool
	}{
		{"a*", nil, true},
		{"a*", rep("a", 5), true},
		{"a*", []string{"b"}, false},
		{"(a a)*", rep("a", 4), true},
		{"(a a)*", rep("a", 5), false},
		{"a b | c", []string{"a", "b"}, true},
		{"a b | c", []string{"c"}, true},
		{"a b | c", []string{"a"}, false},
		{"a+", nil, false},
		{"a+", rep("a", 1), true},
		{"a?", nil, true},
		{"a?", rep("a", 2), false},
		{"a{2,3}", rep("a", 1), false},
		{"a{2,3}", rep("a", 2), true},
		{"a{2,3}", rep("a", 3), true},
		{"a{2,3}", rep("a", 4), false},
		{"a{2,}", rep("a", 7), true},
		{"_ _", []string{"x", "y"}, true},
		{"_ _", []string{"x"}, false},
		{"!{a} b", []string{"c", "b"}, true},
		{"!{a} b", []string{"a", "b"}, false},
		{"()", nil, true},
		{"()", []string{"a"}, false},
		{"Transfer Transfer?", []string{"Transfer"}, true},
		{"Transfer Transfer?", []string{"Transfer", "Transfer"}, true},
		{"Transfer Transfer?", []string{"Transfer", "Transfer", "Transfer"}, false},
	}
	for _, tc := range tests {
		e := MustParse(tc.expr)
		if got := Matches(e, tc.word); got != tc.want {
			t.Errorf("Matches(%q, %v) = %v, want %v", tc.expr, tc.word, got, tc.want)
		}
	}
}

func TestGlushkovSizeLinear(t *testing.T) {
	// The Glushkov automaton has (#label occurrences + 1) states.
	e := MustParse("(a b | c d e)* f")
	n := Compile(e)
	if n.NumStates != 7 {
		t.Errorf("Glushkov states = %d, want 7 (6 positions + initial)", n.NumStates)
	}
}

func TestDesugarRepeat(t *testing.T) {
	// a{2,4} desugared contains no Repeat and matches a^2..a^4 only.
	e := Desugar(MustParse("a{2,4}"))
	var hasRepeat func(Expr) bool
	hasRepeat = func(e Expr) bool {
		switch n := e.(type) {
		case Repeat:
			return true
		case Concat:
			for _, p := range n.Parts {
				if hasRepeat(p) {
					return true
				}
			}
		case Union:
			for _, a := range n.Alts {
				if hasRepeat(a) {
					return true
				}
			}
		case Star:
			return hasRepeat(n.Sub)
		}
		return false
	}
	if hasRepeat(e) {
		t.Error("Desugar left a Repeat node")
	}
	for n := 0; n <= 6; n++ {
		want := n >= 2 && n <= 4
		if got := Matches(e, rep("a", n)); got != want {
			t.Errorf("a{2,4} on a^%d = %v, want %v", n, got, want)
		}
	}
}

func TestEquivalentExpressions(t *testing.T) {
	pairs := []struct {
		a, b string
		want bool
	}{
		{"a{2}", "a a", true}, // the regular-expression identity Example 1 appeals to
		{"(a*)*", "a*", true},
		{"(((a*)*)*)*", "a*", true}, // §6.1: the explosive expression is just a*
		{"a+", "a a*", true},
		{"a?", "a | ()", true},
		{"(a|b)*", "(a* b*)*", true},
		{"(a a)*", "a*", false},
		{"a", "a a", false},
		{"!{a}", "_", false},
		{"!{a} | a", "_", true},
	}
	for _, tc := range pairs {
		got := Equivalent(MustParse(tc.a), MustParse(tc.b))
		if got != tc.want {
			t.Errorf("Equivalent(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSimplify(t *testing.T) {
	tests := []struct{ in, want string }{
		{"(((a*)*)*)*", "a*"},
		{"(a*)*", "a*"},
		{"(() | a)*", "a*"},
		{"a () b", "a b"},
		{"a | a | b", "a | b"},
		{"(a* | b)*", "(a | b)*"},
		{"(a) ((b))", "a b"},
		{"()*", "()"},
		{"a{1}", "a"},
		{"a{0}", "()"},
	}
	for _, tc := range tests {
		got := Simplify(MustParse(tc.in)).String()
		if got != tc.want {
			t.Errorf("Simplify(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSimplifyPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	exprs := make([]Expr, 0, 60)
	for i := 0; i < 60; i++ {
		exprs = append(exprs, randomExpr(rng, 4))
	}
	for _, e := range exprs {
		s := Simplify(e)
		if !Equivalent(e, s) {
			t.Fatalf("Simplify changed language:\n  in:  %s\n  out: %s", e, s)
		}
		if Size(s) > Size(e) {
			t.Errorf("Simplify grew expression: %s (%d) -> %s (%d)", e, Size(e), s, Size(s))
		}
	}
}

// randomExpr generates a random RPQ of bounded depth over {a, b}.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return L("a")
		case 1:
			return L("b")
		case 2:
			return Eps()
		default:
			return Not("a")
		}
	}
	switch rng.Intn(4) {
	case 0:
		return Seq(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 1:
		return Alt(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 2:
		return Kleene(randomExpr(rng, depth-1))
	default:
		return Between(randomExpr(rng, depth-1), rng.Intn(2), rng.Intn(3)+1)
	}
}

func TestSizeAndLabels(t *testing.T) {
	e := MustParse("(a b | !{c,d})* e")
	// Nodes: top concat, star, union, inner concat, a, b, !{c,d}, e = 8.
	if got := Size(e); got != 8 {
		t.Errorf("Size = %d, want 8", got)
	}
	want := []string{"a", "b", "c", "d", "e"}
	if got := Labels(e); !reflect.DeepEqual(got, want) {
		t.Errorf("Labels = %v, want %v", got, want)
	}
}

func TestStringQuoting(t *testing.T) {
	e := L("has space")
	if !strings.HasPrefix(e.String(), "'") {
		t.Errorf("labels with spaces must be quoted: %q", e.String())
	}
	if got := MustParse(e.String()); got.String() != e.String() {
		t.Errorf("quoted label round trip failed: %q", got.String())
	}
	if L("_").String() != "'_'" {
		t.Errorf("literal underscore label must be quoted, got %q", L("_").String())
	}
}

func TestCompileWildcardIntoNFA(t *testing.T) {
	n := Compile(MustParse("!{Transfer} _*"))
	if n.Accepts([]string{"Transfer"}) {
		t.Error("should reject Transfer as first label")
	}
	if !n.Accepts([]string{"owner", "Transfer", "x"}) {
		t.Error("should accept words starting with a non-Transfer label")
	}
}

func TestConstructorsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Alt() with no alternatives should panic")
		}
	}()
	Alt()
}

func TestContained(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"(a a)*", "a*", true},
		{"a*", "(a a)*", false},
		{"a", "a | b", true},
		{"a | b", "a", false},
		{"a{2,4}", "a+", true},
		{"a+", "a{2,4}", false},
		{"!{a}", "_", true},
		{"_", "!{a}", false},
		{"()", "a*", true},
		{"(a b)+", "a (b a)* b", true}, // same language, both directions
		{"a (b a)* b", "(a b)+", true},
	}
	for _, tc := range cases {
		if got := Contained(MustParse(tc.a), MustParse(tc.b)); got != tc.want {
			t.Errorf("Contained(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestContainedConsistentWithEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 40; i++ {
		a, b := randomExpr(rng, 3), randomExpr(rng, 3)
		mutual := Contained(a, b) && Contained(b, a)
		if mutual != Equivalent(a, b) {
			t.Fatalf("containment both ways (%v) must equal equivalence for %s vs %s", mutual, a, b)
		}
	}
}
