// Package rpq implements regular path queries (Section 3.1.1): a regular
// expression AST over edge labels with the !S wildcards of Remark 11, a
// parser for a textual syntax, algebraic simplification, and the Glushkov
// translation to ε-free NFAs that underpins the product-construction
// evaluation of Section 6.2.
package rpq

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a node of the RPQ regular-expression AST.
//
// The core grammar (Section 3.1.1) is ε, labels, concatenation, disjunction,
// and Kleene star; R? and R⁺ and bounded repetition R{n,m} are provided as
// syntax and desugared before compilation. Wildcards !S (Remark 11) are base
// expressions matching any label outside the finite set S; the anywhere
// wildcard "_" is !∅.
type Expr interface {
	fmt.Stringer
	isExpr()
	// precedence for parenthesization when rendering
	prec() int
}

// Epsilon is the ε base case.
type Epsilon struct{}

// Label matches exactly one edge with the given label.
type Label struct{ Name string }

// NotIn is the wildcard !S: matches any single label not in Set.
// An empty Set is the anywhere wildcard "_".
type NotIn struct{ Set []string }

// Concat is R₁·R₂·…·Rₙ.
type Concat struct{ Parts []Expr }

// Union is R₁+R₂+…+Rₙ.
type Union struct{ Alts []Expr }

// Star is R*.
type Star struct{ Sub Expr }

// Repeat is the sugared bounded repetition R{Min,Max}; Max < 0 means ∞.
// R? is R{0,1}, R⁺ is R{1,∞}.
type Repeat struct {
	Sub Expr
	Min int
	Max int // -1 for unbounded
}

func (Epsilon) isExpr() {}
func (Label) isExpr()   {}
func (NotIn) isExpr()   {}
func (Concat) isExpr()  {}
func (Union) isExpr()   {}
func (Star) isExpr()    {}
func (Repeat) isExpr()  {}

func (Epsilon) prec() int { return 3 }
func (Label) prec() int   { return 3 }
func (NotIn) prec() int   { return 3 }
func (Star) prec() int    { return 3 }
func (Repeat) prec() int  { return 3 }
func (Concat) prec() int  { return 2 }
func (Union) prec() int   { return 1 }

func renderChild(parent int, e Expr) string {
	s := e.String()
	if e.prec() < parent {
		return "(" + s + ")"
	}
	return s
}

func (Epsilon) String() string { return "()" }

func (l Label) String() string {
	if needsQuote(l.Name) {
		return "'" + strings.ReplaceAll(l.Name, "'", "\\'") + "'"
	}
	return l.Name
}

func needsQuote(s string) bool {
	if s == "" || s == "_" {
		return true
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9' && i > 0:
		default:
			return true
		}
	}
	return false
}

func (w NotIn) String() string {
	if len(w.Set) == 0 {
		return "_"
	}
	parts := make([]string, len(w.Set))
	for i, s := range w.Set {
		parts[i] = Label{Name: s}.String()
	}
	return "!{" + strings.Join(parts, ",") + "}"
}

func (c Concat) String() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = renderChild(2, p)
	}
	return strings.Join(parts, " ")
}

func (u Union) String() string {
	parts := make([]string, len(u.Alts))
	for i, a := range u.Alts {
		parts[i] = renderChild(2, a) // children of + render at concat level
	}
	return strings.Join(parts, " | ")
}

func (s Star) String() string { return renderChild(3, s.Sub) + "*" }

func (r Repeat) String() string {
	sub := renderChild(3, r.Sub)
	switch {
	case r.Min == 0 && r.Max == 1:
		return sub + "?"
	case r.Min == 1 && r.Max < 0:
		return sub + "+"
	case r.Max < 0:
		return fmt.Sprintf("%s{%d,}", sub, r.Min)
	case r.Min == r.Max:
		return fmt.Sprintf("%s{%d}", sub, r.Min)
	default:
		return fmt.Sprintf("%s{%d,%d}", sub, r.Min, r.Max)
	}
}

// Convenience constructors.

// Eps returns ε.
func Eps() Expr { return Epsilon{} }

// L returns the label atom a.
func L(a string) Expr { return Label{Name: a} }

// Any returns the anywhere wildcard "_" (= !∅).
func Any() Expr { return NotIn{} }

// Not returns the wildcard !S.
func Not(labels ...string) Expr {
	set := append([]string(nil), labels...)
	sort.Strings(set)
	return NotIn{Set: set}
}

// Seq returns the concatenation of parts (ε when empty).
func Seq(parts ...Expr) Expr {
	switch len(parts) {
	case 0:
		return Epsilon{}
	case 1:
		return parts[0]
	default:
		return Concat{Parts: parts}
	}
}

// Alt returns the disjunction of alternatives.
func Alt(alts ...Expr) Expr {
	switch len(alts) {
	case 0:
		panic("rpq: Alt needs at least one alternative")
	case 1:
		return alts[0]
	default:
		return Union{Alts: alts}
	}
}

// Kleene returns R*.
func Kleene(e Expr) Expr { return Star{Sub: e} }

// PlusOf returns R⁺ = R{1,∞}.
func PlusOf(e Expr) Expr { return Repeat{Sub: e, Min: 1, Max: -1} }

// Opt returns R? = R{0,1}.
func Opt(e Expr) Expr { return Repeat{Sub: e, Min: 0, Max: 1} }

// Times returns R{n} = R{n,n}.
func Times(e Expr, n int) Expr { return Repeat{Sub: e, Min: n, Max: n} }

// Between returns R{min,max}; max < 0 means unbounded.
func Between(e Expr, min, max int) Expr { return Repeat{Sub: e, Min: min, Max: max} }

// Desugar expands Repeat nodes into the core grammar
// (ε, Label, NotIn, Concat, Union, Star). The result contains no Repeat.
func Desugar(e Expr) Expr {
	switch n := e.(type) {
	case Epsilon, Label, NotIn:
		return e
	case Concat:
		parts := make([]Expr, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = Desugar(p)
		}
		return Concat{Parts: parts}
	case Union:
		alts := make([]Expr, len(n.Alts))
		for i, a := range n.Alts {
			alts[i] = Desugar(a)
		}
		return Union{Alts: alts}
	case Star:
		return Star{Sub: Desugar(n.Sub)}
	case Repeat:
		sub := Desugar(n.Sub)
		var parts []Expr
		for i := 0; i < n.Min; i++ {
			parts = append(parts, sub)
		}
		switch {
		case n.Max < 0:
			parts = append(parts, Star{Sub: sub})
		case n.Max < n.Min:
			panic(fmt.Sprintf("rpq: invalid repetition {%d,%d}", n.Min, n.Max))
		default:
			// (sub?)^(max-min), nested to share structure:
			// sub? sub? … — expanded as Union(ε, sub) repeated.
			opt := Union{Alts: []Expr{Epsilon{}, sub}}
			for i := n.Min; i < n.Max; i++ {
				parts = append(parts, opt)
			}
		}
		return Seq(parts...)
	default:
		panic(fmt.Sprintf("rpq: unknown expression type %T", e))
	}
}

// Size returns the syntactic size of the expression (number of AST nodes),
// the size measure used when comparing automata to expressions (E22).
func Size(e Expr) int {
	switch n := e.(type) {
	case Epsilon, Label, NotIn:
		return 1
	case Concat:
		s := 1
		for _, p := range n.Parts {
			s += Size(p)
		}
		return s
	case Union:
		s := 1
		for _, a := range n.Alts {
			s += Size(a)
		}
		return s
	case Star:
		return 1 + Size(n.Sub)
	case Repeat:
		return 1 + Size(n.Sub)
	default:
		panic(fmt.Sprintf("rpq: unknown expression type %T", e))
	}
}

// Labels returns the sorted set of labels mentioned in e (including in
// wildcard exception sets).
func Labels(e Expr) []string {
	set := map[string]struct{}{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case Label:
			set[n.Name] = struct{}{}
		case NotIn:
			for _, s := range n.Set {
				set[s] = struct{}{}
			}
		case Concat:
			for _, p := range n.Parts {
				walk(p)
			}
		case Union:
			for _, a := range n.Alts {
				walk(a)
			}
		case Star:
			walk(n.Sub)
		case Repeat:
			walk(n.Sub)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
