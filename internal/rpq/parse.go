package rpq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the textual RPQ syntax:
//
//	expr    := term ('|' term)*                 disjunction
//	term    := factor factor*                   concatenation (juxtaposition,
//	                                            '.' optionally allowed)
//	factor  := atom ('*' | '+' | '?' | '{' n (',' m?)? '}')*
//	atom    := label | '_' | '!{' labels '}' | '(' expr? ')' | quoted
//
// Labels are identifiers ([A-Za-z_][A-Za-z0-9_]*, Unicode letters allowed)
// or single-quoted strings. '()' denotes ε. Examples:
//
//	Transfer*
//	(Transfer Transfer?)        -- paths of length 1–2
//	a{2,5} | !{a,b} _*
func Parse(input string) (Expr, error) {
	p := &parser{src: input}
	p.next()
	if p.tok.kind == tokEOF {
		return nil, p.errorf("empty expression")
	}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s", p.tok)
	}
	return e, nil
}

// MustParse parses or panics; for tests and examples with known-good inputs.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokLabel
	tokPipe
	tokStar
	tokPlus
	tokQuest
	tokDot
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokBangBrace // "!{"
	tokUnder     // "_"
	tokNumber
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type parser struct {
	src string
	pos int
	tok token
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("rpq: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) next() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.src[p.pos]
	switch c {
	case '|':
		p.pos++
		p.tok = token{tokPipe, "|", start}
	case '*':
		p.pos++
		p.tok = token{tokStar, "*", start}
	case '+':
		p.pos++
		p.tok = token{tokPlus, "+", start}
	case '?':
		p.pos++
		p.tok = token{tokQuest, "?", start}
	case '.':
		p.pos++
		p.tok = token{tokDot, ".", start}
	case '(':
		p.pos++
		p.tok = token{tokLParen, "(", start}
	case ')':
		p.pos++
		p.tok = token{tokRParen, ")", start}
	case '{':
		p.pos++
		p.tok = token{tokLBrace, "{", start}
	case '}':
		p.pos++
		p.tok = token{tokRBrace, "}", start}
	case ',':
		p.pos++
		p.tok = token{tokComma, ",", start}
	case '!':
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '{' {
			p.pos += 2
			p.tok = token{tokBangBrace, "!{", start}
			return
		}
		p.tok = token{tokLabel, "!", start} // lexed; parser will reject
		p.pos++
	case '\'':
		p.pos++
		var b strings.Builder
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			if p.src[p.pos] == '\\' && p.pos+1 < len(p.src) {
				p.pos++
			}
			b.WriteByte(p.src[p.pos])
			p.pos++
		}
		if p.pos >= len(p.src) {
			p.tok = token{tokLabel, b.String(), start}
			return
		}
		p.pos++ // closing quote
		p.tok = token{tokLabel, b.String(), start}
	default:
		if c >= '0' && c <= '9' {
			for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
				p.pos++
			}
			p.tok = token{tokNumber, p.src[start:p.pos], start}
			return
		}
		if isIdentStart(rune(c)) || c >= 0x80 {
			for p.pos < len(p.src) {
				r := rune(p.src[p.pos])
				if r < 0x80 && !isIdentPart(r) {
					break
				}
				if r >= 0x80 {
					// accept any non-ASCII byte as part of an identifier
					p.pos++
					continue
				}
				p.pos++
			}
			text := p.src[start:p.pos]
			if text == "_" {
				p.tok = token{tokUnder, "_", start}
				return
			}
			p.tok = token{tokLabel, text, start}
			return
		}
		p.tok = token{tokLabel, string(c), start}
		p.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *parser) parseUnion() (Expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []Expr{first}
	for p.tok.kind == tokPipe {
		p.next()
		e, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, e)
	}
	return Alt(alts...), nil
}

func (p *parser) parseConcat() (Expr, error) {
	var parts []Expr
	for {
		switch p.tok.kind {
		case tokLabel, tokUnder, tokBangBrace, tokLParen:
			e, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		case tokDot:
			p.next() // optional explicit concatenation dot
		default:
			if len(parts) == 0 {
				return nil, p.errorf("expected expression, got %s", p.tok)
			}
			return Seq(parts...), nil
		}
	}
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokStar:
			e = Kleene(e)
			p.next()
		case tokPlus:
			e = PlusOf(e)
			p.next()
		case tokQuest:
			e = Opt(e)
			p.next()
		case tokLBrace:
			p.next()
			if p.tok.kind != tokNumber {
				return nil, p.errorf("expected repetition count, got %s", p.tok)
			}
			min, _ := strconv.Atoi(p.tok.text)
			p.next()
			max := min
			if p.tok.kind == tokComma {
				p.next()
				switch p.tok.kind {
				case tokNumber:
					max, _ = strconv.Atoi(p.tok.text)
					p.next()
				case tokRBrace:
					max = -1
				default:
					return nil, p.errorf("expected upper bound or '}', got %s", p.tok)
				}
			}
			if p.tok.kind != tokRBrace {
				return nil, p.errorf("expected '}', got %s", p.tok)
			}
			if max >= 0 && max < min {
				return nil, p.errorf("invalid repetition {%d,%d}", min, max)
			}
			p.next()
			e = Between(e, min, max)
		default:
			return e, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	switch p.tok.kind {
	case tokLabel:
		if p.tok.text == "!" {
			return nil, p.errorf("'!' must be followed by '{'")
		}
		e := L(p.tok.text)
		p.next()
		return e, nil
	case tokUnder:
		p.next()
		return Any(), nil
	case tokBangBrace:
		p.next()
		var set []string
		for {
			if p.tok.kind != tokLabel {
				return nil, p.errorf("expected label in wildcard set, got %s", p.tok)
			}
			set = append(set, p.tok.text)
			p.next()
			if p.tok.kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.tok.kind != tokRBrace {
			return nil, p.errorf("expected '}' closing wildcard set, got %s", p.tok)
		}
		p.next()
		return Not(set...), nil
	case tokLParen:
		p.next()
		if p.tok.kind == tokRParen { // "()" is ε
			p.next()
			return Eps(), nil
		}
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')', got %s", p.tok)
		}
		p.next()
		return e, nil
	default:
		return nil, p.errorf("expected expression, got %s", p.tok)
	}
}
