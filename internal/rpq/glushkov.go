package rpq

import (
	"fmt"

	"graphquery/internal/automata"
)

// Compile translates an RPQ expression into an equivalent ε-free NFA using
// the Glushkov (position automaton) construction — the "routine methods" the
// paper appeals to in Section 6.2 ("an equivalent NFA without ε-transitions
// can be constructed efficiently"). The automaton has one state per label
// occurrence plus an initial state.
func Compile(e Expr) *automata.NFA {
	core := Desugar(e)
	g := &glushkov{}
	info := g.analyze(core)

	nfa := automata.NewNFA(len(g.positions)+1, 0)
	if info.nullable {
		nfa.SetAccept(0)
	}
	for _, p := range info.first {
		nfa.AddTransition(0, g.positions[p], p+1)
	}
	for p, follows := range g.follow {
		for _, q := range follows {
			nfa.AddTransition(p+1, g.positions[q], q+1)
		}
	}
	for _, p := range info.last {
		nfa.SetAccept(p + 1)
	}
	return nfa
}

// glushkov accumulates linearized positions and their follow sets.
type glushkov struct {
	positions []automata.Guard // position -> guard of the occurrence
	follow    [][]int          // position -> positions that may follow
}

type ginfo struct {
	nullable bool
	first    []int
	last     []int
}

func (g *glushkov) newPos(guard automata.Guard) int {
	g.positions = append(g.positions, guard)
	g.follow = append(g.follow, nil)
	return len(g.positions) - 1
}

func (g *glushkov) addFollow(from int, to []int) {
	g.follow[from] = append(g.follow[from], to...)
}

func (g *glushkov) analyze(e Expr) ginfo {
	switch n := e.(type) {
	case Epsilon:
		return ginfo{nullable: true}
	case Label:
		p := g.newPos(automata.GuardLabel(n.Name))
		return ginfo{first: []int{p}, last: []int{p}}
	case NotIn:
		p := g.newPos(automata.GuardNotIn(n.Set...))
		return ginfo{first: []int{p}, last: []int{p}}
	case Concat:
		if len(n.Parts) == 0 {
			return ginfo{nullable: true}
		}
		acc := g.analyze(n.Parts[0])
		for _, part := range n.Parts[1:] {
			next := g.analyze(part)
			for _, l := range acc.last {
				g.addFollow(l, next.first)
			}
			merged := ginfo{nullable: acc.nullable && next.nullable}
			merged.first = append(merged.first, acc.first...)
			if acc.nullable {
				merged.first = append(merged.first, next.first...)
			}
			merged.last = append(merged.last, next.last...)
			if next.nullable {
				merged.last = append(merged.last, acc.last...)
			}
			acc = merged
		}
		return acc
	case Union:
		var out ginfo
		for _, alt := range n.Alts {
			ai := g.analyze(alt)
			out.nullable = out.nullable || ai.nullable
			out.first = append(out.first, ai.first...)
			out.last = append(out.last, ai.last...)
		}
		return out
	case Star:
		si := g.analyze(n.Sub)
		for _, l := range si.last {
			g.addFollow(l, si.first)
		}
		return ginfo{nullable: true, first: si.first, last: si.last}
	case Repeat:
		panic("rpq: Compile requires desugared input (internal error)")
	default:
		panic(fmt.Sprintf("rpq: unknown expression type %T", e))
	}
}

// Matches reports whether the label word is in L(e); a convenience that
// compiles and runs the Glushkov automaton.
func Matches(e Expr, word []string) bool {
	return Compile(e).Accepts(word)
}

// Equivalent reports whether two RPQs denote the same language.
func Equivalent(a, b Expr) bool {
	return automata.Equivalent(Compile(a), Compile(b))
}

// Contained reports whether L(a) ⊆ L(b): RPQ containment, the fundamental
// static-analysis problem of Section 7.1 (for single RPQs it reduces to
// regular-language inclusion; for CRPQs it is EXPSPACE-complete and out of
// scope here).
func Contained(a, b Expr) bool {
	return automata.Contained(Compile(a), Compile(b))
}
