package rpq

import "sort"

// Simplify applies language-preserving algebraic rewrites bottom-up until a
// fixpoint. This is the "automata-aware" rewriting the paper advocates in
// Section 6.1: under set semantics, expressions such as (((a*)*)*)* can be
// rewritten to a*, side-stepping the bag-semantics explosion entirely.
//
// Rules:
//
//	concat/union flattening;   ε elimination in concatenation;
//	(R*)* → R*;                ε* → ε;
//	(ε + R)* → R*;             duplicate removal in unions;
//	(R₁* + R₂)* → (R₁ + R₂)*;  single-alternative unions collapse.
func Simplify(e Expr) Expr {
	for {
		next := simplifyOnce(e)
		if next.String() == e.String() {
			return next
		}
		e = next
	}
}

func simplifyOnce(e Expr) Expr {
	switch n := e.(type) {
	case Epsilon, Label:
		return e
	case NotIn:
		set := append([]string(nil), n.Set...)
		sort.Strings(set)
		return NotIn{Set: dedupStrings(set)}
	case Concat:
		var parts []Expr
		for _, p := range n.Parts {
			p = simplifyOnce(p)
			switch sp := p.(type) {
			case Epsilon:
				// ε is the concatenation identity.
			case Concat:
				parts = append(parts, sp.Parts...)
			default:
				parts = append(parts, p)
			}
		}
		return Seq(parts...)
	case Union:
		var alts []Expr
		seen := map[string]struct{}{}
		for _, a := range n.Alts {
			a = simplifyOnce(a)
			flat := []Expr{a}
			if u, ok := a.(Union); ok {
				flat = u.Alts
			}
			for _, f := range flat {
				k := f.String()
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				alts = append(alts, f)
			}
		}
		return Alt(alts...)
	case Star:
		sub := simplifyOnce(n.Sub)
		switch s := sub.(type) {
		case Epsilon:
			return Epsilon{}
		case Star:
			// (R*)* = R*
			return s
		case Union:
			// Inside a star: drop ε alternatives and unwrap starred
			// alternatives — (ε + R)* = R*, (R₁* + R₂)* = (R₁ + R₂)*.
			var alts []Expr
			for _, a := range s.Alts {
				switch aa := a.(type) {
				case Epsilon:
					// dropped
				case Star:
					alts = append(alts, aa.Sub)
				default:
					alts = append(alts, a)
				}
			}
			if len(alts) == 0 {
				return Epsilon{}
			}
			return Star{Sub: Alt(alts...)}
		default:
			return Star{Sub: sub}
		}
	case Repeat:
		sub := simplifyOnce(n.Sub)
		if _, isEps := sub.(Epsilon); isEps {
			return Epsilon{}
		}
		if n.Min == 1 && n.Max == 1 {
			return sub
		}
		if n.Min == 0 && n.Max == 0 {
			return Epsilon{}
		}
		return Repeat{Sub: sub, Min: n.Min, Max: n.Max}
	default:
		return e
	}
}

func dedupStrings(ls []string) []string {
	out := ls[:0]
	for i, l := range ls {
		if i == 0 || l != ls[i-1] {
			out = append(out, l)
		}
	}
	return out
}
