// Package bag implements the pre-2012 SPARQL 1.1 bag semantics for property
// paths that Section 6.1 of the paper revisits ("Bag Semantics and
// Recursion: Boom!", after Arenas, Conca, and Pérez, WWW 2012): union and
// concatenation are multiset operations, and the Kleene star counts the
// ways a path expression can be matched along node sequences without
// repeated nodes. Under this semantics the innocuous expression
// (((a*)*)*)* on a 6-clique yields more answers than there are protons in
// the observable universe — the package computes those counts exactly with
// math/big.
//
// The set-semantics comparison point is eval.Pairs, which answers the same
// queries in milliseconds.
package bag

import (
	"fmt"
	"math/big"

	"graphquery/internal/graph"
	"graphquery/internal/rpq"
)

// Count returns the multiplicity of the answer (src, dst) for expression e
// on g under bag semantics:
//
//	count(u, v, ℓ)        = number of ℓ-labeled edges u → v
//	count(u, v, !S)       = number of edges u → v with label ∉ S
//	count(u, v, ε)        = 1 if u = v else 0
//	count(u, v, R₁·R₂)    = Σ_w count(u, w, R₁) · count(w, v, R₂)
//	count(u, v, R₁+R₂)    = count(u, v, R₁) + count(u, v, R₂)
//	count(u, v, R*)       = Σ over node sequences u = n₀, n₁, …, n_k = v
//	                        with pairwise-distinct nodes (k ≥ 0) of
//	                        Π_i count(n_i, n_{i+1}, R)
//
// The star case is the draft-standard counting over duplicate-free node
// sequences that produced the explosion. R{n,m}, R?, R⁺ are desugared first.
func Count(g *graph.Graph, e rpq.Expr, src, dst int) *big.Int {
	c := &counter{g: g, memo: map[string]*big.Int{}}
	return c.count(rpq.Desugar(e), src, dst)
}

// TotalCount returns Σ_{u,v} count(u, v, e): the total number of answers
// (with multiplicities) the query returns — the quantity Section 6.1
// compares against the number of protons in the observable universe.
func TotalCount(g *graph.Graph, e rpq.Expr) *big.Int {
	c := &counter{g: g, memo: map[string]*big.Int{}}
	desugared := rpq.Desugar(e)
	total := new(big.Int)
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			total.Add(total, c.count(desugared, u, v))
		}
	}
	return total
}

// SetCount returns the number of answers under set semantics — |⟦R⟧_G|
// computed by simply checking which pairs have non-zero multiplicity. For
// the k-clique experiments this is k² regardless of the star nesting.
func SetCount(g *graph.Graph, e rpq.Expr) int {
	c := &counter{g: g, memo: map[string]*big.Int{}}
	desugared := rpq.Desugar(e)
	n := 0
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if c.count(desugared, u, v).Sign() > 0 {
				n++
			}
		}
	}
	return n
}

type counter struct {
	g    *graph.Graph
	memo map[string]*big.Int
}

func (c *counter) count(e rpq.Expr, u, v int) *big.Int {
	key := fmt.Sprintf("%s|%d|%d", e, u, v)
	if m, ok := c.memo[key]; ok {
		return m
	}
	var out *big.Int
	switch n := e.(type) {
	case rpq.Epsilon:
		out = big.NewInt(0)
		if u == v {
			out.SetInt64(1)
		}
	case rpq.Label:
		out = c.edgeCount(u, v, func(lab string) bool { return lab == n.Name })
	case rpq.NotIn:
		out = c.edgeCount(u, v, func(lab string) bool {
			for _, s := range n.Set {
				if lab == s {
					return false
				}
			}
			return true
		})
	case rpq.Concat:
		out = c.countConcat(n.Parts, u, v)
	case rpq.Union:
		out = new(big.Int)
		for _, alt := range n.Alts {
			out.Add(out, c.count(alt, u, v))
		}
	case rpq.Star:
		out = c.countStar(n.Sub, u, v)
	default:
		panic(fmt.Sprintf("bag: unexpected expression %T (desugar first)", e))
	}
	c.memo[key] = out
	return out
}

func (c *counter) edgeCount(u, v int, match func(string) bool) *big.Int {
	n := 0
	for _, ei := range c.g.Out(u) {
		e := c.g.Edge(ei)
		if e.Tgt == v && match(e.Label) {
			n++
		}
	}
	return big.NewInt(int64(n))
}

func (c *counter) countConcat(parts []rpq.Expr, u, v int) *big.Int {
	if len(parts) == 0 {
		if u == v {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	}
	if len(parts) == 1 {
		return c.count(parts[0], u, v)
	}
	total := new(big.Int)
	tmp := new(big.Int)
	for w := 0; w < c.g.NumNodes(); w++ {
		left := c.count(parts[0], u, w)
		if left.Sign() == 0 {
			continue
		}
		right := c.countConcat(parts[1:], w, v)
		if right.Sign() == 0 {
			continue
		}
		tmp.Mul(left, right)
		total.Add(total, tmp)
	}
	return total
}

// countStar sums Π count(nᵢ, nᵢ₊₁, sub) over duplicate-free node sequences
// from u to v.
func (c *counter) countStar(sub rpq.Expr, u, v int) *big.Int {
	total := new(big.Int)
	used := make([]bool, c.g.NumNodes())
	used[u] = true
	prod := big.NewInt(1)
	var rec func(cur int, acc *big.Int)
	rec = func(cur int, acc *big.Int) {
		if cur == v {
			total.Add(total, acc)
		}
		for next := 0; next < c.g.NumNodes(); next++ {
			if used[next] {
				continue
			}
			step := c.count(sub, cur, next)
			if step.Sign() == 0 {
				continue
			}
			used[next] = true
			nacc := new(big.Int).Mul(acc, step)
			rec(next, nacc)
			used[next] = false
		}
	}
	rec(u, prod)
	return total
}
