// Package bag implements the pre-2012 SPARQL 1.1 bag semantics for property
// paths that Section 6.1 of the paper revisits ("Bag Semantics and
// Recursion: Boom!", after Arenas, Conca, and Pérez, WWW 2012): union and
// concatenation are multiset operations, and the Kleene star counts the
// ways a path expression can be matched along node sequences without
// repeated nodes. Under this semantics the innocuous expression
// (((a*)*)*)* on a 6-clique yields more answers than there are protons in
// the observable universe — the package computes those counts exactly with
// math/big.
//
// The set-semantics comparison point is eval.Pairs, which answers the same
// queries in milliseconds.
//
// The counting operators stay tier-local, but the reachability questions
// inside them route through the product-graph kernel (this PR's tentpole
// for the bag tier): count(u, v, e) > 0 exactly when (u, v) ∈ ⟦e⟧ under set
// semantics — multiplicities are nonnegative, and any witnessing node
// sequence shortens to a duplicate-free one by cycle removal — so the
// kernel's reachable sets prune the star recursion soundly, and SetCount is
// the kernel's pair count outright. The Ctx/Meter entry points inherit
// budgets and amortized cancellation through the same Ticker discipline as
// the other tiers.
package bag

import (
	"context"
	"fmt"
	"math/big"

	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
)

// Count returns the multiplicity of the answer (src, dst) for expression e
// on g under bag semantics:
//
//	count(u, v, ℓ)        = number of ℓ-labeled edges u → v
//	count(u, v, !S)       = number of edges u → v with label ∉ S
//	count(u, v, ε)        = 1 if u = v else 0
//	count(u, v, R₁·R₂)    = Σ_w count(u, w, R₁) · count(w, v, R₂)
//	count(u, v, R₁+R₂)    = count(u, v, R₁) + count(u, v, R₂)
//	count(u, v, R*)       = Σ over node sequences u = n₀, n₁, …, n_k = v
//	                        with pairwise-distinct nodes (k ≥ 0) of
//	                        Π_i count(n_i, n_{i+1}, R)
//
// The star case is the draft-standard counting over duplicate-free node
// sequences that produced the explosion. R{n,m}, R?, R⁺ are desugared first.
func Count(g *graph.Graph, e rpq.Expr, src, dst int) *big.Int {
	out, _ := CountMeter(g, e, src, dst, nil)
	return out
}

// CountCtx is Count under a context and budget: counting work is charged to
// the states budget (amortized every pg.CheckInterval), the produced answer
// to the rows budget. Errors follow the standard taxonomy (pg.ErrCanceled,
// *pg.BudgetError) and return no partial results.
func CountCtx(ctx context.Context, g *graph.Graph, e rpq.Expr, src, dst int, b pg.Budget) (*big.Int, error) {
	return CountMeter(g, e, src, dst, pg.NewMeter(ctx, b))
}

// CountMeter is Count with an explicit meter (may be nil).
func CountMeter(g *graph.Graph, e rpq.Expr, src, dst int, m *pg.Meter) (*big.Int, error) {
	// Dead endpoints answer as on the Materialize()d graph: zero ways.
	if !g.NodeAlive(src) || !g.NodeAlive(dst) {
		return new(big.Int), nil
	}
	tick := pg.NewTicker(m, nil)
	c := newCounter(g, m, &tick)
	out, err := c.count(rpq.Desugar(e), src, dst)
	if err != nil {
		return nil, err
	}
	if err := tick.Flush(); err != nil {
		return nil, err
	}
	if err := m.AddRows(1); err != nil {
		return nil, err
	}
	return out, nil
}

// TotalCount returns Σ_{u,v} count(u, v, e): the total number of answers
// (with multiplicities) the query returns — the quantity Section 6.1
// compares against the number of protons in the observable universe.
func TotalCount(g *graph.Graph, e rpq.Expr) *big.Int {
	out, _ := TotalCountMeter(g, e, nil)
	return out
}

// TotalCountCtx is TotalCount under a context and budget: each (u, v) pair
// with non-zero multiplicity is charged to the rows budget, counting work
// to the states budget. See CountCtx for the error contract.
func TotalCountCtx(ctx context.Context, g *graph.Graph, e rpq.Expr, b pg.Budget) (*big.Int, error) {
	return TotalCountMeter(g, e, pg.NewMeter(ctx, b))
}

// TotalCountMeter is TotalCount with an explicit meter (may be nil).
func TotalCountMeter(g *graph.Graph, e rpq.Expr, m *pg.Meter) (*big.Int, error) {
	tick := pg.NewTicker(m, nil)
	c := newCounter(g, m, &tick)
	desugared := rpq.Desugar(e)
	total := new(big.Int)
	for u := 0; u < g.NumNodes(); u++ {
		if !g.NodeAlive(u) {
			continue
		}
		for v := 0; v < g.NumNodes(); v++ {
			if !g.NodeAlive(v) {
				continue
			}
			n, err := c.count(desugared, u, v)
			if err != nil {
				return nil, err
			}
			if n.Sign() > 0 {
				if err := m.AddRows(1); err != nil {
					return nil, err
				}
			}
			total.Add(total, n)
		}
	}
	if err := tick.Flush(); err != nil {
		return nil, err
	}
	return total, nil
}

// SetCount returns the number of answers under set semantics — |⟦R⟧_G|
// computed by simply checking which pairs have non-zero multiplicity. For
// the k-clique experiments this is k² regardless of the star nesting.
func SetCount(g *graph.Graph, e rpq.Expr) int {
	c := newCounter(g, nil, nil)
	desugared := rpq.Desugar(e)
	n := 0
	for u := 0; u < g.NumNodes(); u++ {
		if !g.NodeAlive(u) {
			continue
		}
		for v := 0; v < g.NumNodes(); v++ {
			if !g.NodeAlive(v) {
				continue
			}
			m, _ := c.count(desugared, u, v)
			if m.Sign() > 0 {
				n++
			}
		}
	}
	return n
}

// SetCountCtx is the kernel-backed SetCount: by the count-positivity lemma
// (count(u, v, e) > 0 ⟺ (u, v) ∈ ⟦e⟧), the set-semantics answer count is
// exactly the kernel's pair count — no bag recursion at all. opts carries
// plan, parallelism, budgets, and meter; each pair is charged to the rows
// budget by the kernel sweep.
func SetCountCtx(ctx context.Context, g *graph.Graph, e rpq.Expr, opts eval.Options) (int, error) {
	pairs, err := eval.PairsCtx(ctx, g, e, opts)
	if err != nil {
		return 0, err
	}
	return len(pairs), nil
}

type counter struct {
	g    *graph.Graph
	m    *pg.Meter
	tick *pg.Ticker
	memo map[string]*big.Int

	// reach caches kernel reachable sets per (subexpression, source):
	// reach[e.String()][u] is the set of v with (u, v) ∈ ⟦e⟧. Lazily built;
	// used to prune the star recursion.
	kernels map[string]*pg.Kernel
	reach   map[string]map[int]map[int]bool
}

func newCounter(g *graph.Graph, m *pg.Meter, tick *pg.Ticker) *counter {
	return &counter{
		g:       g,
		m:       m,
		tick:    tick,
		memo:    map[string]*big.Int{},
		kernels: map[string]*pg.Kernel{},
		reach:   map[string]map[int]map[int]bool{},
	}
}

func (c *counter) step() error {
	if c.tick == nil {
		return nil
	}
	return c.tick.Step()
}

// reachable returns the set of nodes v with (u, v) ∈ ⟦e⟧ under set
// semantics, computed by the product-graph kernel and cached.
func (c *counter) reachable(e rpq.Expr, u int) (map[int]bool, error) {
	key := e.String()
	kern, ok := c.kernels[key]
	if !ok {
		kern = pg.NewKernel(c.g, pg.FromNFA(c.g, rpq.Compile(e)), nil)
		c.kernels[key] = kern
		c.reach[key] = map[int]map[int]bool{}
	}
	if set, ok := c.reach[key][u]; ok {
		return set, nil
	}
	sc := kern.GetScratch()
	defer kern.PutScratch(sc)
	nodes, err := kern.Reachable(u, sc, c.m)
	if err != nil {
		return nil, err
	}
	set := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		set[v] = true
	}
	c.reach[key][u] = set
	return set, nil
}

func (c *counter) count(e rpq.Expr, u, v int) (*big.Int, error) {
	if err := c.step(); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|%d|%d", e, u, v)
	if m, ok := c.memo[key]; ok {
		return m, nil
	}
	var out *big.Int
	var err error
	switch n := e.(type) {
	case rpq.Epsilon:
		out = big.NewInt(0)
		if u == v {
			out.SetInt64(1)
		}
	case rpq.Label:
		out = c.edgeCount(u, v, func(lab string) bool { return lab == n.Name })
	case rpq.NotIn:
		out = c.edgeCount(u, v, func(lab string) bool {
			for _, s := range n.Set {
				if lab == s {
					return false
				}
			}
			return true
		})
	case rpq.Concat:
		out, err = c.countConcat(n.Parts, u, v)
	case rpq.Union:
		out = new(big.Int)
		for _, alt := range n.Alts {
			m, aerr := c.count(alt, u, v)
			if aerr != nil {
				return nil, aerr
			}
			out.Add(out, m)
		}
	case rpq.Star:
		out, err = c.countStar(n.Sub, u, v)
	default:
		panic(fmt.Sprintf("bag: unexpected expression %T (desugar first)", e))
	}
	if err != nil {
		return nil, err
	}
	c.memo[key] = out
	return out, nil
}

func (c *counter) edgeCount(u, v int, match func(string) bool) *big.Int {
	n := 0
	for _, ei := range c.g.Out(u) {
		e := c.g.Edge(ei)
		if e.Tgt == v && match(e.Label) {
			n++
		}
	}
	return big.NewInt(int64(n))
}

func (c *counter) countConcat(parts []rpq.Expr, u, v int) (*big.Int, error) {
	if len(parts) == 0 {
		if u == v {
			return big.NewInt(1), nil
		}
		return big.NewInt(0), nil
	}
	if len(parts) == 1 {
		return c.count(parts[0], u, v)
	}
	total := new(big.Int)
	tmp := new(big.Int)
	for w := 0; w < c.g.NumNodes(); w++ {
		if err := c.step(); err != nil {
			return nil, err
		}
		if !c.g.NodeAlive(w) {
			continue
		}
		left, err := c.count(parts[0], u, w)
		if err != nil {
			return nil, err
		}
		if left.Sign() == 0 {
			continue
		}
		right, err := c.countConcat(parts[1:], w, v)
		if err != nil {
			return nil, err
		}
		if right.Sign() == 0 {
			continue
		}
		tmp.Mul(left, right)
		total.Add(total, tmp)
	}
	return total, nil
}

// countStar sums Π count(nᵢ, nᵢ₊₁, sub) over duplicate-free node sequences
// from u to v. The kernel prunes the recursion: the star is feasible only
// when v is kernel-reachable from u under sub*, and each extension step
// only considers nodes kernel-reachable from the current one under sub —
// exactly the candidates with non-zero count, so totals are unchanged.
func (c *counter) countStar(sub rpq.Expr, u, v int) (*big.Int, error) {
	starReach, err := c.reachable(rpq.Star{Sub: sub}, u)
	if err != nil {
		return nil, err
	}
	if !starReach[v] {
		return new(big.Int), nil
	}
	total := new(big.Int)
	used := make([]bool, c.g.NumNodes())
	used[u] = true
	prod := big.NewInt(1)
	var rec func(cur int, acc *big.Int) error
	rec = func(cur int, acc *big.Int) error {
		if cur == v {
			total.Add(total, acc)
		}
		stepReach, err := c.reachable(sub, cur)
		if err != nil {
			return err
		}
		for next := 0; next < c.g.NumNodes(); next++ {
			if err := c.step(); err != nil {
				return err
			}
			if used[next] || !c.g.NodeAlive(next) || !stepReach[next] {
				continue
			}
			step, err := c.count(sub, cur, next)
			if err != nil {
				return err
			}
			if step.Sign() == 0 {
				continue
			}
			used[next] = true
			nacc := new(big.Int).Mul(acc, step)
			if err := rec(next, nacc); err != nil {
				return err
			}
			used[next] = false
		}
		return nil
	}
	if err := rec(u, prod); err != nil {
		return nil, err
	}
	return total, nil
}
