package bag

import (
	"math/big"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/rpq"
)

func TestCountBase(t *testing.T) {
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).
		AddEdge("e1", "a", "u", "v", nil).
		AddEdge("e2", "a", "u", "v", nil). // parallel
		AddEdge("e3", "b", "u", "v", nil).
		MustBuild()
	u, v := g.MustNode("u"), g.MustNode("v")
	if got := Count(g, rpq.MustParse("a"), u, v); got.Int64() != 2 {
		t.Errorf("count(a) = %v, want 2 (parallel edges)", got)
	}
	if got := Count(g, rpq.MustParse("!{a}"), u, v); got.Int64() != 1 {
		t.Errorf("count(!{a}) = %v, want 1", got)
	}
	if got := Count(g, rpq.MustParse("()"), u, u); got.Int64() != 1 {
		t.Errorf("count(ε, u, u) = %v, want 1", got)
	}
	if got := Count(g, rpq.MustParse("()"), u, v); got.Int64() != 0 {
		t.Errorf("count(ε, u, v) = %v, want 0", got)
	}
	if got := Count(g, rpq.MustParse("a | b"), u, v); got.Int64() != 3 {
		t.Errorf("count(a|b) = %v, want 3", got)
	}
}

func TestCountConcat(t *testing.T) {
	// u -a-> w (two ways), w -a-> v (three ways): count(aa) = 6.
	b := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("w", "", nil).AddNode("v", "", nil)
	b.AddEdge("e1", "a", "u", "w", nil)
	b.AddEdge("e2", "a", "u", "w", nil)
	b.AddEdge("f1", "a", "w", "v", nil)
	b.AddEdge("f2", "a", "w", "v", nil)
	b.AddEdge("f3", "a", "w", "v", nil)
	g := b.MustBuild()
	got := Count(g, rpq.MustParse("a a"), g.MustNode("u"), g.MustNode("v"))
	if got.Int64() != 6 {
		t.Errorf("count(aa) = %v, want 6", got)
	}
}

func TestCountStarHandComputed(t *testing.T) {
	// K3 with single a-edges between distinct nodes.
	g := gen.Clique(3, "a")
	u, v := 0, 1
	// count(a*, u, v): duplicate-free sequences u→v: (u,v) and (u,w,v) = 2.
	if got := Count(g, rpq.MustParse("a*"), u, v); got.Int64() != 2 {
		t.Errorf("count(a*) = %v, want 2", got)
	}
	// count(a*, u, u): only the empty sequence = 1.
	if got := Count(g, rpq.MustParse("a*"), u, u); got.Int64() != 1 {
		t.Errorf("count(a*, u, u) = %v, want 1", got)
	}
	// count((a*)*, u, v): seq (u,v): 2; seq (u,w,v): 2·2 = 4; total 6.
	if got := Count(g, rpq.MustParse("(a*)*"), u, v); got.Int64() != 6 {
		t.Errorf("count((a*)*) = %v, want 6", got)
	}
}

// TestExplosionMonotone: each extra star multiplies the answer count; on
// the 6-clique the quadruple-star count is astronomically larger than the
// single-star count (Section 6.1's "Boom!").
func TestExplosionMonotone(t *testing.T) {
	g := gen.Clique(4, "a")
	exprs := []string{"a*", "(a*)*", "((a*)*)*", "(((a*)*)*)*"}
	var prev *big.Int
	for _, es := range exprs {
		total := TotalCount(g, rpq.MustParse(es))
		if prev != nil && total.Cmp(prev) <= 0 {
			t.Errorf("%s total %v not larger than previous %v", es, total, prev)
		}
		prev = total
	}
}

func TestSixCliqueBeyondProtons(t *testing.T) {
	if testing.Short() {
		t.Skip("large exact count")
	}
	g := gen.Clique(6, "a")
	total := TotalCount(g, rpq.MustParse("(((a*)*)*)*"))
	// "More answers than the number of protons in the observable universe"
	// (~10⁸⁰). Check the count exceeds 10⁷⁰ — the claim's order of
	// magnitude — and record its digit count for EXPERIMENTS.md.
	bound := new(big.Int).Exp(big.NewInt(10), big.NewInt(70), nil)
	if total.Cmp(bound) <= 0 {
		t.Errorf("6-clique quadruple-star total = %v (only %d digits), expected > 10^70",
			total, len(total.String()))
	}
}

func TestSetSemanticsStaysTiny(t *testing.T) {
	// Under set semantics the same query returns exactly k² answers.
	for k := 2; k <= 5; k++ {
		g := gen.Clique(k, "a")
		if got := SetCount(g, rpq.MustParse("(((a*)*)*)*")); got != k*k {
			t.Errorf("k=%d: set count = %d, want %d", k, got, k*k)
		}
	}
}

func TestCountAgreesWithSimplify(t *testing.T) {
	// Set semantics is invariant under the rewrite (((a*)*)*)* → a*.
	g := gen.Clique(4, "a")
	nested := rpq.MustParse("(((a*)*)*)*")
	simple := rpq.Simplify(nested)
	if simple.String() != "a*" {
		t.Fatalf("Simplify = %s", simple)
	}
	if SetCount(g, nested) != SetCount(g, simple) {
		t.Error("set counts must agree after simplification")
	}
	// Bag counts do NOT agree — that is the point of Section 6.1.
	if TotalCount(g, nested).Cmp(TotalCount(g, simple)) <= 0 {
		t.Error("bag count of the nested expression should exceed the simplified one")
	}
}

func TestCountRepeatDesugar(t *testing.T) {
	g := gen.APath(3, "a")
	u, v := g.MustNode("v0"), g.MustNode("v2")
	if got := Count(g, rpq.MustParse("a{2}"), u, v); got.Int64() != 1 {
		t.Errorf("count(a{2}) = %v, want 1", got)
	}
	// a{1,3} desugars to a(ε+a)(ε+a); the 2-edge path has two parses
	// (a·a·ε and a·ε·a) — bag semantics counts derivations, so 2.
	if got := Count(g, rpq.MustParse("a{1,3}"), u, v); got.Int64() != 2 {
		t.Errorf("count(a{1,3}) = %v, want 2 (two derivations)", got)
	}
}
