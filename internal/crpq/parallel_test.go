package crpq

import (
	"reflect"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
)

// TestParallelRowsMatchSequential cross-checks the parallel per-source atom
// materialization against the sequential path: identical rows in identical
// order, over random graphs, covering wildcard atoms, list variables,
// shortest mode, and empty results.
func TestParallelRowsMatchSequential(t *testing.T) {
	queries := []string{
		"q(x, y) :- a*(x, y)",
		"q(x, y, z) :- a(x, y), b*(y, z)",
		"q(x, y) :- _ _(x, y)",             // wildcard atoms
		"q(x, y) :- !{a}(x, y)",            // negated label set
		"q(x, z) :- shortest (a^z)+(x, y)", // list variable + shortest
		"q(x, y) :- nolabel(x, y)",         // empty result
		"q(x) :- a(x, x)",                  // shared src/dst variable
		"q(x, y) :- a b(x, y), b a(y, x)",  // join of two atoms
	}
	for name, g := range map[string]*graph.Graph{
		"sparse": gen.Random(50, 200, []string{"a", "b"}, 3),
		"dense":  gen.Random(25, 400, []string{"a", "b", "c"}, 9),
	} {
		for _, qs := range queries {
			q := MustParse(qs)
			seq, err := Eval(g, q, Options{AtomMaxLen: 6, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s: %q: %v", name, qs, err)
			}
			for _, par := range []int{0, 3, 5} {
				got, err := Eval(g, q, Options{AtomMaxLen: 6, Parallelism: par})
				if err != nil {
					t.Fatalf("%s: %q (parallelism %d): %v", name, qs, par, err)
				}
				if !reflect.DeepEqual(got, seq) {
					t.Fatalf("%s: %q: parallelism %d diverged:\n%s\nvs sequential:\n%s",
						name, qs, par, got.Format(g), seq.Format(g))
				}
			}
		}
	}
}
