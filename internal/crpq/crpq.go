// Package crpq implements conjunctive regular path queries and their
// extensions from the paper: plain CRPQs (Section 3.1.2), CRPQs with list
// variables and path modes (ℓ-CRPQs, Section 3.1.5), and CRPQs with data
// tests and list variables (dl-CRPQs, Section 3.2.2) — the paper's primary
// formalism.
//
// A query has the form
//
//	q(x₁,…,x_k) :- m₁ R₁(y₁,y′₁), …, m_n R_n(y_n,y′_n)
//
// where each m_i is a path mode, each R_i is an RPQ / ℓ-RPQ / dl-RPQ, and
// the terms may be node variables or constant nodes (footnote 3). The
// well-formedness conditions (1)–(5) of Section 3.1.5 are enforced by
// Validate. Path modes apply after endpoint selection (restricted path
// homomorphisms; Example 17's per-endpoint-pair shortest), with an optional
// ablation that applies them globally instead.
package crpq

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/gpath"
	"graphquery/internal/graph"
	"graphquery/internal/lrpq"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
)

// Term is an endpoint of an atom: a node variable or a constant node ID.
type Term struct {
	Var     string
	Const   graph.NodeID
	IsConst bool
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(id graph.NodeID) Term { return Term{Const: id, IsConst: true} }

func (t Term) String() string {
	if t.IsConst {
		return "@" + string(t.Const)
	}
	return t.Var
}

// Atom is one conjunct m R(y, y′). Exactly one of RPQ, L, DL is set.
type Atom struct {
	Mode eval.Mode

	RPQ rpq.Expr   // plain regular path query
	L   lrpq.Expr  // RPQ with list variables
	DL  dlrpq.Expr // RPQ with data tests and list variables

	Src, Dst Term
}

// vars returns the atom's list variables Var(R_i).
func (a Atom) vars() []string {
	switch {
	case a.L != nil:
		return lrpq.Vars(a.L)
	case a.DL != nil:
		return dlrpq.Vars(a.DL)
	default:
		return nil
	}
}

func (a Atom) exprString() string {
	switch {
	case a.RPQ != nil:
		return a.RPQ.String()
	case a.L != nil:
		return a.L.String()
	case a.DL != nil:
		return a.DL.String()
	default:
		return "<empty>"
	}
}

func (a Atom) String() string {
	mode := ""
	if a.Mode != eval.All {
		mode = a.Mode.String() + " "
	}
	return fmt.Sprintf("%s%s(%s, %s)", mode, a.exprString(), a.Src, a.Dst)
}

// Query is a (dl-)CRPQ.
type Query struct {
	// Head lists the output variables x₁,…,x_k (node or list variables).
	Head []string
	// Atoms are the conjuncts.
	Atoms []Atom
}

func (q *Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return fmt.Sprintf("q(%s) :- %s", strings.Join(q.Head, ", "), strings.Join(parts, ", "))
}

// nodeVars returns the sorted node variables of the query.
func (q *Query) nodeVars() []string {
	set := map[string]struct{}{}
	for _, a := range q.Atoms {
		for _, t := range []Term{a.Src, a.Dst} {
			if !t.IsConst {
				set[t.Var] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ErrInvalidQuery wraps all well-formedness violations.
var ErrInvalidQuery = errors.New("crpq: invalid query")

// Validate enforces conditions (1)–(5) of Section 3.1.5:
//
//	(2) every atom has exactly one expression;
//	(3) list variables are disjoint from node variables;
//	(4) list variables are disjoint across atoms;
//	(5) head variables appear among node or list variables.
//
// (Condition (1), m_i being a known mode, holds by construction of
// eval.Mode.)
func (q *Query) Validate() error {
	nodeVars := map[string]struct{}{}
	for _, a := range q.Atoms {
		n := 0
		if a.RPQ != nil {
			n++
		}
		if a.L != nil {
			n++
		}
		if a.DL != nil {
			n++
		}
		if n != 1 {
			return fmt.Errorf("%w: atom %s must carry exactly one expression", ErrInvalidQuery, a)
		}
		for _, t := range []Term{a.Src, a.Dst} {
			if !t.IsConst {
				if t.Var == "" {
					return fmt.Errorf("%w: empty variable in atom %s", ErrInvalidQuery, a)
				}
				nodeVars[t.Var] = struct{}{}
			}
		}
	}
	listVars := map[string]int{} // variable -> atom index
	for i, a := range q.Atoms {
		for _, z := range a.vars() {
			if _, clash := nodeVars[z]; clash {
				return fmt.Errorf("%w: variable %q used both as node and list variable (condition 3)", ErrInvalidQuery, z)
			}
			if j, dup := listVars[z]; dup {
				return fmt.Errorf("%w: list variable %q shared by atoms %d and %d (condition 4)", ErrInvalidQuery, z, j, i)
			}
			listVars[z] = i
		}
	}
	for _, x := range q.Head {
		_, isNode := nodeVars[x]
		_, isList := listVars[x]
		if !isNode && !isList {
			return fmt.Errorf("%w: head variable %q not bound by any atom (condition 5)", ErrInvalidQuery, x)
		}
	}
	return nil
}

// OutValue is one cell of an output tuple: a node or a list of graph
// objects bound to a list variable.
type OutValue struct {
	IsList bool
	Node   int
	List   gpath.List
}

func (v OutValue) key() string {
	if v.IsList {
		return "L" + v.List.Key()
	}
	return fmt.Sprintf("N%d", v.Node)
}

// Format renders the value with external IDs.
func (v OutValue) Format(g *graph.Graph) string {
	if v.IsList {
		return v.List.Format(g)
	}
	return string(g.Node(v.Node).ID)
}

// Result is the output of a query: tuples over the head variables.
type Result struct {
	Head []string
	Rows [][]OutValue
}

// Contains reports whether the result contains the given rendered row
// (formatted values joined by the separator ", "), a convenience for tests.
func (r *Result) Contains(g *graph.Graph, rendered string) bool {
	for _, row := range r.Rows {
		if formatRow(g, row) == rendered {
			return true
		}
	}
	return false
}

func formatRow(g *graph.Graph, row []OutValue) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.Format(g)
	}
	return strings.Join(parts, ", ")
}

// Format renders all rows, one per line, sorted.
func (r *Result) Format(g *graph.Graph) string {
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		lines[i] = formatRow(g, row)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Options configure evaluation.
type Options struct {
	// AtomMaxLen bounds path length for mode-all atoms that carry list
	// variables (their result sets may be infinite; Section 6.3). Atoms
	// without list variables reduce to reachability and need no bound.
	AtomMaxLen int
	// GlobalModes applies each path mode to the atom's full result set
	// before endpoint selection instead of per endpoint pair — the ablation
	// for the design decision behind Example 17. Off by default.
	GlobalModes bool
	// Parallelism caps the worker goroutines used for per-source atom
	// materialization; 0 means one per available CPU, 1 forces the
	// sequential path. Output is identical either way.
	Parallelism int
	// Budget caps per-query resources for EvalCtx; zero means unlimited.
	// MaxRows counts materialized tuples (atom relations and output rows),
	// since atom materialization is where combinatorial blowup happens.
	Budget eval.Budget
	// Meter, when non-nil, overrides ctx+Budget: the shared instrument a
	// serving layer threads through every atom of one query.
	Meter *eval.Meter
}

// Eval computes q(G) (set semantics). It validates the query first.
func Eval(g *graph.Graph, q *Query, opts Options) (*Result, error) {
	return EvalCtx(context.Background(), g, q, opts)
}

// EvalCtx is Eval under a context and the budget carried by opts: atom
// materialization (including its parallel per-source fan-out) checks the
// shared meter cooperatively, so a canceled context or an exhausted budget
// stops every worker and surfaces eval.ErrCanceled / eval.ErrBudgetExceeded.
func EvalCtx(ctx context.Context, g *graph.Graph, q *Query, opts Options) (*Result, error) {
	if opts.Meter == nil {
		opts.Meter = eval.NewMeter(ctx, opts.Budget)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Evaluate each atom to a relation over (src-var?, dst-var?, list vars).
	type atomRel struct {
		attrs  []string // variable names, in column order
		tuples [][]OutValue
	}
	rels := make([]atomRel, len(q.Atoms))
	for i, a := range q.Atoms {
		rel, err := evalAtom(g, a, opts)
		if err != nil {
			return nil, fmt.Errorf("atom %d (%s): %w", i, a, err)
		}
		rels[i] = rel
	}
	// Fold with hash joins on shared node variables.
	acc := atomRel{attrs: nil, tuples: [][]OutValue{{}}}
	for _, r := range rels {
		acc = joinRels(acc, r)
	}
	// Project the head.
	cols := make([]int, len(q.Head))
	for i, x := range q.Head {
		cols[i] = -1
		for j, a := range acc.attrs {
			if a == x {
				cols[i] = j
				break
			}
		}
		if cols[i] == -1 {
			// Head variable bound by an atom but absent from results (no
			// tuples): yields the empty result.
			return &Result{Head: append([]string(nil), q.Head...)}, nil
		}
	}
	out := &Result{Head: append([]string(nil), q.Head...)}
	seen := map[string]struct{}{}
	for _, t := range acc.tuples {
		row := make([]OutValue, len(cols))
		var kb strings.Builder
		for i, c := range cols {
			row[i] = t[c]
			kb.WriteString(row[i].key())
			kb.WriteByte('|')
		}
		if _, dup := seen[kb.String()]; dup {
			continue
		}
		seen[kb.String()] = struct{}{}
		if err := opts.Meter.AddRows(1); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		return rowKey(out.Rows[i]) < rowKey(out.Rows[j])
	})
	return out, nil
}

func rowKey(row []OutValue) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.key())
		b.WriteByte('|')
	}
	return b.String()
}

type atomRelT = struct {
	attrs  []string
	tuples [][]OutValue
}

// joinRels natural-joins two variable relations on shared attributes.
func joinRels(a, b atomRelT) atomRelT {
	shared := [][2]int{}
	extra := []int{}
	outAttrs := append([]string(nil), a.attrs...)
	for j, attr := range b.attrs {
		found := false
		for i, aa := range a.attrs {
			if aa == attr {
				shared = append(shared, [2]int{i, j})
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, j)
			outAttrs = append(outAttrs, attr)
		}
	}
	mk := func(t []OutValue, cols []int) string {
		var sb strings.Builder
		for _, p := range cols {
			sb.WriteString(t[p].key())
			sb.WriteByte('|')
		}
		return sb.String()
	}
	aCols := make([]int, len(shared))
	bCols := make([]int, len(shared))
	for i, p := range shared {
		aCols[i], bCols[i] = p[0], p[1]
	}
	buckets := map[string][]int{}
	for i, t := range b.tuples {
		buckets[mk(t, bCols)] = append(buckets[mk(t, bCols)], i)
	}
	var outTuples [][]OutValue
	for _, t := range a.tuples {
		for _, bi := range buckets[mk(t, aCols)] {
			bt := b.tuples[bi]
			row := make([]OutValue, 0, len(outAttrs))
			row = append(row, t...)
			for _, c := range extra {
				row = append(row, bt[c])
			}
			outTuples = append(outTuples, row)
		}
	}
	return atomRelT{attrs: outAttrs, tuples: outTuples}
}

// evalAtom computes the atom's relation over its variables.
func evalAtom(g *graph.Graph, a Atom, opts Options) (atomRelT, error) {
	srcCandidates, err := termCandidates(g, a.Src)
	if err != nil {
		return atomRelT{}, err
	}
	dstCandidates, err := termCandidates(g, a.Dst)
	if err != nil {
		return atomRelT{}, err
	}
	listVars := a.vars()

	var attrs []string
	if !a.Src.IsConst {
		attrs = append(attrs, a.Src.Var)
	}
	if !a.Dst.IsConst && (a.Src.IsConst || a.Dst.Var != a.Src.Var) {
		attrs = append(attrs, a.Dst.Var)
	}
	attrs = append(attrs, listVars...)

	// Fast path: no list variables and mode all ⇒ only existence matters
	// (distinct paths yield the same tuple).
	existenceOnly := len(listVars) == 0 && a.Mode == eval.All
	// Existence of ℓ-RPQ matches without variables is plain reachability.
	rpqExpr := a.RPQ
	if existenceOnly && a.L != nil {
		rpqExpr = lrpq.Erase(a.L)
	}

	sameVar := !a.Src.IsConst && !a.Dst.IsConst && a.Src.Var == a.Dst.Var

	// The product is shared by every source BFS of the existence fast path;
	// it is compiled once per atom, not once per source.
	var product *eval.Product
	if existenceOnly && rpqExpr != nil {
		product = eval.CompileProduct(g, rpqExpr)
	}

	perSource := func(u int, sc *eval.Scratch) ([][]OutValue, error) {
		var rows [][]OutValue
		addTuple := func(u, v int, mu gpath.Binding) {
			row := make([]OutValue, 0, len(attrs))
			if !a.Src.IsConst {
				row = append(row, OutValue{Node: u})
			}
			if !a.Dst.IsConst && (a.Src.IsConst || a.Dst.Var != a.Src.Var) {
				row = append(row, OutValue{Node: v})
			}
			for _, z := range listVars {
				row = append(row, OutValue{IsList: true, List: mu.Get(z)})
			}
			rows = append(rows, row)
		}
		if product != nil {
			// One product BFS per source covers all destinations.
			reach, err := eval.ReachableFromMeter(product, u, sc, opts.Meter)
			if err != nil {
				return nil, err
			}
			ok := map[int]bool{}
			for _, v := range reach {
				ok[v] = true
			}
			for _, v := range dstCandidates {
				if sameVar && u != v {
					continue
				}
				if ok[v] {
					addTuple(u, v, nil)
				}
			}
			if err := opts.Meter.AddRows(int64(len(rows))); err != nil {
				return nil, err
			}
			return rows, nil
		}
		for _, v := range dstCandidates {
			if sameVar && u != v {
				continue
			}
			mode := a.Mode
			if existenceOnly {
				// A shortest witness decides existence even for dl-RPQ
				// atoms, whose mode-all result sets may be infinite.
				mode = eval.Shortest
			}
			pbs, err := evalAtomBetweenMode(g, a, u, v, mode, opts)
			if err != nil {
				return nil, err
			}
			if existenceOnly {
				if len(pbs) > 0 {
					addTuple(u, v, nil)
				}
				continue
			}
			seen := map[string]struct{}{}
			for _, pb := range pbs {
				k := pb.Binding.Key()
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				addTuple(u, v, pb.Binding)
			}
		}
		return rows, nil
	}

	tuples, err := overSources(srcCandidates, opts.Parallelism, product, opts.Meter, perSource)
	if err != nil {
		return atomRelT{}, err
	}
	if opts.GlobalModes && !existenceOnly && a.Mode == eval.Shortest {
		tuples = globalShortestFilter(g, a, tuples, attrs, opts)
	}
	return atomRelT{attrs: attrs, tuples: tuples}, nil
}

// overSources runs fn once per source node through the runtime's parallel
// fan-out (pg.ForEach): sources are over-partitioned into contiguous
// chunks claimed off an atomic cursor and per-chunk results concatenate in
// chunk order, so the relation is identical to the sequential loop's. p,
// when non-nil, supplies one reusable reachability Scratch per worker. The
// meter m, when non-nil, is polled between sources, and a first error
// stops every worker from claiming further chunks.
func overSources(sources []int, parallelism int, p *eval.Product, m *eval.Meter, fn func(u int, sc *eval.Scratch) ([][]OutValue, error)) ([][]OutValue, error) {
	newScratch := func() *eval.Scratch {
		if p == nil {
			return nil
		}
		return p.GetScratch()
	}
	putScratch := func(sc *eval.Scratch) {
		if p != nil {
			p.PutScratch(sc)
		}
	}
	return pg.ForEach(len(sources), eval.Parallelism(parallelism), newScratch, putScratch,
		func(i int, sc *eval.Scratch) ([][]OutValue, error) {
			if err := m.Check(); err != nil {
				return nil, err
			}
			return fn(sources[i], sc)
		})
}

// evalAtomBetween dispatches to the right evaluator with the atom's mode.
func evalAtomBetween(g *graph.Graph, a Atom, u, v int, opts Options) ([]gpath.PathBinding, error) {
	return evalAtomBetweenMode(g, a, u, v, a.Mode, opts)
}

func evalAtomBetweenMode(g *graph.Graph, a Atom, u, v int, mode eval.Mode, opts Options) ([]gpath.PathBinding, error) {
	evalOpts := lrpq.Options{MaxLen: opts.AtomMaxLen, Meter: opts.Meter}
	switch {
	case a.RPQ != nil:
		le := lrpq.FromRPQ(a.RPQ)
		return lrpq.EvalBetween(g, le, u, v, mode, evalOpts)
	case a.L != nil:
		return lrpq.EvalBetween(g, a.L, u, v, mode, evalOpts)
	case a.DL != nil:
		return dlrpq.EvalBetween(g, a.DL, u, v, mode, dlrpq.Options{MaxLen: opts.AtomMaxLen, Meter: opts.Meter})
	default:
		return nil, fmt.Errorf("crpq: empty atom")
	}
}

// globalShortestFilter implements the GlobalModes ablation for shortest: it
// re-evaluates the atom keeping only tuples whose witnessing path length
// equals the global minimum across all endpoint pairs. Because tuples do
// not record path lengths, the filter recomputes per-pair minima.
func globalShortestFilter(g *graph.Graph, a Atom, tuples [][]OutValue, attrs []string, opts Options) [][]OutValue {
	// Find the per-pair shortest lengths and the global minimum.
	type pair struct{ u, v int }
	minLen := map[pair]int{}
	global := -1
	srcs, _ := termCandidates(g, a.Src)
	dsts, _ := termCandidates(g, a.Dst)
	for _, u := range srcs {
		for _, v := range dsts {
			pbs, err := evalAtomBetween(g, a, u, v, opts)
			if err != nil || len(pbs) == 0 {
				continue
			}
			l := pbs[0].Path.Len()
			minLen[pair{u, v}] = l
			if global == -1 || l < global {
				global = l
			}
		}
	}
	if global == -1 {
		return nil
	}
	// Keep tuples whose endpoint pair achieves the global minimum.
	uCol, vCol := -1, -1
	for i, at := range attrs {
		if !a.Src.IsConst && at == a.Src.Var && uCol == -1 {
			uCol = i
		} else if !a.Dst.IsConst && at == a.Dst.Var {
			vCol = i
		}
	}
	resolve := func(t []OutValue, col int, term Term) int {
		if term.IsConst {
			n, _ := g.NodeIndex(term.Const)
			return n
		}
		return t[col].Node
	}
	var out [][]OutValue
	for _, t := range tuples {
		u := resolve(t, uCol, a.Src)
		v := resolve(t, vCol, a.Dst)
		if vCol == -1 && !a.Dst.IsConst {
			v = u // shared src/dst variable
		}
		if l, ok := minLen[pair{u, v}]; ok && l == global {
			out = append(out, t)
		}
	}
	return out
}

func termCandidates(g *graph.Graph, t Term) ([]int, error) {
	if t.IsConst {
		n, ok := g.NodeIndex(t.Const)
		if !ok {
			return nil, fmt.Errorf("crpq: unknown constant node %q", t.Const)
		}
		return []int{n}, nil
	}
	out := make([]int, 0, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		if g.NodeAlive(i) { // skip tombstones under a mutation overlay
			out = append(out, i)
		}
	}
	return out, nil
}
