package crpq

import (
	"errors"
	"strings"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/lrpq"
	"graphquery/internal/rpq"
)

// TestExample13Q1 reproduces q1 of Example 13:
// q1(x1,x2,x3) :- Transfer(x1,x2), Transfer(x1,x3), Transfer(x2,x3)
// returns exactly {(a3,a2,a4), (a6,a3,a5)} on the Figure 2 graph.
func TestExample13Q1(t *testing.T) {
	g := gen.BankEdgeLabeled()
	q := MustParse("q(x1, x2, x3) :- Transfer(x1, x2), Transfer(x1, x3), Transfer(x2, x3)")
	res, err := Eval(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("q1 returned %d rows, want 2:\n%s", len(res.Rows), res.Format(g))
	}
	if !res.Contains(g, "a3, a2, a4") || !res.Contains(g, "a6, a3, a5") {
		t.Errorf("q1 rows:\n%s", res.Format(g))
	}
}

// TestExample13Q2 reproduces q2 of Example 13: accounts x with a 1–3-hop
// transfer path to y, returning (x, owner(y), isBlocked(y)).
func TestExample13Q2(t *testing.T) {
	g := gen.BankEdgeLabeled()
	q := MustParse("q(x, x1, x2) :- owner(y, x1), isBlocked(y, x2), Transfer Transfer? (x, y)")
	res, err := Eval(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(g, "a4, Rebecca, no") {
		t.Errorf("expected (a4, Rebecca, no) in:\n%s", res.Format(g))
	}
}

// TestExample17 reproduces the ℓ-CRPQ of Example 17 with its per-endpoint-
// pair shortest semantics.
func TestExample17(t *testing.T) {
	g := gen.BankEdgeLabeled()
	q := MustParse("q(x1, x2, z) :- owner(y1, x1), owner(y2, x2), shortest (Transfer^z)+(y1, y2)")
	res, err := Eval(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(g, "Jay, Rebecca, list(t10)") {
		t.Errorf("missing Jay→Rebecca row:\n%s", res.Format(g))
	}
	if !res.Contains(g, "Mike, Megan, list(t7, t4)") {
		t.Errorf("missing Mike→Megan row:\n%s", res.Format(g))
	}
}

// TestGlobalModesAblation shows what would happen if shortest were applied
// globally instead of per endpoint pair: only globally minimal paths
// survive, so the Mike→Megan (length 2) row disappears.
func TestGlobalModesAblation(t *testing.T) {
	g := gen.BankEdgeLabeled()
	q := MustParse("q(x1, x2, z) :- owner(y1, x1), owner(y2, x2), shortest (Transfer^z)+(y1, y2)")
	res, err := Eval(g, q, Options{GlobalModes: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(g, "Jay, Rebecca, list(t10)") {
		t.Errorf("global shortest should keep length-1 rows:\n%s", res.Format(g))
	}
	if res.Contains(g, "Mike, Megan, list(t7, t4)") {
		t.Errorf("global shortest should drop length-2 rows:\n%s", res.Format(g))
	}
}

func TestConstantTerms(t *testing.T) {
	g := gen.BankEdgeLabeled()
	q := MustParse("q(y) :- Transfer(@a3, y)")
	res, err := Eval(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[row[0].Format(g)] = true
	}
	if len(got) != 3 || !got["a2"] || !got["a4"] || !got["a5"] {
		t.Errorf("direct transfers from a3 = %v, want {a2,a4,a5}", got)
	}
	if _, err := Eval(g, MustParse("q(y) :- Transfer(@nope, y)"), Options{}); err == nil {
		t.Error("unknown constant should fail")
	}
}

func TestSharedEndpointVariable(t *testing.T) {
	// Self-loops via q(x) :- Transfer(x, x): none in the bank graph.
	g := gen.BankEdgeLabeled()
	res, err := Eval(g, MustParse("q(x) :- Transfer(x, x)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("no Transfer self-loops expected, got %d", len(res.Rows))
	}
	// But Transfer-cycles exist: Transfer+(x, x).
	res, err = Eval(g, MustParse("q(x) :- Transfer+(x, x)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Errorf("all 6 accounts lie on transfer cycles, got %d rows", len(res.Rows))
	}
}

func TestDLAtom(t *testing.T) {
	// dl-RPQ atom inside a CRPQ: cheap transfers out of each account.
	g := gen.BankProperty()
	q := MustParse("q(x, y) :- () [Transfer][amount < 1500000] () (x, y)")
	res, err := Eval(g, q, Options{AtomMaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"a1, a3": true, "a3, a2": true, "a3, a4": true}
	if len(res.Rows) != len(want) {
		t.Fatalf("cheap transfers: %d rows, want %d:\n%s", len(res.Rows), len(want), res.Format(g))
	}
	for r := range want {
		if !res.Contains(g, r) {
			t.Errorf("missing row %s", r)
		}
	}
}

func TestValidateConditions(t *testing.T) {
	// Condition 3: z used as node and list variable.
	q := &Query{
		Head:  []string{"z"},
		Atoms: []Atom{{L: lrpq.MustParse("(a^z)*"), Src: V("z"), Dst: V("y")}},
	}
	if err := q.Validate(); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("condition 3 violation not caught: %v", err)
	}
	// Condition 4: z shared across atoms.
	q = &Query{
		Head: []string{"z"},
		Atoms: []Atom{
			{L: lrpq.MustParse("(a^z)*"), Src: V("x"), Dst: V("y")},
			{L: lrpq.MustParse("(b^z)*"), Src: V("u"), Dst: V("v")},
		},
	}
	if err := q.Validate(); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("condition 4 violation not caught: %v", err)
	}
	// Condition 5: head variable unbound.
	q = &Query{
		Head:  []string{"nope"},
		Atoms: []Atom{{RPQ: rpq.MustParse("a"), Src: V("x"), Dst: V("y")}},
	}
	if err := q.Validate(); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("condition 5 violation not caught: %v", err)
	}
	// Atom with no expression.
	q = &Query{Head: nil, Atoms: []Atom{{Src: V("x"), Dst: V("y")}}}
	if err := q.Validate(); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("empty atom not caught: %v", err)
	}
	// Atom with two expressions.
	q = &Query{Head: nil, Atoms: []Atom{{
		RPQ: rpq.MustParse("a"), L: lrpq.MustParse("a"), Src: V("x"), Dst: V("y")}}}
	if err := q.Validate(); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("double atom not caught: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"q(x)",                      // no body
		"q(x) :- ",                  // empty body
		"q :- a(x, y)",              // malformed head
		"q(x) :- a(x)",              // one term
		"q(x) :- a(x, y, z)",        // three terms
		"q(x) :- (x, y)",            // no expression
		"q(x) :- a(x, @)",           // empty constant
		"q(x) :- a(x, y!)",          // bad term
		"q(x) :- [unclosed (x, y)",  // unbalanced
		"q(w) :- a(x, y)",           // head not bound (condition 5)
		"q() :- zigzag a* (x, y) )", // unbalanced
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseModes(t *testing.T) {
	q := MustParse("q(x, y) :- trail (a|b)*(x, y), simple c+(y, x), all d(x, x)")
	if q.Atoms[0].Mode != eval.Trail || q.Atoms[1].Mode != eval.Simple || q.Atoms[2].Mode != eval.All {
		t.Errorf("modes = %v %v %v", q.Atoms[0].Mode, q.Atoms[1].Mode, q.Atoms[2].Mode)
	}
	if !strings.Contains(q.String(), "trail") {
		t.Errorf("String should render modes: %s", q.String())
	}
}

func TestBooleanQuery(t *testing.T) {
	g := gen.BankEdgeLabeled()
	q := MustParse("q() :- Transfer(@a3, @a5)")
	res, err := Eval(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("true boolean query should yield one empty row, got %d", len(res.Rows))
	}
	q = MustParse("q() :- owner(@a3, @a5)")
	res, err = Eval(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("false boolean query should yield no rows, got %d", len(res.Rows))
	}
}

func TestJoinAcrossAtoms(t *testing.T) {
	// Example 14's q1: pairs connected by transfers in both directions.
	g := gen.BankEdgeLabeled()
	res, err := Eval(g, MustParse("q(x, y) :- Transfer(x, y), Transfer(y, x)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Direct 2-cycles in the transfer topology: none (check by brute force).
	brute := 0
	for e1 := 0; e1 < g.NumEdges(); e1++ {
		for e2 := 0; e2 < g.NumEdges(); e2++ {
			a, b := g.Edge(e1), g.Edge(e2)
			if a.Label == "Transfer" && b.Label == "Transfer" &&
				a.Src == b.Tgt && a.Tgt == b.Src {
				brute++
			}
		}
	}
	if (brute > 0) != (len(res.Rows) > 0) {
		t.Errorf("join result (%d rows) disagrees with brute force (%d)", len(res.Rows), brute)
	}
}

func TestResultFormatSorted(t *testing.T) {
	g := gen.BankEdgeLabeled()
	res, err := Eval(g, MustParse("q(y) :- Transfer(@a3, y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format(g)
	lines := strings.Split(out, "\n")
	if len(lines) != 3 || lines[0] != "a2" || lines[1] != "a4" || lines[2] != "a5" {
		t.Errorf("Format should be sorted:\n%s", out)
	}
}
