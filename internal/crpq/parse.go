package crpq

import (
	"fmt"
	"strings"

	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/lrpq"
)

// Parse parses the Datalog-style (dl-)CRPQ syntax of Sections 3.1.2–3.2.2:
//
//	q(x1, x2, z) :- owner(y1, x1), owner(y2, x2), shortest (Transfer^z)+(y1, y2)
//	q(x) :- trail (a|b)* (x, @v3)
//	q(z) :- () {[Transfer][amount < 4500000] ()}+ (x, y), Transfer(y, x)
//
// Each atom is an optional mode keyword (shortest, simple, trail, all),
// followed by an expression, followed by the endpoint pair "(t1, t2)".
// Terms are variables or @-prefixed constant node IDs. Expressions
// containing '[', ':=', or a comparison operator are parsed as dl-RPQs
// (package dlrpq); all others as ℓ-RPQs (package lrpq), which subsume
// plain RPQs.
func Parse(input string) (*Query, error) {
	headBody := strings.SplitN(input, ":-", 2)
	if len(headBody) != 2 {
		return nil, fmt.Errorf("crpq: missing ':-' in %q", input)
	}
	head, err := parseHead(strings.TrimSpace(headBody[0]))
	if err != nil {
		return nil, err
	}
	atoms, err := splitAtoms(headBody[1])
	if err != nil {
		return nil, err
	}
	q := &Query{Head: head}
	for _, at := range atoms {
		a, err := parseAtom(strings.TrimSpace(at))
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, a)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses or panics.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

func parseHead(s string) ([]string, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("crpq: head must have the form name(x1, …, xk): %q", s)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner == "" {
		return nil, nil // boolean query
	}
	parts := strings.Split(inner, ",")
	head := make([]string, len(parts))
	for i, p := range parts {
		head[i] = strings.TrimSpace(p)
		if head[i] == "" {
			return nil, fmt.Errorf("crpq: empty head variable in %q", s)
		}
	}
	return head, nil
}

// splitAtoms splits the body on top-level commas (depth 0 w.r.t. all
// bracket kinds, outside quotes).
func splitAtoms(s string) ([]string, error) {
	var atoms []string
	depth := 0
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inQuote = false
			}
		case c == '\'':
			inQuote = true
		case c == '(' || c == '[' || c == '{':
			depth++
		case c == ')' || c == ']' || c == '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("crpq: unbalanced brackets in body")
			}
		case c == ',' && depth == 0:
			atoms = append(atoms, s[start:i])
			start = i + 1
		}
	}
	if depth != 0 || inQuote {
		return nil, fmt.Errorf("crpq: unbalanced brackets or quote in body")
	}
	last := strings.TrimSpace(s[start:])
	if last == "" {
		return nil, fmt.Errorf("crpq: empty atom in body")
	}
	atoms = append(atoms, last)
	return atoms, nil
}

func parseAtom(s string) (Atom, error) {
	var a Atom
	for _, m := range []string{"shortest", "simple", "trail", "all"} {
		if strings.HasPrefix(s, m+" ") || strings.HasPrefix(s, m+"(") || strings.HasPrefix(s, m+"\t") {
			mode, _ := eval.ParseMode(m)
			a.Mode = mode
			s = strings.TrimSpace(strings.TrimPrefix(s, m))
			break
		}
	}
	exprText, srcT, dstT, err := splitTerms(s)
	if err != nil {
		return Atom{}, err
	}
	a.Src, err = parseTerm(srcT)
	if err != nil {
		return Atom{}, err
	}
	a.Dst, err = parseTerm(dstT)
	if err != nil {
		return Atom{}, err
	}
	if isDL(exprText) {
		e, err := dlrpq.Parse(exprText)
		if err != nil {
			return Atom{}, err
		}
		a.DL = e
	} else {
		e, err := lrpq.Parse(exprText)
		if err != nil {
			return Atom{}, err
		}
		if len(lrpq.Vars(e)) == 0 {
			a.RPQ = lrpq.Erase(e) // plain RPQ: unlocks reachability-only evaluation
		} else {
			a.L = e
		}
	}
	return a, nil
}

// splitTerms finds the trailing "(t1, t2)" of an atom.
func splitTerms(s string) (expr, src, dst string, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasSuffix(s, ")") {
		return "", "", "", fmt.Errorf("crpq: atom %q must end with (src, dst)", s)
	}
	depth := 0
	open := -1
	for i := len(s) - 1; i >= 0; i-- {
		switch s[i] {
		case ')':
			depth++
		case '(':
			depth--
			if depth == 0 {
				open = i
			}
		}
		if depth == 0 {
			break
		}
	}
	if open < 0 {
		return "", "", "", fmt.Errorf("crpq: atom %q has unbalanced parentheses", s)
	}
	inner := s[open+1 : len(s)-1]
	parts := strings.Split(inner, ",")
	if len(parts) != 2 {
		return "", "", "", fmt.Errorf("crpq: atom %q must end with exactly (src, dst)", s)
	}
	expr = strings.TrimSpace(s[:open])
	if expr == "" {
		return "", "", "", fmt.Errorf("crpq: atom %q has no expression", s)
	}
	return expr, strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), nil
}

func parseTerm(s string) (Term, error) {
	if s == "" {
		return Term{}, fmt.Errorf("crpq: empty term")
	}
	if s[0] == '@' {
		if len(s) == 1 {
			return Term{}, fmt.Errorf("crpq: empty constant term")
		}
		return C(graph.NodeID(s[1:])), nil
	}
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return Term{}, fmt.Errorf("crpq: invalid term %q", s)
		}
	}
	return V(s), nil
}

// isDL decides the expression dialect: dl-RPQ if it contains edge brackets,
// an assignment, or a comparison operator outside quotes.
func isDL(s string) bool {
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote {
			if c == '\\' {
				i++
			} else if c == '\'' {
				inQuote = false
			}
			continue
		}
		switch c {
		case '\'':
			inQuote = true
		case '[', '=', '<', '>':
			return true
		case ':':
			if i+1 < len(s) && s[i+1] == '=' {
				return true
			}
		}
	}
	return false
}
