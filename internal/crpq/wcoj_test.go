package crpq

import (
	"errors"
	"testing"

	"graphquery/internal/gen"
)

// TestWCOJAgreesWithEval: on random graphs, the worst-case-optimal plan and
// the pairwise-join plan return identical results.
func TestWCOJAgreesWithEval(t *testing.T) {
	queries := []string{
		"q(x, y, z) :- a(x, y), a(y, z), a(z, x)", // triangle
		"q(x, y) :- a(x, y), b(y, x)",
		"q(x) :- a(x, x)",
		"q(x, z) :- a+(x, y), b(y, z)",
		"q() :- a(x, y), b(y, z)",
	}
	for trial := 0; trial < 8; trial++ {
		g := gen.Random(8, 24, []string{"a", "b"}, int64(trial)*17+3)
		for _, qs := range queries {
			q := MustParse(qs)
			ref, err := Eval(g, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := EvalWCOJ(g, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ref.Format(g) != got.Format(g) {
				t.Fatalf("trial %d %q:\nwcoj:\n%s\nref:\n%s", trial, qs, got.Format(g), ref.Format(g))
			}
		}
	}
}

func TestWCOJConstants(t *testing.T) {
	g := gen.BankEdgeLabeled()
	q := MustParse("q(y) :- Transfer(@a3, y), Transfer(y, @a6)")
	ref, err := Eval(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalWCOJ(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Format(g) != got.Format(g) {
		t.Fatalf("wcoj %q vs ref %q", got.Format(g), ref.Format(g))
	}
	if len(got.Rows) != 1 || got.Rows[0][0].Format(g) != "a4" {
		t.Errorf("a3→y→a6 should give y = a4:\n%s", got.Format(g))
	}
	if _, err := EvalWCOJ(g, MustParse("q(y) :- Transfer(@nope, y)"), Options{}); err == nil {
		t.Error("unknown constant should fail")
	}
}

func TestWCOJEligibility(t *testing.T) {
	g := gen.BankEdgeLabeled()
	ineligible := []string{
		"q(z) :- (Transfer^z)+(x, y)",     // list variable
		"q(x) :- shortest Transfer(x, y)", // path mode
		"q(x) :- () [Transfer] () (x, y)", // dl-RPQ atom
	}
	for _, qs := range ineligible {
		if _, err := EvalWCOJ(g, MustParse(qs), Options{}); !errors.Is(err, ErrNotWCOJEligible) {
			t.Errorf("%q: err = %v, want ErrNotWCOJEligible", qs, err)
		}
	}
}

// TestWCOJTriangleOnBank: the Example 13 q1 triangle via WCOJ.
func TestWCOJTriangleOnBank(t *testing.T) {
	g := gen.BankEdgeLabeled()
	q := MustParse("q(x1, x2, x3) :- Transfer(x1, x2), Transfer(x1, x3), Transfer(x2, x3)")
	res, err := EvalWCOJ(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || !res.Contains(g, "a3, a2, a4") || !res.Contains(g, "a6, a3, a5") {
		t.Errorf("q1 via WCOJ:\n%s", res.Format(g))
	}
}
