package crpq

import (
	"fmt"
	"sort"
	"strings"

	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/lrpq"
	"graphquery/internal/wcoj"
)

// EvalWCOJ evaluates a CRPQ with the worst-case-optimal join strategy of
// Section 7.1 (package wcoj): each atom's RPQ is materialized to its
// answer-pair relation via the product construction, and the conjunction is
// then enumerated attribute-at-a-time instead of by pairwise hash joins.
// On cyclic join shapes (triangles and friends) this avoids the
// intermediate-result blowups the AGM bound warns about.
//
// Eligibility: every atom must be a plain RPQ (or an ℓ-RPQ without list
// variables) under mode all, and the head must contain node variables only.
// Ineligible queries return ErrNotWCOJEligible — callers fall back to Eval.
func EvalWCOJ(g *graph.Graph, q *Query, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := wcojEligible(q); err != nil {
		return nil, err
	}

	wq := &wcoj.Query{}
	fresh := 0
	for _, a := range q.Atoms {
		expr := a.RPQ
		if expr == nil {
			expr = lrpq.Erase(a.L)
		}
		rel := wcoj.NewRel(eval.Pairs(g, expr))
		xVar, rel2, err := wcojTerm(g, a.Src, rel, true, &fresh)
		if err != nil {
			return nil, err
		}
		yVar, rel3, err := wcojTerm(g, a.Dst, rel2, false, &fresh)
		if err != nil {
			return nil, err
		}
		wq.Atoms = append(wq.Atoms, wcoj.Atom{Rel: rel3, X: xVar, Y: yVar})
	}
	rows, err := wq.Enumerate(nil)
	if err != nil {
		return nil, err
	}
	out := &Result{Head: append([]string(nil), q.Head...)}
	seen := map[string]struct{}{}
	for _, row := range rows {
		tuple := make([]OutValue, len(q.Head))
		var kb strings.Builder
		for i, x := range q.Head {
			tuple[i] = OutValue{Node: row[x]}
			fmt.Fprintf(&kb, "N%d|", row[x])
		}
		if _, dup := seen[kb.String()]; dup {
			continue
		}
		seen[kb.String()] = struct{}{}
		out.Rows = append(out.Rows, tuple)
	}
	sortRows(out)
	return out, nil
}

// ErrNotWCOJEligible reports a query outside the WCOJ fragment.
var ErrNotWCOJEligible = fmt.Errorf("crpq: query not eligible for worst-case-optimal evaluation")

func wcojEligible(q *Query) error {
	for _, a := range q.Atoms {
		if a.DL != nil {
			return fmt.Errorf("%w: dl-RPQ atom %s", ErrNotWCOJEligible, a)
		}
		if a.L != nil && len(lrpq.Vars(a.L)) > 0 {
			return fmt.Errorf("%w: list variables in %s", ErrNotWCOJEligible, a)
		}
		if a.Mode != eval.All {
			return fmt.Errorf("%w: path mode %v", ErrNotWCOJEligible, a.Mode)
		}
	}
	listVars := map[string]bool{}
	for _, a := range q.Atoms {
		for _, z := range a.vars() {
			listVars[z] = true
		}
	}
	for _, x := range q.Head {
		if listVars[x] {
			return fmt.Errorf("%w: head list variable %q", ErrNotWCOJEligible, x)
		}
	}
	return nil
}

// wcojTerm resolves a term to a variable name, restricting the relation
// when the term is a constant (the constant becomes a fresh variable over a
// singleton domain).
func wcojTerm(g *graph.Graph, t Term, rel *wcoj.Rel, isSrc bool, fresh *int) (string, *wcoj.Rel, error) {
	if !t.IsConst {
		return t.Var, rel, nil
	}
	n, ok := g.NodeIndex(t.Const)
	if !ok {
		return "", nil, fmt.Errorf("crpq: unknown constant node %q", t.Const)
	}
	*fresh++
	name := fmt.Sprintf("$const%d", *fresh)
	var filtered [][2]int
	for _, p := range relPairs(rel) {
		if isSrc && p[0] == n || !isSrc && p[1] == n {
			filtered = append(filtered, p)
		}
	}
	return name, wcoj.NewRel(filtered), nil
}

// relPairs re-extracts the pair list of a relation (small helper to keep
// wcoj's internals private).
func relPairs(r *wcoj.Rel) [][2]int { return r.Pairs() }

func sortRows(res *Result) {
	sort.Slice(res.Rows, func(i, j int) bool {
		return rowKey(res.Rows[i]) < rowKey(res.Rows[j])
	})
}
