// Package regular implements nested CRPQs — regular queries in the sense of
// Reutter, Romero, and Vardi (Theory Comput. Syst. 2017) — the
// compositionality feature of Section 3.1.3: binary CRPQs may be used in
// place of edge labels inside RPQs, so transitive closures of query-defined
// "virtual edges" become expressible (Example 15). Nesting is also exactly
// what Proposition 24 identifies as missing from CoreGQL's one-directional
// pattern-then-algebra flow: with it, reachability can be evaluated over
// first-order-transformed relations.
//
// A Program is a sequence of definitions
//
//	V₁(x, y) :- …    (a binary CRPQ over the graph's labels)
//	V₂(x, y) :- …    (may use V₁ as an edge label)
//	…
//	q(…)     :- …    (the final query, using any Vᵢ)
//
// evaluated bottom-up by materializing each definition's result pairs as
// virtual edges (the Datalog-flavored syntax of the regular-queries paper).
package regular

import (
	"fmt"
	"strings"

	"graphquery/internal/crpq"
	"graphquery/internal/graph"
)

// Def is one virtual-edge definition: a binary CRPQ whose head is exactly
// (x, y) for two distinct node variables.
type Def struct {
	Name  string
	Query *crpq.Query
}

// Program is an ordered list of definitions plus a final query.
type Program struct {
	Defs  []Def
	Final *crpq.Query
}

// Validate checks that every definition is binary, names are distinct, and
// no definition name collides with a graph-level edge label used earlier.
func (p *Program) Validate() error {
	if p.Final == nil {
		return fmt.Errorf("regular: program has no final query")
	}
	seen := map[string]bool{}
	for i, d := range p.Defs {
		if d.Name == "" {
			return fmt.Errorf("regular: definition %d has no name", i)
		}
		if seen[d.Name] {
			return fmt.Errorf("regular: duplicate definition %q", d.Name)
		}
		seen[d.Name] = true
		if d.Query == nil {
			return fmt.Errorf("regular: definition %q has no body", d.Name)
		}
		if len(d.Query.Head) != 2 || d.Query.Head[0] == d.Query.Head[1] {
			return fmt.Errorf("regular: definition %q must be binary with distinct head variables", d.Name)
		}
		if err := d.Query.Validate(); err != nil {
			return fmt.Errorf("regular: definition %q: %w", d.Name, err)
		}
	}
	return p.Final.Validate()
}

// Materialize evaluates the definitions bottom-up, returning a graph
// augmented with one Name-labeled virtual edge per result pair of each
// definition. Virtual edge IDs are "$Name#i".
func (p *Program) Materialize(g *graph.Graph, opts crpq.Options) (*graph.Graph, error) {
	cur := g
	for _, d := range p.Defs {
		res, err := crpq.Eval(cur, d.Query, opts)
		if err != nil {
			return nil, fmt.Errorf("regular: evaluating %q: %w", d.Name, err)
		}
		b := graph.NewBuilder()
		for i := 0; i < cur.NumNodes(); i++ {
			n := cur.Node(i)
			b.AddNode(n.ID, n.Label, n.Props)
		}
		for i := 0; i < cur.NumEdges(); i++ {
			e := cur.Edge(i)
			b.AddEdge(e.ID, e.Label, cur.Node(e.Src).ID, cur.Node(e.Tgt).ID, e.Props)
		}
		for i, row := range res.Rows {
			if len(row) != 2 || row[0].IsList || row[1].IsList {
				return nil, fmt.Errorf("regular: definition %q produced a non-binary row", d.Name)
			}
			b.AddEdge(graph.EdgeID(fmt.Sprintf("$%s#%d", d.Name, i)), d.Name,
				cur.Node(row[0].Node).ID, cur.Node(row[1].Node).ID, nil)
		}
		next, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("regular: materializing %q: %w", d.Name, err)
		}
		cur = next
	}
	return cur, nil
}

// Eval validates, materializes, and runs the final query.
func Eval(g *graph.Graph, p *Program, opts crpq.Options) (*crpq.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	aug, err := p.Materialize(g, opts)
	if err != nil {
		return nil, err
	}
	return crpq.Eval(aug, p.Final, opts)
}

// Parse parses a multi-line program. Every non-empty, non-comment line is a
// CRPQ in the package crpq syntax; all lines but the last are definitions
// (their head name becomes the virtual edge label), and the last line is
// the final query. Lines starting with '#' are comments.
//
//	Vedge(x, y) :- Transfer(x, y), Transfer(y, x)
//	q(u, v)     :- Vedge*(u, v)
func Parse(input string) (*Program, error) {
	var lines []string
	for _, raw := range strings.Split(input, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("regular: empty program")
	}
	p := &Program{}
	for i, line := range lines {
		name, err := headName(line)
		if err != nil {
			return nil, err
		}
		q, err := crpq.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("regular: line %d: %w", i+1, err)
		}
		if i == len(lines)-1 {
			p.Final = q
		} else {
			p.Defs = append(p.Defs, Def{Name: name, Query: q})
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse parses or panics.
func MustParse(input string) *Program {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

func headName(line string) (string, error) {
	open := strings.IndexByte(line, '(')
	if open <= 0 {
		return "", fmt.Errorf("regular: malformed head in %q", line)
	}
	return strings.TrimSpace(line[:open]), nil
}
