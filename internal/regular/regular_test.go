package regular

import (
	"strings"
	"testing"

	"graphquery/internal/crpq"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
)

// twoWayGraph: u ⇄ v ⇄ w plus one-directional w → x, all Transfer.
func twoWayGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).
		AddNode("w", "", nil).AddNode("x", "", nil).
		AddEdge("e1", "Transfer", "u", "v", nil).
		AddEdge("e2", "Transfer", "v", "u", nil).
		AddEdge("e3", "Transfer", "v", "w", nil).
		AddEdge("e4", "Transfer", "w", "v", nil).
		AddEdge("e5", "Transfer", "w", "x", nil).
		MustBuild()
}

// TestExample15 reproduces the nested CRPQ of Example 15: pairs of nodes
// connected by a path of virtual edges defined by
// q1(x,y) := Transfer(x,y), Transfer(y,x).
func TestExample15(t *testing.T) {
	g := twoWayGraph(t)
	p := MustParse(`
		# Example 14's q1 as a virtual edge:
		Vedge(x, y) :- Transfer(x, y), Transfer(y, x)
		# Example 15: its transitive closure (plus reflexivity via *):
		q(a, b) :- Vedge+(a, b)
	`)
	res, err := Eval(g, p, crpq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Virtual edges: u↔v, v↔w (and symmetric). Closure: all pairs among
	// {u,v,w} in both directions including self via round trips.
	want := []string{
		"u, v", "v, u", "v, w", "w, v", "u, w", "w, u",
		"u, u", "v, v", "w, w",
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d:\n%s", len(res.Rows), len(want), res.Format(g))
	}
	for _, r := range want {
		if !res.Contains(g, r) {
			t.Errorf("missing pair (%s)", r)
		}
	}
	// x is only reachable one-way: never in the closure.
	if strings.Contains(res.Format(g), "x") {
		t.Error("x must not participate in two-way closures")
	}
}

// TestCRPQsAreNotCompositional demonstrates the Example 14 point: the flat
// CRPQ cannot take the closure, but the program can — compare a flat
// 2-step unfolding with the true closure.
func TestCRPQsAreNotCompositional(t *testing.T) {
	g := twoWayGraph(t)
	// Flat 1-step unfolding: just q1 itself.
	oneStep, err := crpq.Eval(g,
		crpq.MustParse("q(x, y) :- Transfer(x, y), Transfer(y, x)"), crpq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	closure, err := Eval(g, MustParse(`
		Vedge(x, y) :- Transfer(x, y), Transfer(y, x)
		q(a, b) :- Vedge+(a, b)
	`), crpq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !closure.Contains(g, "u, w") {
		t.Error("closure should connect u to w through v")
	}
	if oneStep.Contains(g, "u, w") {
		t.Error("the flat query cannot connect u to w")
	}
}

func TestChainedDefinitions(t *testing.T) {
	// A definition may use an earlier definition.
	g := gen.BankEdgeLabeled()
	p := MustParse(`
		Hop2(x, y) :- Transfer Transfer (x, y)
		Hop4(x, y) :- Hop2 Hop2 (x, y)
		q(x) :- Hop4(@a3, x)
	`)
	res, err := Eval(g, p, crpq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against a plain 4-step RPQ.
	ref, err := crpq.Eval(g, crpq.MustParse("q(x) :- Transfer{4}(@a3, x)"), crpq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Format(g) != ref.Format(g) {
		t.Errorf("Hop4 = %q, reference = %q", res.Format(g), ref.Format(g))
	}
}

func TestNestedListVariables(t *testing.T) {
	// Final queries may carry list variables over virtual edges.
	g := twoWayGraph(t)
	p := MustParse(`
		Vedge(x, y) :- Transfer(x, y), Transfer(y, x)
		q(z) :- shortest (Vedge^z)+(@u, @w)
	`)
	res, err := Eval(g, p, crpq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d:\n%s", len(res.Rows), res.Format(g))
	}
	if !res.Rows[0][0].IsList || len(res.Rows[0][0].List) != 2 {
		t.Errorf("expected a 2-element virtual-edge list, got %s", res.Rows[0][0].Format(g))
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []string{
		"", // empty
		"q(x, y, z) :- a(x, y), a(y, z)\nq(x) :- a(x, x)", // ternary def... first line is def with 3 head vars
		"V(x, x) :- a(x, x)\nq(y) :- V(y, y)",             // repeated head var
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
	// Duplicate definition names.
	p := &Program{
		Defs: []Def{
			{Name: "V", Query: crpq.MustParse("V(x, y) :- a(x, y)")},
			{Name: "V", Query: crpq.MustParse("V(x, y) :- b(x, y)")},
		},
		Final: crpq.MustParse("q(x) :- V(x, x)"),
	}
	if err := p.Validate(); err == nil {
		t.Error("duplicate names should fail")
	}
	// Missing final.
	p2 := &Program{Defs: nil, Final: nil}
	if err := p2.Validate(); err == nil {
		t.Error("missing final query should fail")
	}
}

func TestMaterializePreservesOriginal(t *testing.T) {
	g := twoWayGraph(t)
	p := MustParse(`
		Vedge(x, y) :- Transfer(x, y), Transfer(y, x)
		q(a, b) :- Vedge(a, b)
	`)
	aug, err := p.Materialize(g, crpq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aug.NumNodes() != g.NumNodes() {
		t.Error("materialization must not add nodes")
	}
	if aug.NumEdges() <= g.NumEdges() {
		t.Error("materialization should add virtual edges")
	}
	// Original edges intact.
	if _, ok := aug.EdgeIndex("e1"); !ok {
		t.Error("original edges must survive")
	}
	// Virtual edges labeled with the definition name.
	found := false
	for i := 0; i < aug.NumEdges(); i++ {
		if aug.Edge(i).Label == "Vedge" {
			found = true
		}
	}
	if !found {
		t.Error("virtual edges missing")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	p := MustParse(`
		# leading comment

		V(x, y) :- a(x, y)
		# interleaved comment
		q(x, y) :- V(x, y)
	`)
	if len(p.Defs) != 1 || p.Defs[0].Name != "V" {
		t.Errorf("defs = %+v", p.Defs)
	}
}
