package cypherfrag

import (
	"strings"
	"testing"

	"graphquery/internal/rpq"
)

func TestCompile(t *testing.T) {
	tests := []struct {
		p    Pattern
		want string // equivalent RPQ (textual)
	}{
		{Edge("a"), "a"},
		{Edge("a", "b"), "a | b"},
		{StarOf("a"), "a*"},
		{StarOf("a", "b"), "(a | b)*"},
		{Concat(Edge("a"), StarOf("b")), "a b*"},
		{Union(Edge("a"), StarOf("b")), "a | b*"},
	}
	for _, tc := range tests {
		got := Compile(tc.p)
		if !rpq.Equivalent(got, rpq.MustParse(tc.want)) {
			t.Errorf("Compile(%s) = %s, want ≡ %s", tc.p, got, tc.want)
		}
	}
}

func TestSize(t *testing.T) {
	p := Concat(Edge("a"), Union(StarOf("a"), Edge("a")))
	if got := Size(p); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
}

// TestExpressibleTargets: languages the fragment CAN express are found.
func TestExpressibleTargets(t *testing.T) {
	tests := []string{
		"a*",
		"a",
		"a | b",
		"a b*",
		"(a | b)* a",
	}
	for _, target := range tests {
		res := SearchEquivalent(rpq.MustParse(target), []string{"a", "b"}, 7)
		if res.Found == nil {
			t.Errorf("target %q should be expressible in the fragment", target)
			continue
		}
		if !rpq.Equivalent(Compile(res.Found), rpq.MustParse(target)) {
			t.Errorf("search returned inequivalent pattern %s for %q", res.Found, target)
		}
	}
}

// TestProposition22 exhibits the proposition empirically: no Cypher-
// fragment pattern over {ℓ} up to the size bound is equivalent to (ℓℓ)*,
// and every candidate is refuted by an explicit witness word.
func TestProposition22(t *testing.T) {
	target := rpq.MustParse("(a a)*")
	res := SearchEquivalent(target, []string{"a"}, 9)
	if res.Found != nil {
		t.Fatalf("(aa)* reported expressible as %s — contradicts Proposition 22", res.Found)
	}
	if res.Candidates < 10 {
		t.Errorf("search explored only %d distinct languages; bound too weak for a meaningful check", res.Candidates)
	}
	// Every explored candidate has a recorded distinguishing word, and each
	// witness genuinely separates the languages.
	targetNFA := rpq.Compile(target)
	for pat, w := range res.Witnesses {
		inTarget := targetNFA.Accepts(w)
		// Recover no pattern from the string; just sanity-check the word is
		// odd-length a's or contains a non-a symbol whenever in/out differ.
		if inTarget && len(w)%2 != 0 {
			t.Errorf("witness %v for %s claimed in (aa)* but has odd length", w, pat)
		}
	}
	if len(res.Witnesses) == 0 {
		t.Error("expected distinguishing witnesses to be recorded")
	}
}

// TestProposition22WitnessesSeparate re-runs a small search and fully
// verifies the witnesses against both automata.
func TestProposition22WitnessesSeparate(t *testing.T) {
	target := rpq.MustParse("(a a)*")
	targetNFA := rpq.Compile(target)
	res := SearchEquivalent(target, []string{"a"}, 5)
	if res.Found != nil {
		t.Fatalf("unexpected equivalent pattern %s", res.Found)
	}
	// Rebuild each witnessed pattern by re-parsing is impossible from the
	// rendering; instead re-enumerate atoms and composites and check their
	// recorded witnesses by rendering lookup.
	check := func(p Pattern) {
		w, ok := res.Witnesses[p.String()]
		if !ok {
			return // deduplicated to another representative
		}
		cand := rpq.Compile(Compile(p))
		if cand.Accepts(w) == targetNFA.Accepts(w) {
			t.Errorf("witness %v fails to separate %s from (aa)*", w, p)
		}
	}
	check(Edge("a"))
	check(StarOf("a"))
	check(ConcatPat{Left: Edge("a"), Right: Edge("a")})
	check(UnionPat{Left: Edge("a"), Right: StarOf("a")})
}

func TestStringRendering(t *testing.T) {
	s := Concat(Edge("a", "b"), StarOf("c")).String()
	if !strings.Contains(s, "a|b") || !strings.Contains(s, "(c)*") {
		t.Errorf("rendering = %q", s)
	}
}
