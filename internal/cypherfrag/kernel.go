package cypherfrag

import (
	"context"

	"graphquery/internal/eval"
	"graphquery/internal/graph"
)

// PairsCtx evaluates the fragment pattern as endpoint pairs on g via the
// product-graph kernel: Compile lowers the pattern to an RPQ, and the
// kernel's frontier sweep — with whatever plan, parallelism, budget, and
// meter opts carries — does the path finding. Fragment patterns are pure
// label languages (node patterns contribute ε), so this is a lossless
// lowering: the answer is exactly the RPQ answer of Compile(p).
func PairsCtx(ctx context.Context, g *graph.Graph, p Pattern, opts eval.Options) ([][2]int, error) {
	return eval.PairsCtx(ctx, g, Compile(p), opts)
}
