// Package cypherfrag implements the Cypher pattern fragment of Section 5.1
// used for Proposition 22: patterns are built from label-disjunction edges,
// starred label disjunctions (repetition is allowed only over disjunctions
// of labels), concatenation, and union —
//
//	π := (x:L) | -x:L-> | -:L*-> | π₁ π₂ | π₁ + π₂
//
// Since the proposition concerns the edge-label languages such patterns can
// match, the package works with the label-language view: node patterns
// contribute ε. Compile translates a fragment pattern to an RPQ, and
// SearchEquivalent performs the bounded-exhaustive expressiveness search
// used to exhibit Proposition 22 empirically ("the RPQ (ℓℓ)* is not
// expressible using Cypher patterns").
package cypherfrag

import (
	"fmt"
	"sort"
	"strings"

	"graphquery/internal/automata"
	"graphquery/internal/rpq"
)

// Pattern is a Cypher-fragment pattern (label-language view).
type Pattern interface {
	fmt.Stringer
	isPattern()
}

// EdgeDisj is -:ℓ₁|…|ℓₙ->: one edge whose label is in the disjunction.
type EdgeDisj struct{ Labels []string }

// StarDisj is -:(ℓ₁|…|ℓₙ)*->: any number of edges with labels from the
// disjunction — the only repetition Cypher patterns allow (Section 5.1).
type StarDisj struct{ Labels []string }

// ConcatPat is π₁ π₂.
type ConcatPat struct{ Left, Right Pattern }

// UnionPat is π₁ + π₂.
type UnionPat struct{ Left, Right Pattern }

func (EdgeDisj) isPattern()  {}
func (StarDisj) isPattern()  {}
func (ConcatPat) isPattern() {}
func (UnionPat) isPattern()  {}

func (p EdgeDisj) String() string { return "-[:" + strings.Join(p.Labels, "|") + "]->" }
func (p StarDisj) String() string { return "-[:(" + strings.Join(p.Labels, "|") + ")*]->" }
func (p ConcatPat) String() string {
	return p.Left.String() + " " + p.Right.String()
}
func (p UnionPat) String() string {
	return "(" + p.Left.String() + " + " + p.Right.String() + ")"
}

// Edge returns the single-edge pattern over a label disjunction.
func Edge(labels ...string) Pattern {
	return EdgeDisj{Labels: sortedLabels(labels)}
}

// StarOf returns the starred label disjunction.
func StarOf(labels ...string) Pattern {
	return StarDisj{Labels: sortedLabels(labels)}
}

// Concat chains fragment patterns.
func Concat(ps ...Pattern) Pattern {
	if len(ps) == 0 {
		panic("cypherfrag: Concat needs at least one pattern")
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = ConcatPat{Left: out, Right: p}
	}
	return out
}

// Union returns π₁ + π₂.
func Union(a, b Pattern) Pattern { return UnionPat{Left: a, Right: b} }

func sortedLabels(ls []string) []string {
	out := append([]string(nil), ls...)
	sort.Strings(out)
	return out
}

// Compile translates the fragment pattern to an RPQ over edge labels.
func Compile(p Pattern) rpq.Expr {
	switch n := p.(type) {
	case EdgeDisj:
		return disjExpr(n.Labels)
	case StarDisj:
		return rpq.Kleene(disjExpr(n.Labels))
	case ConcatPat:
		return rpq.Seq(Compile(n.Left), Compile(n.Right))
	case UnionPat:
		return rpq.Alt(Compile(n.Left), Compile(n.Right))
	default:
		panic(fmt.Sprintf("cypherfrag: unknown pattern %T", p))
	}
}

func disjExpr(labels []string) rpq.Expr {
	alts := make([]rpq.Expr, len(labels))
	for i, l := range labels {
		alts[i] = rpq.L(l)
	}
	return rpq.Alt(alts...)
}

// Size is the syntactic size measure of the bounded-exhaustive search:
// atoms count 1, concatenation and union count 1 plus their parts.
func Size(p Pattern) int {
	switch n := p.(type) {
	case EdgeDisj, StarDisj:
		return 1
	case ConcatPat:
		return 1 + Size(n.Left) + Size(n.Right)
	case UnionPat:
		return 1 + Size(n.Left) + Size(n.Right)
	default:
		panic(fmt.Sprintf("cypherfrag: unknown pattern %T", p))
	}
}

// SearchResult reports the outcome of a bounded-exhaustive search.
type SearchResult struct {
	// Found is the equivalent fragment pattern, if any.
	Found Pattern
	// Candidates is the number of language-distinct fragment patterns
	// explored.
	Candidates int
	// Witnesses maps each explored language (by a representative pattern
	// rendering) to a word distinguishing it from the target.
	Witnesses map[string][]string
}

// SearchEquivalent enumerates all fragment patterns over the given labels
// up to the size bound and reports whether any is language-equivalent to
// the target RPQ. For each inequivalent candidate language it records a
// distinguishing word (a witness from the symmetric difference), which is
// how Proposition 22's claim is exhibited empirically.
func SearchEquivalent(target rpq.Expr, labels []string, maxSize int) SearchResult {
	targetNFA := rpq.Compile(target)
	universe := append(append([]string(nil), labels...), rpq.Labels(target)...)

	res := SearchResult{Witnesses: map[string][]string{}}

	// atoms: all nonempty label subsets as single edges and stars.
	subsets := nonEmptySubsets(labels)
	var atoms []Pattern
	for _, s := range subsets {
		atoms = append(atoms, Edge(s...), StarOf(s...))
	}

	// bySize[s] holds one representative per distinct language of size s.
	bySize := make([][]Pattern, maxSize+1)
	seenLang := map[string]struct{}{}

	tryAdd := func(p Pattern, size int) (equivalent bool) {
		nfa := rpq.Compile(Compile(p))
		canon := nfa.DeterminizeOver(universe).Canonical()
		if _, dup := seenLang[canon]; dup {
			return false
		}
		seenLang[canon] = struct{}{}
		bySize[size] = append(bySize[size], p)
		res.Candidates++
		if automata.Equivalent(nfa, targetNFA) {
			res.Found = p
			return true
		}
		// Record a distinguishing witness word.
		if w, ok := distinguishingWord(nfa, targetNFA, universe); ok {
			res.Witnesses[p.String()] = w
		}
		return false
	}

	for _, a := range atoms {
		if tryAdd(a, 1) {
			return res
		}
	}
	for size := 2; size <= maxSize; size++ {
		// Composites: left size i, right size size-1-i (operator costs 1).
		for i := 1; i <= size-2; i++ {
			j := size - 1 - i
			for _, l := range bySize[i] {
				for _, r := range bySize[j] {
					if tryAdd(ConcatPat{Left: l, Right: r}, size) {
						return res
					}
					if tryAdd(UnionPat{Left: l, Right: r}, size) {
						return res
					}
				}
			}
		}
	}
	return res
}

// distinguishingWord returns a shortest word in the symmetric difference of
// the two languages.
func distinguishingWord(a, b *automata.NFA, universe []string) ([]string, bool) {
	da := a.DeterminizeOver(universe)
	db := b.DeterminizeOver(universe)
	// BFS over the product until acceptance differs.
	type pair struct{ p, q int }
	type crumb struct {
		prev pair
		sym  string
		has  bool
	}
	from := map[pair]crumb{{da.Start, db.Start}: {}}
	queue := []pair{{da.Start, db.Start}}
	cols := len(da.Labels) + 1
	symbol := func(c int) string {
		if c < len(da.Labels) {
			return da.Labels[c]
		}
		return "other"
	}
	for len(queue) > 0 {
		pr := queue[0]
		queue = queue[1:]
		if da.Accept[pr.p] != db.Accept[pr.q] {
			var word []string
			for cur := pr; ; {
				c := from[cur]
				if !c.has {
					break
				}
				word = append(word, c.sym)
				cur = c.prev
			}
			for i, j := 0, len(word)-1; i < j; i, j = i+1, j-1 {
				word[i], word[j] = word[j], word[i]
			}
			return word, true
		}
		for c := 0; c < cols; c++ {
			np := pair{da.Next[pr.p][c], db.Next[pr.q][c]}
			if _, seen := from[np]; !seen {
				from[np] = crumb{prev: pr, sym: symbol(c), has: true}
				queue = append(queue, np)
			}
		}
	}
	return nil, false
}

func nonEmptySubsets(labels []string) [][]string {
	var out [][]string
	n := len(labels)
	for mask := 1; mask < 1<<n; mask++ {
		var s []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, labels[i])
			}
		}
		out = append(out, s)
	}
	return out
}
