package cypherfrag

import (
	"fmt"
	"strings"
)

// Parse reads the textual form of a Cypher-fragment pattern — the same
// syntax String renders:
//
//	-[:a|b]->        edge whose label is in the disjunction
//	-[:(a|b)*]->     starred label disjunction
//	π₁ π₂            concatenation (juxtaposition)
//	(π₁ + π₂)        union
//
// so Parse(p.String()) reproduces p up to label ordering (disjunction
// labels are canonicalized by the constructors).
func Parse(input string) (Pattern, error) {
	p := &fragParser{src: input}
	pat, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos < len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	return pat, nil
}

// MustParse is Parse for tests and literals; it panics on error.
func MustParse(input string) Pattern {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

type fragParser struct {
	src string
	pos int
}

func (p *fragParser) errf(format string, args ...any) error {
	return fmt.Errorf("cypherfrag: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *fragParser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// parseConcat handles juxtaposition: a sequence of atoms or parenthesized
// unions.
func (p *fragParser) parseConcat() (Pattern, error) {
	var out Pattern
	for {
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] == '+' || p.src[p.pos] == ')' {
			break
		}
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = atom
		} else {
			out = ConcatPat{Left: out, Right: atom}
		}
	}
	if out == nil {
		return nil, p.errf("expected a pattern")
	}
	return out, nil
}

func (p *fragParser) parseAtom() (Pattern, error) {
	p.ws()
	if strings.HasPrefix(p.src[p.pos:], "(") {
		// (π₁ + π₂): union group.
		p.pos++
		left, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] != '+' {
			return nil, p.errf("expected '+' in union group")
		}
		p.pos++
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		return UnionPat{Left: left, Right: right}, nil
	}
	if !strings.HasPrefix(p.src[p.pos:], "-[:") {
		return nil, p.errf("expected '-[:' or '('")
	}
	p.pos += len("-[:")
	starred := false
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		starred = true
		p.pos++
	}
	var labels []string
	for {
		l := p.ident()
		if l == "" {
			return nil, p.errf("expected a label")
		}
		labels = append(labels, l)
		if p.pos < len(p.src) && p.src[p.pos] == '|' {
			p.pos++
			continue
		}
		break
	}
	if starred {
		if !strings.HasPrefix(p.src[p.pos:], ")*") {
			return nil, p.errf("expected ')*' after starred disjunction")
		}
		p.pos += len(")*")
	}
	if !strings.HasPrefix(p.src[p.pos:], "]->") {
		return nil, p.errf("expected ']->'")
	}
	p.pos += len("]->")
	if starred {
		return StarOf(labels...), nil
	}
	return Edge(labels...), nil
}

func (p *fragParser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}
