package gql

import (
	"errors"
	"testing"

	"graphquery/internal/coregql"
	"graphquery/internal/gen"
	"graphquery/internal/gpath"
	"graphquery/internal/graph"
)

// aPath2 is a 2-edge a-labeled path u → v → w.
func aPath2(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).AddNode("w", "", nil).
		AddEdge("e1", "a", "u", "v", nil).
		AddEdge("e2", "a", "v", "w", nil).
		MustBuild()
}

// selfLoop is a single node with an a-labeled self-loop.
func selfLoop(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.NewBuilder().
		AddNode("n", "", nil).
		AddEdge("loop", "a", "n", "n", nil).
		MustBuild()
}

// TestExample1 reproduces Example 1: the pattern
// (x)(()-[z:a]->()){2}(y) binds z to a list of two edges, while the
// repeated-z variants join and thus match only self-loops.
func TestExample1(t *testing.T) {
	g := aPath2(t)
	unit := Concat(AnonNode(), EdgeL("z", "a"), AnonNode())

	// (x) ( ()-[z:a]->() ){2} (y)
	grouped := Concat(Node("x"), Repeat(unit, 2, 2), Node("y"))
	ms, err := EvalPattern(g, grouped, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := 0
	for _, m := range ms {
		if m.Path.Len() == 2 {
			full++
			z := m.B["z"]
			if !z.IsList || len(z.List) != 2 {
				t.Errorf("z should be a 2-edge list, got %v", z.Format(g))
			}
		}
	}
	if full != 1 {
		t.Errorf("grouped pattern matched %d full paths, want 1", full)
	}

	// (x) ()-[z:a]->() ()-[z:a]->() (y): both z occurrences join.
	joined := Concat(Node("x"), unit, unit, Node("y"))
	ms, err = EvalPattern(g, joined, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Path.Len() == 2 {
			t.Error("repeated z must not match a 2-edge path (join forces equality)")
		}
	}
	// On a self-loop, the joined variant does match (the paper: "both will
	// only match a self-loop").
	loop := selfLoop(t)
	ms, err = EvalPattern(loop, joined, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Error("repeated z should match the self-loop")
	}

	// (x) ()-[z:a]->() ()-[z1:a]->() (y): separate bindings for z and z1.
	separate := Concat(Node("x"),
		Concat(AnonNode(), EdgeL("z", "a"), AnonNode()),
		Concat(AnonNode(), EdgeL("z1", "a"), AnonNode()),
		Node("y"))
	ms, err = EvalPattern(g, separate, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full = 0
	for _, m := range ms {
		if m.Path.Len() == 2 {
			full++
			if m.B["z"].IsList || m.B["z1"].IsList {
				t.Error("z and z1 should be singletons")
			}
			if m.B["z"].One == m.B["z1"].One {
				t.Error("z and z1 should bind different edges")
			}
		}
	}
	if full != 1 {
		t.Errorf("separate variant matched %d full paths, want 1", full)
	}
}

// TestExample2 reproduces Example 2's role flip: inside one iteration, the
// two occurrences of x join (requiring an a-self-loop); under the star, x
// becomes a group variable collecting the visited nodes.
func TestExample2(t *testing.T) {
	// Graph: two nodes with self-loops connected by an a-edge, plus one
	// node without a self-loop.
	g := graph.NewBuilder().
		AddNode("n1", "", nil).AddNode("n2", "", nil).AddNode("n3", "", nil).
		AddEdge("l1", "a", "n1", "n1", nil).
		AddEdge("l2", "a", "n2", "n2", nil).
		AddEdge("c12", "a", "n1", "n2", nil).
		AddEdge("c23", "a", "n2", "n3", nil).
		MustBuild()
	// Iteration unit: (x)-[:a]->(x)-[:a]-> — a node with a self-loop
	// followed by a forward a-edge.
	unit := Concat(Node("x"), AnonEdgeL("a"), Node("x"), AnonEdgeL("a"))
	star := Repeat(unit, 2, 2)
	ms, err := EvalPattern(g, star, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Expect a match collecting x = list(n1, n2): n1 self-loop, edge to n2,
	// n2 self-loop, edge to n3.
	found := false
	for _, m := range ms {
		x := m.B["x"]
		if x.IsList && len(x.List) == 2 &&
			x.List[0] == graph.MakeNodeObject(g.MustNode("n1")) &&
			x.List[1] == graph.MakeNodeObject(g.MustNode("n2")) {
			found = true
		}
	}
	if !found {
		t.Error("expected x ↦ list(n1, n2) via self-loop joins inside iterations")
	}
	// n3 has no self-loop, so no match collects it.
	for _, m := range ms {
		for _, o := range m.B["x"].List {
			if o == graph.MakeNodeObject(g.MustNode("n3")) {
				t.Error("n3 has no self-loop and must not appear in x")
			}
		}
	}
}

func TestUnionPartialBindings(t *testing.T) {
	// ((x) + -y->): GQL allows different variables per branch.
	g := aPath2(t)
	ms, err := EvalPattern(g, Union(Node("x"), Edge("y")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sawX, sawY := false, false
	for _, m := range ms {
		_, hasX := m.B["x"]
		_, hasY := m.B["y"]
		if hasX && !hasY {
			sawX = true
		}
		if hasY && !hasX {
			sawY = true
		}
	}
	if !sawX || !sawY {
		t.Error("union should produce partial bindings with domains {x} and {y}")
	}
}

func TestWhereCondition(t *testing.T) {
	g := gen.BankProperty()
	// (x:Account WHERE x.isBlocked = 'yes')
	p := Where(NodeL("x", "Account"),
		coregql.CmpConst("x", "isBlocked", graph.OpEq, graph.Str("yes")))
	ms, err := EvalPattern(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Errorf("blocked accounts = %d, want 2", len(ms))
	}
}

func TestErrUnboundedAndMixed(t *testing.T) {
	g := aPath2(t)
	if _, err := EvalPattern(g, Star(AnonEdge()), Options{}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
	// z as group (from a star) concatenated with z as singleton: mixed.
	mixed := Concat(Repeat(Concat(AnonNode(), Edge("z"), AnonNode()), 1, 1), // z becomes a list
		Concat(AnonNode(), Edge("z"), AnonNode()))
	if _, err := EvalPattern(g, mixed, Options{}); !errors.Is(err, ErrMixedBinding) {
		t.Errorf("err = %v, want ErrMixedBinding", err)
	}
}

// TestExceptWorkaround reproduces the Section 5.2 complement trick: all
// paths minus those with a non-increasing consecutive edge pair equals the
// increasing-edge paths.
func TestExceptWorkaround(t *testing.T) {
	g := gen.DateEdgePath("a", []int64{1, 2, 3})
	walk := Concat(Node("x"), Star(Concat(AnonNode(), AnonEdge(), AnonNode())), Node("y"))
	all, err := MatchPaths(g, walk, Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	// π″: some consecutive pair with u.k ≥ v.k.
	bad := Concat(Node("x"),
		Star(Concat(AnonNode(), AnonEdge(), AnonNode())),
		Where(Concat(AnonNode(), Edge("u"), AnonNode(), Edge("v"), AnonNode()),
			coregql.Cmp("u", "k", graph.OpGe, "v", "k")),
		Star(Concat(AnonNode(), AnonEdge(), AnonNode())),
		Node("y"))
	badPaths, err := MatchPaths(g, bad, Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	inc := Except(all, badPaths)
	// On the increasing 1,2,3 path every subpath is increasing: nothing
	// subtracted.
	if len(inc) != len(all) || len(badPaths) != 0 {
		t.Errorf("increasing graph: |all| = %d, |bad| = %d", len(all), len(badPaths))
	}
	// On 3,4,1,2 the full path must be subtracted.
	g2 := gen.DateEdgePath("a", []int64{3, 4, 1, 2})
	all2, _ := MatchPaths(g2, walk, Options{MaxLen: 5})
	bad2, _ := MatchPaths(g2, bad, Options{MaxLen: 5})
	inc2 := Except(all2, bad2)
	for _, p := range inc2 {
		if p.Len() == 4 {
			t.Error("the full 3,4,1,2 path is not increasing and must be subtracted")
		}
	}
	// But its increasing sub-paths (e.g. 3,4) survive.
	has := false
	for _, p := range inc2 {
		if p.Len() == 2 {
			if s, _ := p.Src(g2); s == g2.MustNode("v0") {
				has = true
			}
		}
	}
	if !has {
		t.Error("the increasing prefix 3,4 should survive the subtraction")
	}
}

// TestReduceIncreasing checks the reduce-based increasing-edge-values query
// of Section 5.2 ("Turning to Lists for Help").
func TestReduceIncreasing(t *testing.T) {
	up := gen.DateEdgePath("a", []int64{1, 2, 3, 4})
	walk := Concat(Node("x"), Star(Concat(AnonNode(), AnonEdge(), AnonNode())), Node("y"))
	paths, err := MatchPaths(up, walk, Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	inc := FilterPaths(paths, func(p gpath.Path) bool {
		return IncreasingProp(up, "k", EdgesOf(p))
	})
	// All subpaths of an increasing path are increasing: C(5,2)=10 nonempty
	// plus 5 empty paths = 15.
	if len(inc) != 15 {
		t.Errorf("increasing paths = %d, want 15", len(inc))
	}
	down := gen.DateEdgePath("a", []int64{3, 4, 1, 2})
	paths2, _ := MatchPaths(down, walk, Options{MaxLen: 4})
	inc2 := FilterPaths(paths2, func(p gpath.Path) bool {
		return IncreasingProp(down, "k", EdgesOf(p))
	})
	for _, p := range inc2 {
		if p.Len() == 4 {
			t.Error("3,4,1,2 must fail the reduce-based filter")
		}
	}
}

// TestReduceSubsetSum reproduces the Section 5.2 subset-sum encoding: a
// path with Σk = target exists iff some subset of the weights sums to it.
func TestReduceSubsetSum(t *testing.T) {
	weights := []int64{3, 5, 7, 11}
	g := gen.SubsetSumChain(weights)
	walk := Concat(Node("x"), Star(Concat(AnonNode(), AnonEdge(), AnonNode())), Node("y"))
	paths, err := MatchPaths(g, walk, Options{MaxLen: len(weights)})
	if err != nil {
		t.Fatal(err)
	}
	// Keep only full-length v0→v4 paths (one edge per stage).
	full := FilterPaths(paths, func(p gpath.Path) bool { return p.Len() == len(weights) })
	hasSum := func(target int64) bool {
		for _, p := range full {
			if v, _ := SumProp(g, "k", EdgesOf(p)).AsInt(); v == target {
				return true
			}
		}
		return false
	}
	for _, tc := range []struct {
		target int64
		want   bool
	}{
		{0, true},   // empty subset
		{3, true},   // {3}
		{8, true},   // {3,5}
		{15, true},  // {3,5,7}
		{26, true},  // all
		{4, false},  // impossible
		{27, false}, // too big
		{13, false}, // 13 = 3+5+... no: 3+5=8, 3+7=10, 5+7=12, 3+11=14 → no
	} {
		if got := hasSum(tc.target); got != tc.want {
			t.Errorf("subset sum %d = %v, want %v", tc.target, got, tc.want)
		}
	}
}

// TestQuadraticOrderOfOperations reproduces the Section 5.2 example where
// the two orders of applying shortest and the reduce condition disagree.
func TestQuadraticOrderOfOperations(t *testing.T) {
	// Node u with a=1, b=-5, c=6 (roots 2 and 3) and a k=1 self-loop.
	g := graph.NewBuilder().
		AddNode("u", "l", graph.Props{
			"a": graph.Int(1), "b": graph.Int(-5), "c": graph.Int(6)}).
		AddEdge("loop", "t", "u", "u", graph.Props{"k": graph.Int(1)}).
		MustBuild()
	walk := Concat(NodeL("", "l"), Repeat(Concat(AnonNode(), AnonEdge(), AnonNode()), 1, -1), NodeL("x", "l"))
	paths, err := MatchPaths(g, walk, Options{MaxLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	cond := func(p gpath.Path) bool {
		s, _ := SumProp(g, "k", EdgesOf(p)).AsInt()
		// x.a·s² + x.b·s + x.c = 0 with the u properties.
		return 1*s*s-5*s+6 == 0
	}
	after := ShortestThenFilter(g, paths, cond)
	if len(after) != 0 {
		t.Errorf("condition-after-shortest: the length-1 loop fails 1-5+6≠0; got %d paths", len(after))
	}
	before := FilterThenShortest(g, paths, cond)
	if len(before) != 1 || before[0].Len() != 2 {
		t.Errorf("shortest-after-condition: want the length-2 path (root 2), got %d paths", len(before))
	}
}

// TestForAllSegments reproduces the Section 5.2 ∀-condition: consecutive
// edge pairs must have increasing k.
func TestForAllSegments(t *testing.T) {
	inner := Concat(Edge("u"), AnonNode(), Edge("v"))
	theta := coregql.Cmp("u", "k", graph.OpLt, "v", "k")

	up := gen.DateEdgePath("a", []int64{1, 2, 3, 4})
	walk := Concat(Node("x"), Star(Concat(AnonNode(), AnonEdge(), AnonNode())), Node("y"))
	paths, _ := MatchPaths(up, walk, Options{MaxLen: 4})
	keep, err := FilterForAll(up, paths, inner, theta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != len(paths) {
		t.Errorf("all subpaths of the increasing path satisfy ∀: %d vs %d", len(keep), len(paths))
	}

	down := gen.DateEdgePath("a", []int64{3, 4, 1, 2})
	paths2, _ := MatchPaths(down, walk, Options{MaxLen: 4})
	keep2, err := FilterForAll(down, paths2, inner, theta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range keep2 {
		if p.Len() == 4 {
			t.Error("3,4,1,2 has the non-increasing pair (4,1) and must be dropped")
		}
	}
	// Increasing segments (3,4) and (1,2) survive.
	count2 := 0
	for _, p := range keep2 {
		if p.Len() == 2 {
			count2++
		}
	}
	if count2 != 2 {
		t.Errorf("surviving 2-edge segments = %d, want 2", count2)
	}
}

// TestForAllAllDistinct is the NP-hard variant: all node k-values along the
// path must be pairwise distinct.
func TestForAllAllDistinct(t *testing.T) {
	// (u) →⁺ (v): node pairs at distance ≥ 1 (with →*, the zero-length
	// match u = v would falsify u.k ≠ v.k on every path).
	inner := Concat(Node("u"), Repeat(Concat(AnonNode(), AnonEdge(), AnonNode()), 1, -1), Node("v"))
	theta := coregql.Cmp("u", "k", graph.OpNe, "v", "k")
	g := gen.DateNodePath("a", []int64{1, 2, 1}) // nodes v0,v1,v2 with k=1,2,1
	walk := Concat(Node("x"), Star(Concat(AnonNode(), AnonEdge(), AnonNode())), Node("y"))
	paths, _ := MatchPaths(g, walk, Options{MaxLen: 3})
	keep, err := FilterForAll(g, paths, inner, theta, Options{MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range keep {
		if p.Len() == 2 {
			t.Error("the 2-edge path repeats k=1 and must be dropped")
		}
	}
	// 1-edge subpaths (k=1,2 or k=2,1) survive.
	oneEdge := 0
	for _, p := range keep {
		if p.Len() == 1 {
			oneEdge++
		}
	}
	if oneEdge != 2 {
		t.Errorf("surviving 1-edge paths = %d, want 2", oneEdge)
	}
}

func TestForAllRejectsNonNodePaths(t *testing.T) {
	g := gen.APath(2, "a")
	edgePath := gpath.OfEdge(g.MustEdge("e1"))
	_, err := ForAllOnPath(g, edgePath, Concat(Edge("u"), AnonNode(), Edge("v")),
		coregql.Cmp("u", "k", graph.OpLt, "v", "k"), Options{})
	if err == nil {
		t.Error("∀ on a non node-to-node path should error")
	}
}

func TestReduceBasics(t *testing.T) {
	g := gen.SubsetSumChain([]int64{2, 4})
	iota := func(o graph.Object) graph.Value {
		v, _ := g.Prop(o, "k")
		return v
	}
	f := func(o graph.Object, acc graph.Value) graph.Value {
		a, _ := iota(o).AsInt()
		b, _ := acc.AsInt()
		return graph.Int(a + b)
	}
	if v := Reduce(graph.Int(0), iota, f, nil); !v.Equal(graph.Int(0)) {
		t.Errorf("empty reduce = %v", v)
	}
	w1 := graph.MakeEdgeObject(g.MustEdge("w1"))
	if v := Reduce(graph.Int(0), iota, f, []graph.Object{w1}); !v.Equal(graph.Int(2)) {
		t.Errorf("singleton reduce = %v", v)
	}
	w2 := graph.MakeEdgeObject(g.MustEdge("w2"))
	if v := Reduce(graph.Int(0), iota, f, []graph.Object{w1, w2}); !v.Equal(graph.Int(6)) {
		t.Errorf("pair reduce = %v", v)
	}
}

func TestNodesEdgesOf(t *testing.T) {
	g := gen.APath(2, "a")
	p, _ := gpath.New(g,
		graph.MakeNodeObject(g.MustNode("v0")),
		graph.MakeEdgeObject(g.MustEdge("e1")),
		graph.MakeNodeObject(g.MustNode("v1")))
	if len(NodesOf(p)) != 2 || len(EdgesOf(p)) != 1 {
		t.Error("NodesOf/EdgesOf sizes wrong")
	}
}
