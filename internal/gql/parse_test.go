package gql

import (
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
)

func TestParsePatternBasics(t *testing.T) {
	tests := []struct{ in, want string }{
		{"(x)", "(x)"},
		{"()", "()"},
		{"(x:Account)", "(x:Account)"},
		{"(:Account)", "(:Account)"},
		{"-->", "-->"},
		{"-[z:a]->", "-[z:a]->"},
		{"-[:a]->", "-[:a]->"},
		{"-[z]->", "-[z]->"},
		{"(x)-[z:a]->(y)", "(x)-[z:a]->(y)"},
		{"(()-[z:a]->()){2}", "(()-[z:a]->()){2}"},
		{"((x) | -[y:a]->)", "((x) + -[y:a]->)"},
		{"(x)(()-->())*(y)", "(x)(()-->())*(y)"},
		{"(()-->()){2,5}", "(()-->()){2,5}"},
		{"(()-->()){2,}", "(()-->()){2,}"},
	}
	for _, tc := range tests {
		p, err := ParsePattern(tc.in)
		if err != nil {
			t.Errorf("ParsePattern(%q): %v", tc.in, err)
			continue
		}
		if got := p.String(); got != tc.want {
			t.Errorf("ParsePattern(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	bad := []string{
		"", "(", "(x", "(x:)", "-[", "-[z", "-[z:a]",
		"(x){2,1}", "(x)-[z:a]->(y) WHERE", "((x) WHERE q.k < )",
		"(x y)", "{2}",
	}
	for _, in := range bad {
		if _, err := ParsePattern(in); err == nil {
			t.Errorf("ParsePattern(%q) should fail", in)
		}
	}
}

// TestParseExample1 parses and evaluates the actual Example 1 pattern text.
func TestParseExample1(t *testing.T) {
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).AddNode("w", "", nil).
		AddEdge("e1", "a", "u", "v", nil).
		AddEdge("e2", "a", "v", "w", nil).
		MustBuild()
	p := MustParsePattern("(x) (()-[z:a]->()){2} (y)")
	ms, err := EvalPattern(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := 0
	for _, m := range ms {
		if m.Path.Len() == 2 {
			full++
			if z := m.B["z"]; !z.IsList || len(z.List) != 2 {
				t.Errorf("z = %v", z.Format(g))
			}
		}
	}
	if full != 1 {
		t.Errorf("full matches = %d, want 1", full)
	}
}

// TestParseExample3 parses the WHERE pattern of Example 3 and checks the
// increasing-node-dates semantics.
func TestParseExample3(t *testing.T) {
	up := gen.DateNodePath("a", []int64{1, 2, 3, 4})
	p := MustParsePattern("(x) ((u)-[:a]->(v) WHERE u.date < v.date)* (y)")
	ms, err := EvalPattern(up, p, Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Path.Len() == 3 {
			found = true
		}
	}
	if !found {
		t.Error("increasing node dates should match end-to-end")
	}
	down := gen.DateNodePath("a", []int64{3, 4, 1, 2})
	ms, _ = EvalPattern(down, p, Options{MaxLen: 4})
	for _, m := range ms {
		if m.Path.Len() == 3 {
			t.Error("3,4,1,2 must not match end-to-end")
		}
	}
}

func TestParseConditionForms(t *testing.T) {
	g := gen.BankProperty()
	// Label test, constant comparisons, AND/OR/NOT.
	p := MustParsePattern(
		"((x)-[e:Transfer]->(y) WHERE Account(x) AND e.amount >= 5000000 AND NOT x.isBlocked = 'yes')")
	ms, err := EvalPattern(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Expensive transfers (≥5M) from unblocked accounts:
	// t7 (8M, a3), t8 (7M, a6), t9 (5M from a4 — blocked), t10 (6M, a6), t3 (5M from a2 — blocked).
	want := map[string]bool{"t7": true, "t8": true, "t10": true}
	got := map[string]bool{}
	for _, m := range ms {
		got[string(g.Edge(m.B["e"].One.Index()).ID)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for id := range want {
		if !got[id] {
			t.Errorf("missing %s", id)
		}
	}
	// OR form.
	p2 := MustParsePattern("((x) WHERE x.owner = 'Mike' OR x.owner = 'Jay')")
	ms2, err := EvalPattern(g, p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms2) != 2 {
		t.Errorf("Mike-or-Jay accounts = %d, want 2", len(ms2))
	}
	// Property-to-property and float comparisons.
	p3 := MustParsePattern("((u)-[e]->(v) WHERE e.amount > 7.5)")
	if _, err := EvalPattern(g, p3, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestParsedUnionPartialBindings(t *testing.T) {
	g := gen.APath(1, "a")
	p := MustParsePattern("((x) | -[y:a]->)")
	ms, err := EvalPattern(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	domains := map[string]bool{}
	for _, m := range ms {
		for v := range m.B {
			domains[v] = true
		}
	}
	if !domains["x"] || !domains["y"] {
		t.Errorf("expected both branch variables, got %v", domains)
	}
}
