package gql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"graphquery/internal/coregql"
	"graphquery/internal/graph"
)

// ParsePattern parses GQL's ASCII-art pattern syntax, the notation used
// throughout the paper:
//
//	(x)                      node bound to x
//	(x:Account)              node with a label test
//	()                       anonymous node
//	-[z:a]->                 edge bound to z with label a
//	-[:a]->  -->             anonymous edges
//	(()-[z:a]->()){2}        iteration (z becomes a group variable)
//	((u)-->(v) WHERE u.k < v.k)*   conditions + Kleene star
//	((x) | -[y:a]->)         union (branches may bind different variables)
//
// Conditions compare properties of bound variables: x.k < y.k, x.k = 5,
// x.k >= 'abc', combined with AND, OR, NOT.
func ParsePattern(input string) (Pattern, error) {
	p := &pparser{src: input}
	p.next()
	if p.tok.kind == ptEOF {
		return nil, p.errorf("empty pattern")
	}
	pat, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != ptEOF {
		return nil, p.errorf("unexpected %s", p.tok)
	}
	return pat, nil
}

// MustParsePattern parses or panics.
func MustParsePattern(input string) Pattern {
	pat, err := ParsePattern(input)
	if err != nil {
		panic(err)
	}
	return pat
}

type ptkind int

const (
	ptEOF ptkind = iota
	ptIdent
	ptNumber
	ptString
	ptLParen
	ptRParen
	ptLBrace
	ptRBrace
	ptPipe
	ptStar
	ptPlus
	ptQuest
	ptComma
	ptColon
	ptDot
	ptEdgeOpen  // -[
	ptEdgeClose // ]->
	ptBareEdge  // -->
	ptOp        // comparison
	ptWhere
	ptAnd
	ptOr
	ptNot
)

type ptok struct {
	kind ptkind
	text string
	pos  int
}

func (t ptok) String() string {
	if t.kind == ptEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type pparser struct {
	src  string
	pos  int
	tok  ptok
	save []ptok
}

func (p *pparser) errorf(format string, args ...any) error {
	return fmt.Errorf("gql: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *pparser) next() {
	if n := len(p.save); n > 0 {
		p.tok = p.save[n-1]
		p.save = p.save[:n-1]
		return
	}
	for p.pos < len(p.src) && strings.ContainsRune(" \t\n\r", rune(p.src[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = ptok{kind: ptEOF, pos: start}
		return
	}
	rest := p.src[p.pos:]
	switch {
	case strings.HasPrefix(rest, "-["):
		p.pos += 2
		p.tok = ptok{ptEdgeOpen, "-[", start}
		return
	case strings.HasPrefix(rest, "]->"):
		p.pos += 3
		p.tok = ptok{ptEdgeClose, "]->", start}
		return
	case strings.HasPrefix(rest, "-->"):
		p.pos += 3
		p.tok = ptok{ptBareEdge, "-->", start}
		return
	case strings.HasPrefix(rest, "<=") || strings.HasPrefix(rest, ">=") ||
		strings.HasPrefix(rest, "!=") || strings.HasPrefix(rest, "<>"):
		p.pos += 2
		p.tok = ptok{ptOp, rest[:2], start}
		return
	}
	c := p.src[p.pos]
	single := map[byte]ptkind{
		'(': ptLParen, ')': ptRParen, '{': ptLBrace, '}': ptRBrace,
		'|': ptPipe, '*': ptStar, '+': ptPlus, '?': ptQuest,
		',': ptComma, ':': ptColon, '.': ptDot,
	}
	if k, ok := single[c]; ok {
		p.pos++
		p.tok = ptok{k, string(c), start}
		return
	}
	switch {
	case c == '=' || c == '<' || c == '>':
		p.pos++
		p.tok = ptok{ptOp, string(c), start}
	case c == '\'':
		p.pos++
		var b strings.Builder
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			if p.src[p.pos] == '\\' && p.pos+1 < len(p.src) {
				p.pos++
			}
			b.WriteByte(p.src[p.pos])
			p.pos++
		}
		if p.pos < len(p.src) {
			p.pos++
		}
		p.tok = ptok{ptString, b.String(), start}
	case c >= '0' && c <= '9' || c == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9':
		p.pos++
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		p.tok = ptok{ptNumber, p.src[start:p.pos], start}
	case c == '_' || unicode.IsLetter(rune(c)):
		for p.pos < len(p.src) {
			r := rune(p.src[p.pos])
			if r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				break
			}
			p.pos++
		}
		text := p.src[start:p.pos]
		switch text {
		case "WHERE":
			p.tok = ptok{ptWhere, text, start}
		case "AND":
			p.tok = ptok{ptAnd, text, start}
		case "OR":
			p.tok = ptok{ptOr, text, start}
		case "NOT":
			p.tok = ptok{ptNot, text, start}
		default:
			p.tok = ptok{ptIdent, text, start}
		}
	default:
		p.tok = ptok{ptIdent, string(c), start}
		p.pos++
	}
}

func (p *pparser) peek() ptok {
	cur := p.tok
	p.next()
	peeked := p.tok
	p.save = append(p.save, peeked)
	p.tok = cur
	return peeked
}

func (p *pparser) parseUnion() (Pattern, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	out := first
	for p.tok.kind == ptPipe {
		p.next()
		right, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		out = Union(out, right)
	}
	return out, nil
}

func (p *pparser) parseSeq() (Pattern, error) {
	var parts []Pattern
	for {
		switch p.tok.kind {
		case ptLParen, ptEdgeOpen, ptBareEdge:
			el, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			parts = append(parts, el)
		default:
			if len(parts) == 0 {
				return nil, p.errorf("expected pattern element, got %s", p.tok)
			}
			return Concat(parts...), nil
		}
	}
}

func (p *pparser) parseElement() (Pattern, error) {
	var el Pattern
	switch p.tok.kind {
	case ptBareEdge:
		p.next()
		el = AnonEdge()
	case ptEdgeOpen:
		p.next()
		varName, label, err := p.parseVarLabel(ptEdgeClose)
		if err != nil {
			return nil, err
		}
		el = EdgeP{Var: varName, Label: label}
	case ptLParen:
		var err error
		el, err = p.parseParenElement()
		if err != nil {
			return nil, err
		}
	default:
		return nil, p.errorf("expected element, got %s", p.tok)
	}
	return p.parsePostfix(el)
}

// parseParenElement handles the node-vs-group ambiguity of '(': a node
// pattern contains only an optional variable and label; anything else is a
// grouped subpattern (possibly with a WHERE clause).
func (p *pparser) parseParenElement() (Pattern, error) {
	p.next() // consume '('
	// Try the node form: [ident] [':' ident] ')'.
	if p.tok.kind == ptRParen { // ()
		p.next()
		return AnonNode(), nil
	}
	if p.tok.kind == ptIdent || p.tok.kind == ptColon {
		// Lookahead to decide: node patterns close immediately after the
		// var/label part.
		if p.tok.kind == ptIdent {
			name := p.tok.text
			switch p.peek().kind {
			case ptRParen:
				p.next()
				p.next()
				return Node(name), nil
			case ptColon:
				p.next() // ident
				p.next() // ':'
				if p.tok.kind != ptIdent {
					return nil, p.errorf("expected label after ':', got %s", p.tok)
				}
				label := p.tok.text
				p.next()
				if p.tok.kind != ptRParen {
					return nil, p.errorf("expected ')' after node label, got %s", p.tok)
				}
				p.next()
				return NodeL(name, label), nil
			}
			// Not a node: fall through to group parsing with the ident
			// re-interpreted — only possible if it starts a condition-free
			// subpattern, which idents cannot; error out clearly.
			return nil, p.errorf("unexpected %q inside '(' (node patterns are (x) or (x:L))", name)
		}
		// (:L)
		p.next()
		if p.tok.kind != ptIdent {
			return nil, p.errorf("expected label after ':', got %s", p.tok)
		}
		label := p.tok.text
		p.next()
		if p.tok.kind != ptRParen {
			return nil, p.errorf("expected ')' after node label, got %s", p.tok)
		}
		p.next()
		return NodeL("", label), nil
	}
	// Group: parse a full pattern, optional WHERE, then ')'.
	sub, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == ptWhere {
		p.next()
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		sub = Where(sub, cond)
	}
	if p.tok.kind != ptRParen {
		return nil, p.errorf("expected ')', got %s", p.tok)
	}
	p.next()
	return sub, nil
}

func (p *pparser) parsePostfix(el Pattern) (Pattern, error) {
	for {
		switch p.tok.kind {
		case ptStar:
			el = Star(el)
			p.next()
		case ptPlus:
			el = Repeat(el, 1, -1)
			p.next()
		case ptQuest:
			el = Repeat(el, 0, 1)
			p.next()
		case ptLBrace:
			p.next()
			if p.tok.kind != ptNumber {
				return nil, p.errorf("expected repetition count, got %s", p.tok)
			}
			min, _ := strconv.Atoi(p.tok.text)
			p.next()
			max := min
			if p.tok.kind == ptComma {
				p.next()
				switch p.tok.kind {
				case ptNumber:
					max, _ = strconv.Atoi(p.tok.text)
					p.next()
				case ptRBrace:
					max = -1
				default:
					return nil, p.errorf("expected upper bound or '}', got %s", p.tok)
				}
			}
			if p.tok.kind != ptRBrace {
				return nil, p.errorf("expected '}', got %s", p.tok)
			}
			if max >= 0 && max < min {
				return nil, p.errorf("invalid repetition {%d,%d}", min, max)
			}
			p.next()
			el = Repeat(el, min, max)
		default:
			return el, nil
		}
	}
}

// parseVarLabel parses "[var][:label]" up to the closing token.
func (p *pparser) parseVarLabel(closeKind ptkind) (varName, label string, err error) {
	if p.tok.kind == ptIdent {
		varName = p.tok.text
		p.next()
	}
	if p.tok.kind == ptColon {
		p.next()
		if p.tok.kind != ptIdent {
			return "", "", p.errorf("expected label after ':', got %s", p.tok)
		}
		label = p.tok.text
		p.next()
	}
	if p.tok.kind != closeKind {
		return "", "", p.errorf("expected edge close, got %s", p.tok)
	}
	p.next()
	return varName, label, nil
}

// Condition grammar: or-expr of and-exprs of (possibly negated) atoms.
func (p *pparser) parseCondition() (coregql.Condition, error) {
	left, err := p.parseCondAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == ptOr {
		p.next()
		right, err := p.parseCondAnd()
		if err != nil {
			return nil, err
		}
		left = coregql.Or{L: left, R: right}
	}
	return left, nil
}

func (p *pparser) parseCondAnd() (coregql.Condition, error) {
	left, err := p.parseCondAtom()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == ptAnd {
		p.next()
		right, err := p.parseCondAtom()
		if err != nil {
			return nil, err
		}
		left = coregql.And{L: left, R: right}
	}
	return left, nil
}

func (p *pparser) parseCondAtom() (coregql.Condition, error) {
	if p.tok.kind == ptNot {
		p.next()
		sub, err := p.parseCondAtom()
		if err != nil {
			return nil, err
		}
		return coregql.Not{Sub: sub}, nil
	}
	if p.tok.kind != ptIdent {
		return nil, p.errorf("expected condition, got %s", p.tok)
	}
	x := p.tok.text
	p.next()
	// label test ℓ(x)?
	if p.tok.kind == ptLParen {
		p.next()
		if p.tok.kind != ptIdent {
			return nil, p.errorf("expected variable in label test, got %s", p.tok)
		}
		v := p.tok.text
		p.next()
		if p.tok.kind != ptRParen {
			return nil, p.errorf("expected ')' in label test, got %s", p.tok)
		}
		p.next()
		return coregql.HasLabel(v, x), nil
	}
	if p.tok.kind != ptDot {
		return nil, p.errorf("expected '.' after %q in condition", x)
	}
	p.next()
	if p.tok.kind != ptIdent {
		return nil, p.errorf("expected property name, got %s", p.tok)
	}
	k := p.tok.text
	p.next()
	if p.tok.kind != ptOp {
		return nil, p.errorf("expected comparison operator, got %s", p.tok)
	}
	op, err := graph.ParseOp(p.tok.text)
	if err != nil {
		return nil, p.errorf("%v", err)
	}
	p.next()
	switch p.tok.kind {
	case ptNumber:
		v, perr := parseNumberValue(p.tok.text)
		if perr != nil {
			return nil, p.errorf("%v", perr)
		}
		p.next()
		return coregql.CmpConst(x, k, op, v), nil
	case ptString:
		v := graph.Str(p.tok.text)
		p.next()
		return coregql.CmpConst(x, k, op, v), nil
	case ptIdent:
		y := p.tok.text
		p.next()
		if p.tok.kind != ptDot {
			// y without a property: treat booleans.
			switch y {
			case "true":
				return coregql.CmpConst(x, k, op, graph.Bool(true)), nil
			case "false":
				return coregql.CmpConst(x, k, op, graph.Bool(false)), nil
			}
			return nil, p.errorf("expected '.' after %q in condition", y)
		}
		p.next()
		if p.tok.kind != ptIdent {
			return nil, p.errorf("expected property name, got %s", p.tok)
		}
		k2 := p.tok.text
		p.next()
		return coregql.Cmp(x, k, op, y, k2), nil
	default:
		return nil, p.errorf("expected comparison right-hand side, got %s", p.tok)
	}
}

func parseNumberValue(s string) (graph.Value, error) {
	if !strings.Contains(s, ".") {
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return graph.Null(), fmt.Errorf("invalid integer %q", s)
		}
		return graph.Int(i), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return graph.Null(), fmt.Errorf("invalid number %q", s)
	}
	return graph.Float(f), nil
}
