package gql

import (
	"sort"

	"graphquery/internal/gpath"
	"graphquery/internal/graph"
)

// MatchPaths evaluates a pattern and returns the bound paths only — the
// "p = π" path-variable facility of Section 5.2 ("Turning to Complement for
// Help"). Paths are deduplicated and ordered by length then key.
func MatchPaths(g *graph.Graph, p Pattern, opts Options) ([]gpath.Path, error) {
	ms, err := EvalPattern(g, p, opts)
	if err != nil {
		return nil, err
	}
	seen := map[string]struct{}{}
	var out []gpath.Path
	for _, m := range ms {
		k := m.Path.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, m.Path)
	}
	return out, nil
}

// Except computes the path-set difference a − b (the EXCEPT workaround the
// paper discusses: match all paths, subtract those matching the complement
// pattern).
func Except(a, b []gpath.Path) []gpath.Path {
	drop := make(map[string]struct{}, len(b))
	for _, p := range b {
		drop[p.Key()] = struct{}{}
	}
	var out []gpath.Path
	for _, p := range a {
		if _, hit := drop[p.Key()]; !hit {
			out = append(out, p)
		}
	}
	return out
}

// FilterPaths keeps the paths satisfying pred.
func FilterPaths(paths []gpath.Path, pred func(gpath.Path) bool) []gpath.Path {
	var out []gpath.Path
	for _, p := range paths {
		if pred(p) {
			out = append(out, p)
		}
	}
	return out
}

// ShortestOf keeps the minimal-length paths of the set, grouped per
// (src, tgt) endpoint pair (GQL's shortest).
func ShortestOf(g *graph.Graph, paths []gpath.Path) []gpath.Path {
	type pair struct{ u, v int }
	best := map[pair]int{}
	for _, p := range paths {
		u, ok1 := p.Src(g)
		v, ok2 := p.Tgt(g)
		if !ok1 || !ok2 {
			continue
		}
		k := pair{u, v}
		if b, ok := best[k]; !ok || p.Len() < b {
			best[k] = p.Len()
		}
	}
	var out []gpath.Path
	for _, p := range paths {
		u, _ := p.Src(g)
		v, _ := p.Tgt(g)
		if p.Len() == best[pair{u, v}] {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len() != out[j].Len() {
			return out[i].Len() < out[j].Len()
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// ShortestThenFilter applies shortest first and the condition afterwards —
// one of the two semantics of the Section 5.2 quadratic-equation example.
func ShortestThenFilter(g *graph.Graph, paths []gpath.Path, pred func(gpath.Path) bool) []gpath.Path {
	return FilterPaths(ShortestOf(g, paths), pred)
}

// FilterThenShortest applies the condition first and shortest afterwards —
// the other semantics, "uncomfortably close to solving Diophantine
// equations" (Section 5.2).
func FilterThenShortest(g *graph.Graph, paths []gpath.Path, pred func(gpath.Path) bool) []gpath.Path {
	return ShortestOf(g, FilterPaths(paths, pred))
}

// NodesOf is Cypher's N(p): the node elements of the path, in order.
func NodesOf(p gpath.Path) []graph.Object {
	var out []graph.Object
	for _, n := range p.Nodes() {
		out = append(out, graph.MakeNodeObject(n))
	}
	return out
}

// EdgesOf is Cypher's E(p): the edge elements of the path, in order.
func EdgesOf(p gpath.Path) []graph.Object {
	var out []graph.Object
	for _, e := range p.Edges() {
		out = append(out, graph.MakeEdgeObject(e))
	}
	return out
}

// Reduce is the Cypher reduce operation of Section 5.2: Reduce(ε, ι, f, L)
// returns ε for the empty list, ι(x) for a singleton, and
// f(head, Reduce(ε, ι, f, tail)) otherwise.
func Reduce(
	eps graph.Value,
	iota func(graph.Object) graph.Value,
	f func(graph.Object, graph.Value) graph.Value,
	list []graph.Object,
) graph.Value {
	switch len(list) {
	case 0:
		return eps
	case 1:
		return iota(list[0])
	default:
		return f(list[0], Reduce(eps, iota, f, list[1:]))
	}
}

// SumProp returns reduce with ι(e) = e.prop and f = +, i.e. the Σp
// aggregate of Section 5.2 (undefined properties contribute 0).
func SumProp(g *graph.Graph, prop string, list []graph.Object) graph.Value {
	iota := func(o graph.Object) graph.Value {
		v, ok := g.Prop(o, prop)
		if !ok {
			return graph.Int(0)
		}
		return v
	}
	plus := func(o graph.Object, acc graph.Value) graph.Value {
		a, _ := iota(o).Numeric()
		b, _ := acc.Numeric()
		if iota(o).Kind() == graph.KindInt && acc.Kind() == graph.KindInt {
			x, _ := iota(o).AsInt()
			y, _ := acc.AsInt()
			return graph.Int(x + y)
		}
		return graph.Float(a + b)
	}
	return Reduce(graph.Int(0), iota, plus, list)
}

// IncreasingProp implements the Section 5.2 increasing-values reduce:
// ι(e) = e.prop and f(e, v) = e.prop if 0 ≤ e.prop < v, else −1. Reduce
// folds from the right, so f compares each element to the head of its
// suffix; the overall result is non-negative iff the property values along
// the list are non-negative and strictly increasing left-to-right.
func IncreasingProp(g *graph.Graph, prop string, list []graph.Object) bool {
	iota := func(o graph.Object) graph.Value {
		v, ok := g.Prop(o, prop)
		if !ok {
			return graph.Int(-1)
		}
		return v
	}
	f := func(o graph.Object, acc graph.Value) graph.Value {
		ev := iota(o)
		e, eNum := ev.Numeric()
		a, aNum := acc.Numeric()
		if !eNum || !aNum || a < 0 || e < 0 || e >= a {
			return graph.Int(-1)
		}
		return ev
	}
	out := Reduce(graph.Int(0), iota, f, list)
	n, ok := out.Numeric()
	return ok && n >= 0
}
