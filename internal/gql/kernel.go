// Kernel unification of GQL patterns (this PR's tentpole for the gql
// tier): the pure path-finding core of a pattern — its regular skeleton
// over edge labels — compiles to an NFA and runs on the product-graph
// kernel, inheriting amortized cancellation, budgets, live progress, the
// cost-based planner, and the sharded direction-optimizing sweep. What
// stays tier-local is exactly what is not regular: bindings, group
// variables, WHERE conditions, node-label tests, and repeated-variable
// joins. PairsCtx routes regular patterns through the kernel and falls
// back to the (metered) reference evaluator otherwise; the two paths are
// byte-identical on their common domain, which crossval enforces.
package gql

import (
	"context"
	"sort"

	"graphquery/internal/automata"
	"graphquery/internal/coregql"
	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
)

// EvalPatternCtx is EvalPattern under a context and budget: every
// candidate the evaluator considers is charged to the states budget
// (amortized every pg.CheckInterval), each final match to the rows
// budget. Errors follow the standard taxonomy (pg.ErrCanceled,
// *pg.BudgetError) and return no partial results.
func EvalPatternCtx(ctx context.Context, g *graph.Graph, p Pattern, opts Options, b pg.Budget) ([]Match, error) {
	return EvalPatternMeter(g, p, opts, pg.NewMeter(ctx, b))
}

// EvalPatternMeter is EvalPattern with an explicit meter (may be nil).
func EvalPatternMeter(g *graph.Graph, p Pattern, opts Options, m *pg.Meter) ([]Match, error) {
	if hasUnbounded(p) && opts.MaxLen <= 0 {
		return nil, ErrUnbounded
	}
	tick := pg.NewTicker(m, nil)
	opts.tick = &tick
	ms, err := evalRec(g, p, opts)
	if err != nil {
		return nil, err
	}
	if err := tick.Flush(); err != nil {
		return nil, err
	}
	if err := m.AddRows(int64(len(ms))); err != nil {
		return nil, err
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Path.Len() != ms[j].Path.Len() {
			return ms[i].Path.Len() < ms[j].Path.Len()
		}
		return ms[i].key() < ms[j].key()
	})
	return ms, nil
}

// PairsCtx computes the endpoint pairs of the pattern's match set —
// {(src(ρ), tgt(ρ)) | ρ matches π} as sorted, deduplicated (u,v) index
// pairs. Regular patterns run entirely on the product-graph kernel
// (opts.Plan, opts.Parallelism, budgets, and meter all apply); patterns
// whose semantics are not captured by their skeleton fall back to the
// metered match evaluator plus endpoint projection. opts.MaxLen bounds
// path length in both paths — the kernel one via a length-unrolled
// automaton, so the two agree exactly.
func PairsCtx(ctx context.Context, g *graph.Graph, p Pattern, opts eval.Options) ([][2]int, error) {
	if Regular(p) {
		e, err := Skeleton(p)
		if err == nil {
			if hasUnbounded(p) && opts.MaxLen <= 0 {
				return nil, ErrUnbounded
			}
			nfa := rpq.Compile(e)
			if opts.MaxLen > 0 {
				nfa = BoundLength(nfa, opts.MaxLen)
			}
			prod := eval.NewProductInstrumented(g, nfa, nil)
			return eval.PairsProductCtx(ctx, prod, opts)
		}
	}
	// Fallback: reference evaluator + projection.
	m := opts.Meter
	if m == nil {
		m = pg.NewMeter(ctx, opts.Budget)
	}
	ms, err := EvalPatternMeter(g, p, Options{MaxLen: opts.MaxLen}, m)
	if err != nil {
		return nil, err
	}
	return ProjectPairs(g, ms), nil
}

// ProjectPairs projects matches onto sorted, deduplicated endpoint pairs.
func ProjectPairs(g *graph.Graph, ms []Match) [][2]int {
	seen := map[[2]int]struct{}{}
	var out [][2]int
	for _, m := range ms {
		s, ok1 := m.Path.Src(g)
		t, ok2 := m.Path.Tgt(g)
		if !ok1 || !ok2 {
			continue
		}
		pr := [2]int{s, t}
		if _, dup := seen[pr]; dup {
			continue
		}
		seen[pr] = struct{}{}
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Regular reports whether the pattern's match set is determined by its
// regular skeleton over edge labels: no WHERE conditions, no node-label
// tests, and no variable occurring twice (a repeated singleton variable
// is an equality join the skeleton cannot see). Variables occurring once
// never constrain the path set.
func Regular(p Pattern) bool {
	counts := map[string]int{}
	regular := true
	var walk func(Pattern)
	walk = func(p Pattern) {
		switch n := p.(type) {
		case NodeP:
			if n.Label != "" {
				regular = false
			}
			if n.Var != "" {
				counts[n.Var]++
			}
		case EdgeP:
			if n.Var != "" {
				counts[n.Var]++
			}
		case ConcatP:
			walk(n.Left)
			walk(n.Right)
		case UnionP:
			walk(n.Left)
			walk(n.Right)
		case RepeatP:
			walk(n.Sub)
		case CondP:
			regular = false
		default:
			regular = false
		}
	}
	walk(p)
	if !regular {
		return false
	}
	for _, c := range counts {
		if c > 1 {
			return false
		}
	}
	return true
}

// Skeleton lowers a pattern to the RPQ of its edge-label language: node
// patterns are ε, edges are their label (or any-label), concatenation,
// union, and repetition map structurally. Callers should gate on Regular —
// for non-regular patterns the skeleton over-approximates the path set.
func Skeleton(p Pattern) (rpq.Expr, error) {
	switch n := p.(type) {
	case NodeP:
		return rpq.Eps(), nil
	case EdgeP:
		if n.Label == "" {
			return rpq.Any(), nil
		}
		return rpq.L(n.Label), nil
	case ConcatP:
		l, err := Skeleton(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := Skeleton(n.Right)
		if err != nil {
			return nil, err
		}
		return rpq.Seq(l, r), nil
	case UnionP:
		l, err := Skeleton(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := Skeleton(n.Right)
		if err != nil {
			return nil, err
		}
		return rpq.Alt(l, r), nil
	case RepeatP:
		sub, err := Skeleton(n.Sub)
		if err != nil {
			return nil, err
		}
		if n.Min == 0 && n.Max < 0 {
			return rpq.Kleene(sub), nil
		}
		return rpq.Between(sub, n.Min, n.Max), nil
	case CondP:
		return nil, ErrNotRegular
	default:
		return nil, ErrNotRegular
	}
}

// ErrNotRegular reports a pattern whose semantics exceed its skeleton.
var ErrNotRegular = errorsNotRegular{}

type errorsNotRegular struct{}

func (errorsNotRegular) Error() string {
	return "gql: pattern is not regular (conditions, node labels, or repeated variables)"
}

// BoundLength unrolls the automaton against a length counter so the bounded
// automaton accepts exactly the words of a's language with length ≤ maxLen.
// This is how the kernel path reproduces the evaluator's MaxLen bound bit
// for bit. The construction lives in automata.BoundLength so every tier can
// share it.
func BoundLength(a *automata.NFA, maxLen int) *automata.NFA {
	return automata.BoundLength(a, maxLen)
}

// ToCore lowers a gql pattern onto the CoreGQL fragment (Section 4's
// design kernel): node labels are dropped from the pattern surface —
// CoreGQL has no label atoms — so patterns using them are rejected rather
// than silently widened.
func ToCore(p Pattern) (coregql.Pattern, error) {
	switch n := p.(type) {
	case NodeP:
		if n.Label != "" {
			return nil, errorsNotCore{"node labels"}
		}
		return coregql.NodePat{Var: n.Var}, nil
	case EdgeP:
		if n.Label != "" {
			return nil, errorsNotCore{"edge labels"}
		}
		return coregql.EdgePat{Var: n.Var}, nil
	case ConcatP:
		l, err := ToCore(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := ToCore(n.Right)
		if err != nil {
			return nil, err
		}
		return coregql.ConcatPat{Left: l, Right: r}, nil
	case UnionP:
		l, err := ToCore(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := ToCore(n.Right)
		if err != nil {
			return nil, err
		}
		return coregql.UnionPat{Left: l, Right: r}, nil
	case RepeatP:
		sub, err := ToCore(n.Sub)
		if err != nil {
			return nil, err
		}
		return coregql.RepeatPat{Sub: sub, Min: n.Min, Max: n.Max}, nil
	case CondP:
		sub, err := ToCore(n.Sub)
		if err != nil {
			return nil, err
		}
		return coregql.CondPat{Sub: sub, Cond: n.Cond}, nil
	default:
		return nil, errorsNotCore{"unknown pattern"}
	}
}

type errorsNotCore struct{ what string }

func (e errorsNotCore) Error() string {
	return "gql: pattern does not fit the CoreGQL fragment (" + e.what + ")"
}
