package gql

import (
	"fmt"

	"graphquery/internal/coregql"
	"graphquery/internal/gpath"
	"graphquery/internal/graph"
)

// ForAllOnPath implements the ⟨∀π′ ⇒ θ⟩ conditions of Section 5.2
// ("Matching on Matched Paths", the committee's for-each-segment proposal):
// given a path p already matched by some pattern, π′ is matched on p only —
// i.e. on the linearization of p, so matches are segments of p — and every
// match must satisfy θ.
//
// The NP-hardness the paper warns about (the all-distinct variant
// ⟨∀(u)→*(v) ⇒ u.k ≠ v.k⟩) arises at the outer level: deciding whether any
// matched path satisfies the ∀-condition. ForAllOnPath itself checks a
// single candidate path.
func ForAllOnPath(g *graph.Graph, p gpath.Path, inner Pattern, theta coregql.Condition, opts Options) (bool, error) {
	lin, back, err := linearize(g, p)
	if err != nil {
		return false, err
	}
	ms, err := EvalPattern(lin, inner, opts)
	if err != nil {
		return false, err
	}
	for _, m := range ms {
		// Map bindings back to the original graph for θ; properties were
		// copied into the linearization, so evaluating θ on lin with the
		// lin bindings is equivalent — but mapping back keeps θ's label
		// tests faithful to the original too.
		flat := make(map[string]graph.Object, len(m.B))
		ok := true
		for v, val := range m.B {
			if val.IsList {
				ok = false // θ over group variables is not defined
				break
			}
			flat[v] = back(val.One)
		}
		if !ok {
			continue
		}
		if !theta.Holds(g, flat) {
			return false, nil
		}
	}
	return true, nil
}

// FilterForAll keeps the paths satisfying ⟨∀π′ ⇒ θ⟩.
func FilterForAll(g *graph.Graph, paths []gpath.Path, inner Pattern, theta coregql.Condition, opts Options) ([]gpath.Path, error) {
	var out []gpath.Path
	for _, p := range paths {
		ok, err := ForAllOnPath(g, p, inner, theta, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, p)
		}
	}
	return out, nil
}

// linearize builds the path graph of p: a simple chain with one fresh node
// per node occurrence and one fresh edge per edge occurrence, copying
// labels and properties, so that pattern matches on the chain are exactly
// the segment matches on p. back maps chain objects to original objects.
func linearize(g *graph.Graph, p gpath.Path) (*graph.Graph, func(graph.Object) graph.Object, error) {
	if !p.StartsWithNode() || !p.EndsWithNode() {
		return nil, nil, fmt.Errorf("gql: ∀-conditions apply to node-to-node paths, got %s", p.Format(g))
	}
	b := graph.NewBuilder()
	var nodeOrig []int // chain position -> original node index
	var edgeOrig []int // chain edge -> original edge index
	pos := 0
	for i := 0; i < p.NumObjects(); i++ {
		o := p.Object(i)
		if o.IsNode() {
			orig := g.Node(o.Index())
			b.AddNode(graph.NodeID(fmt.Sprintf("pos%d", pos)), orig.Label, orig.Props)
			nodeOrig = append(nodeOrig, o.Index())
			pos++
		}
	}
	epos := 0
	np := 0
	for i := 0; i < p.NumObjects(); i++ {
		o := p.Object(i)
		if o.IsNode() {
			np++
			continue
		}
		orig := g.Edge(o.Index())
		b.AddEdge(graph.EdgeID(fmt.Sprintf("seg%d", epos)), orig.Label,
			graph.NodeID(fmt.Sprintf("pos%d", np-1)), graph.NodeID(fmt.Sprintf("pos%d", np)),
			orig.Props)
		edgeOrig = append(edgeOrig, o.Index())
		epos++
	}
	lin, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	back := func(o graph.Object) graph.Object {
		if o.IsEdge() {
			return graph.MakeEdgeObject(edgeOrig[o.Index()])
		}
		return graph.MakeNodeObject(nodeOrig[o.Index()])
	}
	return lin, back, nil
}
