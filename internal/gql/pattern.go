// Package gql models the practice-side pattern semantics of GQL that the
// paper scrutinizes: group variables whose role flips under iteration
// (Examples 1 and 2), partial bindings under disjunction (Section 4.2),
// path variables with EXCEPT over path sets, Cypher-style list functions
// with reduce, and the proposed ⟨∀π′ ⇒ θ⟩ conditions on matched paths
// (Section 5.2). It is deliberately faithful to the behaviors the paper
// criticizes, serving as the experimental counterpart to the
// automata-compatible designs in packages lrpq and dlrpq.
package gql

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"graphquery/internal/coregql"
	"graphquery/internal/gpath"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
)

// Pattern is a GQL-style pattern.
type Pattern interface {
	fmt.Stringer
	isPattern()
}

// NodeP is (x:L); Var and Label are both optional.
type NodeP struct {
	Var   string
	Label string
}

// EdgeP is -[x:L]->; Var and Label are both optional.
type EdgeP struct {
	Var   string
	Label string
}

// ConcatP is π₁ π₂.
type ConcatP struct{ Left, Right Pattern }

// UnionP is π₁ + π₂. Unlike CoreGQL, branches may bind different variables
// (GQL's partial bindings / nulls, Section 4.2).
type UnionP struct{ Left, Right Pattern }

// RepeatP is π{Min,Max} (Max < 0 = ∞). Iteration turns every variable of
// the subpattern into a group variable that collects a list.
type RepeatP struct {
	Sub Pattern
	Min int
	Max int
}

// CondP is π WHERE θ; conditions reuse the CoreGQL condition language and
// apply to singleton bindings of the subpattern.
type CondP struct {
	Sub  Pattern
	Cond coregql.Condition
}

func (NodeP) isPattern()   {}
func (EdgeP) isPattern()   {}
func (ConcatP) isPattern() {}
func (UnionP) isPattern()  {}
func (RepeatP) isPattern() {}
func (CondP) isPattern()   {}

func (p NodeP) String() string {
	s := p.Var
	if p.Label != "" {
		s += ":" + p.Label
	}
	return "(" + s + ")"
}

func (p EdgeP) String() string {
	s := p.Var
	if p.Label != "" {
		s += ":" + p.Label
	}
	if s == "" {
		return "-->"
	}
	return "-[" + s + "]->"
}

func (p ConcatP) String() string { return p.Left.String() + p.Right.String() }
func (p UnionP) String() string  { return "(" + p.Left.String() + " + " + p.Right.String() + ")" }
func (p RepeatP) String() string {
	switch {
	case p.Min == 0 && p.Max < 0:
		return "(" + p.Sub.String() + ")*"
	case p.Max < 0:
		return fmt.Sprintf("(%s){%d,}", p.Sub, p.Min)
	case p.Min == p.Max:
		return fmt.Sprintf("(%s){%d}", p.Sub, p.Min)
	default:
		return fmt.Sprintf("(%s){%d,%d}", p.Sub, p.Min, p.Max)
	}
}
func (p CondP) String() string { return "(" + p.Sub.String() + " WHERE " + p.Cond.String() + ")" }

// Node returns (x).
func Node(x string) Pattern { return NodeP{Var: x} }

// NodeL returns (x:L).
func NodeL(x, label string) Pattern { return NodeP{Var: x, Label: label} }

// AnonNode returns ().
func AnonNode() Pattern { return NodeP{} }

// Edge returns -[x]->.
func Edge(x string) Pattern { return EdgeP{Var: x} }

// EdgeL returns -[x:L]->.
func EdgeL(x, label string) Pattern { return EdgeP{Var: x, Label: label} }

// AnonEdgeL returns -[:L]->.
func AnonEdgeL(label string) Pattern { return EdgeP{Label: label} }

// AnonEdge returns -->.
func AnonEdge() Pattern { return EdgeP{} }

// Concat chains patterns.
func Concat(ps ...Pattern) Pattern {
	if len(ps) == 0 {
		panic("gql: Concat needs at least one pattern")
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = ConcatP{Left: out, Right: p}
	}
	return out
}

// Union returns π₁ + π₂.
func Union(a, b Pattern) Pattern { return UnionP{Left: a, Right: b} }

// Repeat returns π{min,max}; max < 0 means unbounded.
func Repeat(p Pattern, min, max int) Pattern { return RepeatP{Sub: p, Min: min, Max: max} }

// Star returns π{0,∞}.
func Star(p Pattern) Pattern { return RepeatP{Sub: p, Min: 0, Max: -1} }

// Where returns π WHERE θ.
func Where(p Pattern, c coregql.Condition) Pattern { return CondP{Sub: p, Cond: c} }

// BindVal is the value of a variable in a match: a single element or — for
// group variables — a list of elements.
type BindVal struct {
	IsList bool
	One    graph.Object
	List   []graph.Object
}

func (v BindVal) key() string {
	objKey := func(o graph.Object) string {
		if o.IsEdge() {
			return fmt.Sprintf("E%d", o.Index())
		}
		return fmt.Sprintf("N%d", o.Index())
	}
	if !v.IsList {
		return objKey(v.One)
	}
	var b strings.Builder
	b.WriteByte('[')
	for _, o := range v.List {
		b.WriteString(objKey(o))
		b.WriteByte(',')
	}
	b.WriteByte(']')
	return b.String()
}

// Format renders the value with external IDs.
func (v BindVal) Format(g *graph.Graph) string {
	if !v.IsList {
		return g.ObjectID(v.One)
	}
	parts := make([]string, len(v.List))
	for i, o := range v.List {
		parts[i] = g.ObjectID(o)
	}
	return "list(" + strings.Join(parts, ", ") + ")"
}

// Match is one result of pattern matching: a node-to-node path and a
// binding. Variables absent from the map are "null" (GQL partial bindings).
type Match struct {
	Path gpath.Path
	B    map[string]BindVal
}

func (m Match) key() string {
	vars := make([]string, 0, len(m.B))
	for v := range m.B {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	b.WriteString(m.Path.Key())
	b.WriteByte('|')
	for _, v := range vars {
		b.WriteString(v)
		b.WriteByte('=')
		b.WriteString(m.B[v].key())
		b.WriteByte(';')
	}
	return b.String()
}

// ErrUnbounded mirrors the other evaluators.
var ErrUnbounded = errors.New("gql: unbounded repetition requires Options.MaxLen")

// ErrMixedBinding reports a variable used as both singleton and group in a
// joinable position — ill-formed in GQL's type discipline.
var ErrMixedBinding = errors.New("gql: variable bound as both element and list")

// Options bound evaluation.
type Options struct {
	MaxLen int

	// tick, when set, meters every candidate the evaluator considers
	// (EvalPatternMeter wires it); the zero Options meters nothing.
	tick *pg.Ticker
}

// step charges one unit of evaluator work against the meter, if any.
func (o Options) step() error {
	if o.tick == nil {
		return nil
	}
	return o.tick.Step()
}

// EvalPattern computes the match set of π on g under GQL group-variable
// semantics (set semantics; GQL's bag/dedup subtleties are modeled in
// DedupBy below).
func EvalPattern(g *graph.Graph, p Pattern, opts Options) ([]Match, error) {
	if hasUnbounded(p) && opts.MaxLen <= 0 {
		return nil, ErrUnbounded
	}
	ms, err := evalRec(g, p, opts)
	if err != nil {
		return nil, err
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Path.Len() != ms[j].Path.Len() {
			return ms[i].Path.Len() < ms[j].Path.Len()
		}
		return ms[i].key() < ms[j].key()
	})
	return ms, nil
}

func hasUnbounded(p Pattern) bool {
	switch n := p.(type) {
	case ConcatP:
		return hasUnbounded(n.Left) || hasUnbounded(n.Right)
	case UnionP:
		return hasUnbounded(n.Left) || hasUnbounded(n.Right)
	case RepeatP:
		return n.Max < 0 || hasUnbounded(n.Sub)
	case CondP:
		return hasUnbounded(n.Sub)
	default:
		return false
	}
}

func dedup(ms []Match) []Match {
	seen := map[string]struct{}{}
	out := ms[:0]
	for _, m := range ms {
		k := m.key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, m)
	}
	return out
}

func evalRec(g *graph.Graph, p Pattern, opts Options) ([]Match, error) {
	switch n := p.(type) {
	case NodeP:
		var out []Match
		for i := 0; i < g.NumNodes(); i++ {
			if err := opts.step(); err != nil {
				return nil, err
			}
			if !g.NodeAlive(i) {
				continue
			}
			if n.Label != "" && g.Node(i).Label != n.Label {
				continue
			}
			b := map[string]BindVal{}
			if n.Var != "" {
				b[n.Var] = BindVal{One: graph.MakeNodeObject(i)}
			}
			out = append(out, Match{Path: gpath.OfNode(i), B: b})
		}
		return out, nil
	case EdgeP:
		var out []Match
		for e := 0; e < g.NumEdges(); e++ {
			if err := opts.step(); err != nil {
				return nil, err
			}
			if !g.EdgeAlive(e) {
				continue
			}
			if n.Label != "" && g.Edge(e).Label != n.Label {
				continue
			}
			b := map[string]BindVal{}
			if n.Var != "" {
				b[n.Var] = BindVal{One: graph.MakeEdgeObject(e)}
			}
			out = append(out, Match{Path: gpath.Triple(g, e), B: b})
		}
		return out, nil
	case ConcatP:
		left, err := evalRec(g, n.Left, opts)
		if err != nil {
			return nil, err
		}
		right, err := evalRec(g, n.Right, opts)
		if err != nil {
			return nil, err
		}
		return concatMatches(g, left, right, opts)
	case UnionP:
		left, err := evalRec(g, n.Left, opts)
		if err != nil {
			return nil, err
		}
		right, err := evalRec(g, n.Right, opts)
		if err != nil {
			return nil, err
		}
		return dedup(append(left, right...)), nil
	case RepeatP:
		return evalRepeat(g, n, opts)
	case CondP:
		ms, err := evalRec(g, n.Sub, opts)
		if err != nil {
			return nil, err
		}
		var out []Match
		for _, m := range ms {
			if err := opts.step(); err != nil {
				return nil, err
			}
			if holdsOnSingletons(g, n.Cond, m.B) {
				out = append(out, m)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("gql: unknown pattern %T", p)
	}
}

// holdsOnSingletons adapts a GQL binding (which may contain lists) to the
// CoreGQL condition evaluator; conditions touching list-bound or unbound
// variables are false.
func holdsOnSingletons(g *graph.Graph, c coregql.Condition, b map[string]BindVal) bool {
	flat := make(map[string]graph.Object, len(b))
	for v, val := range b {
		if !val.IsList {
			flat[v] = val.One
		}
	}
	return c.Holds(g, flat)
}

// concatMatches joins matches: node-to-node path composition plus binding
// merge — singleton∩singleton joins on equality (this is GQL's repeated-
// variable join), list∩list concatenates, mixed is an error.
func concatMatches(g *graph.Graph, left, right []Match, opts Options) ([]Match, error) {
	bySrc := map[int][]Match{}
	for _, m := range right {
		if s, ok := m.Path.Src(g); ok {
			bySrc[s] = append(bySrc[s], m)
		}
	}
	var out []Match
	for _, lm := range left {
		t, ok := lm.Path.Tgt(g)
		if !ok {
			continue
		}
		for _, rm := range bySrc[t] {
			if err := opts.step(); err != nil {
				return nil, err
			}
			if opts.MaxLen > 0 && lm.Path.Len()+rm.Path.Len() > opts.MaxLen {
				continue
			}
			merged, ok, err := mergeBindings(lm.B, rm.B)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			joined, ok := gpath.Concat(g, lm.Path, rm.Path)
			if !ok {
				continue
			}
			out = append(out, Match{Path: joined, B: merged})
		}
	}
	return dedup(out), nil
}

func mergeBindings(a, b map[string]BindVal) (map[string]BindVal, bool, error) {
	out := make(map[string]BindVal, len(a)+len(b))
	for v, val := range a {
		out[v] = val
	}
	for v, val := range b {
		prev, shared := out[v]
		if !shared {
			out[v] = val
			continue
		}
		switch {
		case !prev.IsList && !val.IsList:
			if prev.One != val.One {
				return nil, false, nil // join fails
			}
		case prev.IsList && val.IsList:
			merged := make([]graph.Object, 0, len(prev.List)+len(val.List))
			merged = append(merged, prev.List...)
			merged = append(merged, val.List...)
			out[v] = BindVal{IsList: true, List: merged}
		default:
			return nil, false, fmt.Errorf("%w: %q", ErrMixedBinding, v)
		}
	}
	return out, true, nil
}

// evalRepeat implements GQL iteration: the subpattern's variables become
// group variables; iteration i contributes its singleton values (and
// flattens its lists) onto the per-variable list.
func evalRepeat(g *graph.Graph, n RepeatP, opts Options) ([]Match, error) {
	base, err := evalRec(g, n.Sub, opts)
	if err != nil {
		return nil, err
	}
	// Promote the base matches: every bound variable contributes a
	// one-iteration list.
	unit := make([]Match, len(base))
	for i, m := range base {
		b := make(map[string]BindVal, len(m.B))
		for v, val := range m.B {
			if val.IsList {
				b[v] = val
			} else {
				b[v] = BindVal{IsList: true, List: []graph.Object{val.One}}
			}
		}
		unit[i] = Match{Path: m.Path, B: b}
	}
	unit = dedup(unit)

	level := make([]Match, 0, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		if err := opts.step(); err != nil {
			return nil, err
		}
		if !g.NodeAlive(i) {
			continue
		}
		level = append(level, Match{Path: gpath.OfNode(i), B: map[string]BindVal{}})
	}
	var out []Match
	if n.Min == 0 {
		out = append(out, level...)
	}
	seen := map[string]struct{}{}
	for _, m := range level {
		seen[m.key()] = struct{}{}
	}
	for j := 1; n.Max < 0 || j <= n.Max; j++ {
		level, err = concatMatches(g, level, unit, opts)
		if err != nil {
			return nil, err
		}
		if j >= n.Min {
			out = append(out, level...)
		}
		anyFresh := false
		for _, m := range level {
			k := m.key()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				anyFresh = true
			}
		}
		if n.Max < 0 && !anyFresh {
			break
		}
		if len(level) == 0 {
			break
		}
	}
	return dedup(out), nil
}
