// Package wcoj implements a generic worst-case-optimal join for conjunctions
// of binary relations — the evaluation technique Section 7.1 of the paper
// singles out ("over the last decade we have seen impressive progress on
// worst-case optimal evaluation of conjunctive queries, with the celebrated
// AGM bound […] for CRPQs we have seen little progress so far").
//
// The algorithm is attribute-at-a-time (Leapfrog-Triejoin style): variables
// are bound one by one in a fixed order; at each step the candidate set for
// the next variable is the intersection of the sorted adjacency lists of
// every atom constrained by the already-bound variables. On cyclic joins
// such as the triangle query R(x,y), S(y,z), T(z,x) this runs in O(N^{3/2})
// instead of the Θ(N²) a pairwise join plan can hit.
//
// Package crpq uses this engine for CRPQs whose atoms carry no list
// variables (each RPQ atom is materialized to its answer-pair relation
// first); see crpq.EvalWCOJ.
package wcoj

import (
	"fmt"
	"sort"
)

// Rel is a binary relation over int constants with sorted indexes in both
// directions.
type Rel struct {
	fwd map[int][]int // x -> sorted ys with (x, y) ∈ R
	rev map[int][]int // y -> sorted xs with (x, y) ∈ R
	xs  []int         // sorted distinct first components
	ys  []int         // sorted distinct second components
}

// NewRel builds a relation from pairs (duplicates are fine).
func NewRel(pairs [][2]int) *Rel {
	r := &Rel{fwd: map[int][]int{}, rev: map[int][]int{}}
	for _, p := range pairs {
		r.fwd[p[0]] = append(r.fwd[p[0]], p[1])
		r.rev[p[1]] = append(r.rev[p[1]], p[0])
	}
	for x, ys := range r.fwd {
		sort.Ints(ys)
		r.fwd[x] = dedupSortedInts(ys)
		r.xs = append(r.xs, x)
	}
	for y, xs := range r.rev {
		sort.Ints(xs)
		r.rev[y] = dedupSortedInts(xs)
		r.ys = append(r.ys, y)
	}
	sort.Ints(r.xs)
	sort.Ints(r.ys)
	return r
}

func dedupSortedInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Len returns the number of distinct pairs.
func (r *Rel) Len() int {
	n := 0
	for _, ys := range r.fwd {
		n += len(ys)
	}
	return n
}

// Atom is one conjunct Rel(X, Y) over variables.
type Atom struct {
	Rel  *Rel
	X, Y string
}

// Query is a conjunction of binary atoms.
type Query struct {
	Atoms []Atom
}

// Vars returns the distinct variables in first-appearance order.
func (q *Query) Vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range q.Atoms {
		for _, v := range []string{a.X, a.Y} {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Enumerate computes all assignments satisfying every atom, using the
// attribute-at-a-time worst-case-optimal strategy with the given variable
// order (every query variable must appear exactly once in order; pass nil
// for first-appearance order). Each result maps variables to constants.
func (q *Query) Enumerate(order []string) ([]map[string]int, error) {
	if order == nil {
		order = q.Vars()
	}
	if err := q.checkOrder(order); err != nil {
		return nil, err
	}
	var out []map[string]int
	binding := map[string]int{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(order) {
			row := make(map[string]int, len(binding))
			for k, v := range binding {
				row[k] = v
			}
			out = append(out, row)
			return
		}
		v := order[i]
		candidates, ok := q.candidates(v, binding)
		if !ok {
			return
		}
		for _, c := range candidates {
			binding[v] = c
			rec(i + 1)
			delete(binding, v)
		}
	}
	rec(0)
	return out, nil
}

// Count returns the number of satisfying assignments without materializing
// them (same traversal, counting only).
func (q *Query) Count(order []string) (int, error) {
	if order == nil {
		order = q.Vars()
	}
	if err := q.checkOrder(order); err != nil {
		return 0, err
	}
	binding := map[string]int{}
	var rec func(i int) int
	rec = func(i int) int {
		if i == len(order) {
			return 1
		}
		v := order[i]
		candidates, ok := q.candidates(v, binding)
		if !ok {
			return 0
		}
		total := 0
		for _, c := range candidates {
			binding[v] = c
			total += rec(i + 1)
			delete(binding, v)
		}
		return total
	}
	return rec(0), nil
}

func (q *Query) checkOrder(order []string) error {
	want := q.Vars()
	if len(order) != len(want) {
		return fmt.Errorf("wcoj: order has %d variables, query has %d", len(order), len(want))
	}
	seen := map[string]bool{}
	for _, v := range order {
		if seen[v] {
			return fmt.Errorf("wcoj: duplicate variable %q in order", v)
		}
		seen[v] = true
	}
	for _, v := range want {
		if !seen[v] {
			return fmt.Errorf("wcoj: query variable %q missing from order", v)
		}
	}
	return nil
}

// candidates intersects the constraint lists for variable v under the
// current partial binding. ok=false signals an empty candidate set.
func (q *Query) candidates(v string, binding map[string]int) ([]int, bool) {
	var lists [][]int
	for _, a := range q.Atoms {
		switch {
		case a.X == v && a.Y == v:
			// Self-loop atom: v must satisfy (v, v) ∈ R.
			var self []int
			for _, x := range a.Rel.xs {
				if containsSorted(a.Rel.fwd[x], x) {
					self = append(self, x)
				}
			}
			lists = append(lists, self)
		case a.X == v:
			if yv, bound := binding[a.Y]; bound {
				lists = append(lists, a.Rel.rev[yv])
			} else {
				lists = append(lists, a.Rel.xs)
			}
		case a.Y == v:
			if xv, bound := binding[a.X]; bound {
				lists = append(lists, a.Rel.fwd[xv])
			} else {
				lists = append(lists, a.Rel.ys)
			}
		}
	}
	if len(lists) == 0 {
		return nil, false
	}
	// Intersect starting from the smallest list (leapfrog order).
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cur := lists[0]
	for _, l := range lists[1:] {
		cur = intersectSorted(cur, l)
		if len(cur) == 0 {
			return nil, false
		}
	}
	return cur, true
}

func containsSorted(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// intersectSorted intersects two sorted slices with galloping search when
// the sizes are lopsided.
func intersectSorted(a, b []int) []int {
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []int
	lo := 0
	for _, v := range a {
		i := lo + sort.SearchInts(b[lo:], v)
		if i < len(b) && b[i] == v {
			out = append(out, v)
			lo = i + 1
		} else {
			lo = i
		}
		if lo >= len(b) {
			break
		}
	}
	return out
}

// Pairs returns the distinct pairs of the relation (sorted by first then
// second component).
func (r *Rel) Pairs() [][2]int {
	var out [][2]int
	for _, x := range r.xs {
		for _, y := range r.fwd[x] {
			out = append(out, [2]int{x, y})
		}
	}
	return out
}
