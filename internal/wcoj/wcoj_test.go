package wcoj

import (
	"math/rand"
	"testing"
)

func pairsOf(es ...[2]int) [][2]int { return es }

func TestTriangleQuery(t *testing.T) {
	// Edges of a directed triangle 0→1→2→0 plus a distractor 0→3.
	r := NewRel(pairsOf([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0}, [2]int{0, 3}))
	q := &Query{Atoms: []Atom{
		{Rel: r, X: "x", Y: "y"},
		{Rel: r, X: "y", Y: "z"},
		{Rel: r, X: "z", Y: "x"},
	}}
	rows, err := q.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The directed triangle appears once per rotation: 3 results.
	if len(rows) != 3 {
		t.Fatalf("triangles = %d, want 3", len(rows))
	}
	for _, row := range rows {
		x, y, z := row["x"], row["y"], row["z"]
		if (x+1)%3 != y%3 || (y+1)%3 != z%3 || (z+1)%3 != x%3 {
			t.Errorf("not a rotation of the triangle: %v", row)
		}
	}
	count, err := q.Count(nil)
	if err != nil || count != 3 {
		t.Errorf("Count = %d, %v", count, err)
	}
}

func TestSelfLoopAtom(t *testing.T) {
	r := NewRel(pairsOf([2]int{0, 0}, [2]int{1, 2}, [2]int{3, 3}))
	q := &Query{Atoms: []Atom{{Rel: r, X: "x", Y: "x"}}}
	rows, err := q.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("self-loops = %d, want 2", len(rows))
	}
}

func TestOrderValidation(t *testing.T) {
	r := NewRel(pairsOf([2]int{0, 1}))
	q := &Query{Atoms: []Atom{{Rel: r, X: "x", Y: "y"}}}
	if _, err := q.Enumerate([]string{"x"}); err == nil {
		t.Error("short order should fail")
	}
	if _, err := q.Enumerate([]string{"x", "x"}); err == nil {
		t.Error("duplicate order should fail")
	}
	if _, err := q.Enumerate([]string{"x", "q"}); err == nil {
		t.Error("wrong variable should fail")
	}
	// Any valid permutation gives the same result set.
	a, _ := q.Enumerate([]string{"x", "y"})
	b, _ := q.Enumerate([]string{"y", "x"})
	if len(a) != 1 || len(b) != 1 || a[0]["x"] != b[0]["x"] {
		t.Error("order must not change results")
	}
}

func TestEmptyIntersection(t *testing.T) {
	r1 := NewRel(pairsOf([2]int{0, 1}))
	r2 := NewRel(pairsOf([2]int{2, 3}))
	q := &Query{Atoms: []Atom{
		{Rel: r1, X: "x", Y: "y"},
		{Rel: r2, X: "y", Y: "z"},
	}}
	rows, err := q.Enumerate(nil)
	if err != nil || len(rows) != 0 {
		t.Errorf("rows = %d, err %v; want empty", len(rows), err)
	}
}

// TestAgainstBruteForce cross-checks on random relations and a cyclic query.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 6
		mk := func() ([][2]int, *Rel) {
			var ps [][2]int
			for i := 0; i < 10; i++ {
				ps = append(ps, [2]int{rng.Intn(n), rng.Intn(n)})
			}
			return ps, NewRel(ps)
		}
		p1, r1 := mk()
		p2, r2 := mk()
		p3, r3 := mk()
		q := &Query{Atoms: []Atom{
			{Rel: r1, X: "x", Y: "y"},
			{Rel: r2, X: "y", Y: "z"},
			{Rel: r3, X: "z", Y: "x"},
		}}
		got, err := q.Enumerate(nil)
		if err != nil {
			t.Fatal(err)
		}
		gotSet := map[[3]int]bool{}
		for _, row := range got {
			gotSet[[3]int{row["x"], row["y"], row["z"]}] = true
		}
		has := func(ps [][2]int, a, b int) bool {
			for _, p := range ps {
				if p[0] == a && p[1] == b {
					return true
				}
			}
			return false
		}
		want := 0
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				for z := 0; z < n; z++ {
					if has(p1, x, y) && has(p2, y, z) && has(p3, z, x) {
						want++
						if !gotSet[[3]int{x, y, z}] {
							t.Fatalf("trial %d: missing (%d,%d,%d)", trial, x, y, z)
						}
					}
				}
			}
		}
		if len(gotSet) != want {
			t.Fatalf("trial %d: %d results, brute force %d", trial, len(gotSet), want)
		}
	}
}

func TestRelLen(t *testing.T) {
	r := NewRel(pairsOf([2]int{0, 1}, [2]int{0, 1}, [2]int{1, 2}))
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2 (dedup)", r.Len())
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct{ a, b, want []int }{
		{[]int{1, 3, 5}, []int{2, 3, 4, 5}, []int{3, 5}},
		{[]int{}, []int{1}, nil},
		{[]int{1, 2}, []int{3}, nil},
		{[]int{1, 2, 3}, []int{1, 2, 3}, []int{1, 2, 3}},
	}
	for _, tc := range cases {
		got := intersectSorted(tc.a, tc.b)
		if len(got) != len(tc.want) {
			t.Errorf("intersect(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("intersect(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		}
	}
}
