// Package obs is the engine's stdlib-only observability layer: per-query
// trace spans (this file), Prometheus text-format metric rendering and a
// hand-rolled latency histogram (prom.go). Nothing here imports the rest
// of the repository, so every layer — the product-graph runtime, the core
// engine, the HTTP service, the daemons — can depend on it freely.
//
// The paper's central warning (Section 6.1 bag-semantics explosion,
// Section 6.3 exponential-output graphs) is that graph-query cost is
// combinatorial; budgets bound it, but an operator also has to *see* it:
// which query burned the budget, which plan the planner picked, and where
// the time went. A Trace answers the last question for one query; the
// metric side answers it for the fleet.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded evaluation stage of a query: a name (the engine
// uses parse, compile, plan, kernel, enumerate), its start offset and
// duration in nanoseconds, and the product states and result rows the
// stage accounted for on the meter while it ran.
type Span struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	States  int64  `json:"states,omitempty"`
	Rows    int64  `json:"rows,omitempty"`
}

func (s Span) String() string {
	out := fmt.Sprintf("%s=%v", s.Name, time.Duration(s.DurNS))
	if s.States > 0 || s.Rows > 0 {
		out += fmt.Sprintf("[states=%d rows=%d]", s.States, s.Rows)
	}
	return out
}

// SpansString renders a span list on one line ("parse=4µs kernel=1.2ms
// [states=900 rows=36] …") — the format the slow-query log and Explain
// embed.
func SpansString(spans []Span) string {
	parts := make([]string, len(spans))
	for i, s := range spans {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// Trace collects the spans and string attributes of one query. All methods
// are safe for concurrent use and nil-safe: a nil *Trace records nothing
// and costs nothing, so untraced call paths pay only a nil check.
type Trace struct {
	t0    time.Time
	prog  atomic.Pointer[Progress]
	mu    sync.Mutex
	spans []Span
	attrs map[string]string
}

// NewTrace starts an empty trace; its clock zero is now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// BindProgress attaches a live Progress to the trace: every span opened
// after the bind also sets the progress stage, so a serving layer that
// already traces its queries gets live stage sampling with no extra calls.
// A nil p (or nil t) is a no-op.
func (t *Trace) BindProgress(p *Progress) {
	if t == nil || p == nil {
		return
	}
	t.prog.Store(p)
}

// Start opens a span. End it (once) to record it on the trace.
func (t *Trace) Start(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	if p := t.prog.Load(); p != nil {
		p.SetStage(name)
	}
	return &ActiveSpan{tr: t, name: name, begin: time.Now()}
}

// Set records a string attribute (the engine stores the chosen plan line
// under "plan"), overwriting any previous value for the key.
func (t *Trace) Set(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// Attr returns the attribute stored under key, or "".
func (t *Trace) Attr(key string) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attrs[key]
}

// Spans returns a copy of the recorded spans in End order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// String renders the recorded spans on one line.
func (t *Trace) String() string { return SpansString(t.Spans()) }

// ActiveSpan is a span between Start and End. It is owned by one goroutine;
// only the End that publishes it synchronizes with the trace.
type ActiveSpan struct {
	tr           *Trace
	name         string
	begin        time.Time
	states, rows int64
}

// Counts attaches the meter readings the span accounted for (typically
// deltas of Meter.States/Rows across the stage). It returns the span so
// callers can chain Counts(...).End().
func (s *ActiveSpan) Counts(states, rows int64) *ActiveSpan {
	if s != nil {
		s.states, s.rows = states, rows
	}
	return s
}

// End records the span on its trace with nanosecond timings. A span must
// be ended at most once; spans never ended are simply not recorded.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	now := time.Now()
	sp := Span{
		Name:    s.name,
		StartNS: s.begin.Sub(s.tr.t0).Nanoseconds(),
		DurNS:   now.Sub(s.begin).Nanoseconds(),
		States:  s.states,
		Rows:    s.rows,
	}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, sp)
	s.tr.mu.Unlock()
}

// TotalStates sums the states recorded across spans — the budget
// consumption of the whole query as seen by its trace (available even when
// the query erred and no Response was produced).
func TotalStates(spans []Span) int64 {
	var n int64
	for _, s := range spans {
		n += s.States
	}
	return n
}

// TotalRows sums the rows recorded across spans.
func TotalRows(spans []Span) int64 {
	var n int64
	for _, s := range spans {
		n += s.Rows
	}
	return n
}
