package obs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrKilled is the cancellation cause an operator kill delivers: the query
// ends through the normal cooperative-cancellation path (eval.ErrCanceled
// taxonomy, no partial results), but serving layers can tell an admin kill
// from a client disconnect with errors.Is and report a distinct "killed"
// outcome.
var ErrKilled = errors.New("query killed by operator")

// Active is one in-flight query as the registry tracks it: its monotonic
// ID, admission metadata, live Progress, and the cancel hook a Kill fires.
type Active struct {
	ID      uint64
	Graph   string
	Query   string
	Lang    string
	Started time.Time

	// Progress is sampled by GET /v1/queries and fed by the evaluation
	// layers through the meter; never nil for an admitted query.
	Progress *Progress

	cancel context.CancelCauseFunc
}

// LiveQuery is the JSON shape of one in-flight query on GET /v1/queries.
type LiveQuery struct {
	ID        uint64  `json:"id"`
	Graph     string  `json:"graph"`
	Query     string  `json:"query"`
	Lang      string  `json:"lang,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	ProgressSnapshot
}

// CompletedQuery is the structured record of one finished query: the query
// event log writes it as one JSONL line, the slow-query log renders the
// same record as a WARN, and the registry's ring buffer keeps the last N
// for GET /v1/queries/recent — one builder, three sinks, so they can't
// drift.
type CompletedQuery struct {
	ID    uint64 `json:"id"`
	Graph string `json:"graph"`
	// GraphRev is the store revision of the snapshot the query evaluated
	// against (0 when the engine serves a plain static graph) — the handle
	// for pinning a slow query to the exact live-store state it saw.
	GraphRev  uint64    `json:"graph_rev,omitempty"`
	Query     string    `json:"query"`
	Lang      string    `json:"lang,omitempty"`
	Outcome   string    `json:"outcome"`
	Error     string    `json:"error,omitempty"`
	Plan      string    `json:"plan,omitempty"`
	StartedAt time.Time `json:"started_at"`
	ElapsedMS float64   `json:"elapsed_ms"`
	States    int64     `json:"states"`
	Rows      int64     `json:"rows"`
	Spans     []Span    `json:"spans,omitempty"`
	// Analyze carries the annotated plan tree when the query ran in analyze
	// mode — the serving layer deposits its core.AnnotatedPlan here (typed
	// any to keep obs free of core imports), enriching the query-event JSONL
	// and the slow-query WARN with the estimate-vs-actual audit.
	Analyze any `json:"analyze,omitempty"`
}

// Registry tracks every in-flight query of a serving layer and remembers
// the last N completed ones. Admission assigns monotonic query IDs (never
// reused for the registry's lifetime), so an ID names one query run
// unambiguously across the live view, the recent ring, and the query log.
//
// The registry is not on the evaluation hot path: Admit/Finish run once per
// query and Live/Recent once per introspection request, so a plain mutex
// suffices — the lock-free part is the Progress structs it hands out.
type Registry struct {
	nextID atomic.Uint64

	mu   sync.Mutex
	live map[uint64]*Active
	ring []CompletedQuery // fixed capacity, next is the oldest slot
	next int
}

// DefaultRecent is the completed-query ring capacity when NewRegistry is
// given n <= 0.
const DefaultRecent = 64

// NewRegistry builds a registry remembering the last n completed queries.
func NewRegistry(n int) *Registry {
	if n <= 0 {
		n = DefaultRecent
	}
	return &Registry{
		live: make(map[uint64]*Active),
		ring: make([]CompletedQuery, 0, n),
	}
}

// Admit registers one admitted query and returns its Active handle with a
// freshly assigned ID and Progress. cancel (may be nil) is the hook Kill
// fires with ErrKilled as the cause.
func (r *Registry) Admit(graphName, query, lang string, cancel context.CancelCauseFunc) *Active {
	a := &Active{
		ID:       r.nextID.Add(1),
		Graph:    graphName,
		Query:    query,
		Lang:     lang,
		Started:  time.Now(),
		Progress: &Progress{},
		cancel:   cancel,
	}
	r.mu.Lock()
	r.live[a.ID] = a
	r.mu.Unlock()
	return a
}

// Kill cancels the in-flight query with the given ID, delivering ErrKilled
// as the context cause so the query dies through the cooperative
// ErrCanceled path. It reports whether a live query with that ID existed;
// already-finished queries cannot be killed.
func (r *Registry) Kill(id uint64) bool {
	r.mu.Lock()
	a, ok := r.live[id]
	r.mu.Unlock()
	if !ok || a.cancel == nil {
		return ok
	}
	a.cancel(ErrKilled)
	return true
}

// Finish retires a's live entry and records rec in the completed-query
// ring. The caller builds rec (outcome, spans, consumption); Finish stamps
// the identity fields from a so ring entries always match their admission.
func (r *Registry) Finish(a *Active, rec CompletedQuery) {
	rec.ID = a.ID
	rec.Graph = a.Graph
	rec.Query = a.Query
	rec.Lang = a.Lang
	rec.StartedAt = a.Started
	r.mu.Lock()
	delete(r.live, a.ID)
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.ring)
	r.mu.Unlock()
}

// Live samples every in-flight query, sorted by ID ascending (admission
// order). Each entry's progress is read from its lock-free Progress at call
// time.
func (r *Registry) Live() []LiveQuery {
	now := time.Now()
	r.mu.Lock()
	actives := make([]*Active, 0, len(r.live))
	for _, a := range r.live {
		actives = append(actives, a)
	}
	r.mu.Unlock()
	out := make([]LiveQuery, len(actives))
	for i, a := range actives {
		out[i] = LiveQuery{
			ID:               a.ID,
			Graph:            a.Graph,
			Query:            a.Query,
			Lang:             a.Lang,
			ElapsedMS:        float64(now.Sub(a.Started).Microseconds()) / 1000,
			ProgressSnapshot: a.Progress.Snapshot(),
		}
	}
	// Insertion sort: the live set is small (bounded by the admission
	// limiter) and nearly sorted already.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Recent returns the completed-query ring, newest first.
func (r *Registry) Recent() []CompletedQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	// next-1 is the most recently written slot; before the ring wraps,
	// next == len(ring), so the same walk covers both regimes.
	n := len(r.ring)
	out := make([]CompletedQuery, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.ring[((r.next-1-i)%n+n)%n])
	}
	return out
}

// InFlight returns the number of live queries.
func (r *Registry) InFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}
