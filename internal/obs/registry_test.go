package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestRegistryMonotonicIDs: concurrent admissions get unique, strictly
// positive IDs, and the live view lists them in ID order.
func TestRegistryMonotonicIDs(t *testing.T) {
	r := NewRegistry(8)
	const n = 64
	ids := make(chan uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids <- r.Admit("g", "q", "", nil).ID
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[uint64]bool)
	for id := range ids {
		if id == 0 {
			t.Fatal("ID 0 assigned")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
	live := r.Live()
	if len(live) != n {
		t.Fatalf("Live() = %d entries, want %d", len(live), n)
	}
	for i := 1; i < len(live); i++ {
		if live[i-1].ID >= live[i].ID {
			t.Fatalf("Live() not sorted by ID: %d before %d", live[i-1].ID, live[i].ID)
		}
	}
}

// TestRegistryRingBuffer: Finish retires the live entry and the recent ring
// keeps only the newest N, newest first.
func TestRegistryRingBuffer(t *testing.T) {
	const capacity = 4
	r := NewRegistry(capacity)
	for i := 0; i < 10; i++ {
		a := r.Admit("g", fmt.Sprintf("q%d", i), "", nil)
		r.Finish(a, CompletedQuery{Outcome: "ok"})
	}
	if got := r.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after finishing everything", got)
	}
	recent := r.Recent()
	if len(recent) != capacity {
		t.Fatalf("Recent() = %d entries, want %d", len(recent), capacity)
	}
	for i, want := range []string{"q9", "q8", "q7", "q6"} {
		if recent[i].Query != want {
			t.Errorf("Recent()[%d].Query = %q, want %q (newest first)", i, recent[i].Query, want)
		}
	}
	// Identity fields are stamped from the admission, not the caller's rec.
	if recent[0].ID == 0 || recent[0].Graph != "g" || recent[0].StartedAt.IsZero() {
		t.Errorf("ring entry missing stamped identity: %+v", recent[0])
	}

	// Before wrapping, Recent is still newest-first over what exists.
	r2 := NewRegistry(capacity)
	r2.Finish(r2.Admit("g", "a", "", nil), CompletedQuery{})
	r2.Finish(r2.Admit("g", "b", "", nil), CompletedQuery{})
	got := r2.Recent()
	if len(got) != 2 || got[0].Query != "b" || got[1].Query != "a" {
		t.Fatalf("pre-wrap Recent() wrong: %+v", got)
	}
}

// TestRegistryKill: Kill cancels the query's context with ErrKilled as the
// cause, reports false for unknown or already-finished IDs, and never
// touches other live queries.
func TestRegistryKill(t *testing.T) {
	r := NewRegistry(4)
	ctx1, cancel1 := context.WithCancelCause(context.Background())
	ctx2, cancel2 := context.WithCancelCause(context.Background())
	a1 := r.Admit("g", "victim", "", cancel1)
	a2 := r.Admit("g", "bystander", "", cancel2)

	if r.Kill(a1.ID + a2.ID + 100) {
		t.Fatal("Kill(unknown) = true")
	}
	if !r.Kill(a1.ID) {
		t.Fatal("Kill(live) = false")
	}
	if ctx1.Err() == nil {
		t.Fatal("killed query's context not canceled")
	}
	if cause := context.Cause(ctx1); !errors.Is(cause, ErrKilled) {
		t.Fatalf("cause = %v, want ErrKilled", cause)
	}
	if ctx2.Err() != nil {
		t.Fatal("bystander's context canceled by someone else's kill")
	}

	r.Finish(a2, CompletedQuery{Outcome: "ok"})
	if r.Kill(a2.ID) {
		t.Fatal("Kill(finished) = true; finished queries cannot be killed")
	}
	cancel2(nil)
}

// TestProgressSnapshot: updates land in the snapshot; nil is free.
func TestProgressSnapshot(t *testing.T) {
	var p *Progress
	p.AddStates(5)
	p.SetStage("kernel")
	if snap := p.Snapshot(); snap != (ProgressSnapshot{}) {
		t.Fatalf("nil Progress snapshot = %+v, want zero", snap)
	}

	p = &Progress{}
	p.SetStage("kernel")
	p.AddStates(256)
	p.AddStates(100)
	p.AddEdges(4096)
	p.AddRows(7)
	p.SetFrontier(42)
	want := ProgressSnapshot{Stage: "kernel", States: 356, Edges: 4096, Rows: 7, Frontier: 42}
	if snap := p.Snapshot(); snap != want {
		t.Fatalf("Snapshot = %+v, want %+v", snap, want)
	}
}

// TestTraceBindProgressSetsStage: spans opened on a progress-bound trace
// update the live stage.
func TestTraceBindProgressSetsStage(t *testing.T) {
	tr := NewTrace()
	p := &Progress{}
	tr.BindProgress(p)
	tr.Start("parse").End()
	if got := p.Snapshot().Stage; got != "parse" {
		t.Fatalf("stage = %q, want parse", got)
	}
	sp := tr.Start("kernel")
	if got := p.Snapshot().Stage; got != "kernel" {
		t.Fatalf("stage = %q, want kernel", got)
	}
	sp.End()

	// Unbound or nil: no panic, nothing recorded.
	NewTrace().Start("parse").End()
	tr.BindProgress(nil)
}
