package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceRecordsSpansInEndOrder(t *testing.T) {
	tr := NewTrace()
	outer := tr.Start("kernel")
	time.Sleep(time.Millisecond)
	outer.Counts(100, 7).End()
	tr.Start("enumerate").End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "kernel" || spans[1].Name != "enumerate" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].DurNS < int64(time.Millisecond) {
		t.Errorf("kernel span duration = %dns, want >= 1ms", spans[0].DurNS)
	}
	if spans[0].States != 100 || spans[0].Rows != 7 {
		t.Errorf("kernel span counts = (%d, %d), want (100, 7)", spans[0].States, spans[0].Rows)
	}
	if got := TotalStates(spans); got != 100 {
		t.Errorf("TotalStates = %d, want 100", got)
	}
	if got := TotalRows(spans); got != 7 {
		t.Errorf("TotalRows = %d, want 7", got)
	}
	s := SpansString(spans)
	if !strings.Contains(s, "kernel=") || !strings.Contains(s, "states=100 rows=7") {
		t.Errorf("SpansString = %q", s)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Start("x").Counts(1, 1).End() // must not panic
	tr.Set("plan", "p")
	if tr.Attr("plan") != "" {
		t.Error("nil trace returned an attribute")
	}
	if tr.Spans() != nil {
		t.Error("nil trace returned spans")
	}
	if tr.String() != "" {
		t.Errorf("nil trace String = %q", tr.String())
	}
}

func TestTraceAttrs(t *testing.T) {
	tr := NewTrace()
	tr.Set("plan", "dir=fwd scan=indexed workers=1 est=12")
	tr.Set("plan", "dir=bwd scan=dense workers=4 est=99")
	if got := tr.Attr("plan"); got != "dir=bwd scan=dense workers=4 est=99" {
		t.Errorf("Attr(plan) = %q", got)
	}
	if got := tr.Attr("missing"); got != "" {
		t.Errorf("Attr(missing) = %q", got)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Start("kernel").Counts(1, 0).End()
				tr.Set("plan", "p")
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("spans = %d, want 800", got)
	}
	if got := TotalStates(tr.Spans()); got != 800 {
		t.Fatalf("TotalStates = %d, want 800", got)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.001, 0.002, 0.05, 99} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-99.0535) > 1e-9 {
		t.Fatalf("Sum = %g, want 99.0535", h.Sum())
	}
	// Bounds are le-inclusive: 0.001 lands in the first bucket.
	wantPerBucket := []int64{2, 1, 1}
	for i, want := range wantPerBucket {
		if got := h.buckets[i].Load(); got != want {
			t.Errorf("bucket[%d] = %d, want %d", i, got, want)
		}
	}
	if h.overflow.Load() != 1 {
		t.Errorf("overflow = %d, want 1", h.overflow.Load())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefBuckets())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("Sum = %g, want 8", h.Sum())
	}
}

func TestMetricWriterExposition(t *testing.T) {
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Counter("gq_accepted_total", "Queries admitted.", 42, nil)
	m.Gauge("gq_in_flight", "Queries running now.", 3, nil)
	m.Family("gq_graph_nodes", "Nodes per graph.", "gauge")
	m.Sample("gq_graph_nodes", 10, map[string]string{"graph": "diamond"})
	m.Sample("gq_graph_nodes", 20, map[string]string{"graph": "grid", "extra": "x"})
	h := NewHistogram([]float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	m.Histogram("gq_query_duration_seconds", "Latency.", h, nil)
	if err := m.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP gq_accepted_total Queries admitted.\n# TYPE gq_accepted_total counter\ngq_accepted_total 42\n",
		"# TYPE gq_in_flight gauge\ngq_in_flight 3\n",
		"gq_graph_nodes{graph=\"diamond\"} 10\n",
		"gq_graph_nodes{extra=\"x\",graph=\"grid\"} 20\n", // labels sorted by key
		"# TYPE gq_query_duration_seconds histogram\n",
		"gq_query_duration_seconds_bucket{le=\"0.1\"} 1\n",
		"gq_query_duration_seconds_bucket{le=\"1\"} 2\n",
		"gq_query_duration_seconds_bucket{le=\"+Inf\"} 3\n",
		"gq_query_duration_seconds_sum 5.55\n",
		"gq_query_duration_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
}
