package obs

import (
	"fmt"
	"os"
	"sync"
)

// RotatingWriter is a size-bounded append-only file sink for the query
// event log: when a write would push the current file past maxBytes, the
// file is rotated (path → path.1 → path.2 …, keeping the newest `keep`
// rotated files) and the write lands in a fresh file. Rotation happens
// between Write calls, never inside one — the query log emits each JSONL
// record as a single Write (one json.Encoder.Encode), so no record is ever
// torn across files and every rotated file is itself valid JSONL.
type RotatingWriter struct {
	path     string
	maxBytes int64
	keep     int

	mu   sync.Mutex
	f    *os.File
	size int64
}

// NewRotatingWriter opens (appending) or creates the log file at path.
// maxBytes <= 0 disables rotation; keep <= 0 keeps no rotated files (the
// old file is dropped at each roll).
func NewRotatingWriter(path string, maxBytes int64, keep int) (*RotatingWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &RotatingWriter{path: path, maxBytes: maxBytes, keep: keep, f: f, size: st.Size()}, nil
}

// Write appends one record, rotating first if the record would push the
// current file past the size bound. A record larger than maxBytes still
// lands whole in its own fresh file — size bounds never split a record.
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.maxBytes > 0 && w.size > 0 && w.size+int64(len(p)) > w.maxBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotate shifts the retained file chain up by one (path.keep-1 → path.keep,
// …, path → path.1), dropping the oldest, and reopens a fresh current file.
// Callers hold mu.
func (w *RotatingWriter) rotate() error {
	if err := w.f.Close(); err != nil {
		return err
	}
	if w.keep <= 0 {
		if err := os.Remove(w.path); err != nil && !os.IsNotExist(err) {
			return err
		}
	} else {
		os.Remove(fmt.Sprintf("%s.%d", w.path, w.keep))
		for i := w.keep - 1; i >= 1; i-- {
			os.Rename(fmt.Sprintf("%s.%d", w.path, i), fmt.Sprintf("%s.%d", w.path, i+1))
		}
		if err := os.Rename(w.path, w.path+".1"); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f, w.size = f, 0
	return nil
}

// Close closes the current file.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
