package obs

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRenderLabelsEscaping: label values are escaped per the Prometheus
// text exposition format 0.0.4 — backslash, double-quote, and line feed
// become \\, \", \n, and NOTHING else is escaped (Go's %q, the previous
// implementation, escaped tabs and non-ASCII too, which exposition parsers
// do not unescape).
func TestRenderLabelsEscaping(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  string // rendered {k="..."} payload
	}{
		{"plain", "bank", `{graph="bank"}`},
		{"quote", `say "hi"`, `{graph="say \"hi\""}`},
		{"backslash", `c:\graphs\bank`, `{graph="c:\\graphs\\bank"}`},
		{"newline", "line1\nline2", `{graph="line1\nline2"}`},
		{"all-three", "a\\b\"c\nd", `{graph="a\\b\"c\nd"}`},
		{"tab-passes-raw", "a\tb", "{graph=\"a\tb\"}"},
		{"utf8-passes-raw", "ügraph→", `{graph="ügraph→"}`},
		{"empty", "", `{graph=""}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := renderLabels(map[string]string{"graph": tc.value})
			if got != tc.want {
				t.Errorf("renderLabels(%q) = %s, want %s", tc.value, got, tc.want)
			}
		})
	}
}

// TestMetricWriterEscapedSample: the escaping survives the full sample
// rendering path (the unit a scraper actually parses).
func TestMetricWriterEscapedSample(t *testing.T) {
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Counter("gq_test_total", "Help.", 1, map[string]string{"q": "a\n\"b\"\\c"})
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	want := `gq_test_total{q="a\n\"b\"\\c"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, b.String())
	}
	// The escaped line must be exactly one line: a raw newline in a label
	// value would split the sample and corrupt the whole scrape.
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if line == "" {
			t.Fatalf("empty line in exposition:\n%s", b.String())
		}
	}
}

// TestHistogramObserveRenderRace: concurrent Observe against concurrent
// renders must be race-clean (run under -race), and after the dust settles
// the histogram must have counted every observation with the sum intact.
func TestHistogramObserveRenderRace(t *testing.T) {
	h := NewHistogram(DefBuckets())
	const (
		writers   = 8
		perWriter = 2000
	)
	values := []float64{0.0002, 0.004, 0.07, 1.5, 20} // spread across buckets + overflow
	stop := make(chan struct{})
	rendered := make(chan struct{})
	// Render continuously while observations land.
	go func() {
		defer close(rendered)
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := NewMetricWriter(io.Discard)
			m.Histogram("gq_race_test", "Help.", h, nil)
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(values[(w+i)%len(values)])
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	<-rendered

	const total = writers * perWriter
	if got := h.Count(); got != total {
		t.Fatalf("Count = %d, want %d", got, total)
	}
	var wantSum float64
	for i := 0; i < total; i++ {
		// Same value sequence the writers used, order-independent sum.
		wantSum += values[(i/perWriter+i%perWriter)%len(values)]
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("Sum = %g, want %g (±1e-6 rel)", got, wantSum)
	}
	// Bucket counts must also add up: cumulative +Inf == Count.
	var buckets int64
	for i := range h.buckets {
		buckets += h.buckets[i].Load()
	}
	buckets += h.overflow.Load()
	if buckets != total {
		t.Fatalf("bucket total = %d, want %d", buckets, total)
	}
}
