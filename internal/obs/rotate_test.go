package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRotatingWriterBoundary: records land whole — rotation happens between
// Write calls, so no record is torn across files, every file is valid
// JSONL, and no record is lost. The record size is chosen so the rotation
// boundary falls mid-stream repeatedly.
func TestRotatingWriterBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "query.jsonl")
	w, err := NewRotatingWriter(path, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Seq int    `json:"seq"`
		Pad string `json:"pad"`
	}
	const n = 40
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		// ~64 bytes per record: 4 records per file, so 10 rotations.
		if err := enc.Encode(rec{Seq: i, Pad: "0123456789012345678901234567890123456789"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Exactly the current file plus the two retained rotations exist.
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Fatalf("keep=2 retained a third rotated file: %v", err)
	}
	seen := make(map[int]bool)
	for _, p := range []string{path, path + ".1", path + ".2"} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatalf("expected file missing: %v", err)
		}
		st, _ := f.Stat()
		if st.Size() > 256 {
			t.Errorf("%s exceeds the size bound: %d bytes", p, st.Size())
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var r rec
			// A torn record fails to parse — the core of the guarantee.
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatalf("%s holds a torn record: %v (%q)", p, err, sc.Text())
			}
			seen[r.Seq] = true
		}
		f.Close()
	}
	// The retained window is contiguous and ends at the newest record.
	if !seen[n-1] {
		t.Fatal("newest record missing")
	}
	max := 0
	for s := range seen {
		if s > max {
			max = s
		}
	}
	for s := max - len(seen) + 1; s <= max; s++ {
		if !seen[s] {
			t.Fatalf("retained window has a hole at seq %d (seen %d records)", s, len(seen))
		}
	}
}

// TestRotatingWriterOversized: a record larger than maxBytes still lands
// whole in its own file.
func TestRotatingWriterOversized(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.jsonl")
	w, err := NewRotatingWriter(path, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	small := []byte(`{"seq":0}` + "\n")
	big := []byte(fmt.Sprintf(`{"seq":1,"pad":%q}`+"\n", make([]byte, 200)))
	if _, err := w.Write(small); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(big); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(big) {
		t.Fatalf("oversized record not whole in the fresh file: %q", got)
	}
	prev, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if string(prev) != string(small) {
		t.Fatalf("rotated file lost the earlier record: %q", prev)
	}
}

// TestRotatingWriterNoRotation: maxBytes 0 never rotates — the writer is a
// plain append-only file.
func TestRotatingWriterNoRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.jsonl")
	w, err := NewRotatingWriter(path, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := fmt.Fprintf(w, "{\"seq\":%d}\n", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatal("maxBytes=0 rotated")
	}
}
