package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// This file renders metrics in the Prometheus text exposition format
// (version 0.0.4) with no dependency beyond the stdlib: a MetricWriter
// that emits `# HELP` / `# TYPE` headers and samples, and a Histogram
// whose Observe path is lock-free so the HTTP handlers can record
// latencies without contending with the scraper.

// MetricWriter accumulates one scrape's worth of samples. Emit families
// with Counter/Gauge/Histogram in the order they should appear; labels are
// rendered sorted by key so output is deterministic.
type MetricWriter struct {
	w   io.Writer
	err error
}

// NewMetricWriter writes the exposition to w.
func NewMetricWriter(w io.Writer) *MetricWriter { return &MetricWriter{w: w} }

// Err returns the first write error encountered, if any.
func (m *MetricWriter) Err() error { return m.err }

func (m *MetricWriter) printf(format string, args ...any) {
	if m.err == nil {
		_, m.err = fmt.Fprintf(m.w, format, args...)
	}
}

func (m *MetricWriter) header(name, help, typ string) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter emits one counter family with a single sample.
func (m *MetricWriter) Counter(name, help string, value int64, labels map[string]string) {
	m.header(name, help, "counter")
	m.Sample(name, value, labels)
}

// Gauge emits one gauge family with a single sample.
func (m *MetricWriter) Gauge(name, help string, value int64, labels map[string]string) {
	m.header(name, help, "gauge")
	m.Sample(name, value, labels)
}

// Family emits only the HELP/TYPE header; follow with Sample calls when a
// family has several label sets (e.g. one sample per graph).
func (m *MetricWriter) Family(name, help, typ string) { m.header(name, help, typ) }

// Sample emits one sample line for an already-declared family.
func (m *MetricWriter) Sample(name string, value int64, labels map[string]string) {
	m.printf("%s%s %d\n", name, renderLabels(labels), value)
}

// SampleFloat emits one float-valued sample line for an already-declared
// family, rendered with %g like bucket bounds and histogram sums.
func (m *MetricWriter) SampleFloat(name string, value float64, labels map[string]string) {
	m.printf("%s%s %g\n", name, renderLabels(labels), value)
}

// Histogram emits the cumulative-bucket exposition of h as one family.
func (m *MetricWriter) Histogram(name, help string, h *Histogram, labels map[string]string) {
	m.header(name, help, "histogram")
	m.HistogramSample(name, h, labels)
}

// HistogramSample emits h's buckets/sum/count for an already-declared
// histogram family — use after Family("...", "...", "histogram") when one
// family carries several label sets (e.g. one histogram per stage).
func (m *MetricWriter) HistogramSample(name string, h *Histogram, labels map[string]string) {
	cum := int64(0)
	for i, le := range h.bounds {
		cum += h.buckets[i].Load()
		m.printf("%s_bucket%s %d\n", name, renderLabels(withLE(labels, formatBound(le))), cum)
	}
	cum += h.overflow.Load()
	m.printf("%s_bucket%s %d\n", name, renderLabels(withLE(labels, "+Inf")), cum)
	m.printf("%s_sum%s %g\n", name, renderLabels(labels), h.Sum())
	m.printf("%s_count%s %d\n", name, renderLabels(labels), h.Count())
}

func withLE(labels map[string]string, le string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	out["le"] = le
	return out
}

// formatBound renders a bucket bound the way Prometheus clients do:
// the shortest representation that round-trips.
func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text exposition
// format 0.0.4: backslash, double-quote, and line feed become \\, \", and
// \n; every other byte (tabs, UTF-8 runes) passes through verbatim. Go's
// %q is NOT equivalent — it escapes tabs and non-ASCII too, which parsers
// of the exposition format do not unescape.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free:
// per-bucket atomic counters, an atomic observation count, and a float64
// sum maintained by compare-and-swap on its bit pattern. Readers see a
// consistent-enough snapshot for monitoring (Prometheus semantics — the
// scrape is not a linearizable transaction).
type Histogram struct {
	bounds   []float64 // ascending upper bounds, le-inclusive
	buckets  []atomic.Int64
	overflow atomic.Int64
	count    atomic.Int64
	sumBits  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b))}
}

// DefBuckets are the default latency buckets in seconds: 100µs … 10s in
// roughly 1-2.5-5 steps, matching the spread between a warm plan-cache hit
// and a budget-bounded worst case.
func DefBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound is >= v (bounds are le-inclusive).
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.buckets[i].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }
