package obs

import "sync/atomic"

// Progress is the live instrument of one in-flight query: a handful of
// independent atomics the evaluation layers update as the query runs, and
// the introspection endpoints sample without stopping it. The hot loop
// never touches it directly — the product-graph kernel folds its updates
// into the existing amortized meter tick (every pg.CheckInterval dequeued
// states), so progress sampling adds no new branches to the fixpoint loop.
//
// All methods are nil-safe: a nil *Progress records nothing and costs one
// predictable branch, so unregistered call paths (gqd, library use, tests)
// pay nothing.
type Progress struct {
	stage    atomic.Pointer[string]
	states   atomic.Int64
	edges    atomic.Int64
	rows     atomic.Int64
	frontier atomic.Int64
	streamed atomic.Int64
}

// SetStage records the evaluation stage the query is in (parse, compile,
// plan, kernel, enumerate). Trace.Start calls it for every span opened on a
// progress-bound trace, so serving layers get stage sampling for free.
func (p *Progress) SetStage(name string) {
	if p == nil {
		return
	}
	p.stage.Store(&name)
}

// AddStates records n newly expanded product states.
func (p *Progress) AddStates(n int64) {
	if p != nil && n > 0 {
		p.states.Add(n)
	}
}

// AddEdges records n scanned adjacency entries.
func (p *Progress) AddEdges(n int64) {
	if p != nil && n > 0 {
		p.edges.Add(n)
	}
}

// AddRows records n produced result rows.
func (p *Progress) AddRows(n int64) {
	if p != nil && n > 0 {
		p.rows.Add(n)
	}
}

// AddStreamed records n result rows delivered to the client mid-stream —
// distinct from AddRows (rows produced by evaluation): under chunked
// delivery the two drift apart by the rows still buffered or dropped by a
// cursor skip, and an operator watching a live query wants both.
func (p *Progress) AddStreamed(n int64) {
	if p != nil && n > 0 {
		p.streamed.Add(n)
	}
}

// SetFrontier records the current BFS frontier length — a gauge, sampled at
// the kernel's amortized tick, so readers see how the live sweep is growing
// (or collapsing) rather than a historical peak.
func (p *Progress) SetFrontier(n int64) {
	if p != nil {
		p.frontier.Store(n)
	}
}

// ProgressSnapshot is a point-in-time copy of a Progress. Fields may be
// mutually torn by concurrent updates but are individually exact —
// Prometheus-style monitoring semantics, not a linearizable transaction.
type ProgressSnapshot struct {
	Stage    string `json:"stage"`
	States   int64  `json:"states"`
	Edges    int64  `json:"edges"`
	Rows     int64  `json:"rows"`
	Frontier int64  `json:"frontier"`
	Streamed int64  `json:"streamed,omitempty"`
}

// Snapshot samples the progress. A nil receiver yields the zero snapshot.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	snap := ProgressSnapshot{
		States:   p.states.Load(),
		Edges:    p.edges.Load(),
		Rows:     p.rows.Load(),
		Frontier: p.frontier.Load(),
		Streamed: p.streamed.Load(),
	}
	if s := p.stage.Load(); s != nil {
		snap.Stage = *s
	}
	return snap
}

// States returns the product states recorded so far.
func (p *Progress) States() int64 {
	if p == nil {
		return 0
	}
	return p.states.Load()
}

// Rows returns the result rows recorded so far.
func (p *Progress) Rows() int64 {
	if p == nil {
		return 0
	}
	return p.rows.Load()
}
