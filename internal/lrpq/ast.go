// Package lrpq implements RPQs with list variables (ℓ-RPQs, Section 3.1.4):
// regular expressions over Labels ∪ {a^z}, where an annotated atom a^z
// matches an a-labeled edge and appends that edge to the list bound to
// variable z. Results are path bindings (p, µ).
//
// Following the paper's design principle of compatibility with automata,
// expressions compile to variable-annotated NFAs (the document-spanner
// construction), which makes ⟦R{2}⟧ = ⟦R·R⟧ hold by definition — exactly
// the property that fails for GQL group variables (Example 1).
package lrpq

import (
	"fmt"
	"sort"
	"strings"

	"graphquery/internal/rpq"
)

// Expr is a node of the ℓ-RPQ AST.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Epsilon is ε.
type Epsilon struct{}

// Atom matches one edge. If Wild is false it requires label Name; if Wild is
// true it matches any label not in Except (the !S wildcard; empty Except is
// "_"). If Var is non-empty, the matched edge is appended to Var's list.
type Atom struct {
	Name   string
	Wild   bool
	Except []string
	Var    string
}

// Concat is R₁·…·Rₙ.
type Concat struct{ Parts []Expr }

// Union is R₁+…+Rₙ.
type Union struct{ Alts []Expr }

// Star is R*.
type Star struct{ Sub Expr }

// Repeat is R{Min,Max}; Max < 0 means unbounded.
type Repeat struct {
	Sub Expr
	Min int
	Max int
}

func (Epsilon) isExpr() {}
func (Atom) isExpr()    {}
func (Concat) isExpr()  {}
func (Union) isExpr()   {}
func (Star) isExpr()    {}
func (Repeat) isExpr()  {}

func (Epsilon) String() string { return "()" }

func (a Atom) String() string {
	var base string
	switch {
	case !a.Wild:
		base = rpq.Label{Name: a.Name}.String()
	case len(a.Except) == 0:
		base = "_"
	default:
		parts := make([]string, len(a.Except))
		for i, s := range a.Except {
			parts[i] = rpq.Label{Name: s}.String()
		}
		base = "!{" + strings.Join(parts, ",") + "}"
	}
	if a.Var != "" {
		return base + "^" + a.Var
	}
	return base
}

func (c Concat) String() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = childString(p, 2)
	}
	return strings.Join(parts, " ")
}

func (u Union) String() string {
	parts := make([]string, len(u.Alts))
	for i, a := range u.Alts {
		parts[i] = childString(a, 2)
	}
	return strings.Join(parts, " | ")
}

func (s Star) String() string { return childString(s.Sub, 3) + "*" }

func (r Repeat) String() string {
	sub := childString(r.Sub, 3)
	switch {
	case r.Min == 0 && r.Max == 1:
		return sub + "?"
	case r.Min == 1 && r.Max < 0:
		return sub + "+"
	case r.Max < 0:
		return fmt.Sprintf("%s{%d,}", sub, r.Min)
	case r.Min == r.Max:
		return fmt.Sprintf("%s{%d}", sub, r.Min)
	default:
		return fmt.Sprintf("%s{%d,%d}", sub, r.Min, r.Max)
	}
}

// childString parenthesizes children whose operator precedence is lower
// than the parent context (union = 1, concatenation = 2, postfix/atoms = 3).
func childString(e Expr, parent int) string {
	var prec int
	switch e.(type) {
	case Epsilon, Atom, Star, Repeat:
		prec = 3
	case Concat:
		prec = 2
	case Union:
		prec = 1
	}
	s := e.String()
	if prec < parent {
		return "(" + s + ")"
	}
	return s
}

// Constructors.

// Eps returns ε.
func Eps() Expr { return Epsilon{} }

// L returns the plain atom for label a.
func L(a string) Expr { return Atom{Name: a} }

// Seq returns the concatenation of parts.
func Seq(parts ...Expr) Expr {
	switch len(parts) {
	case 0:
		return Epsilon{}
	case 1:
		return parts[0]
	default:
		return Concat{Parts: parts}
	}
}

// Alt returns the disjunction of alternatives.
func Alt(alts ...Expr) Expr {
	switch len(alts) {
	case 0:
		panic("lrpq: Alt needs at least one alternative")
	case 1:
		return alts[0]
	default:
		return Union{Alts: alts}
	}
}

// Kleene returns R*.
func Kleene(e Expr) Expr { return Star{Sub: e} }

// PlusOf returns R⁺.
func PlusOf(e Expr) Expr { return Repeat{Sub: e, Min: 1, Max: -1} }

// Opt returns R?.
func Opt(e Expr) Expr { return Repeat{Sub: e, Min: 0, Max: 1} }

// Times returns R{n}.
func Times(e Expr, n int) Expr { return Repeat{Sub: e, Min: n, Max: n} }

// Vars returns Var(R): the sorted set of list variables occurring in e.
func Vars(e Expr) []string {
	set := map[string]struct{}{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case Atom:
			if n.Var != "" {
				set[n.Var] = struct{}{}
			}
		case Concat:
			for _, p := range n.Parts {
				walk(p)
			}
		case Union:
			for _, a := range n.Alts {
				walk(a)
			}
		case Star:
			walk(n.Sub)
		case Repeat:
			walk(n.Sub)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Desugar expands Repeat into the core grammar.
func Desugar(e Expr) Expr {
	switch n := e.(type) {
	case Epsilon, Atom:
		return e
	case Concat:
		parts := make([]Expr, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = Desugar(p)
		}
		return Concat{Parts: parts}
	case Union:
		alts := make([]Expr, len(n.Alts))
		for i, a := range n.Alts {
			alts[i] = Desugar(a)
		}
		return Union{Alts: alts}
	case Star:
		return Star{Sub: Desugar(n.Sub)}
	case Repeat:
		sub := Desugar(n.Sub)
		var parts []Expr
		for i := 0; i < n.Min; i++ {
			parts = append(parts, sub)
		}
		switch {
		case n.Max < 0:
			parts = append(parts, Star{Sub: sub})
		case n.Max < n.Min:
			panic(fmt.Sprintf("lrpq: invalid repetition {%d,%d}", n.Min, n.Max))
		default:
			opt := Union{Alts: []Expr{Epsilon{}, sub}}
			for i := n.Min; i < n.Max; i++ {
				parts = append(parts, opt)
			}
		}
		return Seq(parts...)
	default:
		panic(fmt.Sprintf("lrpq: unknown expression type %T", e))
	}
}

// Erase removes all variable annotations, yielding the underlying plain RPQ.
func Erase(e Expr) rpq.Expr {
	switch n := e.(type) {
	case Epsilon:
		return rpq.Eps()
	case Atom:
		if n.Wild {
			return rpq.Not(n.Except...)
		}
		return rpq.L(n.Name)
	case Concat:
		parts := make([]rpq.Expr, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = Erase(p)
		}
		return rpq.Seq(parts...)
	case Union:
		alts := make([]rpq.Expr, len(n.Alts))
		for i, a := range n.Alts {
			alts[i] = Erase(a)
		}
		return rpq.Alt(alts...)
	case Star:
		return rpq.Kleene(Erase(n.Sub))
	case Repeat:
		return rpq.Between(Erase(n.Sub), n.Min, n.Max)
	default:
		panic(fmt.Sprintf("lrpq: unknown expression type %T", e))
	}
}

// FromRPQ lifts a plain RPQ into an ℓ-RPQ with no variables.
func FromRPQ(e rpq.Expr) Expr {
	switch n := e.(type) {
	case rpq.Epsilon:
		return Eps()
	case rpq.Label:
		return L(n.Name)
	case rpq.NotIn:
		return Atom{Wild: true, Except: append([]string(nil), n.Set...)}
	case rpq.Concat:
		parts := make([]Expr, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = FromRPQ(p)
		}
		return Seq(parts...)
	case rpq.Union:
		alts := make([]Expr, len(n.Alts))
		for i, a := range n.Alts {
			alts[i] = FromRPQ(a)
		}
		return Alt(alts...)
	case rpq.Star:
		return Kleene(FromRPQ(n.Sub))
	case rpq.Repeat:
		return Repeat{Sub: FromRPQ(n.Sub), Min: n.Min, Max: n.Max}
	default:
		panic(fmt.Sprintf("lrpq: unknown rpq expression type %T", e))
	}
}
