package lrpq

import (
	"fmt"

	"graphquery/internal/automata"
)

// VTransition is a variable-annotated NFA transition: it consumes one edge
// matching Guard and, if Var is non-empty, appends that edge to Var's list.
type VTransition struct {
	Guard automata.Guard
	Var   string
	To    int
}

// VNFA is a variable-annotated NFA — the ℓ-RPQ analogue of the document-
// spanner variable-set automaton. Because variables annotate transitions
// (not states), the translation from expressions is the plain Glushkov
// construction and preserves all regular identities, in particular
// ⟦R{2}⟧ = ⟦R·R⟧ (Section 3.1.4).
type VNFA struct {
	NumStates int
	Start     int
	Accept    []bool
	Trans     [][]VTransition
}

// Compile builds the Glushkov automaton of an ℓ-RPQ with annotated
// positions.
func Compile(e Expr) *VNFA {
	core := Desugar(e)
	g := &vglushkov{}
	info := g.analyze(core)
	a := &VNFA{
		NumStates: len(g.positions) + 1,
		Start:     0,
		Accept:    make([]bool, len(g.positions)+1),
		Trans:     make([][]VTransition, len(g.positions)+1),
	}
	if info.nullable {
		a.Accept[0] = true
	}
	addT := func(from, pos int) {
		p := g.positions[pos]
		a.Trans[from] = append(a.Trans[from], VTransition{Guard: p.guard, Var: p.varName, To: pos + 1})
	}
	for _, p := range info.first {
		addT(0, p)
	}
	for p, follows := range g.follow {
		for _, q := range follows {
			addT(p+1, q)
		}
	}
	for _, p := range info.last {
		a.Accept[p+1] = true
	}
	return a
}

type vposition struct {
	guard   automata.Guard
	varName string
}

type vglushkov struct {
	positions []vposition
	follow    [][]int
}

type vinfo struct {
	nullable bool
	first    []int
	last     []int
}

func (g *vglushkov) newPos(p vposition) int {
	g.positions = append(g.positions, p)
	g.follow = append(g.follow, nil)
	return len(g.positions) - 1
}

func (g *vglushkov) analyze(e Expr) vinfo {
	switch n := e.(type) {
	case Epsilon:
		return vinfo{nullable: true}
	case Atom:
		var guard automata.Guard
		if n.Wild {
			guard = automata.GuardNotIn(n.Except...)
		} else {
			guard = automata.GuardLabel(n.Name)
		}
		p := g.newPos(vposition{guard: guard, varName: n.Var})
		return vinfo{first: []int{p}, last: []int{p}}
	case Concat:
		if len(n.Parts) == 0 {
			return vinfo{nullable: true}
		}
		acc := g.analyze(n.Parts[0])
		for _, part := range n.Parts[1:] {
			next := g.analyze(part)
			for _, l := range acc.last {
				g.follow[l] = append(g.follow[l], next.first...)
			}
			merged := vinfo{nullable: acc.nullable && next.nullable}
			merged.first = append(merged.first, acc.first...)
			if acc.nullable {
				merged.first = append(merged.first, next.first...)
			}
			merged.last = append(merged.last, next.last...)
			if next.nullable {
				merged.last = append(merged.last, acc.last...)
			}
			acc = merged
		}
		return acc
	case Union:
		var out vinfo
		for _, alt := range n.Alts {
			ai := g.analyze(alt)
			out.nullable = out.nullable || ai.nullable
			out.first = append(out.first, ai.first...)
			out.last = append(out.last, ai.last...)
		}
		return out
	case Star:
		si := g.analyze(n.Sub)
		for _, l := range si.last {
			g.follow[l] = append(g.follow[l], si.first...)
		}
		return vinfo{nullable: true, first: si.first, last: si.last}
	case Repeat:
		panic("lrpq: Compile requires desugared input (internal error)")
	default:
		panic(fmt.Sprintf("lrpq: unknown expression type %T", e))
	}
}

// Erased returns the plain NFA obtained by dropping variable annotations;
// useful for reachability pre-checks.
func (a *VNFA) Erased() *automata.NFA {
	out := automata.NewNFA(a.NumStates, a.Start)
	for q := 0; q < a.NumStates; q++ {
		if a.Accept[q] {
			out.SetAccept(q)
		}
		for _, t := range a.Trans[q] {
			out.AddTransition(q, t.Guard, t.To)
		}
	}
	return out
}
