package lrpq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the textual ℓ-RPQ syntax, which extends the RPQ syntax of
// package rpq with variable annotations on atoms:
//
//	(Transfer^z)* isBlocked
//	(a a^z | a^z a)*
//	_^z  !{a,b}^w
//
// An annotation ^z may follow a label, '_', or a '!{…}' wildcard.
func Parse(input string) (Expr, error) {
	p := &parser{src: input}
	p.next()
	if p.tok.kind == tEOF {
		return nil, p.errorf("empty expression")
	}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errorf("unexpected %s", p.tok)
	}
	return e, nil
}

// MustParse parses or panics.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tkind int

const (
	tEOF tkind = iota
	tIdent
	tPipe
	tStar
	tPlus
	tQuest
	tDot
	tLParen
	tRParen
	tLBrace
	tRBrace
	tComma
	tBangBrace
	tUnder
	tNumber
	tCaret
)

type tok struct {
	kind tkind
	text string
	pos  int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type parser struct {
	src string
	pos int
	tok tok
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("lrpq: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) next() {
	for p.pos < len(p.src) && strings.ContainsRune(" \t\n\r", rune(p.src[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = tok{kind: tEOF, pos: start}
		return
	}
	c := p.src[p.pos]
	single := map[byte]tkind{
		'|': tPipe, '*': tStar, '+': tPlus, '?': tQuest, '.': tDot,
		'(': tLParen, ')': tRParen, '{': tLBrace, '}': tRBrace,
		',': tComma, '^': tCaret,
	}
	if k, ok := single[c]; ok {
		p.pos++
		p.tok = tok{k, string(c), start}
		return
	}
	switch {
	case c == '!':
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '{' {
			p.pos += 2
			p.tok = tok{tBangBrace, "!{", start}
			return
		}
		p.pos++
		p.tok = tok{tIdent, "!", start}
	case c == '\'':
		p.pos++
		var b strings.Builder
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			if p.src[p.pos] == '\\' && p.pos+1 < len(p.src) {
				p.pos++
			}
			b.WriteByte(p.src[p.pos])
			p.pos++
		}
		if p.pos < len(p.src) {
			p.pos++
		}
		p.tok = tok{tIdent, b.String(), start}
	case c >= '0' && c <= '9':
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		p.tok = tok{tNumber, p.src[start:p.pos], start}
	default:
		if c == '_' || unicode.IsLetter(rune(c)) || c >= 0x80 {
			for p.pos < len(p.src) {
				r := rune(p.src[p.pos])
				if r < 0x80 && r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					break
				}
				p.pos++
			}
			text := p.src[start:p.pos]
			if text == "_" {
				p.tok = tok{tUnder, "_", start}
				return
			}
			p.tok = tok{tIdent, text, start}
			return
		}
		p.tok = tok{tIdent, string(c), start}
		p.pos++
	}
}

func (p *parser) parseUnion() (Expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []Expr{first}
	for p.tok.kind == tPipe {
		p.next()
		e, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, e)
	}
	return Alt(alts...), nil
}

func (p *parser) parseConcat() (Expr, error) {
	var parts []Expr
	for {
		switch p.tok.kind {
		case tIdent, tUnder, tBangBrace, tLParen:
			e, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		case tDot:
			p.next()
		default:
			if len(parts) == 0 {
				return nil, p.errorf("expected expression, got %s", p.tok)
			}
			return Seq(parts...), nil
		}
	}
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tStar:
			e = Kleene(e)
			p.next()
		case tPlus:
			e = PlusOf(e)
			p.next()
		case tQuest:
			e = Opt(e)
			p.next()
		case tLBrace:
			p.next()
			if p.tok.kind != tNumber {
				return nil, p.errorf("expected repetition count, got %s", p.tok)
			}
			min, _ := strconv.Atoi(p.tok.text)
			p.next()
			max := min
			if p.tok.kind == tComma {
				p.next()
				switch p.tok.kind {
				case tNumber:
					max, _ = strconv.Atoi(p.tok.text)
					p.next()
				case tRBrace:
					max = -1
				default:
					return nil, p.errorf("expected upper bound or '}', got %s", p.tok)
				}
			}
			if p.tok.kind != tRBrace {
				return nil, p.errorf("expected '}', got %s", p.tok)
			}
			if max >= 0 && max < min {
				return nil, p.errorf("invalid repetition {%d,%d}", min, max)
			}
			p.next()
			e = Repeat{Sub: e, Min: min, Max: max}
		default:
			return e, nil
		}
	}
}

// parseVarSuffix consumes an optional ^var suffix.
func (p *parser) parseVarSuffix() (string, error) {
	if p.tok.kind != tCaret {
		return "", nil
	}
	p.next()
	if p.tok.kind != tIdent {
		return "", p.errorf("expected variable name after '^', got %s", p.tok)
	}
	v := p.tok.text
	p.next()
	return v, nil
}

func (p *parser) parseAtom() (Expr, error) {
	switch p.tok.kind {
	case tIdent:
		if p.tok.text == "!" {
			return nil, p.errorf("'!' must be followed by '{'")
		}
		name := p.tok.text
		p.next()
		v, err := p.parseVarSuffix()
		if err != nil {
			return nil, err
		}
		return Atom{Name: name, Var: v}, nil
	case tUnder:
		p.next()
		v, err := p.parseVarSuffix()
		if err != nil {
			return nil, err
		}
		return Atom{Wild: true, Var: v}, nil
	case tBangBrace:
		p.next()
		var set []string
		for {
			if p.tok.kind != tIdent {
				return nil, p.errorf("expected label in wildcard set, got %s", p.tok)
			}
			set = append(set, p.tok.text)
			p.next()
			if p.tok.kind == tComma {
				p.next()
				continue
			}
			break
		}
		if p.tok.kind != tRBrace {
			return nil, p.errorf("expected '}' closing wildcard set, got %s", p.tok)
		}
		p.next()
		v, err := p.parseVarSuffix()
		if err != nil {
			return nil, err
		}
		return Atom{Wild: true, Except: set, Var: v}, nil
	case tLParen:
		p.next()
		if p.tok.kind == tRParen {
			p.next()
			return Eps(), nil
		}
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tRParen {
			return nil, p.errorf("expected ')', got %s", p.tok)
		}
		p.next()
		return e, nil
	default:
		return nil, p.errorf("expected expression, got %s", p.tok)
	}
}
