package lrpq

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"graphquery/internal/eval"
	"graphquery/internal/gpath"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
)

// ErrUnbounded mirrors eval.ErrUnbounded for ℓ-RPQ enumeration: ⟦R⟧_G can be
// infinite (Section 6.3 "Path and List Variables"), so mode all requires a
// bound.
var ErrUnbounded = errors.New("lrpq: unbounded enumeration under mode all requires MaxLen or Limit")

// Options bound result enumeration.
type Options struct {
	MaxLen int // bound on path length; 0 = unbounded
	Limit  int // bound on result count; 0 = unlimited (truncates, never errors)
	// Meter, when non-nil, enforces cooperative cancellation and per-query
	// resource budgets (product states visited, result rows) — shared by a
	// serving layer across all stages of one query.
	Meter *eval.Meter
	// Counters (may be nil) receives runtime counters (states expanded
	// by the search loops and kernel sweeps).
	Counters *pg.Counters
}

// EvalBetween computes m(σ_{u,v}(⟦R⟧_G)) — the path bindings between fixed
// endpoints under a path mode, with mode applied after endpoint selection
// exactly as in the restricted path homomorphisms of Section 3.1.5
// (Example 17's grouping by endpoint pairs).
//
// Results are (p, µ) pairs under set semantics, ordered by path length,
// then path key, then binding key. Distinct bindings over the same path are
// distinct results.
//
// With opts.Meter set, evaluation stops early with eval.ErrCanceled or
// eval.ErrBudgetExceeded; without one these errors are impossible.
func EvalBetween(g *graph.Graph, e Expr, src, dst int, mode eval.Mode, opts Options) ([]gpath.PathBinding, error) {
	a := Compile(e)
	m := opts.Meter
	switch mode {
	case eval.All:
		if opts.MaxLen <= 0 && opts.Limit <= 0 {
			return nil, ErrUnbounded
		}
		if opts.MaxLen <= 0 {
			return runBFSLimit(g, a, src, dst, opts.Limit, m, opts.Counters)
		}
		return runSearch(g, a, src, dst, opts, nil, nil)
	case eval.Shortest:
		dist, best, err := productDistances(g, a, src, dst, m, opts.Counters)
		if err != nil {
			return nil, err
		}
		if best == -1 {
			return nil, nil
		}
		return runTight(g, a, src, dst, dist, best, m, opts.Counters)
	case eval.Simple:
		return runSearch(g, a, src, dst, opts, map[int]struct{}{src: {}}, nil)
	case eval.Trail:
		return runSearch(g, a, src, dst, opts, nil, map[int]struct{}{})
	default:
		return nil, fmt.Errorf("lrpq: unknown mode %v", mode)
	}
}

// EvalBetweenCtx is EvalBetween under a context: when opts.Meter is unset,
// one is minted from ctx (with no budget) so cancellation reaches the
// enumeration loops.
func EvalBetweenCtx(ctx context.Context, g *graph.Graph, e Expr, src, dst int, mode eval.Mode, opts Options) ([]gpath.PathBinding, error) {
	if opts.Meter == nil {
		opts.Meter = eval.NewMeter(ctx, eval.Budget{})
	}
	return EvalBetween(g, e, src, dst, mode, opts)
}

// Eval enumerates ⟦R⟧_G from every source node, bounded by opts (the raw
// semantics of Section 3.1.4, which may be infinite without bounds).
// MaxLen is required; Limit alone would need a global shortest-first merge.
func Eval(g *graph.Graph, e Expr, opts Options) ([]gpath.PathBinding, error) {
	if opts.MaxLen <= 0 {
		return nil, ErrUnbounded
	}
	a := Compile(e)
	var out []gpath.PathBinding
	for src := 0; src < g.NumNodes(); src++ {
		if !g.NodeAlive(src) { // tombstoned under a mutation overlay
			continue
		}
		res, err := runSearchCompiled(g, a, src, -1, opts, nil, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return sortPBs(out, opts.Limit), nil
}

// runBFSLimit enumerates (p, µ) shortest-first until limit results, for
// mode-all queries bounded only by Limit. Breadth-first layering guarantees
// termination and nondecreasing path lengths. Budget checks run through the
// runtime's Ticker (as in all search loops of this package).
func runBFSLimit(g *graph.Graph, a *VNFA, src, dst, limit int, m *eval.Meter, cnt *pg.Counters) ([]gpath.PathBinding, error) {
	type cfg struct {
		node, state int
		edges       []int
		vars        []string
	}
	queue := []cfg{{node: src, state: a.Start}}
	seen := map[string]struct{}{}
	var out []gpath.PathBinding
	tick := pg.NewTicker(m, cnt)
	for len(queue) > 0 && len(out) < limit {
		if err := tick.Step(); err != nil {
			return nil, err
		}
		c := queue[0]
		queue = queue[1:]
		if a.Accept[c.state] && (dst == -1 || c.node == dst) {
			pb := gpath.PathBinding{Path: buildPath(g, src, c.edges), Binding: buildBinding(g, c.edges, c.vars)}
			k := pb.Key()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, pb)
				if err := m.AddRows(1); err != nil {
					return nil, err
				}
				if len(out) == limit {
					break
				}
			}
		}
		for _, ei := range g.Out(c.node) {
			lab := g.Edge(ei).Label
			for _, tr := range a.Trans[c.state] {
				if tr.Guard.Matches(lab) {
					ne := make([]int, len(c.edges)+1)
					copy(ne, c.edges)
					ne[len(c.edges)] = ei
					nv := make([]string, len(c.vars)+1)
					copy(nv, c.vars)
					nv[len(c.vars)] = tr.Var
					queue = append(queue, cfg{node: g.Edge(ei).Tgt, state: tr.To, edges: ne, vars: nv})
				}
			}
		}
	}
	if err := tick.Flush(); err != nil {
		return nil, err
	}
	return out, nil
}

func sortPBs(pbs []gpath.PathBinding, limit int) []gpath.PathBinding {
	sort.Slice(pbs, func(i, j int) bool {
		pi, pj := pbs[i], pbs[j]
		if pi.Path.Len() != pj.Path.Len() {
			return pi.Path.Len() < pj.Path.Len()
		}
		if ki, kj := pi.Path.Key(), pj.Path.Key(); ki != kj {
			return ki < kj
		}
		return pi.Binding.Key() < pj.Binding.Key()
	})
	if limit > 0 && len(pbs) > limit {
		pbs = pbs[:limit]
	}
	return pbs
}

// runSearch enumerates (p, µ) by DFS over the annotated product. dst = -1
// accepts any endpoint. usedNodes non-nil enforces simple paths; usedEdges
// non-nil enforces trails.
func runSearch(g *graph.Graph, a *VNFA, src, dst int, opts Options,
	usedNodes, usedEdges map[int]struct{}) ([]gpath.PathBinding, error) {
	return runSearchCompiled(g, a, src, dst, opts, usedNodes, usedEdges)
}

func runSearchCompiled(g *graph.Graph, a *VNFA, src, dst int, opts Options,
	usedNodes, usedEdges map[int]struct{}) ([]gpath.PathBinding, error) {

	m := opts.Meter
	seen := map[string]struct{}{}
	var out []gpath.PathBinding
	var edges []int
	var vars []string // variable per traversed edge ("" for none)
	limitHit := false
	var stopErr error
	tick := pg.NewTicker(m, opts.Counters)

	restricted := usedNodes != nil || usedEdges != nil

	emit := func(node int) {
		p := buildPath(g, src, edges)
		mu := buildBinding(g, edges, vars)
		pb := gpath.PathBinding{Path: p, Binding: mu}
		k := pb.Key()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, pb)
			if err := m.AddRows(1); err != nil {
				stopErr = err
				return
			}
			if opts.Limit > 0 && len(out) >= opts.Limit && restricted {
				limitHit = true
			}
		}
	}

	var dfs func(node, state int)
	dfs = func(node, state int) {
		if limitHit || stopErr != nil {
			return
		}
		if err := tick.Step(); err != nil {
			stopErr = err
			return
		}
		if a.Accept[state] && (dst == -1 || node == dst) {
			emit(node)
			if stopErr != nil {
				return
			}
		}
		if opts.MaxLen > 0 && len(edges) == opts.MaxLen {
			return
		}
		for _, ei := range g.Out(node) {
			lab := g.Edge(ei).Label
			if usedEdges != nil {
				if _, used := usedEdges[ei]; used {
					continue
				}
			}
			tgt := g.Edge(ei).Tgt
			if usedNodes != nil {
				if _, used := usedNodes[tgt]; used {
					continue
				}
			}
			for _, tr := range a.Trans[state] {
				if !tr.Guard.Matches(lab) {
					continue
				}
				if usedEdges != nil {
					usedEdges[ei] = struct{}{}
				}
				if usedNodes != nil {
					usedNodes[tgt] = struct{}{}
				}
				edges = append(edges, ei)
				vars = append(vars, tr.Var)
				dfs(tgt, tr.To)
				edges = edges[:len(edges)-1]
				vars = vars[:len(vars)-1]
				if usedEdges != nil {
					delete(usedEdges, ei)
				}
				if usedNodes != nil {
					delete(usedNodes, tgt)
				}
			}
		}
	}
	dfs(src, a.Start)
	if stopErr == nil {
		stopErr = tick.Flush()
	}
	if stopErr != nil {
		return nil, stopErr
	}
	if restricted {
		return sortPBs(out, 0), nil
	}
	return sortPBs(out, opts.Limit), nil
}

func buildPath(g *graph.Graph, src int, edges []int) gpath.Path {
	p := gpath.OfNode(src)
	for _, ei := range edges {
		next, _ := gpath.Concat(g, p, gpath.Triple(g, ei))
		p = next
	}
	return p
}

func buildBinding(g *graph.Graph, edges []int, vars []string) gpath.Binding {
	var mu gpath.Binding
	for i, ei := range edges {
		if vars[i] == "" {
			continue
		}
		if mu == nil {
			mu = gpath.Binding{}
		}
		mu[vars[i]] = append(mu[vars[i]], graph.MakeEdgeObject(ei))
	}
	return mu
}

// productDistances computes (node, state) product distances ignoring
// variable annotations, on the unified runtime kernel over the erased NFA
// (annotations cannot change reachability, and VNFA state numbering is
// preserved by Erased), plus the minimal accepting distance at dst (-1 if
// unreachable).
func productDistances(g *graph.Graph, a *VNFA, src, dst int, m *eval.Meter, cnt *pg.Counters) (dist []int, best int, err error) {
	kern := pg.NewKernel(g, pg.FromNFA(g, a.Erased()), cnt)
	dist, err = kern.Distances(src, m)
	if err != nil {
		return nil, -1, err
	}
	best = -1
	for q := 0; q < a.NumStates; q++ {
		i := dst*a.NumStates + q
		if a.Accept[q] && dist[i] >= 0 && (best == -1 || dist[i] < best) {
			best = dist[i]
		}
	}
	return dist, best, nil
}

// runTight enumerates all shortest (p, µ) via tight product edges.
func runTight(g *graph.Graph, a *VNFA, src, dst int, dist []int, best int, m *eval.Meter, cnt *pg.Counters) ([]gpath.PathBinding, error) {
	id := func(node, state int) int { return node*a.NumStates + state }
	seen := map[string]struct{}{}
	var out []gpath.PathBinding
	var edges []int
	var vars []string
	var stopErr error
	tick := pg.NewTicker(m, cnt)
	var dfs func(node, state int)
	dfs = func(node, state int) {
		if stopErr != nil {
			return
		}
		if err := tick.Step(); err != nil {
			stopErr = err
			return
		}
		d := len(edges)
		if d == best {
			if node == dst && a.Accept[state] {
				pb := gpath.PathBinding{Path: buildPath(g, src, edges), Binding: buildBinding(g, edges, vars)}
				k := pb.Key()
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					out = append(out, pb)
					if err := m.AddRows(1); err != nil {
						stopErr = err
					}
				}
			}
			return
		}
		for _, ei := range g.Out(node) {
			lab := g.Edge(ei).Label
			tgt := g.Edge(ei).Tgt
			for _, tr := range a.Trans[state] {
				if tr.Guard.Matches(lab) && dist[id(tgt, tr.To)] == d+1 {
					edges = append(edges, ei)
					vars = append(vars, tr.Var)
					dfs(tgt, tr.To)
					edges = edges[:len(edges)-1]
					vars = vars[:len(vars)-1]
				}
			}
		}
	}
	dfs(src, a.Start)
	if stopErr == nil {
		stopErr = tick.Flush()
	}
	if stopErr != nil {
		return nil, stopErr
	}
	return sortPBs(out, 0), nil
}

// BindingsOnPath runs the ℓ-RPQ over one fixed path and returns the distinct
// bindings of its accepting runs — the per-path blowup measure of Section
// 6.3 (the ℓ-RPQ (aa^z + a^z a)* produces 2ⁿ bindings on a single 2n-edge
// path).
func BindingsOnPath(g *graph.Graph, e Expr, p gpath.Path) []gpath.Binding {
	a := Compile(e)
	edges := p.Edges()
	type cfg struct {
		state int
		vars  []string
	}
	cur := []cfg{{state: a.Start}}
	for _, ei := range edges {
		lab := g.Edge(ei).Label
		var next []cfg
		for _, c := range cur {
			for _, tr := range a.Trans[c.state] {
				if tr.Guard.Matches(lab) {
					nv := make([]string, len(c.vars)+1)
					copy(nv, c.vars)
					nv[len(c.vars)] = tr.Var
					next = append(next, cfg{state: tr.To, vars: nv})
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	seen := map[string]struct{}{}
	var out []gpath.Binding
	for _, c := range cur {
		if !a.Accept[c.state] {
			continue
		}
		mu := buildBinding(g, edges, c.vars)
		k := mu.Key()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, mu)
		}
	}
	return out
}
