package lrpq

import (
	"errors"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/gpath"
	"graphquery/internal/graph"
)

func TestParseAndString(t *testing.T) {
	tests := []struct{ in, want string }{
		{"a", "a"},
		{"a^z", "a^z"},
		{"(Transfer^z)* isBlocked", "Transfer^z* isBlocked"},
		{"(a a^z | a^z a)*", "(a a^z | a^z a)*"},
		{"_^z", "_^z"},
		{"!{a,b}^w", "!{a,b}^w"},
		{"a{2}", "a{2}"},
		{"(a^z){2,}", "a^z{2,}"},
	}
	for _, tc := range tests {
		e, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "a^", "a^*", "(a", "a{2,1}", "!{", "!a", "|"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestVars(t *testing.T) {
	e := MustParse("(a^z b^w | c^z)* d")
	got := Vars(e)
	if len(got) != 2 || got[0] != "w" || got[1] != "z" {
		t.Errorf("Vars = %v", got)
	}
}

func TestEraseAndFromRPQ(t *testing.T) {
	e := MustParse("(Transfer^z)+ isBlocked?")
	plain := Erase(e)
	if plain.String() != "Transfer+ isBlocked?" {
		t.Errorf("Erase = %q", plain.String())
	}
	lifted := FromRPQ(plain)
	if len(Vars(lifted)) != 0 {
		t.Error("FromRPQ must produce no variables")
	}
}

// TestExample16 reproduces Example 16: R = (Transfer^z)*·isBlocked on the
// Figure 2 graph. The expected bindings µ₁…µ₅ from the paper must all occur.
func TestExample16(t *testing.T) {
	g := gen.BankEdgeLabeled()
	e := MustParse("(Transfer^z)* isBlocked")
	results, err := Eval(g, e, Options{MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Index results by (path format, binding format).
	type row struct{ path, binding string }
	got := map[row]bool{}
	for _, pb := range results {
		got[row{pb.Path.Format(g), pb.Binding.Format(g)}] = true
	}
	want := []row{
		{"path(a4, r10, yes)", "{}"},                                  // µ₁: z ↦ list()
		{"path(a2, t3, a4, r10, yes)", "{z -> list(t3)}"},             // µ₂
		{"path(a3, t2, a2, t3, a4, r10, yes)", "{z -> list(t2, t3)}"}, // µ₃
		{"path(a3, t5, a2, t3, a4, r10, yes)", "{z -> list(t5, t3)}"}, // µ₄
		{"path(a3, r9, no)", "{}"},                                    // µ₅
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing result %v", w)
		}
	}
}

// TestExample17Shortest checks the endpoint-grouped shortest semantics: for
// (Transfer^z)+ the shortest a6→a5 list is (t10) and the shortest a3→a1
// list is (t7, t4) — each endpoint pair selects its own minimum.
func TestExample17Shortest(t *testing.T) {
	g := gen.BankEdgeLabeled()
	e := MustParse("(Transfer^z)+")
	jayToRebecca, err := EvalBetween(g, e, g.MustNode("a6"), g.MustNode("a5"), eval.Shortest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(jayToRebecca) != 1 || jayToRebecca[0].Binding.Format(g) != "{z -> list(t10)}" {
		t.Errorf("a6→a5 shortest = %v results", len(jayToRebecca))
		for _, pb := range jayToRebecca {
			t.Logf("  %s %s", pb.Path.Format(g), pb.Binding.Format(g))
		}
	}
	mikeToMegan, err := EvalBetween(g, e, g.MustNode("a3"), g.MustNode("a1"), eval.Shortest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mikeToMegan) != 1 || mikeToMegan[0].Binding.Format(g) != "{z -> list(t7, t4)}" {
		t.Errorf("a3→a1 shortest: got %d results", len(mikeToMegan))
		for _, pb := range mikeToMegan {
			t.Logf("  %s %s", pb.Path.Format(g), pb.Binding.Format(g))
		}
	}
}

// TestIterationEqualsConcat is the semantic law ⟦R{2}⟧ = ⟦R·R⟧ that holds
// for ℓ-RPQs by design (Section 3.1.4) and fails for GQL group variables
// (Example 1).
func TestIterationEqualsConcat(t *testing.T) {
	g := gen.BankEdgeLabeled()
	twice := MustParse("(Transfer^z){2}")
	concat := MustParse("Transfer^z Transfer^z")
	a, err := Eval(g, twice, Options{MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Eval(g, concat, Options{MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no results")
	}
	if len(a) != len(b) {
		t.Fatalf("R{2} gave %d results, R·R gave %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("result %d differs: %s vs %s", i, a[i].Key(), b[i].Key())
		}
	}
}

// TestBindingsOnPathBlowup is E18: the ℓ-RPQ (aa^z + a^z a)* yields exactly
// 2ⁿ distinct bindings on a single path of 2n a-edges.
func TestBindingsOnPathBlowup(t *testing.T) {
	e := MustParse("(a a^z | a^z a)*")
	for n := 1; n <= 7; n++ {
		g := gen.APath(2*n, "a")
		// The one matched path: v0 → v2n.
		pbs, err := EvalBetween(g, MustParse("(a a)*"), g.MustNode("v0"),
			g.MustNode(graph.NodeID("v"+itoa(2*n))), eval.Shortest, Options{})
		if err != nil || len(pbs) != 1 {
			t.Fatalf("n=%d: expected unique path, got %d (%v)", n, len(pbs), err)
		}
		bindings := BindingsOnPath(g, e, pbs[0].Path)
		if want := 1 << n; len(bindings) != want {
			t.Errorf("n=%d: bindings = %d, want %d", n, len(bindings), want)
		}
		for _, mu := range bindings {
			if got := len(mu.Get("z")); got != n {
				t.Errorf("n=%d: binding has %d edges in z, want %d", n, got, n)
			}
		}
	}
}

func TestBindingsOnPathRejects(t *testing.T) {
	g := gen.APath(3, "a")
	p, _ := gpath.New(g,
		graph.MakeNodeObject(g.MustNode("v0")),
		graph.MakeEdgeObject(g.MustEdge("e1")),
		graph.MakeNodeObject(g.MustNode("v1")))
	if got := BindingsOnPath(g, MustParse("(a a)*"), p); got != nil {
		t.Errorf("odd path should not match (aa)*: %v", got)
	}
	if got := BindingsOnPath(g, MustParse("b^z"), p); got != nil {
		t.Errorf("wrong label should not match: %v", got)
	}
}

func TestEvalBetweenModes(t *testing.T) {
	// u ⇄ v with a third node w: trails may use the 2-cycle, simple may not.
	g := graph.NewBuilder().
		AddNode("u", "", nil).AddNode("v", "", nil).AddNode("w", "", nil).
		AddEdge("e1", "a", "u", "v", nil).
		AddEdge("e2", "a", "v", "u", nil).
		AddEdge("e3", "a", "u", "w", nil).
		MustBuild()
	u, w := g.MustNode("u"), g.MustNode("w")
	e := MustParse("(a^z)+")
	simple, err := EvalBetween(g, e, u, w, eval.Simple, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(simple) != 1 || simple[0].Binding.Format(g) != "{z -> list(e3)}" {
		t.Errorf("simple: %d results", len(simple))
	}
	trail, err := EvalBetween(g, e, u, w, eval.Trail, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trail) != 2 {
		t.Errorf("trail: %d results, want 2", len(trail))
	}
	all, err := EvalBetween(g, e, u, w, eval.All, Options{MaxLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 { // lengths 1, 3, 5
		t.Errorf("all ≤5: %d results, want 3", len(all))
	}
}

func TestEvalBetweenLimitOnly(t *testing.T) {
	g := gen.Cycle(3, "a")
	pbs, err := EvalBetween(g, MustParse("(a^z)*"), 0, 0, eval.All, Options{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pbs) != 3 {
		t.Fatalf("limit-only: %d results", len(pbs))
	}
	for i, want := range []int{0, 3, 6} {
		if pbs[i].Path.Len() != want {
			t.Errorf("result %d length = %d, want %d", i, pbs[i].Path.Len(), want)
		}
		if got := len(pbs[i].Binding.Get("z")); got != want {
			t.Errorf("result %d |z| = %d, want %d", i, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	g := gen.Cycle(3, "a")
	if _, err := Eval(g, MustParse("a*"), Options{}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("Eval unbounded: %v", err)
	}
	if _, err := EvalBetween(g, MustParse("a*"), 0, 0, eval.All, Options{}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("EvalBetween unbounded: %v", err)
	}
}

func TestErasedAgreesWithEval(t *testing.T) {
	// Reachability of the erased automaton equals plain RPQ evaluation.
	g := gen.BankEdgeLabeled()
	e := MustParse("(Transfer^z)+")
	a := Compile(e).Erased()
	if !a.Accepts([]string{"Transfer", "Transfer"}) {
		t.Error("erased automaton must accept Transfer²")
	}
	if a.Accepts(nil) {
		t.Error("erased (Transfer)+ must reject ε")
	}
	_ = g
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
