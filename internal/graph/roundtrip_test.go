// Read→write→read round-trip tests over generated graphs: the JSON codec
// must be exact, the CSV codec exact for shape-stable values, and both must
// export the LIVE state of a mutated (overlay) graph.
package graph_test

import (
	"bytes"
	"fmt"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
)

// jsonDump serializes g; WriteJSON is deterministic (index order, sorted
// map keys), so byte equality is state equality for graphs built in the
// same element order.
func jsonDump(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteJSON(&buf, g); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

func TestJSONRoundTripRandomGraphs(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := gen.Random(40, 120, []string{"a", "b", "c"}, seed)
		first := jsonDump(t, g)
		back, err := graph.ReadJSON(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("seed %d: ReadJSON: %v", seed, err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("seed %d: round-trip size %d/%d, want %d/%d",
				seed, back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
		}
		if second := jsonDump(t, back); !bytes.Equal(first, second) {
			t.Fatalf("seed %d: JSON round-trip is not a fixpoint", seed)
		}
	}
}

func TestCSVRoundTripRandomGraphs(t *testing.T) {
	// gen.Random carries int-valued properties only — shape-stable under
	// the CSV type inference, so the round-trip must be exact.
	for _, seed := range []int64{1, 2} {
		g := gen.Random(30, 90, []string{"x", "y"}, seed)
		var nodes, edges bytes.Buffer
		if err := graph.WriteCSV(&nodes, &edges, g); err != nil {
			t.Fatalf("seed %d: WriteCSV: %v", seed, err)
		}
		back, err := graph.ReadCSV(bytes.NewReader(nodes.Bytes()), bytes.NewReader(edges.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: ReadCSV: %v", seed, err)
		}
		if got, want := jsonDump(t, back), jsonDump(t, g); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: CSV round-trip changed the graph:\n%s\nvs\n%s", seed, got, want)
		}
	}
}

func TestCSVRoundTripValueShapes(t *testing.T) {
	g, err := graph.NewBuilder().
		AddNode("n1", "L", graph.Props{
			"i": graph.Int(-42),
			"f": graph.Float(2), // integral float must not come back as int
			"g": graph.Float(2.5),
			"b": graph.Bool(true),
			"s": graph.Str("plain text"),
		}).
		AddNode("n2", "L", nil).
		AddEdge("e1", "rel", "n1", "n2", graph.Props{"w": graph.Float(1e300)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var nodes, edges bytes.Buffer
	if err := graph.WriteCSV(&nodes, &edges, g); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := graph.ReadCSV(bytes.NewReader(nodes.Bytes()), bytes.NewReader(edges.Bytes()))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	n := back.MustNode("n1")
	for name, want := range map[string]graph.Value{
		"i": graph.Int(-42),
		"f": graph.Float(2),
		"g": graph.Float(2.5),
		"b": graph.Bool(true),
		"s": graph.Str("plain text"),
	} {
		if v, ok := back.NodeProp(n, name); !ok || v != want {
			t.Errorf("n1.%s = %v (ok=%v), want %v", name, v, ok, want)
		}
	}
	if v, ok := back.EdgeProp(back.MustEdge("e1"), "w"); !ok || v != graph.Float(1e300) {
		t.Errorf("e1.w = %v (ok=%v), want 1e300", v, ok)
	}
}

// TestExportMutatedGraph checks that both codecs export the live state of
// an overlay graph: reading the export back equals the materialized chain.
func TestExportMutatedGraph(t *testing.T) {
	g := gen.Random(25, 60, []string{"a", "b"}, 9)
	g2, err := g.Apply([]graph.Mutation{
		{Op: graph.MutRemoveNode, ID: "v3"},
		{Op: graph.MutAddNode, ID: "w0", Label: "New", Props: graph.Props{"k": graph.Int(5)}},
		{Op: graph.MutAddEdge, ID: "f0", Label: "z", Src: "w0", Tgt: "v1"},
		{Op: graph.MutSetNodeProp, ID: "v1", Prop: "k", Value: graph.Int(999)},
		{Op: graph.MutRemoveEdge, ID: "e5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mat, err := g2.Materialize()
	if err != nil {
		t.Fatal(err)
	}

	back, err := graph.ReadJSON(bytes.NewReader(jsonDump(t, g2)))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got, want := jsonDump(t, back), jsonDump(t, mat); !bytes.Equal(got, want) {
		t.Fatal("JSON export of overlay graph differs from materialized state")
	}

	var nodes, edges bytes.Buffer
	if err := graph.WriteCSV(&nodes, &edges, g2); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	csvBack, err := graph.ReadCSV(bytes.NewReader(nodes.Bytes()), bytes.NewReader(edges.Bytes()))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got, want := jsonDump(t, csvBack), jsonDump(t, mat); !bytes.Equal(got, want) {
		t.Fatal("CSV export of overlay graph differs from materialized state")
	}
}

func TestJSONRoundTripAfterManyMutations(t *testing.T) {
	g := gen.Grid(6, 6, "step")
	cur := g
	for i := 0; i < 10; i++ {
		var err error
		cur, err = cur.Apply([]graph.Mutation{
			{Op: graph.MutAddNode, ID: fmt.Sprintf("x%d", i), Label: "X"},
			{Op: graph.MutAddEdge, ID: fmt.Sprintf("xe%d", i), Label: "hop",
				Src: fmt.Sprintf("x%d", i), Tgt: "g0_0"},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mat, err := cur.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	back, err := graph.ReadJSON(bytes.NewReader(jsonDump(t, cur)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := jsonDump(t, back), jsonDump(t, mat); !bytes.Equal(got, want) {
		t.Fatal("mutated-chain JSON export is not the materialized state")
	}
}
