package graph

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func buildSample(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder().
		AddNode("a1", "Account", Props{"owner": Str("Megan")}).
		AddNode("a2", "Account", Props{"owner": Str("Megan"), "isBlocked": Str("yes")}).
		AddNode("a3", "Account", Props{"owner": Str("Mike")}).
		AddEdge("t1", "Transfer", "a1", "a3", Props{"amount": Float(5e6)}).
		AddEdge("t2", "Transfer", "a3", "a2", Props{"amount": Float(1e6)}).
		AddEdge("t5", "Transfer", "a3", "a2", Props{"amount": Float(2e6)}).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := buildSample(t)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges, want 3/3", g.NumNodes(), g.NumEdges())
	}
	a3 := g.MustNode("a3")
	if d := g.OutDegree(a3); d != 2 {
		t.Errorf("OutDegree(a3) = %d, want 2 (parallel edges t2, t5)", d)
	}
	if d := g.InDegree(a3); d != 1 {
		t.Errorf("InDegree(a3) = %d, want 1", d)
	}
	// Parallel edges t2 and t5 both go a3 -> a2 with the same label:
	// the edge-identity model of Definition 4 must keep them distinct.
	t2, t5 := g.MustEdge("t2"), g.MustEdge("t5")
	if t2 == t5 {
		t.Fatal("parallel edges collapsed")
	}
	for _, ei := range []int{t2, t5} {
		e := g.Edge(ei)
		if e.Src != a3 || g.Node(e.Tgt).ID != "a2" || e.Label != "Transfer" {
			t.Errorf("edge %v misplaced: %+v", e.ID, e)
		}
	}
	if got := g.EdgeLabels(); !reflect.DeepEqual(got, []string{"Transfer"}) {
		t.Errorf("EdgeLabels = %v", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func(b *Builder)
		wantSub string
	}{
		{"duplicate node", func(b *Builder) {
			b.AddNode("n", "", nil).AddNode("n", "", nil)
		}, "duplicate node"},
		{"duplicate edge", func(b *Builder) {
			b.AddNode("u", "", nil).AddNode("v", "", nil).
				AddEdge("e", "a", "u", "v", nil).AddEdge("e", "a", "u", "v", nil)
		}, "duplicate edge"},
		{"missing src", func(b *Builder) {
			b.AddNode("v", "", nil).AddEdge("e", "a", "u", "v", nil)
		}, "unknown source"},
		{"missing tgt", func(b *Builder) {
			b.AddNode("u", "", nil).AddEdge("e", "a", "u", "v", nil)
		}, "unknown target"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.build(b)
			if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Build error = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	b := NewBuilder()
	b.AddNode("n", "", nil).AddNode("n", "", nil) // error here
	b.AddNode("m", "", nil)                       // must be a no-op
	if b.Err() == nil {
		t.Fatal("expected sticky error")
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should return the sticky error")
	}
}

func TestPropsIsolation(t *testing.T) {
	p := Props{"k": Int(1)}
	b := NewBuilder().AddNode("n", "", p)
	p["k"] = Int(99) // mutating the caller's map must not affect the graph
	g := b.MustBuild()
	v, ok := g.NodeProp(0, "k")
	if !ok || !v.Equal(Int(1)) {
		t.Fatalf("NodeProp = %v,%v; want 1 (builder must copy props)", v, ok)
	}
}

func TestObjectAccessors(t *testing.T) {
	g := buildSample(t)
	n := MakeNodeObject(g.MustNode("a2"))
	e := MakeEdgeObject(g.MustEdge("t1"))
	if n.IsEdge() || !n.IsNode() || !e.IsEdge() || e.IsNode() {
		t.Fatal("Object kind predicates wrong")
	}
	if g.Label(n) != "Account" || g.Label(e) != "Transfer" {
		t.Errorf("labels: %q %q", g.Label(n), g.Label(e))
	}
	if v, ok := g.Prop(n, "isBlocked"); !ok || !v.Equal(Str("yes")) {
		t.Errorf("Prop(a2, isBlocked) = %v,%v", v, ok)
	}
	if _, ok := g.Prop(n, "nope"); ok {
		t.Error("Prop should be partial (Definition 6)")
	}
	if g.ObjectID(n) != "a2" || g.ObjectID(e) != "t1" {
		t.Errorf("ObjectID: %q %q", g.ObjectID(n), g.ObjectID(e))
	}
}

func TestLabelQueries(t *testing.T) {
	g := buildSample(t)
	if got := len(g.NodesWithLabel("Account")); got != 3 {
		t.Errorf("NodesWithLabel(Account) = %d, want 3", got)
	}
	if got := len(g.NodesWithLabel("")); got != 3 {
		t.Errorf("NodesWithLabel(\"\") = %d, want 3", got)
	}
	if got := len(g.EdgesWithLabel("Transfer")); got != 3 {
		t.Errorf("EdgesWithLabel(Transfer) = %d, want 3", got)
	}
	if got := len(g.EdgesWithLabel("nope")); got != 0 {
		t.Errorf("EdgesWithLabel(nope) = %d, want 0", got)
	}
}

func TestValueCompareTotalOrderWithinKind(t *testing.T) {
	vals := []Value{Null(), Bool(false), Bool(true), Int(-3), Int(0), Float(0.5), Int(1), Str("a"), Str("b")}
	for i, v := range vals {
		for j, w := range vals {
			c := v.Compare(w)
			switch {
			case i == j && c != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", v, w, c)
			case i < j && c >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", v, w, c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", v, w, c)
			}
		}
	}
}

func TestValueNumericCrossKind(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if !Int(2).Less(Float(2.5)) {
		t.Error("Int(2) < Float(2.5) should hold")
	}
	if !Float(1.5).Less(Int(2)) {
		t.Error("Float(1.5) < Int(2) should hold")
	}
}

func TestValueAccessors(t *testing.T) {
	if _, ok := Str("x").AsInt(); ok {
		t.Error("AsInt on string should fail")
	}
	if f, ok := Float(math.Pi).AsFloat(); !ok || f != math.Pi {
		t.Errorf("AsFloat = %v,%v", f, ok)
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Errorf("AsBool = %v,%v", b, ok)
	}
	if s, ok := Str("hey").AsString(); !ok || s != "hey" {
		t.Errorf("AsString = %v,%v", s, ok)
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull wrong")
	}
}

func TestCompareOps(t *testing.T) {
	tests := []struct {
		op   CompareOp
		v, w Value
		want bool
	}{
		{OpEq, Int(1), Int(1), true},
		{OpEq, Int(1), Int(2), false},
		{OpNe, Str("a"), Str("b"), true},
		{OpLt, Int(1), Int(2), true},
		{OpGt, Int(1), Int(2), false},
		{OpLe, Int(2), Int(2), true},
		{OpGe, Int(1), Int(2), false},
		{OpEq, Null(), Null(), true},
		{OpEq, Null(), Int(0), false},
		{OpNe, Null(), Int(0), true},
		{OpLt, Null(), Int(0), false}, // null never orders
	}
	for _, tc := range tests {
		if got := tc.op.Apply(tc.v, tc.w); got != tc.want {
			t.Errorf("%v %v %v = %v, want %v", tc.v, tc.op, tc.w, got, tc.want)
		}
	}
}

func TestCompareOpNegate(t *testing.T) {
	// For non-null values, op and op.Negate() must partition outcomes.
	f := func(a, b int8) bool {
		v, w := Int(int64(a)), Int(int64(b))
		for _, op := range []CompareOp{OpEq, OpNe, OpLt, OpGt, OpLe, OpGe} {
			if op.Apply(v, w) == op.Negate().Apply(v, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseOp(t *testing.T) {
	for s, want := range map[string]CompareOp{
		"=": OpEq, "==": OpEq, "!=": OpNe, "<>": OpNe,
		"<": OpLt, ">": OpGt, "<=": OpLe, ">=": OpGe,
	} {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v,%v want %v", s, got, err, want)
		}
	}
	if _, err := ParseOp("~"); err == nil {
		t.Error("ParseOp(~) should fail")
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[string]Value{
		"null": Null(), "true": Bool(true), "false": Bool(false),
		"42": Int(42), "-1": Int(-1), "2.5": Float(2.5), "hi": Str("hi"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v.Kind(), got, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildSample(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		n1, n2 := g.Node(i), g2.Node(i)
		if n1.ID != n2.ID || n1.Label != n2.Label || !reflect.DeepEqual(n1.Props, n2.Props) {
			t.Errorf("node %d differs: %+v vs %+v", i, n1, n2)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e1, e2 := g.Edge(i), g2.Edge(i)
		if e1.ID != e2.ID || e1.Label != e2.Label || e1.Src != e2.Src || e1.Tgt != e2.Tgt ||
			!reflect.DeepEqual(e1.Props, e2.Props) {
			t.Errorf("edge %d differs: %+v vs %+v", i, e1, e2)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[{"id":"n","props":{"p":{"kind":"frob"}}}]}`)); err == nil {
		t.Error("unknown value kind should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[],"edges":[{"id":"e","src":"u","tgt":"v"}]}`)); err == nil {
		t.Error("edge with missing endpoints should fail")
	}
}

func TestJSONRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		b := NewBuilder()
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			b.AddNode(NodeID(string(rune('a'+i))), "L", Props{"x": Int(int64(rng.Intn(10)))})
		}
		m := rng.Intn(12)
		for i := 0; i < m; i++ {
			b.AddEdge(EdgeID(string(rune('A'+i))), "e",
				NodeID(string(rune('a'+rng.Intn(n)))), NodeID(string(rune('a'+rng.Intn(n)))),
				Props{"w": Float(rng.Float64())})
		}
		g := b.MustBuild()
		var buf bytes.Buffer
		if err := WriteJSON(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("trial %d: size mismatch", trial)
		}
	}
}
