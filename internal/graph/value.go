package graph

import (
	"fmt"
	"math"
	"strconv"
)

// ValueKind discriminates the dynamic type of a property Value.
type ValueKind uint8

// The value kinds supported by property graphs (Definition 6 assumes an
// abstract set Values; we fix a concrete, totally-ordered-within-kind set).
const (
	KindNull ValueKind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is an atomic property value: one of null, bool, int64, float64, or
// string. The zero Value is null. Values are comparable with == (suitable as
// map keys) because every representation is stored inline.
type Value struct {
	kind ValueKind
	num  uint64 // bool, int64 and float64 payloads (bit patterns)
	str  string // string payload
}

// Null returns the null Value.
func Null() Value { return Value{} }

// Bool returns a boolean Value.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, num: math.Float64bits(f)} }

// Str returns a string Value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() ValueKind { return v.kind }

// IsNull reports whether v is the null Value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; ok is false if v is not a bool.
func (v Value) AsBool() (b, ok bool) { return v.num == 1, v.kind == KindBool }

// AsInt returns the integer payload; ok is false if v is not an int.
func (v Value) AsInt() (int64, bool) { return int64(v.num), v.kind == KindInt }

// AsFloat returns the floating-point payload; ok is false if v is not a float.
func (v Value) AsFloat() (float64, bool) { return math.Float64frombits(v.num), v.kind == KindFloat }

// AsString returns the string payload; ok is false if v is not a string.
func (v Value) AsString() (string, bool) { return v.str, v.kind == KindString }

// Numeric reports v as a float64 if v is an int or a float.
func (v Value) Numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(int64(v.num)), true
	case KindFloat:
		return math.Float64frombits(v.num), true
	default:
		return 0, false
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.num == 1 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case KindString:
		return v.str
	default:
		return "?"
	}
}

// Compare orders two values. Values of different kinds are ordered by kind
// (null < bool < numeric < string), except that ints and floats compare
// numerically with each other. Within a kind the natural order applies.
// The result is -1, 0, or +1.
func (v Value) Compare(w Value) int {
	vn, vIsNum := v.Numeric()
	wn, wIsNum := w.Numeric()
	if vIsNum && wIsNum {
		switch {
		case vn < wn:
			return -1
		case vn > wn:
			return 1
		default:
			return 0
		}
	}
	if v.kind != w.kind {
		if rankKind(v.kind) < rankKind(w.kind) {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		switch {
		case v.num < w.num:
			return -1
		case v.num > w.num:
			return 1
		default:
			return 0
		}
	case KindString:
		switch {
		case v.str < w.str:
			return -1
		case v.str > w.str:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

func rankKind(k ValueKind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	default:
		return 4
	}
}

// Equal reports whether v and w are the same value (ints and floats that are
// numerically equal are considered equal, matching Compare).
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

// Less reports whether v orders strictly before w.
func (v Value) Less(w Value) bool { return v.Compare(w) < 0 }

// CompareOp is a comparison operator usable in data tests (the set
// {=, ≠, <, >} of Section 3.2.1, extended with ≤ and ≥ for convenience).
type CompareOp uint8

// The comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe
)

func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Negate returns the complementary operator, used to push negation of data
// tests to atoms (Remark 20).
func (op CompareOp) Negate() CompareOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpGt:
		return OpLe
	case OpLe:
		return OpGt
	case OpGe:
		return OpLt
	default:
		return op
	}
}

// Apply evaluates `v op w`. Comparisons involving null are false except
// null = null and null ≠ x for non-null x.
func (op CompareOp) Apply(v, w Value) bool {
	if v.IsNull() || w.IsNull() {
		switch op {
		case OpEq:
			return v.IsNull() && w.IsNull()
		case OpNe:
			return v.IsNull() != w.IsNull()
		default:
			return false
		}
	}
	c := v.Compare(w)
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpGt:
		return c > 0
	case OpLe:
		return c <= 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// ParseOp parses a comparison operator token.
func ParseOp(s string) (CompareOp, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case ">":
		return OpGt, nil
	case "<=":
		return OpLe, nil
	case ">=":
		return OpGe, nil
	default:
		return 0, fmt.Errorf("graph: unknown comparison operator %q", s)
	}
}
