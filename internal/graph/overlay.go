// Delta overlays: the mutable face of the otherwise immutable Graph.
//
// A Graph built by Builder is a fully materialized CSR snapshot. Apply
// layers a batch of mutations over it copy-on-write, producing a NEW Graph
// value that shares every untouched index with its predecessor: the dense
// node/edge/label slices are extended in place (safe under the single-writer
// chain discipline below), the ID maps and adjacency rows are overridden
// only where the batch touched them, and removals become tombstones so no
// index ever shifts. Readers of the predecessor keep a perfectly consistent
// view — this is the storage half of the store's MVCC snapshots.
//
// Chain discipline (enforced by internal/store's per-graph write lock):
// Apply must only be called on the newest version of a chain, by one
// goroutine at a time. Under that rule the in-place slice extension is safe:
// a predecessor's readers never index past their own length, appends touch
// only elements beyond every published length, and the new Graph pointer is
// published with a happens-before edge (atomic pointer store).
//
// Materialize folds a chain back into a fresh fully-indexed Graph — the
// compaction step — leaving live elements only. It is the ONLY operation
// that rebuilds the CSR; Apply maintains adjacency incrementally.
package graph

import (
	"fmt"
	"sort"
)

// MutOp is the kind of one Mutation.
type MutOp uint8

// The mutation kinds Apply understands.
const (
	MutAddNode    MutOp = iota + 1
	MutRemoveNode       // cascades to incident edges
	MutAddEdge
	MutRemoveEdge
	MutSetNodeProp // Value Null deletes the property (ρ is partial)
	MutSetEdgeProp
)

// String renders the op for error messages and wire forms.
func (op MutOp) String() string {
	switch op {
	case MutAddNode:
		return "add_node"
	case MutRemoveNode:
		return "remove_node"
	case MutAddEdge:
		return "add_edge"
	case MutRemoveEdge:
		return "remove_edge"
	case MutSetNodeProp:
		return "set_node_prop"
	case MutSetEdgeProp:
		return "set_edge_prop"
	}
	return fmt.Sprintf("MutOp(%d)", uint8(op))
}

// ParseMutOp resolves the wire name of a mutation op (see MutOp.String).
func ParseMutOp(s string) (MutOp, error) {
	switch s {
	case "add_node":
		return MutAddNode, nil
	case "remove_node":
		return MutRemoveNode, nil
	case "add_edge":
		return MutAddEdge, nil
	case "remove_edge":
		return MutRemoveEdge, nil
	case "set_node_prop":
		return MutSetNodeProp, nil
	case "set_edge_prop":
		return MutSetEdgeProp, nil
	}
	return 0, fmt.Errorf("graph: unknown mutation op %q", s)
}

// Mutation is one element of an Apply batch, addressed entirely by external
// IDs so a batch can be logged and replayed against any equivalent graph
// state regardless of dense index assignment.
type Mutation struct {
	Op MutOp
	// ID names the node (add/remove/set_node_prop) or edge
	// (add/remove/set_edge_prop) the op targets.
	ID string
	// Label is the node or edge label for the add ops.
	Label string
	// Src / Tgt are the endpoint node IDs of an added edge.
	Src, Tgt string
	// Props are the initial properties of an added node or edge.
	Props Props
	// Prop / Value carry a set-prop assignment; a Null Value deletes.
	Prop  string
	Value Value
}

// overlay is the per-version delta over the materialized base at the root
// of the version chain. Every map is cloned by Apply (O(|delta|), not
// O(|graph|)), so predecessor versions stay frozen.
type overlay struct {
	// nodeIDs / edgeIDs override the base ID maps; -1 is a tombstone for a
	// removed base element. A miss falls through to the base map.
	nodeIDs map[NodeID]int
	edgeIDs map[EdgeID]int

	// deadNodes / deadEdges are the tombstoned dense indexes.
	deadNodes map[int]struct{}
	deadEdges map[int]struct{}

	// outRows / inRows hold the effective adjacency rows of every node the
	// chain has touched (and every added node), sorted by (label ID, edge
	// index) exactly like a CSR region so the withLabel binary search works
	// unchanged. A miss falls through to the base CSR region.
	outRows map[int][]int
	inRows  map[int][]int

	// nodeProps / edgeProps override whole property maps (set-prop clones
	// the effective map, so base property maps are never written).
	nodeProps map[int]Props
	edgeProps map[int]Props

	// labelIDs interns labels first seen after the base build; their IDs
	// extend the base numbering. labelAdds records every added edge under
	// its label ID (dead edges are filtered at read), extending the base's
	// global per-label edge index.
	labelIDs  map[string]int
	labelAdds map[int][]int

	liveNodes, liveEdges int

	// ops counts mutations applied since the base materialization — the
	// delta depth the store's compaction threshold watches.
	ops int
}

func cloneIntSet(m map[int]struct{}) map[int]struct{} {
	c := make(map[int]struct{}, len(m)+1)
	for k := range m {
		c[k] = struct{}{}
	}
	return c
}

// clone copies every map one level deep; row slices and property maps are
// shared with the predecessor and replaced (never written) on change.
func (ov *overlay) clone() *overlay {
	c := &overlay{
		nodeIDs:   make(map[NodeID]int, len(ov.nodeIDs)+1),
		edgeIDs:   make(map[EdgeID]int, len(ov.edgeIDs)+1),
		deadNodes: cloneIntSet(ov.deadNodes),
		deadEdges: cloneIntSet(ov.deadEdges),
		outRows:   make(map[int][]int, len(ov.outRows)+1),
		inRows:    make(map[int][]int, len(ov.inRows)+1),
		nodeProps: make(map[int]Props, len(ov.nodeProps)+1),
		edgeProps: make(map[int]Props, len(ov.edgeProps)+1),
		labelIDs:  make(map[string]int, len(ov.labelIDs)+1),
		labelAdds: make(map[int][]int, len(ov.labelAdds)+1),
		liveNodes: ov.liveNodes,
		liveEdges: ov.liveEdges,
		ops:       ov.ops,
	}
	for k, v := range ov.nodeIDs {
		c.nodeIDs[k] = v
	}
	for k, v := range ov.edgeIDs {
		c.edgeIDs[k] = v
	}
	for k, v := range ov.outRows {
		c.outRows[k] = v
	}
	for k, v := range ov.inRows {
		c.inRows[k] = v
	}
	for k, v := range ov.nodeProps {
		c.nodeProps[k] = v
	}
	for k, v := range ov.edgeProps {
		c.edgeProps[k] = v
	}
	for k, v := range ov.labelIDs {
		c.labelIDs[k] = v
	}
	for k, v := range ov.labelAdds {
		c.labelAdds[k] = v
	}
	return c
}

func newOverlay(g *Graph) *overlay {
	return &overlay{
		nodeIDs:   make(map[NodeID]int),
		edgeIDs:   make(map[EdgeID]int),
		deadNodes: make(map[int]struct{}),
		deadEdges: make(map[int]struct{}),
		outRows:   make(map[int][]int),
		inRows:    make(map[int][]int),
		nodeProps: make(map[int]Props),
		edgeProps: make(map[int]Props),
		labelIDs:  make(map[string]int),
		labelAdds: make(map[int][]int),
		liveNodes: g.NumNodes(),
		liveEdges: g.NumEdges(),
	}
}

// NodeAlive reports whether node index i is not tombstoned.
func (g *Graph) NodeAlive(i int) bool {
	if g.ov == nil {
		return true
	}
	_, dead := g.ov.deadNodes[i]
	return !dead
}

// EdgeAlive reports whether edge index i is not tombstoned.
func (g *Graph) EdgeAlive(i int) bool {
	if g.ov == nil {
		return true
	}
	_, dead := g.ov.deadEdges[i]
	return !dead
}

// NumLiveNodes returns the number of non-tombstoned nodes; equals NumNodes
// for materialized graphs.
func (g *Graph) NumLiveNodes() int {
	if g.ov == nil {
		return len(g.nodes)
	}
	return g.ov.liveNodes
}

// NumLiveEdges returns the number of non-tombstoned edges.
func (g *Graph) NumLiveEdges() int {
	if g.ov == nil {
		return len(g.edges)
	}
	return g.ov.liveEdges
}

// DeltaOps returns the number of mutations layered over the materialized
// base of this graph's version chain — 0 for a freshly built graph. The
// store's compactor folds the chain when this crosses its threshold.
func (g *Graph) DeltaOps() int {
	if g.ov == nil {
		return 0
	}
	return g.ov.ops
}

// applier is the working state of one Apply batch: the new graph under
// construction plus per-batch copy-on-write tracking, so a row cloned once
// in this batch can be edited in place for the rest of it.
type applier struct {
	g          *Graph
	ov         *overlay
	touchedOut map[int]bool
	touchedIn  map[int]bool
}

// Apply layers a batch of mutations over g and returns the resulting graph
// version. g itself is never modified (readers of g and of every ancestor
// are unaffected); on error the batch has no effect (the returned graph is
// nil and no committed version changed — batch atomicity). The receiver
// must be the newest version of its chain and Apply must not run
// concurrently with another Apply on the same chain; see the package
// comment on the chain discipline.
func (g *Graph) Apply(muts []Mutation) (*Graph, error) {
	ng := new(Graph)
	*ng = *g
	if g.ov == nil {
		ng.ov = newOverlay(g)
	} else {
		ng.ov = g.ov.clone()
	}
	a := &applier{g: ng, ov: ng.ov, touchedOut: map[int]bool{}, touchedIn: map[int]bool{}}
	for i := range muts {
		if err := a.apply(&muts[i]); err != nil {
			return nil, fmt.Errorf("graph: mutation %d (%s %q): %w", i, muts[i].Op, muts[i].ID, err)
		}
	}
	ng.ov.ops += len(muts)
	return ng, nil
}

func (a *applier) apply(m *Mutation) error {
	switch m.Op {
	case MutAddNode:
		return a.addNode(m)
	case MutRemoveNode:
		return a.removeNode(m)
	case MutAddEdge:
		return a.addEdge(m)
	case MutRemoveEdge:
		return a.removeEdgeByID(m)
	case MutSetNodeProp:
		return a.setNodeProp(m)
	case MutSetEdgeProp:
		return a.setEdgeProp(m)
	}
	return fmt.Errorf("unknown mutation op %d", m.Op)
}

func (a *applier) addNode(m *Mutation) error {
	id := NodeID(m.ID)
	if m.ID == "" {
		return fmt.Errorf("empty node ID")
	}
	if _, exists := a.g.NodeIndex(id); exists {
		return fmt.Errorf("node already exists")
	}
	idx := len(a.g.nodes)
	a.g.nodes = append(a.g.nodes, Node{ID: id, Label: m.Label, Props: m.Props.clone()})
	a.ov.nodeIDs[id] = idx
	a.setRow(idx, false, nil)
	a.setRow(idx, true, nil)
	a.ov.liveNodes++
	return nil
}

func (a *applier) removeNode(m *Mutation) error {
	idx, ok := a.g.NodeIndex(NodeID(m.ID))
	if !ok {
		return fmt.Errorf("no such node")
	}
	// Cascade: every live incident edge dies with the node. Snapshot the
	// rows first — removeEdge rewrites them as it goes. A self-loop appears
	// in both rows; the EdgeAlive check skips the second visit.
	incident := append(append([]int(nil), a.g.Out(idx)...), a.g.In(idx)...)
	for _, ei := range incident {
		if a.g.EdgeAlive(ei) {
			a.removeEdge(ei)
		}
	}
	a.ov.deadNodes[idx] = struct{}{}
	a.ov.nodeIDs[NodeID(m.ID)] = -1
	a.setRow(idx, false, nil)
	a.setRow(idx, true, nil)
	delete(a.ov.nodeProps, idx)
	a.ov.liveNodes--
	return nil
}

func (a *applier) addEdge(m *Mutation) error {
	id := EdgeID(m.ID)
	if m.ID == "" {
		return fmt.Errorf("empty edge ID")
	}
	if _, exists := a.g.EdgeIndex(id); exists {
		return fmt.Errorf("edge already exists")
	}
	si, ok := a.g.NodeIndex(NodeID(m.Src))
	if !ok {
		return fmt.Errorf("unknown source node %q", m.Src)
	}
	ti, ok := a.g.NodeIndex(NodeID(m.Tgt))
	if !ok {
		return fmt.Errorf("unknown target node %q", m.Tgt)
	}
	lid, label := a.ensureLabel(m.Label)
	ei := len(a.g.edges)
	a.g.edges = append(a.g.edges, Edge{ID: id, Label: label, Src: si, Tgt: ti, Props: m.Props.clone()})
	a.g.edgeLabel = append(a.g.edgeLabel, lid)
	a.ov.edgeIDs[id] = ei
	a.insertRow(si, false, ei, lid)
	a.insertRow(ti, true, ei, lid)
	a.ov.labelAdds[lid] = append(a.ov.labelAdds[lid], ei)
	a.ov.liveEdges++
	return nil
}

func (a *applier) removeEdgeByID(m *Mutation) error {
	ei, ok := a.g.EdgeIndex(EdgeID(m.ID))
	if !ok {
		return fmt.Errorf("no such edge")
	}
	a.removeEdge(ei)
	return nil
}

// removeEdge tombstones edge ei (known live) and unlinks it from both
// endpoint rows.
func (a *applier) removeEdge(ei int) {
	e := &a.g.edges[ei]
	a.ov.deadEdges[ei] = struct{}{}
	a.ov.edgeIDs[e.ID] = -1
	lid := a.g.edgeLabel[ei]
	a.deleteRow(e.Src, false, ei, lid)
	a.deleteRow(e.Tgt, true, ei, lid)
	delete(a.ov.edgeProps, ei)
	a.ov.liveEdges--
}

func (a *applier) setNodeProp(m *Mutation) error {
	idx, ok := a.g.NodeIndex(NodeID(m.ID))
	if !ok {
		return fmt.Errorf("no such node")
	}
	if m.Prop == "" {
		return fmt.Errorf("empty property name")
	}
	cur, ok := a.ov.nodeProps[idx]
	if !ok {
		cur = a.g.nodes[idx].Props
	}
	a.ov.nodeProps[idx] = setProp(cur, m.Prop, m.Value)
	return nil
}

func (a *applier) setEdgeProp(m *Mutation) error {
	idx, ok := a.g.EdgeIndex(EdgeID(m.ID))
	if !ok {
		return fmt.Errorf("no such edge")
	}
	if m.Prop == "" {
		return fmt.Errorf("empty property name")
	}
	cur, ok := a.ov.edgeProps[idx]
	if !ok {
		cur = a.g.edges[idx].Props
	}
	a.ov.edgeProps[idx] = setProp(cur, m.Prop, m.Value)
	return nil
}

// setProp returns a fresh property map with name set (or deleted, for a
// Null value); cur is never written — ancestor versions may share it.
func setProp(cur Props, name string, v Value) Props {
	np := cur.clone()
	if v.IsNull() {
		delete(np, name)
		return np
	}
	if np == nil {
		np = Props{}
	}
	np[name] = v
	return np
}

// ensureLabel interns an edge label, extending the base numbering for
// labels first seen after the base build. Returns the ID and the canonical
// interned string.
func (a *applier) ensureLabel(label string) (int, string) {
	if id, ok := a.g.LabelID(label); ok {
		return id, a.g.labels[id]
	}
	id := len(a.g.labels)
	a.g.labels = append(a.g.labels, label)
	a.ov.labelIDs[label] = id
	return id, label
}

// setRow publishes row as node n's effective adjacency in one direction and
// marks it owned by this batch.
func (a *applier) setRow(n int, in bool, row []int) {
	if in {
		a.ov.inRows[n] = row
		a.touchedIn[n] = true
	} else {
		a.ov.outRows[n] = row
		a.touchedOut[n] = true
	}
}

// mutableRow returns node n's effective row, cloned the first time this
// batch touches it so ancestor versions keep their own copy.
func (a *applier) mutableRow(n int, in bool) []int {
	rows, touched := a.ov.outRows, a.touchedOut
	if in {
		rows, touched = a.ov.inRows, a.touchedIn
	}
	if touched[n] {
		return rows[n]
	}
	var src []int
	if r, ok := rows[n]; ok {
		src = r
	} else {
		// Base CSR region: already (label ID, edge index)-sorted.
		c := &a.g.outCSR
		if in {
			c = &a.g.inCSR
		}
		src = c.edges[c.start[n]:c.start[n+1]]
	}
	clone := append(make([]int, 0, len(src)+1), src...)
	if in {
		a.ov.inRows[n] = clone
		a.touchedIn[n] = true
	} else {
		a.ov.outRows[n] = clone
		a.touchedOut[n] = true
	}
	return clone
}

// insertRow splices edge ei (label lid) into node n's row at its
// (label ID, edge index)-sorted position. ei is always the largest edge
// index in the graph, so it lands at the end of its label's run.
func (a *applier) insertRow(n int, in bool, ei, lid int) {
	row := a.mutableRow(n, in)
	pos := sort.Search(len(row), func(i int) bool { return a.g.edgeLabel[row[i]] > lid })
	row = append(row, 0)
	copy(row[pos+1:], row[pos:])
	row[pos] = ei
	a.setRow(n, in, row)
}

// deleteRow removes edge ei (label lid) from node n's row, preserving
// order. The edge is known to be present.
func (a *applier) deleteRow(n int, in bool, ei, lid int) {
	row := a.mutableRow(n, in)
	run := labelRun(row, a.g.edgeLabel, lid)
	i := run[0] + sort.SearchInts(row[run[0]:run[1]], ei)
	copy(row[i:], row[i+1:])
	a.setRow(n, in, row[:len(row)-1])
}

// labelRun locates the [lo, hi) run of label lid inside a
// (label ID, edge index)-sorted row — the same search csr.withLabel does.
func labelRun(row, edgeLabel []int, lid int) [2]int {
	lo := sort.Search(len(row), func(i int) bool { return edgeLabel[row[i]] >= lid })
	hi := lo + sort.Search(len(row)-lo, func(i int) bool { return edgeLabel[row[lo+i]] > lid })
	return [2]int{lo, hi}
}

// Materialize folds the version chain into a fresh fully-indexed Graph
// holding live elements only — the store's compaction step. A graph with no
// overlay is returned unchanged.
func (g *Graph) Materialize() (*Graph, error) {
	if g.ov == nil {
		return g, nil
	}
	b := NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		if !g.NodeAlive(i) {
			continue
		}
		n := g.Node(i)
		b.AddNode(n.ID, n.Label, n.Props)
	}
	for ei := 0; ei < g.NumEdges(); ei++ {
		if !g.EdgeAlive(ei) {
			continue
		}
		e := g.Edge(ei)
		b.AddEdge(e.ID, e.Label, g.nodes[e.Src].ID, g.nodes[e.Tgt].ID, e.Props)
	}
	return b.Build()
}
