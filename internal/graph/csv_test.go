package graph

import (
	"strings"
	"testing"
)

const nodesCSV = `id,label,owner,balance,active
a1,Account,Megan,1000,true
a2,Account,Mike,250.5,false
p1,Person,,,
`

const edgesCSV = `id,label,src,tgt,amount
t1,Transfer,a1,a2,500
r1,owner,a1,p1,
`

func TestReadCSV(t *testing.T) {
	g, err := ReadCSV(strings.NewReader(nodesCSV), strings.NewReader(edgesCSV))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("shape = %d/%d", g.NumNodes(), g.NumEdges())
	}
	a1 := g.MustNode("a1")
	if owner, ok := g.NodeProp(a1, "owner"); !ok || !owner.Equal(Str("Megan")) {
		t.Error("owner wrong")
	}
	if bal, ok := g.NodeProp(a1, "balance"); !ok || !bal.Equal(Int(1000)) {
		t.Error("integer typing wrong")
	}
	if act, ok := g.NodeProp(a1, "active"); !ok || !act.Equal(Bool(true)) {
		t.Error("bool typing wrong")
	}
	a2 := g.MustNode("a2")
	if bal, ok := g.NodeProp(a2, "balance"); !ok || !bal.Equal(Float(250.5)) {
		t.Error("float typing wrong")
	}
	// Empty cells leave ρ undefined.
	p1 := g.MustNode("p1")
	if _, ok := g.NodeProp(p1, "owner"); ok {
		t.Error("empty cell should mean absent property")
	}
	t1 := g.MustEdge("t1")
	if amt, ok := g.EdgeProp(t1, "amount"); !ok || !amt.Equal(Int(500)) {
		t.Error("edge property wrong")
	}
	r1 := g.MustEdge("r1")
	if _, ok := g.EdgeProp(r1, "amount"); ok {
		t.Error("empty edge cell should mean absent property")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ nodes, edges, wantSub string }{
		{"", "id,label,src,tgt\n", "missing header"},
		{"id,label\n", "", "missing header"},
		{"wrong,label\n", "id,label,src,tgt\n", "column 1"},
		{"id,label\nn1\n", "id,label,src,tgt\n", "at least id,label"},
		{"id,label\nn1,L\n", "id,label,src\n", "must start with"},
		{"id,label\nn1,L\n", "id,label,src,tgt\ne1,a,n1\n", "at least id,label,src,tgt"},
		{"id,label\nn1,L\n", "id,label,src,tgt\ne1,a,n1,missing\n", "unknown target"},
		{"id,label\nn1,L\nn1,L\n", "id,label,src,tgt\n", "duplicate node"},
	}
	for _, tc := range cases {
		_, err := ReadCSV(strings.NewReader(tc.nodes), strings.NewReader(tc.edges))
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ReadCSV(%q, %q) err = %v, want substring %q", tc.nodes, tc.edges, err, tc.wantSub)
		}
	}
}

func TestParseCSVValue(t *testing.T) {
	cases := map[string]Value{
		"42":    Int(42),
		"-7":    Int(-7),
		"2.5":   Float(2.5),
		"true":  Bool(true),
		"false": Bool(false),
		"hello": Str("hello"),
		"1e3":   Float(1000),
	}
	for in, want := range cases {
		if got := parseCSVValue(in); !got.Equal(want) || got.Kind() != want.Kind() {
			t.Errorf("parseCSVValue(%q) = %v (%v), want %v (%v)", in, got, got.Kind(), want, want.Kind())
		}
	}
}
