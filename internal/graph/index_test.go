package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomGraph builds a seeded multigraph (self-loops allowed) directly with
// the builder, to exercise the label index without importing gen (which
// would create an import cycle).
func randomGraph(t *testing.T, n, m int, labels []string, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(NodeID(fmt.Sprintf("v%d", i)), "", nil)
	}
	for e := 0; e < m; e++ {
		b.AddEdge(EdgeID(fmt.Sprintf("e%d", e)), labels[rng.Intn(len(labels))],
			NodeID(fmt.Sprintf("v%d", rng.Intn(n))),
			NodeID(fmt.Sprintf("v%d", rng.Intn(n))), nil)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLabelIndexMatchesDenseLists(t *testing.T) {
	labels := []string{"a", "b", "c", "knows"}
	g := randomGraph(t, 40, 300, labels, 7)
	if g.NumLabels() == 0 {
		t.Fatal("expected labels")
	}
	for n := 0; n < g.NumNodes(); n++ {
		for id := 0; id < g.NumLabels(); id++ {
			lab := g.LabelName(id)
			var wantOut, wantIn []int
			for _, ei := range g.Out(n) {
				if g.Edge(ei).Label == lab {
					wantOut = append(wantOut, ei)
				}
			}
			for _, ei := range g.In(n) {
				if g.Edge(ei).Label == lab {
					wantIn = append(wantIn, ei)
				}
			}
			if got := g.OutWithLabel(n, id); !equalInts(got, wantOut) {
				t.Fatalf("OutWithLabel(%d, %q) = %v, want %v", n, lab, got, wantOut)
			}
			if got := g.InWithLabel(n, id); !equalInts(got, wantIn) {
				t.Fatalf("InWithLabel(%d, %q) = %v, want %v", n, lab, got, wantIn)
			}
		}
	}
}

func TestEdgesWithLabelSharesNumbering(t *testing.T) {
	g := randomGraph(t, 20, 120, []string{"x", "y", "z"}, 3)
	for id, lab := range g.EdgeLabels() {
		gotID, ok := g.LabelID(lab)
		if !ok || gotID != id {
			t.Fatalf("LabelID(%q) = %d, %v; want %d", lab, gotID, ok, id)
		}
		byName := g.EdgesWithLabel(lab)
		byID := g.EdgesWithLabelID(id)
		if !equalInts(byName, byID) {
			t.Fatalf("EdgesWithLabel(%q) = %v, EdgesWithLabelID(%d) = %v", lab, byName, id, byID)
		}
		for _, ei := range byID {
			if g.EdgeLabelID(ei) != id || g.Edge(ei).Label != lab {
				t.Fatalf("edge %d not labeled %q", ei, lab)
			}
		}
	}
	// Unknown and empty labels.
	if got := g.EdgesWithLabel("nope"); got != nil {
		t.Fatalf("EdgesWithLabel(unknown) = %v, want nil", got)
	}
	if got := g.EdgesWithLabel(""); len(got) != g.NumEdges() {
		t.Fatalf("EdgesWithLabel(\"\") = %d edges, want %d", len(got), g.NumEdges())
	}
}

// TestLabelIDsStableAcrossRoundTrips checks that the interned label
// numbering survives JSON and CSV round-trips: the same graph re-read from
// either codec assigns the same ID to every label.
func TestLabelIDsStableAcrossRoundTrips(t *testing.T) {
	g := randomGraph(t, 12, 60, []string{"Transfer", "owner", "isBlocked"}, 11)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	var nodes, edges strings.Builder
	nodes.WriteString("id,label\n")
	for i := 0; i < g.NumNodes(); i++ {
		fmt.Fprintf(&nodes, "%s,%s\n", g.Node(i).ID, g.Node(i).Label)
	}
	edges.WriteString("id,label,src,tgt\n")
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		fmt.Fprintf(&edges, "%s,%s,%s,%s\n", e.ID, e.Label, g.Node(e.Src).ID, g.Node(e.Tgt).ID)
	}
	fromCSV, err := ReadCSV(strings.NewReader(nodes.String()), strings.NewReader(edges.String()))
	if err != nil {
		t.Fatal(err)
	}

	for _, rt := range []*Graph{fromJSON, fromCSV} {
		if rt.NumLabels() != g.NumLabels() {
			t.Fatalf("round-trip label count = %d, want %d", rt.NumLabels(), g.NumLabels())
		}
		for id, lab := range g.EdgeLabels() {
			gotID, ok := rt.LabelID(lab)
			if !ok || gotID != id {
				t.Fatalf("round-trip LabelID(%q) = %d, %v; want %d", lab, gotID, ok, id)
			}
		}
		for ei := 0; ei < g.NumEdges(); ei++ {
			idx, ok := rt.EdgeIndex(g.Edge(ei).ID)
			if !ok {
				t.Fatalf("round-trip lost edge %q", g.Edge(ei).ID)
			}
			if rt.EdgeLabelID(idx) != g.EdgeLabelID(ei) {
				t.Fatalf("edge %q label ID changed across round-trip", g.Edge(ei).ID)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
