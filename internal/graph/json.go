package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonValue is the wire form of a Value.
type jsonValue struct {
	Kind string `json:"kind"`
	// Exactly one of the following is meaningful, per Kind.
	Bool   bool    `json:"bool,omitempty"`
	Int    int64   `json:"int,omitempty"`
	Float  float64 `json:"float,omitempty"`
	String string  `json:"string,omitempty"`
}

func toJSONValue(v Value) jsonValue {
	switch v.Kind() {
	case KindBool:
		b, _ := v.AsBool()
		return jsonValue{Kind: "bool", Bool: b}
	case KindInt:
		i, _ := v.AsInt()
		return jsonValue{Kind: "int", Int: i}
	case KindFloat:
		f, _ := v.AsFloat()
		return jsonValue{Kind: "float", Float: f}
	case KindString:
		s, _ := v.AsString()
		return jsonValue{Kind: "string", String: s}
	default:
		return jsonValue{Kind: "null"}
	}
}

func fromJSONValue(jv jsonValue) (Value, error) {
	switch jv.Kind {
	case "null", "":
		return Null(), nil
	case "bool":
		return Bool(jv.Bool), nil
	case "int":
		return Int(jv.Int), nil
	case "float":
		return Float(jv.Float), nil
	case "string":
		return Str(jv.String), nil
	default:
		return Null(), fmt.Errorf("graph: unknown value kind %q", jv.Kind)
	}
}

type jsonNode struct {
	ID    string               `json:"id"`
	Label string               `json:"label,omitempty"`
	Props map[string]jsonValue `json:"props,omitempty"`
}

type jsonEdge struct {
	ID    string               `json:"id"`
	Label string               `json:"label,omitempty"`
	Src   string               `json:"src"`
	Tgt   string               `json:"tgt"`
	Props map[string]jsonValue `json:"props,omitempty"`
}

type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

// WriteJSON serializes g as JSON.
func WriteJSON(w io.Writer, g *Graph) error {
	jg := jsonGraph{}
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(i)
		jn := jsonNode{ID: string(n.ID), Label: n.Label}
		if len(n.Props) > 0 {
			jn.Props = make(map[string]jsonValue, len(n.Props))
			for k, v := range n.Props {
				jn.Props[k] = toJSONValue(v)
			}
		}
		jg.Nodes = append(jg.Nodes, jn)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		je := jsonEdge{
			ID:    string(e.ID),
			Label: e.Label,
			Src:   string(g.Node(e.Src).ID),
			Tgt:   string(g.Node(e.Tgt).ID),
		}
		if len(e.Props) > 0 {
			je.Props = make(map[string]jsonValue, len(e.Props))
			for k, v := range e.Props {
				je.Props[k] = toJSONValue(v)
			}
		}
		jg.Edges = append(jg.Edges, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jg)
}

// ReadJSON parses a graph from its JSON serialization.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("graph: decoding JSON: %w", err)
	}
	b := NewBuilder()
	for _, jn := range jg.Nodes {
		var props Props
		if len(jn.Props) > 0 {
			props = make(Props, len(jn.Props))
			for k, jv := range jn.Props {
				v, err := fromJSONValue(jv)
				if err != nil {
					return nil, fmt.Errorf("graph: node %q property %q: %w", jn.ID, k, err)
				}
				props[k] = v
			}
		}
		b.AddNode(NodeID(jn.ID), jn.Label, props)
	}
	for _, je := range jg.Edges {
		var props Props
		if len(je.Props) > 0 {
			props = make(Props, len(je.Props))
			for k, jv := range je.Props {
				v, err := fromJSONValue(jv)
				if err != nil {
					return nil, fmt.Errorf("graph: edge %q property %q: %w", je.ID, k, err)
				}
				props[k] = v
			}
		}
		b.AddEdge(EdgeID(je.ID), je.Label, NodeID(je.Src), NodeID(je.Tgt), props)
	}
	return b.Build()
}
