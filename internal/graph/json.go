package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// ValueJSON is the JSON wire form of a Value, shared by the graph JSON
// codec and the server's mutation API.
type ValueJSON struct {
	Kind string `json:"kind"`
	// Exactly one of the following is meaningful, per Kind.
	Bool   bool    `json:"bool,omitempty"`
	Int    int64   `json:"int,omitempty"`
	Float  float64 `json:"float,omitempty"`
	String string  `json:"string,omitempty"`
}

// valueToJSON renders a Value in its wire form.
func valueToJSON(v Value) ValueJSON {
	switch v.Kind() {
	case KindBool:
		b, _ := v.AsBool()
		return ValueJSON{Kind: "bool", Bool: b}
	case KindInt:
		i, _ := v.AsInt()
		return ValueJSON{Kind: "int", Int: i}
	case KindFloat:
		f, _ := v.AsFloat()
		return ValueJSON{Kind: "float", Float: f}
	case KindString:
		s, _ := v.AsString()
		return ValueJSON{Kind: "string", String: s}
	default:
		return ValueJSON{Kind: "null"}
	}
}

// ValueFromJSON parses a wire-form value; an empty kind means Null.
func ValueFromJSON(jv ValueJSON) (Value, error) {
	switch jv.Kind {
	case "null", "":
		return Null(), nil
	case "bool":
		return Bool(jv.Bool), nil
	case "int":
		return Int(jv.Int), nil
	case "float":
		return Float(jv.Float), nil
	case "string":
		return Str(jv.String), nil
	default:
		return Null(), fmt.Errorf("graph: unknown value kind %q", jv.Kind)
	}
}

type jsonNode struct {
	ID    string               `json:"id"`
	Label string               `json:"label,omitempty"`
	Props map[string]ValueJSON `json:"props,omitempty"`
}

type jsonEdge struct {
	ID    string               `json:"id"`
	Label string               `json:"label,omitempty"`
	Src   string               `json:"src"`
	Tgt   string               `json:"tgt"`
	Props map[string]ValueJSON `json:"props,omitempty"`
}

type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

// WriteJSON serializes g as JSON. Only live elements are written, so
// exporting an overlay graph and reading the result back yields its
// materialized state.
func WriteJSON(w io.Writer, g *Graph) error {
	jg := jsonGraph{}
	for i := 0; i < g.NumNodes(); i++ {
		if !g.NodeAlive(i) {
			continue
		}
		n := g.Node(i)
		jn := jsonNode{ID: string(n.ID), Label: n.Label}
		if len(n.Props) > 0 {
			jn.Props = make(map[string]ValueJSON, len(n.Props))
			for k, v := range n.Props {
				jn.Props[k] = valueToJSON(v)
			}
		}
		jg.Nodes = append(jg.Nodes, jn)
	}
	for i := 0; i < g.NumEdges(); i++ {
		if !g.EdgeAlive(i) {
			continue
		}
		e := g.Edge(i)
		je := jsonEdge{
			ID:    string(e.ID),
			Label: e.Label,
			Src:   string(g.Node(e.Src).ID),
			Tgt:   string(g.Node(e.Tgt).ID),
		}
		if len(e.Props) > 0 {
			je.Props = make(map[string]ValueJSON, len(e.Props))
			for k, v := range e.Props {
				je.Props[k] = valueToJSON(v)
			}
		}
		jg.Edges = append(jg.Edges, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jg)
}

// ReadJSON parses a graph from its JSON serialization.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("graph: decoding JSON: %w", err)
	}
	b := NewBuilder()
	for _, jn := range jg.Nodes {
		var props Props
		if len(jn.Props) > 0 {
			props = make(Props, len(jn.Props))
			for k, jv := range jn.Props {
				v, err := ValueFromJSON(jv)
				if err != nil {
					return nil, fmt.Errorf("graph: node %q property %q: %w", jn.ID, k, err)
				}
				props[k] = v
			}
		}
		b.AddNode(NodeID(jn.ID), jn.Label, props)
	}
	for _, je := range jg.Edges {
		var props Props
		if len(je.Props) > 0 {
			props = make(Props, len(je.Props))
			for k, jv := range je.Props {
				v, err := ValueFromJSON(jv)
				if err != nil {
					return nil, fmt.Errorf("graph: edge %q property %q: %w", je.ID, k, err)
				}
				props[k] = v
			}
		}
		b.AddEdge(EdgeID(je.ID), je.Label, NodeID(je.Src), NodeID(je.Tgt), props)
	}
	return b.Build()
}
