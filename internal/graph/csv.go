package graph

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ReadCSV builds a graph from two CSV streams in the usual bulk-import
// shape (one row per element, properties as extra columns):
//
//	nodes:  id,label[,prop1,prop2,…]
//	edges:  id,label,src,tgt[,prop1,prop2,…]
//
// The first row of each stream is the header; its names beyond the fixed
// prefix become property names. Property values are typed by shape:
// integers, then floats, then true/false, then strings; empty cells mean
// "property absent" (ρ is partial, Definition 6).
func ReadCSV(nodes, edges io.Reader) (*Graph, error) {
	b := NewBuilder()

	nh, nrows, err := readAll(nodes)
	if err != nil {
		return nil, fmt.Errorf("graph: nodes CSV: %w", err)
	}
	if err := checkHeader(nh, "id", "label"); err != nil {
		return nil, fmt.Errorf("graph: nodes CSV: %w", err)
	}
	for i, row := range nrows {
		if len(row) < 2 {
			return nil, fmt.Errorf("graph: nodes CSV row %d: need at least id,label", i+2)
		}
		props, err := rowProps(nh, row, 2)
		if err != nil {
			return nil, fmt.Errorf("graph: nodes CSV row %d: %w", i+2, err)
		}
		b.AddNode(NodeID(row[0]), row[1], props)
	}

	eh, erows, err := readAll(edges)
	if err != nil {
		return nil, fmt.Errorf("graph: edges CSV: %w", err)
	}
	if err := checkHeader(eh, "id", "label", "src", "tgt"); err != nil {
		return nil, fmt.Errorf("graph: edges CSV: %w", err)
	}
	for i, row := range erows {
		if len(row) < 4 {
			return nil, fmt.Errorf("graph: edges CSV row %d: need at least id,label,src,tgt", i+2)
		}
		props, err := rowProps(eh, row, 4)
		if err != nil {
			return nil, fmt.Errorf("graph: edges CSV row %d: %w", i+2, err)
		}
		b.AddEdge(EdgeID(row[0]), row[1], NodeID(row[2]), NodeID(row[3]), props)
	}
	return b.Build()
}

func readAll(r io.Reader) (header []string, rows [][]string, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	all, err := cr.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(all) == 0 {
		return nil, nil, fmt.Errorf("missing header row")
	}
	return all[0], all[1:], nil
}

func checkHeader(header []string, want ...string) error {
	if len(header) < len(want) {
		return fmt.Errorf("header %v must start with %v", header, want)
	}
	for i, w := range want {
		if !strings.EqualFold(strings.TrimSpace(header[i]), w) {
			return fmt.Errorf("header column %d is %q, want %q", i+1, header[i], w)
		}
	}
	return nil
}

func rowProps(header, row []string, fixed int) (Props, error) {
	var props Props
	for c := fixed; c < len(row) && c < len(header); c++ {
		cell := strings.TrimSpace(row[c])
		if cell == "" {
			continue
		}
		if props == nil {
			props = Props{}
		}
		props[strings.TrimSpace(header[c])] = parseCSVValue(cell)
	}
	return props, nil
}

// parseCSVValue types a CSV cell: int, float, bool, then string.
func parseCSVValue(s string) Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	switch s {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	return Str(s)
}

// WriteCSV serializes g in ReadCSV's two-stream bulk shape: one header plus
// one row per live element, property names as the extra columns (the sorted
// union over all elements of the stream), empty cells where ρ is undefined.
//
// Values are rendered to reparse with the same shape ReadCSV infers:
// integers bare, floats always with a '.' or exponent (so 1.0 does not come
// back as the integer 1), bools as true/false. String values that LOOK like
// numbers or bools, and empty strings, are inherently lossy in this format;
// use the JSON codec for exact round-trips.
func WriteCSV(nodes, edges io.Writer, g *Graph) error {
	nprops := collectPropNames(g, false)
	nw := csv.NewWriter(nodes)
	_ = nw.Write(append([]string{"id", "label"}, nprops...))
	for i := 0; i < g.NumNodes(); i++ {
		if !g.NodeAlive(i) {
			continue
		}
		n := g.Node(i)
		row := append(make([]string, 0, 2+len(nprops)), string(n.ID), n.Label)
		for _, p := range nprops {
			row = append(row, formatCSVCell(n.Props, p))
		}
		_ = nw.Write(row)
	}
	nw.Flush()
	if err := nw.Error(); err != nil {
		return fmt.Errorf("graph: nodes CSV: %w", err)
	}

	eprops := collectPropNames(g, true)
	ew := csv.NewWriter(edges)
	_ = ew.Write(append([]string{"id", "label", "src", "tgt"}, eprops...))
	for i := 0; i < g.NumEdges(); i++ {
		if !g.EdgeAlive(i) {
			continue
		}
		e := g.Edge(i)
		row := append(make([]string, 0, 4+len(eprops)),
			string(e.ID), e.Label, string(g.Node(e.Src).ID), string(g.Node(e.Tgt).ID))
		for _, p := range eprops {
			row = append(row, formatCSVCell(e.Props, p))
		}
		_ = ew.Write(row)
	}
	ew.Flush()
	if err := ew.Error(); err != nil {
		return fmt.Errorf("graph: edges CSV: %w", err)
	}
	return nil
}

// collectPropNames returns the sorted union of property names over the live
// nodes (or edges) of g — the extra header columns of one CSV stream.
func collectPropNames(g *Graph, edges bool) []string {
	set := map[string]struct{}{}
	if edges {
		for i := 0; i < g.NumEdges(); i++ {
			if !g.EdgeAlive(i) {
				continue
			}
			for name := range g.Edge(i).Props {
				set[name] = struct{}{}
			}
		}
	} else {
		for i := 0; i < g.NumNodes(); i++ {
			if !g.NodeAlive(i) {
				continue
			}
			for name := range g.Node(i).Props {
				set[name] = struct{}{}
			}
		}
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// formatCSVCell renders one property cell; absent (and Null) values become
// the empty cell ReadCSV skips.
func formatCSVCell(props Props, name string) string {
	v, ok := props[name]
	if !ok {
		return ""
	}
	switch v.Kind() {
	case KindBool:
		b, _ := v.AsBool()
		return strconv.FormatBool(b)
	case KindInt:
		i, _ := v.AsInt()
		return strconv.FormatInt(i, 10)
	case KindFloat:
		f, _ := v.AsFloat()
		s := strconv.FormatFloat(f, 'g', -1, 64)
		// An integral float renders bare ("2"), which would reparse as an
		// int; force the float shape.
		if !strings.ContainsAny(s, ".eEnI") {
			s += ".0"
		}
		return s
	case KindString:
		s, _ := v.AsString()
		return s
	}
	return ""
}
