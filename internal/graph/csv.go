package graph

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV builds a graph from two CSV streams in the usual bulk-import
// shape (one row per element, properties as extra columns):
//
//	nodes:  id,label[,prop1,prop2,…]
//	edges:  id,label,src,tgt[,prop1,prop2,…]
//
// The first row of each stream is the header; its names beyond the fixed
// prefix become property names. Property values are typed by shape:
// integers, then floats, then true/false, then strings; empty cells mean
// "property absent" (ρ is partial, Definition 6).
func ReadCSV(nodes, edges io.Reader) (*Graph, error) {
	b := NewBuilder()

	nh, nrows, err := readAll(nodes)
	if err != nil {
		return nil, fmt.Errorf("graph: nodes CSV: %w", err)
	}
	if err := checkHeader(nh, "id", "label"); err != nil {
		return nil, fmt.Errorf("graph: nodes CSV: %w", err)
	}
	for i, row := range nrows {
		if len(row) < 2 {
			return nil, fmt.Errorf("graph: nodes CSV row %d: need at least id,label", i+2)
		}
		props, err := rowProps(nh, row, 2)
		if err != nil {
			return nil, fmt.Errorf("graph: nodes CSV row %d: %w", i+2, err)
		}
		b.AddNode(NodeID(row[0]), row[1], props)
	}

	eh, erows, err := readAll(edges)
	if err != nil {
		return nil, fmt.Errorf("graph: edges CSV: %w", err)
	}
	if err := checkHeader(eh, "id", "label", "src", "tgt"); err != nil {
		return nil, fmt.Errorf("graph: edges CSV: %w", err)
	}
	for i, row := range erows {
		if len(row) < 4 {
			return nil, fmt.Errorf("graph: edges CSV row %d: need at least id,label,src,tgt", i+2)
		}
		props, err := rowProps(eh, row, 4)
		if err != nil {
			return nil, fmt.Errorf("graph: edges CSV row %d: %w", i+2, err)
		}
		b.AddEdge(EdgeID(row[0]), row[1], NodeID(row[2]), NodeID(row[3]), props)
	}
	return b.Build()
}

func readAll(r io.Reader) (header []string, rows [][]string, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	all, err := cr.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(all) == 0 {
		return nil, nil, fmt.Errorf("missing header row")
	}
	return all[0], all[1:], nil
}

func checkHeader(header []string, want ...string) error {
	if len(header) < len(want) {
		return fmt.Errorf("header %v must start with %v", header, want)
	}
	for i, w := range want {
		if !strings.EqualFold(strings.TrimSpace(header[i]), w) {
			return fmt.Errorf("header column %d is %q, want %q", i+1, header[i], w)
		}
	}
	return nil
}

func rowProps(header, row []string, fixed int) (Props, error) {
	var props Props
	for c := fixed; c < len(row) && c < len(header); c++ {
		cell := strings.TrimSpace(row[c])
		if cell == "" {
			continue
		}
		if props == nil {
			props = Props{}
		}
		props[strings.TrimSpace(header[c])] = parseCSVValue(cell)
	}
	return props, nil
}

// parseCSVValue types a CSV cell: int, float, bool, then string.
func parseCSVValue(s string) Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	switch s {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	return Str(s)
}
