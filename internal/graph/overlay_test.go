package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// dumpGraph renders the full external view of a graph — live nodes, live
// edges, properties, adjacency (as edge-ID sets), and the per-label
// indexes — in a canonical order, so an overlay graph can be compared
// byte-for-byte against its materialized rebuild.
func dumpGraph(g *Graph) string {
	var b strings.Builder
	var nodeIDs []string
	for i := 0; i < g.NumNodes(); i++ {
		if g.NodeAlive(i) {
			nodeIDs = append(nodeIDs, string(g.nodes[i].ID))
		}
	}
	sort.Strings(nodeIDs)
	fmt.Fprintf(&b, "nodes=%d edges=%d\n", g.NumLiveNodes(), g.NumLiveEdges())
	for _, id := range nodeIDs {
		i := g.MustNode(NodeID(id))
		n := g.Node(i)
		fmt.Fprintf(&b, "node %s label=%q props={%s} out=[%s] in=[%s]\n",
			id, n.Label, propsString(n.Props),
			edgeIDList(g, g.Out(i)), edgeIDList(g, g.In(i)))
		for _, lab := range g.EdgeLabels() {
			lid, ok := g.LabelID(lab)
			if !ok {
				continue
			}
			if row := g.OutWithLabel(i, lid); len(row) > 0 {
				fmt.Fprintf(&b, "  out[%s]=[%s]\n", lab, edgeIDList(g, row))
			}
			if row := g.InWithLabel(i, lid); len(row) > 0 {
				fmt.Fprintf(&b, "  in[%s]=[%s]\n", lab, edgeIDList(g, row))
			}
		}
	}
	var edgeIDs []string
	for i := 0; i < g.NumEdges(); i++ {
		if g.EdgeAlive(i) {
			edgeIDs = append(edgeIDs, string(g.edges[i].ID))
		}
	}
	sort.Strings(edgeIDs)
	for _, id := range edgeIDs {
		i := g.MustEdge(EdgeID(id))
		e := g.Edge(i)
		fmt.Fprintf(&b, "edge %s label=%q %s->%s props={%s}\n",
			id, e.Label, g.nodes[e.Src].ID, g.nodes[e.Tgt].ID, propsString(e.Props))
	}
	labels := append([]string(nil), g.EdgeLabels()...)
	sort.Strings(labels)
	for _, lab := range labels {
		if ids := edgeIDList(g, g.EdgesWithLabel(lab)); ids != "" {
			fmt.Fprintf(&b, "label %q: [%s]\n", lab, ids)
		}
	}
	fmt.Fprintf(&b, "all: [%s]\n", edgeIDList(g, g.EdgesWithLabel("")))
	return b.String()
}

func propsString(p Props) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, p[k])
	}
	return strings.Join(parts, ",")
}

// edgeIDList renders a set of edge indexes as sorted external IDs, so
// overlay row order (label-sorted) and CSR order compare equal.
func edgeIDList(g *Graph, edges []int) string {
	ids := make([]string, len(edges))
	for i, ei := range edges {
		ids[i] = string(g.edges[ei].ID)
	}
	sort.Strings(ids)
	return strings.Join(ids, " ")
}

func seedGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder().
		AddNode("a", "Person", Props{"age": Int(30)}).
		AddNode("b", "Person", nil).
		AddNode("c", "City", Props{"name": Str("Oslo")}).
		AddEdge("e1", "knows", "a", "b", Props{"since": Int(2019)}).
		AddEdge("e2", "knows", "b", "a", nil).
		AddEdge("e3", "lives_in", "a", "c", nil).
		AddEdge("e4", "lives_in", "b", "c", nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkEquivalence asserts that the overlay graph's external view is
// byte-identical to a full materialized rebuild of the same state.
func checkEquivalence(t *testing.T, g *Graph) {
	t.Helper()
	m, err := g.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if m.DeltaOps() != 0 {
		t.Fatalf("materialized graph reports %d delta ops", m.DeltaOps())
	}
	got, want := dumpGraph(g), dumpGraph(m)
	if got != want {
		t.Fatalf("overlay view diverges from materialized rebuild:\n--- overlay ---\n%s--- materialized ---\n%s", got, want)
	}
}

func TestApplyBasicOps(t *testing.T) {
	g := seedGraph(t)
	g2, err := g.Apply([]Mutation{
		{Op: MutAddNode, ID: "d", Label: "Person", Props: Props{"age": Int(7)}},
		{Op: MutAddEdge, ID: "e5", Label: "knows", Src: "c", Tgt: "d"},
		{Op: MutAddEdge, ID: "e6", Label: "visited", Src: "d", Tgt: "c"},
		{Op: MutSetNodeProp, ID: "a", Prop: "age", Value: Int(31)},
		{Op: MutSetEdgeProp, ID: "e1", Prop: "since", Value: Null()},
		{Op: MutRemoveEdge, ID: "e2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumLiveNodes() != 4 || g2.NumLiveEdges() != 5 {
		t.Fatalf("live counts = %d nodes, %d edges; want 4, 5", g2.NumLiveNodes(), g2.NumLiveEdges())
	}
	if g2.DeltaOps() != 6 {
		t.Fatalf("DeltaOps = %d, want 6", g2.DeltaOps())
	}
	if v, ok := g2.NodeProp(g2.MustNode("a"), "age"); !ok || v != Int(31) {
		t.Fatalf("a.age = %v, %v; want 31", v, ok)
	}
	if _, ok := g2.EdgeProp(g2.MustEdge("e1"), "since"); ok {
		t.Fatal("e1.since survived a Null set")
	}
	if _, ok := g2.EdgeIndex("e2"); ok {
		t.Fatal("removed edge e2 still resolves")
	}
	if _, ok := g2.LabelID("visited"); !ok {
		t.Fatal("new label 'visited' not interned")
	}
	checkEquivalence(t, g2)

	// The predecessor version is untouched.
	if g.NumLiveEdges() != 4 || g.DeltaOps() != 0 {
		t.Fatalf("base mutated: %d live edges, %d ops", g.NumLiveEdges(), g.DeltaOps())
	}
	if v, _ := g.NodeProp(g.MustNode("a"), "age"); v != Int(30) {
		t.Fatalf("base a.age changed to %v", v)
	}
	if _, ok := g.EdgeIndex("e2"); !ok {
		t.Fatal("base lost edge e2")
	}
}

func TestApplyRemoveNodeCascades(t *testing.T) {
	g := seedGraph(t)
	g2, err := g.Apply([]Mutation{{Op: MutRemoveNode, ID: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	// a had e1 out, e2 in, e3 out — all must die; e4 survives.
	if g2.NumLiveNodes() != 2 || g2.NumLiveEdges() != 1 {
		t.Fatalf("live counts = %d, %d; want 2 nodes, 1 edge", g2.NumLiveNodes(), g2.NumLiveEdges())
	}
	for _, id := range []EdgeID{"e1", "e2", "e3"} {
		if _, ok := g2.EdgeIndex(id); ok {
			t.Fatalf("edge %s survived its endpoint's removal", id)
		}
	}
	if _, ok := g2.EdgeIndex("e4"); !ok {
		t.Fatal("unrelated edge e4 removed")
	}
	checkEquivalence(t, g2)

	// Re-adding the ID creates a fresh node with no adjacency.
	g3, err := g2.Apply([]Mutation{
		{Op: MutAddNode, ID: "a", Label: "Robot"},
		{Op: MutAddEdge, ID: "e5", Label: "knows", Src: "a", Tgt: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	i := g3.MustNode("a")
	if lab := g3.Node(i).Label; lab != "Robot" {
		t.Fatalf("re-added node label = %q", lab)
	}
	if d := g3.OutDegree(i); d != 1 {
		t.Fatalf("re-added node out-degree = %d, want 1", d)
	}
	checkEquivalence(t, g3)
}

func TestApplySelfLoopRemoval(t *testing.T) {
	g := seedGraph(t)
	g2, err := g.Apply([]Mutation{{Op: MutAddEdge, ID: "loop", Label: "self", Src: "a", Tgt: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	g3, err := g2.Apply([]Mutation{{Op: MutRemoveNode, ID: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumLiveEdges() != 1 { // only e4 remains
		t.Fatalf("live edges = %d, want 1", g3.NumLiveEdges())
	}
	checkEquivalence(t, g3)
}

func TestApplyErrorsAreAtomic(t *testing.T) {
	g := seedGraph(t)
	cases := [][]Mutation{
		{{Op: MutAddNode, ID: "a", Label: "Person"}},                               // duplicate node
		{{Op: MutAddEdge, ID: "e1", Label: "x", Src: "a", Tgt: "b"}},               // duplicate edge
		{{Op: MutAddEdge, ID: "e9", Label: "x", Src: "zz", Tgt: "b"}},              // unknown src
		{{Op: MutAddEdge, ID: "e9", Label: "x", Src: "a", Tgt: "zz"}},              // unknown tgt
		{{Op: MutRemoveNode, ID: "zz"}},                                            // unknown node
		{{Op: MutRemoveEdge, ID: "zz"}},                                            // unknown edge
		{{Op: MutSetNodeProp, ID: "zz", Prop: "p", Value: Int(1)}},                 // unknown node
		{{Op: MutSetEdgeProp, ID: "zz", Prop: "p", Value: Int(1)}},                 // unknown edge
		{{Op: MutSetNodeProp, ID: "a", Value: Int(1)}},                             // empty prop name
		{{Op: MutAddNode, ID: "", Label: "x"}},                                     // empty ID
		{{Op: 0, ID: "x"}},                                                         // unknown op
		{{Op: MutAddNode, ID: "fresh", Label: "x"}, {Op: MutRemoveEdge, ID: "zz"}}, // fails mid-batch
	}
	before := dumpGraph(g)
	for i, muts := range cases {
		g2, err := g.Apply(muts)
		if err == nil {
			t.Fatalf("case %d: Apply succeeded, want error", i)
		}
		if g2 != nil {
			t.Fatalf("case %d: failed Apply returned a graph", i)
		}
	}
	if after := dumpGraph(g); after != before {
		t.Fatal("failed Apply batches changed the base graph")
	}
}

// TestApplyRandomizedChains drives long mutation chains over random graphs
// and checks, at every step, overlay-vs-materialized equivalence and that
// the immediate predecessor's view never changes.
func TestApplyRandomizedChains(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			b := NewBuilder()
			const n0 = 30
			labels := []string{"a", "b", "c"}
			for i := 0; i < n0; i++ {
				b.AddNode(NodeID(fmt.Sprintf("v%d", i)), "", Props{"k": Int(int64(i))})
			}
			for e := 0; e < 60; e++ {
				b.AddEdge(EdgeID(fmt.Sprintf("e%d", e)), labels[rng.Intn(3)],
					NodeID(fmt.Sprintf("v%d", rng.Intn(n0))),
					NodeID(fmt.Sprintf("v%d", rng.Intn(n0))), nil)
			}
			g := b.MustBuild()

			liveNodes := map[string]bool{}
			liveEdges := map[string]bool{}
			for i := 0; i < n0; i++ {
				liveNodes[fmt.Sprintf("v%d", i)] = true
			}
			for e := 0; e < 60; e++ {
				liveEdges[fmt.Sprintf("e%d", e)] = true
			}
			pick := func(set map[string]bool) string {
				keys := make([]string, 0, len(set))
				for k := range set {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				return keys[rng.Intn(len(keys))]
			}
			nextID := 1000
			for step := 0; step < 25; step++ {
				var muts []Mutation
				for len(muts) < 1+rng.Intn(6) {
					switch rng.Intn(6) {
					case 0:
						id := fmt.Sprintf("v%d", nextID)
						nextID++
						muts = append(muts, Mutation{Op: MutAddNode, ID: id, Label: "L", Props: Props{"k": Int(int64(nextID))}})
						liveNodes[id] = true
					case 1:
						if len(liveNodes) < 5 {
							continue
						}
						id := pick(liveNodes)
						muts = append(muts, Mutation{Op: MutRemoveNode, ID: id})
						delete(liveNodes, id)
						// Cascaded edges are detected lazily: the dump
						// comparison covers them; drop our bookkeeping of
						// edges whose endpoint is gone at apply time.
					case 2:
						id := fmt.Sprintf("e%d", nextID)
						nextID++
						muts = append(muts, Mutation{Op: MutAddEdge, ID: id,
							Label: labels[rng.Intn(3)], Src: pick(liveNodes), Tgt: pick(liveNodes)})
						liveEdges[id] = true
					case 3:
						if len(liveEdges) == 0 {
							continue
						}
						id := pick(liveEdges)
						if _, ok := g.EdgeIndex(EdgeID(id)); !ok {
							delete(liveEdges, id) // died in an earlier cascade
							continue
						}
						muts = append(muts, Mutation{Op: MutRemoveEdge, ID: id})
						delete(liveEdges, id)
					case 4:
						muts = append(muts, Mutation{Op: MutSetNodeProp, ID: pick(liveNodes), Prop: "k", Value: Int(int64(rng.Intn(100)))})
					case 5:
						muts = append(muts, Mutation{Op: MutSetNodeProp, ID: pick(liveNodes), Prop: "k", Value: Null()})
					}
				}
				// Mid-batch validity: a RemoveNode earlier in the batch may
				// cascade away an edge a later RemoveEdge targets, or a
				// node a later AddEdge references. Filter against a dry-run
				// application to keep batches valid.
				valid := muts[:0]
				probe := g
				for _, m := range muts {
					ng, err := probe.Apply([]Mutation{m})
					if err != nil {
						continue
					}
					probe = ng
					valid = append(valid, m)
				}
				before := dumpGraph(g)
				g2, err := g.Apply(valid)
				if err != nil {
					t.Fatalf("step %d: Apply: %v", step, err)
				}
				if dumpGraph(g) != before {
					t.Fatalf("step %d: Apply mutated its receiver", step)
				}
				if got, want := dumpGraph(g2), dumpGraph(probe); got != want {
					t.Fatalf("step %d: batch apply diverges from one-by-one apply", step)
				}
				checkEquivalence(t, g2)
				g = g2
			}
			if g.DeltaOps() == 0 {
				t.Fatal("chain ended with zero delta ops")
			}
			m, err := g.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			checkEquivalence(t, m)
		})
	}
}

func TestParseMutOpRoundTrip(t *testing.T) {
	for _, op := range []MutOp{MutAddNode, MutRemoveNode, MutAddEdge, MutRemoveEdge, MutSetNodeProp, MutSetEdgeProp} {
		back, err := ParseMutOp(op.String())
		if err != nil || back != op {
			t.Fatalf("ParseMutOp(%q) = %v, %v", op.String(), back, err)
		}
	}
	if _, err := ParseMutOp("bogus"); err == nil {
		t.Fatal("ParseMutOp accepted a bogus op")
	}
}
