// Package graph implements the two graph data models of Section 2 of the
// paper: edge-labeled graphs (Definition 4) and labeled property graphs
// (Definition 6). A single Graph type covers both: an edge-labeled graph is a
// property graph whose nodes carry no labels or properties, and the paper's
// restriction operation λ|E is the identity on this representation.
//
// Nodes and edges have external string identifiers (as in the paper's a1–a6,
// t1–t10) and are additionally addressable by dense integer indexes, which is
// what the evaluation packages use.
package graph

import (
	"fmt"
	"sort"
)

// NodeID is an external node identifier (an element of the paper's set Nodes).
type NodeID string

// EdgeID is an external edge identifier (an element of the paper's set Edges).
type EdgeID string

// Props is a property map ρ restricted to one object: property name → value.
type Props map[string]Value

func (p Props) clone() Props {
	if len(p) == 0 {
		return nil
	}
	c := make(Props, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// Node is a node of a property graph.
type Node struct {
	ID    NodeID
	Label string
	Props Props
}

// Edge is a directed edge of a property graph: src --label--> tgt.
// Src and Tgt are dense node indexes into the owning Graph.
type Edge struct {
	ID    EdgeID
	Label string
	Src   int
	Tgt   int
	Props Props
}

// Graph is a labeled property graph G = (N, E, src, tgt, λ, ρ)
// (Definition 6). It also serves as an edge-labeled graph (Definition 4) by
// simply ignoring node labels and all properties, mirroring the paper's
// observation that (N, E, src, tgt, λ|E) is an edge-labeled graph.
//
// A Graph is immutable once built (use Builder); all read methods are safe
// for concurrent use.
type Graph struct {
	nodes []Node
	edges []Edge

	nodeByID map[NodeID]int
	edgeByID map[EdgeID]int

	out [][]int // node index -> indexes of outgoing edges
	in  [][]int // node index -> indexes of incoming edges

	labels  []string       // sorted distinct edge labels; the slice index is the label ID
	labelID map[string]int // interned edge label -> dense label ID

	edgeLabel []int // edge index -> label ID

	// Label-indexed CSR adjacency (Section 6.2 evaluation support): flat
	// per-node edge lists grouped by label ID, so that automaton transition
	// guards can be intersected against exactly the matching edges instead
	// of scanning the full out/in lists.
	outCSR csr
	inCSR  csr

	// Global per-label edge index: labelEdges holds all edge indexes grouped
	// by label ID (ascending within each group); labelStart[l]..labelStart[l+1]
	// delimits label l's group.
	labelEdges []int
	labelStart []int

	// ov, when non-nil, layers a mutation delta over the materialized base
	// of this graph's version chain (see overlay.go): the dense slices above
	// are extended past the base's length, the maps and CSR indexes remain
	// the base's and are consulted through the overlay's overrides. A graph
	// built by Builder has ov == nil and pays no overlay cost on reads.
	ov *overlay
}

// csr is a flat compressed-sparse-row adjacency index: edges holds edge
// indexes grouped by node and, within a node, sorted by (label ID, edge
// index); start[n]..start[n+1] delimits node n's region.
type csr struct {
	edges []int
	start []int
}

// withLabel returns the sub-slice of node n's region whose edges carry the
// given label ID, located by binary search on the label-sorted region.
func (c *csr) withLabel(edgeLabel []int, n, labelID int) []int {
	region := c.edges[c.start[n]:c.start[n+1]]
	lo := sort.Search(len(region), func(i int) bool { return edgeLabel[region[i]] >= labelID })
	hi := lo + sort.Search(len(region)-lo, func(i int) bool { return edgeLabel[region[lo+i]] > labelID })
	return region[lo:hi]
}

// NumNodes returns |N|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with dense index i.
func (g *Graph) Node(i int) Node {
	n := g.nodes[i]
	if g.ov != nil {
		if p, ok := g.ov.nodeProps[i]; ok {
			n.Props = p
		}
	}
	return n
}

// Edge returns the edge with dense index i.
func (g *Graph) Edge(i int) Edge {
	e := g.edges[i]
	if g.ov != nil {
		if p, ok := g.ov.edgeProps[i]; ok {
			e.Props = p
		}
	}
	return e
}

// EdgeSrc returns edge i's source node index without copying the Edge
// struct — kernel sweep loops read millions of endpoints per query.
func (g *Graph) EdgeSrc(i int) int { return g.edges[i].Src }

// EdgeTgt returns edge i's target node index, see EdgeSrc.
func (g *Graph) EdgeTgt(i int) int { return g.edges[i].Tgt }

// NodeIndex resolves an external node ID to its dense index.
func (g *Graph) NodeIndex(id NodeID) (int, bool) {
	if g.ov != nil {
		if i, ok := g.ov.nodeIDs[id]; ok {
			return i, i >= 0
		}
	}
	i, ok := g.nodeByID[id]
	return i, ok
}

// EdgeIndex resolves an external edge ID to its dense index.
func (g *Graph) EdgeIndex(id EdgeID) (int, bool) {
	if g.ov != nil {
		if i, ok := g.ov.edgeIDs[id]; ok {
			return i, i >= 0
		}
	}
	i, ok := g.edgeByID[id]
	return i, ok
}

// MustNode resolves id or panics; intended for tests and examples where the
// node is known to exist.
func (g *Graph) MustNode(id NodeID) int {
	i, ok := g.NodeIndex(id)
	if !ok {
		panic(fmt.Sprintf("graph: no node %q", id))
	}
	return i
}

// MustEdge resolves id or panics; intended for tests and examples.
func (g *Graph) MustEdge(id EdgeID) int {
	i, ok := g.EdgeIndex(id)
	if !ok {
		panic(fmt.Sprintf("graph: no edge %q", id))
	}
	return i
}

// Out returns the indexes of edges leaving node n. The returned slice must
// not be modified. On an overlay graph, rows of touched nodes come back in
// (label ID, edge index) order — the CSR region order — rather than pure
// ascending edge order.
func (g *Graph) Out(n int) []int {
	if g.ov != nil {
		if r, ok := g.ov.outRows[n]; ok {
			return r
		}
	}
	return g.out[n]
}

// In returns the indexes of edges entering node n. The returned slice must
// not be modified; see Out on ordering.
func (g *Graph) In(n int) []int {
	if g.ov != nil {
		if r, ok := g.ov.inRows[n]; ok {
			return r
		}
	}
	return g.in[n]
}

// OutDegree returns the number of edges leaving node n.
func (g *Graph) OutDegree(n int) int { return len(g.Out(n)) }

// InDegree returns the number of edges entering node n.
func (g *Graph) InDegree(n int) int { return len(g.In(n)) }

// EdgeLabels returns the sorted set of distinct edge labels in the graph.
// The slice index of a label is its dense label ID (see LabelID).
func (g *Graph) EdgeLabels() []string { return g.labels }

// NumLabels returns the number of distinct edge labels.
func (g *Graph) NumLabels() int { return len(g.labels) }

// LabelID resolves an edge label to its dense ID; ok is false when no edge
// of the graph carries the label. IDs are assigned in sorted label order
// (labels first seen by a mutation extend the numbering at the end), so
// they are stable across serialization round-trips of the same graph and
// across every version of one chain.
func (g *Graph) LabelID(lab string) (int, bool) {
	if g.ov != nil {
		if id, ok := g.ov.labelIDs[lab]; ok {
			return id, true
		}
	}
	id, ok := g.labelID[lab]
	return id, ok
}

// LabelName returns the label with dense ID id.
func (g *Graph) LabelName(id int) string { return g.labels[id] }

// EdgeLabelID returns the dense label ID of edge ei.
func (g *Graph) EdgeLabelID(ei int) int { return g.edgeLabel[ei] }

// OutWithLabel returns the indexes of edges leaving node n whose label has
// the given ID, in ascending edge-index order. The returned slice aliases
// the graph's CSR index (or the overlay's row) and must not be modified.
func (g *Graph) OutWithLabel(n, labelID int) []int {
	if g.ov != nil {
		if row, ok := g.ov.outRows[n]; ok {
			run := labelRun(row, g.edgeLabel, labelID)
			return row[run[0]:run[1]]
		}
	}
	return g.outCSR.withLabel(g.edgeLabel, n, labelID)
}

// InWithLabel returns the indexes of edges entering node n whose label has
// the given ID, in ascending edge-index order. The returned slice aliases
// the graph's CSR index (or the overlay's row) and must not be modified.
func (g *Graph) InWithLabel(n, labelID int) []int {
	if g.ov != nil {
		if row, ok := g.ov.inRows[n]; ok {
			run := labelRun(row, g.edgeLabel, labelID)
			return row[run[0]:run[1]]
		}
	}
	return g.inCSR.withLabel(g.edgeLabel, n, labelID)
}

// EdgesWithLabelID returns all edge indexes carrying the label with the
// given ID, ascending. The returned slice aliases the graph's index and must
// not be modified — except on an overlay graph, where it is freshly built
// from the base index minus tombstones plus the overlay's additions.
func (g *Graph) EdgesWithLabelID(labelID int) []int {
	if g.ov == nil {
		return g.labelEdges[g.labelStart[labelID]:g.labelStart[labelID+1]]
	}
	var out []int
	if labelID < len(g.labelStart)-1 {
		base := g.labelEdges[g.labelStart[labelID]:g.labelStart[labelID+1]]
		out = make([]int, 0, len(base)+len(g.ov.labelAdds[labelID]))
		for _, ei := range base {
			if g.EdgeAlive(ei) {
				out = append(out, ei)
			}
		}
	}
	// Added edges have indexes past every base edge, so appending keeps the
	// ascending order.
	for _, ei := range g.ov.labelAdds[labelID] {
		if g.EdgeAlive(ei) {
			out = append(out, ei)
		}
	}
	return out
}

// NodeProp returns ρ(node i, name); the ok result is false when the partial
// function ρ is undefined there.
func (g *Graph) NodeProp(i int, name string) (Value, bool) {
	if g.ov != nil {
		if p, ok := g.ov.nodeProps[i]; ok {
			v, ok := p[name]
			return v, ok
		}
	}
	v, ok := g.nodes[i].Props[name]
	return v, ok
}

// EdgeProp returns ρ(edge i, name); the ok result is false when ρ is
// undefined there.
func (g *Graph) EdgeProp(i int, name string) (Value, bool) {
	if g.ov != nil {
		if p, ok := g.ov.edgeProps[i]; ok {
			v, ok := p[name]
			return v, ok
		}
	}
	v, ok := g.edges[i].Props[name]
	return v, ok
}

// Nodes returns all live node indexes whose label is lab; lab == "" matches
// every node.
func (g *Graph) NodesWithLabel(lab string) []int {
	var out []int
	for i := range g.nodes {
		if (lab == "" || g.nodes[i].Label == lab) && g.NodeAlive(i) {
			out = append(out, i)
		}
	}
	return out
}

// EdgesWithLabel returns all live edge indexes whose label is lab; lab == ""
// matches every edge. Known labels are answered from the per-label index in
// O(1) on a materialized graph; the returned slice must not be modified.
func (g *Graph) EdgesWithLabel(lab string) []int {
	if lab == "" {
		out := make([]int, 0, len(g.edges))
		for i := range g.edges {
			if g.EdgeAlive(i) {
				out = append(out, i)
			}
		}
		return out
	}
	id, ok := g.LabelID(lab)
	if !ok {
		return nil
	}
	return g.EdgesWithLabelID(id)
}

// Object addresses a node or an edge of a graph uniformly ("objects" in the
// paper's terminology, "elements" in GQL/SQL-PGQ). The zero Object is the
// node with index 0; use MakeNodeObject/MakeEdgeObject.
type Object struct {
	isEdge bool
	idx    int
}

// MakeNodeObject returns the Object addressing node index i.
func MakeNodeObject(i int) Object { return Object{isEdge: false, idx: i} }

// MakeEdgeObject returns the Object addressing edge index i.
func MakeEdgeObject(i int) Object { return Object{isEdge: true, idx: i} }

// IsEdge reports whether o addresses an edge.
func (o Object) IsEdge() bool { return o.isEdge }

// IsNode reports whether o addresses a node.
func (o Object) IsNode() bool { return !o.isEdge }

// Index returns the dense node or edge index addressed by o.
func (o Object) Index() int { return o.idx }

// Label returns λ(o) in g.
func (g *Graph) Label(o Object) string {
	if o.isEdge {
		return g.edges[o.idx].Label
	}
	return g.nodes[o.idx].Label
}

// Prop returns ρ(o, name) in g.
func (g *Graph) Prop(o Object, name string) (Value, bool) {
	if o.isEdge {
		return g.EdgeProp(o.idx, name)
	}
	return g.NodeProp(o.idx, name)
}

// ObjectID renders the external identifier of o.
func (g *Graph) ObjectID(o Object) string {
	if o.isEdge {
		return string(g.edges[o.idx].ID)
	}
	return string(g.nodes[o.idx].ID)
}

// Builder assembles a Graph. Methods record the first error encountered and
// become no-ops afterwards; check Err or the error from Build.
type Builder struct {
	g   Graph
	err error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{g: Graph{
		nodeByID: make(map[NodeID]int),
		edgeByID: make(map[EdgeID]int),
	}}
}

// Err returns the first error recorded by the builder, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// AddNode adds a node with the given external ID, label, and properties.
// Props may be nil. Adding a duplicate ID is an error.
func (b *Builder) AddNode(id NodeID, label string, props Props) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.g.nodeByID[id]; dup {
		b.fail("graph: duplicate node ID %q", id)
		return b
	}
	b.g.nodeByID[id] = len(b.g.nodes)
	b.g.nodes = append(b.g.nodes, Node{ID: id, Label: label, Props: props.clone()})
	return b
}

// AddEdge adds a directed edge src --label--> tgt with the given external ID.
// Both endpoints must have been added already. Props may be nil.
func (b *Builder) AddEdge(id EdgeID, label string, src, tgt NodeID, props Props) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.g.edgeByID[id]; dup {
		b.fail("graph: duplicate edge ID %q", id)
		return b
	}
	si, ok := b.g.nodeByID[src]
	if !ok {
		b.fail("graph: edge %q references unknown source node %q", id, src)
		return b
	}
	ti, ok := b.g.nodeByID[tgt]
	if !ok {
		b.fail("graph: edge %q references unknown target node %q", id, tgt)
		return b
	}
	b.g.edgeByID[id] = len(b.g.edges)
	b.g.edges = append(b.g.edges, Edge{ID: id, Label: label, Src: si, Tgt: ti, Props: props.clone()})
	return b
}

// Build finalizes the graph, computing adjacency indexes: the dense out/in
// lists, the interned label numbering, and the label-indexed CSR adjacency.
// The Builder must not be used afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := b.g
	g.out = make([][]int, len(g.nodes))
	g.in = make([][]int, len(g.nodes))
	labelSet := make(map[string]struct{})
	for ei := range g.edges {
		e := &g.edges[ei]
		g.out[e.Src] = append(g.out[e.Src], ei)
		g.in[e.Tgt] = append(g.in[e.Tgt], ei)
		labelSet[e.Label] = struct{}{}
	}
	g.labels = make([]string, 0, len(labelSet))
	for l := range labelSet {
		g.labels = append(g.labels, l)
	}
	sort.Strings(g.labels)
	// Intern: one labels slice + ID map shared by every index. Label IDs
	// follow sorted order, so they are stable across serialization round
	// trips of the same label set. Edge labels are rewritten to the canonical
	// interned string so duplicates share one backing array.
	g.labelID = make(map[string]int, len(g.labels))
	for id, l := range g.labels {
		g.labelID[l] = id
	}
	g.edgeLabel = make([]int, len(g.edges))
	for ei := range g.edges {
		e := &g.edges[ei]
		id := g.labelID[e.Label]
		e.Label = g.labels[id]
		g.edgeLabel[ei] = id
	}
	g.outCSR = buildCSR(g.out, g.edgeLabel)
	g.inCSR = buildCSR(g.in, g.edgeLabel)
	g.labelEdges, g.labelStart = buildLabelEdges(g.edgeLabel, len(g.labels))
	b.g = Graph{} // prevent reuse
	return &g, nil
}

// buildCSR flattens per-node edge lists into CSR form, sorting each node's
// region by (label ID, edge index). The incoming lists are already in
// ascending edge order, so a stable sort by label preserves that tiebreak.
func buildCSR(adj [][]int, edgeLabel []int) csr {
	total := 0
	for _, l := range adj {
		total += len(l)
	}
	c := csr{edges: make([]int, 0, total), start: make([]int, len(adj)+1)}
	for n, l := range adj {
		c.start[n] = len(c.edges)
		region := append(c.edges, l...)
		seg := region[len(c.edges):]
		sort.SliceStable(seg, func(i, j int) bool {
			return edgeLabel[seg[i]] < edgeLabel[seg[j]]
		})
		c.edges = region
	}
	c.start[len(adj)] = len(c.edges)
	return c
}

// buildLabelEdges groups all edge indexes by label ID (counting sort, so
// each group is ascending).
func buildLabelEdges(edgeLabel []int, numLabels int) (edges, start []int) {
	start = make([]int, numLabels+1)
	for _, id := range edgeLabel {
		start[id+1]++
	}
	for l := 0; l < numLabels; l++ {
		start[l+1] += start[l]
	}
	edges = make([]int, len(edgeLabel))
	fill := append([]int(nil), start[:numLabels]...)
	for ei, id := range edgeLabel {
		edges[fill[id]] = ei
		fill[id]++
	}
	return edges, start
}

// MustBuild is Build that panics on error; for tests, examples, and
// generators of known-valid graphs.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
