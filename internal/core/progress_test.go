package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/obs"
)

// TestQueryCtxThreadsProgress: a Request.Progress reaches the kernel through
// the meter — after the query, the live counters agree with the response's
// own accounting and the stage advanced through the evaluation pipeline.
func TestQueryCtxThreadsProgress(t *testing.T) {
	eng := New(gen.Clique(16, "a"))
	p := &obs.Progress{}
	resp, err := eng.QueryCtx(context.Background(), Request{
		Query:    "a*",
		Progress: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	if snap.States == 0 {
		t.Fatal("Progress recorded zero states for a clique sweep")
	}
	if snap.States != resp.StatesVisited {
		t.Fatalf("Progress states = %d, response StatesVisited = %d; they share one meter and must agree",
			snap.States, resp.StatesVisited)
	}
	if snap.Edges == 0 {
		t.Fatal("Progress recorded zero edges; kernel sweep must report edge scans")
	}
	// The last span QueryCtx opens for an RPQ is "enumerate" (after
	// "kernel"), and the stage tracks span starts.
	if snap.Stage != "enumerate" {
		t.Fatalf("final stage = %q, want enumerate", snap.Stage)
	}
}

// TestQueryCtxProgressRows: row budgets and row progress flow through the
// same meter on the CRPQ path.
func TestQueryCtxProgressRows(t *testing.T) {
	eng := New(gen.BankEdgeLabeled())
	p := &obs.Progress{}
	resp, err := eng.QueryCtx(context.Background(), Request{
		Query:    "q(x,y) :- Transfer(x,y)",
		Progress: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "rows" || resp.Rows == nil || len(resp.Rows.Rows) == 0 {
		t.Fatalf("expected rows, got %+v", resp)
	}
	if got := p.Snapshot().Rows; got != resp.RowsProduced {
		t.Fatalf("Progress rows = %d, response RowsProduced = %d", got, resp.RowsProduced)
	}
}

// TestConcurrentQueriesIndependentProgress is the introspection regression
// test: two queries running concurrently on the SAME engine must have fully
// independent progress and cancellation. Canceling one query's context
// kills only that query; the survivor completes and its Progress reflects
// only its own work.
func TestConcurrentQueriesIndependentProgress(t *testing.T) {
	eng := New(gen.Clique(24, "a"))

	ctx1, cancel1 := context.WithCancel(context.Background())
	cancel1() // query 1 is doomed before it starts
	ctx2 := context.Background()

	p1, p2 := &obs.Progress{}, &obs.Progress{}
	var (
		wg         sync.WaitGroup
		err1, err2 error
		resp2      *Response
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err1 = eng.QueryCtx(ctx1, Request{Query: "a*", Progress: p1})
	}()
	go func() {
		defer wg.Done()
		resp2, err2 = eng.QueryCtx(ctx2, Request{Query: "a*", Progress: p2})
	}()
	wg.Wait()

	if !errors.Is(err1, eval.ErrCanceled) {
		t.Fatalf("query 1 (canceled ctx) err = %v, want ErrCanceled", err1)
	}
	if err2 != nil {
		t.Fatalf("query 2 (live ctx) failed: %v — cancellation leaked across queries", err2)
	}
	s1, s2 := p1.Snapshot(), p2.Snapshot()
	if s2.States != resp2.StatesVisited {
		t.Fatalf("survivor progress states = %d, want %d", s2.States, resp2.StatesVisited)
	}
	// The canceled query stops at the first amortized tick, so it observes
	// at most one tick interval of states — far less than the survivor's
	// full sweep over a 24-clique product.
	if s1.States >= s2.States {
		t.Fatalf("canceled query swept %d states, survivor %d; cancellation did not stop it",
			s1.States, s2.States)
	}
}
