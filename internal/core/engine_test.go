package core

import (
	"strings"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/lrpq"
	"graphquery/internal/rpq"
)

func TestDetect(t *testing.T) {
	cases := map[string]QueryKind{
		"Transfer*":                     KindRPQ,
		"(Transfer^z)+":                 KindRPQ,
		"() [Transfer] ()":              KindDLRPQ,
		"(x := date)":                   KindDLRPQ,
		"(amount < 5)":                  KindDLRPQ,
		"q(x) :- Transfer(x, y)":        KindCRPQ,
		"q(z) :- shortest (a^z)*(x, y)": KindCRPQ,
	}
	for q, want := range cases {
		if got := Detect(q); got != want {
			t.Errorf("Detect(%q) = %v, want %v", q, got, want)
		}
	}
}

func TestEnginePairs(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	pairs, err := e.Pairs("owner")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 6 {
		t.Errorf("owner pairs = %d, want 6", len(pairs))
	}
	if _, err := e.Pairs("((("); err == nil {
		t.Error("bad RPQ should fail")
	}
}

func TestEnginePathsLRPQ(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	res, err := e.Paths("(Transfer^z)+", "a6", "a5", eval.Shortest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !strings.Contains(res[0].Format(e.Graph()), "t10") {
		t.Errorf("shortest a6→a5: %v", res)
	}
}

func TestEnginePathsDLRPQ(t *testing.T) {
	e := New(gen.BankProperty())
	res, err := e.Paths("() {[Transfer]()}* [Transfer][amount < 4500000] () {[Transfer]()}*",
		"a3", "a5", eval.Shortest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Path.Len() != 3 {
		t.Fatalf("E20 via engine: %d results", len(res))
	}
}

func TestEnginePathsErrors(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	if _, err := e.Paths("Transfer", "nope", "a5", eval.All); err == nil {
		t.Error("unknown src should fail")
	}
	if _, err := e.Paths("Transfer", "a3", "nope", eval.All); err == nil {
		t.Error("unknown dst should fail")
	}
	if _, err := e.Paths("q(x) :- a(x, y)", "a3", "a5", eval.All); err == nil {
		t.Error("CRPQ via Paths should fail")
	}
}

func TestEngineRows(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	res, err := e.Rows("q(x1, x2, x3) :- Transfer(x1, x2), Transfer(x1, x3), Transfer(x2, x3)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(res.Rows))
	}
	if _, err := e.Rows("not a query"); err == nil {
		t.Error("bad CRPQ should fail")
	}
}

func TestEngineRepresentation(t *testing.T) {
	g := gen.Figure5(10)
	e := New(g)
	r, err := e.Representation("a*", "s", "t", false)
	if err != nil {
		t.Fatal(err)
	}
	count, infinite := r.Cardinality()
	if infinite || count.Int64() != 1024 {
		t.Errorf("PMR cardinality = %v/%v, want 1024", count, infinite)
	}
	rs, err := e.Representation("a*", "s", "t", true)
	if err != nil {
		t.Fatal(err)
	}
	if c2, _ := rs.Cardinality(); c2.Int64() != 1024 {
		t.Errorf("shortest PMR cardinality = %v", c2)
	}
	if _, err := e.Representation("a*", "zzz", "t", false); err == nil {
		t.Error("unknown node should fail")
	}
}

func TestEngineExplain(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	out, err := e.Explain("(((Transfer*)*)*)*")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "simplified:") || !strings.Contains(out, "Transfer*") {
		t.Errorf("Explain output:\n%s", out)
	}
	if !strings.Contains(out, "unambiguous") {
		t.Errorf("Explain should report ambiguity:\n%s", out)
	}
	if _, err := e.Explain(")("); err == nil {
		t.Error("bad expression should fail")
	}
}

// TestF01Embeddings checks the Figure 1 language embeddings on a corpus:
// lifting an RPQ to an ℓ-RPQ preserves endpoint semantics.
func TestF01Embeddings(t *testing.T) {
	g := gen.BankEdgeLabeled()
	for _, q := range []string{"Transfer", "Transfer*", "Transfer Transfer?", "owner | isBlocked"} {
		re := rpq.MustParse(q)
		le := lrpq.FromRPQ(re)
		pairsRPQ := map[[2]int]bool{}
		for _, pr := range eval.Pairs(g, re) {
			pairsRPQ[pr] = true
		}
		// ℓ-RPQ evaluation between every pair must agree with membership.
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				pbs, err := lrpq.EvalBetween(g, le, u, v, eval.Shortest, lrpq.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if (len(pbs) > 0) != pairsRPQ[[2]int{u, v}] {
					t.Fatalf("embedding mismatch for %q at (%d,%d)", q, u, v)
				}
			}
		}
	}
}

func TestEngineProgramRows(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	res, err := e.ProgramRows(`
		Hop2(x, y) :- Transfer Transfer (x, y)
		q(y) :- Hop2(@a3, y)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("expected 2-hop results from a3")
	}
	if _, err := e.ProgramRows("not a program"); err == nil {
		t.Error("bad program should fail")
	}
}

func TestEngineTwoWayPairs(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	pairs, err := e.TwoWayPairs("owner ~owner")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pr := range pairs {
		if pr[0] == "a1" && pr[1] == "a2" {
			found = true
		}
	}
	if !found {
		t.Error("co-owned pair (a1, a2) missing")
	}
	if _, err := e.TwoWayPairs("~~"); err == nil {
		t.Error("bad 2RPQ should fail")
	}
}

func TestEngineEstimate(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	est, actual, err := e.Estimate("Transfer")
	if err != nil {
		t.Fatal(err)
	}
	if actual != 9 { // 10 transfer edges, t2 ∥ t5 collapse to one pair
		t.Errorf("actual = %d, want 9", actual)
	}
	if est < 5 || est > 15 {
		t.Errorf("estimate = %v, expected near 10", est)
	}
	if _, _, err := e.Estimate("((("); err == nil {
		t.Error("bad query should fail")
	}
}

func TestEnginePathsRPQviaLRPQ(t *testing.T) {
	// Plain RPQ text through Paths: parsed as an ℓ-RPQ without variables.
	e := New(gen.BankEdgeLabeled())
	res, err := e.Paths("Transfer Transfer", "a3", "a4", eval.All)
	if err != nil {
		t.Fatal(err)
	}
	// Two results: one through each of the parallel edges t2 and t5.
	if len(res) != 2 {
		t.Fatalf("a3 →² a4: %d results, want 2", len(res))
	}
	got := map[string]bool{}
	for _, r := range res {
		got[r.Format(e.Graph())] = true
	}
	if !got["path(a3, t2, a2, t3, a4)"] || !got["path(a3, t5, a2, t3, a4)"] {
		t.Errorf("unexpected witnesses %v", got)
	}
}

func TestEngineGQLMatch(t *testing.T) {
	e := New(gen.APath(2, "a"))
	lines, err := e.GQLMatch("(x) (()-[z:a]->()){2} (y)")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "z=list(e1, e2)") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the grouped 2-edge match, got %v", lines)
	}
	if _, err := e.GQLMatch("-["); err == nil {
		t.Error("bad pattern should fail")
	}
}
