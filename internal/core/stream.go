// Streaming query delivery: QueryStream is QueryCtx with a row sink.
//
// The paper's complexity landscape (Section 6.3 exponential-output graphs,
// Section 6.1 bag-semantics explosion) makes the result set, not the
// evaluation, the memory bomb — so the engine must be able to hand rows to
// a consumer incrementally instead of materializing them. Two delivery
// tiers exist:
//
//   - Kernel streaming (kinds "pairs" via plain RPQ and the Cypher
//     fragment): rows flow straight out of the product-graph fan-out
//     (eval.PairsProductEmit) while sweeps are still running. Memory per
//     query is O(fan-out window), not O(result), and a blocked sink
//     throttles the worker pool (backpressure).
//   - Render streaming (paths, rows, matches, spans, relation, and pairs
//     from the 2RPQ tier): the evaluator materializes its internal result
//     exactly as the buffered path does, then rows are rendered and handed
//     to the sink one at a time — delivery memory is O(row), evaluation
//     memory stays the buffered path's.
//
// Kind "bag" has one aggregate value and never touches the sink; serving
// layers detect the untouched sink and degrade to the buffered body.
package core

import (
	"context"
	"errors"

	"graphquery/internal/eval"
	"graphquery/internal/graph"
	"graphquery/internal/obs"
)

// Sink receives one query's results incrementally. Begin is called at most
// once, after compilation and planning succeeded and before the first row,
// naming the result kind and (for kinds "rows" and "relation") the column
// header. Row then delivers one result element at a time, rendered exactly
// as the buffered Response would render it: [2]string for "pairs",
// string for "paths"/"matches"/"spans", []string for "rows"/"relation" —
// so a streamed result is byte-identical, element for element, to the
// buffered result fields.
//
// Row may be called from evaluation worker goroutines, but calls are never
// concurrent and are ordered (happens-before) — a Sink needs no locking of
// its own. Values passed to Row are owned by the sink. Returning an error
// from either method stops evaluation; returning ErrStopStream stops it
// and reports success (the sink has all it wants — a cursor page filled).
type Sink interface {
	Begin(kind string, columns []string) error
	Row(v any) error
}

// ErrStopStream is the sentinel a Sink returns to stop evaluation early
// without reporting an error.
var ErrStopStream = errors.New("core: stop stream")

// QueryStream evaluates one request like QueryCtx, delivering results
// through sink instead of materializing them in the Response. The returned
// Response carries the usual accounting (meter readings, plan, spans,
// snapshot) with the result fields empty and Streamed set — except for
// kind "bag", which skips the sink entirely and returns its value
// buffered. Errors surface exactly as in QueryCtx; rows delivered to the
// sink before the error remain delivered (the serving layer's trailer
// protocol reports the outcome in-band).
func (e *Engine) QueryStream(ctx context.Context, req Request, sink Sink) (*Response, error) {
	return e.runQuery(ctx, req, func(gs *graphState, req Request, m *eval.Meter, tr *obs.Trace, maxLen, limit int) (*Response, error) {
		return e.dispatchStream(gs, req, m, tr, maxLen, limit, sink)
	})
}

// dispatchStream routes one streamed request: kernel streaming for the
// unanchored pair-producing kinds that evaluate on the product-graph
// fan-out, render streaming for everything else, buffered for bag. Request
// validation (anchor rules, unknown langs) is dispatch's — the fallthrough
// path reuses it verbatim.
func (e *Engine) dispatchStream(gs *graphState, req Request, m *eval.Meter, tr *obs.Trace, maxLen, limit int, sink Sink) (*Response, error) {
	anchored := req.From != "" || req.To != ""
	if !anchored {
		switch {
		case req.Lang == "cypher":
			return e.streamPairs(gs, req.Query, "cypher", e.compileCypherTraced(gs, tr), m, tr, sink)
		case req.Lang == "" || req.Lang == "auto":
			if k := Detect(req.Query); k != KindCRPQ && k != KindDLRPQ {
				return e.streamPairs(gs, req.Query, "rpq", e.compileRPQTraced(gs, tr), m, tr, sink)
			}
		}
	}
	resp, err := e.dispatch(gs, req, m, tr, maxLen, limit)
	if err != nil {
		return nil, err
	}
	if resp.Kind == "bag" {
		return resp, nil
	}
	if err := streamRendered(gs.g, resp, sink); err != nil && !errors.Is(err, ErrStopStream) {
		return nil, err
	}
	return resp, nil
}

// streamPairs is the kernel-streaming path: compile (or hit the plan
// cache), then emit endpoint pairs straight from the product-graph fan-out,
// rendered to node IDs against the query's snapshot. family is the plan-
// cache namespace ("rpq" or "cypher") — both compile to the same rpqPlan,
// so Cypher streams on the identical kernel machinery.
func (e *Engine) streamPairs(gs *graphState, query, family string, compile func(string) (rpqPlan, error), m *eval.Meter, tr *obs.Trace, sink Sink) (*Response, error) {
	plan, err := cached(e, gs, family, query, compile)
	if err != nil {
		return nil, badQuery(err)
	}
	tr.Set("plan", plan.plan.String())
	if err := sink.Begin("pairs", nil); err != nil {
		if errors.Is(err, ErrStopStream) {
			return &Response{Kind: "pairs"}, nil
		}
		return nil, err
	}
	g := gs.g
	n := 0
	s0, r0 := m.States(), m.Rows()
	sp := tr.Start("kernel")
	err = eval.PairsProductEmit(context.Background(), plan.product,
		eval.Options{Parallelism: e.Parallelism, Meter: m, Plan: plan.plan},
		func(prs [][2]int) error {
			for _, pr := range prs {
				if err := sink.Row([2]string{string(g.Node(pr[0]).ID), string(g.Node(pr[1]).ID)}); err != nil {
					return err
				}
				n++
			}
			return nil
		})
	sp.Counts(m.States()-s0, m.Rows()-r0).End()
	if err != nil && !errors.Is(err, ErrStopStream) {
		return nil, err
	}
	e.noteKernelActuals(gs, tr, plan, m.States()-s0, m.SweepStatsSink())
	return &Response{Kind: "pairs", Streamed: n}, nil
}

// streamRendered delivers an already materialized response through the
// sink, row by row, rendering each element exactly as the buffered serving
// path would — one rendered row live at a time instead of a second full
// copy of the result. The materialized fields are cleared afterwards (the
// rows are with the consumer now) and Streamed records the delivered
// count. Returns the first sink error, including ErrStopStream, for the
// caller to interpret.
func streamRendered(g *graph.Graph, resp *Response, sink Sink) error {
	var cols []string
	switch resp.Kind {
	case "rows":
		if resp.Rows != nil {
			cols = resp.Rows.Head
		}
	case "relation":
		if resp.Rel != nil {
			cols = resp.Rel.Attrs()
		}
	}
	err := sink.Begin(resp.Kind, cols)
	n := 0
	row := func(v any) error {
		if err := sink.Row(v); err != nil {
			return err
		}
		n++
		return nil
	}
	if err == nil {
		switch resp.Kind {
		case "pairs":
			for _, pr := range resp.Pairs {
				if err = row([2]string{string(pr[0]), string(pr[1])}); err != nil {
					break
				}
			}
		case "paths":
			for _, p := range resp.Paths {
				if err = row(p.Format(g)); err != nil {
					break
				}
			}
		case "rows":
			if resp.Rows != nil {
				for _, r := range resp.Rows.Rows {
					rendered := make([]string, len(r))
					for j, v := range r {
						rendered[j] = v.Format(g)
					}
					if err = row(rendered); err != nil {
						break
					}
				}
			}
		case "matches", "spans":
			for _, s := range resp.Matches {
				if err = row(s); err != nil {
					break
				}
			}
		case "relation":
			if resp.Rel != nil {
				for _, t := range resp.Rel.Sorted() {
					rendered := make([]string, len(t))
					for j, c := range t {
						rendered[j] = c.Format(g)
					}
					if err = row(rendered); err != nil {
						break
					}
				}
			}
		}
	}
	resp.Streamed = n
	resp.Pairs, resp.Paths, resp.Rows, resp.Matches, resp.Rel = nil, nil, nil, nil, nil
	return err
}
