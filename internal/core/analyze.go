// EXPLAIN ANALYZE: the annotated plan tree of one query. Request.Analyze
// makes runQuery mint a meter carrying a pg.SweepStats sink, so the kernel
// records per-sweep and per-level telemetry at its existing exit and
// barrier sites, and the Response gains an AnnotatedPlan: each node of the
// plan stamped with the planner's estimate next to the measured actual,
// plus a q-error per node. The tree holds only deterministic fields —
// counts, estimates, identifiers, never wall-clock — so identical runs of
// an identical query against an identical graph and plan render
// byte-identical JSON, which is what makes annotated plans diffable and
// the analyze determinism tests possible.
package core

import (
	"strconv"
	"strings"

	"graphquery/internal/cardest"
	"graphquery/internal/eval"
	"graphquery/internal/obs"
	pgplan "graphquery/internal/pg/plan"
)

// PlanNode is one node of the annotated plan tree: a stage or operator
// with the planner's estimate next to the measured actual. Estimate and
// QError are zero (and omitted from JSON) for nodes without a cost-model
// prediction — only the root of estimable kinds and the kernel stage of
// planned sweeps carry them.
type PlanNode struct {
	// Name is the node's operator or stage: the result kind at the root,
	// the trace stage names (parse, compile, plan, kernel, enumerate,
	// stream) below it.
	Name string `json:"name"`
	// Detail carries the node's plan line (the planner's String) when one
	// exists.
	Detail string `json:"detail,omitempty"`
	// Estimate is the planner's prediction for this node's Actual: answer
	// rows at the root (cardest.Stats.Estimate), product states at the
	// kernel stage (the frontier-mass model's Plan.EstStates).
	Estimate float64 `json:"estimate,omitempty"`
	// Actual is the measured quantity: result rows at the root, product
	// states expanded per stage below it.
	Actual int64 `json:"actual"`
	// Rows is the stage's result-row delta (meter reading), where the
	// stage produced any.
	Rows int64 `json:"rows,omitempty"`
	// QError is max((e+1)/(a+1), (a+1)/(e+1)) of Estimate vs Actual,
	// present only where Estimate is.
	QError float64 `json:"q_error,omitempty"`
	// Children are the stages below this node, in execution order.
	Children []PlanNode `json:"children,omitempty"`
}

// AnnotatedPlan is the analyze-mode payload of a Response: the annotated
// plan tree plus the kernel's sweep telemetry and the plan-knob audit.
type AnnotatedPlan struct {
	// Plan is the annotated tree; its root is the query's result kind.
	Plan PlanNode `json:"plan"`
	// Sweep is the kernel's recorded telemetry: per-level frontier sizes
	// and direction choices, edges examined, scan strategies, per-shard
	// and outbox volumes. Nil when no kernel sweep ran.
	Sweep *eval.SweepStatsSnapshot `json:"sweep,omitempty"`
	// Mispicks lists the plan knobs whose choice the measured actuals
	// contradicted (plan.Mispicks): "direction", "scan", "frontier",
	// "shards". Empty means the evidence is consistent with every choice.
	Mispicks []string `json:"mispicks,omitempty"`
}

// Trace attributes the analyze path communicates through: the evaluator
// that holds the compiled rpqPlan records its estimates there (strings,
// deterministically formatted), and annotate reads them back when building
// the tree. Attributes keep the dispatch signatures untouched and work
// identically on the buffered and streaming paths.
const (
	attrEstRows   = "est_rows"   // cardest answer-count estimate
	attrEstStates = "est_states" // frontier-mass model states estimate
	attrMispicks  = "mispicks"   // comma-joined plan.Mispicks verdicts
)

// formatEst renders an estimate deterministically for a trace attribute
// (shortest round-trip form, the same rendering encoding/json uses).
func formatEst(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// noteKernelActuals records the analyze-path estimates and the plan-knob
// audit for one planned kernel sweep: called by the rpqPlan evaluators
// (pairs, cypher, and their streaming variants) right after the kernel
// stage, where the compiled plan and the measured states are both in hand.
// ss nil (analyze off) is a no-op, so non-analyze queries pay one nil
// check. Mispicks are counted into the engine's runtime counters — the
// gq_plan_mispick_total source — and mirrored onto the trace for the tree.
func (e *Engine) noteKernelActuals(gs *graphState, tr *obs.Trace, pl rpqPlan, states int64, ss *eval.SweepStats) {
	if ss == nil {
		return
	}
	// EstStates 0 means the planner never costed the sweep (graphs below
	// planMinNodes take the default plan) — no estimate, not an estimate of
	// zero, so no attribute and no q-error for the kernel node.
	if pl.plan.EstStates > 0 {
		tr.Set(attrEstStates, formatEst(pl.plan.EstStates))
	}
	tr.Set(attrEstRows, formatEst(gs.plannerLazy().Stats().Estimate(pl.expr, 0)))
	snap := ss.Snapshot()
	if ms := pgplan.Mispicks(pl.plan, states, snap.Edges); len(ms) > 0 {
		tr.Set(attrMispicks, strings.Join(ms, ","))
		for _, knob := range ms {
			e.counters.CountMispick(knob)
		}
	}
}

// annotate builds the AnnotatedPlan of one completed analyze-mode query
// and deposits its estimate-vs-actual observation into the feedback store.
// The tree is derived from deterministic sources only: the trace's span
// names and meter deltas (never their timings), the plan attributes, and
// the sweep telemetry.
func (e *Engine) annotate(req Request, resp *Response, tr *obs.Trace, ss *eval.SweepStats) *AnnotatedPlan {
	actual := int64(resp.Count())
	root := PlanNode{Name: resp.Kind, Detail: tr.Attr("plan"), Actual: actual}
	if s := tr.Attr(attrEstRows); s != "" {
		if est, err := strconv.ParseFloat(s, 64); err == nil {
			root.Estimate = est
			root.QError = cardest.QError(int(actual), est)
		}
	}
	estStates := 0.0
	hasEstStates := false
	if s := tr.Attr(attrEstStates); s != "" {
		if est, err := strconv.ParseFloat(s, 64); err == nil {
			estStates, hasEstStates = est, true
		}
	}
	for _, sp := range resp.Spans {
		n := PlanNode{Name: sp.Name, Actual: sp.States, Rows: sp.Rows}
		if sp.Name == "kernel" && hasEstStates {
			n.Estimate = estStates
			n.QError = cardest.QError(int(sp.States), estStates)
		}
		root.Children = append(root.Children, n)
	}
	ap := &AnnotatedPlan{Plan: root, Sweep: ss.Snapshot()}
	if s := tr.Attr(attrMispicks); s != "" {
		ap.Mispicks = strings.Split(s, ",")
	}
	if root.Estimate > 0 || tr.Attr(attrEstRows) != "" {
		e.feedback.Record(strings.Join(strings.Fields(req.Query), " "), root.Estimate, actual)
	}
	return ap
}
