package core

import (
	"context"
	"encoding/json"
	"testing"

	"graphquery/internal/gen"
)

// countingSink counts delivered rows and discards them.
type countingSink struct{ rows int }

func (s *countingSink) Begin(kind string, columns []string) error { return nil }
func (s *countingSink) Row(v any) error                           { s.rows++; return nil }

// analyzeJSON runs one analyze-mode query and returns the marshaled
// annotated plan tree.
func analyzeJSON(t *testing.T, e *Engine, query string) []byte {
	t.Helper()
	resp, err := e.Query(Request{Query: query, Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Analyze == nil {
		t.Fatal("analyze-mode response has no annotated plan")
	}
	b, err := json.Marshal(resp.Analyze)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAnalyzeAnnotatedPlan: an analyze-mode query returns the annotated
// tree — root stamped with the planner's answer estimate next to the
// measured actual and their q-error, the kernel stage with the states
// estimate, and the sweep telemetry the kernel recorded.
func TestAnalyzeAnnotatedPlan(t *testing.T) {
	e := New(gen.Clique(64, "a"))
	e.Parallelism = 1
	resp, err := e.Query(Request{Query: "a a*", Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	ap := resp.Analyze
	if ap == nil {
		t.Fatal("no annotated plan")
	}
	root := ap.Plan
	if root.Name != "pairs" {
		t.Fatalf("root name %q, want pairs", root.Name)
	}
	if root.Detail == "" {
		t.Fatal("root carries no plan line")
	}
	if root.Actual != int64(resp.Count()) {
		t.Fatalf("root actual %d, want count %d", root.Actual, resp.Count())
	}
	if root.Estimate <= 0 || root.QError < 1 {
		t.Fatalf("root estimate/q-error missing: est=%g q=%g", root.Estimate, root.QError)
	}
	var kernel *PlanNode
	for i := range root.Children {
		if root.Children[i].Name == "kernel" {
			kernel = &root.Children[i]
		}
	}
	if kernel == nil {
		t.Fatalf("no kernel stage in children: %+v", root.Children)
	}
	if kernel.Actual <= 0 {
		t.Fatalf("kernel stage measured no states: %+v", kernel)
	}
	if kernel.Estimate <= 0 || kernel.QError < 1 {
		t.Fatalf("kernel estimate/q-error missing: %+v", kernel)
	}
	if ap.Sweep == nil || ap.Sweep.States <= 0 || ap.Sweep.Edges <= 0 {
		t.Fatalf("sweep telemetry missing or empty: %+v", ap.Sweep)
	}
}

// TestAnalyzeDeterminism: identical query + graph + plan yields a
// byte-identical annotated plan tree across runs — under sequential,
// parallel, and sharded-2 plans. The first run warms the plan cache (a
// cold run records parse/compile/plan spans that warm runs skip), then
// repeated runs must not differ in a single byte: the tree carries no
// wall-clock and every sweep aggregate is scheduling-independent.
func TestAnalyzeDeterminism(t *testing.T) {
	g := gen.Clique(64, "a")
	for _, tc := range []struct {
		name                string
		parallelism, shards int
	}{
		{"sequential", 1, 0},
		{"parallel", 4, 0},
		{"sharded-2", 1, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := New(g)
			e.Parallelism = tc.parallelism
			e.Shards = tc.shards
			analyzeJSON(t, e, "a a*") // warm the plan cache
			want := analyzeJSON(t, e, "a a*")
			for run := 0; run < 5; run++ {
				if got := analyzeJSON(t, e, "a a*"); string(got) != string(want) {
					t.Fatalf("run %d diverged:\n got %s\nwant %s", run, got, want)
				}
			}
		})
	}
}

// TestAnalyzeOff: without Analyze the response carries no annotated plan
// and the meter carries no telemetry sink — the analyze-off path is the
// pre-analyze path.
func TestAnalyzeOff(t *testing.T) {
	e := New(gen.Clique(64, "a"))
	e.Parallelism = 1
	resp, err := e.Query(Request{Query: "a a*"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Analyze != nil {
		t.Fatalf("analyze-off response has an annotated plan: %+v", resp.Analyze)
	}
	if snap := e.FeedbackStats(); snap.Records != 0 {
		t.Fatalf("analyze-off query deposited feedback: %+v", snap)
	}
}

// TestAnalyzeFeedsFeedback: every analyze-mode query deposits its
// estimate-vs-actual observation into the engine's feedback store, keyed
// by whitespace-normalized query text.
func TestAnalyzeFeedsFeedback(t *testing.T) {
	e := New(gen.Clique(64, "a"))
	e.Parallelism = 1
	for i := 0; i < 3; i++ {
		if _, err := e.Query(Request{Query: "a  a*", Analyze: true}); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.FeedbackStats()
	if snap.Records != 3 || snap.Exprs != 1 {
		t.Fatalf("want 3 records of 1 expr, got %+v", snap)
	}
	if snap.MeanQError < 1 || snap.MaxQError < 1 {
		t.Fatalf("q-error aggregates below 1: %+v", snap)
	}
	if len(snap.Worst) != 1 || snap.Worst[0].Expr != "a a*" {
		t.Fatalf("worst list should hold the normalized expression: %+v", snap.Worst)
	}
	if snap.Worst[0].Actual <= 0 || snap.Worst[0].Estimate <= 0 {
		t.Fatalf("worst entry lost its observation: %+v", snap.Worst[0])
	}
}

// TestAnalyzeMispickCounters: mispick audits land in the engine's runtime
// counters. A plan forced onto two shards for a sweep far below the shard
// cut-over is a "shards" mispick (and, below the frontier cut, a
// "frontier" one).
func TestAnalyzeMispickCounters(t *testing.T) {
	// Clique 40: "a a*" measures 3200 product states, under both the shard
	// (4096) and dense-frontier cut-overs — a sharded frontier plan is a
	// double mispick there.
	e := New(gen.Clique(40, "a"))
	e.Parallelism = 1
	e.Shards = 2
	resp, err := e.Query(Request{Query: "a a*", Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Analyze.Mispicks) == 0 {
		t.Fatal("tiny sharded sweep reported no mispicks")
	}
	rt := e.RuntimeStats()
	if rt.MispickShards == 0 {
		t.Fatalf("shards mispick not counted: %+v", rt)
	}
}

// TestAnalyzeStreaming: the streaming evaluator threads the same analyze
// telemetry, so a streamed analyze query annotates like a buffered one.
func TestAnalyzeStreaming(t *testing.T) {
	e := New(gen.Clique(64, "a"))
	e.Parallelism = 1
	sink := &countingSink{}
	resp, err := e.QueryStream(context.Background(), Request{Query: "a a*", Analyze: true}, sink)
	if err != nil {
		t.Fatal(err)
	}
	rows := sink.rows
	if resp.Analyze == nil {
		t.Fatal("streamed analyze query has no annotated plan")
	}
	if resp.Analyze.Plan.Actual != int64(rows) {
		t.Fatalf("root actual %d, want streamed rows %d", resp.Analyze.Plan.Actual, rows)
	}
	if resp.Analyze.Sweep == nil || resp.Analyze.Sweep.States <= 0 {
		t.Fatalf("streamed analyze query recorded no sweep telemetry: %+v", resp.Analyze.Sweep)
	}
}
