// Package core wires the paper's language tower into a single query
// engine: plain RPQs (Section 3.1.1), ℓ-RPQs (3.1.4), dl-RPQs (3.2.1), and
// (dl-)CRPQs (3.1.2/3.1.5/3.2.2) over one property graph, with path modes
// and the product-construction machinery of Section 6. It is the engine
// behind cmd/gqd and the examples.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"graphquery/internal/automata"
	"graphquery/internal/cardest"
	"graphquery/internal/crpq"
	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/gpath"
	"graphquery/internal/gql"
	"graphquery/internal/graph"
	"graphquery/internal/lrpq"
	"graphquery/internal/obs"
	"graphquery/internal/pg"
	pgplan "graphquery/internal/pg/plan"
	"graphquery/internal/pmr"
	"graphquery/internal/regular"
	"graphquery/internal/rpq"
	"graphquery/internal/twoway"
)

// Engine evaluates queries over a fixed graph.
type Engine struct {
	g *graph.Graph

	// MaxLen bounds mode-all enumerations (0: require finite modes).
	MaxLen int
	// Limit bounds the number of returned paths/rows (0: unlimited).
	Limit int
	// Parallelism caps the worker goroutines used by per-source fan-out
	// (Pairs, CRPQ atom materialization); 0 means one per available CPU,
	// 1 forces sequential evaluation.
	Parallelism int
	// Shards asks the planner to run heavy kernel sweeps sharded: the
	// product state space is partitioned by graph node into this many
	// frontier loops with cross-shard exchange at level barriers. 0 and 1
	// both mean unsharded; the planner still ignores the knob for sweeps
	// too light to amortize the barriers.
	Shards int
	// Budget is the default per-query resource budget applied by the ctx
	// entry points (QueryCtx, PairsCtx, ...). Zero fields are unlimited;
	// the classic non-ctx methods ignore it entirely.
	Budget eval.Budget

	// plans caches parsed ASTs and compiled NFAs keyed by normalized query
	// text × query kind, so repeated queries skip parse + Glushkov.
	plans *planCache

	// counters aggregates the unified runtime's work and plan-choice
	// statistics across every query this engine evaluates; RuntimeStats
	// snapshots it for /v1/statz.
	counters pg.Counters

	// planner holds the cost-based planner, built lazily on the first RPQ
	// compilation (its statistics collection scans the graph once).
	plannerOnce sync.Once
	planner     *pgplan.Planner
}

// New returns an engine over g with a default enumeration bound and plan
// cache.
func New(g *graph.Graph) *Engine {
	return &Engine{g: g, MaxLen: 16, plans: newPlanCache(defaultPlanCacheCap)}
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// CacheStats returns a snapshot of the compiled-plan cache counters.
func (e *Engine) CacheStats() CacheStats {
	if e.plans == nil {
		return CacheStats{}
	}
	return e.plans.stats()
}

// SetPlanCacheCapacity bounds the plan cache to n entries, evicting the
// least recently used immediately if shrinking; n ≤ 0 disables caching.
func (e *Engine) SetPlanCacheCapacity(n int) {
	if e.plans == nil {
		e.plans = newPlanCache(n)
		return
	}
	e.plans.resize(n)
}

// QueryKind classifies a query string.
type QueryKind int

// The query kinds the engine auto-detects.
const (
	KindCRPQ  QueryKind = iota // contains ":-"
	KindDLRPQ                  // contains atom brackets or data tests
	KindRPQ                    // plain regular path query (ℓ-RPQ if it has ^vars)
)

// Detect classifies a query string: CRPQs contain ":-", dl-RPQs contain
// bracketed atoms or data tests, everything else parses as an (ℓ-)RPQ.
func Detect(q string) QueryKind {
	if strings.Contains(q, ":-") {
		return KindCRPQ
	}
	for i := 0; i < len(q); i++ {
		switch q[i] {
		case '[', '=', '<', '>':
			return KindDLRPQ
		case ':':
			if i+1 < len(q) && q[i+1] == '=' {
				return KindDLRPQ
			}
		}
	}
	return KindRPQ
}

// PathResult is one path answer with its list-variable bindings.
type PathResult struct {
	Path    gpath.Path
	Binding gpath.Binding
}

// Format renders the result with external IDs.
func (r PathResult) Format(g *graph.Graph) string {
	if len(r.Binding) == 0 {
		return r.Path.Format(g)
	}
	return r.Path.Format(g) + "  " + r.Binding.Format(g)
}

// rpqPlan is the cached compilation product of a plain RPQ: its parsed
// expression, Glushkov NFA, the product with the engine's graph (the
// guards resolved against the label index), and the kernel plan the
// cost-based planner chose for it. All four are immutable, so a cached
// plan serves concurrent queries. The plan snapshots e.Parallelism at
// compile time; the knob is part of the cache key, so changing it routes
// queries to a freshly planned entry rather than a stale one.
type rpqPlan struct {
	expr    rpq.Expr
	nfa     *automata.NFA
	product *eval.Product
	plan    pg.Plan
}

// plannerLazy builds the cost-based planner on first use (statistics
// collection is one O(|E|) scan, amortized over the engine's lifetime).
func (e *Engine) plannerLazy() *pgplan.Planner {
	e.plannerOnce.Do(func() { e.planner = pgplan.New(e.g) })
	return e.planner
}

// planMinNodes gates the planner: below this graph size every plan's
// worst case is microseconds, so the cost model — O(|δ|) per compiled
// automaton — would cost more than any choice it could save. Tiny graphs
// keep the zero (forward, indexed, sequential) plan.
const planMinNodes = 32

// planFor plans one compiled automaton, or returns the default plan when
// the graph is too small for planning to pay for itself.
func (e *Engine) planFor(nfa *automata.NFA) pg.Plan {
	if e.g.NumNodes() < planMinNodes {
		return pg.Plan{}
	}
	return e.plannerLazy().ForNFA(nfa, e.Parallelism, e.Shards)
}

// RuntimeStats snapshots the unified runtime's counters: product states
// expanded, edges scanned, peak frontier, and plan choices, cumulative
// over every query this engine has evaluated.
func (e *Engine) RuntimeStats() pg.CountersSnapshot { return e.counters.Snapshot() }

func (e *Engine) compileRPQ(q string) (rpqPlan, error) {
	return e.compileRPQTraced(nil)(q)
}

// compileRPQTraced returns the compileRPQ build function with each stage —
// parse, Glushkov compilation + product resolution, cost-based planning —
// recorded as a span on tr (nil: untraced, identical behavior). The spans
// appear only on plan-cache misses, which is accurate: on a hit none of
// this work happens.
func (e *Engine) compileRPQTraced(tr *obs.Trace) func(string) (rpqPlan, error) {
	return func(q string) (rpqPlan, error) {
		sp := tr.Start("parse")
		expr, err := rpq.Parse(q)
		sp.End()
		if err != nil {
			return rpqPlan{}, err
		}
		sp = tr.Start("compile")
		nfa := rpq.Compile(expr)
		product := eval.NewProductInstrumented(e.g, nfa, &e.counters)
		sp.End()
		sp = tr.Start("plan")
		plan := e.planFor(nfa)
		sp.End()
		return rpqPlan{expr: expr, nfa: nfa, product: product, plan: plan}, nil
	}
}

// Pairs evaluates a plain RPQ to its endpoint-pair semantics ⟦R⟧_G.
func (e *Engine) Pairs(query string) ([][2]graph.NodeID, error) {
	plan, err := cached(e, "rpq", query, e.compileRPQ)
	if err != nil {
		return nil, err
	}
	var out [][2]graph.NodeID
	for _, pr := range eval.PairsProduct(plan.product, eval.Options{Parallelism: e.Parallelism, Plan: plan.plan}) {
		out = append(out, [2]graph.NodeID{e.g.Node(pr[0]).ID, e.g.Node(pr[1]).ID})
	}
	return out, nil
}

// Paths evaluates an (ℓ-)RPQ or dl-RPQ between two nodes under a mode.
func (e *Engine) Paths(query string, src, dst graph.NodeID, mode eval.Mode) ([]PathResult, error) {
	u, ok := e.g.NodeIndex(src)
	if !ok {
		return nil, fmt.Errorf("core: unknown node %q", src)
	}
	v, ok := e.g.NodeIndex(dst)
	if !ok {
		return nil, fmt.Errorf("core: unknown node %q", dst)
	}
	switch Detect(query) {
	case KindCRPQ:
		return nil, errors.New("core: CRPQ queries return rows; use Rows")
	case KindDLRPQ:
		expr, err := cached(e, "dlrpq", query, dlrpq.Parse)
		if err != nil {
			return nil, err
		}
		pbs, err := dlrpq.EvalBetween(e.g, expr, u, v, mode, dlrpq.Options{MaxLen: e.MaxLen, Limit: e.Limit, Counters: &e.counters})
		if err != nil {
			return nil, err
		}
		return toResults(pbs), nil
	default:
		expr, err := cached(e, "lrpq", query, lrpq.Parse)
		if err != nil {
			return nil, err
		}
		pbs, err := lrpq.EvalBetween(e.g, expr, u, v, mode, lrpq.Options{MaxLen: e.MaxLen, Limit: e.Limit, Counters: &e.counters})
		if err != nil {
			return nil, err
		}
		return toResults(pbs), nil
	}
}

func toResults(pbs []gpath.PathBinding) []PathResult {
	out := make([]PathResult, len(pbs))
	for i, pb := range pbs {
		out[i] = PathResult{Path: pb.Path, Binding: pb.Binding}
	}
	return out
}

// Rows evaluates a (dl-)CRPQ and renders its output tuples.
func (e *Engine) Rows(query string) (*crpq.Result, error) {
	q, err := cached(e, "crpq", query, crpq.Parse)
	if err != nil {
		return nil, err
	}
	return crpq.Eval(e.g, q, crpq.Options{AtomMaxLen: e.MaxLen, Parallelism: e.Parallelism})
}

// Representation builds a PMR for the matching paths of a plain RPQ
// between two nodes — the compact intermediate representation of Section
// 6.4 — without enumerating them.
func (e *Engine) Representation(query string, src, dst graph.NodeID, shortestOnly bool) (*pmr.PMR, error) {
	plan, err := cached(e, "rpq", query, e.compileRPQ)
	if err != nil {
		return nil, err
	}
	expr := plan.expr
	u, ok := e.g.NodeIndex(src)
	if !ok {
		return nil, fmt.Errorf("core: unknown node %q", src)
	}
	v, ok := e.g.NodeIndex(dst)
	if !ok {
		return nil, fmt.Errorf("core: unknown node %q", dst)
	}
	if shortestOnly {
		return pmr.ShortestFromProduct(e.g, expr, u, v), nil
	}
	return pmr.FromProduct(e.g, expr, u, v), nil
}

// Explain reports the compiled automaton's size and ambiguity for an RPQ —
// the statistics of the E22 experiment — plus the chosen kernel plan and,
// when this call compiled the query (a plan-cache miss), the compilation
// trace spans with their timings.
func (e *Engine) Explain(query string) (string, error) {
	tr := obs.NewTrace()
	plan, err := cached(e, "rpq", query, e.compileRPQTraced(tr))
	if err != nil {
		return "", err
	}
	expr := plan.expr
	simplified := rpq.Simplify(expr)
	nfa := rpq.Compile(simplified)
	det := nfa.Determinize().Minimize()
	var b strings.Builder
	fmt.Fprintf(&b, "expression:      %s (size %d)\n", expr, rpq.Size(expr))
	if simplified.String() != expr.String() {
		fmt.Fprintf(&b, "simplified:      %s (size %d)\n", simplified, rpq.Size(simplified))
	}
	fmt.Fprintf(&b, "glushkov NFA:    %d states, %d transitions\n", nfa.NumStates, nfa.NumTransitions())
	fmt.Fprintf(&b, "unambiguous:     %v\n", nfa.IsUnambiguous())
	fmt.Fprintf(&b, "minimal DFA:     %d states\n", det.NumStates())
	fmt.Fprintf(&b, "plan:            %s\n", plan.plan)
	if spans := tr.Spans(); len(spans) > 0 {
		fmt.Fprintf(&b, "spans:           %s\n", obs.SpansString(spans))
	}
	return b.String(), nil
}

// ProgramRows evaluates a nested-CRPQ program (package regular): every line
// but the last defines a virtual edge label; the last line is the final
// query (Section 3.1.3, Example 15).
func (e *Engine) ProgramRows(program string) (*crpq.Result, error) {
	p, err := cached(e, "prog", program, regular.Parse)
	if err != nil {
		return nil, err
	}
	return regular.Eval(e.g, p, crpq.Options{AtomMaxLen: e.MaxLen, Parallelism: e.Parallelism})
}

// TwoWayPairs evaluates a two-way RPQ (inverse atoms written ~a, Remark 9)
// to its endpoint-pair semantics.
func (e *Engine) TwoWayPairs(query string) ([][2]graph.NodeID, error) {
	expr, err := cached(e, "2rpq", query, twoway.Parse)
	if err != nil {
		return nil, err
	}
	prs, err := twoway.PairsMeterOpt(e.g, expr, nil,
		twoway.Options{Parallelism: 1, Counters: &e.counters})
	if err != nil {
		return nil, err // unreachable with a nil meter
	}
	var out [][2]graph.NodeID
	for _, pr := range prs {
		out = append(out, [2]graph.NodeID{e.g.Node(pr[0]).ID, e.g.Node(pr[1]).ID})
	}
	return out, nil
}

// Estimate returns the predicted and actual answer counts of an RPQ (the
// Section 7.1 cardinality-estimation direction, package cardest).
func (e *Engine) Estimate(query string) (estimate float64, actual int, err error) {
	plan, err := cached(e, "rpq", query, e.compileRPQ)
	if err != nil {
		return 0, 0, err
	}
	stats := cardest.Collect(e.g)
	actual = len(eval.PairsProduct(plan.product, eval.Options{Parallelism: e.Parallelism, Plan: plan.plan}))
	return stats.Estimate(plan.expr, 0), actual, nil
}

// GQLMatch evaluates a GQL ASCII-art pattern (package gql: group variables,
// partial bindings — the practice-side semantics of Examples 1 and 2) and
// renders its matches.
func (e *Engine) GQLMatch(pattern string) ([]string, error) {
	p, err := cached(e, "gql", pattern, gql.ParsePattern)
	if err != nil {
		return nil, err
	}
	ms, err := gql.EvalPattern(e.g, p, gql.Options{MaxLen: e.MaxLen})
	if err != nil {
		return nil, err
	}
	if e.Limit > 0 && len(ms) > e.Limit {
		ms = ms[:e.Limit]
	}
	out := make([]string, len(ms))
	for i, m := range ms {
		line := m.Path.Format(e.g)
		vars := make([]string, 0, len(m.B))
		for v := range m.B {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			line += "  " + v + "=" + m.B[v].Format(e.g)
		}
		out[i] = line
	}
	return out, nil
}
