// Package core wires the paper's language tower into a single query
// engine: plain RPQs (Section 3.1.1), ℓ-RPQs (3.1.4), dl-RPQs (3.2.1), and
// (dl-)CRPQs (3.1.2/3.1.5/3.2.2) over one property graph, with path modes
// and the product-construction machinery of Section 6. It is the engine
// behind cmd/gqd and the examples.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"graphquery/internal/automata"
	"graphquery/internal/cardest"
	"graphquery/internal/crpq"
	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/gpath"
	"graphquery/internal/gql"
	"graphquery/internal/graph"
	"graphquery/internal/lrpq"
	"graphquery/internal/obs"
	"graphquery/internal/pg"
	pgplan "graphquery/internal/pg/plan"
	"graphquery/internal/pmr"
	"graphquery/internal/regular"
	"graphquery/internal/rpq"
	"graphquery/internal/twoway"
)

// graphState is one immutable (graph, revision) pair the engine serves
// queries against. SetGraph replaces the whole state atomically, so a query
// that loaded it once sees a consistent graph + planner + revision for its
// entire run — snapshot isolation at the engine boundary even while a live
// store commits new versions underneath. The cost-based planner is built
// lazily per state (its statistics collection scans the graph once) and
// cached here, so each revision plans at most once.
type graphState struct {
	g   *graph.Graph
	rev uint64

	// pin, when set by SetGraphPinned, refcounts the backing store snapshot
	// for the duration of one query: acquire() takes a reference and returns
	// its release. It lets a live store account for in-flight readers of a
	// superseded snapshot.
	pin func() func()

	// planner holds the cost-based planner for g, built lazily on the first
	// RPQ compilation against this state.
	plannerOnce sync.Once
	planner     *pgplan.Planner
}

// acquire pins the state's backing snapshot and returns the release; a
// state without a pin hook returns a no-op.
func (gs *graphState) acquire() func() {
	if gs.pin == nil {
		return func() {}
	}
	return gs.pin()
}

func (gs *graphState) plannerLazy() *pgplan.Planner {
	gs.plannerOnce.Do(func() { gs.planner = pgplan.New(gs.g) })
	return gs.planner
}

// Engine evaluates queries over a graph. The graph is swappable (SetGraph):
// each query atomically loads the current graphState once on entry, so it
// runs start-to-finish against one consistent snapshot.
type Engine struct {
	cur atomic.Pointer[graphState]

	// MaxLen bounds mode-all enumerations (0: require finite modes).
	MaxLen int
	// Limit bounds the number of returned paths/rows (0: unlimited).
	Limit int
	// Parallelism caps the worker goroutines used by per-source fan-out
	// (Pairs, CRPQ atom materialization); 0 means one per available CPU,
	// 1 forces sequential evaluation.
	Parallelism int
	// Shards asks the planner to run heavy kernel sweeps sharded: the
	// product state space is partitioned by graph node into this many
	// frontier loops with cross-shard exchange at level barriers. 0 and 1
	// both mean unsharded; the planner still ignores the knob for sweeps
	// too light to amortize the barriers.
	Shards int
	// Budget is the default per-query resource budget applied by the ctx
	// entry points (QueryCtx, PairsCtx, ...). Zero fields are unlimited;
	// the classic non-ctx methods ignore it entirely.
	Budget eval.Budget

	// plans caches parsed ASTs and compiled NFAs keyed by normalized query
	// text × query kind, so repeated queries skip parse + Glushkov.
	plans *planCache

	// counters aggregates the unified runtime's work and plan-choice
	// statistics across every query this engine evaluates; RuntimeStats
	// snapshots it for /v1/statz.
	counters pg.Counters

	// feedback is the estimate-vs-actual record store analyze-mode queries
	// deposit into (cardest.Feedback): per-expression decayed q-errors the
	// planner-v2 calibration work consumes. It survives graph swaps — the
	// decay, not a reset, ages out observations made against superseded
	// statistics. Nil on a zero-value Engine (recording is then a no-op).
	feedback *cardest.Feedback
}

// New returns an engine over g with a default enumeration bound and plan
// cache.
func New(g *graph.Graph) *Engine {
	e := &Engine{MaxLen: 16, plans: newPlanCache(defaultPlanCacheCap), feedback: cardest.NewFeedback()}
	e.cur.Store(&graphState{g: g, rev: 1})
	return e
}

// Graph returns the graph the engine currently serves.
func (e *Engine) Graph() *graph.Graph { return e.cur.Load().g }

// GraphRev returns the revision the current graph was installed under.
func (e *Engine) GraphRev() uint64 { return e.cur.Load().rev }

// SetGraph atomically replaces the graph the engine serves. rev must be
// monotonic per engine (a live store's Rev): it namespaces the plan cache,
// so plans compiled against an older revision — whose products hold the old
// graph — are never replayed against the new one. In-flight queries keep
// the state they loaded on entry and finish on the old snapshot.
func (e *Engine) SetGraph(g *graph.Graph, rev uint64) { e.SetGraphPinned(g, rev, nil) }

// SetGraphPinned is SetGraph with a pin hook: every query acquires pin() on
// entry and calls the returned release when it finishes, letting the
// snapshot's owner refcount in-flight readers across swaps.
func (e *Engine) SetGraphPinned(g *graph.Graph, rev uint64, pin func() func()) {
	e.cur.Store(&graphState{g: g, rev: rev, pin: pin})
}

// CacheStats returns a snapshot of the compiled-plan cache counters.
func (e *Engine) CacheStats() CacheStats {
	if e.plans == nil {
		return CacheStats{}
	}
	return e.plans.stats()
}

// SetPlanCacheCapacity bounds the plan cache to n entries, evicting the
// least recently used immediately if shrinking; n ≤ 0 disables caching.
func (e *Engine) SetPlanCacheCapacity(n int) {
	if e.plans == nil {
		e.plans = newPlanCache(n)
		return
	}
	e.plans.resize(n)
}

// QueryKind classifies a query string.
type QueryKind int

// The query kinds the engine dispatches. The first three are auto-detected
// from the query text; the rest are selected explicitly via Request.Lang
// (see KindForLang).
const (
	KindCRPQ    QueryKind = iota // contains ":-"
	KindDLRPQ                    // contains atom brackets or data tests
	KindRPQ                      // plain regular path query (ℓ-RPQ if it has ^vars)
	KindTwoWay                   // two-way RPQ → pairs (lang "2rpq")
	KindGQL                      // GQL ASCII-art pattern → matches (lang "gql")
	KindCoreGQL                  // CoreGQL fragment → matches (lang "coregql")
	KindCypher                   // Cypher-fragment pattern → pairs (lang "cypher")
	KindPMR                      // path-representation enumeration → paths (lang "pmr")
	KindSpanner                  // document spanner over Doc → spans (lang "spanner")
	KindRelAlg                   // algebra over REACH atoms → relation (lang "relalg")
	KindBag                      // bag-semantics answer count → bag (lang "bag")
)

// KindForLang resolves an explicit Request.Lang to its query kind. ok is
// false for unknown values; "" and "auto" mean auto-detection and resolve
// nothing here.
func KindForLang(lang string) (QueryKind, bool) {
	switch lang {
	case "2rpq":
		return KindTwoWay, true
	case "gql":
		return KindGQL, true
	case "coregql":
		return KindCoreGQL, true
	case "cypher":
		return KindCypher, true
	case "pmr":
		return KindPMR, true
	case "spanner":
		return KindSpanner, true
	case "relalg":
		return KindRelAlg, true
	case "bag":
		return KindBag, true
	default:
		return 0, false
	}
}

// Detect classifies a query string: CRPQs contain ":-", dl-RPQs contain
// bracketed atoms or data tests, everything else parses as an (ℓ-)RPQ.
func Detect(q string) QueryKind {
	if strings.Contains(q, ":-") {
		return KindCRPQ
	}
	for i := 0; i < len(q); i++ {
		switch q[i] {
		case '[', '=', '<', '>':
			return KindDLRPQ
		case ':':
			if i+1 < len(q) && q[i+1] == '=' {
				return KindDLRPQ
			}
		}
	}
	return KindRPQ
}

// PathResult is one path answer with its list-variable bindings.
type PathResult struct {
	Path    gpath.Path
	Binding gpath.Binding
}

// Format renders the result with external IDs.
func (r PathResult) Format(g *graph.Graph) string {
	if len(r.Binding) == 0 {
		return r.Path.Format(g)
	}
	return r.Path.Format(g) + "  " + r.Binding.Format(g)
}

// rpqPlan is the cached compilation product of a plain RPQ: its parsed
// expression, Glushkov NFA, the product with the engine's graph (the
// guards resolved against the label index), and the kernel plan the
// cost-based planner chose for it. All four are immutable, so a cached
// plan serves concurrent queries. The plan snapshots e.Parallelism at
// compile time; the knob is part of the cache key, so changing it routes
// queries to a freshly planned entry rather than a stale one.
type rpqPlan struct {
	expr    rpq.Expr
	nfa     *automata.NFA
	product *eval.Product
	plan    pg.Plan
}

// planMinNodes gates the planner: below this graph size every plan's
// worst case is microseconds, so the cost model — O(|δ|) per compiled
// automaton — would cost more than any choice it could save. Tiny graphs
// keep the zero (forward, indexed, sequential) plan.
const planMinNodes = 32

// planFor plans one compiled automaton against gs, or returns the default
// plan when the graph is too small for planning to pay for itself.
func (e *Engine) planFor(gs *graphState, nfa *automata.NFA) pg.Plan {
	if gs.g.NumNodes() < planMinNodes {
		return pg.Plan{}
	}
	return gs.plannerLazy().ForNFA(nfa, e.Parallelism, e.Shards)
}

// RuntimeStats snapshots the unified runtime's counters: product states
// expanded, edges scanned, peak frontier, and plan choices, cumulative
// over every query this engine has evaluated.
func (e *Engine) RuntimeStats() pg.CountersSnapshot { return e.counters.Snapshot() }

// FeedbackStats snapshots the estimate-vs-actual feedback store fed by
// analyze-mode queries — per-expression decayed q-errors and the global
// aggregates surfaced in /v1/statz and /metrics.
func (e *Engine) FeedbackStats() cardest.FeedbackSnapshot { return e.feedback.Snapshot() }

func (e *Engine) compileRPQ(gs *graphState) func(string) (rpqPlan, error) {
	return e.compileRPQTraced(gs, nil)
}

// compileRPQTraced returns the compileRPQ build function with each stage —
// parse, Glushkov compilation + product resolution, cost-based planning —
// recorded as a span on tr (nil: untraced, identical behavior). The spans
// appear only on plan-cache misses, which is accurate: on a hit none of
// this work happens. The product binds gs.g, so the cache key's revision
// component must (and does, via cached) route each graph revision to its
// own entry.
func (e *Engine) compileRPQTraced(gs *graphState, tr *obs.Trace) func(string) (rpqPlan, error) {
	return func(q string) (rpqPlan, error) {
		sp := tr.Start("parse")
		expr, err := rpq.Parse(q)
		sp.End()
		if err != nil {
			return rpqPlan{}, err
		}
		sp = tr.Start("compile")
		nfa := rpq.Compile(expr)
		product := eval.NewProductInstrumented(gs.g, nfa, &e.counters)
		sp.End()
		sp = tr.Start("plan")
		plan := e.planFor(gs, nfa)
		sp.End()
		return rpqPlan{expr: expr, nfa: nfa, product: product, plan: plan}, nil
	}
}

// Pairs evaluates a plain RPQ to its endpoint-pair semantics ⟦R⟧_G.
func (e *Engine) Pairs(query string) ([][2]graph.NodeID, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	plan, err := cached(e, gs, "rpq", query, e.compileRPQ(gs))
	if err != nil {
		return nil, err
	}
	var out [][2]graph.NodeID
	for _, pr := range eval.PairsProduct(plan.product, eval.Options{Parallelism: e.Parallelism, Plan: plan.plan}) {
		out = append(out, [2]graph.NodeID{gs.g.Node(pr[0]).ID, gs.g.Node(pr[1]).ID})
	}
	return out, nil
}

// Paths evaluates an (ℓ-)RPQ or dl-RPQ between two nodes under a mode.
func (e *Engine) Paths(query string, src, dst graph.NodeID, mode eval.Mode) ([]PathResult, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	u, ok := gs.g.NodeIndex(src)
	if !ok {
		return nil, fmt.Errorf("core: unknown node %q", src)
	}
	v, ok := gs.g.NodeIndex(dst)
	if !ok {
		return nil, fmt.Errorf("core: unknown node %q", dst)
	}
	switch Detect(query) {
	case KindCRPQ:
		return nil, errors.New("core: CRPQ queries return rows; use Rows")
	case KindDLRPQ:
		expr, err := cached(e, gs, "dlrpq", query, dlrpq.Parse)
		if err != nil {
			return nil, err
		}
		pbs, err := dlrpq.EvalBetween(gs.g, expr, u, v, mode, dlrpq.Options{MaxLen: e.MaxLen, Limit: e.Limit, Counters: &e.counters})
		if err != nil {
			return nil, err
		}
		return toResults(pbs), nil
	default:
		expr, err := cached(e, gs, "lrpq", query, lrpq.Parse)
		if err != nil {
			return nil, err
		}
		pbs, err := lrpq.EvalBetween(gs.g, expr, u, v, mode, lrpq.Options{MaxLen: e.MaxLen, Limit: e.Limit, Counters: &e.counters})
		if err != nil {
			return nil, err
		}
		return toResults(pbs), nil
	}
}

func toResults(pbs []gpath.PathBinding) []PathResult {
	out := make([]PathResult, len(pbs))
	for i, pb := range pbs {
		out[i] = PathResult{Path: pb.Path, Binding: pb.Binding}
	}
	return out
}

// Rows evaluates a (dl-)CRPQ and renders its output tuples.
func (e *Engine) Rows(query string) (*crpq.Result, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	q, err := cached(e, gs, "crpq", query, crpq.Parse)
	if err != nil {
		return nil, err
	}
	return crpq.Eval(gs.g, q, crpq.Options{AtomMaxLen: e.MaxLen, Parallelism: e.Parallelism})
}

// Representation builds a PMR for the matching paths of a plain RPQ
// between two nodes — the compact intermediate representation of Section
// 6.4 — without enumerating them.
func (e *Engine) Representation(query string, src, dst graph.NodeID, shortestOnly bool) (*pmr.PMR, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	plan, err := cached(e, gs, "rpq", query, e.compileRPQ(gs))
	if err != nil {
		return nil, err
	}
	expr := plan.expr
	u, ok := gs.g.NodeIndex(src)
	if !ok {
		return nil, fmt.Errorf("core: unknown node %q", src)
	}
	v, ok := gs.g.NodeIndex(dst)
	if !ok {
		return nil, fmt.Errorf("core: unknown node %q", dst)
	}
	if shortestOnly {
		return pmr.ShortestFromProduct(gs.g, expr, u, v), nil
	}
	return pmr.FromProduct(gs.g, expr, u, v), nil
}

// Explain reports the compiled automaton's size and ambiguity for an RPQ —
// the statistics of the E22 experiment — plus the chosen kernel plan and,
// when this call compiled the query (a plan-cache miss), the compilation
// trace spans with their timings.
func (e *Engine) Explain(query string) (string, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	tr := obs.NewTrace()
	plan, err := cached(e, gs, "rpq", query, e.compileRPQTraced(gs, tr))
	if err != nil {
		return "", err
	}
	expr := plan.expr
	simplified := rpq.Simplify(expr)
	nfa := rpq.Compile(simplified)
	det := nfa.Determinize().Minimize()
	var b strings.Builder
	fmt.Fprintf(&b, "expression:      %s (size %d)\n", expr, rpq.Size(expr))
	if simplified.String() != expr.String() {
		fmt.Fprintf(&b, "simplified:      %s (size %d)\n", simplified, rpq.Size(simplified))
	}
	fmt.Fprintf(&b, "glushkov NFA:    %d states, %d transitions\n", nfa.NumStates, nfa.NumTransitions())
	fmt.Fprintf(&b, "unambiguous:     %v\n", nfa.IsUnambiguous())
	fmt.Fprintf(&b, "minimal DFA:     %d states\n", det.NumStates())
	fmt.Fprintf(&b, "plan:            %s\n", plan.plan)
	if spans := tr.Spans(); len(spans) > 0 {
		fmt.Fprintf(&b, "spans:           %s\n", obs.SpansString(spans))
	}
	return b.String(), nil
}

// ProgramRows evaluates a nested-CRPQ program (package regular): every line
// but the last defines a virtual edge label; the last line is the final
// query (Section 3.1.3, Example 15).
func (e *Engine) ProgramRows(program string) (*crpq.Result, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	p, err := cached(e, gs, "prog", program, regular.Parse)
	if err != nil {
		return nil, err
	}
	return regular.Eval(gs.g, p, crpq.Options{AtomMaxLen: e.MaxLen, Parallelism: e.Parallelism})
}

// TwoWayPairs evaluates a two-way RPQ (inverse atoms written ~a, Remark 9)
// to its endpoint-pair semantics.
func (e *Engine) TwoWayPairs(query string) ([][2]graph.NodeID, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	expr, err := cached(e, gs, "2rpq", query, twoway.Parse)
	if err != nil {
		return nil, err
	}
	prs, err := twoway.PairsMeterOpt(gs.g, expr, nil,
		twoway.Options{Parallelism: 1, Counters: &e.counters})
	if err != nil {
		return nil, err // unreachable with a nil meter
	}
	var out [][2]graph.NodeID
	for _, pr := range prs {
		out = append(out, [2]graph.NodeID{gs.g.Node(pr[0]).ID, gs.g.Node(pr[1]).ID})
	}
	return out, nil
}

// Estimate returns the predicted and actual answer counts of an RPQ (the
// Section 7.1 cardinality-estimation direction, package cardest).
func (e *Engine) Estimate(query string) (estimate float64, actual int, err error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	plan, err := cached(e, gs, "rpq", query, e.compileRPQ(gs))
	if err != nil {
		return 0, 0, err
	}
	stats := cardest.Collect(gs.g)
	actual = len(eval.PairsProduct(plan.product, eval.Options{Parallelism: e.Parallelism, Plan: plan.plan}))
	return stats.Estimate(plan.expr, 0), actual, nil
}

// GQLMatch evaluates a GQL ASCII-art pattern (package gql: group variables,
// partial bindings — the practice-side semantics of Examples 1 and 2) and
// renders its matches.
func (e *Engine) GQLMatch(pattern string) ([]string, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	p, err := cached(e, gs, "gql", pattern, gql.ParsePattern)
	if err != nil {
		return nil, err
	}
	ms, err := gql.EvalPattern(gs.g, p, gql.Options{MaxLen: e.MaxLen})
	if err != nil {
		return nil, err
	}
	if e.Limit > 0 && len(ms) > e.Limit {
		ms = ms[:e.Limit]
	}
	out := make([]string, len(ms))
	for i, m := range ms {
		line := m.Path.Format(gs.g)
		vars := make([]string, 0, len(m.B))
		for v := range m.B {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			line += "  " + v + "=" + m.B[v].Format(gs.g)
		}
		out[i] = line
	}
	return out, nil
}
