package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"graphquery/internal/gen"
	"graphquery/internal/graph"
)

// TestOverlayQueriesMatchMaterialized runs the whole query tower over a
// mutated (overlay) graph and over its materialized equivalent, and demands
// identical answers. This exercises every dense node/edge enumeration that
// must skip tombstones: RPQ product sweeps (sequential, parallel, sharded),
// two-way RPQs, CRPQ atom candidates, ℓ-RPQ/dl-RPQ anchored search, and GQL
// patterns.
func TestOverlayQueriesMatchMaterialized(t *testing.T) {
	base := gen.Random(60, 200, []string{"a", "b", "c"}, 11)
	muts := []graph.Mutation{
		{Op: graph.MutRemoveNode, ID: "v5"},
		{Op: graph.MutRemoveNode, ID: "v17"},
		{Op: graph.MutAddNode, ID: "w0", Label: "W"},
		{Op: graph.MutAddEdge, ID: "f0", Label: "a", Src: "w0", Tgt: "v1"},
		{Op: graph.MutAddEdge, ID: "f1", Label: "b", Src: "v2", Tgt: "w0"},
		{Op: graph.MutRemoveEdge, ID: "e10"},
		{Op: graph.MutRemoveEdge, ID: "e11"},
		{Op: graph.MutSetNodeProp, ID: "v1", Prop: "k", Value: graph.Int(7)},
	}
	over, err := base.Apply(muts)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := over.Materialize()
	if err != nil {
		t.Fatal(err)
	}

	for _, cfg := range []struct {
		name                string
		parallelism, shards int
	}{
		{"sequential", 1, 0},
		{"parallel", 4, 0},
		{"sharded-2", 1, 2},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			eo := New(over)
			em := New(mat)
			eo.Parallelism, em.Parallelism = cfg.parallelism, cfg.parallelism
			eo.Shards, em.Shards = cfg.shards, cfg.shards

			check := func(label string, run func(e *Engine) (any, error)) {
				t.Helper()
				got, err1 := run(eo)
				want, err2 := run(em)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s: overlay err %v, materialized err %v", label, err1, err2)
				}
				if err1 != nil {
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: overlay answer differs from materialized\noverlay: %v\nmaterialized: %v",
						label, got, want)
				}
			}

			for _, q := range []string{"a", "a.b", "(a+b)*", "a*.c"} {
				q := q
				check("pairs:"+q, func(e *Engine) (any, error) { return sortPairs(e.Pairs(q)) })
			}
			check("2rpq", func(e *Engine) (any, error) { return sortPairs(e.TwoWayPairs("a.~b")) })
			// Row, path, and match order may track internal node numbering,
			// which differs between the overlay and the rebuilt graph, so
			// compare as sorted rendered sets.
			check("crpq", func(e *Engine) (any, error) {
				res, err := e.Rows("ans(x,y) :- (x, a.b, y)")
				if err != nil {
					return nil, err
				}
				out := make([]string, len(res.Rows))
				for i, row := range res.Rows {
					out[i] = fmt.Sprint(row)
				}
				sort.Strings(out)
				return out, nil
			})
			check("paths", func(e *Engine) (any, error) {
				e.MaxLen = 4
				prs, err := e.Paths("a.(a+b)", "v1", "v2", 0)
				if err != nil {
					return nil, err
				}
				out := make([]string, len(prs))
				for i, pr := range prs {
					out[i] = pr.Format(e.Graph())
				}
				sort.Strings(out)
				return out, nil
			})
			check("gql", func(e *Engine) (any, error) {
				e.MaxLen = 3
				ms, err := e.GQLMatch("(x)-[:a]->(y)")
				if err != nil {
					return nil, err
				}
				sort.Strings(ms)
				return ms, nil
			})
		})
	}
}

// sortPairs canonicalizes pair answers: parallel merges are deterministic,
// but overlay vs materialized graphs number nodes differently, so compare
// by external ID in sorted order.
func sortPairs(prs [][2]graph.NodeID, err error) (any, error) {
	if err != nil {
		return nil, err
	}
	out := make([]string, len(prs))
	for i, pr := range prs {
		out[i] = string(pr[0]) + "\x00" + string(pr[1])
	}
	sort.Strings(out)
	return out, nil
}
