// Engine entry points for the unified upper language tiers (this PR's
// tentpole at the serving layer): GQL and CoreGQL patterns, Cypher-fragment
// path patterns, PMR enumeration, document spanners, relational algebra
// over reachability atoms, and bag-semantics counting all dispatch through
// QueryCtx like the classic kinds — one meter threaded through every stage,
// parse results in the plan cache, spans on the trace — so each tier
// inherits deadlines, budgets, live progress, and cooperative kill from the
// same machinery.

package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"graphquery/internal/bag"
	"graphquery/internal/coregql"
	"graphquery/internal/cypherfrag"
	"graphquery/internal/eval"
	"graphquery/internal/gql"
	"graphquery/internal/graph"
	"graphquery/internal/obs"
	"graphquery/internal/pmr"
	"graphquery/internal/relalg"
	"graphquery/internal/rpq"
	"graphquery/internal/spanner"
)

// gqlMatchesMeter evaluates a GQL pattern to rendered matches.
func (e *Engine) gqlMatchesMeter(gs *graphState, query string, m *eval.Meter, tr *obs.Trace, maxLen, limit int) ([]string, error) {
	sp := tr.Start("parse")
	p, err := cached(e, gs, "gql", query, gql.ParsePattern)
	sp.End()
	if err != nil {
		return nil, badQuery(err)
	}
	s0, r0 := m.States(), m.Rows()
	sp = tr.Start("kernel")
	ms, err := gql.EvalPatternMeter(gs.g, p, gql.Options{MaxLen: maxLen}, m)
	sp.Counts(m.States()-s0, m.Rows()-r0).End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start("enumerate")
	defer sp.End()
	return renderGQLMatches(gs.g, ms, limit), nil
}

func renderGQLMatches(g *graph.Graph, ms []gql.Match, limit int) []string {
	if limit > 0 && len(ms) > limit {
		ms = ms[:limit]
	}
	out := make([]string, len(ms))
	for i, m := range ms {
		line := m.Path.Format(g)
		vars := make([]string, 0, len(m.B))
		for v := range m.B {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			line += "  " + v + "=" + m.B[v].Format(g)
		}
		out[i] = line
	}
	return out
}

// coreGQLMatchesMeter evaluates the CoreGQL fragment of a GQL pattern: the
// surface syntax is shared with gql, lowered onto coregql's label-free
// atoms (patterns outside the fragment are rejected as bad queries).
func (e *Engine) coreGQLMatchesMeter(gs *graphState, query string, m *eval.Meter, tr *obs.Trace, maxLen, limit int) ([]string, error) {
	sp := tr.Start("parse")
	p, err := cached(e, gs, "coregql", query, func(q string) (coregql.Pattern, error) {
		gp, err := gql.ParsePattern(q)
		if err != nil {
			return nil, err
		}
		return gql.ToCore(gp)
	})
	sp.End()
	if err != nil {
		return nil, badQuery(err)
	}
	s0, r0 := m.States(), m.Rows()
	sp = tr.Start("kernel")
	ms, err := coregql.EvalPatternMeter(gs.g, p, coregql.Options{MaxLen: maxLen}, m)
	sp.Counts(m.States()-s0, m.Rows()-r0).End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start("enumerate")
	defer sp.End()
	if limit > 0 && len(ms) > limit {
		ms = ms[:limit]
	}
	out := make([]string, len(ms))
	for i, mt := range ms {
		line := mt.Path.Format(gs.g)
		vars := make([]string, 0, len(mt.Binding))
		for v := range mt.Binding {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			line += "  " + v + "=" + formatObject(gs.g, mt.Binding[v])
		}
		out[i] = line
	}
	return out, nil
}

func formatObject(g *graph.Graph, o graph.Object) string {
	if o.IsEdge() {
		return string(g.Edge(o.Index()).ID)
	}
	return string(g.Node(o.Index()).ID)
}

// compileCypherTraced parses a Cypher-fragment pattern, lowers it to its
// RPQ, and runs the full RPQ compilation pipeline (Glushkov, product
// resolution, cost-based planning) — the same rpqPlan the plain-RPQ path
// caches, so Cypher queries share the kernel, the planner, and the runtime
// counters.
func (e *Engine) compileCypherTraced(gs *graphState, tr *obs.Trace) func(string) (rpqPlan, error) {
	return func(q string) (rpqPlan, error) {
		sp := tr.Start("parse")
		p, err := cypherfrag.Parse(q)
		sp.End()
		if err != nil {
			return rpqPlan{}, err
		}
		sp = tr.Start("compile")
		expr := cypherfrag.Compile(p)
		nfa := rpq.Compile(expr)
		product := eval.NewProductInstrumented(gs.g, nfa, &e.counters)
		sp.End()
		sp = tr.Start("plan")
		plan := e.planFor(gs, nfa)
		sp.End()
		return rpqPlan{expr: expr, nfa: nfa, product: product, plan: plan}, nil
	}
}

// cypherPairsMeter evaluates a Cypher-fragment pattern to endpoint pairs on
// the planned kernel sweep.
func (e *Engine) cypherPairsMeter(gs *graphState, query string, m *eval.Meter, tr *obs.Trace) ([][2]graph.NodeID, error) {
	plan, err := cached(e, gs, "cypher", query, e.compileCypherTraced(gs, tr))
	if err != nil {
		return nil, badQuery(err)
	}
	tr.Set("plan", plan.plan.String())
	s0, r0 := m.States(), m.Rows()
	sp := tr.Start("kernel")
	prs, err := eval.PairsProductCtx(context.Background(), plan.product,
		eval.Options{Parallelism: e.Parallelism, Meter: m, Plan: plan.plan})
	sp.Counts(m.States()-s0, m.Rows()-r0).End()
	if err != nil {
		return nil, err
	}
	e.noteKernelActuals(gs, tr, plan, m.States()-s0, m.SweepStatsSink())
	sp = tr.Start("enumerate")
	defer sp.End()
	var out [][2]graph.NodeID
	for _, pr := range prs {
		out = append(out, [2]graph.NodeID{gs.g.Node(pr[0]).ID, gs.g.Node(pr[1]).ID})
	}
	return out, nil
}

// pmrPathsMeter builds the path-multiset representation of an RPQ between
// two nodes on the kernel and enumerates up to limit paths from it. PMR
// enumeration is output-linear but possibly infinite (cyclic path sets), so
// the limit is mandatory.
func (e *Engine) pmrPathsMeter(gs *graphState, query string, src, dst graph.NodeID, shortest bool, m *eval.Meter, tr *obs.Trace, limit int) ([]PathResult, error) {
	if limit <= 0 {
		return nil, badQuery(errors.New("core: pmr queries need a limit > 0 (path sets may be infinite)"))
	}
	u, ok := gs.g.NodeIndex(src)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, src)
	}
	v, ok := gs.g.NodeIndex(dst)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, dst)
	}
	plan, err := cached(e, gs, "rpq", query, e.compileRPQTraced(gs, tr))
	if err != nil {
		return nil, badQuery(err)
	}
	s0, r0 := m.States(), m.Rows()
	sp := tr.Start("kernel")
	var r *pmr.PMR
	if shortest {
		r, err = pmr.ShortestFromProductMeter(gs.g, plan.expr, u, v, m)
	} else {
		r, err = pmr.FromProductMeter(gs.g, plan.expr, u, v, m)
	}
	sp.Counts(m.States()-s0, m.Rows()-r0).End()
	if err != nil {
		return nil, err
	}
	s0, r0 = m.States(), m.Rows()
	sp = tr.Start("enumerate")
	paths, err := r.EnumerateMeter(limit, m)
	sp.Counts(m.States()-s0, m.Rows()-r0).End()
	if err != nil {
		return nil, err
	}
	out := make([]PathResult, len(paths))
	for i, p := range paths {
		out[i] = PathResult{Path: p}
	}
	return out, nil
}

// spannerMeter evaluates a document spanner over req.Doc: the kernel
// answers feasibility on the document's line graph, then the capture
// recursion runs metered. Matches render as sorted var=[start,end⟩ lines.
func (e *Engine) spannerMeter(gs *graphState, doc, query string, m *eval.Meter, tr *obs.Trace, limit int) ([]string, error) {
	sp := tr.Start("parse")
	expr, err := cached(e, gs, "spanner", query, spanner.Parse)
	sp.End()
	if err != nil {
		return nil, badQuery(err)
	}
	s0, r0 := m.States(), m.Rows()
	sp = tr.Start("kernel")
	ms, err := spanner.EvaluateMeter(doc, expr, m)
	sp.Counts(m.States()-s0, m.Rows()-r0).End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start("enumerate")
	defer sp.End()
	if limit > 0 && len(ms) > limit {
		ms = ms[:limit]
	}
	out := make([]string, len(ms))
	for i, mt := range ms {
		vars := make([]string, 0, len(mt))
		for v := range mt {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		line := ""
		for j, v := range vars {
			if j > 0 {
				line += "  "
			}
			line += v + "=" + mt[v].String()
		}
		out[i] = line
	}
	return out, nil
}

// relalgMeter evaluates a relational-algebra query whose REACH atoms run on
// the kernel.
func (e *Engine) relalgMeter(gs *graphState, query string, m *eval.Meter, tr *obs.Trace) (*relalg.Relation, error) {
	sp := tr.Start("parse")
	q, err := cached(e, gs, "relalg", query, relalg.ParseQuery)
	sp.End()
	if err != nil {
		return nil, badQuery(err)
	}
	s0, r0 := m.States(), m.Rows()
	sp = tr.Start("kernel")
	defer func() { sp.Counts(m.States()-s0, m.Rows()-r0).End() }()
	return relalg.EvalQueryCtx(context.Background(), gs.g, q,
		eval.Options{Parallelism: e.Parallelism, Meter: m})
}

// bagMeter computes the bag-semantics total answer count of an RPQ — the
// Section 6.1 explosion quantity — with the kernel pruning the star
// recursion.
func (e *Engine) bagMeter(gs *graphState, query string, m *eval.Meter, tr *obs.Trace) (*big.Int, error) {
	sp := tr.Start("parse")
	expr, err := cached(e, gs, "bag", query, rpq.Parse)
	sp.End()
	if err != nil {
		return nil, badQuery(err)
	}
	s0, r0 := m.States(), m.Rows()
	sp = tr.Start("kernel")
	defer func() { sp.Counts(m.States()-s0, m.Rows()-r0).End() }()
	return bag.TotalCountMeter(gs.g, expr, m)
}
