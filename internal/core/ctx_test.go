package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
)

// TestQueryCtxRowBudget is the §6.3 acceptance check: Figure 5's graph has
// 2^n distinct s→t paths, so an unbudgeted mode-all enumeration is
// exponential in the output — and a rows budget must stop it with
// ErrBudgetExceeded instead of materializing it.
func TestQueryCtxRowBudget(t *testing.T) {
	e := New(gen.Figure5(20))
	e.MaxLen = 20
	_, err := e.QueryCtx(context.Background(), Request{
		Query:  "a*",
		From:   "s",
		To:     "t",
		Budget: eval.Budget{MaxRows: 100},
	})
	if !errors.Is(err, eval.ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	var be *eval.BudgetError
	if !errors.As(err, &be) || be.Resource != "rows" || be.Limit != 100 {
		t.Fatalf("got %v, want *BudgetError{rows, 100}", err)
	}
}

// TestQueryCtxDeadline runs an expensive clique query under a 50ms deadline
// and requires a prompt ErrCanceled that still unwraps to
// context.DeadlineExceeded.
func TestQueryCtxDeadline(t *testing.T) {
	// clique-300 under a* a* a* takes ~600ms sequential on a fast machine —
	// an order of magnitude past the 50ms deadline, so this cannot finish
	// before the deadline fires.
	e := New(gen.Clique(300, "a"))
	e.Parallelism = 1
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.QueryCtx(ctx, Request{Query: "a* a* a*"})
	elapsed := time.Since(start)
	if !errors.Is(err, eval.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline cause not preserved: %v", err)
	}
	if elapsed > 2*50*time.Millisecond {
		t.Errorf("returned %v after the 50ms deadline; want within 2x", elapsed)
	}
}

// TestQueryCtxDispatch checks the unified entry point routes every language
// to the right result kind.
func TestQueryCtxDispatch(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	ctx := context.Background()

	resp, err := e.QueryCtx(ctx, Request{Query: "Transfer*", Budget: eval.Budget{MaxStates: 1 << 30}})
	if err != nil || resp.Kind != "pairs" || len(resp.Pairs) == 0 {
		t.Fatalf("RPQ: resp=%+v err=%v, want pairs", resp, err)
	}
	// A budgeted request carries a live meter, so the work is accounted.
	if resp.StatesVisited == 0 {
		t.Errorf("RPQ: StatesVisited not accounted")
	}

	resp, err = e.QueryCtx(ctx, Request{Query: "Transfer+", From: "a3", To: "a1", Mode: eval.Shortest})
	if err != nil || resp.Kind != "paths" {
		t.Fatalf("anchored RPQ: resp=%+v err=%v, want paths", resp, err)
	}

	resp, err = e.QueryCtx(ctx, Request{Query: "q(x,y) :- Transfer(x,y), Transfer(y,x)"})
	if err != nil || resp.Kind != "rows" || resp.Rows == nil {
		t.Fatalf("CRPQ: resp=%+v err=%v, want rows", resp, err)
	}

	resp, err = e.QueryCtx(ctx, Request{Query: "~Transfer Transfer", Lang: "2rpq"})
	if err != nil || resp.Kind != "pairs" {
		t.Fatalf("2RPQ: resp=%+v err=%v, want pairs", resp, err)
	}
}

func TestQueryCtxErrorTaxonomy(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	ctx := context.Background()

	if _, err := e.QueryCtx(ctx, Request{Query: "((("}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("parse error: got %v, want ErrBadQuery", err)
	}
	if _, err := e.QueryCtx(ctx, Request{Query: "Transfer", From: "nope", To: "a1"}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: got %v, want ErrUnknownNode", err)
	}
	if _, err := e.QueryCtx(ctx, Request{Query: "() [Transfer] ()"}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("unanchored dl-RPQ: got %v, want ErrBadQuery", err)
	}
	if _, err := e.QueryCtx(ctx, Request{Query: "Transfer", From: "a1"}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("half-anchored: got %v, want ErrBadQuery", err)
	}
}

// TestQueryCtxOverridesDoNotMutateEngine checks per-request bounds are
// computed locally: concurrent requests must not observe each other's
// overrides.
func TestQueryCtxOverridesDoNotMutateEngine(t *testing.T) {
	e := New(gen.Figure5(4))
	e.MaxLen = 7
	e.Limit = 3
	if _, err := e.QueryCtx(context.Background(), Request{
		Query: "a*", From: "s", To: "t", MaxLen: 4, Limit: 1,
		Budget: eval.Budget{MaxStates: 1 << 30},
	}); err != nil {
		t.Fatal(err)
	}
	if e.MaxLen != 7 || e.Limit != 3 || e.Budget != (eval.Budget{}) {
		t.Fatalf("engine mutated by request overrides: MaxLen=%d Limit=%d Budget=%+v", e.MaxLen, e.Limit, e.Budget)
	}
}

// TestCtxVariantsMatchClassic checks the ctx entry points return the same
// results as the seed's non-ctx methods.
func TestCtxVariantsMatchClassic(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	ctx := context.Background()

	want, err := e.Pairs("Transfer*")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.PairsCtx(ctx, "Transfer*")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("PairsCtx: %d pairs, Pairs: %d", len(got), len(want))
	}

	wr, err := e.Rows("q(x,y) :- Transfer(x,y), Transfer(y,x)")
	if err != nil {
		t.Fatal(err)
	}
	gr, err := e.RowsCtx(ctx, "q(x,y) :- Transfer(x,y), Transfer(y,x)")
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Rows) != len(wr.Rows) {
		t.Fatalf("RowsCtx: %d rows, Rows: %d", len(gr.Rows), len(wr.Rows))
	}

	wp, err := e.Paths("Transfer+", "a3", "a1", eval.Shortest)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := e.PathsCtx(ctx, "Transfer+", "a3", "a1", eval.Shortest)
	if err != nil {
		t.Fatal(err)
	}
	if len(gp) != len(wp) {
		t.Fatalf("PathsCtx: %d paths, Paths: %d", len(gp), len(wp))
	}

	ww, err := e.TwoWayPairs("~Transfer Transfer")
	if err != nil {
		t.Fatal(err)
	}
	gw, err := e.TwoWayPairsCtx(ctx, "~Transfer Transfer")
	if err != nil {
		t.Fatal(err)
	}
	if len(gw) != len(ww) {
		t.Fatalf("TwoWayPairsCtx: %d pairs, TwoWayPairs: %d", len(gw), len(ww))
	}
}
