//go:build !race

package core

// Allocation-count regressions are excluded from -race runs: the
// detector's own instrumentation allocates, so the counts only mean
// anything in a plain build.

import (
	"testing"

	"graphquery/internal/gen"
)

// TestWarmQueryAllocs is the satellite alloc regression at the engine
// level: with the plan cached and the kernel's scratch pool warm, a
// repeated Pairs query must not reallocate the O(product-states) sweep
// buffers — the per-run allocation count stays flat and small (result
// assembly still allocates its output slices).
func TestWarmQueryAllocs(t *testing.T) {
	e := New(gen.Clique(8, "a"))
	e.Parallelism = 1
	warm := func() {
		if _, err := e.Pairs("a a*"); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()
	allocs := testing.AllocsPerRun(50, warm)
	// 8 sources × a few result-slice allocations each; the bound has >2x
	// headroom but catches per-query scratch reallocation (~3 per source:
	// visited + emitted + queue) immediately.
	if allocs > 60 {
		t.Fatalf("warm cached query allocates %.0f times per run, want ≤ 60 (scratch pool not reused?)", allocs)
	}
}
