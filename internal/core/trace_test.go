package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/obs"
)

func spanNames(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

func hasSpan(spans []obs.Span, name string) bool {
	for _, s := range spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

// TestQueryCtxTrace verifies the span model of §10: a cold RPQ records
// parse → compile → plan → kernel → enumerate, a warm one skips the
// compilation stages, the kernel span carries the meter deltas, and the
// chosen plan line is surfaced on the Response.
func TestQueryCtxTrace(t *testing.T) {
	e := New(gen.Clique(64, "a"))
	cold, err := e.QueryCtx(context.Background(), Request{Query: "a a*"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"parse", "compile", "plan", "kernel", "enumerate"} {
		if !hasSpan(cold.Spans, name) {
			t.Errorf("cold query missing %q span, got %v", name, spanNames(cold.Spans))
		}
	}
	if !strings.Contains(cold.Plan, "dir=") {
		t.Errorf("Response.Plan = %q, want a kernel plan line", cold.Plan)
	}
	if got := obs.TotalStates(cold.Spans); got != cold.StatesVisited {
		t.Errorf("span states = %d, meter states = %d", got, cold.StatesVisited)
	}
	if got := obs.TotalRows(cold.Spans); got != cold.RowsProduced {
		t.Errorf("span rows = %d, meter rows = %d", got, cold.RowsProduced)
	}

	warm, err := e.QueryCtx(context.Background(), Request{Query: "a a*"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"parse", "compile", "plan"} {
		if hasSpan(warm.Spans, name) {
			t.Errorf("warm query recorded a %q span (plan-cache hit should skip compilation), got %v",
				name, spanNames(warm.Spans))
		}
	}
	if !hasSpan(warm.Spans, "kernel") {
		t.Errorf("warm query missing kernel span, got %v", spanNames(warm.Spans))
	}
	if warm.Plan != cold.Plan {
		t.Errorf("plan line changed between cold and warm: %q vs %q", cold.Plan, warm.Plan)
	}
}

// TestQueryCtxTraceSurvivesError: a caller-supplied trace keeps the spans
// and the plan attribute even when the query errs and no Response exists —
// what the slow-query log relies on for timed-out/over-budget queries.
func TestQueryCtxTraceSurvivesError(t *testing.T) {
	e := New(gen.Clique(64, "a"))
	tr := obs.NewTrace()
	_, err := e.QueryCtx(context.Background(), Request{
		Query:  "a a*",
		Budget: eval.Budget{MaxStates: 64},
		Trace:  tr,
	})
	if !errors.Is(err, eval.ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	if !hasSpan(tr.Spans(), "kernel") {
		t.Errorf("errored query lost its kernel span, got %v", spanNames(tr.Spans()))
	}
	if !strings.Contains(tr.Attr("plan"), "dir=") {
		t.Errorf("errored query lost its plan attribute: %q", tr.Attr("plan"))
	}
}

// TestQueryCtxTraceOtherKinds pins span coverage for the non-RPQ dispatch
// arms: 2RPQ and CRPQ queries, and anchored path queries.
func TestQueryCtxTraceOtherKinds(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"2rpq", Request{Query: "Transfer ~Transfer", Lang: "2rpq"}, "kernel"},
		{"crpq", Request{Query: "q(x, y) :- Transfer(x, y)"}, "kernel"},
		{"paths", Request{Query: "Transfer Transfer", From: "a1", To: "a3", Mode: eval.Shortest}, "enumerate"},
	}
	for _, tc := range cases {
		resp, err := e.QueryCtx(context.Background(), tc.req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !hasSpan(resp.Spans, tc.want) {
			t.Errorf("%s: missing %q span, got %v", tc.name, tc.want, spanNames(resp.Spans))
		}
	}
}
