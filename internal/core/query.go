// Context-aware query entry points: the serving surface of the engine.
// Every method here threads one eval.Meter through all evaluation stages of
// a query, so cooperative cancellation (client disconnect, deadline) and
// per-query resource budgets (product states visited, result rows) are
// enforced query-globally — the requirement the paper's Propositions 22–24
// impose on any service boundary: evaluation cost can blow up
// combinatorially, so the serving layer must be able to stop it.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"graphquery/internal/crpq"
	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/gpath"
	"graphquery/internal/graph"
	"graphquery/internal/lrpq"
	"graphquery/internal/obs"
	"graphquery/internal/relalg"
	"graphquery/internal/twoway"
)

// The engine-level error taxonomy. Serving layers map these to client
// errors (bad request, unknown node), while eval.ErrCanceled and
// eval.ErrBudgetExceeded pass through untouched and map to timeout/
// overload responses.
var (
	// ErrBadQuery wraps parse and validation failures: the query text
	// itself is at fault.
	ErrBadQuery = errors.New("core: bad query")
	// ErrUnknownNode wraps references to node IDs absent from the graph.
	ErrUnknownNode = errors.New("core: unknown node")
)

func badQuery(err error) error {
	return fmt.Errorf("%w: %w", ErrBadQuery, err)
}

// classify folds evaluation errors into the taxonomy: cancellation and
// budget errors pass through; anything else an evaluator rejects
// (validation, unknown constant nodes, unbounded enumeration) is the
// client's query at fault.
func classify(err error) error {
	if err == nil ||
		errors.Is(err, eval.ErrCanceled) ||
		errors.Is(err, eval.ErrBudgetExceeded) ||
		errors.Is(err, ErrBadQuery) ||
		errors.Is(err, ErrUnknownNode) {
		return err
	}
	return badQuery(err)
}

// Request describes one query for QueryCtx. Zero-valued optional fields
// fall back to the engine's defaults.
type Request struct {
	// Query is the query text; its language is auto-detected (Detect)
	// unless Lang overrides it.
	Query string
	// Lang selects the language explicitly: "" or "auto" auto-detects among
	// the classic kinds; "2rpq" (two-way RPQ → pairs), "gql" (GQL pattern →
	// matches), "coregql" (CoreGQL fragment → matches), "cypher" (Cypher
	// fragment → pairs), "pmr" (path representation → paths), "spanner"
	// (document spanner over Doc → spans), "relalg" (algebra over REACH
	// atoms → relation), and "bag" (bag-semantics count → bag) force a tier.
	Lang string
	// Doc is the input document for spanner queries; ignored elsewhere.
	Doc string
	// From/To anchor path queries; both empty means endpoint-pair (RPQ) or
	// row (CRPQ) semantics.
	From, To graph.NodeID
	// Mode is the path mode for anchored queries (default All).
	Mode eval.Mode
	// MaxLen / Limit override the engine's enumeration bounds when > 0.
	MaxLen, Limit int
	// Budget overrides the engine's per-query budget field-by-field when
	// its fields are > 0.
	Budget eval.Budget
	// Trace, when set, receives the query's evaluation spans and plan
	// attribute. Serving layers supply one so span timings and the plan
	// line survive even when the query errs (timeout, exhausted budget)
	// and no Response is produced. When nil, QueryCtx makes its own.
	Trace *obs.Trace
	// Progress, when set, receives live evaluation progress — the current
	// stage plus product states, edges, rows, and frontier size — sampled
	// by the serving layer's in-flight registry while the query runs. The
	// kernel feeds it through the meter's amortized tick, so the hot loop
	// gains no new branches. When nil, nothing is recorded.
	Progress *obs.Progress
	// Analyze turns on EXPLAIN ANALYZE mode: the meter carries a sweep
	// telemetry sink the kernel records into at its existing exit and
	// barrier sites, and the Response gains an annotated plan tree with
	// per-node estimate, actual, and q-error. Off (the default) costs
	// nothing — the sink is nil and the kernel's hot loops are unchanged.
	Analyze bool
}

// Response is the union result of QueryCtx, discriminated by Kind.
type Response struct {
	// Kind names the result shape: "pairs" (rpq/2rpq/cypher), "paths"
	// (anchored rpq/ℓ-rpq/dl-rpq, pmr), "rows" (crpq), "matches" (gql,
	// coregql), "spans" (spanner), "relation" (relalg), or "bag" (bag).
	Kind  string
	Pairs [][2]graph.NodeID
	Paths []PathResult
	Rows  *crpq.Result
	// Matches holds rendered result lines for kinds "matches" and "spans".
	Matches []string
	// Rel is the result relation for kind "relation".
	Rel *relalg.Relation
	// Bag is the exact answer multiplicity total for kind "bag".
	Bag *big.Int

	// Streamed counts result rows delivered through a Sink by QueryStream;
	// streamed kinds leave their materialized result fields empty (the rows
	// already went to the consumer), so Count() falls back to this.
	Streamed int

	// StatesVisited / RowsProduced are the meter readings of this query —
	// the work it performed, for accounting and /v1/statz aggregation.
	StatesVisited int64
	RowsProduced  int64

	// Plan is the kernel plan line the planner chose ("" for query kinds
	// without a planned kernel sweep); Spans are the evaluation stages with
	// nanosecond timings and per-stage meter deltas.
	Plan  string
	Spans []obs.Span

	// Analyze is the annotated plan tree with sweep telemetry, present only
	// when the request set Analyze.
	Analyze *AnnotatedPlan `json:"analyze,omitempty"`

	// G is the graph snapshot this query evaluated against. Serving layers
	// must render internal indexes (paths, row values) against it, not
	// against the engine's current graph, which may have advanced under a
	// live store while the query ran. GraphRev is that snapshot's revision,
	// stamped into query records so slow queries and crossval reruns can be
	// pinned to the exact store state they saw.
	G        *graph.Graph
	GraphRev uint64
}

// Count returns the number of results regardless of kind. For responses
// whose rows were streamed through a Sink the materialized fields are
// empty and the streamed-row count is the answer.
func (r *Response) Count() int {
	if r.Streamed > 0 {
		return r.Streamed
	}
	switch r.Kind {
	case "pairs":
		return len(r.Pairs)
	case "paths":
		return len(r.Paths)
	case "rows":
		if r.Rows != nil {
			return len(r.Rows.Rows)
		}
	case "matches", "spans":
		return len(r.Matches)
	case "relation":
		if r.Rel != nil {
			return r.Rel.Len()
		}
	case "bag":
		if r.Bag != nil {
			return 1 // one aggregate answer
		}
	}
	return 0
}

// QueryCtx evaluates one request under ctx: the single entry point of the
// query service. Cancellation and budget violations surface as
// eval.ErrCanceled / eval.ErrBudgetExceeded; malformed queries as
// ErrBadQuery; unknown endpoints as ErrUnknownNode.
func (e *Engine) QueryCtx(ctx context.Context, req Request) (*Response, error) {
	return e.runQuery(ctx, req, e.dispatch)
}

// runQuery is the shared driver behind QueryCtx and QueryStream: resolve
// the request's bounds against the engine defaults, mint the query-global
// meter, fix the graph snapshot, run the dispatch variant, and stamp the
// response with the meter readings and trace artifacts.
func (e *Engine) runQuery(ctx context.Context, req Request,
	dispatch func(gs *graphState, req Request, m *eval.Meter, tr *obs.Trace, maxLen, limit int) (*Response, error)) (*Response, error) {
	maxLen := req.MaxLen
	if maxLen <= 0 {
		maxLen = e.MaxLen
	}
	limit := req.Limit
	if limit <= 0 {
		limit = e.Limit
	}
	b := req.Budget
	if b.MaxStates <= 0 {
		b.MaxStates = e.Budget.MaxStates
	}
	if b.MaxRows <= 0 {
		b.MaxRows = e.Budget.MaxRows
	}
	var ss *eval.SweepStats
	if req.Analyze {
		ss = &eval.SweepStats{}
	}
	m := eval.NewMeterAnalyze(ctx, b, req.Progress, ss)
	tr := req.Trace
	if tr == nil {
		tr = obs.NewTrace()
	}
	// Stage sampling rides the spans the engine already records: every
	// span opened on this trace updates req.Progress's stage.
	tr.BindProgress(req.Progress)

	// One atomic load fixes the graph snapshot for the whole query; the pin
	// (if the graph came from a live store) keeps that snapshot accounted
	// for until evaluation finishes, even if writers commit meanwhile.
	gs := e.cur.Load()
	defer gs.acquire()()
	resp, err := dispatch(gs, req, m, tr, maxLen, limit)
	if err != nil {
		return nil, classify(err)
	}
	resp.StatesVisited = m.States()
	resp.RowsProduced = m.Rows()
	resp.Plan = tr.Attr("plan")
	resp.Spans = tr.Spans()
	resp.G = gs.g
	resp.GraphRev = gs.rev
	if req.Analyze {
		resp.Analyze = e.annotate(req, resp, tr, ss)
	}
	return resp, nil
}

// Query is QueryCtx without a context, for callers that want the unified
// request surface but no cancellation.
func (e *Engine) Query(req Request) (*Response, error) {
	return e.QueryCtx(context.Background(), req)
}

func (e *Engine) dispatch(gs *graphState, req Request, m *eval.Meter, tr *obs.Trace, maxLen, limit int) (*Response, error) {
	anchored := req.From != "" || req.To != ""
	if req.Lang != "" && req.Lang != "auto" {
		kind, ok := KindForLang(req.Lang)
		if !ok {
			return nil, badQuery(fmt.Errorf("core: unknown lang %q", req.Lang))
		}
		// Per-kind request schemas: only path-producing kinds accept from/to
		// anchors; pmr requires them.
		if anchored && kind != KindPMR {
			return nil, badQuery(fmt.Errorf("core: lang %q queries do not take from/to anchors", req.Lang))
		}
		switch kind {
		case KindTwoWay:
			pairs, err := e.twoWayPairsMeter(gs, req.Query, m, tr)
			if err != nil {
				return nil, err
			}
			return &Response{Kind: "pairs", Pairs: pairs}, nil
		case KindGQL:
			ms, err := e.gqlMatchesMeter(gs, req.Query, m, tr, maxLen, limit)
			if err != nil {
				return nil, err
			}
			return &Response{Kind: "matches", Matches: ms}, nil
		case KindCoreGQL:
			ms, err := e.coreGQLMatchesMeter(gs, req.Query, m, tr, maxLen, limit)
			if err != nil {
				return nil, err
			}
			return &Response{Kind: "matches", Matches: ms}, nil
		case KindCypher:
			pairs, err := e.cypherPairsMeter(gs, req.Query, m, tr)
			if err != nil {
				return nil, err
			}
			return &Response{Kind: "pairs", Pairs: pairs}, nil
		case KindPMR:
			if req.From == "" || req.To == "" {
				return nil, badQuery(errors.New("core: pmr queries need both from and to"))
			}
			paths, err := e.pmrPathsMeter(gs, req.Query, req.From, req.To, req.Mode == eval.Shortest, m, tr, limit)
			if err != nil {
				return nil, err
			}
			return &Response{Kind: "paths", Paths: paths}, nil
		case KindSpanner:
			spans, err := e.spannerMeter(gs, req.Doc, req.Query, m, tr, limit)
			if err != nil {
				return nil, err
			}
			return &Response{Kind: "spans", Matches: spans}, nil
		case KindRelAlg:
			rel, err := e.relalgMeter(gs, req.Query, m, tr)
			if err != nil {
				return nil, err
			}
			return &Response{Kind: "relation", Rel: rel}, nil
		case KindBag:
			total, err := e.bagMeter(gs, req.Query, m, tr)
			if err != nil {
				return nil, err
			}
			return &Response{Kind: "bag", Bag: total}, nil
		}
	}
	switch Detect(req.Query) {
	case KindCRPQ:
		if anchored {
			return nil, badQuery(errors.New("core: CRPQ queries return rows; do not anchor them with from/to"))
		}
		rows, err := e.rowsMeter(gs, req.Query, m, tr, maxLen)
		if err != nil {
			return nil, err
		}
		return &Response{Kind: "rows", Rows: rows}, nil
	case KindDLRPQ:
		if !anchored {
			return nil, badQuery(errors.New("core: dl-RPQ queries need from and to endpoints"))
		}
		fallthrough
	default:
		if anchored {
			if req.From == "" || req.To == "" {
				return nil, badQuery(errors.New("core: path queries need both from and to"))
			}
			paths, err := e.pathsMeter(gs, req.Query, req.From, req.To, req.Mode, m, tr, maxLen, limit)
			if err != nil {
				return nil, err
			}
			return &Response{Kind: "paths", Paths: paths}, nil
		}
		pairs, err := e.pairsMeter(gs, req.Query, m, tr)
		if err != nil {
			return nil, err
		}
		return &Response{Kind: "pairs", Pairs: pairs}, nil
	}
}

// PairsCtx is Pairs under ctx and the engine's budget.
func (e *Engine) PairsCtx(ctx context.Context, query string) ([][2]graph.NodeID, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	pairs, err := e.pairsMeter(gs, query, eval.NewMeter(ctx, e.Budget), nil)
	return pairs, classify(err)
}

func (e *Engine) pairsMeter(gs *graphState, query string, m *eval.Meter, tr *obs.Trace) ([][2]graph.NodeID, error) {
	plan, err := cached(e, gs, "rpq", query, e.compileRPQTraced(gs, tr))
	if err != nil {
		return nil, badQuery(err)
	}
	tr.Set("plan", plan.plan.String())
	s0, r0 := m.States(), m.Rows()
	sp := tr.Start("kernel")
	prs, err := eval.PairsProductCtx(context.Background(), plan.product,
		eval.Options{Parallelism: e.Parallelism, Meter: m, Plan: plan.plan})
	sp.Counts(m.States()-s0, m.Rows()-r0).End()
	if err != nil {
		return nil, err
	}
	e.noteKernelActuals(gs, tr, plan, m.States()-s0, m.SweepStatsSink())
	sp = tr.Start("enumerate")
	defer sp.End()
	var out [][2]graph.NodeID
	for _, pr := range prs {
		out = append(out, [2]graph.NodeID{gs.g.Node(pr[0]).ID, gs.g.Node(pr[1]).ID})
	}
	return out, nil
}

// RowsCtx is Rows under ctx and the engine's budget.
func (e *Engine) RowsCtx(ctx context.Context, query string) (*crpq.Result, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	rows, err := e.rowsMeter(gs, query, eval.NewMeter(ctx, e.Budget), nil, e.MaxLen)
	return rows, classify(err)
}

func (e *Engine) rowsMeter(gs *graphState, query string, m *eval.Meter, tr *obs.Trace, maxLen int) (*crpq.Result, error) {
	sp := tr.Start("parse")
	q, err := cached(e, gs, "crpq", query, crpq.Parse)
	sp.End()
	if err != nil {
		return nil, badQuery(err)
	}
	s0, r0 := m.States(), m.Rows()
	sp = tr.Start("kernel")
	defer func() { sp.Counts(m.States()-s0, m.Rows()-r0).End() }()
	return crpq.EvalCtx(context.Background(), gs.g, q,
		crpq.Options{AtomMaxLen: maxLen, Parallelism: e.Parallelism, Meter: m})
}

// PathsCtx is Paths under ctx and the engine's budget.
func (e *Engine) PathsCtx(ctx context.Context, query string, src, dst graph.NodeID, mode eval.Mode) ([]PathResult, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	res, err := e.pathsMeter(gs, query, src, dst, mode, eval.NewMeter(ctx, e.Budget), nil, e.MaxLen, e.Limit)
	return res, classify(err)
}

func (e *Engine) pathsMeter(gs *graphState, query string, src, dst graph.NodeID, mode eval.Mode, m *eval.Meter, tr *obs.Trace, maxLen, limit int) ([]PathResult, error) {
	u, ok := gs.g.NodeIndex(src)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, src)
	}
	v, ok := gs.g.NodeIndex(dst)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, dst)
	}
	// Path evaluators interleave search and path reconstruction, so one
	// "enumerate" span covers evaluation; the meter deltas still report
	// the product states it expanded.
	enumerate := func(eval func() ([]gpath.PathBinding, error)) ([]PathResult, error) {
		s0, r0 := m.States(), m.Rows()
		sp := tr.Start("enumerate")
		pbs, err := eval()
		sp.Counts(m.States()-s0, m.Rows()-r0).End()
		if err != nil {
			return nil, err
		}
		return toResults(pbs), nil
	}
	switch Detect(query) {
	case KindCRPQ:
		return nil, badQuery(errors.New("core: CRPQ queries return rows; use Rows"))
	case KindDLRPQ:
		sp := tr.Start("parse")
		expr, err := cached(e, gs, "dlrpq", query, dlrpq.Parse)
		sp.End()
		if err != nil {
			return nil, badQuery(err)
		}
		return enumerate(func() ([]gpath.PathBinding, error) {
			return dlrpq.EvalBetween(gs.g, expr, u, v, mode,
				dlrpq.Options{MaxLen: maxLen, Limit: limit, Meter: m, Counters: &e.counters})
		})
	default:
		sp := tr.Start("parse")
		expr, err := cached(e, gs, "lrpq", query, lrpq.Parse)
		sp.End()
		if err != nil {
			return nil, badQuery(err)
		}
		return enumerate(func() ([]gpath.PathBinding, error) {
			return lrpq.EvalBetween(gs.g, expr, u, v, mode,
				lrpq.Options{MaxLen: maxLen, Limit: limit, Meter: m, Counters: &e.counters})
		})
	}
}

// TwoWayPairsCtx is TwoWayPairs under ctx and the engine's budget.
func (e *Engine) TwoWayPairsCtx(ctx context.Context, query string) ([][2]graph.NodeID, error) {
	gs := e.cur.Load()
	defer gs.acquire()()
	pairs, err := e.twoWayPairsMeter(gs, query, eval.NewMeter(ctx, e.Budget), nil)
	return pairs, classify(err)
}

func (e *Engine) twoWayPairsMeter(gs *graphState, query string, m *eval.Meter, tr *obs.Trace) ([][2]graph.NodeID, error) {
	sp := tr.Start("parse")
	expr, err := cached(e, gs, "2rpq", query, twoway.Parse)
	sp.End()
	if err != nil {
		return nil, badQuery(err)
	}
	s0, r0 := m.States(), m.Rows()
	sp = tr.Start("kernel")
	prs, err := twoway.PairsMeterOpt(gs.g, expr, m,
		twoway.Options{Parallelism: 1, Counters: &e.counters})
	sp.Counts(m.States()-s0, m.Rows()-r0).End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start("enumerate")
	defer sp.End()
	var out [][2]graph.NodeID
	for _, pr := range prs {
		out = append(out, [2]graph.NodeID{gs.g.Node(pr[0]).ID, gs.g.Node(pr[1]).ID})
	}
	return out, nil
}
