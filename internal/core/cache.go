package core

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
)

// defaultPlanCacheCap is the number of compiled plans an Engine retains by
// default. Plans are small (an AST plus an NFA), so a few hundred entries
// cover realistic multi-query workloads without measurable memory cost.
const defaultPlanCacheCap = 256

// CacheStats is a snapshot of the compiled-plan cache counters — the
// engine's first observability hook.
type CacheStats struct {
	Hits      int64 // lookups answered from the cache
	Misses    int64 // lookups that had to parse + compile
	Evictions int64 // entries dropped by the LRU bound
	Size      int   // entries currently cached
	Capacity  int   // maximum entries retained
}

// planCache is a size-bounded LRU of compiled query plans, keyed by
// normalized query text namespaced by query kind. It is safe for concurrent
// use; a hit refreshes recency, so lookups take the write lock and only
// stats() uses the read lock.
type planCache struct {
	mu        sync.RWMutex
	capacity  int
	ll        *list.List // front = most recently used
	byKey     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// cacheEntry is one LRU element: the key (needed to unmap on eviction) and
// the cached plan, an immutable parsed AST and/or compiled automaton.
type cacheEntry struct {
	key  string
	plan any
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// planKey normalizes a query string (collapsing all whitespace runs) and
// namespaces it by kind, by the graph revision, and by the engine knobs
// that shape what gets compiled: Parallelism feeds the planner's worker
// choice, Shards its kernel-sharding decision, and MaxLen bounds
// enumeration plans, so "a . b*" and "a.b *" share one plan while the same
// query under different knob settings — or a 2RPQ with identical text —
// does not. The revision matters because compiled RPQ products bind the
// graph they were resolved against: after a live store commits a mutation
// and swaps the engine's graph, plans for the old revision must not serve
// the new one (they'd answer from the stale snapshot). Old-revision
// entries age out through the LRU bound.
func planKey(kind string, rev uint64, maxLen, parallelism, shards int, query string) string {
	return fmt.Sprintf("%s\x00%d\x00%d\x00%d\x00%d\x00%s",
		kind, rev, maxLen, parallelism, shards, strings.Join(strings.Fields(query), " "))
}

// get returns the cached plan for key and refreshes its recency.
func (c *planCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).plan, true
	}
	c.misses++
	return nil, false
}

// put inserts or refreshes a plan, evicting the least recently used entry
// when over capacity.
func (c *planCache) put(key string, plan any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).plan = plan
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, plan: plan})
	c.evictOver()
}

// resize changes the capacity, evicting immediately if shrinking; capacity
// ≤ 0 disables caching and drops every entry.
func (c *planCache) resize(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	c.evictOver()
}

// evictOver drops LRU entries until within capacity. Callers hold mu.
func (c *planCache) evictOver() {
	for c.ll.Len() > c.capacity {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *planCache) stats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
	}
}

// cached returns the plan for query in the given kind namespace, keyed by
// the graph state the caller loaded, building and caching it on a miss.
// Cached plans are immutable after construction (parsed ASTs and compiled
// NFAs are never mutated by evaluation), so one plan may serve concurrent
// queries.
func cached[T any](e *Engine, gs *graphState, kind, query string, build func(string) (T, error)) (T, error) {
	if e.plans == nil { // zero-value Engine: cache disabled
		return build(query)
	}
	key := planKey(kind, gs.rev, e.MaxLen, e.Parallelism, e.Shards, query)
	if v, ok := e.plans.get(key); ok {
		return v.(T), nil
	}
	built, err := build(query)
	if err != nil {
		var zero T
		return zero, err
	}
	e.plans.put(key, built)
	return built, nil
}
