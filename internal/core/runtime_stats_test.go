package core

import (
	"strings"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
)

// TestRuntimeStats: every evaluator the engine dispatches to accounts its
// work in the shared kernel counters, and plan choices are recorded.
func TestRuntimeStats(t *testing.T) {
	e := New(gen.Random(30, 120, []string{"a", "b"}, 5))
	if s := e.RuntimeStats(); s != (e.RuntimeStats()) || s.StatesExpanded != 0 {
		t.Fatalf("fresh engine should have zero counters: %+v", s)
	}

	if _, err := e.Pairs("a b*"); err != nil {
		t.Fatal(err)
	}
	s := e.RuntimeStats()
	if s.StatesExpanded == 0 || s.EdgesScanned == 0 || s.FrontierPeak == 0 {
		t.Fatalf("RPQ pairs should move the work counters: %+v", s)
	}
	if s.PlanForward+s.PlanBackward == 0 {
		t.Fatalf("plan choice not recorded: %+v", s)
	}

	if _, err := e.TwoWayPairs("a ~b"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Paths("a*", "v0", "v1", eval.Shortest); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Paths("() [a] ()", "v0", "v1", eval.Shortest); err != nil {
		t.Fatal(err)
	}
	after := e.RuntimeStats()
	if after.StatesExpanded <= s.StatesExpanded {
		t.Fatalf("two-way, lrpq, and dlrpq queries should add states: %+v -> %+v", s, after)
	}
}

// TestExplainPlanLine: Explain surfaces the chosen plan.
func TestExplainPlanLine(t *testing.T) {
	e := New(gen.Random(20, 60, []string{"a", "b"}, 2))
	out, err := e.Explain("a b*")
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"plan:", "dir=", "scan=", "workers="} {
		if !strings.Contains(out, sub) {
			t.Fatalf("Explain should include the plan line (missing %q):\n%s", sub, out)
		}
	}
}
