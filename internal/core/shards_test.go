package core

import (
	"reflect"
	"strings"
	"testing"

	"graphquery/internal/gen"
)

// TestPlanCacheKeyedByShards: the Shards knob feeds the planner (it flips
// a query onto the sharded frontier engine), so it must be part of the
// plan-cache key — flipping it after a query was cached must replan, and
// returning to the old setting must hit the old entry.
func TestPlanCacheKeyedByShards(t *testing.T) {
	e := New(gen.Clique(64, "a"))
	e.Parallelism = 1
	before := planLine(t, e, "a a*")
	if strings.Contains(before, "shards=") {
		t.Fatalf("unsharded plan line mentions shards: %s", before)
	}
	e.Shards = 4
	after := planLine(t, e, "a a*")
	if !strings.Contains(after, "sweep=frontier") || !strings.Contains(after, "shards=4") {
		t.Fatalf("plan not replanned after Shards change (stale cache entry?): %s", after)
	}
	e.Shards = 0
	hits := e.CacheStats().Hits
	if again := planLine(t, e, "a a*"); again != before {
		t.Fatalf("returning to Shards=0 changed the plan: %s vs %s", again, before)
	}
	if got := e.CacheStats().Hits; got != hits+1 {
		t.Fatalf("expected a cache hit for the original knob setting, hits %d -> %d", hits, got)
	}
}

// TestEngineShardsDeterminism: a sharded engine returns byte-identical
// results to an unsharded one on every query kind that sweeps the kernel.
func TestEngineShardsDeterminism(t *testing.T) {
	g := gen.Random(80, 500, []string{"a", "b", "c"}, 21)
	plain := New(g)
	plain.Parallelism = 1
	sharded := New(g)
	sharded.Parallelism = 1
	sharded.Shards = 4
	for _, q := range []string{"a*", "(a | b) c*", "(!{b})*", "a b* a"} {
		want, err := plain.Pairs(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Pairs(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%q: sharded engine diverged", q)
		}
	}
}
