package core

import (
	"reflect"
	"strings"
	"testing"

	"graphquery/internal/gen"
)

func TestPlanCacheHitsAndNormalization(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	if s := e.CacheStats(); s.Hits != 0 || s.Misses != 0 || s.Size != 0 {
		t.Fatalf("fresh engine stats = %+v", s)
	}
	first, err := e.Pairs("Transfer Transfer")
	if err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Misses != 1 || s.Hits != 0 || s.Size != 1 {
		t.Fatalf("after cold query: %+v", s)
	}
	// Same query modulo whitespace must hit the same plan.
	again, err := e.Pairs("  Transfer\tTransfer ")
	if err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Hits != 1 || s.Misses != 1 || s.Size != 1 {
		t.Fatalf("after warm query: %+v", s)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("cached plan changed the answer: %v vs %v", again, first)
	}
	// A different kind with identical text gets its own namespace.
	if _, err := e.TwoWayPairs("Transfer Transfer"); err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Size != 2 || s.Misses != 2 {
		t.Fatalf("kind namespacing broken: %+v", s)
	}
	// Parse errors are not cached.
	if _, err := e.Pairs("((("); err == nil {
		t.Fatal("expected parse error")
	}
	if s := e.CacheStats(); s.Size != 2 {
		t.Fatalf("parse error was cached: %+v", s)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	e := New(gen.BankEdgeLabeled())
	e.SetPlanCacheCapacity(2)
	for _, q := range []string{"Transfer", "owner", "isBlocked"} {
		if _, err := e.Pairs(q); err != nil {
			t.Fatal(err)
		}
	}
	s := e.CacheStats()
	if s.Size != 2 || s.Evictions != 1 || s.Capacity != 2 {
		t.Fatalf("LRU bound not enforced: %+v", s)
	}
	// "Transfer" was least recently used and must have been evicted.
	if _, err := e.Pairs("Transfer"); err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Misses != 4 || s.Evictions != 2 {
		t.Fatalf("expected LRU eviction of oldest entry: %+v", s)
	}
	// Capacity 0 disables caching entirely.
	e.SetPlanCacheCapacity(0)
	if s := e.CacheStats(); s.Size != 0 {
		t.Fatalf("resize(0) kept entries: %+v", s)
	}
	if _, err := e.Pairs("owner"); err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Size != 0 {
		t.Fatalf("disabled cache stored a plan: %+v", s)
	}
}

// planLine extracts the "plan:" line from Explain output (the Explain text
// also carries per-run span timings, so whole-output comparison is not
// stable).
func planLine(t *testing.T, e *Engine, query string) string {
	t.Helper()
	out, err := e.Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "plan:") {
			return strings.TrimSpace(strings.TrimPrefix(line, "plan:"))
		}
	}
	t.Fatalf("no plan line in Explain output:\n%s", out)
	return ""
}

// TestPlanCacheKeyedByKnobs is the regression test for the stale-plan bug:
// the cache used to key on kind × normalized text alone, so flipping an
// engine knob that feeds compilation (Parallelism drives the planner's
// worker choice) kept serving the plan compiled under the old setting.
// Clique(64) with "a a*" clears both planner gates (≥ 32 nodes, frontier
// mass ≥ 2^15), so the planned worker count genuinely differs between the
// two settings and must show up in the Explain plan line.
func TestPlanCacheKeyedByKnobs(t *testing.T) {
	e := New(gen.Clique(64, "a"))
	e.Parallelism = 1
	before := planLine(t, e, "a a*")
	if !strings.Contains(before, "workers=1") {
		t.Fatalf("sequential plan line missing workers=1: %s", before)
	}
	e.Parallelism = 4
	after := planLine(t, e, "a a*")
	if !strings.Contains(after, "workers=4") {
		t.Fatalf("plan not replanned after Parallelism change (stale cache entry?): %s", after)
	}
	// Each knob setting owns a distinct entry; returning to the first must
	// hit its original plan, not rebuild.
	e.Parallelism = 1
	hits := e.CacheStats().Hits
	if again := planLine(t, e, "a a*"); again != before {
		t.Fatalf("returning to Parallelism=1 changed the plan: %s vs %s", again, before)
	}
	if got := e.CacheStats().Hits; got != hits+1 {
		t.Fatalf("expected a cache hit for the original knob setting, hits %d -> %d", hits, got)
	}
	// MaxLen is part of the key too (it bounds enumeration plans).
	e.MaxLen = 8
	if _, err := e.Explain("a a*"); err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Size != 3 {
		t.Fatalf("expected 3 distinct entries across knob settings, got %+v", s)
	}
}

func TestEngineParallelismDeterminism(t *testing.T) {
	g := gen.Random(40, 300, []string{"a", "b", "c"}, 21)
	seq := New(g)
	seq.Parallelism = 1
	par := New(g)
	par.Parallelism = 4
	for _, q := range []string{"a*", "(a | b) c*", "_ _", "nolabel"} {
		want, err := seq.Pairs(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Pairs(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%q: parallel engine diverged", q)
		}
	}
	wantRows, err := seq.Rows("q(x, y) :- a(x, y), b*(y, x)")
	if err != nil {
		t.Fatal(err)
	}
	gotRows, err := par.Rows("q(x, y) :- a(x, y), b*(y, x)")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRows, wantRows) {
		t.Fatalf("Rows diverged between parallel and sequential engines")
	}
}
