package core

import (
	"testing"

	"graphquery/internal/gen"
)

// TestSetGraphInvalidatesPlans swaps the engine's graph and checks the same
// query text re-resolves against the new revision: compiled RPQ products
// bind the graph, so a stale cache hit would silently answer from the old
// snapshot.
func TestSetGraphInvalidatesPlans(t *testing.T) {
	e := New(gen.Cycle(3, "a"))
	pairs, err := e.Pairs("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("cycle-3: %d pairs, want 3", len(pairs))
	}
	if rev := e.GraphRev(); rev != 1 {
		t.Fatalf("initial rev = %d", rev)
	}

	e.SetGraph(gen.Cycle(5, "a"), 2)
	pairs, err = e.Pairs("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("after SetGraph: %d pairs, want 5 (stale plan served?)", len(pairs))
	}
	if rev := e.GraphRev(); rev != 2 {
		t.Fatalf("rev after SetGraph = %d", rev)
	}
}

// TestSetGraphPinnedAcquiresPerQuery checks every query entry point takes
// and releases exactly one pin on the installed state.
func TestSetGraphPinnedAcquiresPerQuery(t *testing.T) {
	e := New(gen.Cycle(3, "a"))
	var acquires, releases int
	e.SetGraphPinned(gen.Cycle(4, "a"), 2, func() func() {
		acquires++
		return func() { releases++ }
	})
	if _, err := e.Pairs("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(Request{Query: "a", From: "v0", To: "v1"}); err != nil {
		t.Fatal(err)
	}
	if acquires != 2 || releases != 2 {
		t.Fatalf("pin acquires/releases = %d/%d, want 2/2", acquires, releases)
	}
}

// TestGraphReturnsCurrent pins Graph() to the swapped-in value.
func TestGraphReturnsCurrent(t *testing.T) {
	g1 := gen.Cycle(3, "a")
	g2 := gen.Cycle(4, "a")
	e := New(g1)
	if e.Graph() != g1 {
		t.Fatal("Graph() != initial graph")
	}
	e.SetGraph(g2, 2)
	if e.Graph() != g2 {
		t.Fatal("Graph() != swapped graph")
	}
}
