// Package spanner implements document spanners (Fagin, Kimelfeld, Reiss,
// Vansummeren, J.ACM 2015), the information-extraction formalism Section
// 6.3 of the paper connects ℓ-RPQs to: regex formulas with capture
// variables evaluated over strings, producing mappings from variables to
// spans. Capture variables "annotate positions" — the same mechanism that
// makes ℓ-RPQ list variables automata-compatible — as opposed to registers,
// which change the complexity landscape (Section 1, Example 2 discussion).
package spanner

import (
	"fmt"
	"sort"
	"strings"

	"graphquery/internal/pg"
)

// Span is a half-open interval [Start, End) of byte positions in the
// document.
type Span struct {
	Start int
	End   int
}

func (s Span) String() string { return fmt.Sprintf("[%d,%d⟩", s.Start, s.End) }

// Match maps capture variables to spans.
type Match map[string]Span

func (m Match) key() string {
	vars := make([]string, 0, len(m))
	for v := range m {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&b, "%s=%d-%d;", v, m[v].Start, m[v].End)
	}
	return b.String()
}

// Expr is a regex formula with capture variables.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Char matches one literal byte.
type Char struct{ C byte }

// Any matches any single byte (".").
type Any struct{}

// ClassFn matches a single byte satisfying a predicate; Name is used for
// rendering (e.g. "\\w").
type ClassFn struct {
	Name string
	Fn   func(byte) bool
}

// EpsilonE matches the empty string.
type EpsilonE struct{}

// ConcatE is e₁·…·eₙ.
type ConcatE struct{ Parts []Expr }

// UnionE is e₁+…+eₙ.
type UnionE struct{ Alts []Expr }

// StarE is e*.
type StarE struct{ Sub Expr }

// Capture is x{e}: matches e and binds variable X to the matched span.
type Capture struct {
	X   string
	Sub Expr
}

func (Char) isExpr()     {}
func (Any) isExpr()      {}
func (ClassFn) isExpr()  {}
func (EpsilonE) isExpr() {}
func (ConcatE) isExpr()  {}
func (UnionE) isExpr()   {}
func (StarE) isExpr()    {}
func (Capture) isExpr()  {}

func (e Char) String() string    { return string(e.C) }
func (Any) String() string       { return "." }
func (e ClassFn) String() string { return e.Name }
func (EpsilonE) String() string  { return "ε" }
func (e ConcatE) String() string {
	parts := make([]string, len(e.Parts))
	for i, p := range e.Parts {
		parts[i] = p.String()
	}
	return strings.Join(parts, "")
}
func (e UnionE) String() string {
	parts := make([]string, len(e.Alts))
	for i, a := range e.Alts {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, "|") + ")"
}
func (e StarE) String() string   { return "(" + e.Sub.String() + ")*" }
func (e Capture) String() string { return e.X + "{" + e.Sub.String() + "}" }

// Constructors.

// Lit returns the concatenation of literal bytes of s.
func Lit(s string) Expr {
	if len(s) == 0 {
		return EpsilonE{}
	}
	parts := make([]Expr, len(s))
	for i := 0; i < len(s); i++ {
		parts[i] = Char{C: s[i]}
	}
	return Seq(parts...)
}

// Dot returns ".".
func Dot() Expr { return Any{} }

// Class returns a named character class.
func Class(name string, fn func(byte) bool) Expr { return ClassFn{Name: name, Fn: fn} }

// Word matches a single word byte [A-Za-z0-9_].
func Word() Expr {
	return Class("\\w", func(c byte) bool {
		return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
	})
}

// Seq returns the concatenation.
func Seq(parts ...Expr) Expr {
	switch len(parts) {
	case 0:
		return EpsilonE{}
	case 1:
		return parts[0]
	default:
		return ConcatE{Parts: parts}
	}
}

// Alt returns the disjunction.
func Alt(alts ...Expr) Expr {
	switch len(alts) {
	case 0:
		panic("spanner: Alt needs at least one alternative")
	case 1:
		return alts[0]
	default:
		return UnionE{Alts: alts}
	}
}

// Star returns e*.
func Star(e Expr) Expr { return StarE{Sub: e} }

// Plus returns e⁺.
func Plus(e Expr) Expr { return Seq(e, StarE{Sub: e}) }

// Cap returns x{e}.
func Cap(x string, e Expr) Expr { return Capture{X: x, Sub: e} }

// Vars returns the sorted capture variables of e.
func Vars(e Expr) []string {
	set := map[string]struct{}{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case Capture:
			set[n.X] = struct{}{}
			walk(n.Sub)
		case ConcatE:
			for _, p := range n.Parts {
				walk(p)
			}
		case UnionE:
			for _, a := range n.Alts {
				walk(a)
			}
		case StarE:
			walk(n.Sub)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// partial is an intermediate result: the end position reached and the
// bindings accumulated so far.
type partial struct {
	end int
	m   Match
}

// Evaluate computes the spanner's result on doc: all mappings produced by
// runs of e over the *entire* document (the standard Boolean-combined
// semantics; embed e in .*e.* style expressions for substring extraction —
// see Extract). Results are deduplicated.
func Evaluate(doc string, e Expr) []Match {
	out, _ := EvaluateMeter(doc, e, nil)
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].key() < ms[j].key() })
}

// Extract is the common extraction idiom: evaluates .* e .* over the
// document and returns all capture mappings.
func Extract(doc string, e Expr) []Match {
	pad := Star(Dot())
	return Evaluate(doc, Seq(pad, e, pad))
}

// evalMeter is the capture-propagating recursion, metered: every partial
// considered ticks the shared Ticker (amortized against the states budget
// every pg.CheckInterval), so cancellation and budgets land inside the
// recursion, not just between top-level calls.
func evalMeter(doc string, e Expr, pos int, t *pg.Ticker) ([]partial, error) {
	if err := t.Step(); err != nil {
		return nil, err
	}
	switch n := e.(type) {
	case EpsilonE:
		return []partial{{end: pos, m: Match{}}}, nil
	case Char:
		if pos < len(doc) && doc[pos] == n.C {
			return []partial{{end: pos + 1, m: Match{}}}, nil
		}
		return nil, nil
	case Any:
		if pos < len(doc) {
			return []partial{{end: pos + 1, m: Match{}}}, nil
		}
		return nil, nil
	case ClassFn:
		if pos < len(doc) && n.Fn(doc[pos]) {
			return []partial{{end: pos + 1, m: Match{}}}, nil
		}
		return nil, nil
	case ConcatE:
		cur := []partial{{end: pos, m: Match{}}}
		for _, part := range n.Parts {
			var next []partial
			for _, c := range cur {
				ds, err := evalMeter(doc, part, c.end, t)
				if err != nil {
					return nil, err
				}
				for _, d := range ds {
					if err := t.Step(); err != nil {
						return nil, err
					}
					merged, ok := mergeMatches(c.m, d.m)
					if !ok {
						continue
					}
					next = append(next, partial{end: d.end, m: merged})
				}
			}
			cur = dedupPartials(next)
			if len(cur) == 0 {
				return nil, nil
			}
		}
		return cur, nil
	case UnionE:
		var out []partial
		for _, a := range n.Alts {
			ds, err := evalMeter(doc, a, pos, t)
			if err != nil {
				return nil, err
			}
			out = append(out, ds...)
		}
		return dedupPartials(out), nil
	case StarE:
		out := []partial{{end: pos, m: Match{}}}
		frontier := out
		seen := map[string]struct{}{outKey(out[0]): {}}
		for len(frontier) > 0 {
			var next []partial
			for _, c := range frontier {
				ds, err := evalMeter(doc, n.Sub, c.end, t)
				if err != nil {
					return nil, err
				}
				for _, d := range ds {
					if err := t.Step(); err != nil {
						return nil, err
					}
					if d.end == c.end {
						continue // ε-iterations do not add new results
					}
					merged, ok := mergeMatches(c.m, d.m)
					if !ok {
						continue
					}
					p := partial{end: d.end, m: merged}
					k := outKey(p)
					if _, dup := seen[k]; dup {
						continue
					}
					seen[k] = struct{}{}
					next = append(next, p)
				}
			}
			out = append(out, next...)
			frontier = next
		}
		return out, nil
	case Capture:
		ds, err := evalMeter(doc, n.Sub, pos, t)
		if err != nil {
			return nil, err
		}
		var out []partial
		for _, d := range ds {
			if err := t.Step(); err != nil {
				return nil, err
			}
			mm := Match{}
			for v, s := range d.m {
				mm[v] = s
			}
			if _, dup := mm[n.X]; dup {
				continue // a variable may be bound once per run
			}
			mm[n.X] = Span{Start: pos, End: d.end}
			out = append(out, partial{end: d.end, m: mm})
		}
		return out, nil
	default:
		panic(fmt.Sprintf("spanner: unknown expression %T", e))
	}
}

func outKey(p partial) string { return fmt.Sprintf("%d|%s", p.end, p.m.key()) }

func dedupPartials(ps []partial) []partial {
	seen := map[string]struct{}{}
	out := ps[:0]
	for _, p := range ps {
		k := outKey(p)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, p)
	}
	return out
}

// mergeMatches refuses conflicting rebinding of a variable (the functional
// spanner discipline: each variable captures exactly one span per run).
func mergeMatches(a, b Match) (Match, bool) {
	if len(a) == 0 {
		return b, true
	}
	if len(b) == 0 {
		return a, true
	}
	out := Match{}
	for v, s := range a {
		out[v] = s
	}
	for v, s := range b {
		if prev, dup := out[v]; dup && prev != s {
			return nil, false
		}
		out[v] = s
	}
	return out, true
}
