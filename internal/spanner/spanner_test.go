package spanner

import (
	"strings"
	"testing"
)

func TestEvaluateWholeDocument(t *testing.T) {
	// x{a*} b over "aab": x = [0,2).
	e := Seq(Cap("x", Star(Lit("a"))), Lit("b"))
	ms := Evaluate("aab", e)
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	if ms[0]["x"] != (Span{0, 2}) {
		t.Errorf("x = %v, want [0,2)", ms[0]["x"])
	}
	// Whole-document: no match on a longer doc.
	if got := Evaluate("aabz", e); len(got) != 0 {
		t.Errorf("trailing content should prevent whole-doc match: %d", len(got))
	}
}

func TestExtractAllOccurrences(t *testing.T) {
	// Extract every word followed by a comma.
	doc := "alice,bob;carol,dan"
	e := Seq(Cap("name", Plus(Word())), Lit(","))
	ms := Extract(doc, e)
	// Possible captures: all word-suffixes ending right before a comma:
	// "alice", "lice", …, plus "carol", "arol", ….
	got := map[string]bool{}
	for _, m := range ms {
		s := m["name"]
		got[doc[s.Start:s.End]] = true
	}
	if !got["alice"] || !got["carol"] {
		t.Errorf("expected alice and carol among %v", got)
	}
	if got["bob"] || got["dan"] {
		t.Error("bob and dan are not followed by commas")
	}
}

func TestAmbiguousCapturesEnumerated(t *testing.T) {
	// x{a*} a* over "aaa": x may be [0,0), [0,1), [0,2), [0,3).
	e := Seq(Cap("x", Star(Lit("a"))), Star(Lit("a")))
	ms := Evaluate("aaa", e)
	if len(ms) != 4 {
		t.Fatalf("matches = %d, want 4", len(ms))
	}
	for i, m := range ms {
		if m["x"].Start != 0 || m["x"].End != i {
			t.Errorf("match %d: x = %v", i, m["x"])
		}
	}
}

func TestUnionAndClass(t *testing.T) {
	e := Alt(Cap("x", Lit("cat")), Cap("x", Lit("dog")))
	if ms := Evaluate("dog", e); len(ms) != 1 || ms[0]["x"] != (Span{0, 3}) {
		t.Errorf("union capture failed: %v", ms)
	}
	w := Word()
	if !w.(ClassFn).Fn('k') || w.(ClassFn).Fn(' ') {
		t.Error("Word class predicate wrong")
	}
}

func TestCaptureConflictsPruned(t *testing.T) {
	// x{a} x{a}: the same variable bound twice in one run is not a valid
	// functional spanner run.
	e := Seq(Cap("x", Lit("a")), Cap("x", Lit("a")))
	if ms := Evaluate("aa", e); len(ms) != 0 {
		t.Errorf("double binding should produce no runs, got %d", len(ms))
	}
	// But re-binding to the same span via union dedups fine.
	e2 := Alt(Cap("x", Lit("a")), Cap("x", Lit("a")))
	if ms := Evaluate("a", e2); len(ms) != 1 {
		t.Errorf("identical alternatives should dedup, got %d", len(ms))
	}
}

func TestStarTermination(t *testing.T) {
	// (ε|a)* must terminate despite the nullable alternative.
	e := Star(Alt(EpsilonE{}, Lit("a")))
	ms := Evaluate("aaaa", e)
	if len(ms) != 1 {
		t.Errorf("matches = %d, want 1", len(ms))
	}
}

// TestBruteForceAgreement cross-checks Evaluate against a naive span
// enumeration for a capture-one-var expression.
func TestBruteForceAgreement(t *testing.T) {
	doc := "abcabc"
	// .* x{ 'a' .* } .* with x capturing any substring starting with 'a'.
	e := Cap("x", Seq(Lit("a"), Star(Dot())))
	ms := Extract(doc, e)
	got := map[Span]bool{}
	for _, m := range ms {
		got[m["x"]] = true
	}
	want := map[Span]bool{}
	for i := 0; i < len(doc); i++ {
		if doc[i] != 'a' {
			continue
		}
		for j := i + 1; j <= len(doc); j++ {
			want[Span{i, j}] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d spans, want %d", len(got), len(want))
	}
	for s := range want {
		if !got[s] {
			t.Errorf("missing span %v", s)
		}
	}
}

func TestVarsAndString(t *testing.T) {
	e := Seq(Cap("b", Lit("x")), Alt(Cap("a", Dot()), EpsilonE{}))
	vars := Vars(e)
	if len(vars) != 2 || vars[0] != "a" || vars[1] != "b" {
		t.Errorf("Vars = %v", vars)
	}
	if s := e.String(); !strings.Contains(s, "b{x}") {
		t.Errorf("String = %q", s)
	}
}

func TestEmptyDocument(t *testing.T) {
	if ms := Evaluate("", Star(Lit("a"))); len(ms) != 1 {
		t.Errorf("ε-match on empty doc: %d", len(ms))
	}
	if ms := Evaluate("", Lit("a")); len(ms) != 0 {
		t.Errorf("a on empty doc: %d", len(ms))
	}
}
