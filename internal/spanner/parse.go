package spanner

import "fmt"

// Parse reads the textual form of a regex formula — the same syntax String
// renders:
//
//	a b 0 _            literal bytes (identifier characters and most others)
//	.                  any single byte
//	\w                 word byte [A-Za-z0-9_]
//	(e₁|…|eₙ)          grouping / union
//	e*  e+             repetition (postfix)
//	x{e}               capture: bind variable x to the span matched by e
//
// Concatenation is juxtaposition. An identifier immediately followed by
// '{' is a capture variable; otherwise identifier characters are literal
// bytes.
func Parse(input string) (Expr, error) {
	p := &spanParser{src: input}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	return e, nil
}

// MustParse is Parse for tests and literals; it panics on error.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type spanParser struct {
	src string
	pos int
}

func (p *spanParser) errf(format string, args ...any) error {
	return fmt.Errorf("spanner: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *spanParser) parseUnion() (Expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []Expr{first}
	for p.pos < len(p.src) && p.src[p.pos] == '|' {
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	return Alt(alts...), nil
}

func (p *spanParser) parseConcat() (Expr, error) {
	var parts []Expr
	for p.pos < len(p.src) && p.src[p.pos] != '|' && p.src[p.pos] != ')' && p.src[p.pos] != '}' {
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	return Seq(parts...), nil
}

func (p *spanParser) parseFactor() (Expr, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '*':
			p.pos++
			atom = Star(atom)
		case '+':
			p.pos++
			atom = Plus(atom)
		default:
			return atom, nil
		}
	}
	return atom, nil
}

func (p *spanParser) parseAtom() (Expr, error) {
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		return e, nil
	case c == '.':
		p.pos++
		return Dot(), nil
	case c == '\\':
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == 'w' {
			p.pos += 2
			return Word(), nil
		}
		if p.pos+1 < len(p.src) {
			// Escaped literal: \* \. \( etc.
			ch := p.src[p.pos+1]
			p.pos += 2
			return Char{C: ch}, nil
		}
		return nil, p.errf("dangling '\\'")
	case isIdentByte(c):
		// Maximal identifier run followed by '{' is a capture variable;
		// otherwise a single literal byte.
		end := p.pos
		for end < len(p.src) && isIdentByte(p.src[end]) {
			end++
		}
		if end < len(p.src) && p.src[end] == '{' {
			name := p.src[p.pos:end]
			p.pos = end + 1
			sub, err := p.parseUnion()
			if err != nil {
				return nil, err
			}
			if p.pos >= len(p.src) || p.src[p.pos] != '}' {
				return nil, p.errf("expected '}' closing capture %s", name)
			}
			p.pos++
			return Cap(name, sub), nil
		}
		p.pos++
		return Char{C: c}, nil
	case c == '*' || c == '+' || c == '{':
		return nil, p.errf("unexpected %q", string(c))
	default:
		// Any other byte (space, punctuation) is a literal.
		p.pos++
		return Char{C: c}, nil
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
