package spanner

import (
	"context"
	"fmt"

	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
)

// This file lowers spanner evaluation onto the product-graph kernel. A
// document is a line graph — one node per byte position 0..len(doc), one
// edge per byte labeled with that byte — and the capture-erased regex
// formula is an RPQ over it (captures only annotate positions, so erasing
// them preserves the underlying language exactly: Section 6.3's automata
// compatibility). The kernel answers the Boolean feasibility question
// ("does any run span the whole document?") with its metered frontier
// sweep; only when feasible does the capture-propagating recursion run,
// itself metered through the same Ticker discipline.

// EvaluateCtx is Evaluate under a context and budget. The kernel runs the
// erased-RPQ feasibility sweep first (charged to the states budget), so
// infeasible documents are rejected in O(|doc|·|A|) without touching the
// capture recursion; each emitted mapping is charged to the rows budget.
// Errors follow the standard taxonomy and return no partial results.
func EvaluateCtx(ctx context.Context, doc string, e Expr, b pg.Budget) ([]Match, error) {
	return EvaluateMeter(doc, e, pg.NewMeter(ctx, b))
}

// EvaluateMeter is Evaluate with an explicit meter (may be nil).
func EvaluateMeter(doc string, e Expr, m *pg.Meter) ([]Match, error) {
	feasible, err := kernelFeasible(doc, e, m)
	if err != nil {
		return nil, err
	}
	if !feasible {
		return nil, nil
	}
	tick := pg.NewTicker(m, nil)
	parts, err := evalMeter(doc, e, 0, &tick)
	if err != nil {
		return nil, err
	}
	seen := map[string]struct{}{}
	var out []Match
	for _, p := range parts {
		if p.end != len(doc) {
			continue
		}
		k := p.m.key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if err := m.AddRows(1); err != nil {
			return nil, err
		}
		out = append(out, p.m)
	}
	sortMatches(out)
	if err := tick.Flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// kernelFeasible asks the product-graph kernel whether any run of the
// capture-erased formula spans the entire document: it compiles Erase(e)
// over the document line graph and sweeps from position 0, checking whether
// position len(doc) is reachable in an accepting state.
func kernelFeasible(doc string, e Expr, m *pg.Meter) (bool, error) {
	g := LineGraph(doc)
	nfa := rpq.Compile(Erase(doc, e))
	kern := pg.NewKernel(g, pg.FromNFA(g, nfa), nil)
	sc := kern.GetScratch()
	defer kern.PutScratch(sc)
	reached, err := kern.Reachable(0, sc, m)
	if err != nil {
		return false, err
	}
	for _, v := range reached {
		if v == len(doc) {
			return true, nil
		}
	}
	return false, nil
}

// LineGraph renders doc as a path graph: node pᵢ per position i ∈
// [0, len(doc)], edge bᵢ: pᵢ → pᵢ₊₁ labeled with the byte doc[i]. Node
// indexes equal positions (builder insertion order).
func LineGraph(doc string) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i <= len(doc); i++ {
		b.AddNode(graph.NodeID(fmt.Sprintf("p%d", i)), "", nil)
	}
	for i := 0; i < len(doc); i++ {
		b.AddEdge(graph.EdgeID(fmt.Sprintf("b%d", i)), string(doc[i]),
			graph.NodeID(fmt.Sprintf("p%d", i)), graph.NodeID(fmt.Sprintf("p%d", i+1)), nil)
	}
	return b.MustBuild()
}

// Erase lowers the regex formula to an RPQ over single-byte edge labels by
// dropping captures. Character classes expand to the disjunction of the
// distinct document bytes they accept — sound because the line graph of
// doc carries no other labels.
func Erase(doc string, e Expr) rpq.Expr {
	alphabet := distinctBytes(doc)
	var lower func(Expr) rpq.Expr
	lower = func(e Expr) rpq.Expr {
		switch n := e.(type) {
		case EpsilonE:
			return rpq.Eps()
		case Char:
			return rpq.L(string(n.C))
		case Any:
			return byteDisj(alphabet, func(byte) bool { return true })
		case ClassFn:
			return byteDisj(alphabet, n.Fn)
		case ConcatE:
			parts := make([]rpq.Expr, len(n.Parts))
			for i, p := range n.Parts {
				parts[i] = lower(p)
			}
			return rpq.Seq(parts...)
		case UnionE:
			alts := make([]rpq.Expr, len(n.Alts))
			for i, a := range n.Alts {
				alts[i] = lower(a)
			}
			return rpq.Alt(alts...)
		case StarE:
			return rpq.Kleene(lower(n.Sub))
		case Capture:
			return lower(n.Sub)
		default:
			panic(fmt.Sprintf("spanner: unknown expression %T", e))
		}
	}
	return lower(e)
}

func distinctBytes(doc string) []byte {
	var present [256]bool
	for i := 0; i < len(doc); i++ {
		present[doc[i]] = true
	}
	var out []byte
	for c := 0; c < 256; c++ {
		if present[c] {
			out = append(out, byte(c))
		}
	}
	return out
}

// byteDisj is the label disjunction of the alphabet bytes accepted by fn.
// An empty disjunction lowers to a label no document edge carries, which
// the machine resolver drops — the empty language.
func byteDisj(alphabet []byte, fn func(byte) bool) rpq.Expr {
	var alts []rpq.Expr
	for _, c := range alphabet {
		if fn(c) {
			alts = append(alts, rpq.L(string(c)))
		}
	}
	if len(alts) == 0 {
		return rpq.L("∅")
	}
	return rpq.Alt(alts...)
}
