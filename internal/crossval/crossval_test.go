// Package crossval_test cross-validates the independent evaluators against
// each other: the same query expressed in two formalisms must agree. These
// are the "languages meet in the middle" checks for Figure 1 of the paper.
package crossval_test

import (
	"fmt"
	"math/rand"
	"testing"

	"graphquery/internal/coregql"
	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/gql"
	"graphquery/internal/graph"
	"graphquery/internal/lrpq"
	"graphquery/internal/rpq"
)

// TestDlRPQAgreesWithLRPQ: a dl-RPQ using only label atoms (no tests)
// denotes the same node-to-node paths as the corresponding ℓ-RPQ.
func TestDlRPQAgreesWithLRPQ(t *testing.T) {
	type pair struct {
		dl string
		l  string
	}
	cases := []pair{
		{"() {[a]()}*", "a*"},
		{"() [a] () [b] ()", "a b"},
		{"() {[a]() | [b]()}+", "(a | b)+"},
		{"() {[a^z]()}{2}", "(a^z){2}"},
	}
	for trial := 0; trial < 8; trial++ {
		g := gen.Random(4, 7, []string{"a", "b"}, int64(trial)*19+2)
		for _, tc := range cases {
			de := dlrpq.MustParse(tc.dl)
			le := lrpq.MustParse(tc.l)
			for u := 0; u < g.NumNodes(); u++ {
				for v := 0; v < g.NumNodes(); v++ {
					dres, err := dlrpq.EvalBetween(g, de, u, v, eval.All, dlrpq.Options{MaxLen: 3})
					if err != nil {
						t.Fatal(err)
					}
					lres, err := lrpq.EvalBetween(g, le, u, v, eval.All, lrpq.Options{MaxLen: 3})
					if err != nil {
						t.Fatal(err)
					}
					dk := map[string]bool{}
					for _, pb := range dres {
						dk[pb.Key()] = true
					}
					lk := map[string]bool{}
					for _, pb := range lres {
						lk[pb.Key()] = true
					}
					if len(dk) != len(lk) {
						t.Fatalf("trial %d %q vs %q at (%d,%d): %d vs %d results",
							trial, tc.dl, tc.l, u, v, len(dk), len(lk))
					}
					for k := range dk {
						if !lk[k] {
							t.Fatalf("trial %d: dl result %s missing from ℓ-RPQ", trial, k)
						}
					}
				}
			}
		}
	}
}

// TestCoreGQLAgreesWithEval: the CoreGQL pattern (x)(()-->())*(y) produces
// exactly the bounded walk set of the RPQ _*.
func TestCoreGQLAgreesWithEval(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g := gen.Random(4, 6, []string{"a", "b"}, int64(trial)*31+5)
		pat := coregql.Concat(coregql.Node("x"),
			coregql.Star(coregql.Concat(coregql.AnonNode(), coregql.AnonEdge(), coregql.AnonNode())),
			coregql.Node("y"))
		ms, err := coregql.EvalPattern(g, pat, coregql.Options{MaxLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		gotKeys := map[string]bool{}
		for _, m := range ms {
			gotKeys[m.Path.Key()] = true
		}
		wantKeys := map[string]bool{}
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				paths, err := eval.Paths(g, rpq.MustParse("_*"), u, v, eval.All, eval.Options{MaxLen: 3})
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range paths {
					wantKeys[p.Key()] = true
				}
			}
		}
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("trial %d: coregql %d paths, eval %d", trial, len(gotKeys), len(wantKeys))
		}
		for k := range wantKeys {
			if !gotKeys[k] {
				t.Fatalf("trial %d: eval path missing from coregql", trial)
			}
		}
	}
}

// TestGQLAgreesWithCoreGQLWithoutVariables: with no variables in play, the
// GQL model and CoreGQL have identical path sets (the divergence is all
// about variables under iteration).
func TestGQLAgreesWithCoreGQLWithoutVariables(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g := gen.Random(4, 6, []string{"a", "b"}, int64(trial)*47+9)
		gqlPat := gql.Concat(gql.Node("x"),
			gql.Star(gql.Concat(gql.AnonNode(), gql.AnonEdgeL("a"), gql.AnonNode())),
			gql.Node("y"))
		corePat := coregql.Concat(coregql.Node("x"),
			coregql.Star(coregql.Concat(coregql.AnonNode(), coregql.AnonEdge(), coregql.AnonNode())),
			coregql.Node("y"))
		// CoreGQL has no edge-label atoms; restrict the graph to a-edges
		// for the comparison instead.
		ga := onlyLabel(g, "a")
		gqlPaths, err := gql.MatchPaths(ga, gqlPat, gql.Options{MaxLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		coreMs, err := coregql.EvalPattern(ga, corePat, coregql.Options{MaxLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		coreKeys := map[string]bool{}
		for _, m := range coreMs {
			coreKeys[m.Path.Key()] = true
		}
		if len(gqlPaths) != len(coreKeys) {
			t.Fatalf("trial %d: gql %d vs coregql %d", trial, len(gqlPaths), len(coreKeys))
		}
		for _, p := range gqlPaths {
			if !coreKeys[p.Key()] {
				t.Fatalf("trial %d: gql path missing from coregql", trial)
			}
		}
	}
}

// TestLRPQIterationLawRandomized: ⟦R{2}⟧ = ⟦R·R⟧ on random graphs and
// random variable-annotated expressions (the automata-compatibility law).
func TestLRPQIterationLawRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	units := []string{"a^z", "a^z b", "(a^z | b^w)", "a b^z"}
	for trial := 0; trial < 12; trial++ {
		g := gen.Random(4, 8, []string{"a", "b"}, int64(trial)*13+1)
		u := units[rng.Intn(len(units))]
		twice := lrpq.MustParse(fmt.Sprintf("(%s){2}", u))
		concat := lrpq.MustParse(fmt.Sprintf("(%s) (%s)", u, u))
		a, err := lrpq.Eval(g, twice, lrpq.Options{MaxLen: 4})
		if err != nil {
			t.Fatal(err)
		}
		b, err := lrpq.Eval(g, concat, lrpq.Options{MaxLen: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d (%s): %d vs %d results", trial, u, len(a), len(b))
		}
		for i := range a {
			if a[i].Key() != b[i].Key() {
				t.Fatalf("trial %d (%s): result %d differs", trial, u, i)
			}
		}
	}
}

// onlyLabel returns a copy of g keeping only edges with the given label.
func onlyLabel(g *graph.Graph, label string) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(i)
		b.AddNode(n.ID, n.Label, n.Props)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.Label == label {
			b.AddEdge(e.ID, e.Label, g.Node(e.Src).ID, g.Node(e.Tgt).ID, e.Props)
		}
	}
	return b.MustBuild()
}
