package crossval_test

import (
	"reflect"
	"sort"
	"testing"

	"graphquery/internal/automata"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
	"graphquery/internal/twoway"
)

// This file differentially tests the unified product-graph runtime
// (internal/pg) against slow reference oracles: straightforward map-based
// searches that scan every edge and interpret guards symbolically, sharing
// no code with the kernel. Every plan the planner can choose — forward,
// backward, indexed, dense, sequential, parallel — must reproduce the
// oracle's answer byte-for-byte on random graphs.

type prodState struct{ n, q int }

// oracleRPQPairs is the reference semantics of ⟦R⟧_G: per-source BFS over
// (node, state) pairs, scanning the full edge list at every expansion.
func oracleRPQPairs(g *graph.Graph, a *automata.NFA) [][2]int {
	var out [][2]int
	for u := 0; u < g.NumNodes(); u++ {
		acc := map[int]bool{}
		seen := map[prodState]bool{{u, a.Start}: true}
		frontier := []prodState{{u, a.Start}}
		for len(frontier) > 0 {
			cur := frontier[0]
			frontier = frontier[1:]
			if a.Accept[cur.q] {
				acc[cur.n] = true
			}
			for ei := 0; ei < g.NumEdges(); ei++ {
				e := g.Edge(ei)
				if e.Src != cur.n {
					continue
				}
				for _, t := range a.Trans[cur.q] {
					if !t.Guard.Matches(e.Label) {
						continue
					}
					next := prodState{e.Tgt, t.To}
					if !seen[next] {
						seen[next] = true
						frontier = append(frontier, next)
					}
				}
			}
		}
		vs := make([]int, 0, len(acc))
		for v := range acc {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		for _, v := range vs {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// oracleTwowayPairs is the same reference search over a two-way automaton:
// Back transitions scan edges target→source.
func oracleTwowayPairs(g *graph.Graph, a *twoway.TNFA) [][2]int {
	var out [][2]int
	for u := 0; u < g.NumNodes(); u++ {
		acc := map[int]bool{}
		seen := map[prodState]bool{{u, a.Start}: true}
		frontier := []prodState{{u, a.Start}}
		for len(frontier) > 0 {
			cur := frontier[0]
			frontier = frontier[1:]
			if a.Accept[cur.q] {
				acc[cur.n] = true
			}
			for ei := 0; ei < g.NumEdges(); ei++ {
				e := g.Edge(ei)
				for _, t := range a.Trans[cur.q] {
					if !t.Guard.Matches(e.Label) {
						continue
					}
					var next prodState
					if t.Back {
						if e.Tgt != cur.n {
							continue
						}
						next = prodState{e.Src, t.To}
					} else {
						if e.Src != cur.n {
							continue
						}
						next = prodState{e.Tgt, t.To}
					}
					if !seen[next] {
						seen[next] = true
						frontier = append(frontier, next)
					}
				}
			}
		}
		vs := make([]int, 0, len(acc))
		for v := range acc {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		for _, v := range vs {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// TestKernelPlansAgreeWithRPQOracle runs a suite of RPQs — positive,
// alternating, and co-finite (negated) guards — through the oracle and
// through every kernel plan on random graphs.
func TestKernelPlansAgreeWithRPQOracle(t *testing.T) {
	queries := []string{
		"a",
		"a b*",
		"(a | b)* c",
		"!{a}",
		"(!{b})* a",
		"a* b* c*",
		"(a b)+ | c",
	}
	plans := []struct {
		name string
		plan pg.Plan
	}{
		{"forward-indexed", pg.Plan{}},
		{"forward-dense", pg.Plan{Dense: true}},
		{"backward-indexed", pg.Plan{Backward: true}},
		{"backward-dense", pg.Plan{Backward: true, Dense: true}},
		{"forward-parallel", pg.Plan{Workers: 4}},
		{"backward-parallel", pg.Plan{Backward: true, Workers: 4}},
		// The frontier engine's plan shapes: bitset/direction-optimizing
		// (shards ≤ 1) and sharded ×{2, 8}, over both scan strategies and
		// both directions.
		{"frontier", pg.Plan{Frontier: true}},
		{"frontier-dense", pg.Plan{Frontier: true, Dense: true}},
		{"frontier-backward", pg.Plan{Frontier: true, Backward: true}},
		{"sharded-2", pg.Plan{Frontier: true, Shards: 2}},
		{"sharded-8", pg.Plan{Frontier: true, Shards: 8}},
		{"sharded-2-dense", pg.Plan{Frontier: true, Shards: 2, Dense: true}},
		{"sharded-8-backward", pg.Plan{Frontier: true, Shards: 8, Backward: true}},
	}
	for trial := 0; trial < 4; trial++ {
		g := gen.Random(24, 90, []string{"a", "b", "c"}, int64(trial)*31+5)
		for _, q := range queries {
			expr, err := rpq.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			nfa := rpq.Compile(expr)
			want := oracleRPQPairs(g, nfa)
			p := eval.NewProduct(g, nfa)
			for _, pc := range plans {
				got := eval.PairsProduct(p, eval.Options{Plan: pc.plan})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d query %q plan %s: kernel %v != oracle %v",
						trial, q, pc.name, got, want)
				}
			}
		}
	}
}

// TestKernelAgreesWithTwowayOracle runs 2RPQs with inverse atoms through
// the oracle and through the kernel's Back-flagged machine, sequentially
// and in parallel.
func TestKernelAgreesWithTwowayOracle(t *testing.T) {
	queries := []string{
		"~a",
		"a ~b",
		"(a | ~b)*",
		"~a ~b",
		"(~a)* b",
	}
	for trial := 0; trial < 4; trial++ {
		g := gen.Random(20, 70, []string{"a", "b"}, int64(trial)*17+3)
		for _, q := range queries {
			expr, err := twoway.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			want := oracleTwowayPairs(g, twoway.Compile(expr))
			for _, par := range []int{1, 4} {
				got, err := twoway.PairsMeterOpt(g, expr, nil, twoway.Options{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d query %q parallelism %d: kernel %v != oracle %v",
						trial, q, par, got, want)
				}
			}
		}
	}
}
