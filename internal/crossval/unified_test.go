// Byte-identity of the unified tiers: every upper-language evaluator that
// was refactored onto the product-graph kernel must return exactly what its
// pre-refactor evaluator returned — same answers, same order — on random
// graphs, under the sequential, parallel, and sharded-2 plans. The kernel
// is an execution substrate, never a semantics change.
package crossval_test

import (
	"context"
	"reflect"
	"testing"

	"graphquery/internal/bag"
	"graphquery/internal/coregql"
	"graphquery/internal/cypherfrag"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/gql"
	"graphquery/internal/pg"
	"graphquery/internal/pmr"
	"graphquery/internal/relalg"
	"graphquery/internal/rpq"
	"graphquery/internal/spanner"
)

// unifiedPlans are the three kernel configurations the acceptance bar
// names: the sequential sweep, the parallel per-source fan-out, and the
// sharded direction-optimizing frontier engine with two shards.
var unifiedPlans = []struct {
	name string
	opts eval.Options
}{
	{"sequential", eval.Options{Parallelism: 1}},
	{"parallel", eval.Options{Parallelism: 4}},
	{"sharded-2", eval.Options{Parallelism: 1, Plan: pg.Plan{Frontier: true, Shards: 2, Workers: 1}}},
}

// TestGQLKernelMatchesReference: for regular GQL patterns the kernel path
// (skeleton RPQ on the product graph, length-bounded by NFA unrolling)
// projects exactly the endpoint pairs of the reference pattern evaluator.
func TestGQLKernelMatchesReference(t *testing.T) {
	pats := []struct {
		name   string
		p      gql.Pattern
		maxLen int
	}{
		{"edge", gql.Concat(gql.Node("x"), gql.AnonEdgeL("a"), gql.Node("y")), 0},
		{"star", gql.Concat(gql.Node("x"),
			gql.Star(gql.Concat(gql.AnonNode(), gql.AnonEdgeL("a"), gql.AnonNode())),
			gql.Node("y")), 3},
		{"union", gql.Union(
			gql.Concat(gql.AnonNode(), gql.AnonEdgeL("a"), gql.AnonNode()),
			gql.Concat(gql.AnonNode(), gql.AnonEdgeL("b"), gql.AnonNode(), gql.AnonEdgeL("c"), gql.AnonNode())), 0},
		{"repeat", gql.Concat(gql.Node("x"),
			gql.Repeat(gql.Concat(gql.AnonNode(), gql.AnonEdgeL("b"), gql.AnonNode()), 1, 2),
			gql.Node("y")), 0},
	}
	for trial := 0; trial < 4; trial++ {
		g := gen.Random(30, 90, []string{"a", "b", "c"}, int64(trial)*17+3)
		for _, tc := range pats {
			if !gql.Regular(tc.p) {
				t.Fatalf("pattern %s must be regular for the kernel path", tc.name)
			}
			ms, err := gql.EvalPattern(g, tc.p, gql.Options{MaxLen: tc.maxLen})
			if err != nil {
				t.Fatal(err)
			}
			want := gql.ProjectPairs(g, ms)
			for _, pl := range unifiedPlans {
				opts := pl.opts
				opts.MaxLen = tc.maxLen
				got, err := gql.PairsCtx(context.Background(), g, tc.p, opts)
				if err != nil {
					t.Fatalf("trial %d %s/%s: %v", trial, tc.name, pl.name, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d %s/%s: kernel %v, reference %v", trial, tc.name, pl.name, got, want)
				}
			}
		}
	}
}

// TestCoreGQLKernelMatchesReference: same contract for CoreGQL, whose
// regular fragment (no conditions, no repeated variables) compiles to a
// label-free skeleton RPQ.
func TestCoreGQLKernelMatchesReference(t *testing.T) {
	pats := []struct {
		name   string
		p      coregql.Pattern
		maxLen int
	}{
		{"edge", coregql.Concat(coregql.Node("x"), coregql.AnonEdge(), coregql.Node("y")), 0},
		{"star", coregql.Concat(coregql.Node("x"),
			coregql.Star(coregql.Concat(coregql.AnonNode(), coregql.AnonEdge(), coregql.AnonNode())),
			coregql.Node("y")), 3},
		{"union", coregql.Union(
			coregql.Concat(coregql.AnonNode(), coregql.AnonEdge(), coregql.AnonNode()),
			coregql.Concat(coregql.AnonNode(), coregql.AnonEdge(), coregql.AnonNode(), coregql.AnonEdge(), coregql.AnonNode())), 0},
		{"repeat", coregql.Concat(coregql.Node("x"),
			coregql.Repeat(coregql.Concat(coregql.AnonNode(), coregql.AnonEdge(), coregql.AnonNode()), 1, 2),
			coregql.Node("y")), 0},
	}
	for trial := 0; trial < 4; trial++ {
		g := gen.Random(30, 90, []string{"a", "b", "c"}, int64(trial)*23+7)
		for _, tc := range pats {
			if !coregql.Regular(tc.p) {
				t.Fatalf("pattern %s must be regular for the kernel path", tc.name)
			}
			ms, err := coregql.EvalPattern(g, tc.p, coregql.Options{MaxLen: tc.maxLen})
			if err != nil {
				t.Fatal(err)
			}
			want := coregql.ProjectPairs(g, ms)
			for _, pl := range unifiedPlans {
				opts := pl.opts
				opts.MaxLen = tc.maxLen
				got, err := coregql.PairsCtx(context.Background(), g, tc.p, opts)
				if err != nil {
					t.Fatalf("trial %d %s/%s: %v", trial, tc.name, pl.name, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d %s/%s: kernel %v, reference %v", trial, tc.name, pl.name, got, want)
				}
			}
		}
	}
}

// TestCypherKernelMatchesReference: the Cypher fragment compiles to an RPQ;
// its ctx-aware kernel entry must reproduce the plain unmetered evaluation
// under every plan.
func TestCypherKernelMatchesReference(t *testing.T) {
	pats := []struct {
		name string
		p    cypherfrag.Pattern
	}{
		{"star", cypherfrag.StarOf("a")},
		{"concat", cypherfrag.Concat(cypherfrag.Edge("a"), cypherfrag.StarOf("b", "c"))},
		{"union", cypherfrag.Union(cypherfrag.Edge("a"),
			cypherfrag.Concat(cypherfrag.Edge("b"), cypherfrag.Edge("c")))},
	}
	for trial := 0; trial < 4; trial++ {
		g := gen.Random(30, 90, []string{"a", "b", "c"}, int64(trial)*29+5)
		for _, tc := range pats {
			want := eval.Pairs(g, cypherfrag.Compile(tc.p))
			for _, pl := range unifiedPlans {
				got, err := cypherfrag.PairsCtx(context.Background(), g, tc.p, pl.opts)
				if err != nil {
					t.Fatalf("trial %d %s/%s: %v", trial, tc.name, pl.name, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d %s/%s: kernel %v, reference %v", trial, tc.name, pl.name, got, want)
				}
			}
		}
	}
}

// TestPMRCtxMatchesLegacy: the metered PMR constructors build the same
// representation as the legacy unmetered ones — identical enumerations,
// identical cardinalities — for both the full and shortest-path variants.
func TestPMRCtxMatchesLegacy(t *testing.T) {
	exprs := []string{"a*", "a* b*", "(a | b) c*"}
	for trial := 0; trial < 4; trial++ {
		g := gen.Random(20, 60, []string{"a", "b", "c"}, int64(trial)*31+13)
		for _, q := range exprs {
			e := rpq.MustParse(q)
			for s := 0; s < 3; s++ {
				for d := 3; d < 6; d++ {
					legacy := pmr.FromProduct(g, e, s, d)
					got, err := pmr.FromProductCtx(context.Background(), g, e, s, d, pg.Budget{})
					if err != nil {
						t.Fatalf("trial %d %q (%d,%d): %v", trial, q, s, d, err)
					}
					wantPaths := legacy.Enumerate(50)
					gotPaths, err := got.EnumerateCtx(context.Background(), 50, pg.Budget{})
					if err != nil {
						t.Fatalf("trial %d %q (%d,%d): enumerate: %v", trial, q, s, d, err)
					}
					if !reflect.DeepEqual(gotPaths, wantPaths) {
						t.Fatalf("trial %d %q (%d,%d): ctx enumeration diverged", trial, q, s, d)
					}

					legacyS := pmr.ShortestFromProduct(g, e, s, d)
					gotS, err := pmr.ShortestFromProductCtx(context.Background(), g, e, s, d, pg.Budget{})
					if err != nil {
						t.Fatalf("trial %d %q (%d,%d): shortest: %v", trial, q, s, d, err)
					}
					if !reflect.DeepEqual(gotS.Enumerate(50), legacyS.Enumerate(50)) {
						t.Fatalf("trial %d %q (%d,%d): shortest enumeration diverged", trial, q, s, d)
					}
				}
			}
		}
	}
}

// TestSpannerCtxMatchesLegacy: the metered spanner evaluation (kernel
// feasibility gate + charged enumeration) returns exactly the legacy match
// set, in the same order.
func TestSpannerCtxMatchesLegacy(t *testing.T) {
	docs := []string{"abcab", "aabbaacca", "abc abc ab", "aaaaabbbbb"}
	exprs := []struct {
		name string
		e    spanner.Expr
	}{
		{"two-stars", spanner.Seq(
			spanner.Cap("x", spanner.Star(spanner.Lit("a"))),
			spanner.Cap("y", spanner.Star(spanner.Alt(spanner.Lit("b"), spanner.Lit("c")))))},
		{"word", spanner.Cap("w", spanner.Plus(spanner.Alt(spanner.Lit("ab"), spanner.Lit("c"))))},
		{"nested", spanner.Cap("o", spanner.Seq(spanner.Lit("a"), spanner.Cap("i", spanner.Star(spanner.Lit("b")))))},
	}
	for _, doc := range docs {
		for _, tc := range exprs {
			want := spanner.Evaluate(doc, tc.e)
			got, err := spanner.EvaluateCtx(context.Background(), doc, tc.e, pg.Budget{})
			if err != nil {
				t.Fatalf("%q/%s: %v", doc, tc.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%q/%s: ctx matches diverged\ngot %v\nwant %v", doc, tc.name, got, want)
			}
		}
	}
}

// TestBagCtxMatchesLegacy: bag-semantics counting with the kernel
// feasibility pruning agrees exactly with the legacy enumeration — per
// pair, in total, and for the kernel-computed set-semantics cardinality.
func TestBagCtxMatchesLegacy(t *testing.T) {
	exprs := []string{"a", "a b", "a*", "(a | b)*"}
	for trial := 0; trial < 4; trial++ {
		g := gen.Random(8, 20, []string{"a", "b"}, int64(trial)*37+19)
		for _, q := range exprs {
			e := rpq.MustParse(q)
			wantTotal := bag.TotalCount(g, e)
			gotTotal, err := bag.TotalCountCtx(context.Background(), g, e, pg.Budget{})
			if err != nil {
				t.Fatalf("trial %d %q: total: %v", trial, q, err)
			}
			if gotTotal.Cmp(wantTotal) != 0 {
				t.Fatalf("trial %d %q: total %s, legacy %s", trial, q, gotTotal, wantTotal)
			}
			for u := 0; u < g.NumNodes(); u++ {
				for v := 0; v < g.NumNodes(); v++ {
					want := bag.Count(g, e, u, v)
					got, err := bag.CountCtx(context.Background(), g, e, u, v, pg.Budget{})
					if err != nil {
						t.Fatalf("trial %d %q (%d,%d): %v", trial, q, u, v, err)
					}
					if got.Cmp(want) != 0 {
						t.Fatalf("trial %d %q (%d,%d): count %s, legacy %s", trial, q, u, v, got, want)
					}
				}
			}
			wantSet := bag.SetCount(g, e)
			for _, pl := range unifiedPlans {
				gotSet, err := bag.SetCountCtx(context.Background(), g, e, pl.opts)
				if err != nil {
					t.Fatalf("trial %d %q/%s: set: %v", trial, q, pl.name, err)
				}
				if gotSet != wantSet {
					t.Fatalf("trial %d %q/%s: set %d, legacy %d", trial, q, pl.name, gotSet, wantSet)
				}
			}
		}
	}
}

// TestRelAlgKernelMatchesReference: REACH atoms evaluated on the kernel
// produce the same relation as one built directly from the plain pair
// evaluator, and the set/bag operators compose those atoms identically.
func TestRelAlgKernelMatchesReference(t *testing.T) {
	reachRel := func(pairs [][2]int, x, y string) *relalg.Relation {
		rel := relalg.MustNewRelation(x, y)
		for _, pr := range pairs {
			rel.MustAdd(relalg.NodeCell(pr[0]), relalg.NodeCell(pr[1]))
		}
		return rel
	}
	must := func(rel *relalg.Relation, err error) *relalg.Relation {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	for trial := 0; trial < 4; trial++ {
		g := gen.Random(30, 90, []string{"a", "b", "c"}, int64(trial)*41+23)
		ra := reachRel(eval.Pairs(g, rpq.MustParse("a*")), "x", "y")
		rb := reachRel(eval.Pairs(g, rpq.MustParse("b")), "y", "z")
		rc := reachRel(eval.Pairs(g, rpq.MustParse("c")), "x", "y")
		cases := []struct {
			query string
			want  *relalg.Relation
		}{
			{"REACH(a*) AS (x, y)", ra},
			{"REACH(a*) AS (x, y) JOIN REACH(b) AS (y, z)", must(ra.Join(rb))},
			{"REACH(a*) AS (x, y) UNION REACH(c) AS (x, y)", must(ra.Union(rc))},
			{"REACH(a*) AS (x, y) DIFF REACH(c) AS (x, y)", must(ra.Diff(rc))},
			{"PROJECT(REACH(a*) AS (x, y) JOIN REACH(b) AS (y, z); x, z)", must(must(ra.Join(rb)).Project("x", "z"))},
		}
		for _, tc := range cases {
			q := relalg.MustParseQuery(tc.query)
			for _, pl := range unifiedPlans {
				got, err := relalg.EvalQueryCtx(context.Background(), g, q, pl.opts)
				if err != nil {
					t.Fatalf("trial %d %q/%s: %v", trial, tc.query, pl.name, err)
				}
				if !reflect.DeepEqual(got.Attrs(), tc.want.Attrs()) {
					t.Fatalf("trial %d %q/%s: attrs %v, want %v", trial, tc.query, pl.name, got.Attrs(), tc.want.Attrs())
				}
				if !reflect.DeepEqual(got.Sorted(), tc.want.Sorted()) {
					t.Fatalf("trial %d %q/%s: kernel relation diverged from reference", trial, tc.query, pl.name)
				}
			}
		}
	}
}
