// Budget and cancellation conformance across the independent evaluators —
// the original five plus every tier unified onto the product-graph kernel
// (gql, coregql, cypher, pmr, spanner, relalg, bag). The serving layer
// promises one error taxonomy (Section 6.1/6.3: evaluation cost can blow
// up combinatorially, so a service must stop a run and say precisely why)
// — these tests pin the contract every evaluator must honor: an exhausted
// budget or a canceled context yields the taxonomy error and NO partial
// result slice, under sequential and parallel plans alike.
package crossval_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphquery/internal/bag"
	"graphquery/internal/coregql"
	"graphquery/internal/crpq"
	"graphquery/internal/cypherfrag"
	"graphquery/internal/dlrpq"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/gql"
	"graphquery/internal/lrpq"
	"graphquery/internal/pmr"
	"graphquery/internal/relalg"
	"graphquery/internal/rpq"
	"graphquery/internal/spanner"
	"graphquery/internal/twoway"
)

// evaluatorRun is one evaluator under one fixed workload, reporting how
// many results it produced alongside the error. The workloads are sized so
// every evaluator expands well over one meter check interval of states and
// produces at least two results — tight budgets therefore always trip
// mid-evaluation, never before or after it.
type evaluatorRun struct {
	name        string
	parallelism []int // worker degrees to exercise; 1 is the sequential plan
	run         func(ctx context.Context, b eval.Budget, par int) (int, error)
}

func evaluators() []evaluatorRun {
	gBig := gen.Clique(60, "a")   // pairs evaluators: 60·nq product states per source
	gSmall := gen.Clique(10, "a") // path enumerators: ~800 configurations anchored
	rq := rpq.MustParse("a* a*")
	tw := twoway.MustParse("a* a*")
	lq := lrpq.MustParse("a*")
	dq := dlrpq.MustParse("() {[a]()}+")
	cq := crpq.MustParse("q(x, y) :- a* a*(x, y)")
	gBag := gen.Clique(6, "a") // bag counting: ~2k recursion steps per pair

	// The unified upper tiers, each through its ctx-aware kernel entry
	// point. Workloads follow the same sizing rule as above.
	gqlPat := gql.Concat(gql.Node("x"), gql.AnonEdgeL("a"), gql.Node("y"))
	corePat := coregql.Concat(coregql.Node("x"), coregql.AnonEdge(), coregql.Node("y"))
	cyPat := cypherfrag.Concat(cypherfrag.StarOf("a"), cypherfrag.StarOf("a"))
	pmrRep := pmr.FromProduct(gSmall, rpq.MustParse("a*"), 0, 1)
	doc := strings.Repeat("a", 60)
	spanExpr := spanner.Seq(
		spanner.Cap("x", spanner.Star(spanner.Lit("a"))),
		spanner.Cap("y", spanner.Star(spanner.Lit("a"))))
	raQuery := relalg.MustParseQuery("REACH(a* a*) AS (x, y)")
	return []evaluatorRun{
		{"eval", []int{1, 4}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			out, err := eval.PairsCtx(ctx, gBig, rq, eval.Options{Parallelism: par, Budget: b})
			return len(out), err
		}},
		{"twoway", []int{1, 4}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			out, err := twoway.PairsMeterOpt(gBig, tw, eval.NewMeter(ctx, b), twoway.Options{Parallelism: par})
			return len(out), err
		}},
		{"lrpq", []int{1}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			out, err := lrpq.EvalBetweenCtx(ctx, gSmall, lq, 0, 1, eval.All,
				lrpq.Options{MaxLen: 4, Meter: eval.NewMeter(ctx, b)})
			return len(out), err
		}},
		{"dlrpq", []int{1}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			out, err := dlrpq.EvalBetweenCtx(ctx, gSmall, dq, 0, 1, eval.All,
				dlrpq.Options{MaxLen: 4, Meter: eval.NewMeter(ctx, b)})
			return len(out), err
		}},
		{"crpq", []int{1, 4}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			res, err := crpq.EvalCtx(ctx, gBig, cq, crpq.Options{Parallelism: par, Budget: b})
			if res == nil {
				return 0, err
			}
			return len(res.Rows), err
		}},
		{"gql", []int{1}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			out, err := gql.EvalPatternCtx(ctx, gBig, gqlPat, gql.Options{}, b)
			return len(out), err
		}},
		{"coregql", []int{1}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			out, err := coregql.EvalPatternCtx(ctx, gBig, corePat, coregql.Options{}, b)
			return len(out), err
		}},
		{"cypher", []int{1, 4}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			out, err := cypherfrag.PairsCtx(ctx, gBig, cyPat, eval.Options{Parallelism: par, Budget: b})
			return len(out), err
		}},
		{"pmr", []int{1}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			out, err := pmrRep.EnumerateCtx(ctx, 200, b)
			return len(out), err
		}},
		{"spanner", []int{1}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			out, err := spanner.EvaluateCtx(ctx, doc, spanExpr, b)
			return len(out), err
		}},
		{"relalg", []int{1, 4}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			rel, err := relalg.EvalQueryCtx(ctx, gBig, raQuery, eval.Options{Parallelism: par, Budget: b})
			if rel == nil {
				return 0, err
			}
			return rel.Len(), err
		}},
		{"bag", []int{1}, func(ctx context.Context, b eval.Budget, par int) (int, error) {
			total, err := bag.TotalCountCtx(ctx, gBag, rpq.MustParse("a*"), b)
			if total == nil {
				return 0, err
			}
			return 1, err
		}},
	}
}

// TestEvaluatorsBudgetNoPartialResults: a tight states or rows budget makes
// every evaluator return ErrBudgetExceeded naming the exhausted resource,
// with an empty result — never a truncated slice the caller could mistake
// for a complete answer.
func TestEvaluatorsBudgetNoPartialResults(t *testing.T) {
	budgets := []struct {
		resource string
		budget   eval.Budget
	}{
		{"states", eval.Budget{MaxStates: 8}},
		{"rows", eval.Budget{MaxRows: 1}},
	}
	for _, ev := range evaluators() {
		for _, par := range ev.parallelism {
			for _, bc := range budgets {
				n, err := ev.run(context.Background(), bc.budget, par)
				if !errors.Is(err, eval.ErrBudgetExceeded) {
					t.Errorf("%s/par=%d/%s: got %v, want ErrBudgetExceeded", ev.name, par, bc.resource, err)
					continue
				}
				var be *eval.BudgetError
				if !errors.As(err, &be) || be.Resource != bc.resource {
					t.Errorf("%s/par=%d/%s: got %v, want *BudgetError{%s}", ev.name, par, bc.resource, err, bc.resource)
				}
				if n != 0 {
					t.Errorf("%s/par=%d/%s: %d partial results alongside the error", ev.name, par, bc.resource, n)
				}
			}
		}
	}
}

// TestEvaluatorsPreCanceledContext: a context canceled before evaluation
// starts stops every evaluator with ErrCanceled (cause preserved) and no
// results.
func TestEvaluatorsPreCanceledContext(t *testing.T) {
	for _, ev := range evaluators() {
		for _, par := range ev.parallelism {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			n, err := ev.run(ctx, eval.Budget{}, par)
			if !errors.Is(err, eval.ErrCanceled) {
				t.Errorf("%s/par=%d: got %v, want ErrCanceled", ev.name, par, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s/par=%d: cause context.Canceled not preserved: %v", ev.name, par, err)
			}
			if n != 0 {
				t.Errorf("%s/par=%d: %d partial results alongside the error", ev.name, par, n)
			}
		}
	}
}

// tripwire is a context whose Err reports cancellation only from its
// second poll on — a deterministic stand-in for a client disconnecting
// mid-evaluation. The meter polls Err once per CheckInterval expanded
// states, so by the time the tripwire fires the evaluator has provably
// done real work; a sleep-then-cancel test would either race a fast query
// or stall the suite. Done returns a non-nil channel so pg.NewMeter treats
// the context as cancelable.
type tripwire struct {
	polls atomic.Int64
	done  chan struct{}
}

func newTripwire() *tripwire { return &tripwire{done: make(chan struct{})} }

func (t *tripwire) Deadline() (time.Time, bool) { return time.Time{}, false }
func (t *tripwire) Done() <-chan struct{}       { return t.done }
func (t *tripwire) Value(any) any               { return nil }
func (t *tripwire) Err() error {
	if t.polls.Add(1) > 1 {
		return context.Canceled
	}
	return nil
}

// TestEvaluatorsMidFlightCancel: cancellation observed after evaluation is
// underway (the first budget check has already passed) still yields
// ErrCanceled and an empty result — no evaluator commits to partial output
// once its search loops have started.
func TestEvaluatorsMidFlightCancel(t *testing.T) {
	for _, ev := range evaluators() {
		for _, par := range ev.parallelism {
			tw := newTripwire()
			n, err := ev.run(tw, eval.Budget{}, par)
			if !errors.Is(err, eval.ErrCanceled) {
				t.Errorf("%s/par=%d: got %v, want ErrCanceled", ev.name, par, err)
			}
			if n != 0 {
				t.Errorf("%s/par=%d: %d partial results alongside the error", ev.name, par, n)
			}
			if tw.polls.Load() < 2 {
				t.Errorf("%s/par=%d: meter polled the context %d time(s); cancellation never observed mid-flight",
					ev.name, par, tw.polls.Load())
			}
		}
	}
}
