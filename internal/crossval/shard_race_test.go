package crossval_test

// Race coverage for the sharded frontier engine: `make ci` runs this
// package under -race (the `race` target is `go test -race ./...`), so
// concurrent queries forcing shards > 1 exercise the per-level shard
// goroutines, the outbox exchange, and the frozen-frontier bottom-up reads
// under the detector.

import (
	"reflect"
	"sync"
	"testing"

	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/pg"
	"graphquery/internal/rpq"
)

func TestShardedQueriesConcurrently(t *testing.T) {
	g := gen.ScaleFree(600, 3, 11)
	for _, q := range []string{"a*", "(!{b})*"} {
		expr, err := rpq.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		nfa := rpq.Compile(expr)
		p := eval.NewProduct(g, nfa)
		want := eval.PairsProduct(p, eval.Options{})
		const goroutines = 8
		got := make([][][2]int, goroutines)
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// One shared immutable Product, every query sharded ×4: the
				// shard goroutines of concurrent sweeps interleave freely.
				got[i] = eval.PairsProduct(p, eval.Options{
					Plan: pg.Plan{Frontier: true, Shards: 4, Workers: 1},
				})
			}(i)
		}
		wg.Wait()
		for i := range got {
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("%q goroutine %d: sharded result diverged from scalar reference", q, i)
			}
		}
	}
}
