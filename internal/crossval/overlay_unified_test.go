// Overlay safety for the unified tiers: every tier evaluated directly on a
// mutated (overlay) graph must answer exactly as on the materialized
// rebuild. This is the crossval mirror of the engine-level
// TestOverlayQueriesMatchMaterialized, extended to the tiers PR 7 did not
// cover: pmr, relalg, and bag, alongside gql, coregql, and cypherfrag.
// (The spanner tier has no overlay case: its document line graph is built
// fresh per query, so every node and edge is always alive.)
package crossval_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"graphquery/internal/bag"
	"graphquery/internal/coregql"
	"graphquery/internal/cypherfrag"
	"graphquery/internal/eval"
	"graphquery/internal/gen"
	"graphquery/internal/gql"
	"graphquery/internal/graph"
	"graphquery/internal/pg"
	"graphquery/internal/pmr"
	"graphquery/internal/relalg"
	"graphquery/internal/rpq"
)

// TestOverlayUnifiedTiersMatchMaterialized: the overlay and the rebuilt
// graph number nodes differently, so answers are compared as sorted sets
// rendered through external IDs.
func TestOverlayUnifiedTiersMatchMaterialized(t *testing.T) {
	base := gen.Random(60, 200, []string{"a", "b", "c"}, 11)
	muts := []graph.Mutation{
		{Op: graph.MutRemoveNode, ID: "v5"},
		{Op: graph.MutRemoveNode, ID: "v17"},
		{Op: graph.MutAddNode, ID: "w0", Label: "W"},
		{Op: graph.MutAddEdge, ID: "f0", Label: "a", Src: "w0", Tgt: "v1"},
		{Op: graph.MutAddEdge, ID: "f1", Label: "b", Src: "v2", Tgt: "w0"},
		{Op: graph.MutRemoveEdge, ID: "e10"},
		{Op: graph.MutRemoveEdge, ID: "e11"},
		{Op: graph.MutSetNodeProp, ID: "v1", Prop: "k", Value: graph.Int(7)},
	}
	over, err := base.Apply(muts)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := over.Materialize()
	if err != nil {
		t.Fatal(err)
	}

	check := func(label string, run func(g *graph.Graph) (any, error)) {
		t.Helper()
		got, err1 := run(over)
		want, err2 := run(mat)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: overlay err %v, materialized err %v", label, err1, err2)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: overlay answer differs from materialized\noverlay: %v\nmaterialized: %v",
				label, got, want)
		}
	}
	renderPairs := func(g *graph.Graph, prs [][2]int) any {
		out := make([]string, len(prs))
		for i, pr := range prs {
			out[i] = string(g.Node(pr[0]).ID) + "\x00" + string(g.Node(pr[1]).ID)
		}
		sort.Strings(out)
		return out
	}
	ctx := context.Background()

	check("gql", func(g *graph.Graph) (any, error) {
		p := gql.Concat(gql.Node("x"),
			gql.Star(gql.Concat(gql.AnonNode(), gql.AnonEdgeL("a"), gql.AnonNode())),
			gql.Node("y"))
		prs, err := gql.PairsCtx(ctx, g, p, eval.Options{MaxLen: 3})
		if err != nil {
			return nil, err
		}
		return renderPairs(g, prs), nil
	})
	check("gql-fallback", func(g *graph.Graph) (any, error) {
		// A non-regular pattern (repeated variable) takes the metered
		// reference evaluator — the dense-loop alive skips under test.
		p := gql.Concat(gql.Node("x"), gql.AnonEdgeL("a"), gql.Node("x"))
		ms, err := gql.EvalPatternCtx(ctx, g, p, gql.Options{}, pg.Budget{})
		if err != nil {
			return nil, err
		}
		out := make([]string, len(ms))
		for i, m := range ms {
			out[i] = m.Path.Format(g)
		}
		sort.Strings(out)
		return out, nil
	})
	check("coregql", func(g *graph.Graph) (any, error) {
		p := coregql.Concat(coregql.Node("x"),
			coregql.Star(coregql.Concat(coregql.AnonNode(), coregql.AnonEdge(), coregql.AnonNode())),
			coregql.Node("y"))
		prs, err := coregql.PairsCtx(ctx, g, p, eval.Options{MaxLen: 2})
		if err != nil {
			return nil, err
		}
		return renderPairs(g, prs), nil
	})
	check("cypher", func(g *graph.Graph) (any, error) {
		p := cypherfrag.Concat(cypherfrag.Edge("a"), cypherfrag.StarOf("b", "c"))
		prs, err := cypherfrag.PairsCtx(ctx, g, p, eval.Options{})
		if err != nil {
			return nil, err
		}
		return renderPairs(g, prs), nil
	})
	check("pmr", func(g *graph.Graph) (any, error) {
		s, ok1 := g.NodeIndex("v1")
		d, ok2 := g.NodeIndex("v2")
		if !ok1 || !ok2 {
			t.Fatal("anchor nodes missing")
		}
		rep, err := pmr.FromProductCtx(ctx, g, rpq.MustParse("a (a | b)*"), s, d, pg.Budget{})
		if err != nil {
			return nil, err
		}
		paths, err := rep.EnumerateCtx(ctx, 40, pg.Budget{})
		if err != nil {
			return nil, err
		}
		out := make([]string, len(paths))
		for i, p := range paths {
			out[i] = p.Format(g)
		}
		sort.Strings(out)
		return out, nil
	})
	check("relalg", func(g *graph.Graph) (any, error) {
		q := relalg.MustParseQuery("REACH(a*) AS (x, y) JOIN REACH(b) AS (y, z)")
		rel, err := relalg.EvalQueryCtx(ctx, g, q, eval.Options{})
		if err != nil {
			return nil, err
		}
		rows := make([]string, 0, rel.Len())
		for _, tup := range rel.Sorted() {
			row := ""
			for _, c := range tup {
				row += c.Format(g) + "\x00"
			}
			rows = append(rows, row)
		}
		sort.Strings(rows)
		return rows, nil
	})
	check("bag-total", func(g *graph.Graph) (any, error) {
		n, err := bag.TotalCountCtx(ctx, g, rpq.MustParse("a b"), pg.Budget{})
		if err != nil {
			return nil, err
		}
		return n.String(), nil
	})
	check("bag-pair", func(g *graph.Graph) (any, error) {
		// Per-pair counts keyed by external ID: the counter's dense loops
		// and the kernel pruning must both ignore tombstones.
		e := rpq.MustParse("(a | b) c")
		out := map[string]string{}
		for u := 0; u < g.NumNodes(); u++ {
			if !g.NodeAlive(u) {
				continue
			}
			for v := 0; v < g.NumNodes(); v++ {
				if !g.NodeAlive(v) {
					continue
				}
				n, err := bag.CountCtx(ctx, g, e, u, v, pg.Budget{})
				if err != nil {
					return nil, err
				}
				if n.Sign() > 0 {
					out[string(g.Node(u).ID)+"\x00"+string(g.Node(v).ID)] = n.String()
				}
			}
		}
		return out, nil
	})
	check("bag-set", func(g *graph.Graph) (any, error) {
		n, err := bag.SetCountCtx(ctx, g, rpq.MustParse("a* b"), eval.Options{})
		if err != nil {
			return nil, err
		}
		return n, nil
	})
}
